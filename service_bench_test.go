package scrutinizer

// Service-path benchmarks: the amortization argument of the Verifier/Run
// split in numbers. The cold pair mirrors what scrutinizerd's legacy
// /verify does per request — fit embeddings + TF-IDF on the document,
// train four classifiers, then verify. The warm pair is the /v1 path: one
// trained Verifier serves every request, and per-request setup collapses
// to spawning an engine from the model snapshot (classifier deep-copies,
// no fitting). Setup benches isolate the per-request construction cost;
// Verify benches measure the full request including the Algorithm 1 loop.

import (
	"context"
	"testing"

	"github.com/repro/scrutinizer/internal/worldgen"
)

// benchServiceWorld generates the shared benchmark world once per run.
func benchServiceWorld(b *testing.B) *World {
	b.Helper()
	w, err := worldgen.Generate(benchWorldCfg())
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkServiceSetupCold is the per-request construction cost of the
// legacy path: New (feature fitting) + Train (classifier bootstrap) per
// document, the work scrutinizerd used to redo on every POST /verify.
func BenchmarkServiceSetupCold(b *testing.B) {
	w := benchServiceWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := New(w.Corpus, w.Document, Options{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Train(w.Document.Claims); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSetupWarm is the per-request construction cost of the
// service path: StartRun on a shared trained Verifier (snapshot spawn —
// no feature fitting, no training).
func BenchmarkServiceSetupWarm(b *testing.B) {
	w := benchServiceWorld(b)
	v, err := NewVerifier(w.Corpus, w.Document, Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.StartRun(context.Background(), w.Document); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceVerifyCold is the full legacy request: construct + train
// + verify per document.
func BenchmarkServiceVerifyCold(b *testing.B) {
	w := benchServiceWorld(b)
	for i := 0; i < b.N; i++ {
		sys, err := New(w.Corpus, w.Document, Options{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Train(w.Document.Claims); err != nil {
			b.Fatal(err)
		}
		team, err := sys.NewTeam(3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{BatchSize: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != len(w.Document.Claims) {
			b.Fatalf("verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(w.Document.Claims))/b.Elapsed().Seconds(), "claims/s")
}

// BenchmarkRecoveryBoot is the boot-time cost of Recover over a populated
// store (one corpus, one trained verifier, one live session with a short
// answer log): the restart latency a -data-dir deployment pays. Snapshot
// re-materializes the verifier from its stored model blob; Retrain is the
// fallback when only the journal survives (snapshot blobs lost), which
// re-fits features and classifiers from the journaled training document.
func BenchmarkRecoveryBoot(b *testing.B) {
	w := benchServiceWorld(b)
	st := NewMemoryStore()
	mgr := NewSessionManager(0, 0)
	svc := NewService()
	if _, err := svc.Recover(st, mgr); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		b.Fatal(err)
	}
	v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := v.StartSession(context.Background(), mgr, w.Document, SessionOptions{Verify: VerifyOptions{BatchSize: 100}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		qs := sess.Questions()
		if len(qs) == 0 {
			b.Fatal("no pending questions")
		}
		if _, err := sess.Answer(context.Background(), SessionAnswer{ClaimID: qs[0].ClaimID, Value: "suggestion", Seconds: 2}); err != nil {
			b.Fatal(err)
		}
	}
	// Journal-only copy: recovery from it must retrain the verifier.
	bare := st.CloneWithPrefix(int(st.Stats().Records))

	boot := func(b *testing.B, from Store) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			svc2 := NewService()
			stats, err := svc2.Recover(from, NewSessionManager(0, 0))
			if err != nil {
				b.Fatal(err)
			}
			if stats.Verifiers != 1 || stats.Sessions != 1 {
				b.Fatalf("unexpected recovery: %+v", stats)
			}
		}
	}
	b.Run("Snapshot", func(b *testing.B) { boot(b, st) })
	b.Run("Retrain", func(b *testing.B) { boot(b, bare) })
}

// BenchmarkServiceVerifyWarm is the full service request: StartRun +
// verify + Close against one shared trained Verifier (the tracked
// headline for the fit-once / verify-many amortization). Closing the run
// returns its engine to the verifier's pool, so steady-state requests
// re-prime a pooled engine instead of allocating one — exactly what the
// /v1 batch-run handler does.
func BenchmarkServiceVerifyWarm(b *testing.B) {
	w := benchServiceWorld(b)
	v, err := NewVerifier(w.Corpus, w.Document, Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := v.StartRun(context.Background(), w.Document)
		if err != nil {
			b.Fatal(err)
		}
		team, err := v.NewTeam(3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := run.Verify(context.Background(), team, VerifyOptions{BatchSize: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != len(w.Document.Claims) {
			b.Fatalf("verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
		}
		run.Close()
	}
	b.ReportMetric(float64(b.N)*float64(len(w.Document.Claims))/b.Elapsed().Seconds(), "claims/s")
}
