// Multitenant: the fit-once / verify-many serving model. One Verifier is
// trained on an archived annotated report ("a database of previously
// checked claims"); it then verifies several fresh documents — including
// concurrently — without ever refitting the feature pipeline or racing
// its own batch-boundary retraining, because every run executes on a
// private engine spawned from the verifier's immutable model snapshot.
//
// This is the library shape of what cmd/scrutinizerd serves as the /v1
// REST API (corpora → verifiers → runs).
//
// Run with: go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/repro/scrutinizer"
)

func main() {
	// One corpus, one archived annotated document to train from.
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 160
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Register the corpus with a service and train a verifier over it —
	// feature fitting and classifier training happen exactly once.
	svc := scrutinizer.NewService()
	if _, err := svc.AddCorpus("energy", world.Corpus); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	v, err := svc.CreateVerifier("energy", world.Document, scrutinizer.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained verifier %q in %v (%d labelled claims, feature dim %d)\n",
		v.ID(), time.Since(start).Round(time.Millisecond), v.TrainedOn(), v.FeatureDim())

	// Three "incoming reports": slices of the document standing in for
	// fresh editions checked against the same statistical corpus.
	n := len(world.Document.Claims)
	reports := []*scrutinizer.Document{
		slice(world.Document, "Q1 report", 0, n/3),
		slice(world.Document, "Q2 report", n/3, 2*n/3),
		slice(world.Document, "Q3 report", 2*n/3, n),
	}

	// Serve them concurrently on the one warm verifier.
	var wg sync.WaitGroup
	for _, doc := range reports {
		wg.Add(1)
		go func(doc *scrutinizer.Document) {
			defer wg.Done()
			t0 := time.Now()
			run, err := v.StartRun(context.Background(), doc)
			if err != nil {
				log.Fatal(err)
			}
			setup := time.Since(t0)
			team, err := v.NewTeam(3)
			if err != nil {
				log.Fatal(err)
			}
			res, err := run.Verify(context.Background(), team, scrutinizer.VerifyOptions{BatchSize: 25})
			if err != nil {
				log.Fatal(err)
			}
			cov := run.Coverage()
			correct := 0
			for _, o := range res.Outcomes {
				if o.Verdict == scrutinizer.VerdictCorrect {
					correct++
				}
			}
			fmt.Printf("%-10s %3d claims  setup %8v  accuracy %.2f  %d correct  vocab coverage %.0f%%\n",
				doc.Title, len(doc.Claims), setup.Round(time.Microsecond),
				res.Accuracy(), correct, cov.TFIDFRatio()*100)
		}(doc)
	}
	wg.Wait()

	// The verifier itself never changed: runs retrain their private
	// engines, the shared trained state stays at generation 1.
	fmt.Printf("verifier after serving: generation %d, %d runs started\n",
		v.Generation(), v.Runs())
	st := svc.Stats()
	fmt.Printf("service: %d corpus, %d verifier, %d runs\n", st.Corpora, st.Verifiers, st.Runs)
}

// slice builds a document over a claim range, keeping the section span.
func slice(doc *scrutinizer.Document, title string, lo, hi int) *scrutinizer.Document {
	return &scrutinizer.Document{Title: title, Sections: doc.Sections, Claims: doc.Claims[lo:hi]}
}
