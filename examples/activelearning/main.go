// Activelearning: the cold-start scenario of §6.2 in isolation. A fresh
// system (no previous checks) verifies a report batch by batch; after each
// batch the classifiers retrain on crowd-validated labels. The example
// prints the accuracy curve of every classifier and the falling per-claim
// crowd cost — the mechanism behind Figures 8 and 9.
//
// Run with: go run ./examples/activelearning
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
)

func main() {
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 160
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := scrutinizer.New(world.Corpus, world.Document, scrutinizer.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	engine := sys.Engine()
	team, err := crowd.NewTeam("A", 3, 0.98, 17)
	if err != nil {
		log.Fatal(err)
	}

	// Held-out probe: every fourth claim, scored with ground-truth labels.
	var probe []*scrutinizer.Claim
	for i, c := range world.Document.Claims {
		if i%4 == 0 {
			probe = append(probe, c)
		}
	}
	probeAccuracy := func(kind core.PropertyKind) float64 {
		var ex []classifier.Example
		for _, c := range probe {
			if label := core.TruthLabel(c.Truth, kind); label != "" {
				ex = append(ex, classifier.Example{Features: engine.Featurize(c), Label: label})
			}
		}
		return engine.Model(kind).Accuracy(ex)
	}

	fmt.Println("batch  claims  rel-acc  key-acc  attr-acc  formula-acc  s/claim")
	_, err = engine.Verify(context.Background(), world.Document, team, core.VerifyConfig{
		BatchSize: 20,
		Ordering:  core.OrderILP,
		AfterBatch: func(batch, verified int, outs []*core.Outcome) {
			var secs float64
			for _, o := range outs {
				secs += o.Seconds
			}
			fmt.Printf("%5d  %6d  %7.2f  %7.2f  %8.2f  %11.2f  %7.0f\n",
				batch, verified,
				probeAccuracy(core.PropRelation), probeAccuracy(core.PropKey),
				probeAccuracy(core.PropAttr), probeAccuracy(core.PropFormula),
				secs/float64(len(outs)))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAccuracy climbs batch over batch while per-claim crowd cost falls —")
	fmt.Println("the warm-up dynamic behind the paper's Figures 8 and 9.")
}
