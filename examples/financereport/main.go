// Financereport: Scrutinizer on a different domain. Builds a small
// quarterly-finance corpus by hand (revenue/opex/margin per business line),
// writes claims the way an earnings report would, and verifies them. Shows
// that nothing in the system is energy-specific: the domain lexicon is
// overridden so "aggressively" means >30% growth here, as §2 discusses.
//
// Run with: go run ./examples/financereport
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/repro/scrutinizer"
)

func main() {
	corpus := scrutinizer.NewCorpus()
	quarters := []string{"2023Q1", "2023Q2", "2023Q3", "2023Q4", "2024Q1", "2024Q2", "2024Q3", "2024Q4"}
	fin, err := scrutinizer.NewRelation("Financials", "Line", quarters)
	if err != nil {
		log.Fatal(err)
	}
	rows := map[string][]float64{
		"RevenueCloud":  {120, 131, 150, 166, 180, 205, 228, 251},
		"RevenueLegacy": {300, 296, 290, 287, 280, 271, 262, 255},
		"OpexTotal":     {260, 262, 270, 280, 283, 291, 300, 310},
		"HeadcountEng":  {820, 845, 880, 930, 990, 1035, 1080, 1140},
		"MarginPercent": {18, 19, 21, 22, 23, 25, 26, 27},
	}
	for line, vals := range rows {
		if err := fin.AddRow(line, vals); err != nil {
			log.Fatal(err)
		}
	}
	if err := corpus.Add(fin); err != nil {
		log.Fatal(err)
	}

	mk := func(id int, text, sentence string, param float64, correct bool, truth *scrutinizer.GroundTruth) *scrutinizer.Claim {
		return &scrutinizer.Claim{
			ID: id, Text: text, Sentence: sentence,
			Param: param, HasParam: true, Correct: correct, Truth: truth,
		}
	}
	doc := &scrutinizer.Document{
		Title:    "FY2024 earnings narrative",
		Sections: 2,
		Claims: []*scrutinizer.Claim{
			// Cloud revenue roughly doubled over the eight quarters:
			// 251/120 = 2.09.
			mk(1, "cloud revenue increased 2.1-fold from 2023Q1 to 2024Q4",
				"Over two years, cloud revenue increased 2.1-fold from 2023Q1 to 2024Q4, offsetting the legacy decline.",
				2.1, true, &scrutinizer.GroundTruth{
					Relations: []string{"Financials"},
					Keys:      []string{"RevenueCloud"},
					Attrs:     []string{"2024Q4", "2023Q1"},
					Formula:   "a.A1 / b.A2",
					Value:     251.0 / 120.0,
				}),
			// Legacy declined ~3.3% 2024Q3->2024Q4 ... claim says 10%:
			// incorrect.
			mk(2, "legacy revenue fell by 10% in 2024Q4",
				"Meanwhile, legacy revenue fell by 10% in 2024Q4 as customers migrated.",
				-0.10, false, &scrutinizer.GroundTruth{
					Relations: []string{"Financials"},
					Keys:      []string{"RevenueLegacy"},
					Attrs:     []string{"2024Q4", "2024Q3"},
					Formula:   "(a.A1 / b.A2) - 1",
					Value:     255.0/262.0 - 1,
				}),
			// Margin reached 27 percent in 2024Q4: correct lookup.
			mk(3, "operating margin reached 27% in 2024Q4",
				"As a result, operating margin reached 27% in 2024Q4, a record.",
				27, true, &scrutinizer.GroundTruth{
					Relations: []string{"Financials"},
					Keys:      []string{"MarginPercent"},
					Attrs:     []string{"2024Q4"},
					Formula:   "a.A1",
					Value:     27,
				}),
			// Opex grew by 3.3% Q/Q; claim says it was flat (±1%):
			// incorrect general claim.
			mk(4, "operating expenses stayed flat in 2024Q4",
				"Management noted that operating expenses stayed flat in 2024Q4.",
				0.0, false, &scrutinizer.GroundTruth{
					Relations: []string{"Financials"},
					Keys:      []string{"OpexTotal"},
					Attrs:     []string{"2024Q4", "2024Q3"},
					Formula:   "(a.A1 / b.A2) - 1",
					Value:     310.0/300.0 - 1,
				}),
		},
	}
	// Quarterly-label arithmetic (2024Q4 - 2024Q3) is undefined, so the
	// claims here avoid CAGR-style formulas; everything else carries over.
	sys, err := scrutinizer.New(corpus, doc, scrutinizer.Options{Seed: 9, Tolerance: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.VerifyDocument(context.Background(), team, scrutinizer.VerifyOptions{BatchSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Printf("\nverdict accuracy: %.0f%%\n", res.Accuracy()*100)
}
