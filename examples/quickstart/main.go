// Quickstart: build a tiny corpus by hand, pose the paper's Example 1
// claim, and let Scrutinizer verify it with a simulated crowd of three.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/repro/scrutinizer"
)

func main() {
	// The Figure 1 fragment: Global Energy Demand history and estimates.
	corpus := scrutinizer.NewCorpus()
	ged, err := scrutinizer.NewRelation("GED", "Index", []string{"2016", "2017", "2030", "2040"})
	if err != nil {
		log.Fatal(err)
	}
	rows := map[string][]float64{
		"PGElecDemand": {21546, 22209, 29349, 35526},
		"PGINCoal":     {2390, 2412, 2341, 2353},
		"TFCelec":      {21465, 22040, 28566, 34790},
	}
	for key, vals := range rows {
		if err := ged.AddRow(key, vals); err != nil {
			log.Fatal(err)
		}
	}
	if err := corpus.Add(ged); err != nil {
		log.Fatal(err)
	}

	// Example 1's claim: "In 2017, global electricity demand grew by 3%,
	// reaching 22 200 TWh." — annotated with the CAGR check an IEA
	// expert would write.
	claim := &scrutinizer.Claim{
		ID:       1,
		Text:     "in 2017 global electricity demand grew by 3%",
		Sentence: "In 2017, global electricity demand grew by 3%, more than any other fuel besides solar thermal, reaching 22 200 TWh.",
		Kind:     scrutinizer.KindExplicit,
		Param:    0.03,
		HasParam: true,
		Correct:  true,
		Truth: &scrutinizer.GroundTruth{
			Relations: []string{"GED"},
			Keys:      []string{"PGElecDemand"},
			Attrs:     []string{"2017", "2016"},
			Formula:   "POWER(a.A1 / b.A2, 1 / (A1 - A2)) - 1",
			Value:     22209.0/21546.0 - 1,
		},
	}
	// A second, incorrect claim (Example 4): demand grew by 2.5%.
	wrong := &scrutinizer.Claim{
		ID:       2,
		Text:     "in 2017 global electricity demand grew by 2.5%",
		Sentence: "In 2017, global electricity demand grew by 2.5% according to the draft.",
		Param:    0.025,
		HasParam: true,
		Correct:  false,
		Truth:    claim.Truth,
	}

	doc := &scrutinizer.Document{
		Title:    "Quickstart fragment",
		Sections: 1,
		Claims:   []*scrutinizer.Claim{claim, wrong},
	}

	sys, err := scrutinizer.New(corpus, doc, scrutinizer.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range doc.Claims {
		out, err := sys.VerifyClaim(context.Background(), c, team)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("claim: %q\n  verdict: %s (query value %.4f)\n", c.Text, out.Verdict, out.Value)
		if out.Query != nil {
			fmt.Printf("  query:   %s\n", out.Query.SQL())
		}
		if out.HasSuggestion {
			fmt.Printf("  suggested correction: %.4f (i.e. %.1f%%)\n", out.Suggestion, out.Suggestion*100)
		}
		fmt.Printf("  crowd time: %.0f person-seconds\n\n", out.Seconds)
	}
}
