// Energyreport: verify a full synthetic IEA-style report with a crowd of
// three checkers, comparing claim ordering strategies (the §6.2 scenario in
// miniature). Prints per-batch progress and the final report summary.
//
// Run with: go run ./examples/energyreport
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/report"
)

func main() {
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 150
	cfg.NumSections = 10
	cfg.ErrorRate = 0.25
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d relations, %d claims in %d sections\n\n",
		world.Corpus.Len(), len(world.Document.Claims), world.Document.Sections)

	for _, ordering := range []core.Ordering{core.OrderSequential, core.OrderILP} {
		sys, err := scrutinizer.New(world.Corpus, world.Document, scrutinizer.Options{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		team, err := crowd.NewTeam("E", 3, 0.97, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- ordering: %s ---\n", ordering)
		res, err := sys.Engine().Verify(context.Background(), world.Document, team, core.VerifyConfig{
			BatchSize:       25,
			SectionReadCost: 60,
			Ordering:        ordering,
			AfterBatch: func(batch, verified int, outs []*core.Outcome) {
				var secs float64
				correct := 0
				for _, o := range outs {
					secs += o.Seconds
					if o.Verdict == core.VerdictCorrect {
						correct++
					}
				}
				fmt.Printf("  batch %d: %d claims (%d judged correct), %.0f person-seconds\n",
					batch, len(outs), correct, secs)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := &report.Report{Document: world.Document, Outcomes: res.Outcomes, Seconds: res.Seconds}
		s := rep.Summarise()
		fmt.Printf("total: %.0f person-seconds (%.0f s/claim), verdict accuracy %.1f%%, %d corrections suggested\n\n",
			s.Seconds, s.PerClaim, s.Accuracy*100, s.Suggestion)
	}
}
