package scrutinizer

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/query"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// TestBootstrapBeatsColdStart verifies the headline active-learning claim:
// a system bootstrapped from previous checks spends less crowd time than a
// cold-started one on the same document.
func TestBootstrapBeatsColdStart(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 60
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(bootstrap bool) float64 {
		sys, err := New(w.Corpus, w.Document, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if bootstrap {
			if err := sys.Train(w.Document.Claims); err != nil {
				t.Fatal(err)
			}
		}
		team, err := sys.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{BatchSize: 15})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}

	cold := run(false)
	warm := run(true)
	if warm >= cold {
		t.Errorf("bootstrapped run (%.0fs) should beat cold start (%.0fs)", warm, cold)
	}
}

// TestMajorityVotingAbsorbsUnreliableWorker reproduces the §6.1 robustness
// property: one consistently wrong worker in a team of three does not
// change the aggregate verdicts.
func TestMajorityVotingAbsorbsUnreliableWorker(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 40
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Corpus, w.Document, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	good1, err := crowd.NewWorker("G1", 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	good2, err := crowd.NewWorker("G2", 1, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := crowd.NewWorker("B", 1, 0, 12) // always wrong
	if err != nil {
		t.Fatal(err)
	}
	team := &crowd.Team{Workers: []*crowd.Worker{bad, good1, good2}}

	right := 0
	for _, c := range w.Document.Claims {
		out, err := sys.VerifyClaim(context.Background(), c, team)
		if err != nil {
			t.Fatal(err)
		}
		if out.Verdict != VerdictSkipped && (out.Verdict == VerdictCorrect) == c.Correct {
			right++
		}
	}
	if acc := float64(right) / float64(len(w.Document.Claims)); acc < 0.95 {
		t.Errorf("majority accuracy with one bad worker = %.2f, want ~1.0", acc)
	}
}

// TestErrorInjectionDetected: every incorrect explicit claim must receive a
// correction suggestion close to the annotated true value (Example 4).
func TestErrorInjectionDetected(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 60
	cfg.ErrorRate = 0.5
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Corpus, w.Document, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	suggestions, wrongClaims := 0, 0
	for _, c := range w.Document.Claims {
		if c.Correct || c.Kind != claims.Explicit {
			continue
		}
		wrongClaims++
		out, err := sys.VerifyClaim(context.Background(), c, team)
		if err != nil {
			t.Fatal(err)
		}
		if out.Verdict != VerdictIncorrect {
			t.Errorf("claim %d (incorrect) judged %s", c.ID, out.Verdict)
			continue
		}
		if !out.HasSuggestion {
			continue
		}
		suggestions++
		rel := math.Abs(out.Suggestion-c.Truth.Value) / math.Max(1e-9, math.Abs(c.Truth.Value))
		if rel > 0.05 {
			t.Errorf("claim %d suggestion %.4g far from truth %.4g", c.ID, out.Suggestion, c.Truth.Value)
		}
	}
	if wrongClaims == 0 {
		t.Fatal("no incorrect explicit claims generated")
	}
	if suggestions*2 < wrongClaims {
		t.Errorf("only %d of %d incorrect claims got suggestions", suggestions, wrongClaims)
	}
}

// TestRandomQuerySQLRoundTripProperty: any well-formed query round-trips
// through SQL rendering and parsing with an identical execution result.
func TestRandomQuerySQLRoundTripProperty(t *testing.T) {
	corpus := table.NewCorpus()
	rel := table.MustNewRelation("R", "Index", []string{"2016", "2017", "2018"})
	keys := []string{"K1", "K2", "K3"}
	vals := [][]float64{{10, 20, 30}, {5, 6, 7}, {100, 200, 400}}
	for i, k := range keys {
		if err := rel.AddRow(k, vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := corpus.Add(rel); err != nil {
		t.Fatal(err)
	}
	attrs := []string{"2016", "2017", "2018"}
	exprs := []string{
		"a.A1", "a.A1 / b.A2", "a.A1 - b.A2", "a.A1 + b.A1",
		"POWER(a.A1 / b.A2, 1 / (A1 - A2)) - 1", "AVG(a.A1, b.A2)",
		"(a.A1 / b.A2) * 100", "ABS(a.A1 - b.A2)",
	}
	f := func(eIdx, k1, k2, a1, a2 uint8) bool {
		src := exprs[int(eIdx)%len(exprs)]
		node := expr.MustParse(src)
		attr1 := attrs[int(a1)%len(attrs)]
		attr2 := attrs[int(a2)%len(attrs)]
		if attr1 == attr2 {
			attr2 = attrs[(int(a2)+1)%len(attrs)]
		}
		q := &query.Query{
			Select:       node,
			AttrBindings: map[string]string{"A1": attr1, "A2": attr2},
		}
		for _, alias := range expr.Aliases(node) {
			key := keys[int(k1)%len(keys)]
			if alias == "b" {
				key = keys[int(k2)%len(keys)]
			}
			q.Bindings = append(q.Bindings, query.Binding{Alias: alias, Relation: "R", Key: key})
		}
		v1, err1 := q.Execute(corpus)
		parsed, perr := query.Parse(q.SQL())
		if perr != nil {
			return false
		}
		v2, err2 := parsed.Execute(corpus)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(v1-v2) < 1e-9*math.Max(1, math.Abs(v1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGeneralizeInstantiateRoundTripProperty: generalising a concrete
// expression and instantiating the formula with the original labels
// evaluates to the original value.
func TestGeneralizeInstantiateRoundTripProperty(t *testing.T) {
	corpus := table.NewCorpus()
	rel := table.MustNewRelation("R", "Index", []string{"2016", "2017"})
	if err := rel.AddRow("K", []float64{50, 60}); err != nil {
		t.Fatal(err)
	}
	if err := corpus.Add(rel); err != nil {
		t.Fatal(err)
	}
	sources := []string{
		"a.2017 / b.2016",
		"a.2017 - b.2016",
		"POWER(a.2017/b.2016, 1/(2017-2016)) - 1",
		"(a.2017 / b.2016) * 100",
		"ABS(a.2017) + 1",
	}
	for _, src := range sources {
		concrete := expr.MustParse(src)
		q1 := &query.Query{Select: concrete, Bindings: []query.Binding{
			{Alias: "a", Relation: "R", Key: "K"},
			{Alias: "b", Relation: "R", Key: "K"},
		}}
		// Restrict bindings to the aliases the expression actually uses.
		q1.Bindings = q1.Bindings[:len(expr.Aliases(concrete))]
		v1, err := q1.Execute(corpus)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		gen, reverse, err := formula.Generalize(concrete)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2 := &query.Query{Select: gen.Expr, AttrBindings: reverse}
		for _, alias := range expr.Aliases(gen.Expr) {
			q2.Bindings = append(q2.Bindings, query.Binding{Alias: alias, Relation: "R", Key: "K"})
		}
		v2, err := q2.Execute(corpus)
		if err != nil {
			t.Fatalf("%s (generalised): %v", src, err)
		}
		if math.Abs(v1-v2) > 1e-9*math.Max(1, math.Abs(v1)) {
			t.Errorf("%s: concrete %g vs generalised %g", src, v1, v2)
		}
	}
}

// TestVerifySkipsAreRareWithAccurateCrowd: with an accurate crowd the
// system should essentially never fail to resolve a claim.
func TestVerifySkipsAreRareWithAccurateCrowd(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 80
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Corpus, w.Document, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{BatchSize: 20, Ordering: core.OrderGreedy})
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, o := range res.Outcomes {
		if o.Verdict == VerdictSkipped {
			skipped++
		}
	}
	if skipped > len(res.Outcomes)/20 {
		t.Errorf("%d of %d claims skipped", skipped, len(res.Outcomes))
	}
}

// TestReportMentionsEveryClaim: the rendered report covers each claim ID.
func TestReportMentionsEveryClaim(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 30
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Corpus, w.Document, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, c := range w.Document.Claims {
		if !strings.Contains(rep, c.Text) {
			t.Errorf("report missing claim %d text", c.ID)
		}
	}
}

// TestCrossEditionBootstrap reproduces the IEA deployment pattern: the
// 2018 edition's checks bootstrap verification of the (different) 2019
// edition. Training on last year's annotated claims must cut crowd time on
// this year's document versus a cold start.
func TestCrossEditionBootstrap(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 80
	lastYear, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2019 // same corpus vocabulary, new values and claims
	thisYear, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same relation vocabulary across editions (the agency's tables).
	if lastYear.Corpus.Names()[0] != thisYear.Corpus.Names()[0] {
		t.Fatal("editions should share the relation vocabulary")
	}

	run := func(bootstrap bool) float64 {
		sys, err := New(thisYear.Corpus, thisYear.Document, Options{Seed: 44})
		if err != nil {
			t.Fatal(err)
		}
		if bootstrap {
			if err := sys.Train(lastYear.Document.Claims); err != nil {
				t.Fatal(err)
			}
		}
		team, err := sys.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		// One batch spanning the whole document: mid-run retraining would
		// let the cold start catch up after its first batch and reduce the
		// comparison to crowd-timing noise; a single batch isolates the
		// structural advantage of arriving with trained classifiers.
		res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{BatchSize: len(thisYear.Document.Claims)})
		if err != nil {
			t.Fatal(err)
		}
		if acc := res.Accuracy(); acc < 0.9 {
			t.Errorf("bootstrap=%v accuracy = %g", bootstrap, acc)
		}
		return res.Seconds
	}
	cold := run(false)
	warm := run(true)
	if warm >= cold {
		t.Errorf("cross-edition bootstrap (%.0fs) should beat cold start (%.0fs)", warm, cold)
	}
}

// TestHopelessCrowdSkipsClaims: a crowd that corrupts every answer cannot
// produce executable queries; claims end skipped, not mislabelled.
func TestHopelessCrowdSkipsClaims(t *testing.T) {
	cfg := SmallWorld()
	cfg.NumClaims = 20
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Corpus, w.Document, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var workers []*crowd.Worker
	for i := 0; i < 3; i++ {
		bad, err := crowd.NewWorker("B", 1, 0, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, bad)
	}
	team := &crowd.Team{Workers: workers}
	// Cold start + always-wrong workers: the context is corrupted and the
	// final answer is a corrupt SQL string -> the engine must skip or
	// judge; it must never crash, and nothing should be judged correct
	// for the wrong reason more often than chance would allow.
	skippedOrJudged := 0
	for _, c := range w.Document.Claims[:10] {
		out, err := sys.VerifyClaim(context.Background(), c, team)
		if err != nil {
			t.Fatal(err)
		}
		skippedOrJudged++
		if out.Verdict == VerdictSkipped && out.Query != nil {
			t.Error("skipped outcome should carry no query")
		}
	}
	if skippedOrJudged != 10 {
		t.Error("verification loop aborted")
	}
}

// TestWorldgenPaperScaleVocabularySizes checks that the paper-scale
// configuration hits the §6 cardinalities (skipped in -short).
func TestWorldgenPaperScaleVocabularySizes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	cfg := worldgen.PaperScale()
	w, err := worldgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Document.Claims); got != 1539 {
		t.Errorf("claims = %d, want 1539", got)
	}
	if got := w.Corpus.Len(); got != 17*35*3 {
		t.Errorf("relations = %d, want 1785", got)
	}
	if got := len(w.FormulaVocab); got != 413 {
		t.Errorf("formulas = %d, want 413", got)
	}
	// About half the claims are explicit, as in the paper.
	explicit := 0
	for _, c := range w.Document.Claims {
		if c.Kind == claims.Explicit {
			explicit++
		}
	}
	frac := float64(explicit) / float64(len(w.Document.Claims))
	if frac < 0.3 || frac > 0.85 {
		t.Errorf("explicit fraction = %.2f", frac)
	}
}
