package scrutinizer

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// splitWorldDoc splits a world's document into two documents over the same
// corpus (both keep the full section range, so Validate passes).
func splitWorldDoc(w *World) (*Document, *Document) {
	half := len(w.Document.Claims) / 2
	a := &Document{Title: w.Document.Title + " (first half)", Sections: w.Document.Sections,
		Claims: w.Document.Claims[:half]}
	b := &Document{Title: w.Document.Title + " (second half)", Sections: w.Document.Sections,
		Claims: w.Document.Claims[half:]}
	return a, b
}

// mustEqualResults asserts two results are bit-identical: same crowd
// seconds, batches and per-claim verdicts/values.
func mustEqualResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Seconds != b.Seconds || a.Batches != b.Batches {
		t.Fatalf("%s: seconds/batches %v/%d vs %v/%d", label, a.Seconds, a.Batches, b.Seconds, b.Batches)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("%s: outcome counts %d vs %d", label, len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.ClaimID != y.ClaimID || x.Verdict != y.Verdict || x.Seconds != y.Seconds ||
			x.Value != y.Value || x.Suggestion != y.Suggestion || x.HasSuggestion != y.HasSuggestion {
			t.Fatalf("%s: outcome %d diverged: %+v vs %+v", label, i, x, y)
		}
	}
}

// TestVerifierMatchesSystem pins the shim equivalence: a Verifier trained
// on a document and run over that document produces verdicts bit-identical
// to the legacy single-use System constructed from the same inputs and
// pre-trained on the same claims.
func TestVerifierMatchesSystem(t *testing.T) {
	w := testWorld(t)
	opts := Options{Seed: 5}
	vopts := VerifyOptions{BatchSize: 10}

	sys, err := New(w.Corpus, w.Document, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.VerifyDocument(context.Background(), team, vopts)
	if err != nil {
		t.Fatal(err)
	}

	v, err := NewVerifier(w.Corpus, w.Document, opts)
	if err != nil {
		t.Fatal(err)
	}
	run, err := v.StartRun(context.Background(), w.Document)
	if err != nil {
		t.Fatal(err)
	}
	vteam, err := v.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Verify(context.Background(), vteam, vopts)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "verifier vs system", want, got)
	if want.Accuracy() != got.Accuracy() {
		t.Fatalf("accuracy %v vs %v", want.Accuracy(), got.Accuracy())
	}
}

// TestVerifierServesManyDocumentsWarm is the amortization acceptance
// criterion: one trained verifier serves two different documents without
// refitting the feature pipeline, and each run's verdicts are
// bit-identical to a dedicated fresh verifier trained on the same data.
func TestVerifierServesManyDocumentsWarm(t *testing.T) {
	w := testWorld(t)
	docA, docB := splitWorldDoc(w)
	opts := Options{Seed: 9}
	vopts := VerifyOptions{BatchSize: 8}

	shared, err := NewVerifier(w.Corpus, w.Document, opts)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := shared.Generation()
	dimBefore := shared.FeatureDim()

	runDoc := func(v *Verifier, doc *Document) *Result {
		t.Helper()
		run, err := v.StartRun(context.Background(), doc)
		if err != nil {
			t.Fatal(err)
		}
		team, err := v.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Verify(context.Background(), team, vopts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	gotA := runDoc(shared, docA)
	gotB := runDoc(shared, docB)

	// Serving two documents must not have refit features or retrained the
	// verifier itself: run-level retraining stays on the spawned engines.
	if shared.Generation() != genBefore || shared.FeatureDim() != dimBefore {
		t.Fatalf("runs mutated the verifier: gen %d->%d dim %d->%d",
			genBefore, shared.Generation(), dimBefore, shared.FeatureDim())
	}
	if shared.Runs() != 2 {
		t.Fatalf("Runs() = %d, want 2", shared.Runs())
	}

	// Per-document reference: a dedicated verifier built from the same
	// training data gives bit-identical verdicts.
	wantA := runDoc(mustVerifier(t, w, opts), docA)
	wantB := runDoc(mustVerifier(t, w, opts), docB)
	mustEqualResults(t, "docA shared vs dedicated", wantA, gotA)
	mustEqualResults(t, "docB shared vs dedicated", wantB, gotB)

	// And the runs were warm: the shared verifier's trained state seeded
	// every spawn, visible as a non-zero starting generation.
	if genBefore == 0 {
		t.Fatal("verifier should be trained (generation > 0)")
	}
}

func mustVerifier(t *testing.T, w *World, opts Options) *Verifier {
	t.Helper()
	v, err := NewVerifier(w.Corpus, w.Document, opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestVerifierConcurrentRuns: concurrent runs on one verifier do not race
// (the -race build is the assertion) and each matches the sequential
// result bit for bit.
func TestVerifierConcurrentRuns(t *testing.T) {
	w := testWorld(t)
	docA, docB := splitWorldDoc(w)
	opts := Options{Seed: 13}
	vopts := VerifyOptions{BatchSize: 8, Parallelism: 2}

	v := mustVerifier(t, w, opts)
	run := func(doc *Document) (*Result, error) {
		r, err := v.StartRun(context.Background(), doc)
		if err != nil {
			return nil, err
		}
		team, err := v.NewTeam(3)
		if err != nil {
			return nil, err
		}
		return r.Verify(context.Background(), team, vopts)
	}

	seqA, err := run(docA)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := run(docB)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 3
	docs := []*Document{docA, docB}
	results := make([][]*Result, len(docs))
	errs := make([]error, len(docs)*workers)
	var wg sync.WaitGroup
	for d := range docs {
		results[d] = make([]*Result, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(d, i int) {
				defer wg.Done()
				results[d][i], errs[d*workers+i] = run(docs[d])
			}(d, i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		mustEqualResults(t, "concurrent docA", seqA, results[0][i])
		mustEqualResults(t, "concurrent docB", seqB, results[1][i])
	}
}

// TestVerifierSessionPrivateEngines: sessions started from one verifier
// own private engines — answering in one does not disturb another, and
// the verifier stays reusable throughout.
func TestVerifierSessionPrivateEngines(t *testing.T) {
	w := testWorld(t)
	v := mustVerifier(t, w, Options{Seed: 3})
	m := NewSessionManager(0, 0)
	opts := SessionOptions{Verify: VerifyOptions{BatchSize: 8}, Checkers: 2}

	s1, err := v.StartSession(context.Background(), m, w.Document, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := v.StartSession(context.Background(), m, w.Document, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Owner() != v.ID() || s2.Owner() != v.ID() {
		t.Fatalf("session owners %q/%q, want verifier id %q", s1.Owner(), s2.Owner(), v.ID())
	}
	q1 := s1.Questions()
	if len(q1) == 0 {
		t.Fatal("no questions queued")
	}
	// Drive one claim to completion in s1; s2 must be untouched.
	before2 := s2.Progress()
	for next := &q1[0]; next != nil; {
		var err error
		next, err = s1.Answer(context.Background(), SessionAnswer{ClaimID: next.ClaimID, Value: "suggestion", Seconds: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	if p := s2.Progress(); p.Answered != before2.Answered || p.PendingQuestions != before2.PendingQuestions {
		t.Fatalf("answering s1 changed s2: %+v vs %+v", p, before2)
	}
	if s1.Progress().Answered == 0 {
		t.Fatal("s1 consumed no answers")
	}
}

// TestVerifierRetrainIsolation: retraining the verifier swaps the snapshot
// for future runs but never perturbs runs already started.
func TestVerifierRetrainIsolation(t *testing.T) {
	w := testWorld(t)
	docA, _ := splitWorldDoc(w)
	v := mustVerifier(t, w, Options{Seed: 21})
	vopts := VerifyOptions{BatchSize: 8}

	// Reference result from the pre-retrain state.
	preRun, err := v.StartRun(context.Background(), docA)
	if err != nil {
		t.Fatal(err)
	}
	team, err := v.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := preRun.Verify(context.Background(), team, vopts)
	if err != nil {
		t.Fatal(err)
	}

	// Start (but do not yet execute) a run, then retrain the verifier.
	parked, err := v.StartRun(context.Background(), docA)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := v.Generation()
	if err := v.Retrain(w.Document.Claims[:len(w.Document.Claims)/2]); err != nil {
		t.Fatal(err)
	}
	if v.Generation() <= genBefore {
		t.Fatal("Retrain did not advance the generation")
	}

	// The parked run still verifies from the snapshot it spawned under.
	team2, err := v.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parked.Verify(context.Background(), team2, vopts)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "parked run across retrain", want, got)
}

// TestServiceRegistry covers the corpus/verifier registry: registration,
// lookup, listing, cascade removal and ID validation.
func TestServiceRegistry(t *testing.T) {
	w := testWorld(t)
	svc := NewService()

	if _, err := svc.AddCorpus("", nil); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := svc.AddCorpus("bad id!", w.Corpus); err == nil {
		t.Error("invalid id accepted")
	}
	id, err := svc.AddCorpus("iea", w.Corpus)
	if err != nil || id != "iea" {
		t.Fatalf("AddCorpus = %q, %v", id, err)
	}
	if _, err := svc.AddCorpus("iea", w.Corpus); err == nil {
		t.Error("duplicate corpus id accepted")
	}
	auto, err := svc.AddCorpus("", w.Corpus)
	if err != nil || !strings.HasPrefix(auto, "c") {
		t.Fatalf("auto id = %q, %v", auto, err)
	}

	if _, err := svc.CreateVerifier("nope", w.Document, Options{}); err == nil {
		t.Error("verifier over unknown corpus accepted")
	}
	v, err := svc.CreateVerifier("iea", w.Document, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID() == "" || v.CorpusID() != "iea" {
		t.Fatalf("verifier ids: %q over %q", v.ID(), v.CorpusID())
	}
	if got, ok := svc.Verifier(v.ID()); !ok || got != v {
		t.Fatal("verifier not registered")
	}
	if v.TrainedOn() == 0 || v.Generation() == 0 {
		t.Fatalf("service verifier should be pre-trained: trained=%d gen=%d", v.TrainedOn(), v.Generation())
	}

	// The verifier shares the corpus's query cache.
	qc, ok := svc.CorpusQueryCache("iea")
	if !ok {
		t.Fatal("corpus cache missing")
	}
	run, err := v.StartRun(context.Background(), w.Document)
	if err != nil {
		t.Fatal(err)
	}
	team, err := v.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Verify(context.Background(), team, VerifyOptions{BatchSize: 10}); err != nil {
		t.Fatal(err)
	}
	if st := qc.Stats(); st.Entries == 0 {
		t.Errorf("run did not populate the corpus query cache: %+v", st)
	}

	infos := svc.Corpora()
	if len(infos) != 2 || infos[0].ID != "c1" || infos[1].ID != "iea" || infos[1].Verifiers != 1 {
		t.Fatalf("Corpora() = %+v", infos)
	}
	vinfos := svc.Verifiers()
	if len(vinfos) != 1 || vinfos[0].ID != v.ID() || vinfos[0].Runs != 1 {
		t.Fatalf("Verifiers() = %+v", vinfos)
	}
	if st := svc.Stats(); st.Corpora != 2 || st.Verifiers != 1 || st.Runs != 1 {
		t.Fatalf("Stats() = %+v", st)
	}

	// Removing a corpus cascades to its verifiers.
	if ok, err := svc.RemoveCorpus("iea"); err != nil || !ok {
		t.Fatalf("RemoveCorpus failed: ok=%v err=%v", ok, err)
	}
	if _, ok := svc.Verifier(v.ID()); ok {
		t.Fatal("verifier survived corpus removal")
	}
	if ok, err := svc.RemoveCorpus("iea"); err != nil || ok {
		t.Fatalf("second RemoveCorpus: ok=%v err=%v", ok, err)
	}
	if ok, err := svc.RemoveVerifier(v.ID()); err != nil || ok {
		t.Fatalf("RemoveVerifier on cascaded verifier: ok=%v err=%v", ok, err)
	}
}

// TestOrderRandomExported: the facade exposes the random-ordering ablation
// baseline the daemon already parses.
func TestOrderRandomExported(t *testing.T) {
	if OrderRandom == OrderILP || OrderRandom == OrderSequential || OrderRandom == OrderGreedy {
		t.Fatal("OrderRandom collides with another ordering")
	}
	w := testWorld(t)
	v := mustVerifier(t, w, Options{Seed: 1})
	run, err := v.StartRun(context.Background(), w.Document)
	if err != nil {
		t.Fatal(err)
	}
	team, err := v.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Verify(context.Background(), team, VerifyOptions{BatchSize: 10, Ordering: OrderRandom})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("random ordering verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
	}
}

// TestVerifierCoverage: coverage is full on the training document and
// degrades on alien text.
func TestVerifierCoverage(t *testing.T) {
	w := testWorld(t)
	v := mustVerifier(t, w, Options{Seed: 1})
	cov := v.Coverage(w.Document)
	if cov.TFIDFRatio() != 1 {
		t.Fatalf("training doc TF-IDF coverage = %g, want 1", cov.TFIDFRatio())
	}
	alien := &Document{Title: "alien", Sections: 1, Claims: []*Claim{{
		ID: 1, Text: "zyx wvu reactors quadrupled", Sentence: "zyx wvu reactors quadrupled overnight", Kind: KindGeneral,
	}}}
	acov := v.Coverage(alien)
	if acov.TFIDFRatio() >= cov.TFIDFRatio() {
		t.Fatalf("alien coverage %g not below training coverage %g", acov.TFIDFRatio(), cov.TFIDFRatio())
	}
}

// TestRunCloseRecyclesEngine: closing a finished run returns its engine to
// the verifier's pool, and a later run that recycles it — even though the
// first run retrained the engine at every batch barrier — is bit-identical
// to the first. Close is idempotent.
func TestRunCloseRecyclesEngine(t *testing.T) {
	w := testWorld(t)
	vopts := VerifyOptions{BatchSize: 10}
	v := mustVerifier(t, w, Options{Seed: 5})

	runOnce := func() *Result {
		t.Helper()
		run, err := v.StartRun(context.Background(), w.Document)
		if err != nil {
			t.Fatal(err)
		}
		defer run.Close()
		team, err := v.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Verify(context.Background(), team, vopts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := runOnce()
	for i := 0; i < 3; i++ {
		mustEqualResults(t, "recycled run", first, runOnce())
	}

	// Close twice (and on a nil run) is a no-op.
	run, err := v.StartRun(context.Background(), w.Document)
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	run.Close()
	var nilRun *Run
	nilRun.Close()
}

// TestRunCloseConcurrent: concurrent StartRun / Verify / Close cycles
// against one verifier recycle engines safely (the -race run is the real
// assertion) and deterministically.
func TestRunCloseConcurrent(t *testing.T) {
	w := testWorld(t)
	vopts := VerifyOptions{BatchSize: 10, Parallelism: 2}
	v := mustVerifier(t, w, Options{Seed: 5})

	const workers, rounds = 3, 2
	results := make([]*Result, workers*rounds)
	errs := make([]error, workers*rounds)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := g*rounds + r
				run, err := v.StartRun(context.Background(), w.Document)
				if err != nil {
					errs[i] = err
					return
				}
				team, err := v.NewTeam(3)
				if err != nil {
					errs[i] = err
					return
				}
				results[i], errs[i] = run.Verify(context.Background(), team, vopts)
				run.Close()
			}
		}(g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i := 1; i < len(results); i++ {
		mustEqualResults(t, "concurrent recycled run", results[0], results[i])
	}
}
