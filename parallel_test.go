package scrutinizer

import (
	"context"
	"runtime"
	"testing"
)

// TestVerifyDocumentParallelMatchesSequential pins the facade-level
// determinism contract: VerifyDocument with Parallelism > 1 returns exactly
// the outcomes of the sequential path, in the same order. The CI run under
// -race doubles as the data-race check on the fan-out.
func TestVerifyDocumentParallelMatchesSequential(t *testing.T) {
	w := testWorld(t)
	run := func(parallelism int) *Result {
		sys, err := New(w.Corpus, w.Document, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		team, err := sys.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{
			BatchSize:       15,
			SectionReadCost: 30,
			Parallelism:     parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seq := run(1)
	for _, parallelism := range []int{4, runtime.NumCPU()} {
		par := run(parallelism)
		if len(par.Outcomes) != len(seq.Outcomes) {
			t.Fatalf("parallelism %d: %d outcomes, want %d", parallelism, len(par.Outcomes), len(seq.Outcomes))
		}
		if par.Seconds != seq.Seconds {
			t.Errorf("parallelism %d: crowd seconds %g, want %g", parallelism, par.Seconds, seq.Seconds)
		}
		if par.Batches != seq.Batches {
			t.Errorf("parallelism %d: %d batches, want %d", parallelism, par.Batches, seq.Batches)
		}
		if par.Accuracy() != seq.Accuracy() {
			t.Errorf("parallelism %d: accuracy %g, want %g", parallelism, par.Accuracy(), seq.Accuracy())
		}
		for i := range seq.Outcomes {
			s, p := seq.Outcomes[i], par.Outcomes[i]
			if s.ClaimID != p.ClaimID || s.Verdict != p.Verdict || s.Seconds != p.Seconds {
				t.Fatalf("parallelism %d: outcome %d differs: {%d %v %g} vs {%d %v %g}",
					parallelism, i, p.ClaimID, p.Verdict, p.Seconds, s.ClaimID, s.Verdict, s.Seconds)
			}
		}
	}
}
