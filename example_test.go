package scrutinizer_test

import (
	"context"
	"fmt"
	"log"

	"github.com/repro/scrutinizer"
)

// ExampleNew builds the Figure 1 corpus fragment by hand, poses the paper's
// Example 1 claim, and verifies it with a simulated crowd of three.
func ExampleNew() {
	corpus := scrutinizer.NewCorpus()
	ged, err := scrutinizer.NewRelation("GED", "Index", []string{"2016", "2017"})
	if err != nil {
		log.Fatal(err)
	}
	if err := ged.AddRow("PGElecDemand", []float64{21546, 22209}); err != nil {
		log.Fatal(err)
	}
	if err := corpus.Add(ged); err != nil {
		log.Fatal(err)
	}

	// "In 2017, global electricity demand grew by 3%" — annotated with the
	// growth-rate check an expert would write.
	claim := &scrutinizer.Claim{
		ID:       1,
		Text:     "in 2017 global electricity demand grew by 3%",
		Sentence: "In 2017, global electricity demand grew by 3%, reaching 22 200 TWh.",
		Kind:     scrutinizer.KindExplicit,
		Param:    0.03,
		HasParam: true,
		Correct:  true,
		Truth: &scrutinizer.GroundTruth{
			Relations: []string{"GED"},
			Keys:      []string{"PGElecDemand"},
			Attrs:     []string{"2017", "2016"},
			Formula:   "a.A1 / b.A2 - 1",
			Value:     22209.0/21546.0 - 1,
		},
	}
	// A second, incorrect claim (Example 4): demand grew by 2.5%.
	wrong := &scrutinizer.Claim{
		ID:       2,
		Text:     "in 2017 global electricity demand grew by 2.5%",
		Sentence: "In 2017, global electricity demand grew by 2.5% according to the draft.",
		Kind:     scrutinizer.KindExplicit,
		Param:    0.025,
		HasParam: true,
		Truth: &scrutinizer.GroundTruth{
			Relations: []string{"GED"},
			Keys:      []string{"PGElecDemand"},
			Attrs:     []string{"2017", "2016"},
			Formula:   "a.A1 / b.A2 - 1",
			Value:     22209.0/21546.0 - 1,
		},
	}
	doc := &scrutinizer.Document{Title: "WEO demo", Sections: 1, Claims: []*scrutinizer.Claim{claim, wrong}}

	sys, err := scrutinizer.New(corpus, doc, scrutinizer.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.VerifyClaim(context.Background(), claim, team)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s\n", out.Verdict)
	fmt.Printf("query value: %.3f\n", out.Value)
	// Output:
	// verdict: correct
	// query value: 0.031
}

// ExampleSystem_VerifyDocument runs the full Algorithm 1 loop over a small
// synthetic world, fanning each batch out across four goroutines. Results
// are identical at any Parallelism setting.
func ExampleSystem_VerifyDocument() {
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 30
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := scrutinizer.New(world.Corpus, world.Document, scrutinizer.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.VerifyDocument(context.Background(), team, scrutinizer.VerifyOptions{
		BatchSize:   10,
		Parallelism: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claims verified: %d in %d batches\n", len(res.Outcomes), res.Batches)
	fmt.Printf("verdict accuracy: %.2f\n", res.Accuracy())
	// Output:
	// claims verified: 30 in 3 batches
	// verdict accuracy: 1.00
}

// ExampleNewVerifier shows the fit-once / verify-many serving shape: a
// verifier trained on an archived annotated document serves two new
// documents without refitting features, and the trained state is never
// mutated by the runs.
func ExampleNewVerifier() {
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 30
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	v, err := scrutinizer.NewVerifier(world.Corpus, world.Document, scrutinizer.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Two "new editions" checked against the same trained verifier.
	half := len(world.Document.Claims) / 2
	docs := []*scrutinizer.Document{
		{Title: "edition A", Sections: world.Document.Sections, Claims: world.Document.Claims[:half]},
		{Title: "edition B", Sections: world.Document.Sections, Claims: world.Document.Claims[half:]},
	}
	for _, doc := range docs {
		run, err := v.StartRun(context.Background(), doc)
		if err != nil {
			log.Fatal(err)
		}
		team, err := v.NewTeam(3)
		if err != nil {
			log.Fatal(err)
		}
		res, err := run.Verify(context.Background(), team, scrutinizer.VerifyOptions{BatchSize: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d claims, accuracy %.2f\n", doc.Title, len(res.Outcomes), res.Accuracy())
	}
	fmt.Printf("verifier generation after serving: %d\n", v.Generation())
	// Output:
	// edition A: 15 claims, accuracy 1.00
	// edition B: 15 claims, accuracy 1.00
	// verifier generation after serving: 1
}
