// Package scrutinizer is the public facade of the Scrutinizer
// reproduction: a mixed-initiative system for verifying statistical claims
// in text documents against a corpus of relational tables (Karagiannis,
// Saeed, Papotti, Trummer — VLDB 2020).
//
// The API is organised around three decoupled resources, so trained state
// is amortized across many checking tasks instead of being rebuilt per
// document:
//
//   - A Corpus is the registered relational data D.
//
//   - A Verifier is a corpus-bound trained model bundle: the feature
//     pipeline fitted once on a training document, classifiers trained on
//     its annotated claims and warm-start retrainable. One verifier serves
//     any number of documents and concurrent runs.
//
//   - A Run is one document verification — batch via Run.Verify, or
//     interactive via Verifier.StartSession.
//
//     world, _ := scrutinizer.GenerateWorld(scrutinizer.SmallWorld())
//     v, _ := scrutinizer.NewVerifier(world.Corpus, world.Document, scrutinizer.Options{})
//     team, _ := v.NewTeam(3)
//     run, _ := v.StartRun(world.Document)
//     result, _ := run.Verify(team, scrutinizer.VerifyOptions{})
//     fmt.Println(result.Report())
//
// Service is the multi-tenant registry over these resources; cmd/scrutinizerd
// serves it as a versioned /v1 REST API. The historical single-use System
// (scrutinizer.New welds corpus + document + freshly fitted features into
// one instance) survives as a thin compatibility shim over Verifier and
// Run.
//
// See the examples directory for runnable end-to-end programs and DESIGN.md
// for the architecture and the paper-to-package map.
package scrutinizer

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/report"
	"github.com/repro/scrutinizer/internal/session"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// Re-exported core types so callers do not need the internal packages.
type (
	// Corpus is the set of relational tables D.
	Corpus = table.Corpus
	// Relation is one statistical table.
	Relation = table.Relation
	// Document is the text T with its claims C.
	Document = claims.Document
	// Claim is one verifiable statement.
	Claim = claims.Claim
	// GroundTruth is a claim's check annotation.
	GroundTruth = claims.GroundTruth
	// Team is a crowd of simulated domain experts.
	Team = crowd.Team
	// Outcome is the verification result for one claim.
	Outcome = core.Outcome
	// CostModel carries the §5.1 crowd-time constants.
	CostModel = planner.CostModel
	// World bundles a generated corpus + document.
	World = worldgen.World
	// WorldConfig parameterises synthetic world generation.
	WorldConfig = worldgen.Config
	// QueryCache memoizes tentative execution (Algorithm 2) per corpus
	// generation; a Service keeps one per registered corpus so every
	// verifier and run over that corpus deduplicates query-generation
	// work.
	QueryCache = core.QueryCache
	// QueryCacheStats is a point-in-time cache summary.
	QueryCacheStats = core.QueryCacheStats
	// CorpusIndexStats summarises the corpus's interned index.
	CorpusIndexStats = table.IndexStats
)

// NewQueryCache builds a shared tentative-execution cache. Pass it through
// Options.QueryCache on every Verifier or System bound to the same corpus
// so concurrent verifications and sessions deduplicate query-generation
// work (Service does this automatically per registered corpus).
func NewQueryCache() *QueryCache { return core.NewQueryCache() }

// Verdict values.
const (
	VerdictCorrect   = core.VerdictCorrect
	VerdictIncorrect = core.VerdictIncorrect
	VerdictSkipped   = core.VerdictSkipped
)

// Claim kinds (paper Definitions 1 and 2).
const (
	KindExplicit = claims.Explicit
	KindGeneral  = claims.General
)

// Ordering strategies for claim scheduling: the Definition 9 ILP, the
// document-order Sequential baseline, the greedy ILP ablation and the
// seeded random-order ablation baseline of the §6.2 comparison.
const (
	OrderILP        = core.OrderILP
	OrderSequential = core.OrderSequential
	OrderGreedy     = core.OrderGreedy
	OrderRandom     = core.OrderRandom
)

// NewCorpus creates an empty relational corpus.
func NewCorpus() *Corpus { return table.NewCorpus() }

// ReadDocumentJSON parses a document (with annotations) previously written
// by Document.WriteJSON; archived past checks can bootstrap a Verifier
// (NewVerifier trains on the annotated claims) or a System through Train.
func ReadDocumentJSON(r io.Reader) (*Document, error) { return claims.ReadJSON(r) }

// ReadRelationCSV parses one relation from CSV (first column is the key
// attribute).
func ReadRelationCSV(name string, r io.Reader) (*Relation, error) {
	return table.ReadCSV(name, r)
}

// NewRelation creates a relation with a key attribute and value attributes.
func NewRelation(name, keyAttr string, attrs []string) (*Relation, error) {
	return table.NewRelation(name, keyAttr, attrs)
}

// GenerateWorld builds a synthetic IEA-like corpus and annotated document.
func GenerateWorld(cfg WorldConfig) (*World, error) { return worldgen.Generate(cfg) }

// SmallWorld returns a fast world configuration for demos and tests.
func SmallWorld() WorldConfig { return worldgen.SmallScale() }

// PaperWorld returns the paper-scale world configuration (1539 claims).
func PaperWorld() WorldConfig { return worldgen.PaperScale() }

// DefaultCostModel returns the reference §5.1 cost constants.
func DefaultCostModel() CostModel { return planner.DefaultCostModel() }

// Options configures a Verifier (or the legacy System).
type Options struct {
	// Cost overrides the crowd cost model (zero value = default).
	Cost CostModel
	// Tolerance is the admissible error rate e (default 0.05).
	Tolerance float64
	// TopK is the per-property candidate count (default 10).
	TopK int
	// EmbeddingDim sizes the word embeddings (default 32).
	EmbeddingDim int
	// Seed drives all randomised components.
	Seed int64
	// QueryCache optionally shares a tentative-execution cache across
	// verifiers over one corpus (see NewQueryCache). Nil keeps a private
	// per-verifier cache, still shared by all of that verifier's runs.
	QueryCache *QueryCache
}

// System is the legacy single-use facade: one corpus + one document + a
// feature pipeline fitted on that document. It survives as a thin shim
// over the Verifier/Run split — a System is a verifier whose training
// document is the document under verification, with classifiers
// cold-started (train them via Train or let run-level batch retraining
// warm them up). New code serving many documents should use NewVerifier
// or Service instead and fit features once.
type System struct {
	v   *Verifier
	run *Run
}

// New builds a System: it fits the feature pipeline (embeddings + TF-IDF)
// on the document text and wires the engine. Claims with annotations can be
// used for training via Train; otherwise the system cold-starts.
func New(corpus *Corpus, doc *Document, opts Options) (*System, error) {
	if corpus == nil || doc == nil {
		return nil, fmt.Errorf("scrutinizer: corpus and document are required")
	}
	v, err := newVerifier(corpus, doc, opts, false)
	if err != nil {
		return nil, err
	}
	// The shim keeps the historical single-use semantics by handing the
	// verifier's base engine itself to one eager run: Train mutates it,
	// VerifyDocument retrains it batch by batch, sessions own it.
	return &System{v: v, run: &Run{verifier: v, engine: v.base, doc: doc}}, nil
}

// Engine exposes the underlying engine for advanced use (examples, benches).
func (s *System) Engine() *core.Engine { return s.run.engine }

// Train bootstraps the classifiers from previously checked claims (those
// with Truth annotations), as when "a database of previously checked claims
// is available".
func (s *System) Train(annotated []*Claim) error { return s.run.engine.Train(annotated) }

// NewTeam creates n simulated domain experts with near-perfect judgement.
func (s *System) NewTeam(n int) (*Team, error) { return s.v.NewTeam(n) }

// VerifyOptions configures document verification.
type VerifyOptions struct {
	// BatchSize is the retraining batch (default 100).
	BatchSize int
	// SectionReadCost is the per-section skim cost in seconds.
	SectionReadCost float64
	// Ordering picks the claim-ordering strategy (default OrderILP).
	Ordering core.Ordering
	// Parallelism is how many claims of a batch are verified concurrently.
	// The default (0) uses runtime.NumCPU(); 1 forces a sequential pass.
	// Results are identical at any setting: per-claim crowd random
	// streams keep verdicts independent of execution order, and batch
	// selection / retraining stay sequential between rounds.
	Parallelism int
	// Seed drives the OrderRandom ablation baseline's batch shuffling
	// (ignored by the other orderings).
	Seed int64
}

// Result bundles outcomes with reporting helpers.
type Result struct {
	doc      *claims.Document
	Outcomes []*Outcome
	Seconds  float64
	Batches  int
}

// VerifyDocument runs the full Algorithm 1 loop over the system's document,
// verifying each batch's claims across Parallelism goroutines.
func (s *System) VerifyDocument(ctx context.Context, team *Team, opts VerifyOptions) (*Result, error) {
	return s.run.Verify(ctx, team, opts)
}

// VerifyClaim verifies a single claim (it must carry a Truth annotation for
// the simulated crowd to answer from).
func (s *System) VerifyClaim(ctx context.Context, c *Claim, team *Team) (*Outcome, error) {
	return s.run.VerifyClaim(ctx, c, team)
}

// Oracle is the mixed-initiative answer source: implement it to plug real
// fact checkers (terminal, web UI, ...) into the verification flow. See
// core.Oracle for the contract and core.ScriptedOracle for a fixture
// implementation.
type Oracle = core.Oracle

// VerifyClaimWith verifies a single claim through a custom Oracle; no
// ground-truth annotation is needed when the oracle answers from a human.
func (s *System) VerifyClaimWith(ctx context.Context, c *Claim, oracle Oracle) (*Outcome, error) {
	return s.run.VerifyClaimWith(ctx, c, oracle)
}

// Interactive sessions -------------------------------------------------------
//
// A Session is the resumable, mixed-initiative counterpart of a batch run:
// the same Algorithm 1 loop, inverted so that the engine emits pending
// question screens and consumes posted answers instead of blocking on an
// Oracle. Between answers a session is parked state — no goroutines —
// which is what lets one process host thousands of checkers answering
// over HTTP (see cmd/scrutinizerd). Both paths drive the same step
// machine, so a simulated crowd pumping a session reproduces a batch
// run's verdicts bit-for-bit.

type (
	// SessionManager is a concurrent registry of verification sessions
	// with TTL eviction.
	SessionManager = session.Manager
	// Session is one parked verification run.
	Session = session.Session
	// SessionQuestion is a pending question screen.
	SessionQuestion = session.Question
	// SessionAnswer is one checker response.
	SessionAnswer = session.Answer
	// SessionProgress is a point-in-time session view.
	SessionProgress = session.Progress
	// SessionReport aggregates a session's outcomes.
	SessionReport = session.Report
	// SessionSnapshot is the durable answer log of a session.
	SessionSnapshot = session.Snapshot
	// SessionStats aggregates a manager's registry.
	SessionStats = session.Stats
)

// NewSessionManager builds a session registry. Sessions idle longer than
// ttl are evicted (0 = never); maxSessions caps concurrent sessions
// (0 = unlimited).
func NewSessionManager(ttl time.Duration, maxSessions int) *SessionManager {
	return session.NewManager(session.Config{TTL: ttl, MaxSessions: maxSessions})
}

// SessionOptions configures an interactive session.
type SessionOptions struct {
	// Verify carries the Algorithm 1 knobs (batch size, ordering,
	// section read cost, parallelism of batch assessment/retraining).
	Verify VerifyOptions
	// Checkers is the number of humans skimming each section (the
	// SectionReadCost multiplier); default 1.
	Checkers int
}

// sessionOptions converts facade session options to the internal form.
func sessionOptions(opts SessionOptions) session.Options {
	parallelism := opts.Verify.Parallelism
	if parallelism <= 0 {
		parallelism = core.DefaultParallelism()
	}
	return session.Options{Verify: core.VerifyConfig{
		BatchSize:       opts.Verify.BatchSize,
		SectionReadCost: opts.Verify.SectionReadCost,
		Ordering:        opts.Verify.Ordering,
		Parallelism:     parallelism,
		Seed:            opts.Verify.Seed,
		Checkers:        opts.Checkers,
	}}
}

// StartSession parks the system's document in an interactive verification
// session registered with m. The session owns the system's engine from
// here on: batch-boundary retraining mutates it, so do not mix a live
// session with VerifyDocument on the same System. (Verifier.StartSession
// has no such restriction — every session gets a private engine.)
func (s *System) StartSession(ctx context.Context, m *SessionManager, opts SessionOptions) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("scrutinizer: nil session manager")
	}
	return m.Create(ctx, s.run.engine, s.run.doc, sessionOptions(opts))
}

// RestoreSession rebuilds a session from a snapshot by replaying its
// answer log. The System must be freshly constructed exactly like the
// snapshotted session's (same corpus, document, options and seed);
// verification is deterministic in (engine, document, answers), so the
// replayed session reaches a bit-identical state.
func (s *System) RestoreSession(ctx context.Context, m *SessionManager, opts SessionOptions, snap *SessionSnapshot) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("scrutinizer: nil session manager")
	}
	return m.Restore(ctx, s.run.engine, s.run.doc, sessionOptions(opts), snap)
}

// Report renders the verification report (Definition 4 output).
func (r *Result) Report() string {
	rep := &report.Report{Document: r.doc, Outcomes: r.Outcomes, Seconds: r.Seconds}
	return rep.String()
}

// Accuracy scores the verdicts against the document's injected errors.
func (r *Result) Accuracy() float64 { return core.Accuracy(r.doc, r.Outcomes) }
