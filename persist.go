package scrutinizer

// This file is the durability layer behind Service: a pluggable Store
// (write-ahead journal + model-snapshot blobs, package internal/store)
// attached to the registry so every accepted /v1 mutation is journaled
// before it is acknowledged, and a Recover pass that replays the journal on
// boot to rebuild exactly the acknowledged state:
//
//   - corpora are reconstructed from their journaled relation CSV dumps
//     (WriteCSV round-trips cells and NULLs exactly; metadata rides in the
//     payload),
//   - verifiers are re-materialized from their stored model snapshot, or —
//     when no snapshot survives — deterministically retrained from the
//     journaled training document (both paths verify bit-identically),
//   - interactive sessions are re-parked by replaying their journaled
//     answer logs against fresh spawns (verification is deterministic in
//     (engine, document, answers)).
//
// A Service without an attached store behaves exactly as before — nothing
// on the mutation paths touches the store when it is nil.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/session"
	"github.com/repro/scrutinizer/internal/store"
)

// Store is the pluggable persistence backend (see internal/store): an
// append-only journal of accepted mutations plus keyed snapshot blobs.
type Store = store.Store

// StoreStats is a point-in-time store summary (served by /healthz).
type StoreStats = store.Stats

// ErrJournal marks a mutation that was rolled back because its journal
// append failed — the store is unavailable or out of space. HTTP layers
// should map it to 503: the request may succeed once the store recovers.
var ErrJournal = errors.New("scrutinizer: journal write failed")

// NewMemoryStore returns an in-memory store: full journal semantics, no
// durability. The default when no data directory is configured, and the
// workhorse of recovery tests.
func NewMemoryStore() *store.Memory { return store.NewMemoryStore() }

// OpenFileStore opens (creating as needed) the embedded single-node store
// rooted at dir, truncating any torn journal tail left by a crash.
func OpenFileStore(dir string) (*store.File, error) { return store.OpenFileStore(dir) }

// NewFaultyStore wraps a store so the first failAfter journal appends
// succeed and every write after that fails with store.ErrInjected — the
// crash lever of the recovery test harness. With torn set, the failing
// append leaves a truncated frame in the underlying journal, the on-disk
// shape of a process dying mid-write.
func NewFaultyStore(inner Store, failAfter int, torn bool) *store.Faulty {
	return store.NewFaulty(inner, failAfter, torn)
}

// StoreFaultPlan re-exports the chaos-harness fault configuration: write
// budgets and torn tails as above, plus read-side failures and injected
// per-operation latency (how tests hold a recovering daemon in the
// not-ready state long enough to probe it).
type StoreFaultPlan = store.FaultPlan

// NewFaultyStorePlan wraps a store with the full fault plan.
func NewFaultyStorePlan(inner Store, plan StoreFaultPlan) *store.Faulty {
	return store.NewFaultyPlan(inner, plan)
}

// snapshotKind is the store snapshot namespace for verifier model blobs.
const snapshotKind = "verifier"

// verifierPayload is the OpVerifierCreate journal body: everything needed
// to deterministically rebuild the verifier (the model snapshot is only an
// optimization over retraining from this).
type verifierPayload struct {
	// Training is the training document, in the claims JSON archive form.
	Training json.RawMessage `json:"training"`
	Options  optionsPayload  `json:"options"`
}

// optionsPayload is Options minus the non-serializable QueryCache (recovery
// reattaches the corpus's shared cache, as CreateVerifier does).
type optionsPayload struct {
	Cost         CostModel `json:"cost,omitempty"`
	Tolerance    float64   `json:"tolerance,omitempty"`
	TopK         int       `json:"topk,omitempty"`
	EmbeddingDim int       `json:"embedding_dim,omitempty"`
	Seed         int64     `json:"seed,omitempty"`
}

func (p optionsPayload) options() Options {
	return Options{Cost: p.Cost, Tolerance: p.Tolerance, TopK: p.TopK, EmbeddingDim: p.EmbeddingDim, Seed: p.Seed}
}

// sessionPayload is the OpSessionCreate journal body: the parked document
// plus the run options, so answer-log replay re-parks an identical session.
type sessionPayload struct {
	Doc      json.RawMessage      `json:"doc"`
	Verify   verifyOptionsPayload `json:"verify"`
	Checkers int                  `json:"checkers,omitempty"`
}

type verifyOptionsPayload struct {
	BatchSize       int     `json:"batch_size,omitempty"`
	SectionReadCost float64 `json:"section_read_cost,omitempty"`
	Ordering        int     `json:"ordering,omitempty"`
	Parallelism     int     `json:"parallelism,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
}

func (p sessionPayload) sessionOptions() SessionOptions {
	return SessionOptions{
		Verify: VerifyOptions{
			BatchSize:       p.Verify.BatchSize,
			SectionReadCost: p.Verify.SectionReadCost,
			Ordering:        core.Ordering(p.Verify.Ordering),
			Parallelism:     p.Verify.Parallelism,
			Seed:            p.Verify.Seed,
		},
		Checkers: p.Checkers,
	}
}

// encodeDocument serialises a document in the claims JSON archive form.
func encodeDocument(doc *Document) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeDocument(raw json.RawMessage) (*Document, error) {
	return ReadDocumentJSON(bytes.NewReader(raw))
}

// relationPayload dumps one relation as its journal form.
func relationPayload(rel *Relation) (store.RelationPayload, error) {
	var buf bytes.Buffer
	if err := rel.WriteCSV(&buf); err != nil {
		return store.RelationPayload{}, err
	}
	return store.RelationPayload{Name: rel.Name(), CSV: buf.String(), Meta: rel.Metadata()}, nil
}

func decodeRelation(p store.RelationPayload) (*Relation, error) {
	rel, err := ReadRelationCSV(p.Name, strings.NewReader(p.CSV))
	if err != nil {
		return nil, err
	}
	for k, v := range p.Meta {
		rel.SetMeta(k, v)
	}
	return rel, nil
}

// journal appends one record when a store is attached, wrapping failures in
// ErrJournal. A nil store (no -data-dir, pre-PR-6 behavior) is a no-op.
func (s *Service) journal(rec *store.Record) error {
	st := s.store
	if st == nil {
		return nil
	}
	if err := st.Append(rec); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	return nil
}

// StoreStats reports the attached store's summary; ok is false when the
// service runs without one.
func (s *Service) StoreStats() (StoreStats, bool) {
	if s.store == nil {
		return StoreStats{}, false
	}
	return s.store.Stats(), true
}

// journalSessionCreate records a newly parked verifier-owned session.
func (s *Service) journalSessionCreate(verifierID, sessionID string, doc *Document, opts SessionOptions) error {
	docJSON, err := encodeDocument(doc)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(sessionPayload{
		Doc: docJSON,
		Verify: verifyOptionsPayload{
			BatchSize:       opts.Verify.BatchSize,
			SectionReadCost: opts.Verify.SectionReadCost,
			Ordering:        int(opts.Verify.Ordering),
			Parallelism:     opts.Verify.Parallelism,
			Seed:            opts.Verify.Seed,
		},
		Checkers: opts.Checkers,
	})
	if err != nil {
		return err
	}
	return s.journal(&store.Record{
		Op: store.OpSessionCreate, Session: sessionID, Verifier: verifierID, Payload: payload,
	})
}

// saveVerifierSnapshot parks the verifier's encoded model state in the
// store. Best-effort by contract: the journal record is the source of truth
// and recovery falls back to deterministic retraining, so snapshot failures
// must not fail the request that triggered them.
func (s *Service) saveVerifierSnapshot(v *Verifier) error {
	if s.store == nil {
		return nil
	}
	blob, err := v.snapshot().EncodeModels()
	if err != nil {
		return err
	}
	return s.store.SaveSnapshot(snapshotKind, v.id, blob)
}

// RecoveryStats summarises one Recover pass (served by /healthz).
type RecoveryStats struct {
	// Records is the number of journal records replayed.
	Records uint64 `json:"journal_records"`
	// Corpora and Verifiers count the recovered registry.
	Corpora   int `json:"corpora"`
	Verifiers int `json:"verifiers"`
	// VerifiersFromSnapshot were re-materialized from a stored model
	// snapshot; VerifiersRetrained fell back to deterministic retraining
	// from the journaled training document (missing/corrupt snapshot).
	VerifiersFromSnapshot int `json:"verifiers_from_snapshot"`
	VerifiersRetrained    int `json:"verifiers_retrained"`
	// Sessions were re-parked by answer-log replay; SessionsSkipped
	// referenced resources deleted later in the journal or failed replay.
	Sessions        int `json:"sessions_restored"`
	SessionsSkipped int `json:"sessions_skipped"`
}

// recVerifier is one surviving verifier.create during replay.
type recVerifier struct {
	id       string
	corpusID string
	payload  verifierPayload
}

// recSession is one surviving session.create during replay, with its
// accumulated answer log.
type recSession struct {
	id       string
	verifier string
	payload  sessionPayload
	answers  []session.Answer
}

// Recover rebuilds the service from st's journal and attaches st, so
// subsequent mutations are journaled; when mgr is non-nil, journaled live
// sessions are re-parked into it and its hooks are installed so session
// activity journals too. The service must be empty and not yet serving —
// Recover is a boot-time call, not a live failover. It is safe to call on a
// fresh store: the replay is empty and the service just comes up attached.
func (s *Service) Recover(st Store, mgr *SessionManager) (RecoveryStats, error) {
	if st == nil {
		return RecoveryStats{}, fmt.Errorf("scrutinizer: nil store")
	}
	var stats RecoveryStats

	// Pass 1: fold the journal into the surviving resource set. Corpora
	// are materialized eagerly (relation ops mutate them in place);
	// verifiers and sessions are collected and materialized after, so a
	// resource deleted later in the journal is never built at all.
	corpora := make(map[string]*Corpus)
	var corpusOrder []string
	verifiers := make(map[string]*recVerifier)
	var verifierOrder []string
	sessions := make(map[string]*recSession)
	var sessionOrder []string
	var corpusSeq, verifierSeq uint64

	err := st.Replay(func(rec *store.Record) error {
		stats.Records++
		switch rec.Op {
		case store.OpCorpusCreate:
			var p store.CorpusPayload
			if len(rec.Payload) > 0 {
				if err := json.Unmarshal(rec.Payload, &p); err != nil {
					return fmt.Errorf("corpus %q payload: %w", rec.Corpus, err)
				}
			}
			c := NewCorpus()
			for _, rp := range p.Relations {
				rel, err := decodeRelation(rp)
				if err != nil {
					return fmt.Errorf("corpus %q relation %q: %w", rec.Corpus, rp.Name, err)
				}
				if err := c.Add(rel); err != nil {
					return fmt.Errorf("corpus %q: %w", rec.Corpus, err)
				}
			}
			if _, dup := corpora[rec.Corpus]; dup {
				return fmt.Errorf("corpus %q created twice", rec.Corpus)
			}
			corpora[rec.Corpus] = c
			corpusOrder = append(corpusOrder, rec.Corpus)
			bumpSeq(&corpusSeq, rec.Corpus, 'c')

		case store.OpCorpusDelete:
			delete(corpora, rec.Corpus)
			// The live RemoveCorpus cascades over the corpus's verifiers;
			// replay mirrors it.
			for id, v := range verifiers {
				if v.corpusID == rec.Corpus {
					delete(verifiers, id)
				}
			}

		case store.OpRelationPut:
			c, ok := corpora[rec.Corpus]
			if !ok {
				return fmt.Errorf("relation put on unknown corpus %q", rec.Corpus)
			}
			var rp store.RelationPayload
			if err := json.Unmarshal(rec.Payload, &rp); err != nil {
				return fmt.Errorf("relation %q payload: %w", rec.Relation, err)
			}
			rel, err := decodeRelation(rp)
			if err != nil {
				return fmt.Errorf("relation %q: %w", rec.Relation, err)
			}
			c.Remove(rel.Name())
			if err := c.Add(rel); err != nil {
				return fmt.Errorf("relation %q: %w", rec.Relation, err)
			}

		case store.OpRelationDelete:
			if c, ok := corpora[rec.Corpus]; ok {
				c.Remove(rec.Relation)
			}

		case store.OpVerifierCreate:
			var p verifierPayload
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("verifier %q payload: %w", rec.Verifier, err)
			}
			if _, ok := corpora[rec.Corpus]; !ok {
				return fmt.Errorf("verifier %q on unknown corpus %q", rec.Verifier, rec.Corpus)
			}
			verifiers[rec.Verifier] = &recVerifier{id: rec.Verifier, corpusID: rec.Corpus, payload: p}
			verifierOrder = append(verifierOrder, rec.Verifier)
			bumpSeq(&verifierSeq, rec.Verifier, 'v')

		case store.OpVerifierDelete:
			delete(verifiers, rec.Verifier)

		case store.OpSessionCreate:
			var p sessionPayload
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("session %q payload: %w", rec.Session, err)
			}
			sessions[rec.Session] = &recSession{id: rec.Session, verifier: rec.Verifier, payload: p}
			sessionOrder = append(sessionOrder, rec.Session)

		case store.OpSessionAnswer:
			sess, ok := sessions[rec.Session]
			if !ok {
				// The session was already deleted (answers race the
				// delete only across sessions, never within one) or its
				// create never committed; either way nothing to apply.
				return nil
			}
			var a session.Answer
			if err := json.Unmarshal(rec.Payload, &a); err != nil {
				return fmt.Errorf("session %q answer: %w", rec.Session, err)
			}
			sess.answers = append(sess.answers, a)

		case store.OpSessionDelete:
			// Explicit delete or TTL eviction: the session must not be
			// resurrected. Unknown IDs are tolerated (a create whose
			// journal append failed after the registry accepted it was
			// rolled back, but its delete may still have committed).
			delete(sessions, rec.Session)

		default:
			return fmt.Errorf("unknown journal op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("scrutinizer: replaying journal: %w", err)
	}

	// Pass 2: materialize into the registry, mutating state directly —
	// the store is not attached yet, so nothing re-journals.
	s.mu.Lock()
	if len(s.corpora) != 0 || len(s.verifiers) != 0 {
		s.mu.Unlock()
		return stats, fmt.Errorf("scrutinizer: Recover requires an empty service")
	}
	for _, id := range corpusOrder {
		c, ok := corpora[id]
		if !ok {
			continue
		}
		s.corpora[id] = &serviceCorpus{id: id, corpus: c, qcache: NewQueryCache(), created: time.Now()}
		stats.Corpora++
	}
	if corpusSeq > s.corpusSeq {
		s.corpusSeq = corpusSeq
	}
	if verifierSeq > s.verifierSeq {
		s.verifierSeq = verifierSeq
	}
	s.mu.Unlock()

	for _, id := range verifierOrder {
		rv, ok := verifiers[id]
		if !ok {
			continue
		}
		v, fromSnap, err := s.rebuildVerifier(st, rv)
		if err != nil {
			return stats, fmt.Errorf("scrutinizer: rebuilding verifier %q: %w", id, err)
		}
		s.mu.Lock()
		s.verifiers[id] = v
		s.mu.Unlock()
		stats.Verifiers++
		if fromSnap {
			stats.VerifiersFromSnapshot++
		} else {
			stats.VerifiersRetrained++
		}
	}

	// Re-park sessions by answer-log replay. Hooks are not installed yet,
	// so replay does not re-journal (and Session.Answer additionally
	// suppresses the answer hook during Restore).
	if mgr != nil {
		for _, id := range sessionOrder {
			rs, ok := sessions[id]
			if !ok {
				continue
			}
			v, live := s.Verifier(rs.verifier)
			if !live {
				stats.SessionsSkipped++
				continue
			}
			doc, err := decodeDocument(rs.payload.Doc)
			if err != nil {
				return stats, fmt.Errorf("scrutinizer: session %q document: %w", id, err)
			}
			snap := &SessionSnapshot{ID: rs.id, Answers: rs.answers}
			// Recovery replay runs detached: boot must re-park every
			// journaled session or count it skipped, never half-replay.
			if _, err := v.RestoreSession(context.Background(), mgr, doc, rs.payload.sessionOptions(), snap); err != nil {
				// A full registry or a replay mismatch loses the session
				// but not the boot; count it and keep going.
				stats.SessionsSkipped++
				continue
			}
			stats.Sessions++
		}
	}

	// Attach: from here every accepted mutation journals.
	s.store = st
	if mgr != nil {
		mgr.SetHooks(session.Hooks{
			OnAnswer: func(sess *Session, a session.Answer) {
				if sess.Owner() == "" {
					return // legacy, non-journaled session
				}
				payload, err := json.Marshal(a)
				if err != nil {
					return
				}
				// The hook runs under the session lock, so journal order
				// matches apply order. A failed append loses at most this
				// answer's durability; the client was not yet acknowledged.
				_ = s.journal(&store.Record{
					Op: store.OpSessionAnswer, Session: sess.ID(),
					Verifier: sess.Owner(), Payload: payload,
				})
			},
			OnEnd: func(id, owner string, evicted bool) {
				if owner == "" {
					return
				}
				_ = s.journal(&store.Record{Op: store.OpSessionDelete, Session: id, Verifier: owner})
			},
		})
	}
	return stats, nil
}

// rebuildVerifier re-materializes one verifier: from its stored model
// snapshot when one loads and restores cleanly, otherwise by deterministic
// retraining from the journaled training document. Both paths produce
// bit-identical verification behavior; the snapshot just skips the fit.
func (s *Service) rebuildVerifier(st Store, rv *recVerifier) (*Verifier, bool, error) {
	entry, ok := s.corpusEntry(rv.corpusID)
	if !ok {
		return nil, false, fmt.Errorf("corpus %q is gone", rv.corpusID)
	}
	training, err := decodeDocument(rv.payload.Training)
	if err != nil {
		return nil, false, fmt.Errorf("training document: %w", err)
	}
	opts := rv.payload.Options.options()
	if opts.QueryCache == nil {
		opts.QueryCache = entry.qcache
	}

	if blob, err := st.LoadSnapshot(snapshotKind, rv.id); err == nil {
		v, err := newVerifier(entry.corpus, training, opts, false)
		if err != nil {
			return nil, false, err
		}
		if err := v.base.RestoreTrained(blob); err == nil {
			v.trained = countAnnotated(training.Claims)
			v.id, v.corpusID, v.svc = rv.id, rv.corpusID, s
			return v, true, nil
		}
		// Corrupt or incompatible snapshot: fall through to retraining —
		// the journal, not the snapshot, is the source of truth.
	}
	v, err := NewVerifier(entry.corpus, training, opts)
	if err != nil {
		return nil, false, err
	}
	v.id, v.corpusID, v.svc = rv.id, rv.corpusID, s
	return v, false, nil
}

// corpusEntry resolves a registered corpus entry.
func (s *Service) corpusEntry(id string) (*serviceCorpus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.corpora[id]
	return e, ok
}

func countAnnotated(cs []*Claim) int {
	n := 0
	for _, c := range cs {
		if c != nil && c.Truth != nil {
			n++
		}
	}
	return n
}

// bumpSeq advances a mint counter past a recovered "c7"/"v12"-style ID so
// post-recovery minting never collides with recovered resources.
func bumpSeq(seq *uint64, id string, prefix byte) {
	if len(id) < 2 || id[0] != prefix {
		return
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err == nil && n > *seq {
		*seq = n
	}
}
