package scrutinizer

// This file is the multi-tenant service API: the decoupling of long-lived
// trained state from per-document work that lets one process amortize
// learning across many checking tasks (the paper's premise — IEA checkers
// verify report after report against the same statistical corpus).
//
// Three resources replace the single-use System:
//
//   - Corpus: registered relational data, shared read-only by everything
//     bound to it, with one tentative-execution QueryCache per corpus.
//   - Verifier: a corpus-bound trained model bundle — the feature pipeline
//     fitted once on a training document, classifiers trained on its
//     annotations and warm-start retrainable as new checked claims
//     accumulate. Internally the verifier keeps an immutable model
//     snapshot; starting a run spawns a private engine from it, so any
//     number of concurrent runs never race batch-boundary retraining.
//   - Run: one document verification — batch (Run.Verify) or interactive
//     (Verifier.StartSession) — executed against a Verifier.
//
// Service is the registry tying them together for multi-tenant serving
// (cmd/scrutinizerd exposes it as the versioned /v1 REST surface). The
// legacy System facade survives as a thin shim over these types.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/session"
	"github.com/repro/scrutinizer/internal/store"
)

// FeatureCoverage reports how much of a document's text a verifier's
// fitted vocabularies cover (the out-of-vocabulary signal when a verifier
// trained on one document serves another).
type FeatureCoverage = feature.Coverage

// Verifier is a corpus-bound, trained, reusable model bundle: the feature
// pipeline is fitted once on a training document and the four property
// classifiers are trained on its annotated claims. A Verifier is safe for
// concurrent use — StartRun and StartSession spawn private engines from an
// immutable snapshot of the trained state, and Retrain swaps the snapshot
// atomically — so one Verifier can serve any number of documents and
// concurrent runs without refitting features or racing retraining.
type Verifier struct {
	id       string // assigned by Service; "" for standalone verifiers
	corpusID string
	svc      *Service // owning registry; nil for standalone verifiers
	corpus   *Corpus
	pipe     *feature.Pipeline
	opts     Options
	created  time.Time

	mu      sync.RWMutex
	base    *core.Engine        // training home; mutated only by Retrain
	snap    *core.ModelSnapshot // lazily derived from base, reset by Retrain
	trained int                 // annotated claims in the last (re)train

	// runs counts runs + sessions started. An atomic, not mu-guarded:
	// StartRun is on the per-request hot path, and bumping a counter must
	// not contend with Retrain holding the model lock.
	runs atomic.Uint64
}

// NewVerifier builds a verifier over a corpus from a training document:
// the feature pipeline (embeddings + TF-IDF) is fitted on the document's
// text, and the classifiers are trained on its annotated claims (those
// with Truth set — "a database of previously checked claims"). A document
// with no annotations yields a cold-start verifier: runs still work, they
// just cost the checkers more questions until run-level retraining warms
// the clones up.
//
// Unlike New, the resulting verifier is not welded to the training
// document: StartRun and StartSession accept any document over the same
// corpus, reusing the fitted pipeline and trained classifiers.
func NewVerifier(corpus *Corpus, training *Document, opts Options) (*Verifier, error) {
	return newVerifier(corpus, training, opts, true)
}

// newVerifier is NewVerifier with the initial classifier fit optional: the
// legacy System facade constructs its verifier untrained so System.New
// keeps its historical cold-start semantics (training happens through
// System.Train or at run-level batch barriers).
func newVerifier(corpus *Corpus, training *Document, opts Options, pretrain bool) (*Verifier, error) {
	if corpus == nil || training == nil {
		return nil, fmt.Errorf("scrutinizer: corpus and training document are required")
	}
	if err := training.Validate(); err != nil {
		return nil, err
	}
	if len(training.Claims) == 0 {
		return nil, fmt.Errorf("scrutinizer: training document has no claims")
	}
	dim := opts.EmbeddingDim
	if dim <= 0 {
		dim = 32
	}
	var sentences, texts []string
	for _, c := range training.Claims {
		sentences = append(sentences, c.Sentence)
		texts = append(texts, c.Text)
	}
	pipe, err := feature.Fit(sentences, texts, feature.Config{
		Embedding: embed.Config{Dim: dim, Seed: opts.Seed},
		MinDF:     1,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if opts.Cost != (CostModel{}) {
		cfg.Cost = opts.Cost
	}
	if opts.Tolerance > 0 {
		cfg.Tolerance = opts.Tolerance
	}
	if opts.TopK > 0 {
		cfg.TopK = opts.TopK
	}
	cfg.Classifier.Seed = opts.Seed
	cfg.QueryCache = opts.QueryCache
	engine, err := core.NewEngine(corpus, pipe, cfg)
	if err != nil {
		return nil, err
	}
	v := &Verifier{
		corpus:  corpus,
		pipe:    pipe,
		opts:    opts,
		created: time.Now(),
		base:    engine,
	}
	if pretrain {
		if err := v.Retrain(training.Claims); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// ID returns the verifier's registry identifier ("" when the verifier was
// built standalone rather than through a Service).
func (v *Verifier) ID() string { return v.id }

// CorpusID returns the registry identifier of the verifier's corpus (""
// for standalone verifiers).
func (v *Verifier) CorpusID() string { return v.corpusID }

// Corpus returns the relational corpus the verifier is bound to.
func (v *Verifier) Corpus() *Corpus { return v.corpus }

// Retrain refits the classifiers on a set of annotated claims (claims
// without Truth are skipped). When the label vocabulary is stable the
// underlying models warm-start from their previous weights. Retraining
// affects only runs started afterwards: live runs keep the snapshot they
// spawned from.
func (v *Verifier) Retrain(annotated []*Claim) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.base.Train(annotated); err != nil {
		return err
	}
	n := 0
	for _, c := range annotated {
		if c != nil && c.Truth != nil {
			n++
		}
	}
	v.trained = n
	v.snap = nil // next run snapshots the new state
	return nil
}

// snapshot returns the current immutable model snapshot, deriving it from
// the base engine on first use after construction or Retrain.
func (v *Verifier) snapshot() *core.ModelSnapshot {
	v.mu.RLock()
	s := v.snap
	v.mu.RUnlock()
	if s != nil {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.snap == nil {
		v.snap = v.base.Snapshot()
	}
	return v.snap
}

// StartRun starts one batch verification of a document against the
// verifier's trained state. The run owns a private engine spawned from
// the current snapshot: its batch-boundary retraining warms it up over
// the course of the run without ever touching the verifier, so concurrent
// runs are independent and deterministic.
func (v *Verifier) StartRun(ctx context.Context, doc *Document) (*Run, error) {
	if doc == nil {
		return nil, fmt.Errorf("scrutinizer: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	if len(doc.Claims) == 0 {
		return nil, fmt.Errorf("scrutinizer: document has no claims")
	}
	// Spawning is cheap (pooled engines), but refuse work for a caller
	// that has already hung up rather than hand out an engine for it.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scrutinizer: start run: %w", err)
	}
	engine := v.snapshot().Spawn()
	v.runs.Add(1)
	return &Run{verifier: v, engine: engine, doc: doc}, nil
}

// StartSession parks a document in an interactive verification session
// registered with m, executing against a private engine spawned from the
// verifier's current snapshot (the interactive counterpart of StartRun).
// The session is tagged with the verifier's ID for registry statistics.
// When the verifier's service has a store attached, the session (document
// plus options) is journaled before the handle is returned — and every
// accepted answer after it — so a crash re-parks the session by replay.
func (v *Verifier) StartSession(ctx context.Context, m *SessionManager, doc *Document, opts SessionOptions) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("scrutinizer: nil session manager")
	}
	r, err := v.StartRun(ctx, doc)
	if err != nil {
		return nil, err
	}
	sess, err := m.Create(ctx, r.engine, doc, v.sessionOptions(opts))
	if err != nil {
		r.Close()
		return nil, err
	}
	if v.svc != nil && v.svc.store != nil {
		if err := v.svc.journalSessionCreate(v.id, sess.ID(), doc, opts); err != nil {
			// Not durable, not acknowledged: take the session back out.
			// The removal's own journal hook fails against the same dead
			// store, which is fine — the journal then holds neither.
			m.Remove(sess.ID())
			return nil, err
		}
	}
	return sess, nil
}

// RestoreSession rebuilds a session from a snapshot by replaying its
// answer log against a fresh spawn of the verifier's current model
// snapshot. The verifier must be in the same trained state as when the
// snapshotted session was created (same corpus, training data, options
// and seed, no intervening Retrain); replay then reaches a bit-identical
// session state.
func (v *Verifier) RestoreSession(ctx context.Context, m *SessionManager, doc *Document, opts SessionOptions, snap *SessionSnapshot) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("scrutinizer: nil session manager")
	}
	r, err := v.StartRun(ctx, doc)
	if err != nil {
		return nil, err
	}
	sess, err := m.Restore(ctx, r.engine, doc, v.sessionOptions(opts), snap)
	if err != nil {
		r.Close()
		return nil, err
	}
	return sess, nil
}

func (v *Verifier) sessionOptions(opts SessionOptions) session.Options {
	so := sessionOptions(opts)
	so.Owner = v.id
	return so
}

// NewTeam creates n simulated domain experts with near-perfect judgement,
// seeded from the verifier's options so crowd behaviour is reproducible.
func (v *Verifier) NewTeam(n int) (*Team, error) {
	return crowd.NewTeam("W", n, 0.97, v.opts.Seed+1)
}

// Coverage aggregates the fitted vocabularies' coverage of a document —
// how much of its text the verifier's training vocabulary knows. Serve it
// alongside run results so operators can spot documents drifting away
// from the training distribution.
func (v *Verifier) Coverage(doc *Document) FeatureCoverage {
	var cov FeatureCoverage
	if doc == nil {
		return cov
	}
	for _, c := range doc.Claims {
		cov = cov.Add(v.pipe.Coverage(c.Sentence, c.Text))
	}
	return cov
}

// Generation returns the model generation of the verifier's trained state
// (how many times Retrain refit the classifiers).
func (v *Verifier) Generation() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.base.Generation()
}

// TrainedOn returns the number of annotated claims in the verifier's last
// (re)train; 0 for a cold-start verifier.
func (v *Verifier) TrainedOn() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.trained
}

// Runs returns how many runs and sessions the verifier has started.
func (v *Verifier) Runs() uint64 { return v.runs.Load() }

// Created returns the verifier's construction time.
func (v *Verifier) Created() time.Time { return v.created }

// FeatureDim returns the fitted feature-space width (embedding dimension
// plus TF-IDF vocabulary size).
func (v *Verifier) FeatureDim() int { return v.pipe.Dim() }

// Run is one document verification against a Verifier: a private engine
// spawned from the verifier's trained snapshot plus the document under
// check. A Run is single-use (Verify consumes it) and not safe for
// concurrent use; start one Run per goroutine instead — they are cheap,
// which is the point of the split.
type Run struct {
	verifier *Verifier
	engine   *core.Engine
	doc      *claims.Document
}

// Document returns the document under verification.
func (r *Run) Document() *Document { return r.doc }

// Engine exposes the run's private engine for advanced use (examples,
// benches, diagnostics).
func (r *Run) Engine() *core.Engine { return r.engine }

// Coverage reports the verifier's vocabulary coverage of this run's
// document.
func (r *Run) Coverage() FeatureCoverage { return r.verifier.Coverage(r.doc) }

// Verify runs the full Algorithm 1 loop over the run's document with a
// simulated crowd team answering every question screen. Batch-boundary
// retraining mutates only the run's private engine.
func (r *Run) Verify(ctx context.Context, team *Team, opts VerifyOptions) (*Result, error) {
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = core.DefaultParallelism()
	}
	res, err := r.engine.Verify(ctx, r.doc, team, core.VerifyConfig{
		BatchSize:       opts.BatchSize,
		SectionReadCost: opts.SectionReadCost,
		Ordering:        opts.Ordering,
		Parallelism:     parallelism,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{doc: r.doc, Outcomes: res.Outcomes, Seconds: res.Seconds, Batches: res.Batches}, nil
}

// VerifyClaim verifies a single claim of the run's document (it must carry
// a Truth annotation for the simulated crowd to answer from).
func (r *Run) VerifyClaim(ctx context.Context, c *Claim, team *Team) (*Outcome, error) {
	return r.engine.VerifyClaim(ctx, c, team)
}

// VerifyClaimWith verifies a single claim through a custom Oracle.
func (r *Run) VerifyClaimWith(ctx context.Context, c *Claim, oracle Oracle) (*Outcome, error) {
	return r.engine.VerifyClaimWith(ctx, c, oracle)
}

// Close releases the run's private engine back to the verifier's snapshot
// pool, where the next StartRun against the same trained state re-primes
// it in place instead of allocating a fresh engine. Optional (a run that
// is never closed is simply collected), safe to call more than once, and
// terminal: the Run must not be used afterwards. Results and Outcomes
// already returned stay valid.
func (r *Run) Close() {
	if r == nil || r.engine == nil {
		return
	}
	r.engine.Release()
	r.engine = nil
}

// Service ---------------------------------------------------------------------

// Service is the multi-tenant registry behind the /v1 REST surface:
// corpora (each with its own shared QueryCache) and the verifiers trained
// over them. All methods are safe for concurrent use.
type Service struct {
	// store, when non-nil, journals every accepted mutation before the
	// call acknowledges it (see persist.go). Attached by Recover before
	// the service starts handling traffic; nil keeps the registry
	// ephemeral, the pre-durability behavior.
	store Store

	mu          sync.RWMutex
	corpora     map[string]*serviceCorpus
	verifiers   map[string]*Verifier
	corpusSeq   uint64
	verifierSeq uint64
}

// serviceCorpus is one registered corpus plus the caches shared by every
// verifier and run bound to it.
type serviceCorpus struct {
	id      string
	corpus  *Corpus
	qcache  *QueryCache
	created time.Time
}

// NewService creates an empty registry.
func NewService() *Service {
	return &Service{
		corpora:   make(map[string]*serviceCorpus),
		verifiers: make(map[string]*Verifier),
	}
}

// validID rejects registry identifiers that would not survive a URL path
// segment.
func validID(id string) error {
	if len(id) > 128 {
		return fmt.Errorf("scrutinizer: id longer than 128 bytes")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("scrutinizer: id %q contains %q (allowed: letters, digits, '-', '_', '.')", id, r)
		}
	}
	return nil
}

// AddCorpus registers a corpus under id (empty id mints "c1", "c2", ...)
// and returns the assigned identifier. The corpus gets its own shared
// QueryCache: every verifier created over it deduplicates tentative
// execution with every other.
func (s *Service) AddCorpus(id string, c *Corpus) (string, error) {
	if c == nil {
		return "", fmt.Errorf("scrutinizer: nil corpus")
	}
	if err := validID(id); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		for {
			s.corpusSeq++
			id = fmt.Sprintf("c%d", s.corpusSeq)
			if _, taken := s.corpora[id]; !taken {
				break
			}
		}
	} else if _, dup := s.corpora[id]; dup {
		return "", fmt.Errorf("scrutinizer: corpus %q already registered", id)
	}
	rec, err := corpusCreateRecord(id, c)
	if err != nil {
		return "", err
	}
	s.corpora[id] = &serviceCorpus{id: id, corpus: c, qcache: NewQueryCache(), created: time.Now()}
	if err := s.journal(rec); err != nil {
		delete(s.corpora, id) // not durable, not acknowledged
		return "", err
	}
	return id, nil
}

// corpusCreateRecord dumps a corpus's relations into its journal record.
func corpusCreateRecord(id string, c *Corpus) (*store.Record, error) {
	var p store.CorpusPayload
	for _, name := range c.Names() {
		rel, err := c.Relation(name)
		if err != nil {
			return nil, err
		}
		rp, err := relationPayload(rel)
		if err != nil {
			return nil, err
		}
		p.Relations = append(p.Relations, rp)
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	return &store.Record{Op: store.OpCorpusCreate, Corpus: id, Payload: payload}, nil
}

// Corpus returns a registered corpus.
func (s *Service) Corpus(id string) (*Corpus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.corpora[id]
	if !ok {
		return nil, false
	}
	return e.corpus, true
}

// ErrNoCorpus reports a relation mutation against an unregistered corpus.
var ErrNoCorpus = errors.New("scrutinizer: no such corpus")

// PutRelation uploads (or replaces) one relation of a registered corpus,
// reporting whether an existing relation was replaced. The mutation is
// journaled before it is acknowledged; a failed append restores the prior
// relation and surfaces as ErrJournal. Callers are responsible for the
// freeze discipline (no verifier may be bound to the corpus) and for
// serializing mutations of one corpus — the HTTP layer holds a per-corpus
// lock around this.
func (s *Service) PutRelation(corpusID string, rel *Relation) (bool, error) {
	if rel == nil {
		return false, fmt.Errorf("scrutinizer: nil relation")
	}
	entry, ok := s.corpusEntry(corpusID)
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrNoCorpus, corpusID)
	}
	rp, err := relationPayload(rel)
	if err != nil {
		return false, err
	}
	payload, err := json.Marshal(rp)
	if err != nil {
		return false, err
	}
	var prior *Relation
	if entry.corpus.Has(rel.Name()) {
		prior, _ = entry.corpus.Relation(rel.Name())
	}
	entry.corpus.Remove(rel.Name())
	if err := entry.corpus.Add(rel); err != nil {
		if prior != nil {
			_ = entry.corpus.Add(prior)
		}
		return false, err
	}
	if err := s.journal(&store.Record{
		Op: store.OpRelationPut, Corpus: corpusID, Relation: rel.Name(), Payload: payload,
	}); err != nil {
		entry.corpus.Remove(rel.Name())
		if prior != nil {
			_ = entry.corpus.Add(prior)
		}
		return false, err
	}
	return prior != nil, nil
}

// DropRelation deletes one relation of a registered corpus, reporting
// whether it existed. Journaled like PutRelation, with the same caller
// obligations.
func (s *Service) DropRelation(corpusID, name string) (bool, error) {
	entry, ok := s.corpusEntry(corpusID)
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrNoCorpus, corpusID)
	}
	if !entry.corpus.Has(name) {
		return false, nil
	}
	prior, _ := entry.corpus.Relation(name)
	entry.corpus.Remove(name)
	if err := s.journal(&store.Record{
		Op: store.OpRelationDelete, Corpus: corpusID, Relation: name,
	}); err != nil {
		if prior != nil {
			_ = entry.corpus.Add(prior)
		}
		return false, err
	}
	return true, nil
}

// CorpusQueryCache returns the shared tentative-execution cache of a
// registered corpus (health reporting).
func (s *Service) CorpusQueryCache(id string) (*QueryCache, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.corpora[id]
	if !ok {
		return nil, false
	}
	return e.qcache, true
}

// RemoveCorpus drops a corpus and every verifier bound to it, reporting
// whether the corpus was registered. Live runs and sessions keep working
// on their spawned engines; they just can no longer be recreated. With a
// store attached the cascade is journaled — and the dropped verifiers'
// model snapshots deleted — before the call returns, so recovery never
// resurrects any of it; a failed journal append rolls the removal back and
// surfaces as ErrJournal.
func (s *Service) RemoveCorpus(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.corpora[id]
	if !ok {
		return false, nil
	}
	delete(s.corpora, id)
	var dropped []*Verifier
	for vid, v := range s.verifiers {
		if v.corpusID == id {
			delete(s.verifiers, vid)
			dropped = append(dropped, v)
		}
	}
	if err := s.journal(&store.Record{Op: store.OpCorpusDelete, Corpus: id}); err != nil {
		// Not durable: reinstate so the registry matches the journal.
		s.corpora[id] = entry
		for _, v := range dropped {
			s.verifiers[v.id] = v
		}
		return false, err
	}
	if s.store != nil {
		for _, v := range dropped {
			// Best-effort: a surviving snapshot is unreachable garbage,
			// not a correctness problem — replay has no verifier for it.
			_ = s.store.DeleteSnapshot(snapshotKind, v.id)
		}
	}
	return true, nil
}

// CreateVerifier trains a verifier over a registered corpus (see
// NewVerifier) and registers it under a minted "v1", "v2", ... id. The
// verifier shares the corpus's QueryCache unless opts.QueryCache overrides
// it.
func (s *Service) CreateVerifier(corpusID string, training *Document, opts Options) (*Verifier, error) {
	s.mu.RLock()
	entry, ok := s.corpora[corpusID]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scrutinizer: no corpus %q", corpusID)
	}
	if opts.QueryCache == nil {
		opts.QueryCache = entry.qcache
	}
	v, err := NewVerifier(entry.corpus, training, opts)
	if err != nil {
		return nil, err
	}
	// The journal record carries the training document and options — the
	// deterministic-retrain fallback when no model snapshot survives.
	trainingJSON, err := encodeDocument(training)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(verifierPayload{
		Training: trainingJSON,
		Options: optionsPayload{
			Cost: opts.Cost, Tolerance: opts.Tolerance, TopK: opts.TopK,
			EmbeddingDim: opts.EmbeddingDim, Seed: opts.Seed,
		},
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// The corpus may have been removed — or removed and re-created under
	// the same ID — while training ran; registering against anything but
	// the exact entry the verifier was trained on would either leak it
	// past RemoveCorpus's cascade or freeze an unrelated corpus.
	if cur, still := s.corpora[corpusID]; !still || cur != entry {
		s.mu.Unlock()
		return nil, fmt.Errorf("scrutinizer: corpus %q was removed during training", corpusID)
	}
	s.verifierSeq++
	v.id = fmt.Sprintf("v%d", s.verifierSeq)
	v.corpusID = corpusID
	v.svc = s
	s.verifiers[v.id] = v
	if err := s.journal(&store.Record{
		Op: store.OpVerifierCreate, Verifier: v.id, Corpus: corpusID, Payload: payload,
	}); err != nil {
		delete(s.verifiers, v.id) // not durable, not acknowledged
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()
	// Park the trained model as a boot-time optimization. Best-effort:
	// the journaled training document already guarantees recovery.
	_ = s.saveVerifierSnapshot(v)
	return v, nil
}

// Verifier returns a registered verifier.
func (s *Service) Verifier(id string) (*Verifier, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.verifiers[id]
	return v, ok
}

// RemoveVerifier drops a verifier, reporting whether it was registered.
// With a store attached the delete is journaled (rolled back on append
// failure, surfaced as ErrJournal) and the verifier's model snapshot is
// deleted, so recovery leaves no orphaned state behind.
func (s *Service) RemoveVerifier(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.verifiers[id]
	if !ok {
		return false, nil
	}
	delete(s.verifiers, id)
	if err := s.journal(&store.Record{Op: store.OpVerifierDelete, Verifier: id, Corpus: v.corpusID}); err != nil {
		s.verifiers[id] = v
		return false, err
	}
	if s.store != nil {
		_ = s.store.DeleteSnapshot(snapshotKind, id)
	}
	return true, nil
}

// CorpusInfo summarises one registered corpus.
type CorpusInfo struct {
	ID        string          `json:"id"`
	Relations int             `json:"relations"`
	Rows      int             `json:"rows"`
	Cells     int             `json:"cells"`
	Verifiers int             `json:"verifiers"`
	Created   time.Time       `json:"created"`
	Cache     QueryCacheStats `json:"query_cache"`
}

// VerifierInfo summarises one registered verifier.
type VerifierInfo struct {
	ID         string    `json:"id"`
	CorpusID   string    `json:"corpus"`
	TrainedOn  int       `json:"trained_on"`
	Generation uint64    `json:"model_generation"`
	Runs       uint64    `json:"runs_started"`
	FeatureDim int       `json:"feature_dim"`
	Created    time.Time `json:"created"`
}

// Info summarises a verifier for listings and GET endpoints.
func (v *Verifier) Info() VerifierInfo {
	return VerifierInfo{
		ID:         v.id,
		CorpusID:   v.corpusID,
		TrainedOn:  v.TrainedOn(),
		Generation: v.Generation(),
		Runs:       v.Runs(),
		FeatureDim: v.FeatureDim(),
		Created:    v.created,
	}
}

// corpusInfoLocked summarises one entry; caller holds s.mu (read).
func (s *Service) corpusInfoLocked(e *serviceCorpus) CorpusInfo {
	st := e.corpus.Stats()
	info := CorpusInfo{
		ID:        e.id,
		Relations: st.Relations,
		Rows:      st.Rows,
		Cells:     st.Cells,
		Created:   e.created,
		Cache:     e.qcache.Stats(),
	}
	for _, v := range s.verifiers {
		if v.corpusID == e.id {
			info.Verifiers++
		}
	}
	return info
}

// CorpusInfo summarises one registered corpus by ID.
func (s *Service) CorpusInfo(id string) (CorpusInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.corpora[id]
	if !ok {
		return CorpusInfo{}, false
	}
	return s.corpusInfoLocked(e), true
}

// Corpora lists registered corpora sorted by ID.
func (s *Service) Corpora() []CorpusInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CorpusInfo, 0, len(s.corpora))
	for _, e := range s.corpora {
		out = append(out, s.corpusInfoLocked(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Verifiers lists registered verifiers sorted by ID.
func (s *Service) Verifiers() []VerifierInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]VerifierInfo, 0, len(s.verifiers))
	for _, v := range s.verifiers {
		out = append(out, v.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ServiceStats aggregates the registry for health reporting.
type ServiceStats struct {
	Corpora   int    `json:"corpora"`
	Verifiers int    `json:"verifiers"`
	Runs      uint64 `json:"runs_started"`
}

// Stats counts the registry's tenants and the runs they have started.
func (s *Service) Stats() ServiceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := ServiceStats{Corpora: len(s.corpora), Verifiers: len(s.verifiers)}
	for _, v := range s.verifiers {
		st.Runs += v.Runs()
	}
	return st
}
