package scrutinizer

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	cfg := SmallWorld()
	cfg.NumClaims = 50
	cfg.NumSections = 5
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := New(nil, w.Document, Options{}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := New(w.Corpus, nil, Options{}); err == nil {
		t.Error("nil document accepted")
	}
	if _, err := New(w.Corpus, &Document{Title: "empty"}, Options{}); err == nil {
		t.Error("empty document accepted")
	}
}

func TestEndToEndFacade(t *testing.T) {
	w := testWorld(t)
	sys, err := New(w.Corpus, w.Document, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{BatchSize: 15, SectionReadCost: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("verified %d of %d", len(res.Outcomes), len(w.Document.Claims))
	}
	if res.Accuracy() < 0.9 {
		t.Errorf("accuracy = %g", res.Accuracy())
	}
	rep := res.Report()
	if !strings.Contains(rep, "Verification report") || !strings.Contains(rep, "verdict:") {
		t.Errorf("report malformed:\n%s", rep[:min(400, len(rep))])
	}
}

func TestSingleClaimFacade(t *testing.T) {
	w := testWorld(t)
	sys, err := New(w.Corpus, w.Document, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.VerifyClaim(context.Background(), w.Document.Claims[0], team)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == VerdictSkipped {
		t.Error("trained facade skipped a claim")
	}
	if sys.Engine() == nil {
		t.Error("Engine accessor nil")
	}
}

func TestBuildCorpusManually(t *testing.T) {
	c := NewCorpus()
	r, err := NewRelation("GED", "Index", []string{"2016", "2017"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddRow("PGElecDemand", []float64{21546, 22209}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get("GED", "PGElecDemand", "2017"); err != nil || v != 22209 {
		t.Errorf("corpus get = %g, %v", v, err)
	}
	if DefaultCostModel().Validate() != nil {
		t.Error("default cost model invalid")
	}
	if PaperWorld().NumClaims != 1539 {
		t.Error("paper world should have 1539 claims")
	}
}

func TestDocumentJSONAndCSVFacade(t *testing.T) {
	w := testWorld(t)
	var buf bytes.Buffer
	if err := w.Document.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadDocumentJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Claims) != len(w.Document.Claims) {
		t.Fatalf("claims = %d, want %d", len(doc.Claims), len(w.Document.Claims))
	}
	// A system built from the re-read document trains and verifies.
	sys, err := New(w.Corpus, doc, Options{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(doc.Claims); err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.VerifyClaim(context.Background(), doc.Claims[0], team)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == VerdictSkipped {
		t.Error("re-read document claim skipped")
	}

	// CSV relation round trip through the facade.
	rel, err := w.Corpus.Relation(w.Corpus.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := rel.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	rel2, err := ReadRelationCSV(rel.Name(), &csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumRows() != rel.NumRows() {
		t.Errorf("CSV round trip rows = %d, want %d", rel2.NumRows(), rel.NumRows())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSessionFacade walks the interactive API end to end at the facade
// level: start a session, answer a few screens, snapshot, replay the
// snapshot on a freshly built System, and check the restored session is
// in the same place.
func TestSessionFacade(t *testing.T) {
	w := testWorld(t)
	newSys := func() *System {
		sys, err := New(w.Corpus, w.Document, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	opts := SessionOptions{Verify: VerifyOptions{BatchSize: 8}, Checkers: 2}

	m := NewSessionManager(0, 0)
	sess, err := newSys().StartSession(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Get(sess.ID()); !ok || got != sess {
		t.Fatal("session not registered")
	}
	qs := sess.Questions()
	if len(qs) != 8 {
		t.Fatalf("first batch queued %d questions, want 8", len(qs))
	}
	// Walk one claim through its screens with suggested answers.
	for next := &qs[0]; next != nil; {
		var err error
		next, err = sess.Answer(context.Background(), SessionAnswer{
			QuestionID: next.ID, ClaimID: next.ClaimID, Value: "suggestion", Seconds: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p := sess.Progress()
	if p.Answered == 0 || p.Done {
		t.Fatalf("progress = %+v", p)
	}

	snap := sess.Snapshot()
	restored, err := newSys().RestoreSession(context.Background(), NewSessionManager(0, 0), opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	rp := restored.Progress()
	if restored.ID() != sess.ID() || rp.Answered != p.Answered ||
		rp.CrowdSeconds != p.CrowdSeconds || rp.PendingQuestions != p.PendingQuestions {
		t.Fatalf("restored progress %+v, want %+v", rp, p)
	}
	rep := restored.Report()
	if rep.Done || len(rep.Outcomes) != 0 {
		t.Fatalf("mid-batch report = %+v", rep)
	}
}
