// Benchmarks that regenerate every table and figure of the paper's §6 on
// scaled-down worlds (so `go test -bench=.` completes in minutes), plus
// ablation benches for the design choices called out in DESIGN.md §4.
// Headline metrics are attached via b.ReportMetric; cmd/experiments prints
// the full rows at small or paper scale.
package scrutinizer

import (
	"context"
	"runtime"
	"testing"

	"github.com/repro/scrutinizer/internal/aggcheck"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/sim"
	"github.com/repro/scrutinizer/internal/stats"
	"github.com/repro/scrutinizer/internal/worldgen"
)

func benchWorldCfg() worldgen.Config {
	cfg := worldgen.SmallScale()
	cfg.NumClaims = 120
	cfg.NumSections = 10
	return cfg
}

func benchSimCfg() sim.SimulationConfig {
	return sim.SimulationConfig{
		World:           benchWorldCfg(),
		TeamSize:        3,
		BatchSize:       20,
		SectionReadCost: 60,
		BaseRead:        10,
		WorkerAccuracy:  0.98,
		Seed:            4,
		EvalSampleEvery: 4,
	}
}

// BenchmarkTable1PropertyFrequencies regenerates the Table 1 percentiles of
// property value frequencies over the annotation candidate lists.
func BenchmarkTable1PropertyFrequencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := worldgen.Generate(benchWorldCfg())
		if err != nil {
			b.Fatal(err)
		}
		counts := map[string]int{}
		for _, cand := range w.Candidates {
			for _, r := range cand.Relations {
				counts[r]++
			}
		}
		freqs := make([]float64, 0, len(counts))
		for _, n := range counts {
			freqs = append(freqs, float64(n))
		}
		b.ReportMetric(stats.Percentile(freqs, 50), "relfreq-p50")
		b.ReportMetric(stats.Percentile(freqs, 99), "relfreq-p99")
	}
}

// BenchmarkTable2Simulation regenerates the Table 2 summary: weeks for
// Manual / Sequential / Scrutinizer and the savings ratios.
func BenchmarkTable2Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSimulation(benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Systems {
			switch s.System {
			case sim.SystemManual:
				b.ReportMetric(s.Weeks, "manual-weeks")
			case sim.SystemSequential:
				b.ReportMetric(s.Savings*100, "seq-savings-%")
			case sim.SystemScrutinizer:
				b.ReportMetric(s.Savings*100, "scr-savings-%")
			}
		}
	}
}

// BenchmarkFig5UserStudy regenerates the user-study bars: claims verified
// per 20 minutes, manual vs system.
func BenchmarkFig5UserStudy(b *testing.B) {
	cfg := sim.DefaultStudyConfig()
	cfg.World.NumClaims = 200
	cfg.World.NumFormulas = 20
	cfg.NumClaims = 23
	for i := 0; i < b.N; i++ {
		res, err := sim.RunUserStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ManualAvg, "manual-claims/20min")
		b.ReportMetric(res.SystemAvg, "system-claims/20min")
		b.ReportMetric(res.MajorityAccuracy*100, "majority-acc-%")
	}
}

// BenchmarkFig6Complexity regenerates the verification-time-vs-complexity
// curve and reports the average manual/system ratio.
func BenchmarkFig6Complexity(b *testing.B) {
	cfg := sim.DefaultStudyConfig()
	cfg.World.NumClaims = 200
	cfg.World.NumFormulas = 20
	cfg.NumClaims = 23
	for i := 0; i < b.N; i++ {
		res, err := sim.RunUserStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		n := 0
		for _, p := range res.Complexity {
			if p.ManualCount > 0 && p.SystemCount > 0 && p.SystemMean > 0 {
				ratio += p.ManualMean / p.SystemMean
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(ratio/float64(n), "manual/system-time-ratio")
		}
	}
}

// BenchmarkFig7Accumulated regenerates the accumulated-time series and
// reports the final gap between Sequential and Scrutinizer.
func BenchmarkFig7Accumulated(b *testing.B) {
	cfg := benchSimCfg()
	cfg.Systems = []sim.System{sim.SystemSequential, sim.SystemScrutinizer}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var seqW, scrW float64
		for _, s := range res.Systems {
			if s.System == sim.SystemSequential {
				seqW = s.Weeks
			} else {
				scrW = s.Weeks
			}
		}
		b.ReportMetric(seqW, "sequential-weeks")
		b.ReportMetric(scrW, "scrutinizer-weeks")
	}
}

// BenchmarkFig8AccuracyEvolution regenerates the accuracy-evolution series
// and reports mid-run average accuracy for both systems.
func BenchmarkFig8AccuracyEvolution(b *testing.B) {
	cfg := benchSimCfg()
	cfg.Systems = []sim.System{sim.SystemSequential, sim.SystemScrutinizer}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Systems {
			name := "seq-avg-acc"
			if s.System == sim.SystemScrutinizer {
				name = "scr-avg-acc"
			}
			b.ReportMetric(s.AvgAccuracy, name)
		}
	}
}

// BenchmarkFig9PerClassifier regenerates per-classifier accuracy evolution
// and reports each model's final accuracy.
func BenchmarkFig9PerClassifier(b *testing.B) {
	cfg := benchSimCfg()
	cfg.Systems = []sim.System{sim.SystemScrutinizer}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := res.Systems[0].Series
		if len(series) == 0 {
			b.Fatal("empty series")
		}
		last := series[len(series)-1]
		names := []string{"relation-acc", "rowkey-acc", "attr-acc", "formula-acc"}
		for k, n := range names {
			b.ReportMetric(last.PerClassifier[k], n)
		}
	}
}

// BenchmarkFig10TopK regenerates the top-k accuracy curve and reports the
// k=1 and k=10 averages.
func BenchmarkFig10TopK(b *testing.B) {
	cfg := benchSimCfg()
	cfg.Systems = []sim.System{sim.SystemScrutinizer}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.TopK {
			if p.K == 1 {
				b.ReportMetric(p.Average, "top1-acc")
			}
			if p.K == 10 {
				b.ReportMetric(p.Average, "top10-acc")
			}
		}
	}
}

// BenchmarkTable3BaselineCoverage quantifies the Table 3 comparison: the
// AggChecker-style baseline's claim coverage and accuracy on the same
// document Scrutinizer verifies fully.
func BenchmarkTable3BaselineCoverage(b *testing.B) {
	w, err := worldgen.Generate(benchWorldCfg())
	if err != nil {
		b.Fatal(err)
	}
	checker, err := aggcheck.New(w.Corpus, aggcheck.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := checker.CheckDocument(w.Document)
		b.ReportMetric(float64(cov.Unsupported)/float64(cov.Total)*100, "unsupported-%")
		b.ReportMetric(cov.Accuracy()*100, "attempted-acc-%")
	}
}

// --- Parallel verification pipeline ---------------------------------------

// benchVerify runs one full assisted document verification through the
// facade at the given fan-out, timing only the Verify loop (world
// generation and feature fitting are untimed setup). The reported
// claims/s metric is the serving-throughput headline; verdicts are
// identical at every parallelism, so sequential vs parallel is a pure
// wall-clock comparison.
func benchVerify(b *testing.B, cfg worldgen.Config, parallelism int) {
	w, err := worldgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := New(w.Corpus, w.Document, Options{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		team, err := sys.NewTeam(3)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := sys.VerifyDocument(context.Background(), team, VerifyOptions{
			BatchSize:   100,
			Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != len(w.Document.Claims) {
			b.Fatalf("verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(w.Document.Claims))/b.Elapsed().Seconds(), "claims/s")
}

func paperBenchCfg() worldgen.Config {
	// PaperScale claim count (1539) over the small corpus: the benchmark
	// measures the verification loop, not corpus generation.
	cfg := worldgen.SmallScale()
	cfg.NumClaims = worldgen.PaperScale().NumClaims
	cfg.NumSections = 40
	return cfg
}

// BenchmarkVerifySequential is the baseline: one claim at a time, exactly
// the paper's Algorithm 1.
func BenchmarkVerifySequential(b *testing.B) {
	b.Run("SmallWorld", func(b *testing.B) { benchVerify(b, benchWorldCfg(), 1) })
	b.Run("PaperWorld", func(b *testing.B) { benchVerify(b, paperBenchCfg(), 1) })
}

// BenchmarkVerifyParallel fans each batch out across all CPUs; the
// acceptance bar is ≥2x over BenchmarkVerifySequential on a 4-core runner
// at PaperWorld scale.
func BenchmarkVerifyParallel(b *testing.B) {
	b.Run("SmallWorld", func(b *testing.B) { benchVerify(b, benchWorldCfg(), runtime.NumCPU()) })
	b.Run("PaperWorld", func(b *testing.B) { benchVerify(b, paperBenchCfg(), runtime.NumCPU()) })
}

// --- Ablations (DESIGN.md §4) ---------------------------------------------

// verifyWeeks runs a full assisted verification under a given ordering and
// returns team-weeks.
func verifyWeeks(b *testing.B, ordering core.Ordering, seed int64) float64 {
	w, err := worldgen.Generate(benchWorldCfg())
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.BuildEngine(w, sim.SimCostModel(), seed)
	if err != nil {
		b.Fatal(err)
	}
	team, err := crowd.NewTeam("B", 3, 0.98, seed)
	if err != nil {
		b.Fatal(err)
	}
	res, err := engine.Verify(context.Background(), w.Document, team, core.VerifyConfig{
		BatchSize:       20,
		SectionReadCost: 60,
		Ordering:        ordering,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Seconds / sim.SecondsPerWeek(3)
}

// BenchmarkAblationOrdering compares ILP claim ordering against the
// sequential and greedy alternatives.
func BenchmarkAblationOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(verifyWeeks(b, core.OrderILP, 3), "ilp-weeks")
		b.ReportMetric(verifyWeeks(b, core.OrderGreedy, 3), "greedy-weeks")
		b.ReportMetric(verifyWeeks(b, core.OrderSequential, 3), "sequential-weeks")
	}
}

// BenchmarkAblationPropertySelection compares greedy submodular property
// selection against taking properties in fixed order.
func BenchmarkAblationPropertySelection(b *testing.B) {
	props := []planner.Property{
		{Name: "relation", Options: opts(2)},
		{Name: "key", Options: opts(8)},
		{Name: "attribute", Options: opts(5)},
		{Name: "formula", Options: opts(3)},
	}
	cs := planner.NewCandidateSpace(props)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy := cs.PruningPower(cs.GreedySelect(2))
		fixed := cs.PruningPower([]int{0, 1})
		b.ReportMetric(greedy, "greedy-pruning")
		b.ReportMetric(fixed, "fixed-pruning")
	}
}

// BenchmarkAblationOptionOrder compares probability-sorted answer options
// (Corollary 2) against the unsorted ordering.
func BenchmarkAblationOptionOrder(b *testing.B) {
	options := []planner.Option{
		{Value: "e", Prob: 0.05}, {Value: "d", Prob: 0.10},
		{Value: "c", Prob: 0.15}, {Value: "b", Prob: 0.25},
		{Value: "a", Prob: 0.45},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sorted := planner.ExpectedVerificationCost(planner.SortOptions(options), 1)
		unsorted := planner.ExpectedVerificationCost(options, 1)
		b.ReportMetric(sorted, "sorted-cost")
		b.ReportMetric(unsorted, "unsorted-cost")
	}
}

// BenchmarkAblationScreenBudget compares the Corollary 1 screen/option
// budgets against naive settings through the Theorem 1 overhead bound.
func BenchmarkAblationScreenBudget(b *testing.B) {
	cm := planner.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(cm.OverheadBound(cm.NumOptions(), cm.NumScreens()), "corollary1-bound")
		b.ReportMetric(cm.OverheadBound(50, 50), "naive50-bound")
	}
}

// BenchmarkAblationTentativeExecution measures Algorithm 2's
// value-match pruning: how many of the enumerated assignments the
// tentative-execution filter discards for explicit claims.
func BenchmarkAblationTentativeExecution(b *testing.B) {
	w, err := worldgen.Generate(benchWorldCfg())
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.BuildEngine(w, sim.SimCostModel(), 5)
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.Train(w.Document.Claims); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var kept, total float64
		for _, c := range w.Document.Claims[:40] {
			truth := c.Truth
			ctx := core.Context{Relations: truth.Relations, Keys: truth.Keys, Attrs: truth.Attrs}
			var formulas []*formula.Formula
			for _, key := range engine.Library().TopK(5) {
				if f, ok := engine.Library().Get(key); ok {
					formulas = append(formulas, f)
				}
			}
			sols, alts, _ := engine.GenerateQueries(context.Background(), ctx, formulas, c.Param, c.HasParam)
			kept += float64(len(sols))
			total += float64(len(sols) + len(alts))
		}
		if total > 0 {
			b.ReportMetric(kept/total, "solution-fraction")
		}
	}
}

// --- small helpers ----------------------------------------------------------

func opts(n int) []planner.Option {
	out := make([]planner.Option, n)
	for i := range out {
		out[i] = planner.Option{Value: string(rune('a' + i)), Prob: 1 / float64(n)}
	}
	return out
}
