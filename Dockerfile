# Build scrutinizerd as a static binary, then ship it on a bare base
# image. The daemon is self-contained (no cgo, no runtime assets): with
# no -corpus it boots a deterministic synthetic world, and -data-dir
# journals durable state under the /data volume.

FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/scrutinizerd ./cmd/scrutinizerd

FROM alpine:3.20
RUN adduser -D -u 10001 scrutinizer \
 && mkdir -p /data && chown scrutinizer /data
COPY --from=build /out/scrutinizerd /usr/local/bin/scrutinizerd
USER scrutinizer
VOLUME /data
EXPOSE 8080
HEALTHCHECK --interval=10s --timeout=3s --start-period=30s \
  CMD wget -qO- http://127.0.0.1:8080/readyz >/dev/null || exit 1
ENTRYPOINT ["scrutinizerd"]
CMD ["-addr", ":8080", "-data-dir", "/data"]
