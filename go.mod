module github.com/repro/scrutinizer

go 1.22
