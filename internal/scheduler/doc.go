// Package scheduler implements claim ordering (paper §5.2): repeatedly
// selecting the next batch of claims to verify so that total crowd cost
// stays bounded while training utility — the active-learning value of the
// selected claims as labelled examples — is maximised.
//
// Definitions implemented here:
//
//   - Definition 7: training utility u(c) = sum over models of the entropy
//     of the model's predictive distribution for the claim.
//   - Definition 8: batch cost t(C) = sum of per-claim verification costs
//     plus the reading costs of the distinct sections touched.
//   - Definition 9: select B ⊆ C with t(B) <= tm, bl <= |B| <= bu,
//     maximising sum u(c) — NP-hard (Theorem 7), reduced to a 0/1 ILP
//     (package ilp) with claim variables cs_i, section variables sr_j and
//     linking rows sr_j >= cs_i (Theorem 8 analyses the encoding size).
//
// SelectBatch is the full ILP selection; GreedyBatch, SequentialBatch and
// RandomBatch are the ablation baselines compared in §6.2. All four take
// the same (Items, Config) inputs and return a Batch of claim IDs plus the
// sections the batch touches.
//
// In the engine's Algorithm 1 loop (core.Engine.Verify), batch selection is
// the single synchronization point between rounds: claims inside a batch
// are verified concurrently, but the next batch is always selected from the
// retrained model state, sequentially — which is why verification results
// are deterministic at any parallelism.
package scheduler
