package scheduler

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/repro/scrutinizer/internal/ilp"
)

// Item describes one unverified claim for the scheduler.
type Item struct {
	// ClaimID identifies the claim.
	ClaimID int
	// Section is the section index the claim lives in.
	Section int
	// VerifyCost v(c) is the expected verification cost in seconds from
	// the question planner.
	VerifyCost float64
	// Utility u(c) is the training utility (entropy sum, Definition 7).
	Utility float64
}

// Config bounds batch selection (Definition 9).
type Config struct {
	// MaxCost is tm, the batch cost budget in seconds.
	MaxCost float64
	// MinSize and MaxSize are bl and bu.
	MinSize, MaxSize int
	// SectionReadCost is r(s), the cost of skimming one section; the
	// same constant for all sections here (a per-section map would be a
	// trivial extension).
	SectionReadCost float64
	// UtilityWeight is w_u of the Definition 9 variant; when > 0 the
	// objective becomes max sum(w_u*u(c)) - t(B) instead of pure
	// utility maximisation under the budget.
	UtilityWeight float64
	// SolverOptions bounds ILP effort.
	SolverOptions ilp.Options
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.MaxCost <= 0 {
		return fmt.Errorf("scheduler: MaxCost must be positive, got %g", c.MaxCost)
	}
	if c.MinSize < 0 || c.MaxSize < c.MinSize {
		return fmt.Errorf("scheduler: need 0 <= MinSize <= MaxSize, got [%d, %d]", c.MinSize, c.MaxSize)
	}
	if c.SectionReadCost < 0 {
		return fmt.Errorf("scheduler: SectionReadCost must be non-negative, got %g", c.SectionReadCost)
	}
	return nil
}

// Batch is the selected claim batch.
type Batch struct {
	ClaimIDs []int
	Sections []int
	// Cost is t(B) of Definition 8.
	Cost float64
	// Utility is the accumulated training utility.
	Utility float64
	// Optimal reports whether the ILP solver proved optimality.
	Optimal bool
}

// BatchCost computes t(B) (Definition 8) for an arbitrary subset of items.
func BatchCost(items []Item, sectionReadCost float64) float64 {
	var cost float64
	sections := map[int]bool{}
	for _, it := range items {
		cost += it.VerifyCost
		sections[it.Section] = true
	}
	return cost + float64(len(sections))*sectionReadCost
}

// SelectBatch solves the Definition 9 optimisation over the given items. A
// nil error with an empty batch means the instance is infeasible (e.g.
// MinSize claims cannot fit in the budget).
func SelectBatch(items []Item, cfg Config) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return &Batch{Optimal: true}, nil
	}

	m := ilp.NewModel()

	// Claim variables cs_i. Objective: utility (optionally weighted with
	// cost subtracted, the Definition 9 variant).
	claimVar := make([]int, len(items))
	for i, it := range items {
		obj := it.Utility
		if cfg.UtilityWeight > 0 {
			obj = cfg.UtilityWeight*it.Utility - it.VerifyCost
		}
		claimVar[i] = m.AddVar(fmt.Sprintf("cs_%d", it.ClaimID), obj)
	}

	// Section variables sr_j for the distinct sections.
	sectionIdx := map[int]int{} // section -> variable
	var sections []int
	for _, it := range items {
		if _, ok := sectionIdx[it.Section]; !ok {
			obj := 0.0
			if cfg.UtilityWeight > 0 {
				obj = -cfg.SectionReadCost
			}
			sectionIdx[it.Section] = m.AddVar(fmt.Sprintf("sr_%d", it.Section), obj)
			sections = append(sections, it.Section)
		}
	}

	// Linking: cs_i <= sr_j  <=>  cs_i - sr_j <= 0.
	for i, it := range items {
		if err := m.AddConstraint(ilp.Constraint{
			Name:  fmt.Sprintf("link_%d", it.ClaimID),
			Terms: []ilp.Term{{Var: claimVar[i], Coeff: 1}, {Var: sectionIdx[it.Section], Coeff: -1}},
			Sense: ilp.LE,
			RHS:   0,
		}); err != nil {
			return nil, err
		}
	}

	// Budget: sum cs_i*v(c_i) + sum sr_j*r(s_j) <= tm.
	var budget []ilp.Term
	for i, it := range items {
		budget = append(budget, ilp.Term{Var: claimVar[i], Coeff: it.VerifyCost})
	}
	for _, s := range sections {
		budget = append(budget, ilp.Term{Var: sectionIdx[s], Coeff: cfg.SectionReadCost})
	}
	if err := m.AddConstraint(ilp.Constraint{
		Name: "budget", Terms: budget, Sense: ilp.LE, RHS: cfg.MaxCost,
	}); err != nil {
		return nil, err
	}

	// Cardinality: bl <= sum cs_i <= bu.
	var card []ilp.Term
	for i := range items {
		card = append(card, ilp.Term{Var: claimVar[i], Coeff: 1})
	}
	if cfg.MinSize > 0 {
		if err := m.AddConstraint(ilp.Constraint{
			Name: "minsize", Terms: card, Sense: ilp.GE, RHS: float64(cfg.MinSize),
		}); err != nil {
			return nil, err
		}
	}
	maxSize := cfg.MaxSize
	if maxSize == 0 || maxSize > len(items) {
		maxSize = len(items)
	}
	if err := m.AddConstraint(ilp.Constraint{
		Name: "maxsize", Terms: card, Sense: ilp.LE, RHS: float64(maxSize),
	}); err != nil {
		return nil, err
	}

	sol := m.Solve(cfg.SolverOptions)
	if !sol.Feasible {
		return &Batch{}, nil
	}

	b := &Batch{Optimal: sol.Optimal}
	secSeen := map[int]bool{}
	for i, it := range items {
		if sol.X[claimVar[i]] {
			b.ClaimIDs = append(b.ClaimIDs, it.ClaimID)
			b.Utility += it.Utility
			b.Cost += it.VerifyCost
			if !secSeen[it.Section] {
				secSeen[it.Section] = true
				b.Sections = append(b.Sections, it.Section)
			}
		}
	}
	sort.Ints(b.Sections)
	b.Cost += float64(len(b.Sections)) * cfg.SectionReadCost
	return b, nil
}

// GreedyBatch is the fallback/ablation baseline: take claims in descending
// utility-per-marginal-cost until the budget or bu is hit. Marginal cost
// accounts for section sharing (a second claim in an already-skimmed
// section does not pay the section cost again).
func GreedyBatch(items []Item, cfg Config) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	maxSize := cfg.MaxSize
	if maxSize == 0 || maxSize > len(items) {
		maxSize = len(items)
	}
	b := &Batch{}
	secSeen := map[int]bool{}
	remaining := append([]int(nil), order...)
	for len(b.ClaimIDs) < maxSize && len(remaining) > 0 {
		bestIdx, bestScore := -1, -1.0
		for pos, i := range remaining {
			it := items[i]
			marginal := it.VerifyCost
			if !secSeen[it.Section] {
				marginal += cfg.SectionReadCost
			}
			if b.Cost+marginal > cfg.MaxCost {
				continue
			}
			score := it.Utility / (marginal + 1e-9)
			if score > bestScore {
				bestScore, bestIdx = score, pos
			}
		}
		if bestIdx < 0 {
			break
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		it := items[i]
		if !secSeen[it.Section] {
			secSeen[it.Section] = true
			b.Sections = append(b.Sections, it.Section)
			b.Cost += cfg.SectionReadCost
		}
		b.Cost += it.VerifyCost
		b.Utility += it.Utility
		b.ClaimIDs = append(b.ClaimIDs, it.ClaimID)
	}
	if len(b.ClaimIDs) < cfg.MinSize {
		return &Batch{}, nil // infeasible greedily
	}
	sort.Ints(b.Sections)
	return b, nil
}

// SequentialBatch is the "Sequential" baseline of §6.2: claims in document
// order (by ClaimID) until the budget or bu is reached; no utility
// optimisation.
func SequentialBatch(items []Item, cfg Config) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ordered := append([]Item(nil), items...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ClaimID < ordered[j].ClaimID })
	maxSize := cfg.MaxSize
	if maxSize == 0 || maxSize > len(ordered) {
		maxSize = len(ordered)
	}
	b := &Batch{}
	secSeen := map[int]bool{}
	for _, it := range ordered {
		if len(b.ClaimIDs) >= maxSize {
			break
		}
		marginal := it.VerifyCost
		if !secSeen[it.Section] {
			marginal += cfg.SectionReadCost
		}
		if b.Cost+marginal > cfg.MaxCost {
			break
		}
		if !secSeen[it.Section] {
			secSeen[it.Section] = true
			b.Sections = append(b.Sections, it.Section)
		}
		b.Cost += marginal
		b.Utility += it.Utility
		b.ClaimIDs = append(b.ClaimIDs, it.ClaimID)
	}
	sort.Ints(b.Sections)
	return b, nil
}

// RandomBatch is an ablation baseline: claims in a seeded random order
// until the budget or bu is reached. It isolates how much of Scrutinizer's
// gain comes from *any* batching versus from utility-aware selection.
func RandomBatch(items []Item, cfg Config, seed int64) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shuffled := append([]Item(nil), items...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	maxSize := cfg.MaxSize
	if maxSize == 0 || maxSize > len(shuffled) {
		maxSize = len(shuffled)
	}
	b := &Batch{}
	secSeen := map[int]bool{}
	for _, it := range shuffled {
		if len(b.ClaimIDs) >= maxSize {
			break
		}
		marginal := it.VerifyCost
		if !secSeen[it.Section] {
			marginal += cfg.SectionReadCost
		}
		if b.Cost+marginal > cfg.MaxCost {
			continue
		}
		if !secSeen[it.Section] {
			secSeen[it.Section] = true
			b.Sections = append(b.Sections, it.Section)
		}
		b.Cost += marginal
		b.Utility += it.Utility
		b.ClaimIDs = append(b.ClaimIDs, it.ClaimID)
	}
	if len(b.ClaimIDs) < cfg.MinSize {
		return &Batch{}, nil
	}
	sort.Ints(b.Sections)
	return b, nil
}

// DefaultSolverOptions gives the scheduler's ILP a bounded effort suitable
// for batch sizes around 100 out of ~1500 claims.
func DefaultSolverOptions() ilp.Options {
	return ilp.Options{MaxNodes: 400000, TimeLimit: 3 * time.Second}
}
