package scheduler

import (
	"math"
	"math/rand"
	"testing"
)

func cfgBasic() Config {
	return Config{
		MaxCost:         100,
		MinSize:         0,
		MaxSize:         10,
		SectionReadCost: 10,
		SolverOptions:   DefaultSolverOptions(),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := cfgBasic().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MaxCost: 0, MaxSize: 1},
		{MaxCost: 10, MinSize: 5, MaxSize: 2},
		{MaxCost: 10, MinSize: -1, MaxSize: 2},
		{MaxCost: 10, MaxSize: 2, SectionReadCost: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestBatchCost(t *testing.T) {
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 5},
		{ClaimID: 2, Section: 0, VerifyCost: 7},
		{ClaimID: 3, Section: 1, VerifyCost: 3},
	}
	// 5+7+3 + 2 sections * 10 = 35.
	if got := BatchCost(items, 10); got != 35 {
		t.Errorf("BatchCost = %g, want 35", got)
	}
	if got := BatchCost(nil, 10); got != 0 {
		t.Errorf("empty BatchCost = %g", got)
	}
}

func TestSelectBatchEmpty(t *testing.T) {
	b, err := SelectBatch(nil, cfgBasic())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 0 || !b.Optimal {
		t.Errorf("empty select = %+v", b)
	}
}

func TestSelectBatchRespectsBudget(t *testing.T) {
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 40, Utility: 10},
		{ClaimID: 2, Section: 1, VerifyCost: 40, Utility: 9},
		{ClaimID: 3, Section: 2, VerifyCost: 40, Utility: 8},
	}
	cfg := cfgBasic() // budget 100, section cost 10 -> each claim costs 50
	b, err := SelectBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 2 {
		t.Fatalf("selected %v", b.ClaimIDs)
	}
	// Highest utilities 10 and 9 fit exactly (2*50 = 100).
	if b.Utility != 19 {
		t.Errorf("utility = %g, want 19", b.Utility)
	}
	if b.Cost > cfg.MaxCost {
		t.Errorf("cost %g exceeds budget", b.Cost)
	}
}

func TestSelectBatchPrefersSectionSharing(t *testing.T) {
	// Two claims in one section are cheaper together than two spread
	// out; with a tight budget the scheduler must exploit sharing.
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 20, Utility: 5},
		{ClaimID: 2, Section: 0, VerifyCost: 20, Utility: 5},
		{ClaimID: 3, Section: 1, VerifyCost: 20, Utility: 5.5},
	}
	cfg := cfgBasic()
	cfg.MaxCost = 50 // fits {1,2} (20+20+10) but not {3,x} (20+20+20)
	b, err := SelectBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 2 || b.ClaimIDs[0] != 1 || b.ClaimIDs[1] != 2 {
		t.Errorf("selected %v, want [1 2]", b.ClaimIDs)
	}
	if len(b.Sections) != 1 || b.Sections[0] != 0 {
		t.Errorf("sections = %v", b.Sections)
	}
}

func TestSelectBatchCardinality(t *testing.T) {
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 1, Utility: 10},
		{ClaimID: 2, Section: 0, VerifyCost: 1, Utility: 9},
		{ClaimID: 3, Section: 0, VerifyCost: 1, Utility: 8},
	}
	cfg := cfgBasic()
	cfg.MaxSize = 2
	b, err := SelectBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 2 {
		t.Errorf("MaxSize violated: %v", b.ClaimIDs)
	}
	cfg.MinSize = 3
	cfg.MaxSize = 3
	b, err = SelectBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 3 {
		t.Errorf("MinSize not honoured: %v", b.ClaimIDs)
	}
}

func TestSelectBatchInfeasible(t *testing.T) {
	items := []Item{{ClaimID: 1, Section: 0, VerifyCost: 500, Utility: 1}}
	cfg := cfgBasic()
	cfg.MinSize = 1
	b, err := SelectBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 0 {
		t.Errorf("infeasible instance selected %v", b.ClaimIDs)
	}
}

func TestSelectBatchUtilityWeightVariant(t *testing.T) {
	// With UtilityWeight > 0 the objective trades cost against utility:
	// an expensive high-utility claim can lose to a cheap lower-utility
	// one.
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 90, Utility: 10},
		{ClaimID: 2, Section: 1, VerifyCost: 5, Utility: 20},
	}
	cfg := cfgBasic()
	// net(1) = 10 - 90 - 10(section) < 0; net(2) = 20 - 5 - 10 > 0.
	cfg.UtilityWeight = 1
	b, err := SelectBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 1 || b.ClaimIDs[0] != 2 {
		t.Errorf("variant selected %v, want [2]", b.ClaimIDs)
	}
}

func TestSelectVsBruteForceSmall(t *testing.T) {
	// Cross-check ILP selection against exhaustive enumeration.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ClaimID:    i + 1,
				Section:    rng.Intn(3),
				VerifyCost: 1 + float64(rng.Intn(30)),
				Utility:    float64(rng.Intn(20)),
			}
		}
		cfg := cfgBasic()
		cfg.MaxCost = 40 + float64(rng.Intn(40))
		cfg.MaxSize = n

		best := -1.0
		for mask := 0; mask < 1<<n; mask++ {
			var sub []Item
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sub = append(sub, items[i])
				}
			}
			if BatchCost(sub, cfg.SectionReadCost) > cfg.MaxCost {
				continue
			}
			var u float64
			for _, it := range sub {
				u += it.Utility
			}
			if u > best {
				best = u
			}
		}
		b, err := SelectBatch(items, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.Utility-best) > 1e-6 {
			t.Fatalf("trial %d: ILP utility %g, brute force %g", trial, b.Utility, best)
		}
	}
}

func TestGreedyBatch(t *testing.T) {
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 10, Utility: 1},
		{ClaimID: 2, Section: 0, VerifyCost: 10, Utility: 5},
		{ClaimID: 3, Section: 1, VerifyCost: 10, Utility: 3},
	}
	cfg := cfgBasic()
	cfg.MaxCost = 40
	b, err := GreedyBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) == 0 {
		t.Fatal("greedy selected nothing")
	}
	// Highest utility-per-cost first: claim 2.
	if b.ClaimIDs[0] != 2 {
		t.Errorf("greedy order = %v", b.ClaimIDs)
	}
	if b.Cost > cfg.MaxCost {
		t.Errorf("greedy cost %g over budget", b.Cost)
	}
	// Infeasible MinSize.
	cfg.MinSize = 3
	cfg.MaxCost = 15
	b, err = GreedyBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 0 {
		t.Errorf("greedy infeasible returned %v", b.ClaimIDs)
	}
	if _, err := GreedyBatch(items, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSequentialBatchDocumentOrder(t *testing.T) {
	items := []Item{
		{ClaimID: 3, Section: 1, VerifyCost: 10, Utility: 100},
		{ClaimID: 1, Section: 0, VerifyCost: 10, Utility: 1},
		{ClaimID: 2, Section: 0, VerifyCost: 10, Utility: 1},
	}
	cfg := cfgBasic()
	cfg.MaxCost = 35
	b, err := SequentialBatch(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Document order ignores utility: claims 1, 2 fit (10+10+10 section),
	// claim 3 would add 10+10=20 -> exceeds 35.
	if len(b.ClaimIDs) != 2 || b.ClaimIDs[0] != 1 || b.ClaimIDs[1] != 2 {
		t.Errorf("sequential = %v, want [1 2]", b.ClaimIDs)
	}
	if _, err := SequentialBatch(items, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRandomBatch(t *testing.T) {
	items := []Item{
		{ClaimID: 1, Section: 0, VerifyCost: 10, Utility: 1},
		{ClaimID: 2, Section: 0, VerifyCost: 10, Utility: 5},
		{ClaimID: 3, Section: 1, VerifyCost: 10, Utility: 3},
	}
	cfg := cfgBasic()
	b, err := RandomBatch(items, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 3 {
		t.Errorf("random batch = %v", b.ClaimIDs)
	}
	if b.Cost > cfg.MaxCost {
		t.Errorf("cost %g over budget", b.Cost)
	}
	// Deterministic per seed.
	b2, err := RandomBatch(items, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.ClaimIDs {
		if b.ClaimIDs[i] != b2.ClaimIDs[i] {
			t.Fatal("RandomBatch not deterministic for a fixed seed")
		}
	}
	// MinSize infeasibility.
	cfg.MinSize = 3
	cfg.MaxCost = 15
	b, err = RandomBatch(items, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ClaimIDs) != 0 {
		t.Errorf("infeasible random batch = %v", b.ClaimIDs)
	}
	if _, err := RandomBatch(items, Config{}, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestILPBeatsOrMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(8)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ClaimID:    i + 1,
				Section:    rng.Intn(4),
				VerifyCost: 1 + float64(rng.Intn(25)),
				Utility:    float64(rng.Intn(15)),
			}
		}
		cfg := cfgBasic()
		cfg.MaxCost = 60
		cfg.MaxSize = n
		ilpB, err := SelectBatch(items, cfg)
		if err != nil {
			t.Fatal(err)
		}
		greedyB, err := GreedyBatch(items, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ilpB.Optimal && ilpB.Utility < greedyB.Utility-1e-9 {
			t.Fatalf("trial %d: optimal ILP %g below greedy %g", trial, ilpB.Utility, greedyB.Utility)
		}
	}
}
