package scheduler

import (
	"math/rand"
	"testing"
)

func benchItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ClaimID:    i + 1,
			Section:    rng.Intn(n/10 + 1),
			VerifyCost: 50 + rng.Float64()*400,
			Utility:    rng.Float64() * 8,
		}
	}
	return items
}

// BenchmarkSelectBatchPaperScale exercises the ILP encoding at the
// simulation's working size: ~1500 claims, batch 100.
func BenchmarkSelectBatchPaperScale(b *testing.B) {
	items := benchItems(1500, 1)
	cfg := Config{
		MaxCost:         1e7,
		MinSize:         100,
		MaxSize:         100,
		SectionReadCost: 120,
		UtilityWeight:   5,
		SolverOptions:   DefaultSolverOptions(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectBatch(items, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyBatch1500(b *testing.B) {
	items := benchItems(1500, 2)
	cfg := Config{MaxCost: 1e7, MaxSize: 100, SectionReadCost: 120}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyBatch(items, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
