package classifier

import "fmt"

// State is the serializable form of a trained classifier: everything Train
// mutates, with the dense matrices exported as flat slices in the same
// feature-major layout the model scores from. Round-tripping through State
// is exact — float64 values survive JSON encoding bit-for-bit in Go — so a
// restored model scores identically to the original and its next warm-start
// retrain continues the same deterministic shuffle stream (Rounds seeds it).
type State struct {
	Config  Config    `json:"config"`
	Labels  []string  `json:"labels,omitempty"`
	Dim     int       `json:"dim"`
	W       []float64 `json:"w,omitempty"`
	Gsq     []float64 `json:"gsq,omitempty"`
	Bias    []float64 `json:"bias,omitempty"`
	GsqB    []float64 `json:"gsq_b,omitempty"`
	Trained int       `json:"trained"`
	Rounds  int       `json:"rounds"`
	Warm    bool      `json:"warm,omitempty"`
}

// State exports a deep copy of the model. Like Clone, it must not run
// concurrently with Train on the same model.
func (c *Classifier) State() State {
	return State{
		Config:  c.cfg,
		Labels:  append([]string(nil), c.labels...),
		Dim:     c.dim,
		W:       append([]float64(nil), c.w...),
		Gsq:     append([]float64(nil), c.gsq...),
		Bias:    append([]float64(nil), c.bias...),
		GsqB:    append([]float64(nil), c.gsqB...),
		Trained: c.trained,
		Rounds:  c.rounds,
		Warm:    c.warm,
	}
}

// FromState rebuilds a classifier from an exported State. The stored Config
// already passed through the defaulting of New, so it is installed verbatim.
// Matrix shapes are validated against Dim and the label count; a mismatched
// state (a truncated or hand-edited snapshot) is rejected rather than
// producing a model that scores out of bounds.
func FromState(st State) (*Classifier, error) {
	nL := len(st.Labels)
	if len(st.W) != st.Dim*nL || len(st.Gsq) != st.Dim*nL {
		return nil, fmt.Errorf("classifier: state weight matrix is %dx%d values, dim %d x %d labels", len(st.W), len(st.Gsq), st.Dim, nL)
	}
	if len(st.Bias) != nL || len(st.GsqB) != nL {
		return nil, fmt.Errorf("classifier: state bias has %d values for %d labels", len(st.Bias), nL)
	}
	if st.Dim < 0 || st.Trained < 0 || st.Rounds < 0 {
		return nil, fmt.Errorf("classifier: negative state counters")
	}
	c := &Classifier{
		cfg:      st.Config,
		labels:   append([]string(nil), st.Labels...),
		labelIdx: make(map[string]int, nL),
		dim:      st.Dim,
		w:        append([]float64(nil), st.W...),
		gsq:      append([]float64(nil), st.Gsq...),
		bias:     append([]float64(nil), st.Bias...),
		gsqB:     append([]float64(nil), st.GsqB...),
		trained:  st.Trained,
		rounds:   st.Rounds,
		warm:     st.Warm,
	}
	for i, l := range st.Labels {
		if l == "" {
			return nil, fmt.Errorf("classifier: empty label at index %d", i)
		}
		if _, dup := c.labelIdx[l]; dup {
			return nil, fmt.Errorf("classifier: duplicate label %q in state", l)
		}
		c.labelIdx[l] = i
	}
	return c, nil
}
