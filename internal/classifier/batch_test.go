package classifier

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/repro/scrutinizer/internal/textproc"
)

// randExamples builds a training set over nLabels classes with random sparse
// features up to width dim.
func randExamples(rng *rand.Rand, n, nLabels, dim int) []Example {
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		class := i % nLabels
		f := textproc.Vector{class: 1.0}
		for j := 0; j < 1+rng.Intn(4); j++ {
			f[rng.Intn(dim)] = rng.NormFloat64()
		}
		out = append(out, Example{Features: f.Sparse(), Label: fmt.Sprintf("label%02d", class)})
	}
	return out
}

// randFeatures builds scoring inputs, deliberately including empty vectors
// and indexes beyond the trained width.
func randFeatures(rng *rand.Rand, n, dim int) []textproc.Sparse {
	out := make([]textproc.Sparse, 0, n)
	for i := 0; i < n; i++ {
		f := textproc.Vector{}
		for j, nnz := 0, rng.Intn(6); j < nnz; j++ {
			f[rng.Intn(2*dim)] = rng.NormFloat64() // half out of range
		}
		out = append(out, f.Sparse())
	}
	return out
}

// TestAnalyzeBatchMatchesSequential is the property test pinning the batch
// scorer bit-identical to N sequential Analyze calls, across random models,
// feature vectors, and top-k values (including k=0, k>numLabels, batches
// larger than the batchRows block, untrained models, and empty input).
func TestAnalyzeBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		nLabels := 1 + rng.Intn(9)
		dim := 4 + rng.Intn(24)
		c := New(Config{Seed: int64(trial), Epochs: 3})
		if err := c.Train(randExamples(rng, 10*nLabels, nLabels, dim)); err != nil {
			t.Fatal(err)
		}
		// Sizes straddle the batchRows block boundary.
		for _, n := range []int{0, 1, 7, batchRows, batchRows + 1, 3 * batchRows} {
			fs := randFeatures(rng, n, dim)
			for _, k := range []int{0, 1, 3, nLabels, nLabels + 5} {
				gotP, gotE := c.AnalyzeBatch(fs, k)
				if len(gotP) != n || len(gotE) != n {
					t.Fatalf("trial %d n=%d k=%d: batch lengths %d/%d", trial, n, k, len(gotP), len(gotE))
				}
				for i, f := range fs {
					wantP, wantE := c.Analyze(f, k)
					if gotE[i] != wantE {
						t.Fatalf("trial %d n=%d k=%d row %d: entropy %v != %v", trial, n, k, i, gotE[i], wantE)
					}
					if !reflect.DeepEqual(gotP[i], wantP) {
						t.Fatalf("trial %d n=%d k=%d row %d: preds %v != %v", trial, n, k, i, gotP[i], wantP)
					}
				}
			}
		}
	}
}

func TestAnalyzeBatchUntrained(t *testing.T) {
	c := New(Config{})
	fs := randFeatures(rand.New(rand.NewSource(1)), 5, 8)
	preds, ents := c.AnalyzeBatch(fs, 3)
	if len(preds) != 5 || len(ents) != 5 {
		t.Fatalf("lengths %d/%d", len(preds), len(ents))
	}
	for i := range fs {
		if preds[i] != nil || ents[i] != 1 {
			t.Errorf("row %d: untrained batch should be (nil, 1), got (%v, %v)", i, preds[i], ents[i])
		}
	}
}

// TestAnalyzeBatchRowsIndependent checks the arena subslices are isolated:
// appending to one row's predictions must not clobber a neighbour.
func TestAnalyzeBatchRowsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(Config{Seed: 3, Epochs: 3})
	if err := c.Train(randExamples(rng, 40, 4, 12)); err != nil {
		t.Fatal(err)
	}
	fs := randFeatures(rng, 6, 12)
	preds, _ := c.AnalyzeBatch(fs, 2)
	want := make([][]Prediction, len(fs))
	for i, f := range fs {
		want[i], _ = c.Analyze(f, 2)
	}
	for i := range preds {
		preds[i] = append(preds[i], Prediction{Label: "poison", Prob: -1})
	}
	for i := range preds {
		if !reflect.DeepEqual(preds[i][:len(preds[i])-1], want[i]) {
			t.Fatalf("row %d corrupted by append to sibling rows", i)
		}
	}
}

// TestCloneIntoMatchesClone pins that re-priming a dirty model via CloneInto
// leaves it bit-identical to a fresh Clone — the invariant the pooled-engine
// reuse path (ModelSnapshot.Spawn) depends on.
func TestCloneIntoMatchesClone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := New(Config{Seed: 5, Epochs: 4})
	if err := src.Train(randExamples(rng, 60, 5, 16)); err != nil {
		t.Fatal(err)
	}

	// dst is dirty: trained on a different problem (different width, labels).
	dst := New(Config{Seed: 9})
	if err := dst.Train(randExamples(rng, 30, 3, 40)); err != nil {
		t.Fatal(err)
	}
	src.CloneInto(dst)
	fresh := src.Clone()

	if !reflect.DeepEqual(dst.labels, fresh.labels) ||
		!reflect.DeepEqual(dst.labelIdx, fresh.labelIdx) ||
		dst.dim != fresh.dim ||
		!reflect.DeepEqual(dst.w, fresh.w) ||
		!reflect.DeepEqual(dst.gsq, fresh.gsq) ||
		!reflect.DeepEqual(dst.bias, fresh.bias) ||
		!reflect.DeepEqual(dst.gsqB, fresh.gsqB) ||
		dst.trained != fresh.trained || dst.rounds != fresh.rounds ||
		dst.warm != fresh.warm || dst.cfg != fresh.cfg {
		t.Fatal("CloneInto state differs from a fresh Clone")
	}

	// Behavioural check: retraining both must produce identical models —
	// warm-start depends on rounds/trained, so this exercises the copied
	// counters, not just the weights.
	more := randExamples(rand.New(rand.NewSource(11)), 60, 5, 16)
	if err := dst.Train(more); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Train(more); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.w, fresh.w) || dst.warm != fresh.warm {
		t.Fatal("retrained CloneInto model diverged from retrained Clone")
	}
	fs := randFeatures(rng, 10, 16)
	for i, f := range fs {
		p1, e1 := dst.Analyze(f, 3)
		p2, e2 := fresh.Analyze(f, 3)
		if e1 != e2 || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("row %d: CloneInto model scores differ from Clone", i)
		}
	}
}
