package classifier

import (
	"math"
	"math/rand"
	"testing"

	"github.com/repro/scrutinizer/internal/textproc"
)

// separableSet builds a linearly separable 3-class problem on sparse
// features: class i fires feature i strongly plus noise features.
func separableSet(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"relA", "relB", "relC"}
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		class := i % 3
		f := textproc.Vector{class: 1.0}
		// noise
		f[3+rng.Intn(5)] = rng.Float64() * 0.3
		out = append(out, Example{Features: f, Label: labels[class]})
	}
	return out
}

func TestTrainPredictSeparable(t *testing.T) {
	c := New(Config{Seed: 1})
	train := separableSet(90, 7)
	if err := c.Train(train); err != nil {
		t.Fatal(err)
	}
	test := separableSet(30, 99)
	if acc := c.Accuracy(test); acc < 0.95 {
		t.Errorf("accuracy on separable data = %g, want >= 0.95", acc)
	}
	if c.NumLabels() != 3 || c.TrainedOn() != 90 {
		t.Errorf("NumLabels=%d TrainedOn=%d", c.NumLabels(), c.TrainedOn())
	}
}

func TestTrainErrors(t *testing.T) {
	c := New(Config{})
	if err := c.Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
	if err := c.Train([]Example{{Features: textproc.Vector{0: 1}}}); err == nil {
		t.Error("empty label accepted")
	}
}

func TestUntrainedBehaviour(t *testing.T) {
	c := New(Config{})
	f := textproc.Vector{0: 1}
	if c.Probs(f) != nil {
		t.Error("untrained Probs should be nil")
	}
	if _, _, ok := c.Predict(f); ok {
		t.Error("untrained Predict should report not-ok")
	}
	if got := c.Entropy(f); got != 1 {
		t.Errorf("untrained Entropy = %g, want 1", got)
	}
	if got := c.ProbOf(f, "x"); got != 0 {
		t.Errorf("untrained ProbOf = %g", got)
	}
	if c.TopK(f, 3) != nil {
		t.Error("untrained TopK should be nil")
	}
	if got := c.Accuracy(nil); got != 0 {
		t.Errorf("empty accuracy = %g", got)
	}
}

func TestProbsSumToOne(t *testing.T) {
	c := New(Config{Seed: 2})
	if err := c.Train(separableSet(60, 3)); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		f := textproc.Vector{trial % 8: 1}
		probs := c.Probs(f)
		var s float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("prob out of range: %g", p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probs sum to %g", s)
		}
	}
}

func TestTopKOrderingAndBounds(t *testing.T) {
	c := New(Config{Seed: 4})
	if err := c.Train(separableSet(60, 5)); err != nil {
		t.Fatal(err)
	}
	f := textproc.Vector{0: 1}
	top := c.TopK(f, 2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) = %v", top)
	}
	if top[0].Prob < top[1].Prob {
		t.Error("TopK not sorted descending")
	}
	if top[0].Label != "relA" {
		t.Errorf("top label = %q, want relA", top[0].Label)
	}
	if got := c.TopK(f, 100); len(got) != 3 {
		t.Errorf("TopK beyond vocab = %d entries", len(got))
	}
	if c.TopK(f, 0) != nil {
		t.Error("TopK(0) should be nil")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// Two identical classes -> equal probabilities; tie must break
	// lexicographically.
	c := New(Config{Seed: 6, Epochs: 1})
	examples := []Example{
		{Features: textproc.Vector{0: 1}, Label: "zeta"},
		{Features: textproc.Vector{0: 1}, Label: "alpha"},
	}
	if err := c.Train(examples); err != nil {
		t.Fatal(err)
	}
	top := c.TopK(textproc.Vector{1: 1}, 2) // feature unseen -> near-uniform
	if math.Abs(top[0].Prob-top[1].Prob) < 1e-6 && top[0].Label != "alpha" {
		t.Errorf("tie should break to alpha, got %v", top)
	}
}

func TestEntropyDropsWithTraining(t *testing.T) {
	small := New(Config{Seed: 1, Epochs: 2})
	if err := small.Train(separableSet(6, 1)); err != nil {
		t.Fatal(err)
	}
	big := New(Config{Seed: 1})
	if err := big.Train(separableSet(300, 1)); err != nil {
		t.Fatal(err)
	}
	f := textproc.Vector{0: 1}
	if big.Entropy(f) >= small.Entropy(f) {
		t.Errorf("entropy should drop with more training: small=%g big=%g",
			small.Entropy(f), big.Entropy(f))
	}
}

func TestProbOf(t *testing.T) {
	c := New(Config{Seed: 3})
	if err := c.Train(separableSet(60, 2)); err != nil {
		t.Fatal(err)
	}
	f := textproc.Vector{0: 1}
	if p := c.ProbOf(f, "relA"); p < 0.5 {
		t.Errorf("ProbOf(relA) = %g, want > 0.5", p)
	}
	if p := c.ProbOf(f, "unknown"); p != 0 {
		t.Errorf("ProbOf(unknown) = %g", p)
	}
}

func TestTopKAccuracy(t *testing.T) {
	c := New(Config{Seed: 5})
	if err := c.Train(separableSet(90, 11)); err != nil {
		t.Fatal(err)
	}
	test := separableSet(30, 12)
	a1 := c.TopKAccuracy(test, 1)
	a3 := c.TopKAccuracy(test, 3)
	if a3 < a1 {
		t.Errorf("top-3 accuracy %g < top-1 %g", a3, a1)
	}
	if a3 != 1 {
		t.Errorf("top-3 over 3 classes must be 1, got %g", a3)
	}
	if got := c.TopKAccuracy(nil, 1); got != 0 {
		t.Errorf("empty TopKAccuracy = %g", got)
	}
}

func TestRetrainRebuildsVocabulary(t *testing.T) {
	c := New(Config{Seed: 1, Epochs: 3})
	if err := c.Train([]Example{
		{Features: textproc.Vector{0: 1}, Label: "old1"},
		{Features: textproc.Vector{1: 1}, Label: "old2"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]Example{
		{Features: textproc.Vector{0: 1}, Label: "new1"},
		{Features: textproc.Vector{1: 1}, Label: "new2"},
	}); err != nil {
		t.Fatal(err)
	}
	for _, l := range c.Labels() {
		if l == "old1" || l == "old2" {
			t.Errorf("stale label %q survived retrain", l)
		}
	}
	if c.NumLabels() != 2 {
		t.Errorf("NumLabels = %d", c.NumLabels())
	}
}

func TestTrainingDeterministic(t *testing.T) {
	train := separableSet(60, 1)
	f := textproc.Vector{0: 1, 4: 0.2}
	c1 := New(Config{Seed: 9})
	c2 := New(Config{Seed: 9})
	if err := c1.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := c2.Train(train); err != nil {
		t.Fatal(err)
	}
	p1, p2 := c1.Probs(f), c2.Probs(f)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("training not deterministic: %v vs %v", p1, p2)
		}
	}
}

func TestAccuracyCountsUnknownLabelsAsMisses(t *testing.T) {
	c := New(Config{Seed: 1, Epochs: 2})
	if err := c.Train(separableSet(30, 1)); err != nil {
		t.Fatal(err)
	}
	test := []Example{{Features: textproc.Vector{0: 1}, Label: "never-seen-label"}}
	if got := c.Accuracy(test); got != 0 {
		t.Errorf("unknown label accuracy = %g, want 0", got)
	}
}

func TestIdxMethodsMatchPlainOnes(t *testing.T) {
	c := New(Config{Seed: 8})
	if err := c.Train(separableSet(90, 21)); err != nil {
		t.Fatal(err)
	}
	f := textproc.Vector{0: 1, 5: 0.3, 7: 0.1}
	idx := f.Indices()

	p1, p2 := c.Probs(f), c.ProbsIdx(f, idx)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("ProbsIdx differs at %d: %g vs %g", i, p1[i], p2[i])
		}
	}
	t1, t2 := c.TopK(f, 3), c.TopKIdx(f, idx, 3)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("TopKIdx differs at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	if c.Entropy(f) != c.EntropyIdx(f, idx) {
		t.Error("EntropyIdx differs")
	}
	// Untrained behaviour matches too.
	u := New(Config{})
	if u.ProbsIdx(f, idx) != nil || u.TopKIdx(f, idx, 2) != nil || u.EntropyIdx(f, idx) != 1 {
		t.Error("untrained Idx methods inconsistent")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Epochs != 12 || c.LearningRate != 0.5 || c.L2 != 1e-4 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{L2: -1}.withDefaults()
	if c.L2 != 0 {
		t.Errorf("negative L2 should clamp to 0, got %g", c.L2)
	}
}
