package classifier

import (
	"math"
	"math/rand"
	"testing"

	"github.com/repro/scrutinizer/internal/stats"
	"github.com/repro/scrutinizer/internal/textproc"
)

// vec builds a slice-backed feature vector from map-literal syntax.
func vec(m textproc.Vector) textproc.Sparse { return m.Sparse() }

// separableSet builds a linearly separable 3-class problem on sparse
// features: class i fires feature i strongly plus noise features.
func separableSet(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"relA", "relB", "relC"}
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		class := i % 3
		f := textproc.Vector{class: 1.0}
		// noise
		f[3+rng.Intn(5)] = rng.Float64() * 0.3
		out = append(out, Example{Features: f.Sparse(), Label: labels[class]})
	}
	return out
}

func TestTrainPredictSeparable(t *testing.T) {
	c := New(Config{Seed: 1})
	train := separableSet(90, 7)
	if err := c.Train(train); err != nil {
		t.Fatal(err)
	}
	test := separableSet(30, 99)
	if acc := c.Accuracy(test); acc < 0.95 {
		t.Errorf("accuracy on separable data = %g, want >= 0.95", acc)
	}
	if c.NumLabels() != 3 || c.TrainedOn() != 90 {
		t.Errorf("NumLabels=%d TrainedOn=%d", c.NumLabels(), c.TrainedOn())
	}
}

func TestTrainErrors(t *testing.T) {
	c := New(Config{})
	if err := c.Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
	if err := c.Train([]Example{{Features: vec(textproc.Vector{0: 1})}}); err == nil {
		t.Error("empty label accepted")
	}
}

func TestUntrainedBehaviour(t *testing.T) {
	c := New(Config{})
	f := vec(textproc.Vector{0: 1})
	if c.Probs(f) != nil {
		t.Error("untrained Probs should be nil")
	}
	if _, _, ok := c.Predict(f); ok {
		t.Error("untrained Predict should report not-ok")
	}
	if got := c.Entropy(f); got != 1 {
		t.Errorf("untrained Entropy = %g, want 1", got)
	}
	if got := c.ProbOf(f, "x"); got != 0 {
		t.Errorf("untrained ProbOf = %g", got)
	}
	if c.TopK(f, 3) != nil {
		t.Error("untrained TopK should be nil")
	}
	if preds, h := c.Analyze(f, 3); preds != nil || h != 1 {
		t.Error("untrained Analyze should be (nil, 1)")
	}
	if got := c.Accuracy(nil); got != 0 {
		t.Errorf("empty accuracy = %g", got)
	}
}

func TestProbsSumToOne(t *testing.T) {
	c := New(Config{Seed: 2})
	if err := c.Train(separableSet(60, 3)); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		f := vec(textproc.Vector{trial % 8: 1})
		probs := c.Probs(f)
		var s float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("prob out of range: %g", p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probs sum to %g", s)
		}
	}
}

func TestTopKOrderingAndBounds(t *testing.T) {
	c := New(Config{Seed: 4})
	if err := c.Train(separableSet(60, 5)); err != nil {
		t.Fatal(err)
	}
	f := vec(textproc.Vector{0: 1})
	top := c.TopK(f, 2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) = %v", top)
	}
	if top[0].Prob < top[1].Prob {
		t.Error("TopK not sorted descending")
	}
	if top[0].Label != "relA" {
		t.Errorf("top label = %q, want relA", top[0].Label)
	}
	if got := c.TopK(f, 100); len(got) != 3 {
		t.Errorf("TopK beyond vocab = %d entries", len(got))
	}
	if c.TopK(f, 0) != nil {
		t.Error("TopK(0) should be nil")
	}
}

// TestTopKMatchesFullSort cross-checks the partial-selection top-k against
// a straightforward ranking of the full Probs output.
func TestTopKMatchesFullSort(t *testing.T) {
	c := New(Config{Seed: 13})
	set := make([]Example, 0, 200)
	labels := make([]string, 17)
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		class := i % len(labels)
		set = append(set, Example{
			Features: vec(textproc.Vector{class: 1, 20 + rng.Intn(9): 0.4}),
			Label:    labels[class],
		})
	}
	if err := c.Train(set); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		f := vec(textproc.Vector{trial: 1, 21: 0.2})
		probs := c.Probs(f)
		for _, k := range []int{1, 3, 5, len(labels), len(labels) + 5} {
			top := c.TopK(f, k)
			want := k
			if want > len(labels) {
				want = len(labels)
			}
			if len(top) != want {
				t.Fatalf("TopK(%d) returned %d entries", k, len(top))
			}
			for i, p := range top {
				// Each entry's probability must match Probs for its label,
				// and ordering must be non-increasing with lexicographic
				// tie-break.
				li := -1
				for j, l := range c.Labels() {
					if l == p.Label {
						li = j
					}
				}
				if li < 0 || probs[li] != p.Prob {
					t.Fatalf("TopK entry %v disagrees with Probs", p)
				}
				if i > 0 {
					prev := top[i-1]
					if prev.Prob < p.Prob || (prev.Prob == p.Prob && prev.Label > p.Label) {
						t.Fatalf("TopK out of order at %d: %v", i, top)
					}
				}
			}
		}
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// Two identical classes -> equal probabilities; tie must break
	// lexicographically.
	c := New(Config{Seed: 6, Epochs: 1})
	examples := []Example{
		{Features: vec(textproc.Vector{0: 1}), Label: "zeta"},
		{Features: vec(textproc.Vector{0: 1}), Label: "alpha"},
	}
	if err := c.Train(examples); err != nil {
		t.Fatal(err)
	}
	top := c.TopK(vec(textproc.Vector{1: 1}), 2) // feature unseen -> near-uniform
	if math.Abs(top[0].Prob-top[1].Prob) < 1e-6 && top[0].Label != "alpha" {
		t.Errorf("tie should break to alpha, got %v", top)
	}
}

func TestEntropyDropsWithTraining(t *testing.T) {
	small := New(Config{Seed: 1, Epochs: 2})
	if err := small.Train(separableSet(6, 1)); err != nil {
		t.Fatal(err)
	}
	big := New(Config{Seed: 1})
	if err := big.Train(separableSet(300, 1)); err != nil {
		t.Fatal(err)
	}
	f := vec(textproc.Vector{0: 1})
	if big.Entropy(f) >= small.Entropy(f) {
		t.Errorf("entropy should drop with more training: small=%g big=%g",
			small.Entropy(f), big.Entropy(f))
	}
}

func TestProbOf(t *testing.T) {
	c := New(Config{Seed: 3})
	if err := c.Train(separableSet(60, 2)); err != nil {
		t.Fatal(err)
	}
	f := vec(textproc.Vector{0: 1})
	if p := c.ProbOf(f, "relA"); p < 0.5 {
		t.Errorf("ProbOf(relA) = %g, want > 0.5", p)
	}
	if p := c.ProbOf(f, "unknown"); p != 0 {
		t.Errorf("ProbOf(unknown) = %g", p)
	}
}

func TestTopKAccuracy(t *testing.T) {
	c := New(Config{Seed: 5})
	if err := c.Train(separableSet(90, 11)); err != nil {
		t.Fatal(err)
	}
	test := separableSet(30, 12)
	a1 := c.TopKAccuracy(test, 1)
	a3 := c.TopKAccuracy(test, 3)
	if a3 < a1 {
		t.Errorf("top-3 accuracy %g < top-1 %g", a3, a1)
	}
	if a3 != 1 {
		t.Errorf("top-3 over 3 classes must be 1, got %g", a3)
	}
	if got := c.TopKAccuracy(nil, 1); got != 0 {
		t.Errorf("empty TopKAccuracy = %g", got)
	}
}

func TestRetrainRebuildsVocabulary(t *testing.T) {
	c := New(Config{Seed: 1, Epochs: 3})
	if err := c.Train([]Example{
		{Features: vec(textproc.Vector{0: 1}), Label: "old1"},
		{Features: vec(textproc.Vector{1: 1}), Label: "old2"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]Example{
		{Features: vec(textproc.Vector{0: 1}), Label: "new1"},
		{Features: vec(textproc.Vector{1: 1}), Label: "new2"},
	}); err != nil {
		t.Fatal(err)
	}
	if c.WarmStarted() {
		t.Error("vocabulary change must force a cold retrain")
	}
	for _, l := range c.Labels() {
		if l == "old1" || l == "old2" {
			t.Errorf("stale label %q survived retrain", l)
		}
	}
	if c.NumLabels() != 2 {
		t.Errorf("NumLabels = %d", c.NumLabels())
	}
}

func TestTrainingDeterministic(t *testing.T) {
	train := separableSet(60, 1)
	f := vec(textproc.Vector{0: 1, 4: 0.2})
	c1 := New(Config{Seed: 9})
	c2 := New(Config{Seed: 9})
	if err := c1.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := c2.Train(train); err != nil {
		t.Fatal(err)
	}
	p1, p2 := c1.Probs(f), c2.Probs(f)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("training not deterministic: %v vs %v", p1, p2)
		}
	}
	// The same holds across a warm-started retrain sequence.
	if err := c1.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := c2.Train(train); err != nil {
		t.Fatal(err)
	}
	if !c1.WarmStarted() || !c2.WarmStarted() {
		t.Fatal("identical vocabulary should warm start")
	}
	p1, p2 = c1.Probs(f), c2.Probs(f)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("warm retrain not deterministic: %v vs %v", p1, p2)
		}
	}
}

// TestWarmStartMatchesScratch is the warm-start equivalence check: growing
// the training set batch by batch with warm-started retrains must land on
// the same top-k predictions (within a probability tolerance) as one
// from-scratch fit of the final set, on a fixed seed.
func TestWarmStartMatchesScratch(t *testing.T) {
	full := separableSet(240, 17)

	warm := New(Config{Seed: 3, Epochs: 6})
	// Batch growth: 120, 180, then the full 240 — the label vocabulary is
	// complete from the first batch, so the later rounds take the warm path.
	if err := warm.Train(full[:120]); err != nil {
		t.Fatal(err)
	}
	if warm.WarmStarted() {
		t.Error("first fit cannot be warm")
	}
	for _, cut := range []int{180, 240} {
		if err := warm.Train(full[:cut]); err != nil {
			t.Fatal(err)
		}
		if !warm.WarmStarted() {
			t.Fatalf("retrain at %d examples should warm start", cut)
		}
	}

	scratch := New(Config{Seed: 3, Epochs: 6, ColdStart: true})
	if err := scratch.Train(full); err != nil {
		t.Fatal(err)
	}
	if scratch.WarmStarted() {
		t.Error("ColdStart config must never warm start")
	}

	test := separableSet(60, 23)
	for _, ex := range test {
		tw := warm.TopK(ex.Features, 3)
		ts := scratch.TopK(ex.Features, 3)
		if len(tw) != len(ts) {
			t.Fatalf("top-k lengths differ: %d vs %d", len(tw), len(ts))
		}
		// The confident prediction must be identical; the tail of the list
		// may permute only among labels whose probabilities agree within
		// the tolerance (near-ties deep in the softmax tail).
		if tw[0].Label != ts[0].Label {
			t.Fatalf("top-1 diverged: warm %v vs scratch %v", tw, ts)
		}
		byLabel := make(map[string]float64, len(ts))
		for _, p := range ts {
			byLabel[p.Label] = p.Prob
		}
		for i, p := range tw {
			sp, ok := byLabel[p.Label]
			if !ok {
				t.Fatalf("label %q in warm top-k but not scratch: %v vs %v", p.Label, tw, ts)
			}
			if math.Abs(p.Prob-sp) > 0.15 {
				t.Fatalf("prob of %q diverged beyond tolerance: warm %v vs scratch %v", p.Label, tw, ts)
			}
			if math.Abs(p.Prob-ts[i].Prob) > 0.15 {
				t.Fatalf("rank-%d prob diverged beyond tolerance: warm %v vs scratch %v", i, tw, ts)
			}
		}
	}
	if acc := warm.Accuracy(test); acc < 0.95 {
		t.Errorf("warm-started accuracy = %g, want >= 0.95", acc)
	}
}

// TestWarmStartGrowsFeatureSpace checks that a warm retrain tolerates new
// feature indexes (the dense matrices grow in place).
func TestWarmStartGrowsFeatureSpace(t *testing.T) {
	c := New(Config{Seed: 2, Epochs: 4})
	if err := c.Train([]Example{
		{Features: vec(textproc.Vector{0: 1}), Label: "a"},
		{Features: vec(textproc.Vector{1: 1}), Label: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]Example{
		{Features: vec(textproc.Vector{0: 1, 50: 0.5}), Label: "a"},
		{Features: vec(textproc.Vector{1: 1, 51: 0.5}), Label: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if !c.WarmStarted() {
		t.Error("same vocabulary with new features should still warm start")
	}
	if got, _, ok := c.Predict(vec(textproc.Vector{0: 1, 50: 0.5})); !ok || got != "a" {
		t.Errorf("Predict after feature growth = %q, %v", got, ok)
	}
	// Scoring a vector with indexes beyond the trained width must not
	// panic and must ignore the unknown features.
	if got, _, ok := c.Predict(vec(textproc.Vector{0: 1, 9999: 3})); !ok || got != "a" {
		t.Errorf("Predict with out-of-range feature = %q, %v", got, ok)
	}
}

func TestAccuracyCountsUnknownLabelsAsMisses(t *testing.T) {
	c := New(Config{Seed: 1, Epochs: 2})
	if err := c.Train(separableSet(30, 1)); err != nil {
		t.Fatal(err)
	}
	test := []Example{{Features: vec(textproc.Vector{0: 1}), Label: "never-seen-label"}}
	if got := c.Accuracy(test); got != 0 {
		t.Errorf("unknown label accuracy = %g, want 0", got)
	}
}

func TestAnalyzeMatchesTopKAndEntropy(t *testing.T) {
	c := New(Config{Seed: 8})
	if err := c.Train(separableSet(90, 21)); err != nil {
		t.Fatal(err)
	}
	f := vec(textproc.Vector{0: 1, 5: 0.3, 7: 0.1})
	preds, h := c.Analyze(f, 3)
	top := c.TopK(f, 3)
	for i := range top {
		if top[i] != preds[i] {
			t.Fatalf("Analyze top-k differs at %d: %+v vs %+v", i, preds[i], top[i])
		}
	}
	if h != c.Entropy(f) {
		t.Error("Analyze entropy differs from Entropy")
	}
}

// TestEntropyMatchesReference checks the fused softmax-entropy against the
// direct -Σ p·ln p computation of package stats.
func TestEntropyMatchesReference(t *testing.T) {
	c := New(Config{Seed: 8})
	if err := c.Train(separableSet(90, 21)); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		f := vec(textproc.Vector{trial % 8: 1, 3 + trial%5: 0.4})
		got := c.Entropy(f)
		want := stats.Entropy(c.Probs(f))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("fused entropy %g != reference %g", got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Epochs != 12 || c.LearningRate != 0.5 || c.L2 != 1e-4 {
		t.Errorf("defaults = %+v", c)
	}
	if c.WarmStartEpochs != 4 {
		t.Errorf("WarmStartEpochs default = %d, want Epochs/3 = 4", c.WarmStartEpochs)
	}
	c = Config{L2: -1}.withDefaults()
	if c.L2 != 0 {
		t.Errorf("negative L2 should clamp to 0, got %g", c.L2)
	}
	c = Config{Epochs: 3}.withDefaults()
	if c.WarmStartEpochs != 2 {
		t.Errorf("WarmStartEpochs floor = %d, want 2", c.WarmStartEpochs)
	}
	// A warm retrain must never default to more passes than a cold fit.
	c = Config{Epochs: 1}.withDefaults()
	if c.WarmStartEpochs != 1 {
		t.Errorf("WarmStartEpochs for Epochs=1 = %d, want 1", c.WarmStartEpochs)
	}
}

// TestCloneIndependence: a clone scores identically to its original, and
// training either side afterwards leaves the other side untouched —
// including the warm-start round counter, so diverged copies keep their
// own deterministic shuffle streams.
func TestCloneIndependence(t *testing.T) {
	orig := New(Config{Seed: 3})
	base := separableSet(90, 11)
	if err := orig.Train(base); err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()

	probe := separableSet(20, 42)
	for _, ex := range probe {
		a, b := orig.Probs(ex.Features), clone.Probs(ex.Features)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("clone probs diverge on fresh clone: %v vs %v", a, b)
			}
		}
	}
	if clone.TrainedOn() != orig.TrainedOn() || clone.NumLabels() != orig.NumLabels() {
		t.Fatalf("clone metadata: TrainedOn=%d/%d NumLabels=%d/%d",
			clone.TrainedOn(), orig.TrainedOn(), clone.NumLabels(), orig.NumLabels())
	}

	// Train the clone on more data; the original must not move.
	before := orig.Probs(probe[0].Features)
	if err := clone.Train(separableSet(150, 5)); err != nil {
		t.Fatal(err)
	}
	after := orig.Probs(probe[0].Features)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training the clone perturbed the original")
		}
	}

	// Two clones trained on the same data remain bit-identical to each
	// other (shared rounds counter -> same shuffle stream).
	c1, c2 := orig.Clone(), orig.Clone()
	more := separableSet(120, 9)
	if err := c1.Train(more); err != nil {
		t.Fatal(err)
	}
	if err := c2.Train(more); err != nil {
		t.Fatal(err)
	}
	if c1.WarmStarted() != c2.WarmStarted() {
		t.Fatal("clones diverged on warm-start decision")
	}
	for _, ex := range probe {
		a, b := c1.Probs(ex.Features), c2.Probs(ex.Features)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("identically trained clones diverged")
			}
		}
	}
}

// TestCloneUntrained: cloning a cold model yields a usable cold model.
func TestCloneUntrained(t *testing.T) {
	c := New(Config{Seed: 1}).Clone()
	if c.NumLabels() != 0 {
		t.Fatal("clone of untrained model has labels")
	}
	if err := c.Train(separableSet(30, 2)); err != nil {
		t.Fatal(err)
	}
	ref := New(Config{Seed: 1})
	if err := ref.Train(separableSet(30, 2)); err != nil {
		t.Fatal(err)
	}
	f := separableSet(5, 77)[0].Features
	a, b := c.Probs(f), ref.Probs(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cold clone trains differently from a fresh model")
		}
	}
}
