// Package classifier implements the four property classifiers of the
// paper's Section 3.1 as multinomial logistic regression (softmax) over the
// sparse feature vectors of package feature, trained with AdaGrad and L2
// regularisation. The classifiers expose exactly the contract Scrutinizer
// needs:
//
//   - top-k label lists with probabilities (answer options, Corollary 2),
//   - full probability distributions (pruning power, Theorem 3),
//   - prediction entropy (training utility, Definition 7),
//   - cheap retraining as crowd labels accumulate (Algorithm 1 line 20).
//
// This substitutes the scikit-learn models of the authors' Python
// implementation; see DESIGN.md.
package classifier

import (
	"fmt"
	"math"
	"sort"

	"github.com/repro/scrutinizer/internal/stats"
	"github.com/repro/scrutinizer/internal/textproc"
)

// Config controls training.
type Config struct {
	// Epochs is the number of passes over the training set (default 12).
	Epochs int
	// LearningRate is the AdaGrad base step (default 0.5).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Seed drives the (deterministic) example shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 12
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// Example is one training observation.
type Example struct {
	Features textproc.Vector
	Label    string
}

// Prediction is a scored label.
type Prediction struct {
	Label string
	Prob  float64
}

// Classifier is a softmax regression model over a growing label vocabulary.
// The zero value is not usable; create with New.
type Classifier struct {
	cfg      Config
	labels   []string
	labelIdx map[string]int
	// weights[c] is the sparse weight vector of class c; bias[c] its bias.
	weights []map[int]float64
	bias    []float64
	// adagrad accumulators, same shape.
	gsq     []map[int]float64
	gsqBias []float64
	trained int // number of examples seen in the last Train call

	// inv is the inverted scoring index built after training: for each
	// feature index, the (class, weight) pairs with nonzero weight. It
	// turns per-class map lookups into cache-friendly slice scans, which
	// dominates inference cost at paper scale (hundreds of labels ×
	// ~10^2 features per claim).
	inv     [][]classWeight
	invBase int // inv[i] covers feature index invBase+i
}

type classWeight struct {
	class  int
	weight float64
}

// buildIndex constructs the inverted index from the per-class weight maps,
// in deterministic (feature asc, class asc) order.
func (c *Classifier) buildIndex() {
	c.inv = nil
	minF, maxF := int(^uint(0)>>1), -1
	for _, w := range c.weights {
		for fi := range w {
			if fi < minF {
				minF = fi
			}
			if fi > maxF {
				maxF = fi
			}
		}
	}
	if maxF < 0 {
		return
	}
	c.invBase = minF
	c.inv = make([][]classWeight, maxF-minF+1)
	for class := 0; class < len(c.weights); class++ {
		for fi, wv := range c.weights[class] {
			if wv != 0 {
				c.inv[fi-c.invBase] = append(c.inv[fi-c.invBase], classWeight{class, wv})
			}
		}
	}
	for i := range c.inv {
		row := c.inv[i]
		sort.Slice(row, func(a, b int) bool { return row[a].class < row[b].class })
	}
}

// New creates an empty classifier.
func New(cfg Config) *Classifier {
	return &Classifier{
		cfg:      cfg.withDefaults(),
		labelIdx: make(map[string]int),
	}
}

// Labels returns the label vocabulary in first-seen order. Callers must not
// mutate the returned slice.
func (c *Classifier) Labels() []string { return c.labels }

// NumLabels returns the vocabulary size.
func (c *Classifier) NumLabels() int { return len(c.labels) }

// TrainedOn returns the size of the training set from the last Train call.
func (c *Classifier) TrainedOn() int { return c.trained }

func (c *Classifier) ensureLabel(l string) int {
	if i, ok := c.labelIdx[l]; ok {
		return i
	}
	i := len(c.labels)
	c.labelIdx[l] = i
	c.labels = append(c.labels, l)
	c.weights = append(c.weights, make(map[int]float64))
	c.bias = append(c.bias, 0)
	c.gsq = append(c.gsq, make(map[int]float64))
	c.gsqBias = append(c.gsqBias, 0)
	return i
}

// Train fits the model on examples from scratch (weights are reset, the
// label vocabulary is rebuilt). Retraining from scratch matches Algorithm 1,
// which retrains classifiers after each verified batch.
func (c *Classifier) Train(examples []Example) error {
	if len(examples) == 0 {
		return fmt.Errorf("classifier: no training examples")
	}
	// Reset.
	c.labels = nil
	c.labelIdx = make(map[string]int)
	c.weights = nil
	c.bias = nil
	c.gsq = nil
	c.gsqBias = nil
	c.inv = nil // rebuilt after the epochs; sgdStep uses the map path
	for _, ex := range examples {
		if ex.Label == "" {
			return fmt.Errorf("classifier: empty label in training set")
		}
		c.ensureLabel(ex.Label)
	}
	c.trained = len(examples)

	// Pre-sort each example's feature indexes so gradient accumulation is
	// deterministic (sparse vectors are maps with randomised iteration).
	sortedIdx := make([][]int, len(examples))
	for i, ex := range examples {
		sortedIdx[i] = ex.Features.Indices()
	}

	// Deterministic shuffled order via an LCG permutation per epoch.
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	state := uint64(c.cfg.Seed)*6364136223846793005 + 1442695040888963407

	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		// Fisher-Yates with the LCG.
		for i := len(order) - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state>>33) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, idx := range order {
			c.sgdStep(examples[idx], sortedIdx[idx])
		}
	}
	c.buildIndex()
	return nil
}

// sgdStep applies one AdaGrad update for a single example; featIdx is the
// example's sorted feature-index list.
func (c *Classifier) sgdStep(ex Example, featIdx []int) {
	probs := c.probsFor(ex.Features, featIdx)
	target := c.labelIdx[ex.Label]
	lr := c.cfg.LearningRate
	l2 := c.cfg.L2
	for class := range c.labels {
		g := probs[class]
		if class == target {
			g -= 1
		}
		// Skip classes with negligible gradient: with hundreds of labels
		// almost all softmax probabilities are ~0 and updating them is
		// wasted work (keeps paper-scale retraining in seconds, like the
		// sparse updates of mature learners).
		if g > -1e-4 && g < 1e-4 {
			continue
		}
		w := c.weights[class]
		gs := c.gsq[class]
		for _, fi := range featIdx {
			x := ex.Features[fi]
			grad := g*x + l2*w[fi]
			gs[fi] += grad * grad
			w[fi] -= lr * grad / (math.Sqrt(gs[fi]) + 1e-8)
		}
		gb := g + l2*c.bias[class]
		c.gsqBias[class] += gb * gb
		c.bias[class] -= lr * gb / (math.Sqrt(c.gsqBias[class]) + 1e-8)
	}
}

// probsFor computes softmax probabilities for the feature vector across the
// current vocabulary. featIdx is the vector's sorted index list (computed on
// demand if nil); fixed ordering keeps float accumulation deterministic.
// After training, scoring runs over the inverted index (feature → class
// weights); during training it falls back to the per-class weight maps.
func (c *Classifier) probsFor(f textproc.Vector, featIdx []int) []float64 {
	if featIdx == nil {
		featIdx = f.Indices()
	}
	n := len(c.labels)
	scores := make([]float64, n)
	maxScore := math.Inf(-1)
	if c.inv != nil {
		copy(scores, c.bias)
		for _, fi := range featIdx {
			ii := fi - c.invBase
			if ii < 0 || ii >= len(c.inv) {
				continue
			}
			x := f[fi]
			for _, cw := range c.inv[ii] {
				scores[cw.class] += cw.weight * x
			}
		}
		for class := 0; class < n; class++ {
			if scores[class] > maxScore {
				maxScore = scores[class]
			}
		}
	} else {
		for class := 0; class < n; class++ {
			s := c.bias[class]
			w := c.weights[class]
			for _, fi := range featIdx {
				if wv, ok := w[fi]; ok {
					s += wv * f[fi]
				}
			}
			scores[class] = s
			if s > maxScore {
				maxScore = s
			}
		}
	}
	var z float64
	for class := 0; class < n; class++ {
		scores[class] = math.Exp(scores[class] - maxScore)
		z += scores[class]
	}
	for class := 0; class < n; class++ {
		scores[class] /= z
	}
	return scores
}

// Probs returns the probability distribution over labels for a feature
// vector, aligned with Labels(). It returns nil when the model is untrained.
func (c *Classifier) Probs(f textproc.Vector) []float64 {
	if len(c.labels) == 0 {
		return nil
	}
	return c.probsFor(f, nil)
}

// ProbsIdx is Probs with the vector's pre-sorted index list supplied by the
// caller, avoiding the per-call sort on hot inference paths. idx must be
// f.Indices() (or a prefix-equal copy).
func (c *Classifier) ProbsIdx(f textproc.Vector, idx []int) []float64 {
	if len(c.labels) == 0 {
		return nil
	}
	return c.probsFor(f, idx)
}

// TopKIdx is TopK with a caller-supplied sorted index list.
func (c *Classifier) TopKIdx(f textproc.Vector, idx []int, k int) []Prediction {
	probs := c.ProbsIdx(f, idx)
	if probs == nil || k <= 0 {
		return nil
	}
	return c.rankTopK(probs, k)
}

// EntropyIdx is Entropy with a caller-supplied sorted index list.
func (c *Classifier) EntropyIdx(f textproc.Vector, idx []int) float64 {
	probs := c.ProbsIdx(f, idx)
	if probs == nil {
		return 1
	}
	return stats.Entropy(probs)
}

// Analyze returns the top-k predictions and the predictive entropy from a
// single scoring pass — the engine needs both per claim per batch, and the
// scoring pass dominates. Untrained models return (nil, 1).
func (c *Classifier) Analyze(f textproc.Vector, idx []int, k int) ([]Prediction, float64) {
	probs := c.ProbsIdx(f, idx)
	if probs == nil {
		return nil, 1
	}
	return c.rankTopK(probs, k), stats.Entropy(probs)
}

// Predict returns the single most probable label (ties broken by label
// string for determinism) and its probability. ok is false when untrained.
func (c *Classifier) Predict(f textproc.Vector) (label string, prob float64, ok bool) {
	top := c.TopK(f, 1)
	if len(top) == 0 {
		return "", 0, false
	}
	return top[0].Label, top[0].Prob, true
}

// TopK returns the k most probable labels in descending probability order,
// ties broken lexicographically.
func (c *Classifier) TopK(f textproc.Vector, k int) []Prediction {
	probs := c.Probs(f)
	if probs == nil || k <= 0 {
		return nil
	}
	return c.rankTopK(probs, k)
}

func (c *Classifier) rankTopK(probs []float64, k int) []Prediction {
	preds := make([]Prediction, len(probs))
	for i, p := range probs {
		preds[i] = Prediction{Label: c.labels[i], Prob: p}
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Prob != preds[j].Prob {
			return preds[i].Prob > preds[j].Prob
		}
		return preds[i].Label < preds[j].Label
	})
	if k > len(preds) {
		k = len(preds)
	}
	return preds[:k]
}

// Entropy returns the Shannon entropy (nats) of the predictive distribution
// — the per-model term of the training-utility heuristic (Definition 7).
// Untrained models report the maximum possible uncertainty proxy of 1.
func (c *Classifier) Entropy(f textproc.Vector) float64 {
	probs := c.Probs(f)
	if probs == nil {
		return 1
	}
	return stats.Entropy(probs)
}

// ProbOf returns the probability assigned to a specific label, or 0 for
// unknown labels / untrained models.
func (c *Classifier) ProbOf(f textproc.Vector, label string) float64 {
	probs := c.Probs(f)
	if probs == nil {
		return 0
	}
	i, ok := c.labelIdx[label]
	if !ok {
		return 0
	}
	return probs[i]
}

// Accuracy computes top-1 accuracy over a labelled evaluation set; labels
// absent from the vocabulary always count as misses (they can never be
// predicted).
func (c *Classifier) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hits := 0
	for _, ex := range examples {
		if got, _, ok := c.Predict(ex.Features); ok && got == ex.Label {
			hits++
		}
	}
	return float64(hits) / float64(len(examples))
}

// TopKAccuracy computes the fraction of examples whose true label appears in
// the model's top-k predictions (Figure 10).
func (c *Classifier) TopKAccuracy(examples []Example, k int) float64 {
	if len(examples) == 0 {
		return 0
	}
	hits := 0
	for _, ex := range examples {
		for _, p := range c.TopK(ex.Features, k) {
			if p.Label == ex.Label {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(examples))
}
