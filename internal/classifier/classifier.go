// Package classifier implements the four property classifiers of the
// paper's Section 3.1 as multinomial logistic regression (softmax) over the
// sparse feature vectors of package feature, trained with AdaGrad and L2
// regularisation. The classifiers expose exactly the contract Scrutinizer
// needs:
//
//   - top-k label lists with probabilities (answer options, Corollary 2),
//   - full probability distributions (pruning power, Theorem 3),
//   - prediction entropy (training utility, Definition 7),
//   - cheap retraining as crowd labels accumulate (Algorithm 1 line 20),
//   - batch scoring of many claims in one pass (AnalyzeBatch), feeding the
//     engine's generation-scoped batch assessment.
//
// # Representation
//
// Weights live in one dense flat matrix laid out feature-major:
// w[fi*numLabels+class]. Feature vectors are textproc.Sparse (sorted
// slice-backed pairs), so a scoring pass walks the vector's nonzeros and,
// per feature, a contiguous run of per-class weights — no hashing, no
// branches, vectorisable. The AdaGrad accumulators share the layout, and
// L2 is applied lazily: only the features present in an example are
// regularised on its update, exactly as the sparse-map implementation did.
// Scoring scratch buffers come from a sync.Pool so concurrent inference
// (the engine fans claim scoring across goroutines) allocates nothing in
// steady state.
//
// # Warm-start retraining
//
// Algorithm 1 retrains after every crowd batch on the accumulated label
// set. When a retrain's label vocabulary is exactly the vocabulary of the
// previous fit, Train reuses the existing weights and AdaGrad state and
// runs only Config.WarmStartEpochs passes (the dense matrix grows in place
// if new feature indexes appeared). When the vocabulary changed — new
// labels surfaced, old ones vanished — it falls back to a from-scratch fit,
// so stale classes can never linger. Config.ColdStart disables the warm
// path entirely for callers that need scratch-identical models.
//
// # Batch scoring
//
// Algorithm 1 re-scores every remaining claim before every batch, and the
// scheduler needs all of them at once. AnalyzeBatch scores N feature
// vectors against the weight matrix in dense row-major blocks — one pooled
// scores matrix per block, softmax+entropy fused into the normalisation
// pass per row, and all top-k prediction lists carved from a single arena
// allocation — producing results bit-identical to N sequential Analyze
// calls (pinned by a property test) at a fraction of the allocations.
//
// This substitutes the scikit-learn models of the authors' Python
// implementation; see DESIGN.md.
package classifier

import (
	"fmt"
	"math"
	"sync"

	"github.com/repro/scrutinizer/internal/textproc"
)

// Config controls training.
type Config struct {
	// Epochs is the number of passes over the training set (default 12).
	Epochs int
	// LearningRate is the AdaGrad base step (default 0.5).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Seed drives the (deterministic) example shuffling.
	Seed int64
	// WarmStartEpochs is the number of passes a warm-start retrain runs
	// when the label vocabulary is unchanged and the previous weights are
	// reused (default max(2, Epochs/3)).
	WarmStartEpochs int
	// ColdStart forces every Train call to refit from scratch, disabling
	// warm-start weight reuse.
	ColdStart bool
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 12
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.WarmStartEpochs <= 0 {
		c.WarmStartEpochs = c.Epochs / 3
		if c.WarmStartEpochs < 2 {
			c.WarmStartEpochs = 2
		}
	}
	if c.WarmStartEpochs > c.Epochs {
		// A warm retrain must never cost more passes than the
		// from-scratch fit it undercuts, whether the value was derived
		// (tiny Epochs settings) or set explicitly.
		c.WarmStartEpochs = c.Epochs
	}
	return c
}

// Example is one training observation.
type Example struct {
	Features textproc.Sparse
	Label    string
}

// Prediction is a scored label.
type Prediction struct {
	Label string
	Prob  float64
}

// Classifier is a softmax regression model over a growing label vocabulary.
// The zero value is not usable; create with New. Training mutates the
// model; all scoring methods are safe for concurrent use between Train
// calls.
type Classifier struct {
	cfg      Config
	labels   []string
	labelIdx map[string]int
	// dim is the feature-space width: weights exist for indexes [0, dim).
	dim int
	// w is the dense feature-major weight matrix, w[fi*len(labels)+class];
	// gsq is the AdaGrad accumulator with the same shape.
	w    []float64
	gsq  []float64
	bias []float64
	gsqB []float64

	trained int  // examples seen by the last Train call
	rounds  int  // Train invocations (drives the warm-start shuffle stream)
	warm    bool // whether the last Train took the warm-start path

	// scratch pools per-goroutine softmax buffers for the scoring paths.
	scratch sync.Pool
}

// New creates an empty classifier.
func New(cfg Config) *Classifier {
	return &Classifier{
		cfg:      cfg.withDefaults(),
		labelIdx: make(map[string]int),
	}
}

// Clone returns a deep copy of the model: weights, AdaGrad state, label
// vocabulary and the warm-start round counter are all duplicated, so
// training the clone never perturbs the original (and vice versa). The
// clone starts with an empty scratch pool. Clone must not run concurrently
// with Train on the same model; it is safe to run concurrently with the
// scoring methods.
func (c *Classifier) Clone() *Classifier {
	cp := &Classifier{}
	c.CloneInto(cp)
	return cp
}

// CloneInto copies the model's trained state into dst, reusing dst's
// existing weight/accumulator buffers and label map when their capacity
// allows — the allocation-free complement of Clone for pooled per-run
// engines that are re-primed from a snapshot on reuse. dst behaves exactly
// like a fresh Clone afterwards (pinned by test); its scratch pool is kept
// (stale-width buffers are filtered out by the length check in
// getScratch). Like Clone, CloneInto must not run concurrently with Train
// on either model.
func (c *Classifier) CloneInto(dst *Classifier) {
	dst.cfg = c.cfg
	dst.labels = append(dst.labels[:0], c.labels...)
	if dst.labelIdx == nil {
		dst.labelIdx = make(map[string]int, len(c.labelIdx))
	} else {
		clear(dst.labelIdx)
	}
	for l, i := range c.labelIdx {
		dst.labelIdx[l] = i
	}
	dst.dim = c.dim
	dst.w = append(dst.w[:0], c.w...)
	dst.gsq = append(dst.gsq[:0], c.gsq...)
	dst.bias = append(dst.bias[:0], c.bias...)
	dst.gsqB = append(dst.gsqB[:0], c.gsqB...)
	dst.trained = c.trained
	dst.rounds = c.rounds
	dst.warm = c.warm
}

// Labels returns the label vocabulary in first-seen order. Callers must not
// mutate the returned slice.
func (c *Classifier) Labels() []string { return c.labels }

// NumLabels returns the vocabulary size.
func (c *Classifier) NumLabels() int { return len(c.labels) }

// TrainedOn returns the size of the training set from the last Train call.
func (c *Classifier) TrainedOn() int { return c.trained }

// WarmStarted reports whether the last Train call reused the previous
// weights (warm start) rather than refitting from scratch.
func (c *Classifier) WarmStarted() bool { return c.warm }

// Train fits the model on examples. When the example set's label
// vocabulary is identical to the current one (and ColdStart is off), the
// existing weights and AdaGrad state are reused and only WarmStartEpochs
// passes run — the cheap per-batch retrain of Algorithm 1. Otherwise the
// vocabulary is rebuilt and the model refits from scratch over Epochs
// passes.
func (c *Classifier) Train(examples []Example) error {
	if len(examples) == 0 {
		return fmt.Errorf("classifier: no training examples")
	}
	maxIdx := -1
	fresh := make(map[string]bool, len(c.labels)+1)
	for _, ex := range examples {
		if ex.Label == "" {
			return fmt.Errorf("classifier: empty label in training set")
		}
		fresh[ex.Label] = true
		if m := ex.Features.MaxIndex(); m > maxIdx {
			maxIdx = m
		}
	}
	warm := !c.cfg.ColdStart && c.trained > 0 && len(fresh) == len(c.labels)
	if warm {
		for l := range fresh {
			if _, ok := c.labelIdx[l]; !ok {
				warm = false
				break
			}
		}
	}

	epochs := c.cfg.Epochs
	if warm {
		epochs = c.cfg.WarmStartEpochs
		if width := maxIdx + 1; width > c.dim {
			// New feature indexes appeared: grow the matrices. The
			// feature-major layout appends rows at the end, so this is a
			// plain copy.
			nL := len(c.labels)
			grown := make([]float64, width*nL)
			copy(grown, c.w)
			c.w = grown
			grown = make([]float64, width*nL)
			copy(grown, c.gsq)
			c.gsq = grown
			c.dim = width
		}
	} else {
		c.labels = nil
		c.labelIdx = make(map[string]int, len(fresh))
		for _, ex := range examples {
			if _, ok := c.labelIdx[ex.Label]; !ok {
				c.labelIdx[ex.Label] = len(c.labels)
				c.labels = append(c.labels, ex.Label)
			}
		}
		nL := len(c.labels)
		c.dim = maxIdx + 1
		c.w = make([]float64, c.dim*nL)
		c.gsq = make([]float64, c.dim*nL)
		c.bias = make([]float64, nL)
		c.gsqB = make([]float64, nL)
		// Pooled scratch buffers of the old width are filtered out by the
		// length check in getScratch and fall to the collector.
	}
	c.trained = len(examples)
	c.warm = warm
	c.rounds++

	nL := len(c.labels)
	scores := make([]float64, nL)
	grads := make([]float64, nL)
	active := make([]int32, 0, nL)

	// Deterministic shuffled order via an LCG permutation per epoch; the
	// stream advances with the round counter so warm-started retrains do
	// not replay the previous call's order.
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	state := uint64(c.cfg.Seed)*6364136223846793005 + 1442695040888963407 +
		uint64(c.rounds-1)*0x9E3779B97F4A7C15

	for epoch := 0; epoch < epochs; epoch++ {
		// Fisher-Yates with the LCG.
		for i := len(order) - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state>>33) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, idx := range order {
			active = c.sgdStep(examples[idx], scores, grads, active)
		}
	}
	return nil
}

// sgdStep applies one AdaGrad update for a single example. scores, grads
// and active are caller-owned scratch (len == numLabels); the possibly
// regrown active slice is returned for reuse.
func (c *Classifier) sgdStep(ex Example, scores, grads []float64, active []int32) []int32 {
	c.scoreInto(ex.Features, scores)
	softmaxInPlace(scores)
	target := c.labelIdx[ex.Label]
	lr := c.cfg.LearningRate
	l2 := c.cfg.L2

	// Collect the classes with non-negligible gradient: with hundreds of
	// labels almost all softmax probabilities are ~0 and updating them is
	// wasted work (keeps paper-scale retraining in seconds, like the
	// sparse updates of mature learners). Bias updates happen here too.
	active = active[:0]
	for class, p := range scores {
		g := p
		if class == target {
			g--
		}
		if g > -1e-4 && g < 1e-4 {
			continue
		}
		active = append(active, int32(class))
		grads[class] = g
		gb := g + l2*c.bias[class]
		c.gsqB[class] += gb * gb
		c.bias[class] -= lr * gb / (math.Sqrt(c.gsqB[class]) + 1e-8)
	}

	nL := len(c.labels)
	ix, vals := ex.Features.Raw()
	for k, fi := range ix {
		x := vals[k]
		base := int(fi) * nL
		wrow := c.w[base : base+nL]
		grow := c.gsq[base : base+nL]
		for _, cls := range active {
			grad := grads[cls]*x + l2*wrow[cls]
			grow[cls] += grad * grad
			wrow[cls] -= lr * grad / (math.Sqrt(grow[cls]) + 1e-8)
		}
	}
	return active
}

// scoreInto fills scores (len == numLabels) with the linear scores of f:
// bias plus the feature-major weight columns of f's nonzeros. Feature
// indexes at or above the trained width carry zero weight and are skipped.
func (c *Classifier) scoreInto(f textproc.Sparse, scores []float64) {
	copy(scores, c.bias)
	nL := len(c.labels)
	ix, vals := f.Raw()
	for k, fi := range ix {
		if int(fi) >= c.dim {
			break // indexes are sorted: everything after is out of range too
		}
		x := vals[k]
		row := c.w[int(fi)*nL : int(fi)*nL+nL]
		for j, wv := range row {
			scores[j] += wv * x
		}
	}
}

// softmaxInPlace turns linear scores into probabilities and returns the
// Shannon entropy (nats) of the resulting distribution. The entropy falls
// out of the normalisation pass — H = ln z − (Σ eᵢ·sᵢ)/z with sᵢ the
// max-shifted scores — so no per-element logarithm is needed, which is
// what makes the scheduler's utility scan cheap.
func softmaxInPlace(scores []float64) float64 {
	maxScore := math.Inf(-1)
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	var z, dot float64
	for i, s := range scores {
		shifted := s - maxScore
		e := math.Exp(shifted)
		scores[i] = e
		z += e
		dot += e * shifted
	}
	inv := 1 / z
	for i := range scores {
		scores[i] *= inv
	}
	return math.Log(z) - dot*inv
}

// getScratch returns a pooled probability buffer of the current width.
func (c *Classifier) getScratch() []float64 {
	if buf, ok := c.scratch.Get().(*[]float64); ok && len(*buf) == len(c.labels) {
		return *buf
	}
	return make([]float64, len(c.labels))
}

func (c *Classifier) putScratch(buf []float64) {
	c.scratch.Put(&buf)
}

// probsInto computes softmax probabilities for f into the caller's buffer,
// returning the distribution's entropy as a by-product of normalisation.
func (c *Classifier) probsInto(f textproc.Sparse, probs []float64) float64 {
	c.scoreInto(f, probs)
	return softmaxInPlace(probs)
}

// Probs returns the probability distribution over labels for a feature
// vector, aligned with Labels(). It returns nil when the model is untrained.
func (c *Classifier) Probs(f textproc.Sparse) []float64 {
	if len(c.labels) == 0 {
		return nil
	}
	probs := make([]float64, len(c.labels))
	c.probsInto(f, probs)
	return probs
}

// Analyze returns the top-k predictions and the predictive entropy from a
// single scoring pass — the engine needs both per claim per batch, and the
// scoring pass dominates. Untrained models return (nil, 1).
func (c *Classifier) Analyze(f textproc.Sparse, k int) ([]Prediction, float64) {
	if len(c.labels) == 0 {
		return nil, 1
	}
	probs := c.getScratch()
	h := c.probsInto(f, probs)
	preds := c.rankTopK(probs, k)
	c.putScratch(probs)
	return preds, h
}

// batchRows bounds the row count of AnalyzeBatch's scores block so the
// working set stays cache-resident regardless of how many claims a
// scheduler round scores at once.
const batchRows = 64

// batchScratch holds AnalyzeBatch's reusable buffers: the row-major scores
// block and the top-k selection index scratch. Pooled package-wide (reuse
// is capacity-based, so blocks migrate freely between models of different
// label widths).
type batchScratch struct {
	scores []float64
	sel    []int
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch(size int) *batchScratch {
	bs := batchPool.Get().(*batchScratch)
	if cap(bs.scores) < size {
		bs.scores = make([]float64, size)
	} else {
		bs.scores = bs.scores[:size]
	}
	return bs
}

func putBatchScratch(bs *batchScratch) { batchPool.Put(bs) }

// AnalyzeBatch scores all feature vectors for one property kind in a
// single pass: linear scores are written block-by-block into a pooled
// row-major matrix (batchRows × numLabels), softmax and entropy are fused
// into the normalisation sweep per row, and every row's top-k predictions
// are appended into one shared arena so N claims cost one predictions
// allocation instead of N. Results are bit-identical to calling Analyze
// per element (pinned by TestAnalyzeBatchMatchesSequential): untrained
// models yield nil predictions and entropy 1 for every row, k <= 0 yields
// nil predictions, and the per-row selection/tie-break order is exactly
// rankTopK's.
func (c *Classifier) AnalyzeBatch(fs []textproc.Sparse, k int) ([][]Prediction, []float64) {
	n := len(fs)
	preds := make([][]Prediction, n)
	ents := make([]float64, n)
	if n == 0 {
		return preds, ents
	}
	if len(c.labels) == 0 {
		for i := range ents {
			ents[i] = 1
		}
		return preds, ents
	}
	nL := len(c.labels)
	kEff := k
	if kEff > nL {
		kEff = nL
	}
	rows := n
	if rows > batchRows {
		rows = batchRows
	}
	bs := getBatchScratch(rows * nL)
	var arena []Prediction
	if kEff > 0 {
		// Exact: each row appends exactly kEff predictions, so the arena
		// never regrows and the per-row subslices stay valid.
		arena = make([]Prediction, 0, n*kEff)
	}
	sel := bs.sel
	for base := 0; base < n; base += batchRows {
		rows = n - base
		if rows > batchRows {
			rows = batchRows
		}
		buf := bs.scores[:rows*nL]
		for i := 0; i < rows; i++ {
			row := buf[i*nL : (i+1)*nL]
			c.scoreInto(fs[base+i], row)
			ents[base+i] = softmaxInPlace(row)
		}
		if kEff <= 0 {
			continue
		}
		for i := 0; i < rows; i++ {
			row := buf[i*nL : (i+1)*nL]
			start := len(arena)
			arena, sel = c.rankTopKInto(row, k, arena, sel)
			if len(arena) > start {
				preds[base+i] = arena[start:len(arena):len(arena)]
			}
		}
	}
	bs.sel = sel
	putBatchScratch(bs)
	return preds, ents
}

// Predict returns the single most probable label (ties broken by label
// string for determinism) and its probability. ok is false when untrained.
func (c *Classifier) Predict(f textproc.Sparse) (label string, prob float64, ok bool) {
	top := c.TopK(f, 1)
	if len(top) == 0 {
		return "", 0, false
	}
	return top[0].Label, top[0].Prob, true
}

// TopK returns the k most probable labels in descending probability order,
// ties broken lexicographically.
func (c *Classifier) TopK(f textproc.Sparse, k int) []Prediction {
	if len(c.labels) == 0 || k <= 0 {
		return nil
	}
	probs := c.getScratch()
	c.probsInto(f, probs)
	preds := c.rankTopK(probs, k)
	c.putScratch(probs)
	return preds
}

// rankTopK selects the k best labels by partial insertion — O(n·k) with a
// cheap reject test instead of sorting all n labels, which dominated
// inference at paper scale (hundreds of labels, k ≤ 10).
func (c *Classifier) rankTopK(probs []float64, k int) []Prediction {
	preds, _ := c.rankTopKInto(probs, k, nil, nil)
	return preds
}

// rankTopKInto is rankTopK appending into caller-owned buffers: out
// receives the predictions (the selected row is the appended tail), sel is
// the selection index scratch. Both may be nil; the possibly regrown
// buffers are returned for reuse. The selection itself is identical to
// rankTopK's.
func (c *Classifier) rankTopKInto(probs []float64, k int, out []Prediction, sel []int) ([]Prediction, []int) {
	n := len(probs)
	if k > n {
		k = n
	}
	if k <= 0 {
		return out, sel
	}
	// worse(a, b): label a ranks strictly after label b.
	worse := func(a, b int) bool {
		if probs[a] != probs[b] {
			return probs[a] < probs[b]
		}
		return c.labels[a] > c.labels[b]
	}
	sel = sel[:0]
	for i := 0; i < n; i++ {
		if len(sel) < k {
			sel = append(sel, i)
		} else if worse(sel[k-1], i) {
			sel[k-1] = i
		} else {
			continue
		}
		for p := len(sel) - 1; p > 0 && worse(sel[p-1], sel[p]); p-- {
			sel[p-1], sel[p] = sel[p], sel[p-1]
		}
	}
	for _, li := range sel {
		out = append(out, Prediction{Label: c.labels[li], Prob: probs[li]})
	}
	return out, sel
}

// Entropy returns the Shannon entropy (nats) of the predictive distribution
// — the per-model term of the training-utility heuristic (Definition 7).
// Untrained models report the maximum possible uncertainty proxy of 1.
func (c *Classifier) Entropy(f textproc.Sparse) float64 {
	if len(c.labels) == 0 {
		return 1
	}
	probs := c.getScratch()
	h := c.probsInto(f, probs)
	c.putScratch(probs)
	return h
}

// ProbOf returns the probability assigned to a specific label, or 0 for
// unknown labels / untrained models.
func (c *Classifier) ProbOf(f textproc.Sparse, label string) float64 {
	i, ok := c.labelIdx[label]
	if !ok || len(c.labels) == 0 {
		return 0
	}
	probs := c.getScratch()
	c.probsInto(f, probs)
	p := probs[i]
	c.putScratch(probs)
	return p
}

// Accuracy computes top-1 accuracy over a labelled evaluation set; labels
// absent from the vocabulary always count as misses (they can never be
// predicted).
func (c *Classifier) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hits := 0
	for _, ex := range examples {
		if got, _, ok := c.Predict(ex.Features); ok && got == ex.Label {
			hits++
		}
	}
	return float64(hits) / float64(len(examples))
}

// TopKAccuracy computes the fraction of examples whose true label appears in
// the model's top-k predictions (Figure 10).
func (c *Classifier) TopKAccuracy(examples []Example, k int) float64 {
	if len(examples) == 0 {
		return 0
	}
	hits := 0
	for _, ex := range examples {
		for _, p := range c.TopK(ex.Features, k) {
			if p.Label == ex.Label {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(examples))
}
