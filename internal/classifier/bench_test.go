package classifier

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/scrutinizer/internal/textproc"
)

// benchSet builds a training set with the label/feature shape of the
// paper-scale relation classifier: hundreds of labels, sparse features.
func benchSet(nExamples, nLabels, nnz int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, nExamples)
	for i := range out {
		label := rng.Intn(nLabels)
		f := textproc.Vector{label: 1} // separable core signal
		for j := 0; j < nnz; j++ {
			f[nLabels+rng.Intn(2000)] = rng.Float64()
		}
		out[i] = Example{Features: f, Label: fmt.Sprintf("label-%d", label)}
	}
	return out
}

func BenchmarkTrain500x200(b *testing.B) {
	set := benchSet(500, 200, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(Config{Epochs: 5, Seed: 1})
		if err := c.Train(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictTopK(b *testing.B) {
	set := benchSet(500, 200, 40, 2)
	c := New(Config{Epochs: 5, Seed: 1})
	if err := c.Train(set); err != nil {
		b.Fatal(err)
	}
	f := set[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TopK(f, 10)
	}
}

func BenchmarkEntropy(b *testing.B) {
	set := benchSet(300, 100, 40, 3)
	c := New(Config{Epochs: 4, Seed: 1})
	if err := c.Train(set); err != nil {
		b.Fatal(err)
	}
	f := set[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Entropy(f)
	}
}
