package classifier

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/scrutinizer/internal/textproc"
)

// benchSet builds a training set with the label/feature shape of the
// paper-scale relation classifier: hundreds of labels, sparse features.
func benchSet(nExamples, nLabels, nnz int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, nExamples)
	for i := range out {
		label := rng.Intn(nLabels)
		f := textproc.Vector{label: 1} // separable core signal
		for j := 0; j < nnz; j++ {
			f[nLabels+rng.Intn(2000)] = rng.Float64()
		}
		out[i] = Example{Features: f.Sparse(), Label: fmt.Sprintf("label-%d", label)}
	}
	return out
}

func BenchmarkTrain500x200(b *testing.B) {
	set := benchSet(500, 200, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(Config{Epochs: 5, Seed: 1})
		if err := c.Train(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmRetrain500x200 measures the per-batch retrain cost when the
// label vocabulary is stable and Train takes the warm-start path — the
// steady-state cost of Algorithm 1 line 20.
func BenchmarkWarmRetrain500x200(b *testing.B) {
	set := benchSet(500, 200, 40, 1)
	c := New(Config{Epochs: 5, Seed: 1})
	if err := c.Train(set); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Train(set); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !c.WarmStarted() {
		b.Fatal("expected warm-start retrains")
	}
}

func BenchmarkPredictTopK(b *testing.B) {
	set := benchSet(500, 200, 40, 2)
	c := New(Config{Epochs: 5, Seed: 1})
	if err := c.Train(set); err != nil {
		b.Fatal(err)
	}
	f := set[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TopK(f, 10)
	}
}

func BenchmarkEntropy(b *testing.B) {
	set := benchSet(300, 100, 40, 3)
	c := New(Config{Epochs: 4, Seed: 1})
	if err := c.Train(set); err != nil {
		b.Fatal(err)
	}
	f := set[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Entropy(f)
	}
}
