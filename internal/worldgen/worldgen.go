package worldgen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/table"
)

// Config controls world generation.
type Config struct {
	Seed int64
	// NumClaims is the document size (paper: 1539).
	NumClaims int
	// NumSections partitions the document (Definition 8 granularity).
	NumSections int
	// Families, Regions, Scenarios factor the relation vocabulary
	// (|relations| = Families*Regions*Scenarios; paper identifies 1791).
	Families, Regions, Scenarios int
	// Fuels, Sectors, Measures factor the key vocabulary
	// (|keys| = Fuels*Sectors*Measures capped at KeyTarget; paper: 830).
	Fuels, Sectors, Measures int
	// YearStart/YearEnd span the attribute vocabulary (paper: 87 labels).
	YearStart, YearEnd int
	// NumFormulas is the formula vocabulary size (paper: 413).
	NumFormulas int
	// KeysPerRelation is how many indicator rows each relation holds.
	KeysPerRelation int
	// ErrorRate is the fraction of claims whose stated parameter
	// contradicts the data (the user study injects 25%; first drafts see
	// up to 40%).
	ErrorRate float64
	// ExplicitFraction is the share of explicit claims ("about half").
	ExplicitFraction float64
	// CandidateBreadth is how many candidate values the three checkers'
	// annotations mention per property beyond the truth (Table 1 input).
	CandidateBreadth int
}

// PaperScale reproduces the cardinalities of §6 "Dataset".
func PaperScale() Config {
	return Config{
		Seed:             2018,
		NumClaims:        1539,
		NumSections:      96,
		Families:         17,
		Regions:          35,
		Scenarios:        3, // 17*35*3 = 1785 ≈ 1791
		Fuels:            10,
		Sectors:          12,
		Measures:         7, // 840 ≈ 830
		YearStart:        1971,
		YearEnd:          2050, // 80 years + 7 aggregates = 87
		NumFormulas:      413,
		KeysPerRelation:  24,
		ErrorRate:        0.25,
		ExplicitFraction: 0.5,
		CandidateBreadth: 4,
	}
}

// SmallScale is a fast configuration for tests and examples.
func SmallScale() Config {
	return Config{
		Seed:             7,
		NumClaims:        120,
		NumSections:      8,
		Families:         4,
		Regions:          4,
		Scenarios:        2,
		Fuels:            5,
		Sectors:          4,
		Measures:         2,
		YearStart:        2000,
		YearEnd:          2040,
		NumFormulas:      24,
		KeysPerRelation:  12,
		ErrorRate:        0.25,
		ExplicitFraction: 0.5,
		CandidateBreadth: 3,
	}
}

func (c Config) withDefaults() Config {
	d := SmallScale()
	if c.NumClaims <= 0 {
		c.NumClaims = d.NumClaims
	}
	if c.NumSections <= 0 {
		c.NumSections = d.NumSections
	}
	if c.Families <= 0 {
		c.Families = d.Families
	}
	if c.Regions <= 0 {
		c.Regions = d.Regions
	}
	if c.Scenarios <= 0 {
		c.Scenarios = d.Scenarios
	}
	if c.Fuels <= 0 {
		c.Fuels = d.Fuels
	}
	if c.Sectors <= 0 {
		c.Sectors = d.Sectors
	}
	if c.Measures <= 0 {
		c.Measures = d.Measures
	}
	if c.YearEnd <= c.YearStart {
		c.YearStart, c.YearEnd = d.YearStart, d.YearEnd
	}
	if c.NumFormulas <= 0 {
		c.NumFormulas = d.NumFormulas
	}
	if c.KeysPerRelation <= 0 {
		c.KeysPerRelation = d.KeysPerRelation
	}
	if c.ErrorRate < 0 || c.ErrorRate > 1 {
		c.ErrorRate = d.ErrorRate
	}
	if c.ExplicitFraction < 0 || c.ExplicitFraction > 1 {
		c.ExplicitFraction = d.ExplicitFraction
	}
	if c.CandidateBreadth < 0 {
		c.CandidateBreadth = d.CandidateBreadth
	}
	return c
}

// CandidateLists is the breadth of the three checkers' annotations for one
// claim; Table 1 counts frequencies over these.
type CandidateLists struct {
	Relations, Keys, Attrs, Formulas []string
}

// World is a generated corpus + document pair.
type World struct {
	Config   Config
	Corpus   *table.Corpus
	Document *claims.Document
	// Candidates maps claim ID to its annotation candidate lists.
	Candidates map[int]CandidateLists
	// FormulaVocab is the distinct formula vocabulary in rank order
	// (rank 0 most frequent).
	FormulaVocab []string
}

// vocabulary words used to humanise codes.
var (
	familyNames = []string{
		"energy demand", "energy supply", "electricity generation",
		"installed capacity", "final consumption", "emissions",
		"investment", "energy prices", "fuel imports", "fuel exports",
		"capacity additions", "energy intensity", "power generation",
		"heat production", "refinery output", "energy access",
		"storage deployment", "grid expansion", "efficiency savings",
		"subsidy spending",
	}
	regionNames = []string{
		"global", "oecd", "non-oecd", "united states", "china", "india",
		"european union", "japan", "russia", "brazil", "africa",
		"middle east", "southeast asia", "latin america", "korea",
		"canada", "mexico", "australia", "indonesia", "germany",
		"france", "italy", "spain", "poland", "turkey", "iran",
		"saudi arabia", "nigeria", "egypt", "south africa", "argentina",
		"chile", "thailand", "vietnam", "pakistan", "bangladesh",
		"ukraine", "kazakhstan", "norway", "sweden",
	}
	scenarioNames = []string{
		"stated policies", "current policies", "sustainable development",
		"net zero", "announced pledges",
	}
	fuelNames = []string{
		"electricity", "coal", "oil", "natural gas", "solar pv", "wind",
		"nuclear", "hydro", "bioenergy", "geothermal", "hydrogen",
		"district heat",
	}
	sectorNames = []string{
		"demand", "supply", "generation", "consumption", "production",
		"capacity additions", "investment", "emissions", "imports",
		"exports", "access", "efficiency", "trade", "storage",
	}
	measureNames = []string{
		"total", "per capita", "industrial", "residential", "transport",
		"commercial", "agricultural", "urban", "rural",
	}
	growVerbs    = []string{"grew", "rose", "increased", "expanded", "climbed"}
	shrinkVerbs  = []string{"fell", "declined", "dropped", "contracted", "shrank"}
	reachVerbs   = []string{"reaching", "hitting", "attaining", "arriving at"}
	openerPhrase = []string{
		"According to the outlook,", "In the projections,",
		"The analysis shows that", "Over the period,",
		"The report finds that", "Under this trajectory,",
	}
	closerPhrase = []string{
		"driven by policy changes.", "reflecting market trends.",
		"as investment patterns shifted.", "in line with stated targets.",
		"amid changing fuel prices.", "supported by new capacity.",
	}
)

func code(s string) string {
	parts := strings.Fields(s)
	var b strings.Builder
	for _, p := range parts {
		if len(p) > 4 {
			p = p[:4]
		}
		b.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	return b.String()
}

// keySpec is one indicator-key vocabulary entry.
type keySpec struct {
	code    string
	subject string // humanised, e.g. "total electricity demand"
	fuel    int
}

// relSpec is one relation vocabulary entry.
type relSpec struct {
	name     string
	family   int
	region   int
	scenario int
	keyIdx   []int // indexes into the key vocabulary
}

// formulaFamily categorises formulas for text rendering.
type formulaFamily int

const (
	famCAGR formulaFamily = iota
	famGrowth
	famLookup
	famRatio
	famShare
	famDiff
	famSum
	famAvg
	famThreshold
	famScaled
)

// formulaSpec is one vocabulary entry.
type formulaSpec struct {
	family   formulaFamily
	text     string  // canonical formula string
	constant float64 // for threshold/scaled variants
	aliases  int     // binding variables used
	attrVars int     // attribute variables used
	twoKeys  bool    // whether a and b use different keys
}

// buildFormulaVocab constructs n distinct formulas with the core templates
// first (they get the highest Zipf ranks, so the "top 10 formulas cover the
// majority of the claims" as in the user study).
func buildFormulaVocab(n int, rng *rand.Rand) []formulaSpec {
	base := []formulaSpec{
		{famCAGR, "POWER(a.A1 / b.A2, 1 / (A1 - A2)) - 1", 0, 2, 2, false},
		{famGrowth, "(a.A1 / b.A2) - 1", 0, 2, 2, false},
		{famLookup, "a.A1", 0, 1, 1, false},
		{famRatio, "a.A1 / b.A2", 0, 2, 2, false},
		{famShare, "(a.A1 / b.A1) * 100", 0, 2, 1, true},
		{famDiff, "a.A1 - b.A2", 0, 2, 2, false},
		{famSum, "a.A1 + b.A1", 0, 2, 1, true},
		{famAvg, "AVG(a.A1, b.A2)", 0, 2, 2, false},
		{famGrowth, "(a.A1 - b.A2) / b.A2", 0, 2, 2, false},
		{famLookup, "ABS(a.A1)", 0, 1, 1, false},
	}
	out := append([]formulaSpec(nil), base...)
	seen := map[string]bool{}
	for _, s := range out {
		seen[s.text] = true
	}
	// Variant generators supplying the long tail.
	for len(out) < n {
		var s formulaSpec
		switch rng.Intn(4) {
		case 0: // threshold with varying constant
			c := float64((rng.Intn(400) + 1) * 5)
			s = formulaSpec{famThreshold, fmt.Sprintf("a.A1 > %g", c), c, 1, 1, false}
		case 1: // scaled ratio
			c := float64(rng.Intn(997) + 2)
			s = formulaSpec{famScaled, fmt.Sprintf("(a.A1 / b.A2) * %g", c), c, 2, 2, false}
		case 2: // scaled difference
			c := float64(rng.Intn(97) + 2)
			s = formulaSpec{famScaled, fmt.Sprintf("(a.A1 - b.A2) / %g", c), c, 2, 2, false}
		default: // offset CAGR variants
			c := float64(rng.Intn(9)+1) / 100
			s = formulaSpec{famCAGR, fmt.Sprintf("POWER(a.A1 / b.A2, 1 / (A1 - A2)) - %g", 1+c), c, 2, 2, false}
		}
		if seen[s.text] {
			continue
		}
		seen[s.text] = true
		out = append(out, s)
	}
	return out[:n]
}

// zipfPick samples index in [0,n) with probability ∝ 1/(i+1)^s.
func zipfPick(rng *rand.Rand, n int, s float64) int {
	// Precomputing would be faster; n is small enough to sample directly.
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
	}
	u := rng.Float64() * total
	for i := 0; i < n; i++ {
		u -= math.Pow(float64(i+1), -s)
		if u <= 0 {
			return i
		}
	}
	return n - 1
}

// Generate builds the world.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := &World{
		Config:     cfg,
		Corpus:     table.NewCorpus(),
		Candidates: make(map[int]CandidateLists),
	}

	// --- Attribute vocabulary: years + aggregates. -------------------
	var years []string
	for y := cfg.YearStart; y <= cfg.YearEnd; y++ {
		years = append(years, strconv.Itoa(y))
	}
	aggregates := []string{"Total", "Average", "Peak", "Minimum", "H1", "H2", "Baseline"}
	attrs := append(append([]string(nil), years...), aggregates...)

	// --- Key vocabulary. ----------------------------------------------
	var keys []keySpec
	for f := 0; f < cfg.Fuels && f < len(fuelNames); f++ {
		for sct := 0; sct < cfg.Sectors && sct < len(sectorNames); sct++ {
			for ms := 0; ms < cfg.Measures && ms < len(measureNames); ms++ {
				k := keySpec{
					code:    code(measureNames[ms]) + code(fuelNames[f]) + code(sectorNames[sct]),
					subject: measureNames[ms] + " " + fuelNames[f] + " " + sectorNames[sct],
					fuel:    f,
				}
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("worldgen: empty key vocabulary")
	}

	// --- Relation vocabulary + data. ----------------------------------
	var rels []relSpec
	for fam := 0; fam < cfg.Families && fam < len(familyNames); fam++ {
		for rg := 0; rg < cfg.Regions && rg < len(regionNames); rg++ {
			for sc := 0; sc < cfg.Scenarios && sc < len(scenarioNames); sc++ {
				name := code(familyNames[fam]) + "_" + code(regionNames[rg]) + "_" + code(scenarioNames[sc])
				rels = append(rels, relSpec{name: name, family: fam, region: rg, scenario: sc})
			}
		}
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("worldgen: empty relation vocabulary")
	}

	// Populate each relation with KeysPerRelation rows over all years
	// (aggregates included): smooth exponential trends with mild noise.
	nYears := len(years)
	for ri := range rels {
		rel, err := table.NewRelation(rels[ri].name, "Index", attrs)
		if err != nil {
			return nil, err
		}
		// Deterministic per-relation key subset: stride through the key
		// vocabulary starting at a hash of the relation index.
		start := (ri * 131) % len(keys)
		used := map[int]bool{}
		for j := 0; len(rel.Keys()) < cfg.KeysPerRelation && j < len(keys); j++ {
			ki := (start + j*7) % len(keys)
			if used[ki] {
				continue
			}
			used[ki] = true
			rels[ri].keyIdx = append(rels[ri].keyIdx, ki)
			base := 50 + rng.Float64()*5000
			growth := 0.985 + rng.Float64()*0.05 // -1.5% .. +3.5% per year
			row := make([]float64, len(attrs))
			var sum, peak, min float64
			min = math.Inf(1)
			for yi := 0; yi < nYears; yi++ {
				noise := 1 + (rng.Float64()-0.5)*0.01
				v := base * math.Pow(growth, float64(yi)) * noise
				v = math.Round(v*100) / 100
				row[yi] = v
				sum += v
				if v > peak {
					peak = v
				}
				if v < min {
					min = v
				}
			}
			// Aggregate columns derive from the year series.
			row[nYears+0] = math.Round(sum*100) / 100                 // Total
			row[nYears+1] = math.Round(sum/float64(nYears)*100) / 100 // Average
			row[nYears+2] = peak                                      // Peak
			row[nYears+3] = min                                       // Minimum
			row[nYears+4] = math.Round(sum/2*100) / 100               // H1
			row[nYears+5] = math.Round(sum/2*100) / 100               // H2
			row[nYears+6] = row[0]                                    // Baseline
			if err := rel.AddRow(keys[ki].code, row); err != nil {
				return nil, err
			}
		}
		rel.SetMeta("family", familyNames[rels[ri].family])
		rel.SetMeta("region", regionNames[rels[ri].region])
		rel.SetMeta("scenario", scenarioNames[rels[ri].scenario])
		if err := w.Corpus.Add(rel); err != nil {
			return nil, err
		}
	}

	// --- Formula vocabulary. -------------------------------------------
	vocab := buildFormulaVocab(cfg.NumFormulas, rng)
	for _, s := range vocab {
		w.FormulaVocab = append(w.FormulaVocab, s.text)
	}

	// --- Claims. --------------------------------------------------------
	doc := &claims.Document{Title: "Synthetic World Energy Outlook", Sections: cfg.NumSections}
	gen := &claimGen{cfg: cfg, rng: rng, rels: rels, keys: keys, years: years, vocab: vocab, corpus: w.Corpus}
	for id := 1; id <= cfg.NumClaims; id++ {
		c, cand, err := gen.claim(id)
		if err != nil {
			return nil, err
		}
		c.Section = (id - 1) * cfg.NumSections / cfg.NumClaims
		doc.Claims = append(doc.Claims, c)
		w.Candidates[c.ID] = cand
	}
	w.Document = doc
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
