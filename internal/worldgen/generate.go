package worldgen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/query"
	"github.com/repro/scrutinizer/internal/table"
)

// claimGen holds the shared state of claim generation.
type claimGen struct {
	cfg    Config
	rng    *rand.Rand
	rels   []relSpec
	keys   []keySpec
	years  []string
	vocab  []formulaSpec
	corpus *table.Corpus
}

// pickYearIdx samples a year with recency bias: the focus years near the
// report's "present" (80th percentile of the span) dominate, mimicking how
// 2017/2018 appear in almost every claim of the 2018 outlook (the heavy
// tail of Table 1's attribute row).
func (g *claimGen) pickYearIdx() int {
	n := len(g.years)
	focus := int(float64(n) * 0.8)
	if g.rng.Float64() < 0.6 {
		// Near the focus year.
		off := g.rng.Intn(5) - 2
		i := focus + off
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	return g.rng.Intn(n)
}

// pickYearPair returns two distinct year indexes with later > earlier
// (A1 = later, A2 = earlier in the formula convention). Year-over-year
// comparisons dominate, with round decade/half-decade spans for the rest —
// the comparison spans real reports use, and a learnable signal for the
// attribute classifier.
func (g *claimGen) pickYearPair() (later, earlier int) {
	a := g.pickYearIdx()
	var gap int
	switch r := g.rng.Float64(); {
	case r < 0.65:
		gap = 1
	case r < 0.80:
		gap = 5
	case r < 0.92:
		gap = 10
	default:
		gap = 20
	}
	b := a - gap
	if b < 0 {
		b = 0
		if a == 0 {
			a = 1
		}
	}
	return a, b
}

// claim generates one annotated claim plus its candidate lists.
func (g *claimGen) claim(id int) (*claims.Claim, CandidateLists, error) {
	const maxTries = 60
	for try := 0; try < maxTries; try++ {
		c, cand, err := g.tryClaim(id)
		if err == nil {
			return c, cand, nil
		}
	}
	return nil, CandidateLists{}, fmt.Errorf("worldgen: could not generate claim %d after %d tries", id, maxTries)
}

func (g *claimGen) tryClaim(id int) (*claims.Claim, CandidateLists, error) {
	spec := g.vocab[zipfPick(g.rng, len(g.vocab), 1.25)]

	// Pick a relation (Zipf over the vocabulary) and keys from its rows.
	relIdx := zipfPick(g.rng, len(g.rels), 1.05)
	rs := g.rels[relIdx]
	if len(rs.keyIdx) == 0 {
		return nil, CandidateLists{}, fmt.Errorf("worldgen: relation %s has no keys", rs.name)
	}
	k1 := rs.keyIdx[zipfPick(g.rng, len(rs.keyIdx), 0.9)]
	k2 := k1
	if spec.twoKeys {
		for attempts := 0; attempts < 8 && k2 == k1; attempts++ {
			k2 = rs.keyIdx[g.rng.Intn(len(rs.keyIdx))]
		}
		if k2 == k1 {
			return nil, CandidateLists{}, fmt.Errorf("worldgen: no second key available")
		}
	}

	// Pick attributes.
	var attrLabels []string
	switch spec.attrVars {
	case 1:
		attrLabels = []string{g.years[g.pickYearIdx()]}
	case 2:
		l, e := g.pickYearPair()
		attrLabels = []string{g.years[l], g.years[e]}
	default:
		return nil, CandidateLists{}, fmt.Errorf("worldgen: formula %q needs %d attr vars", spec.text, spec.attrVars)
	}

	// Assemble annotation and evaluate the truth query.
	truth := &claims.GroundTruth{
		Relations: []string{rs.name},
		Attrs:     attrLabels,
		Formula:   spec.text,
	}
	if spec.twoKeys {
		truth.Keys = []string{g.keys[k1].code, g.keys[k2].code}
	} else {
		truth.Keys = []string{g.keys[k1].code}
	}
	value, err := g.evalTruth(truth)
	if err != nil {
		return nil, CandidateLists{}, err
	}
	truth.Value = value

	// Decide correctness and claim kind, then render text.
	correct := g.rng.Float64() >= g.cfg.ErrorRate
	explicit := g.rng.Float64() < g.cfg.ExplicitFraction

	c := &claims.Claim{ID: id, Truth: truth, Correct: correct}
	subject := regionNames[rs.region] + " " + g.keys[k1].subject
	if err := g.render(c, spec, subject, attrLabels, value, explicit, correct); err != nil {
		return nil, CandidateLists{}, err
	}

	// Sentence: claim embedded in context that carries relation signal
	// (region + scenario + family words).
	opener := openerPhrase[g.rng.Intn(len(openerPhrase))]
	closer := closerPhrase[g.rng.Intn(len(closerPhrase))]
	c.Sentence = fmt.Sprintf("%s in the %s scenario %s %s, %s",
		opener, scenarioNames[rs.scenario], familyNames[rs.family], c.Text, closer)

	cand := g.candidates(truth, relIdx, k1)
	return c, cand, nil
}

// evalTruth executes the canonical truth query (same convention as
// core.TruthQuery: aliases -> (Relations[i mod], Keys[i mod]); attr var i ->
// Attrs[i]).
func (g *claimGen) evalTruth(t *claims.GroundTruth) (float64, error) {
	f, err := formula.ParseFormula(t.Formula)
	if err != nil {
		return 0, err
	}
	q := &query.Query{Select: f.Expr, AttrBindings: map[string]string{}}
	for i, v := range f.AttrVars {
		q.AttrBindings[v] = t.Attrs[i]
	}
	for i, alias := range expr.Aliases(f.Expr) {
		q.Bindings = append(q.Bindings, query.Binding{
			Alias:    alias,
			Relation: t.Relations[i%len(t.Relations)],
			Key:      t.Keys[i%len(t.Keys)],
		})
	}
	return q.Execute(g.corpus)
}

// render produces the claim text, parameter and comparison. For incorrect
// claims, the stated parameter is perturbed well outside the 5% tolerance.
func (g *claimGen) render(c *claims.Claim, spec formulaSpec, subject string,
	attrs []string, value float64, explicit, correct bool) error {

	perturb := func(v float64) float64 {
		factor := 1.15 + g.rng.Float64()*0.6 // 15%..75% off
		if g.rng.Intn(2) == 0 {
			return v / factor
		}
		return v * factor
	}
	verb := func(v float64) string {
		if v >= 0 {
			return growVerbs[g.rng.Intn(len(growVerbs))]
		}
		return shrinkVerbs[g.rng.Intn(len(shrinkVerbs))]
	}

	switch spec.family {
	case famCAGR, famGrowth:
		// Percentage growth claims; value is a rate like 0.031. The
		// stated rate keeps three significant digits so a correct claim
		// always passes the 5% relative tolerance even for tiny rates.
		rate := value
		stated := round3(rate)
		if !correct {
			stated = round3(perturb(rate + signOf(rate)*0.001))
			if claims.RelClose(stated, rate, 0.1) {
				stated = rate + 0.05 // force a visible contradiction
			}
		}
		// Mention both endpoint years when the span exceeds one year, so
		// the attribute pair is recoverable from the text; annual checks
		// (the common case) mention only the focus year. CAGR formulas
		// additionally say "per year", distinguishing them from simple
		// growth for the formula classifier.
		span := fmt.Sprintf("in %s", attrs[0])
		if attrs[0] != "" && attrs[1] != "" && yearGap(attrs[0], attrs[1]) > 1 {
			span = fmt.Sprintf("from %s to %s", attrs[1], attrs[0])
		}
		annual := ""
		if spec.family == famCAGR {
			annual = []string{" per year", " annually", " on average each year"}[g.rng.Intn(3)]
		}
		if explicit {
			c.Kind = claims.Explicit
			c.Cmp = claims.OpEq
			c.Param = stated
			c.HasParam = true
			c.Text = fmt.Sprintf("%s %s %s by %.3g%%%s", span, subject, verb(rate), math.Abs(stated)*100, annual)
		} else {
			c.Kind = claims.General
			op, param, word := g.pickQuantifier(rate, correct)
			c.Cmp = op
			c.Param = param
			c.HasParam = true
			c.Text = fmt.Sprintf("%s %s %s %s%s", span, subject, verb(rate), word, annual)
		}
	case famLookup:
		stated := round3(value)
		if !correct {
			stated = round3(perturb(value))
		}
		c.Kind = claims.Explicit
		c.Cmp = claims.OpEq
		c.Param = stated
		c.HasParam = true
		c.Text = fmt.Sprintf("%s stood at %s units in %s", subject, formatQty(stated), attrs[0])
		if !explicit {
			// Render as a "reaching" clause but it remains explicit: the
			// parameter is in the text.
			c.Text = fmt.Sprintf("%s kept rising, %s %s units in %s",
				subject, reachVerbs[g.rng.Intn(len(reachVerbs))], formatQty(stated), attrs[0])
		}
	case famRatio:
		fold := value
		stated := math.Round(fold*10) / 10
		if !correct {
			stated = math.Round(perturb(fold)*10) / 10
			if claims.RelClose(stated, fold, 0.1) {
				stated = fold * 2
			}
		}
		c.Kind = claims.Explicit
		c.Cmp = claims.OpEq
		c.Param = stated
		c.HasParam = true
		c.Text = fmt.Sprintf("the market for %s increased %.1f-fold from %s to %s", subject, stated, attrs[1], attrs[0])
	case famShare:
		pct := value // already ×100
		stated := math.Round(pct*10) / 10
		if !correct {
			stated = math.Round(perturb(pct)*10) / 10
		}
		c.Kind = claims.Explicit
		c.Cmp = claims.OpEq
		c.Param = stated
		c.HasParam = true
		// The formula already yields percent units, so the stated percent
		// is compared against the query value directly.
		c.Text = fmt.Sprintf("%s accounted for %.1f%% of the reference series in %s", subject, stated, attrs[0])
	case famDiff:
		stated := round3(value)
		if !correct {
			stated = round3(perturb(value + 1))
		}
		c.Kind = claims.Explicit
		c.Cmp = claims.OpEq
		c.Param = stated
		c.HasParam = true
		c.Text = fmt.Sprintf("%s changed by %s units between %s and %s",
			subject, formatQty(stated), attrs[1], attrs[0])
	case famSum, famAvg, famScaled:
		stated := round3(value)
		if !correct {
			stated = round3(perturb(value + 1))
		}
		c.Kind = claims.Explicit
		c.Cmp = claims.OpEq
		c.Param = stated
		c.HasParam = true
		what := map[formulaFamily]string{famSum: "combined output", famAvg: "average level", famScaled: "adjusted index"}[spec.family]
		c.Text = fmt.Sprintf("the %s of %s was %s in %s", what, subject, formatQty(stated), attrs[0])
	case famThreshold:
		// General claim whose formula already encodes the comparison:
		// "a.A1 > C" evaluates to 1 when the claim's assertion holds, so
		// the claim states that the query returns 1 (Example 9's Boolean
		// check pattern).
		holds := value >= 0.5
		c.Kind = claims.General
		c.Cmp = claims.OpEq
		c.Param = 1
		c.HasParam = true
		if holds {
			c.Text = fmt.Sprintf("%s exceeded %s units in %s", subject, formatQty(spec.constant), attrs[0])
		} else {
			c.Text = fmt.Sprintf("%s stayed above %s units in %s", subject, formatQty(spec.constant), attrs[0])
		}
		// Correctness is determined by the data: the claim asserts the
		// threshold holds; it is correct iff it does.
		c.Correct = holds
	default:
		return fmt.Errorf("worldgen: unhandled formula family %d", spec.family)
	}
	return nil
}

// pickQuantifier chooses a vague word whose lexicon meaning (op, param)
// agrees (correct) or disagrees (incorrect) with the observed rate.
func (g *claimGen) pickQuantifier(rate float64, correct bool) (claims.Op, float64, string) {
	type q struct {
		word  string
		op    claims.Op
		param float64
	}
	quantifiers := []q{
		{"aggressively", claims.OpGt, 1.0},
		{"strongly", claims.OpGt, 0.10},
		{"sharply", claims.OpGt, 0.15},
		{"rapidly", claims.OpGt, 0.12},
		{"significantly", claims.OpGt, 0.05},
		{"moderately", claims.OpGt, 0.02},
		{"scarcely", claims.OpLt, 0.02},
		{"marginally", claims.OpLt, 0.03},
		{"barely", claims.OpLt, 0.02},
	}
	g.rng.Shuffle(len(quantifiers), func(i, j int) {
		quantifiers[i], quantifiers[j] = quantifiers[j], quantifiers[i]
	})
	for _, cand := range quantifiers {
		holds := cand.op.Compare(rate, cand.param, 0)
		if holds == correct {
			return cand.op, cand.param, cand.word
		}
	}
	// Fallback: first quantifier; caller keeps the Correct flag
	// consistent with the actual comparison.
	f := quantifiers[0]
	return f.op, f.param, f.word
}

// candidates builds the annotation candidate lists (Table 1 input): truth
// values plus sibling values the checkers would have consulted.
func (g *claimGen) candidates(t *claims.GroundTruth, relIdx, keyIdx int) CandidateLists {
	cand := CandidateLists{
		Relations: append([]string(nil), t.Relations...),
		Keys:      append([]string(nil), t.Keys...),
		Attrs:     append([]string(nil), t.Attrs...),
		Formulas:  []string{t.Formula},
	}
	rs := g.rels[relIdx]
	// Sibling relations: same family/region, other scenarios; same
	// family/scenario, neighbouring regions.
	for i := 0; i < g.cfg.CandidateBreadth; i++ {
		var sib relSpec
		if i%2 == 0 {
			sc := (rs.scenario + 1 + g.rng.Intn(maxInt(g.cfg.Scenarios-1, 1))) % maxInt(g.cfg.Scenarios, 1)
			sib = g.findRel(rs.family, rs.region, sc)
		} else {
			rg := (rs.region + 1 + g.rng.Intn(maxInt(g.cfg.Regions-1, 1))) % maxInt(g.cfg.Regions, 1)
			sib = g.findRel(rs.family, rg, rs.scenario)
		}
		if sib.name != "" && sib.name != rs.name {
			cand.Relations = append(cand.Relations, sib.name)
		}
	}
	// Sibling keys: same fuel, other sectors (drawn from the same
	// relation's rows when possible).
	for i := 0; i < g.cfg.CandidateBreadth && len(rs.keyIdx) > 1; i++ {
		ki := rs.keyIdx[g.rng.Intn(len(rs.keyIdx))]
		if g.keys[ki].code != g.keys[keyIdx].code {
			cand.Keys = append(cand.Keys, g.keys[ki].code)
		}
	}
	// Neighbouring years.
	for _, a := range t.Attrs {
		if y, err := strconv.Atoi(a); err == nil {
			for d := -1; d <= 1; d += 2 {
				n := strconv.Itoa(y + d)
				if n >= g.years[0] && n <= g.years[len(g.years)-1] {
					cand.Attrs = append(cand.Attrs, n)
				}
			}
		}
	}
	// Alternative formulas a checker might have used.
	for i := 0; i < 2; i++ {
		alt := g.vocab[zipfPick(g.rng, len(g.vocab), 1.25)].text
		if alt != t.Formula {
			cand.Formulas = append(cand.Formulas, alt)
		}
	}
	return dedupeLists(cand)
}

func (g *claimGen) findRel(family, region, scenario int) relSpec {
	name := code(familyNames[family]) + "_" + code(regionNames[region]) + "_" + code(scenarioNames[scenario])
	for _, r := range g.rels {
		if r.name == name {
			return r
		}
	}
	return relSpec{}
}

func dedupeLists(c CandidateLists) CandidateLists {
	return CandidateLists{
		Relations: dedupe(c.Relations),
		Keys:      dedupe(c.Keys),
		Attrs:     dedupe(c.Attrs),
		Formulas:  dedupe(c.Formulas),
	}
}

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// yearGap returns |a-b| for numeric year labels, or 0 when either label is
// not numeric.
func yearGap(a, b string) int {
	ya, errA := strconv.Atoi(a)
	yb, errB := strconv.Atoi(b)
	if errA != nil || errB != nil {
		return 0
	}
	if ya > yb {
		return ya - yb
	}
	return yb - ya
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func round3(v float64) float64 {
	if v == 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(math.Abs(v)))-2)
	return math.Round(v/mag) * mag
}

// formatQty renders a quantity with thin digit grouping ("22 209"), the way
// the IEA report writes large numbers.
func formatQty(v float64) string {
	neg := v < 0
	v = math.Abs(v)
	whole := int64(v)
	frac := v - float64(whole)
	s := strconv.FormatInt(whole, 10)
	var grouped strings.Builder
	for i, d := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			grouped.WriteByte(' ')
		}
		grouped.WriteRune(d)
	}
	out := grouped.String()
	if frac > 1e-9 {
		fs := strconv.FormatFloat(frac, 'f', 2, 64)
		out += fs[1:] // drop leading 0
	}
	if neg {
		out = "-" + out
	}
	return out
}
