package worldgen

import "testing"

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := SmallScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZipfPick(b *testing.B) {
	w, err := Generate(SmallScale())
	if err != nil {
		b.Fatal(err)
	}
	_ = w
	b.ResetTimer()
	// zipfPick is internal; exercise it through claim regeneration of a
	// tiny world, which is dominated by the sampling loops.
	cfg := SmallScale()
	cfg.NumClaims = 10
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
