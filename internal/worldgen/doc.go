// Package worldgen generates the synthetic energy-statistics world that
// substitutes for the proprietary IEA data of the paper's evaluation (see
// DESIGN.md). Generate produces a World holding:
//
//   - a corpus of relations shaped like the paper's Figure 1 (row keys are
//     indicator codes, columns are years, values follow smooth trends),
//   - a document of textual claims with ground-truth annotations (relation,
//     keys, attributes, formula, correct value), rendered through
//     paraphrased templates so text classification is learnable but not
//     trivial,
//   - per-claim candidate lists mimicking the three checkers' annotation
//     breadth, from which the Table 1 frequency percentiles are computed,
//   - controlled error injection (the stated parameter of a fraction of
//     claims contradicts the data).
//
// Two reference configurations bracket the scale range: SmallScale runs in
// seconds and backs tests and demos; PaperScale reproduces the evaluation
// numbers (1539 claims, the corpus dimensions of §6.1). Both are plain
// Config values, so any field can be overridden before calling Generate.
//
// Everything is deterministic given Config.Seed: the same seed produces
// the same corpus, document, candidates and injected errors, which is what
// anchors the repo's reproducibility guarantees end to end.
package worldgen
