package worldgen

import (
	"math"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/query"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	w, err := Generate(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateShape(t *testing.T) {
	cfg := SmallScale()
	w := smallWorld(t)
	if len(w.Document.Claims) != cfg.NumClaims {
		t.Errorf("claims = %d, want %d", len(w.Document.Claims), cfg.NumClaims)
	}
	if w.Corpus.Len() != cfg.Families*cfg.Regions*cfg.Scenarios {
		t.Errorf("relations = %d, want %d", w.Corpus.Len(), cfg.Families*cfg.Regions*cfg.Scenarios)
	}
	if err := w.Document.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.FormulaVocab) != cfg.NumFormulas {
		t.Errorf("formula vocab = %d, want %d", len(w.FormulaVocab), cfg.NumFormulas)
	}
	// Vocabulary is distinct.
	seen := map[string]bool{}
	for _, f := range w.FormulaVocab {
		if seen[f] {
			t.Errorf("duplicate formula %q", f)
		}
		seen[f] = true
	}
}

func TestEveryClaimHasConsistentAnnotation(t *testing.T) {
	w := smallWorld(t)
	for _, c := range w.Document.Claims {
		if c.Truth == nil {
			t.Fatalf("claim %d lacks annotation", c.ID)
		}
		if c.Text == "" || c.Sentence == "" {
			t.Fatalf("claim %d lacks text", c.ID)
		}
		// The canonical truth query must execute and reproduce
		// Truth.Value.
		f, err := formula.ParseFormula(c.Truth.Formula)
		if err != nil {
			t.Fatalf("claim %d formula: %v", c.ID, err)
		}
		q := &query.Query{Select: f.Expr, AttrBindings: map[string]string{}}
		for i, v := range f.AttrVars {
			q.AttrBindings[v] = c.Truth.Attrs[i]
		}
		for i, alias := range expr.Aliases(f.Expr) {
			q.Bindings = append(q.Bindings, query.Binding{
				Alias:    alias,
				Relation: c.Truth.Relations[i%len(c.Truth.Relations)],
				Key:      c.Truth.Keys[i%len(c.Truth.Keys)],
			})
		}
		v, err := q.Execute(w.Corpus)
		if err != nil {
			t.Fatalf("claim %d truth query: %v", c.ID, err)
		}
		if math.Abs(v-c.Truth.Value) > 1e-9*math.Max(1, math.Abs(v)) {
			t.Fatalf("claim %d: truth value %g, query gives %g", c.ID, c.Truth.Value, v)
		}
	}
}

func TestCorrectClaimsMatchParameter(t *testing.T) {
	w := smallWorld(t)
	tol := 0.05
	for _, c := range w.Document.Claims {
		if !c.HasParam {
			continue
		}
		holds := c.Cmp.Compare(c.Truth.Value, c.Param, tol)
		if c.Correct && !holds {
			t.Errorf("claim %d marked correct but %g %s %g fails (text %q)",
				c.ID, c.Truth.Value, c.Cmp, c.Param, c.Text)
		}
		if !c.Correct && holds && c.Kind == claims.Explicit {
			t.Errorf("claim %d marked incorrect but parameter matches (text %q)", c.ID, c.Text)
		}
	}
}

func TestErrorRateApproximate(t *testing.T) {
	w := smallWorld(t)
	wrong := 0
	for _, c := range w.Document.Claims {
		if !c.Correct {
			wrong++
		}
	}
	rate := float64(wrong) / float64(len(w.Document.Claims))
	if rate < 0.10 || rate > 0.45 {
		t.Errorf("injected error rate = %.2f, want around %g", rate, w.Config.ErrorRate)
	}
}

func TestSectionsAssigned(t *testing.T) {
	w := smallWorld(t)
	seen := map[int]bool{}
	for _, c := range w.Document.Claims {
		if c.Section < 0 || c.Section >= w.Document.Sections {
			t.Fatalf("claim %d section %d out of range", c.ID, c.Section)
		}
		seen[c.Section] = true
	}
	if len(seen) < w.Document.Sections/2 {
		t.Errorf("only %d of %d sections used", len(seen), w.Document.Sections)
	}
}

func TestCandidateListsIncludeTruth(t *testing.T) {
	w := smallWorld(t)
	for _, c := range w.Document.Claims {
		cand, ok := w.Candidates[c.ID]
		if !ok {
			t.Fatalf("claim %d lacks candidates", c.ID)
		}
		if !containsAll(cand.Relations, c.Truth.Relations) {
			t.Errorf("claim %d candidates missing truth relations", c.ID)
		}
		if !containsAll(cand.Keys, c.Truth.Keys) {
			t.Errorf("claim %d candidates missing truth keys", c.ID)
		}
		if !containsAll(cand.Formulas, []string{c.Truth.Formula}) {
			t.Errorf("claim %d candidates missing truth formula", c.ID)
		}
	}
}

func containsAll(haystack, needles []string) bool {
	set := map[string]bool{}
	for _, h := range haystack {
		set[h] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}

func TestDeterministic(t *testing.T) {
	w1 := smallWorld(t)
	w2 := smallWorld(t)
	for i, c1 := range w1.Document.Claims {
		c2 := w2.Document.Claims[i]
		if c1.Text != c2.Text || c1.Param != c2.Param || c1.Correct != c2.Correct {
			t.Fatalf("generation not deterministic at claim %d", c1.ID)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := SmallScale()
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 12345
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range w1.Document.Claims {
		if w1.Document.Claims[i].Text == w2.Document.Claims[i].Text {
			same++
		}
	}
	if same == len(w1.Document.Claims) {
		t.Error("different seeds produced identical documents")
	}
}

func TestFormatQty(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{22209, "22 209"},
		{1234567, "1 234 567"},
		{450, "450"},
		{-1234, "-1 234"},
		{3.25, "3.25"},
	}
	for _, c := range cases {
		if got := formatQty(c.v); got != c.want {
			t.Errorf("formatQty(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRound3(t *testing.T) {
	if got := round3(22209.4); got != 22200 {
		t.Errorf("round3(22209.4) = %g", got)
	}
	if got := round3(0); got != 0 {
		t.Errorf("round3(0) = %g", got)
	}
	v := round3(3.14159)
	if math.Abs(v-3.14) > 1e-9 {
		t.Errorf("round3(pi) = %g", v)
	}
}

func TestZipfPickSkew(t *testing.T) {
	w := smallWorld(t)
	// The top formula should cover far more claims than the median one.
	counts := map[string]int{}
	for _, c := range w.Document.Claims {
		counts[c.Truth.Formula]++
	}
	top := 0
	for _, n := range counts {
		if n > top {
			top = n
		}
	}
	if top < len(w.Document.Claims)/10 {
		t.Errorf("top formula covers %d of %d claims; expected heavy skew", top, len(w.Document.Claims))
	}
}

func TestConfigDefaultsFill(t *testing.T) {
	w, err := Generate(Config{Seed: 3, NumClaims: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Document.Claims) != 10 {
		t.Errorf("claims = %d", len(w.Document.Claims))
	}
	if w.Corpus.Len() == 0 {
		t.Error("defaults produced empty corpus")
	}
}
