// Package formula implements Section 4.2 of the paper: turning previously
// checked claims into generic formulas with variables, so that check logic
// can be reused on unseen claims, and instantiating those formulas back into
// concrete queries during query generation.
//
// A formula is an expression (package expr) whose cell references use
// canonical binding aliases (a, b, c, ...) and whose attributes are
// canonical attribute variables (A1, A2, ...), e.g.
//
//	POWER(a.A1/b.A2, 1/(A1-A2)) - 1
//
// Generalize maps a concrete SELECT expression to its formula; the mapping
// preserves function names, operations and constants while replacing
// relations and attribute labels with variables (paper Example 8).
// Reconstruct resolves spreadsheet-style annotation chains into a single
// expression before generalisation (the "Reconstruction" problem of §4.2).
package formula

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/repro/scrutinizer/internal/expr"
)

// Formula is a canonicalised check template.
type Formula struct {
	// Expr is the canonical expression tree.
	Expr expr.Node
	// NumBindings is the number of distinct binding variables (a, b, ...).
	NumBindings int
	// AttrVars lists the attribute variables (A1, A2, ...) in order.
	AttrVars []string
}

// String renders the canonical formula; equal strings mean equal formulas,
// which is what the formula classifier predicts over.
func (f *Formula) String() string {
	if f == nil || f.Expr == nil {
		return ""
	}
	return f.Expr.String()
}

// Complexity counts expression elements (Figure 6 metric contribution).
func (f *Formula) Complexity() int { return expr.Complexity(f.Expr) }

// alphabet for canonical binding aliases.
const aliasAlphabet = "abcdefghijklmnopqrstuvwxyz"

func canonicalAlias(i int) string {
	if i < len(aliasAlphabet) {
		return string(aliasAlphabet[i])
	}
	return "x" + strconv.Itoa(i)
}

// Generalize converts a concrete check expression into a Formula:
//
//   - each distinct (alias, attribute-label) context becomes a canonical
//     binding alias in first-appearance order: a, b, c ...
//   - each distinct attribute label becomes a canonical variable A1, A2 ...
//   - numeric literals that equal an attribute label used elsewhere in the
//     expression are replaced by the same variable (years appearing as
//     constants, e.g. the 2017-2016 exponent of Example 8)
//   - all other constants, operators and functions are preserved
//
// The second return value maps canonical attribute variables back to the
// concrete labels they replaced, so callers can recover the original.
func Generalize(concrete expr.Node) (*Formula, map[string]string, error) {
	if concrete == nil {
		return nil, nil, fmt.Errorf("formula: nil expression")
	}
	// Pass 1: collect attribute labels from cell references, in
	// first-appearance order.
	var labels []string
	labelVar := map[string]string{}
	expr.Walk(concrete, func(n expr.Node) {
		if c, ok := n.(expr.CellRef); ok {
			if _, seen := labelVar[c.Attr]; !seen {
				labelVar[c.Attr] = "A" + strconv.Itoa(len(labels)+1)
				labels = append(labels, c.Attr)
			}
		}
	})
	// Pass 2: canonical aliases in first-appearance order.
	aliasMap := map[string]string{}
	expr.Walk(concrete, func(n expr.Node) {
		if c, ok := n.(expr.CellRef); ok {
			if _, seen := aliasMap[c.Alias]; !seen {
				aliasMap[c.Alias] = canonicalAlias(len(aliasMap))
			}
		}
	})
	// Pass 3: rewrite.
	rewritten := rewrite(concrete, aliasMap, labelVar)
	attrVars := make([]string, 0, len(labels))
	reverse := make(map[string]string, len(labels))
	for _, l := range labels {
		attrVars = append(attrVars, labelVar[l])
		reverse[labelVar[l]] = l
	}
	return &Formula{
		Expr:        rewritten,
		NumBindings: len(aliasMap),
		AttrVars:    attrVars,
	}, reverse, nil
}

func rewrite(n expr.Node, aliasMap, labelVar map[string]string) expr.Node {
	switch t := n.(type) {
	case expr.CellRef:
		alias := t.Alias
		if a, ok := aliasMap[t.Alias]; ok {
			alias = a
		}
		attr := t.Attr
		if v, ok := labelVar[t.Attr]; ok {
			attr = v
		}
		return expr.CellRef{Alias: alias, Attr: attr}
	case expr.Num:
		// A numeric literal that matches an attribute label elsewhere in
		// the expression becomes the corresponding variable (years used
		// in arithmetic).
		label := strconv.FormatFloat(t.Value, 'g', -1, 64)
		if v, ok := labelVar[label]; ok {
			return expr.AttrVar{Name: v}
		}
		return t
	case expr.AttrVar:
		return t
	case expr.BinOp:
		return expr.BinOp{
			Op:    t.Op,
			Left:  rewrite(t.Left, aliasMap, labelVar),
			Right: rewrite(t.Right, aliasMap, labelVar),
		}
	case expr.Neg:
		return expr.Neg{Operand: rewrite(t.Operand, aliasMap, labelVar)}
	case expr.Call:
		args := make([]expr.Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = rewrite(a, aliasMap, labelVar)
		}
		return expr.Call{Fn: t.Fn, Args: args}
	default:
		return n
	}
}

// ParseFormula parses a canonical formula string (the classifier's label
// vocabulary is made of these).
func ParseFormula(src string) (*Formula, error) {
	n, err := expr.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("formula: %w", err)
	}
	return &Formula{
		Expr:        n,
		NumBindings: len(expr.Aliases(n)),
		AttrVars:    expr.AttrVars(n),
	}, nil
}

// MustParseFormula panics on error; for tests and generators.
func MustParseFormula(src string) *Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

// CellAssignment instantiates one binding alias of a formula: which
// (relation, key) pair it reads, with attribute variables resolved through
// the shared attribute assignment.
type CellAssignment struct {
	Alias    string
	Relation string
	Key      string
}

// Instantiation is a full variable assignment for a formula: one
// CellAssignment per binding alias plus a concrete label per attribute
// variable.
type Instantiation struct {
	Cells []CellAssignment
	Attrs map[string]string
}

// Instantiate applies an instantiation, producing the (still canonical-
// alias) expression plus binding/attribute maps ready to build a query. It
// validates that every alias and attribute variable is covered.
func (f *Formula) Instantiate(inst Instantiation) (expr.Node, error) {
	if f == nil || f.Expr == nil {
		return nil, fmt.Errorf("formula: instantiating nil formula")
	}
	have := map[string]bool{}
	for _, c := range inst.Cells {
		have[c.Alias] = true
	}
	for _, a := range expr.Aliases(f.Expr) {
		if !have[a] {
			return nil, fmt.Errorf("formula: alias %q not covered by instantiation", a)
		}
	}
	for _, v := range f.AttrVars {
		if _, ok := inst.Attrs[v]; !ok {
			return nil, fmt.Errorf("formula: attribute variable %q not covered by instantiation", v)
		}
	}
	return f.Expr, nil
}

// Reconstruct resolves annotation chains into a single expression. Fact
// checkers annotate claims with named intermediate steps (spreadsheet
// cells); each definition is an expression that may reference other
// definitions by name. Reconstruct(root, defs) recursively replaces every
// reference until only look-ups (cell references) and constants remain —
// the paper's "recursively replacing each value by its corresponding
// function in the annotations until we reach a look-up".
//
// References are modelled as zero-binding cell references step.NAME, e.g.
// step.growth refers to defs["growth"].
func Reconstruct(root expr.Node, defs map[string]expr.Node) (expr.Node, error) {
	return reconstruct(root, defs, make(map[string]bool))
}

// RefNamespace is the alias namespace reserved for intermediate-step
// references inside annotations.
const RefNamespace = "step"

func reconstruct(n expr.Node, defs map[string]expr.Node, visiting map[string]bool) (expr.Node, error) {
	switch t := n.(type) {
	case expr.CellRef:
		if t.Alias != RefNamespace {
			return t, nil
		}
		def, ok := defs[t.Attr]
		if !ok {
			return nil, fmt.Errorf("formula: annotation references undefined step %q", t.Attr)
		}
		if visiting[t.Attr] {
			return nil, fmt.Errorf("formula: annotation step %q is cyclically defined", t.Attr)
		}
		visiting[t.Attr] = true
		resolved, err := reconstruct(def, defs, visiting)
		visiting[t.Attr] = false
		if err != nil {
			return nil, err
		}
		return resolved, nil
	case expr.BinOp:
		l, err := reconstruct(t.Left, defs, visiting)
		if err != nil {
			return nil, err
		}
		r, err := reconstruct(t.Right, defs, visiting)
		if err != nil {
			return nil, err
		}
		return expr.BinOp{Op: t.Op, Left: l, Right: r}, nil
	case expr.Neg:
		o, err := reconstruct(t.Operand, defs, visiting)
		if err != nil {
			return nil, err
		}
		return expr.Neg{Operand: o}, nil
	case expr.Call:
		args := make([]expr.Node, len(t.Args))
		for i, a := range t.Args {
			r, err := reconstruct(a, defs, visiting)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return expr.Call{Fn: t.Fn, Args: args}, nil
	default:
		return n, nil
	}
}

// Library is a deduplicating store of formulas keyed by canonical string;
// it tracks occurrence counts so the corpus statistics (Table 1) and the
// classifier label space can be derived from it.
type Library struct {
	byKey  map[string]*Formula
	counts map[string]int
	order  []string
}

// NewLibrary creates an empty formula library.
func NewLibrary() *Library {
	return &Library{
		byKey:  make(map[string]*Formula),
		counts: make(map[string]int),
	}
}

// Add inserts (or counts) a formula and returns its canonical key.
func (l *Library) Add(f *Formula) string {
	return l.AddKeyed(f.String(), f)
}

// AddKeyed is Add with the canonical key precomputed — for callers that
// already hold f.String() (e.g. a formula cache) and would otherwise pay
// the render per insertion. key must be f's canonical rendering.
func (l *Library) AddKeyed(key string, f *Formula) string {
	if _, ok := l.byKey[key]; !ok {
		l.byKey[key] = f
		l.order = append(l.order, key)
	}
	l.counts[key]++
	return key
}

// AddString parses and inserts a formula given as text.
func (l *Library) AddString(src string) (string, error) {
	f, err := ParseFormula(src)
	if err != nil {
		return "", err
	}
	return l.Add(f), nil
}

// Get returns the formula with the given canonical key.
func (l *Library) Get(key string) (*Formula, bool) {
	f, ok := l.byKey[key]
	return f, ok
}

// Len returns the number of distinct formulas.
func (l *Library) Len() int { return len(l.order) }

// Count returns the occurrence count of a formula key.
func (l *Library) Count(key string) int { return l.counts[key] }

// Keys returns formula keys in first-insertion order.
func (l *Library) Keys() []string { return l.order }

// Counts returns occurrence counts aligned with a sorted key list; used for
// the frequency percentiles of Table 1.
func (l *Library) Counts() []float64 {
	keys := append([]string(nil), l.order...)
	sort.Strings(keys)
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = float64(l.counts[k])
	}
	return out
}

// TopK returns the k most frequent formula keys (ties broken
// lexicographically for determinism).
func (l *Library) TopK(k int) []string {
	keys := append([]string(nil), l.order...)
	sort.Slice(keys, func(i, j int) bool {
		if l.counts[keys[i]] != l.counts[keys[j]] {
			return l.counts[keys[i]] > l.counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > len(keys) {
		k = len(keys)
	}
	return keys[:k]
}
