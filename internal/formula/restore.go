package formula

import "fmt"

// Export returns the library's state as parallel slices: canonical keys in
// first-insertion order and their occurrence counts. RestoreLibrary inverts
// it exactly, so classifier label spaces derived from the library (which
// depend on insertion order and counts) survive a round trip.
func (l *Library) Export() (keys []string, counts []int) {
	keys = append([]string(nil), l.order...)
	counts = make([]int, len(keys))
	for i, k := range keys {
		counts[i] = l.counts[k]
	}
	return keys, counts
}

// RestoreLibrary rebuilds a library from an Export dump: each key is parsed
// once and inserted in order with its count. Keys that no longer parse (a
// snapshot from an incompatible version) are rejected.
func RestoreLibrary(keys []string, counts []int) (*Library, error) {
	if len(keys) != len(counts) {
		return nil, fmt.Errorf("formula: %d keys with %d counts", len(keys), len(counts))
	}
	l := NewLibrary()
	for i, key := range keys {
		if counts[i] < 1 {
			return nil, fmt.Errorf("formula: key %q has count %d", key, counts[i])
		}
		f, err := ParseFormula(key)
		if err != nil {
			return nil, fmt.Errorf("formula: restoring %q: %w", key, err)
		}
		got := l.Add(f)
		if got != key {
			return nil, fmt.Errorf("formula: key %q re-canonicalised to %q", key, got)
		}
		l.counts[got] = counts[i]
	}
	return l, nil
}
