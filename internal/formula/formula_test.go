package formula

import (
	"math"
	"strings"
	"testing"

	"github.com/repro/scrutinizer/internal/expr"
)

func TestGeneralizeExample8(t *testing.T) {
	// SELECT POWER(a.2017/b.2016, 1/(2017-2016)) - 1 generalises to
	// POWER(a.A1/b.A2, 1/(A1-A2)) - 1.
	concrete := expr.MustParse("POWER(a.2017/b.2016, 1/(2017-2016)) - 1")
	f, reverse, err := Generalize(concrete)
	if err != nil {
		t.Fatal(err)
	}
	want := "(POWER((a.A1 / b.A2), (1 / (A1 - A2))) - 1)"
	if f.String() != want {
		t.Errorf("Generalize = %q, want %q", f.String(), want)
	}
	if f.NumBindings != 2 {
		t.Errorf("NumBindings = %d, want 2", f.NumBindings)
	}
	if len(f.AttrVars) != 2 || f.AttrVars[0] != "A1" || f.AttrVars[1] != "A2" {
		t.Errorf("AttrVars = %v", f.AttrVars)
	}
	if reverse["A1"] != "2017" || reverse["A2"] != "2016" {
		t.Errorf("reverse map = %v", reverse)
	}
}

func TestGeneralizeCanonicalisesAliases(t *testing.T) {
	// Odd aliases x, q become a, b in first-appearance order.
	concrete := expr.MustParse("x.2017 / q.2000")
	f, _, err := Generalize(concrete)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "(a.A1 / b.A2)" {
		t.Errorf("Generalize = %q", f.String())
	}
}

func TestGeneralizeSharedLabelSharesVariable(t *testing.T) {
	// The same attribute label in two references maps to one variable.
	concrete := expr.MustParse("a.2017 - b.2017")
	f, _, err := Generalize(concrete)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "(a.A1 - b.A1)" {
		t.Errorf("Generalize = %q", f.String())
	}
}

func TestGeneralizePreservesConstants(t *testing.T) {
	// Constants that are not attribute labels stay constants.
	concrete := expr.MustParse("a.2017 * 100 + 0.5")
	f, _, err := Generalize(concrete)
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	if !strings.Contains(s, "100") || !strings.Contains(s, "0.5") {
		t.Errorf("constants lost: %q", s)
	}
}

func TestGeneralizeNilAndIdempotent(t *testing.T) {
	if _, _, err := Generalize(nil); err == nil {
		t.Error("nil should error")
	}
	f1, _, err := Generalize(expr.MustParse("a.2017 / b.2016"))
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := Generalize(f1.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if f1.String() != f2.String() {
		t.Errorf("not idempotent: %q vs %q", f1.String(), f2.String())
	}
}

func TestParseFormula(t *testing.T) {
	f, err := ParseFormula("POWER(a.A1/b.A2, 1/(A1-A2)) - 1")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBindings != 2 || len(f.AttrVars) != 2 {
		t.Errorf("shape = %d bindings, %v attrs", f.NumBindings, f.AttrVars)
	}
	if _, err := ParseFormula("(((("); err == nil {
		t.Error("bad formula accepted")
	}
	if (&Formula{}).String() != "" {
		t.Error("empty formula should stringify empty")
	}
	var nilF *Formula
	if nilF.String() != "" {
		t.Error("nil formula should stringify empty")
	}
}

func TestInstantiateValidates(t *testing.T) {
	f := MustParseFormula("a.A1 / b.A2")
	_, err := f.Instantiate(Instantiation{
		Cells: []CellAssignment{{Alias: "a", Relation: "R", Key: "k"}},
		Attrs: map[string]string{"A1": "2017", "A2": "2016"},
	})
	if err == nil {
		t.Error("missing alias b accepted")
	}
	_, err = f.Instantiate(Instantiation{
		Cells: []CellAssignment{
			{Alias: "a", Relation: "R", Key: "k"},
			{Alias: "b", Relation: "R", Key: "k"},
		},
		Attrs: map[string]string{"A1": "2017"},
	})
	if err == nil {
		t.Error("missing attr var accepted")
	}
	node, err := f.Instantiate(Instantiation{
		Cells: []CellAssignment{
			{Alias: "a", Relation: "R", Key: "k"},
			{Alias: "b", Relation: "R", Key: "k"},
		},
		Attrs: map[string]string{"A1": "2017", "A2": "2016"},
	})
	if err != nil || node == nil {
		t.Errorf("valid instantiation rejected: %v", err)
	}
	var nilF *Formula
	if _, err := nilF.Instantiate(Instantiation{}); err == nil {
		t.Error("nil formula instantiation accepted")
	}
}

func TestReconstructChain(t *testing.T) {
	// growth = a.2017 / b.2016; root = step.growth - 1.
	defs := map[string]expr.Node{
		"growth": expr.MustParse("a.2017 / b.2016"),
	}
	root := expr.MustParse("step.growth - 1")
	resolved, err := Reconstruct(root, defs)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.MapEnv{Cells: map[string]float64{"a.2017": 22, "b.2016": 20}}
	v, err := expr.Eval(resolved, env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1) > 1e-12 {
		t.Errorf("Reconstruct eval = %g, want 0.1", v)
	}
}

func TestReconstructNested(t *testing.T) {
	defs := map[string]expr.Node{
		"ratio":  expr.MustParse("a.2017 / b.2000"),
		"growth": expr.MustParse("step.ratio - 1"),
	}
	root := expr.MustParse("ABS(step.growth)")
	resolved, err := Reconstruct(root, defs)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resolved.String(), "step.") {
		t.Errorf("unresolved reference remains: %q", resolved.String())
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(expr.MustParse("step.nope"), nil); err == nil {
		t.Error("undefined step accepted")
	}
	defs := map[string]expr.Node{
		"x": expr.MustParse("step.y + 1"),
		"y": expr.MustParse("step.x + 1"),
	}
	if _, err := Reconstruct(expr.MustParse("step.x"), defs); err == nil {
		t.Error("cyclic definition accepted")
	}
	// Self-cycle.
	defs = map[string]expr.Node{"x": expr.MustParse("step.x")}
	if _, err := Reconstruct(expr.MustParse("step.x"), defs); err == nil {
		t.Error("self cycle accepted")
	}
}

func TestReconstructThenGeneralize(t *testing.T) {
	// End-to-end: annotation chain -> reconstruction -> formula.
	defs := map[string]expr.Node{
		"cagr": expr.MustParse("POWER(a.2017/b.2016, 1/(2017-2016)) - 1"),
	}
	resolved, err := Reconstruct(expr.MustParse("step.cagr"), defs)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := Generalize(resolved)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "(POWER((a.A1 / b.A2), (1 / (A1 - A2))) - 1)" {
		t.Errorf("pipeline = %q", f.String())
	}
}

func TestLibraryDedupAndCounts(t *testing.T) {
	l := NewLibrary()
	k1, err := l.AddString("a.A1 / b.A2")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := l.AddString("a.A1 / b.A2")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("same formula different keys: %q %q", k1, k2)
	}
	if _, err := l.AddString("a.A1 - b.A2"); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if l.Count(k1) != 2 {
		t.Errorf("Count = %d, want 2", l.Count(k1))
	}
	if _, ok := l.Get(k1); !ok {
		t.Error("Get should find formula")
	}
	if _, ok := l.Get("nope"); ok {
		t.Error("Get found a missing key")
	}
	if _, err := l.AddString("(((("); err == nil {
		t.Error("bad formula accepted")
	}
	counts := l.Counts()
	if len(counts) != 2 {
		t.Errorf("Counts = %v", counts)
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("total occurrences = %g, want 3", total)
	}
}

func TestLibraryTopK(t *testing.T) {
	l := NewLibrary()
	for i := 0; i < 5; i++ {
		if _, err := l.AddString("a.A1 / b.A2"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := l.AddString("a.A1 - b.A2"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AddString("a.A1 + 1"); err != nil {
		t.Fatal(err)
	}
	top := l.TopK(2)
	if len(top) != 2 || top[0] != "(a.A1 / b.A2)" {
		t.Errorf("TopK = %v", top)
	}
	if got := l.TopK(99); len(got) != 3 {
		t.Errorf("TopK(99) = %v", got)
	}
	if l.Keys()[0] != "(a.A1 / b.A2)" {
		t.Errorf("Keys order = %v", l.Keys())
	}
}

func TestGeneralizeBooleanCheck(t *testing.T) {
	// Example 9 Boolean query SELECT d.y > 100 generalises with the
	// comparison preserved.
	f, _, err := Generalize(expr.MustParse("d.2017 > 100"))
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "(a.A1 > 100)" {
		t.Errorf("Generalize = %q", f.String())
	}
}
