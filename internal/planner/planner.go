package planner

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// CostModel carries the crowd-time constants of §5.1. All values are in
// seconds. The paper requires vp << vf and sp << sf.
type CostModel struct {
	// VerifyProperty (vp) is the cost of reading and judging one answer
	// option about a query property.
	VerifyProperty float64
	// VerifyFull (vf) is the cost of judging one full-query option.
	VerifyFull float64
	// SuggestProperty (sp) is the cost of writing a property answer when
	// no displayed option is correct.
	SuggestProperty float64
	// SuggestFull (sf) is the cost of writing the full query from
	// scratch — the manual-baseline cost.
	SuggestFull float64
}

// DefaultCostModel matches the relative magnitudes of the user study: a
// manual claim check takes minutes (sf), scanning one option takes seconds.
func DefaultCostModel() CostModel {
	return CostModel{
		VerifyProperty:  2,
		VerifyFull:      15,
		SuggestProperty: 10,
		SuggestFull:     180,
	}
}

// Validate checks the paper's ordering assumptions.
func (cm CostModel) Validate() error {
	if cm.VerifyProperty <= 0 || cm.VerifyFull <= 0 || cm.SuggestProperty <= 0 || cm.SuggestFull <= 0 {
		return fmt.Errorf("planner: cost model values must be positive: %+v", cm)
	}
	if cm.VerifyProperty >= cm.VerifyFull {
		return fmt.Errorf("planner: need vp < vf, got vp=%g vf=%g", cm.VerifyProperty, cm.VerifyFull)
	}
	if cm.SuggestProperty >= cm.SuggestFull {
		return fmt.Errorf("planner: need sp < sf, got sp=%g sf=%g", cm.SuggestProperty, cm.SuggestFull)
	}
	return nil
}

// NumOptions returns nop = sf/vf (Corollary 1), at least 1.
func (cm CostModel) NumOptions() int {
	n := int(cm.SuggestFull / cm.VerifyFull)
	if n < 1 {
		n = 1
	}
	return n
}

// NumScreens returns nsc = sf/(vp+sp) (Corollary 1), at least 1.
func (cm CostModel) NumScreens() int {
	n := int(cm.SuggestFull / (cm.VerifyProperty + cm.SuggestProperty))
	if n < 1 {
		n = 1
	}
	return n
}

// OverheadBound returns the Theorem 1 worst-case relative verification
// overhead (nop*vf + nsc*(vp+sp)) / sf for the given screen/option counts.
func (cm CostModel) OverheadBound(nop, nsc int) float64 {
	return (float64(nop)*cm.VerifyFull + float64(nsc)*(cm.VerifyProperty+cm.SuggestProperty)) / cm.SuggestFull
}

// Option is one candidate answer for a property, with its classifier
// probability.
type Option struct {
	Value string
	Prob  float64
}

// Property is one query property (relation / key / attribute / formula)
// with its candidate options.
type Property struct {
	// Name identifies the property ("relation", "key", ...).
	Name string
	// Options are candidate answers; the planner sorts them.
	Options []Option
	// Required marks properties whose value the verification flow must
	// obtain from the crowd regardless of pruning power (the query
	// context: relations, keys, attributes). Required properties always
	// get a screen — on cold start an empty screen whose answer is
	// suggested at cost sp. Non-required properties (the formula) get
	// screens only when the greedy selection finds them worth asking;
	// otherwise the system relies on classifier predictions and the
	// final screen.
	Required bool
}

// SortOptions returns the options in decreasing probability order (ties by
// value, deterministic) — Corollary 2 — without mutating the input. The
// (prob, value) key is a total order over any sane option list, so the
// result does not depend on the sort algorithm.
func SortOptions(opts []Option) []Option {
	out := append([]Option(nil), opts...)
	slices.SortFunc(out, func(a, b Option) int {
		if a.Prob != b.Prob {
			if a.Prob > b.Prob {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Value, b.Value)
	})
	return out
}

// ExpectedVerificationCost computes the Theorem 2 expectation
// vp * sum_i (1 - sum_{j<i} p_j) for an ordered option list.
func ExpectedVerificationCost(ordered []Option, vp float64) float64 {
	var cost, cum float64
	for _, o := range ordered {
		cost += vp * (1 - cum)
		cum += o.Prob
		if cum > 1 {
			cum = 1
		}
	}
	return cost
}

// Screen is one planned question screen.
type Screen struct {
	Property string
	Options  []Option // sorted, truncated to the option budget
	// ExpectedCost is the Theorem 2 expectation for the displayed
	// options plus the residual suggestion cost if none applies.
	ExpectedCost float64
}

// Plan is the full question plan for one claim.
type Plan struct {
	Screens []Screen
	// FinalOptions is the number of query candidates shown on the final
	// screen (bounded by nop).
	FinalOptions int
	// ExpectedCost is the total expected crowd time for the claim in
	// seconds: property screens + final query screen.
	ExpectedCost float64
	// PruningPower is the expected number of query candidates excluded
	// by the selected screens (Definition 5).
	PruningPower float64
	// CandidateCount is the number of query candidates before pruning.
	CandidateCount int
}

// CandidateSpace describes the query-candidate set as the Cartesian product
// of property option lists; query candidate q is excluded by answer a of
// property s iff q's value for s differs from a. This is the structure the
// complexity remark under Theorem 6 exploits.
type CandidateSpace struct {
	props []Property
}

// NewCandidateSpace builds a candidate space; properties with no options
// contribute factor 1 (nothing to prune).
func NewCandidateSpace(props []Property) *CandidateSpace {
	return &CandidateSpace{props: props}
}

// Size returns the number of query candidates (product of option counts).
func (cs *CandidateSpace) Size() int {
	n := 1
	for _, p := range cs.props {
		if len(p.Options) > 0 {
			n *= len(p.Options)
		}
	}
	return n
}

// Properties returns the property list.
func (cs *CandidateSpace) Properties() []Property { return cs.props }

// normalised returns option probabilities normalised to sum to one (the
// mutual-exclusivity assumption of Theorem 3).
func normalised(opts []Option) []float64 {
	var total float64
	for _, o := range opts {
		if o.Prob > 0 {
			total += o.Prob
		}
	}
	out := make([]float64, len(opts))
	if total <= 0 {
		// Uniform fallback.
		for i := range out {
			out[i] = 1 / float64(len(opts))
		}
		return out
	}
	for i, o := range opts {
		if o.Prob > 0 {
			out[i] = o.Prob / total
		}
	}
	return out
}

// PruningPower computes P(S, Q, M) of Theorem 3 for the property subset
// sel (indexes into Properties). Exploiting the Cartesian product
// structure: for a property s with normalised probabilities p_i over m_s
// options, a candidate whose s-value is option i survives s with
// probability p_i (only the correct answer keeps it). The expected number
// of *surviving* candidates factorises as
//
//	|Q| * prod_{s in S} E_i[p_i * (1/m_s) * m_s] = |Q| * prod_s sum_i p_i^2 ...
//
// more precisely: a uniformly chosen candidate has value i on s with
// frequency 1/m_s, so its survival probability w.r.t. s is sum_i p_i / m_s
// weighted by matching: sum over options i of (1/m_s)*p_i ... the exact
// count is prod over s of sum_i p_i = 1 candidates? No — we compute the
// expected surviving count exactly by summing over candidate value
// combinations, which factorises into per-property sums:
//
//	E[|survivors|] = prod_{s in S} (sum_i p_i * 1) restricted to candidates
//	agreeing with the drawn answer = prod_{s in S} 1 * (candidates per
//	option) — see implementation below, which multiplies, per selected
//	property, the expected number of option values kept (exactly 1 when
//	answers are mutually exclusive) and, per unselected property, its full
//	option count.
//
// PruningPower = Size - E[|survivors|].
func (cs *CandidateSpace) PruningPower(sel []int) float64 {
	// sel is at most a handful of indexes (the nsc screen budget), and this
	// runs once per candidate property per greedy round — a linear contains
	// scan beats building a set every call.
	survivors := 1.0
	for i, p := range cs.props {
		m := len(p.Options)
		if m == 0 {
			continue
		}
		if slices.Contains(sel, i) {
			// The answer keeps exactly the candidates that agree with
			// it on this property: 1 out of m values survives,
			// regardless of which answer is drawn (probabilities sum
			// to one). Expected surviving factor = 1.
			survivors *= 1
		} else {
			survivors *= float64(m)
		}
	}
	return float64(cs.Size()) - survivors
}

// ExpectedSurvivors returns Size - PruningPower(sel).
func (cs *CandidateSpace) ExpectedSurvivors(sel []int) float64 {
	return float64(cs.Size()) - cs.PruningPower(sel)
}

// GreedySelect picks up to nsc properties maximising pruning power with the
// greedy algorithm of Theorem 5. It returns selected property indexes in
// pick order. Properties that add no pruning power (single-option or empty)
// are skipped.
func (cs *CandidateSpace) GreedySelect(nsc int) []int {
	// Reserve one spare slot so the probe append below never reallocates:
	// appending the candidate index writes into the backing array past
	// len(sel), which the next round either commits or overwrites.
	sel := make([]int, 0, min(nsc, len(cs.props))+1)
	chosen := make([]bool, len(cs.props))
	for len(sel) < nsc {
		bestIdx, bestGain := -1, 0.0
		base := cs.PruningPower(sel)
		for i := range cs.props {
			if chosen[i] || len(cs.props[i].Options) < 2 {
				continue
			}
			gain := cs.PruningPower(append(sel, i)) - base
			if gain > bestGain+1e-12 {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen[bestIdx] = true
		sel = append(sel, bestIdx)
	}
	return sel
}

// BuildPlan assembles the full question plan for a claim: Corollary 1
// budgets, greedy property selection, Corollary 2 option ordering, and the
// expected-cost roll-up used by the scheduler.
func BuildPlan(cs *CandidateSpace, cm CostModel) (*Plan, error) {
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	nop := cm.NumOptions()
	nsc := cm.NumScreens()

	// Greedy pruning-power selection fills the screen budget...
	sel := cs.GreedySelect(nsc)
	selected := make([]bool, len(cs.props))
	for _, i := range sel {
		selected[i] = true
	}
	// ...and Required context properties are force-included: the flow
	// must obtain their values even when the classifier offers nothing
	// (cold start), in which case the screen is an sp-cost suggestion.
	for i, p := range cs.props {
		if p.Required && !selected[i] {
			sel = append(sel, i)
			selected[i] = true
		}
	}

	plan := &Plan{CandidateCount: cs.Size()}
	coverage := 1.0
	for i, p := range cs.props {
		if !selected[i] {
			// No screen: the system relies on raw predictions; the
			// chance the true value is among the top-nop predictions is
			// their probability mass.
			coverage *= shownMass(p.Options, nop)
			continue
		}
		ordered := SortOptions(p.Options)
		if len(ordered) > nop {
			ordered = ordered[:nop]
		}
		// Raw classifier probabilities are exactly the p_a of Theorem 2;
		// residual mass means the checker suggests an answer (cost sp).
		var shown float64
		for _, o := range ordered {
			if o.Prob > 0 {
				shown += o.Prob
			}
		}
		shown = math.Min(shown, 1)
		cost := ExpectedVerificationCost(ordered, cm.VerifyProperty)
		cost += (1 - shown) * cm.SuggestProperty
		plan.Screens = append(plan.Screens, Screen{
			Property:     p.Name,
			Options:      ordered,
			ExpectedCost: cost,
		})
		plan.ExpectedCost += cost
	}
	plan.PruningPower = cs.PruningPower(sel)

	// Final screen: up to nop surviving query candidates at vf each.
	// With probability (1 - coverage) a screen-less property was
	// mispredicted, the correct query is absent, and the checker writes
	// it from scratch (sf).
	survivors := cs.ExpectedSurvivors(sel)
	finalShown := int(math.Min(float64(nop), math.Max(survivors, 1)))
	plan.FinalOptions = finalShown
	expectedScan := float64(finalShown) * cm.VerifyFull
	plan.ExpectedCost += expectedScan + (1-coverage)*cm.SuggestFull
	return plan, nil
}

// shownMass sums the top-k option probabilities, clamped to [0, 1]. Only
// the sum matters, not which tied option makes the cut, so when every
// option fits in the budget (the common case: option lists come from
// bounded classifier top-k) no ordering — and no copy — is needed.
func shownMass(opts []Option, k int) float64 {
	var mass float64
	if len(opts) <= k {
		for _, o := range opts {
			if o.Prob > 0 {
				mass += o.Prob
			}
		}
		return math.Min(mass, 1)
	}
	ordered := SortOptions(opts)
	for _, o := range ordered[:k] {
		if o.Prob > 0 {
			mass += o.Prob
		}
	}
	return math.Min(mass, 1)
}

// ManualCost is the baseline per-claim cost: suggesting the full query from
// scratch (used by the Manual baseline and by Theorem 1 comparisons).
func (cm CostModel) ManualCost() float64 { return cm.SuggestFull }
