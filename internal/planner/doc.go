// Package planner implements single-claim question planning (paper §5.1):
// given classifier predictions for a claim, it decides what to ask the
// crowd and in what form, so that expected human time is minimised.
//
// For one claim, the classifiers provide, per query property (relation, row
// key, attribute, formula), a probability distribution over answer options.
// The planner decides:
//
//   - how many screens to show and how many options per screen, using the
//     worst-case bound of Theorem 1 and the factor-three setting of
//     Corollary 1 (nop = sf/vf, nsc = sf/(vp+sp));
//   - which properties get screens, greedily maximising expected pruning
//     power over the query-candidate set (Theorem 3), which is submodular
//     (Theorem 4) so the greedy pick is within 1-1/e of optimal (Theorem 5);
//   - the order of answer options on a screen, by decreasing probability
//     (Theorem 2 / Corollary 2).
//
// The entry points are NewCandidateSpace (wraps per-property option lists),
// BuildPlan (produces a Plan of Screens plus its ExpectedCost), and
// CostModel (the vp/vf/sp/sf crowd-time constants of §5.1, validated by
// CostModel.Validate). A Plan's ExpectedCost is the per-claim v(c) input to
// the claim-ordering scheduler (package scheduler, §5.2), and its Screens
// drive the Oracle question flow in package core.
//
// Everything in this package is pure computation over its inputs: planners
// are safe to call from concurrent verification workers.
package planner
