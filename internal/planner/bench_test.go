package planner

import (
	"fmt"
	"testing"
)

func benchProps(nProps, nOpts int) []Property {
	props := make([]Property, nProps)
	for i := range props {
		opts := make([]Option, nOpts)
		for j := range opts {
			opts[j] = Option{Value: fmt.Sprintf("v%d", j), Prob: 1 / float64(nOpts)}
		}
		props[i] = Property{Name: fmt.Sprintf("p%d", i), Options: opts, Required: i < 3}
	}
	return props
}

func BenchmarkGreedySelect(b *testing.B) {
	cs := NewCandidateSpace(benchProps(4, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.GreedySelect(4)
	}
}

func BenchmarkBuildPlan(b *testing.B) {
	cs := NewCandidateSpace(benchProps(4, 10))
	cm := DefaultCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(cs, cm); err != nil {
			b.Fatal(err)
		}
	}
}
