package planner

import (
	"math"
	"math/rand"
	"testing"
)

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CostModel{
		{},
		{VerifyProperty: -1, VerifyFull: 1, SuggestProperty: 1, SuggestFull: 2},
		{VerifyProperty: 5, VerifyFull: 2, SuggestProperty: 1, SuggestFull: 10}, // vp >= vf
		{VerifyProperty: 1, VerifyFull: 2, SuggestProperty: 10, SuggestFull: 5}, // sp >= sf
	}
	for i, cm := range bad {
		if err := cm.Validate(); err == nil {
			t.Errorf("case %d: bad model accepted: %+v", i, cm)
		}
	}
}

func TestCorollary1Budgets(t *testing.T) {
	cm := DefaultCostModel()
	// nop = sf/vf = 180/15 = 12; nsc = sf/(vp+sp) = 180/12 = 15.
	if got := cm.NumOptions(); got != 12 {
		t.Errorf("NumOptions = %d, want 12", got)
	}
	if got := cm.NumScreens(); got != 15 {
		t.Errorf("NumScreens = %d, want 15", got)
	}
	// Theorem 1 with Corollary 1 settings limits overhead to factor <= 3
	// (two terms of sf each at most sf, plus baseline).
	if b := cm.OverheadBound(cm.NumOptions(), cm.NumScreens()); b > 2.0+1e-9 {
		t.Errorf("Corollary 1 overhead bound = %g, want <= 2 (so total <= 3x)", b)
	}
	// Minimum clamps.
	tiny := CostModel{VerifyProperty: 1, VerifyFull: 100, SuggestProperty: 2, SuggestFull: 50}
	if tiny.NumOptions() != 1 {
		t.Errorf("NumOptions should clamp to 1")
	}
}

func TestSortOptions(t *testing.T) {
	opts := []Option{{"b", 0.2}, {"a", 0.5}, {"c", 0.2}, {"d", 0.1}}
	sorted := SortOptions(opts)
	if sorted[0].Value != "a" {
		t.Errorf("first = %v", sorted[0])
	}
	// Equal probabilities tie-break by value.
	if sorted[1].Value != "b" || sorted[2].Value != "c" {
		t.Errorf("tie break: %v", sorted)
	}
	// Input not mutated.
	if opts[0].Value != "b" {
		t.Error("input mutated")
	}
}

func TestExpectedVerificationCostTheorem2(t *testing.T) {
	// Options with probs 0.6, 0.3, 0.1 and vp=2:
	// cost = 2*[(1-0) + (1-0.6) + (1-0.9)] = 2*1.5 = 3.
	opts := []Option{{"x", 0.6}, {"y", 0.3}, {"z", 0.1}}
	got := ExpectedVerificationCost(opts, 2)
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("cost = %g, want 3", got)
	}
	if got := ExpectedVerificationCost(nil, 2); got != 0 {
		t.Errorf("empty = %g", got)
	}
}

func TestCorollary2SortedOrderIsCheapest(t *testing.T) {
	// Expected cost of the probability-sorted order must be minimal
	// among random permutations.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		opts := make([]Option, n)
		rem := 1.0
		for i := range opts {
			p := rem * rng.Float64()
			opts[i] = Option{Value: string(rune('a' + i)), Prob: p}
			rem -= p
		}
		best := ExpectedVerificationCost(SortOptions(opts), 1)
		for perm := 0; perm < 20; perm++ {
			shuffled := append([]Option(nil), opts...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			if c := ExpectedVerificationCost(shuffled, 1); c < best-1e-9 {
				t.Fatalf("found cheaper order: %g < %g", c, best)
			}
		}
	}
}

func props3() []Property {
	return []Property{
		{Name: "relation", Options: []Option{{"GED", 0.7}, {"WEB", 0.3}}},
		{Name: "key", Options: []Option{{"k1", 0.5}, {"k2", 0.3}, {"k3", 0.2}}},
		{Name: "formula", Options: []Option{{"f1", 0.9}, {"f2", 0.1}}},
	}
}

func TestCandidateSpaceSize(t *testing.T) {
	cs := NewCandidateSpace(props3())
	if cs.Size() != 12 {
		t.Errorf("Size = %d, want 12", cs.Size())
	}
	empty := NewCandidateSpace(nil)
	if empty.Size() != 1 {
		t.Errorf("empty Size = %d, want 1", empty.Size())
	}
	if len(cs.Properties()) != 3 {
		t.Error("Properties accessor wrong")
	}
}

func TestPruningPowerSingleProperty(t *testing.T) {
	cs := NewCandidateSpace(props3())
	// Selecting the key property (3 options): survivors = 2*1*2 = 4,
	// pruning power = 12 - 4 = 8.
	got := cs.PruningPower([]int{1})
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("PruningPower([key]) = %g, want 8", got)
	}
	// Empty selection prunes nothing.
	if got := cs.PruningPower(nil); got != 0 {
		t.Errorf("PruningPower(nil) = %g", got)
	}
	// All selected: survivors = 1, power = 11.
	if got := cs.PruningPower([]int{0, 1, 2}); math.Abs(got-11) > 1e-9 {
		t.Errorf("PruningPower(all) = %g, want 11", got)
	}
}

func TestPruningPowerMonotoneAndSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nProps := 2 + rng.Intn(3)
		props := make([]Property, nProps)
		for i := range props {
			nOpt := 1 + rng.Intn(5)
			opts := make([]Option, nOpt)
			for j := range opts {
				opts[j] = Option{Value: string(rune('a' + j)), Prob: rng.Float64()}
			}
			props[i] = Property{Name: string(rune('A' + i)), Options: opts}
		}
		cs := NewCandidateSpace(props)
		// Monotone: adding a property never decreases power.
		var sel []int
		prev := 0.0
		for i := 0; i < nProps; i++ {
			sel = append(sel, i)
			cur := cs.PruningPower(sel)
			if cur < prev-1e-9 {
				t.Fatalf("not monotone: %g after %g", cur, prev)
			}
			prev = cur
		}
		// Submodular: gain of adding prop i to S1 ⊆ S2 is >= gain on S2.
		if nProps >= 3 {
			s1 := []int{0}
			s2 := []int{0, 1}
			gain1 := cs.PruningPower(append(append([]int{}, s1...), 2)) - cs.PruningPower(s1)
			gain2 := cs.PruningPower(append(append([]int{}, s2...), 2)) - cs.PruningPower(s2)
			if gain1 < gain2-1e-9 {
				t.Fatalf("not submodular: gain1=%g < gain2=%g", gain1, gain2)
			}
		}
	}
}

func TestGreedySelectPrefersBiggerFanout(t *testing.T) {
	cs := NewCandidateSpace(props3())
	sel := cs.GreedySelect(1)
	if len(sel) != 1 || sel[0] != 1 {
		t.Errorf("GreedySelect(1) = %v, want [1] (key has 3 options)", sel)
	}
	sel = cs.GreedySelect(10)
	if len(sel) != 3 {
		t.Errorf("GreedySelect(10) = %v, want all 3", sel)
	}
	// Single-option properties are never selected.
	cs2 := NewCandidateSpace([]Property{
		{Name: "fixed", Options: []Option{{"only", 1}}},
		{Name: "open", Options: []Option{{"a", 0.5}, {"b", 0.5}}},
	})
	sel = cs2.GreedySelect(5)
	if len(sel) != 1 || sel[0] != 1 {
		t.Errorf("GreedySelect skipped-degenerate = %v", sel)
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// Greedy must achieve >= (1 - 1/e) of the best exhaustive selection
	// of the same cardinality (Theorem 5).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nProps := 4
		props := make([]Property, nProps)
		for i := range props {
			nOpt := 2 + rng.Intn(4)
			opts := make([]Option, nOpt)
			for j := range opts {
				opts[j] = Option{Value: string(rune('a' + j)), Prob: rng.Float64()}
			}
			props[i] = Property{Name: string(rune('A' + i)), Options: opts}
		}
		cs := NewCandidateSpace(props)
		k := 2
		greedy := cs.PruningPower(cs.GreedySelect(k))
		best := 0.0
		for i := 0; i < nProps; i++ {
			for j := i + 1; j < nProps; j++ {
				if p := cs.PruningPower([]int{i, j}); p > best {
					best = p
				}
			}
		}
		if greedy < (1-1/math.E)*best-1e-9 {
			t.Fatalf("greedy %g below (1-1/e) of optimal %g", greedy, best)
		}
	}
}

func TestBuildPlan(t *testing.T) {
	cm := DefaultCostModel()
	cs := NewCandidateSpace(props3())
	plan, err := BuildPlan(cs, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Screens) != 3 {
		t.Errorf("screens = %d, want 3", len(plan.Screens))
	}
	if plan.CandidateCount != 12 {
		t.Errorf("candidates = %d", plan.CandidateCount)
	}
	if plan.PruningPower <= 0 {
		t.Error("pruning power should be positive")
	}
	if plan.ExpectedCost <= 0 {
		t.Error("expected cost should be positive")
	}
	// Assisted verification must beat the manual baseline in expectation
	// for this well-classified claim.
	if plan.ExpectedCost >= cm.ManualCost() {
		t.Errorf("plan cost %g should beat manual %g", plan.ExpectedCost, cm.ManualCost())
	}
	// Screens show options sorted by probability.
	for _, s := range plan.Screens {
		for i := 1; i < len(s.Options); i++ {
			if s.Options[i-1].Prob < s.Options[i].Prob {
				t.Errorf("screen %s options unsorted", s.Property)
			}
		}
	}
	// Invalid cost model is rejected.
	if _, err := BuildPlan(cs, CostModel{}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestBuildPlanTruncatesToOptionBudget(t *testing.T) {
	cm := CostModel{VerifyProperty: 1, VerifyFull: 30, SuggestProperty: 5, SuggestFull: 60}
	// nop = 2, nsc = 10.
	var opts []Option
	for i := 0; i < 10; i++ {
		opts = append(opts, Option{Value: string(rune('a' + i)), Prob: 0.1})
	}
	cs := NewCandidateSpace([]Property{{Name: "key", Options: opts}})
	plan, err := BuildPlan(cs, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Screens) != 1 {
		t.Fatalf("screens = %d", len(plan.Screens))
	}
	if len(plan.Screens[0].Options) != 2 {
		t.Errorf("options shown = %d, want nop=2", len(plan.Screens[0].Options))
	}
	if plan.FinalOptions > 2 {
		t.Errorf("final options = %d exceeds nop", plan.FinalOptions)
	}
}

func TestBuildPlanConfidentClassifierCheap(t *testing.T) {
	cm := DefaultCostModel()
	confident := NewCandidateSpace([]Property{
		{Name: "relation", Options: []Option{{"GED", 0.99}, {"WEB", 0.01}}},
		{Name: "key", Options: []Option{{"k1", 0.99}, {"k2", 0.01}}},
	})
	uncertain := NewCandidateSpace([]Property{
		{Name: "relation", Options: []Option{{"GED", 0.5}, {"WEB", 0.5}}},
		{Name: "key", Options: []Option{{"k1", 0.5}, {"k2", 0.5}}},
	})
	p1, err := BuildPlan(confident, cm)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(uncertain, cm)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ExpectedCost >= p2.ExpectedCost {
		t.Errorf("confident plan %g should be cheaper than uncertain %g",
			p1.ExpectedCost, p2.ExpectedCost)
	}
}

func TestBuildPlanForcesRequiredProperties(t *testing.T) {
	cm := DefaultCostModel()
	// A required property with no options (cold start) must still earn a
	// screen whose expected cost is the suggestion cost sp.
	cs := NewCandidateSpace([]Property{
		{Name: "relation", Required: true},
		{Name: "formula", Options: []Option{{"f1", 0.6}, {"f2", 0.4}}},
	})
	plan, err := BuildPlan(cs, cm)
	if err != nil {
		t.Fatal(err)
	}
	var relScreen *Screen
	for i := range plan.Screens {
		if plan.Screens[i].Property == "relation" {
			relScreen = &plan.Screens[i]
		}
	}
	if relScreen == nil {
		t.Fatal("required property got no screen")
	}
	if relScreen.ExpectedCost != cm.SuggestProperty {
		t.Errorf("empty required screen cost = %g, want sp=%g",
			relScreen.ExpectedCost, cm.SuggestProperty)
	}
}

func TestBuildPlanColdStartCostsAboutManual(t *testing.T) {
	cm := DefaultCostModel()
	// Cold start: three required context properties with no options, a
	// formula property with no predictions. The plan's expected cost must
	// be within the Theorem 1 bound of the manual baseline and at least
	// the manual cost (the checker ends up writing the query).
	cs := NewCandidateSpace([]Property{
		{Name: "relation", Required: true},
		{Name: "key", Required: true},
		{Name: "attribute", Required: true},
		{Name: "formula"},
	})
	plan, err := BuildPlan(cs, cm)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedCost < cm.ManualCost() {
		t.Errorf("cold-start plan %g cheaper than manual %g", plan.ExpectedCost, cm.ManualCost())
	}
	bound := (1 + cm.OverheadBound(cm.NumOptions(), cm.NumScreens())) * cm.ManualCost()
	if plan.ExpectedCost > bound {
		t.Errorf("cold-start plan %g exceeds Theorem 1 bound %g", plan.ExpectedCost, bound)
	}
}

func TestBuildPlanCoveragePenalisesUnscreenedFormula(t *testing.T) {
	cm := CostModel{VerifyProperty: 1, VerifyFull: 30, SuggestProperty: 5, SuggestFull: 60}
	// nsc = 10, so the formula property WILL be selected when it has
	// pruning power; make it single-option so it cannot be screened, and
	// vary its confidence: lower confidence must raise expected cost.
	mk := func(p float64) float64 {
		cs := NewCandidateSpace([]Property{
			{Name: "key", Required: true, Options: []Option{{"k1", 0.9}, {"k2", 0.1}}},
			{Name: "formula", Options: []Option{{"f1", p}}},
		})
		plan, err := BuildPlan(cs, cm)
		if err != nil {
			t.Fatal(err)
		}
		return plan.ExpectedCost
	}
	confident := mk(0.95)
	uncertain := mk(0.20)
	if confident >= uncertain {
		t.Errorf("confident formula plan %g should beat uncertain %g", confident, uncertain)
	}
}

func TestShownMass(t *testing.T) {
	opts := []Option{{"a", 0.5}, {"b", 0.3}, {"c", 0.4}}
	if got := shownMass(opts, 2); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("shownMass top2 = %g, want 0.9 (0.5+0.4)", got)
	}
	if got := shownMass(opts, 10); got != 1 {
		t.Errorf("shownMass clamps at 1, got %g", got)
	}
	if got := shownMass(nil, 3); got != 0 {
		t.Errorf("empty shownMass = %g", got)
	}
}

func TestNormalisedHandlesZeroMass(t *testing.T) {
	probs := normalised([]Option{{"a", 0}, {"b", 0}})
	if math.Abs(probs[0]-0.5) > 1e-9 || math.Abs(probs[1]-0.5) > 1e-9 {
		t.Errorf("zero-mass fallback = %v", probs)
	}
}
