package query

import (
	"testing"

	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/table"
)

func benchCorpus(b *testing.B) *table.Corpus {
	b.Helper()
	c := table.NewCorpus()
	rel := table.MustNewRelation("GED", "Index", []string{"2016", "2017"})
	if err := rel.AddRow("PGElecDemand", []float64{21546, 22209}); err != nil {
		b.Fatal(err)
	}
	if err := c.Add(rel); err != nil {
		b.Fatal(err)
	}
	return c
}

func benchQuery() *Query {
	return &Query{
		Select: expr.MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1"),
		Bindings: []Binding{
			{Alias: "a", Relation: "GED", Key: "PGElecDemand"},
			{Alias: "b", Relation: "GED", Key: "PGElecDemand"},
		},
		AttrBindings: map[string]string{"A1": "2017", "A2": "2016"},
	}
}

func BenchmarkExecuteCAGR(b *testing.B) {
	c := benchCorpus(b)
	q := benchQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderSQL(b *testing.B) {
	q := benchQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.SQL()
	}
}

func BenchmarkParseSQL(b *testing.B) {
	sql := benchQuery().SQL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}
