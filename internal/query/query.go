package query

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/table"
)

// Binding ties an alias in the SELECT expression to a relation and the key
// value selected by the WHERE clause.
type Binding struct {
	Alias    string
	Relation string
	Key      string
}

// Query is one executable statistical check.
type Query struct {
	// Select is the expression computed by the query; its cell
	// references use the aliases of Bindings, with attributes either
	// concrete (a.2017) or attribute variables (a.A1) resolved through
	// AttrBindings.
	Select expr.Node
	// Bindings lists the FROM/WHERE bindings in alias order.
	Bindings []Binding
	// AttrBindings resolves attribute variables (A1 -> "2017"). Empty for
	// fully concrete queries.
	AttrBindings map[string]string
}

// Validate checks internal consistency: every alias referenced by the SELECT
// expression must be bound exactly once, and every attribute variable must be
// resolvable.
func (q *Query) Validate() error {
	if q.Select == nil {
		return fmt.Errorf("query: nil SELECT expression")
	}
	bound := make(map[string]bool, len(q.Bindings))
	for _, b := range q.Bindings {
		if b.Alias == "" || b.Relation == "" || b.Key == "" {
			return fmt.Errorf("query: incomplete binding %+v", b)
		}
		if bound[b.Alias] {
			return fmt.Errorf("query: alias %q bound twice", b.Alias)
		}
		bound[b.Alias] = true
	}
	for _, a := range expr.Aliases(q.Select) {
		if !bound[a] {
			return fmt.Errorf("query: alias %q used in SELECT but not bound", a)
		}
	}
	for _, v := range expr.AttrVars(q.Select) {
		if _, ok := q.AttrBindings[v]; !ok {
			return fmt.Errorf("query: attribute variable %q unbound", v)
		}
	}
	return nil
}

// corpusEnv adapts a corpus plus bindings to expr.Env.
type corpusEnv struct {
	corpus   *table.Corpus
	bindings map[string]Binding
	attrs    map[string]string
}

func (e corpusEnv) Cell(alias, attr string) (float64, error) {
	b, ok := e.bindings[alias]
	if !ok {
		return 0, fmt.Errorf("unbound alias %q", alias)
	}
	return e.corpus.Get(b.Relation, b.Key, attr)
}

func (e corpusEnv) Attr(v string) (string, bool) {
	s, ok := e.attrs[v]
	return s, ok
}

// Execute runs the query against the corpus and returns the value of the
// SELECT expression.
func (q *Query) Execute(c *table.Corpus) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	env := corpusEnv{
		corpus:   c,
		bindings: make(map[string]Binding, len(q.Bindings)),
		attrs:    q.AttrBindings,
	}
	for _, b := range q.Bindings {
		env.bindings[b.Alias] = b
	}
	v, err := expr.Eval(q.Select, env)
	if err != nil {
		return 0, fmt.Errorf("query: executing %s: %w", q.SQL(), err)
	}
	return v, nil
}

// concreteSelect returns the SELECT expression with attribute variables
// substituted by their concrete labels, for rendering.
func (q *Query) concreteSelect() expr.Node {
	return substituteAttrs(q.Select, q.AttrBindings)
}

func substituteAttrs(n expr.Node, attrs map[string]string) expr.Node {
	switch t := n.(type) {
	case expr.CellRef:
		if concrete, ok := attrs[t.Attr]; ok {
			return expr.CellRef{Alias: t.Alias, Attr: concrete}
		}
		return t
	case expr.AttrVar:
		if concrete, ok := attrs[t.Name]; ok {
			if v, err := strconv.ParseFloat(concrete, 64); err == nil {
				return expr.Num{Value: v}
			}
		}
		return t
	case expr.BinOp:
		return expr.BinOp{Op: t.Op, Left: substituteAttrs(t.Left, attrs), Right: substituteAttrs(t.Right, attrs)}
	case expr.Neg:
		return expr.Neg{Operand: substituteAttrs(t.Operand, attrs)}
	case expr.Call:
		args := make([]expr.Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = substituteAttrs(a, attrs)
		}
		return expr.Call{Fn: t.Fn, Args: args}
	default:
		return n
	}
}

// SQL renders the query as the SQL string of Definition 3, with attribute
// variables made concrete where bindings exist. The rendering is stable and
// parseable by Parse below.
func (q *Query) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Select != nil {
		sb.WriteString(q.concreteSelect().String())
	}
	if len(q.Bindings) > 0 {
		sb.WriteString(" FROM ")
		for i, b := range q.Bindings {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(b.Relation))
			sb.WriteByte(' ')
			sb.WriteString(b.Alias)
		}
		sb.WriteString(" WHERE ")
		for i, b := range q.Bindings {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			fmt.Fprintf(&sb, "%s.Index = '%s'", b.Alias, escapeSQLString(b.Key))
		}
	}
	return sb.String()
}

// String implements fmt.Stringer.
func (q *Query) String() string { return q.SQL() }

// Complexity counts the elements of the query the way the user study does
// for Figure 6: key values, attributes, operations, constants and variables.
func (q *Query) Complexity() int {
	c := expr.Complexity(q.Select)
	c += len(q.Bindings) // one key value each
	return c
}

func quoteIdent(s string) string {
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return `"` + s + `"`
		}
	}
	return s
}

func escapeSQLString(s string) string {
	return strings.ReplaceAll(s, "'", "''")
}
