package query

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/table"
)

// Binding ties an alias in the SELECT expression to a relation and the key
// value selected by the WHERE clause.
type Binding struct {
	Alias    string
	Relation string
	Key      string
}

// Query is one executable statistical check.
type Query struct {
	// Select is the expression computed by the query; its cell
	// references use the aliases of Bindings, with attributes either
	// concrete (a.2017) or attribute variables (a.A1) resolved through
	// AttrBindings.
	Select expr.Node
	// Bindings lists the FROM/WHERE bindings in alias order.
	Bindings []Binding
	// AttrBindings resolves attribute variables (A1 -> "2017"). Empty for
	// fully concrete queries.
	AttrBindings map[string]string

	// prog caches the compiled form of Select. The first Execute
	// interprets (one-shot queries — generator internals, hand-written
	// final-screen SQL — never pay compilation); the second compiles and
	// every later call evaluates the flat program. Select is treated as
	// immutable once the query executes.
	prog atomic.Pointer[progState]
}

// progState tracks the per-query compilation ladder: a zero value marks
// "executed once, interpret stage"; prog is the compiled program; bad
// marks expressions the compiler rejects so Execute falls back to the
// interpreter without recompiling per call.
type progState struct {
	prog *expr.Program
	bad  bool
}

// Validate checks internal consistency: every alias referenced by the SELECT
// expression must be bound exactly once, and every attribute variable must be
// resolvable.
func (q *Query) Validate() error {
	if q.Select == nil {
		return fmt.Errorf("query: nil SELECT expression")
	}
	bound := make(map[string]bool, len(q.Bindings))
	for _, b := range q.Bindings {
		if b.Alias == "" || b.Relation == "" || b.Key == "" {
			return fmt.Errorf("query: incomplete binding %+v", b)
		}
		if bound[b.Alias] {
			return fmt.Errorf("query: alias %q bound twice", b.Alias)
		}
		bound[b.Alias] = true
	}
	for _, a := range expr.Aliases(q.Select) {
		if !bound[a] {
			return fmt.Errorf("query: alias %q used in SELECT but not bound", a)
		}
	}
	for _, v := range expr.AttrVars(q.Select) {
		if _, ok := q.AttrBindings[v]; !ok {
			return fmt.Errorf("query: attribute variable %q unbound", v)
		}
	}
	return nil
}

// corpusEnv adapts a corpus plus bindings to expr.Env.
type corpusEnv struct {
	corpus   *table.Corpus
	bindings map[string]Binding
	attrs    map[string]string
}

func (e corpusEnv) Cell(alias, attr string) (float64, error) {
	b, ok := e.bindings[alias]
	if !ok {
		return 0, fmt.Errorf("unbound alias %q", alias)
	}
	return e.corpus.Get(b.Relation, b.Key, attr)
}

func (e corpusEnv) Attr(v string) (string, bool) {
	s, ok := e.attrs[v]
	return s, ok
}

// Execute runs the query against the corpus and returns the value of the
// SELECT expression.
//
// The repeated-execution happy path is compiled: from the second call on,
// Select runs as a flat program (cached on the query) with names resolved
// through the corpus's interned Index and evaluation on pooled scratch —
// allocation-free in steady state. The very first call interprets, so
// one-shot queries never pay compilation. Any fast-path failure (invalid
// query, missing cell, arithmetic error) re-runs the tree interpreter,
// which reproduces the exact validation and execution errors of
// ExecuteInterpreted.
func (q *Query) Execute(c *table.Corpus) (float64, error) {
	if prog := q.compiled(); prog != nil {
		if v, ok := q.fastExecute(c, prog); ok {
			return v, nil
		}
	}
	return q.ExecuteInterpreted(c)
}

// compiled climbs the per-query ladder: first call marks the query seen
// (interpret), second call compiles, later calls return the cached
// program — nil whenever this call should interpret.
func (q *Query) compiled() *expr.Program {
	st := q.prog.Load()
	switch {
	case st == nil:
		q.prog.Store(&progState{})
		return nil
	case st.prog == nil && !st.bad:
		prog, err := expr.Compile(q.Select)
		q.prog.Store(&progState{prog: prog, bad: err != nil})
		return prog
	default:
		return st.prog
	}
}

// fastExecute is the compiled path. It enforces the same well-formedness
// conditions as Validate (reporting ok=false instead of an error, so the
// interpreter path can produce the canonical message) and evaluates with
// zero allocations.
func (q *Query) fastExecute(c *table.Corpus, prog *expr.Program) (float64, bool) {
	// Validate-equivalent structural checks, allocation-free: bindings
	// complete and alias-unique; every cell attribute variable resolvable.
	for i, b := range q.Bindings {
		if b.Alias == "" || b.Relation == "" || b.Key == "" {
			return 0, false
		}
		for _, prev := range q.Bindings[:i] {
			if prev.Alias == b.Alias {
				return 0, false
			}
		}
	}
	for _, cs := range prog.Cells() {
		if expr.IsAttrVarName(cs.Attr) {
			if _, ok := q.AttrBindings[cs.Attr]; !ok {
				return 0, false
			}
		}
	}
	idx := c.Index()
	sc := getScratch(prog)
	defer PutScratch(sc)
	if !resolveSlots(prog, idx, q.Bindings, q.AttrBindings, sc.Coords, sc.AttrNums) {
		return 0, false
	}
	plan := Plan{Prog: prog, Idx: idx}
	v, err := plan.ExecCoords(sc.Coords, sc.AttrNums, sc)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ExecuteInterpreted runs the query through the tree-walking interpreter —
// the reference implementation Execute's compiled path is pinned against
// by the property-based equivalence tests, and the producer of the
// canonical error messages for every failure mode.
func (q *Query) ExecuteInterpreted(c *table.Corpus) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	env := corpusEnv{
		corpus:   c,
		bindings: make(map[string]Binding, len(q.Bindings)),
		attrs:    q.AttrBindings,
	}
	for _, b := range q.Bindings {
		env.bindings[b.Alias] = b
	}
	v, err := expr.Eval(q.Select, env)
	if err != nil {
		return 0, fmt.Errorf("query: executing %s: %w", q.SQL(), err)
	}
	return v, nil
}


// concreteSelect returns the SELECT expression with attribute variables
// substituted by their concrete labels, for rendering.
func (q *Query) concreteSelect() expr.Node {
	return substituteAttrs(q.Select, q.AttrBindings)
}

func substituteAttrs(n expr.Node, attrs map[string]string) expr.Node {
	switch t := n.(type) {
	case expr.CellRef:
		if concrete, ok := attrs[t.Attr]; ok {
			return expr.CellRef{Alias: t.Alias, Attr: concrete}
		}
		return t
	case expr.AttrVar:
		if concrete, ok := attrs[t.Name]; ok {
			if v, err := strconv.ParseFloat(concrete, 64); err == nil {
				return expr.Num{Value: v}
			}
		}
		return t
	case expr.BinOp:
		return expr.BinOp{Op: t.Op, Left: substituteAttrs(t.Left, attrs), Right: substituteAttrs(t.Right, attrs)}
	case expr.Neg:
		return expr.Neg{Operand: substituteAttrs(t.Operand, attrs)}
	case expr.Call:
		args := make([]expr.Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = substituteAttrs(a, attrs)
		}
		return expr.Call{Fn: t.Fn, Args: args}
	default:
		return n
	}
}

// SQL renders the query as the SQL string of Definition 3, with attribute
// variables made concrete where bindings exist. The rendering is stable and
// parseable by Parse below.
func (q *Query) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Select != nil {
		sb.WriteString(q.concreteSelect().String())
	}
	if len(q.Bindings) > 0 {
		sb.WriteString(" FROM ")
		for i, b := range q.Bindings {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(b.Relation))
			sb.WriteByte(' ')
			sb.WriteString(b.Alias)
		}
		sb.WriteString(" WHERE ")
		for i, b := range q.Bindings {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			fmt.Fprintf(&sb, "%s.Index = '%s'", b.Alias, escapeSQLString(b.Key))
		}
	}
	return sb.String()
}

// String implements fmt.Stringer.
func (q *Query) String() string { return q.SQL() }

// Complexity counts the elements of the query the way the user study does
// for Figure 6: key values, attributes, operations, constants and variables.
func (q *Query) Complexity() int {
	c := expr.Complexity(q.Select)
	c += len(q.Bindings) // one key value each
	return c
}

func quoteIdent(s string) string {
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return `"` + s + `"`
		}
	}
	return s
}

func escapeSQLString(s string) string {
	return strings.ReplaceAll(s, "'", "''")
}
