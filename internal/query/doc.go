// Package query implements the statistical-check SQL fragment of the
// paper's Definition 3:
//
//	SELECT f(a.A1, b.A2, ...)
//	FROM T1 a, T2 b, ...
//	WHERE a.key = 'v1' AND (b.key = 'v2' OR b.key = 'v3') AND ...
//
// A Query couples an expression over binding aliases (package expr) with a
// FROM/WHERE skeleton that binds each alias to a relation and a key value.
// Because every alias is constrained to exactly one key value per execution
// (disjunctions are expanded before execution by the query generator), the
// fragment executes by direct cell look-ups — no general join machinery is
// required, matching how the system uses the database.
//
// The round trip is Parse ⇄ Query.SQL: queries written by fact checkers on
// the final screen are parsed back into executable form, and generated
// queries are rendered for display.
//
// # Execution: Execute vs Plan
//
// Two execution layers share one compiled core:
//
//   - Query.Execute is the convenience path for a single fixed query. It
//     lowers the SELECT expression to a flat expr.Program once (cached on
//     the Query), resolves names through the corpus's interned
//     table.Index, and evaluates on pooled scratch — allocation-free in
//     steady state. Any failure re-runs the tree interpreter
//     (ExecuteInterpreted), which owns the canonical validation and
//     execution error messages; the two paths are pinned value- and
//     error-equivalent by property-based tests.
//
//   - Plan is the bulk path for one expression executed under many
//     variable assignments — tentative execution in the query generator.
//     NewPlan compiles once against an Index; Bind resolves a concrete
//     assignment to integer cell coordinates for repeated Run calls, and
//     ExecCoords evaluates pre-resolved coordinate slices directly, which
//     is what lets Algorithm 2 enumerate candidate assignments as integer
//     slot tuples with zero string handling per candidate.
//
// Execute is read-only over the corpus, so one corpus serves any number of
// concurrent verification workers; a compiled Query and a BoundQuery are
// likewise safe for concurrent execution with distinct scratches.
//
// Disjunctive WHERE clauses (the "v2 OR v3" form produced when a claim
// aggregates several key values) are handled by disjunction.go, which
// expands them into the per-execution single-value form; expansion visits
// keys in canonical (sorted) order so downstream candidate ranking is
// deterministic regardless of how upstream producers ordered the keys.
package query
