// Package query implements the statistical-check SQL fragment of the
// paper's Definition 3:
//
//	SELECT f(a.A1, b.A2, ...)
//	FROM T1 a, T2 b, ...
//	WHERE a.key = 'v1' AND (b.key = 'v2' OR b.key = 'v3') AND ...
//
// A Query couples an expression over binding aliases (package expr) with a
// FROM/WHERE skeleton that binds each alias to a relation and a key value.
// Because every alias is constrained to exactly one key value per execution
// (disjunctions are expanded before execution by the query generator), the
// fragment executes by direct cell look-ups — no general join machinery is
// required, matching how the system uses the database.
//
// The round trip is Parse ⇄ Query.SQL: queries written by fact checkers on
// the final screen are parsed back into executable form, and generated
// queries are rendered for display. Query.Execute evaluates against a
// table.Corpus and is read-only, so one corpus serves any number of
// concurrent verification workers.
//
// Disjunctive WHERE clauses (the "v2 OR v3" form produced when a claim
// aggregates several key values) are handled by disjunction.go, which
// expands them into the per-execution single-value form.
package query
