package query

import (
	"math"
	"strings"
	"testing"

	"github.com/repro/scrutinizer/internal/expr"
)

func sampleDisjunctive() *DisjunctiveQuery {
	return &DisjunctiveQuery{
		Select: expr.MustParse("a.2017 + b.2017"),
		Alternatives: []AliasAlternatives{
			{Alias: "a", Relation: "GED", Keys: []string{"PGElecDemand"}},
			{Alias: "b", Relation: "GED", Keys: []string{"PGINCoal", "CapAddTotal_Wind"}},
		},
	}
}

func TestDisjunctiveSQLRendering(t *testing.T) {
	sql := sampleDisjunctive().SQL()
	for _, want := range []string{
		"SELECT (a.2017 + b.2017)",
		"FROM GED a, GED b",
		"a.Index = 'PGElecDemand'",
		"(b.Index = 'PGINCoal' OR b.Index = 'CapAddTotal_Wind')",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
	// Single-key aliases render without parentheses.
	if strings.Contains(sql, "(a.Index") {
		t.Errorf("single predicate should not be parenthesised: %q", sql)
	}
	d := sampleDisjunctive()
	if d.String() != d.SQL() {
		t.Error("String != SQL")
	}
}

func TestDisjunctiveValidate(t *testing.T) {
	cases := []struct {
		name string
		d    DisjunctiveQuery
	}{
		{"nil select", DisjunctiveQuery{}},
		{"incomplete alternatives", DisjunctiveQuery{
			Select:       expr.MustParse("a.2017"),
			Alternatives: []AliasAlternatives{{Alias: "a"}},
		}},
		{"duplicate alias", DisjunctiveQuery{
			Select: expr.MustParse("a.2017"),
			Alternatives: []AliasAlternatives{
				{Alias: "a", Relation: "R", Keys: []string{"k"}},
				{Alias: "a", Relation: "R", Keys: []string{"k"}},
			},
		}},
		{"duplicate key", DisjunctiveQuery{
			Select: expr.MustParse("a.2017"),
			Alternatives: []AliasAlternatives{
				{Alias: "a", Relation: "R", Keys: []string{"k", "k"}},
			},
		}},
		{"empty key", DisjunctiveQuery{
			Select: expr.MustParse("a.2017"),
			Alternatives: []AliasAlternatives{
				{Alias: "a", Relation: "R", Keys: []string{""}},
			},
		}},
		{"unbound alias", DisjunctiveQuery{
			Select: expr.MustParse("a.2017 + b.2017"),
			Alternatives: []AliasAlternatives{
				{Alias: "a", Relation: "R", Keys: []string{"k"}},
			},
		}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if err := sampleDisjunctive().Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestDisjunctiveExpand(t *testing.T) {
	d := sampleDisjunctive()
	if d.NumExpansions() != 2 {
		t.Errorf("NumExpansions = %d", d.NumExpansions())
	}
	qs, err := d.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("expanded %d queries", len(qs))
	}
	// Expansion visits keys in canonical (sorted) order regardless of how
	// the author listed them.
	if qs[0].Bindings[1].Key != "CapAddTotal_Wind" || qs[1].Bindings[1].Key != "PGINCoal" {
		t.Errorf("expansion order: %v / %v", qs[0].Bindings, qs[1].Bindings)
	}
	// Each expansion validates and executes.
	c := corpusWithGED(t)
	for _, q := range qs {
		if q.Bindings[1].Key == "PGINCoal" {
			continue // corpus fixture lacks that row; skip execution
		}
		if _, err := q.Execute(c); err != nil {
			t.Errorf("expansion failed to execute: %v", err)
		}
	}
	// Invalid query does not expand.
	bad := &DisjunctiveQuery{}
	if _, err := bad.Expand(); err == nil {
		t.Error("invalid query expanded")
	}
}

func TestParseDisjunctive(t *testing.T) {
	sql := `SELECT a.2017 + b.2017 FROM GED a, GED b
	        WHERE a.Index = 'PGElecDemand' AND (b.Index = 'x' OR b.Index = 'y')`
	d, err := ParseDisjunctive(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Alternatives) != 2 {
		t.Fatalf("alternatives = %+v", d.Alternatives)
	}
	if len(d.Alternatives[1].Keys) != 2 || d.Alternatives[1].Keys[0] != "x" {
		t.Errorf("OR keys = %v", d.Alternatives[1].Keys)
	}
	// Round trip through SQL.
	d2, err := ParseDisjunctive(d.SQL())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if d2.SQL() != d.SQL() {
		t.Errorf("round trip changed SQL:\n%s\n%s", d.SQL(), d2.SQL())
	}
}

func TestParseDisjunctiveErrors(t *testing.T) {
	bad := []string{
		"SELECT a.1 FROM R a WHERE (a.Index = 'x' OR b.Index = 'y')", // mixed aliases
		"SELECT a.1 FROM R a WHERE (c.Index = 'x' OR c.Index = 'y')", // unknown alias
		"SELECT a.1 FROM R a", // no WHERE at all
		"UPDATE x",
	}
	for _, sql := range bad {
		if _, err := ParseDisjunctive(sql); err == nil {
			t.Errorf("ParseDisjunctive(%q) succeeded", sql)
		}
	}
}

func TestDisjunctiveExpansionValuesCoverAllKeys(t *testing.T) {
	c := corpusWithGED(t)
	d := &DisjunctiveQuery{
		Select: expr.MustParse("a.2017"),
		Alternatives: []AliasAlternatives{
			{Alias: "a", Relation: "GED", Keys: []string{"PGElecDemand", "CapAddTotal_Wind"}},
		},
	}
	qs, err := d.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]bool{22209: false, 540: false}
	for _, q := range qs {
		v, err := q.Execute(c)
		if err != nil {
			t.Fatal(err)
		}
		for w := range want {
			if math.Abs(v-w) < 1e-9 {
				want[w] = true
			}
		}
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("value %g not produced by any expansion", w)
		}
	}
}

func TestDisjunctiveExpandCanonicalOrder(t *testing.T) {
	// Two queries that differ only in the order the keys were listed must
	// expand to the identical query sequence: candidate rank downstream
	// (stable sort + first-wins dedupe in the query generator) must not
	// depend on upstream iteration order.
	mk := func(keys []string) *DisjunctiveQuery {
		return &DisjunctiveQuery{
			Select: expr.MustParse("a.2017 + b.2017"),
			Alternatives: []AliasAlternatives{
				{Alias: "a", Relation: "GED", Keys: []string{"x", "w"}},
				{Alias: "b", Relation: "GED", Keys: keys},
			},
		}
	}
	q1, err := mk([]string{"k3", "k1", "k2"}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := mk([]string{"k2", "k3", "k1"}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(q1) != len(q2) {
		t.Fatalf("expansion sizes differ: %d vs %d", len(q1), len(q2))
	}
	for i := range q1 {
		if q1[i].SQL() != q2[i].SQL() {
			t.Errorf("expansion %d differs: %q vs %q", i, q1[i].SQL(), q2[i].SQL())
		}
	}
	// And the canonical order is sorted within each alias.
	if q1[0].Bindings[0].Key != "w" || q1[0].Bindings[1].Key != "k1" {
		t.Errorf("first expansion not canonical: %v", q1[0].Bindings)
	}
}
