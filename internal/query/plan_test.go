package query

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/table"
)

func TestPlanBindRunMatchesInterpreter(t *testing.T) {
	c := corpusWithGED(t)
	q := benchQuery()
	want, err := q.ExecuteInterpreted(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(q.Select, c.Index())
	if err != nil {
		t.Fatal(err)
	}
	bq, err := plan.Bind(q.Bindings, q.AttrBindings)
	if err != nil {
		t.Fatal(err)
	}
	sc := plan.NewScratch()
	for i := 0; i < 3; i++ {
		got, err := bq.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Run = %v, interpreter = %v", got, want)
		}
	}
}

func TestPlanBindErrors(t *testing.T) {
	c := corpusWithGED(t)
	idx := c.Index()
	sel := expr.MustParse("a.2017")
	plan, err := NewPlan(sel, idx)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		bindings []Binding
		attrs    map[string]string
	}{
		{"missing alias", nil, nil},
		{"missing relation", []Binding{{Alias: "a", Relation: "Nope", Key: "k"}}, nil},
		{"missing key", []Binding{{Alias: "a", Relation: "GED", Key: "Nope"}}, nil},
	}
	for _, tc := range cases {
		if _, err := plan.Bind(tc.bindings, tc.attrs); err == nil {
			t.Errorf("%s: Bind succeeded", tc.name)
		}
	}
	// Unresolvable attribute variable (numeric) and non-numeric label.
	plan2, err := NewPlan(expr.MustParse("a.A1 + (A1 - A2)"), idx)
	if err != nil {
		t.Fatal(err)
	}
	good := []Binding{{Alias: "a", Relation: "GED", Key: "PGElecDemand"}}
	if _, err := plan2.Bind(good, map[string]string{"A1": "2017"}); err == nil {
		t.Error("unbound A2 accepted")
	}
	if _, err := plan2.Bind(good, map[string]string{"A1": "2017", "A2": "Total"}); err == nil {
		t.Error("non-numeric A2 accepted")
	}
	if _, err := plan2.Bind(good, map[string]string{"A1": "2017", "A2": "2016"}); err != nil {
		t.Errorf("valid binding rejected: %v", err)
	}
}

// TestExecuteCompiledMatchesInterpreterRandom property-tests the compiled
// Execute fast path against the interpreter over randomized queries on a
// randomized corpus: same values bit-for-bit, same error-ness, including
// NULL cells, missing rows and attribute-variable resolution.
func TestExecuteCompiledMatchesInterpreterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := table.NewCorpus()
	attrs := []string{"2015", "2016", "2017", "Total"}
	for r := 0; r < 3; r++ {
		rel := table.MustNewRelation("R"+strconv.Itoa(r), "Index", attrs)
		for k := 0; k < 4; k++ {
			vals := map[string]float64{}
			for _, a := range attrs {
				if rng.Intn(5) > 0 { // leave some cells NULL
					vals[a] = math.Trunc(rng.Float64()*200-50) / 2
				}
			}
			if err := rel.AddSparseRow("K"+strconv.Itoa(k), vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	exprs := []string{
		"a.A1",
		"a.A1 / b.A2",
		"POWER(a.A1/b.A2, 1/(A1-A2)) - 1",
		"a.2017 - b.Total",
		"SQRT(a.A1) + LOG(b.A2)",
		"MAX(a.A1, b.A2) > MIN(a.A1, b.A2)",
		"CAGR(a.A1, b.A2, A1 - A2)",
		"a.Total * -1",
	}
	keys := []string{"K0", "K1", "K2", "K3", "KMissing"}
	rels := []string{"R0", "R1", "R2", "RMissing"}
	for trial := 0; trial < 4000; trial++ {
		q := &Query{
			Select: expr.MustParse(exprs[rng.Intn(len(exprs))]),
			Bindings: []Binding{
				{Alias: "a", Relation: rels[rng.Intn(len(rels))], Key: keys[rng.Intn(len(keys))]},
				{Alias: "b", Relation: rels[rng.Intn(len(rels))], Key: keys[rng.Intn(len(keys))]},
			},
			AttrBindings: map[string]string{
				"A1": attrs[rng.Intn(len(attrs))],
				"A2": attrs[rng.Intn(len(attrs))],
			},
		}
		if rng.Intn(10) == 0 {
			delete(q.AttrBindings, "A2") // unbound attribute variable path
		}
		gv, gerr := q.Execute(c)
		// A fresh identical query for the interpreter so no state is shared.
		q2 := &Query{Select: q.Select, Bindings: q.Bindings, AttrBindings: q.AttrBindings}
		wv, werr := q2.ExecuteInterpreted(c)
		if (gerr != nil) != (werr != nil) {
			t.Fatalf("%s: Execute err=%v, interpreter err=%v", q.SQL(), gerr, werr)
		}
		if gerr == nil && math.Float64bits(gv) != math.Float64bits(wv) {
			t.Fatalf("%s: Execute=%v interpreter=%v", q.SQL(), gv, wv)
		}
	}
}

func BenchmarkPlanExecute(b *testing.B) {
	c := benchCorpus(b)
	q := benchQuery()
	plan, err := NewPlan(q.Select, c.Index())
	if err != nil {
		b.Fatal(err)
	}
	bq, err := plan.Bind(q.Bindings, q.AttrBindings)
	if err != nil {
		b.Fatal(err)
	}
	sc := plan.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bq.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteCompiled measures the steady-state Query.Execute fast
// path (compiled, pooled scratch); compare with BenchmarkExecuteInterpreted
// for the tree-walking cost and allocation delta.
func BenchmarkExecuteCompiled(b *testing.B) {
	c := benchCorpus(b)
	q := benchQuery()
	if _, err := q.Execute(c); err != nil { // warm the compilation cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteInterpreted(b *testing.B) {
	c := benchCorpus(b)
	q := benchQuery()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.ExecuteInterpreted(c); err != nil {
			b.Fatal(err)
		}
	}
}
