package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/repro/scrutinizer/internal/expr"
)

// DisjunctiveQuery is the full Definition 3 form: each alias may be
// constrained by a disjunction of key-equality predicates,
//
//	WHERE a.key = 'v1' AND (b.key = 'v2' OR b.key = 'v3')
//
// Execution semantics follow the query generator's use of the fragment: the
// disjunction denotes a set of alternative bindings, and the check succeeds
// through whichever alternative the checker (or the tentative-execution
// filter) settles on. Expand enumerates the concrete conjunctive queries.
type DisjunctiveQuery struct {
	// Select is the shared SELECT expression.
	Select expr.Node
	// Alternatives lists, per alias in order, the relation and the
	// admissible key values.
	Alternatives []AliasAlternatives
	// AttrBindings resolves attribute variables, as in Query.
	AttrBindings map[string]string
}

// AliasAlternatives is one alias's FROM/WHERE contribution.
type AliasAlternatives struct {
	Alias    string
	Relation string
	Keys     []string
}

// Validate checks structural consistency.
func (d *DisjunctiveQuery) Validate() error {
	if d.Select == nil {
		return fmt.Errorf("query: nil SELECT expression")
	}
	seen := map[string]bool{}
	for _, a := range d.Alternatives {
		if a.Alias == "" || a.Relation == "" || len(a.Keys) == 0 {
			return fmt.Errorf("query: incomplete alternatives %+v", a)
		}
		if seen[a.Alias] {
			return fmt.Errorf("query: alias %q bound twice", a.Alias)
		}
		seen[a.Alias] = true
		keySeen := map[string]bool{}
		for _, k := range a.Keys {
			if k == "" {
				return fmt.Errorf("query: empty key for alias %q", a.Alias)
			}
			if keySeen[k] {
				return fmt.Errorf("query: duplicate key %q for alias %q", k, a.Alias)
			}
			keySeen[k] = true
		}
	}
	for _, alias := range expr.Aliases(d.Select) {
		if !seen[alias] {
			return fmt.Errorf("query: alias %q used in SELECT but not bound", alias)
		}
	}
	return nil
}

// SQL renders the disjunctive form of Definition 3.
func (d *DisjunctiveQuery) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if d.Select != nil {
		q := Query{Select: d.Select, AttrBindings: d.AttrBindings}
		sb.WriteString(q.concreteSelect().String())
	}
	if len(d.Alternatives) > 0 {
		sb.WriteString(" FROM ")
		for i, a := range d.Alternatives {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(a.Relation))
			sb.WriteByte(' ')
			sb.WriteString(a.Alias)
		}
		sb.WriteString(" WHERE ")
		for i, a := range d.Alternatives {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			if len(a.Keys) == 1 {
				fmt.Fprintf(&sb, "%s.Index = '%s'", a.Alias, escapeSQLString(a.Keys[0]))
				continue
			}
			sb.WriteByte('(')
			for j, k := range a.Keys {
				if j > 0 {
					sb.WriteString(" OR ")
				}
				fmt.Fprintf(&sb, "%s.Index = '%s'", a.Alias, escapeSQLString(k))
			}
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

// String implements fmt.Stringer.
func (d *DisjunctiveQuery) String() string { return d.SQL() }

// NumExpansions returns the number of conjunctive queries Expand yields.
func (d *DisjunctiveQuery) NumExpansions() int {
	n := 1
	for _, a := range d.Alternatives {
		n *= len(a.Keys)
	}
	return n
}

// Expand enumerates the concrete conjunctive queries, in odometer order
// over the alternatives with each alias's keys visited in canonical
// (lexicographic) order. Canonicalizing here makes the expansion sequence a
// function of the query alone, independent of the order upstream producers
// (crowd answers, map iteration) happened to list the keys in — so any
// consumer that ranks or first-wins-dedupes expansions gets deterministic
// results. (The query generator itself enumerates integer slot tuples
// directly and canonicalizes in internal/core; this keeps the disjunctive
// surface of Definition 3 consistent with it.) The shared Select node and
// AttrBindings map are referenced, not copied (both are treated as
// immutable); the canonical key order is built on copies, so Alternatives
// and the rendered SQL keep the author's order.
func (d *DisjunctiveQuery) Expand() ([]*Query, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	keys := make([][]string, len(d.Alternatives))
	for ai, a := range d.Alternatives {
		keys[ai] = append([]string(nil), a.Keys...)
		sort.Strings(keys[ai])
	}
	idx := make([]int, len(d.Alternatives))
	var out []*Query
	for {
		q := &Query{Select: d.Select, AttrBindings: d.AttrBindings}
		for ai, a := range d.Alternatives {
			q.Bindings = append(q.Bindings, Binding{
				Alias:    a.Alias,
				Relation: a.Relation,
				Key:      keys[ai][idx[ai]],
			})
		}
		out = append(out, q)
		carry := len(idx) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(keys[carry]) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}
	return out, nil
}

// ParseDisjunctive parses the Definition 3 fragment including OR groups,
// e.g.
//
//	SELECT a.2017 + b.2017 FROM GED a, GED b
//	WHERE a.Index = 'x' AND (b.Index = 'y' OR b.Index = 'z')
func ParseDisjunctive(sql string) (*DisjunctiveQuery, error) {
	selIdx, fromIdx, whereIdx, err := clauseOffsets(sql)
	if err != nil {
		return nil, err
	}
	selectPart := strings.TrimSpace(sql[selIdx+len("select") : fromIdx])
	fromEnd := len(sql)
	if whereIdx >= 0 {
		fromEnd = whereIdx
	}
	fromPart := strings.TrimSpace(sql[fromIdx+len("from") : fromEnd])
	wherePart := ""
	if whereIdx >= 0 {
		wherePart = strings.TrimSuffix(strings.TrimSpace(sql[whereIdx+len("where"):]), ";")
	}
	if selectPart == "" {
		return nil, fmt.Errorf("query: empty SELECT clause in %q", sql)
	}
	if fromPart == "" {
		return nil, fmt.Errorf("query: empty FROM clause in %q", sql)
	}
	sel, err := expr.Parse(selectPart)
	if err != nil {
		return nil, fmt.Errorf("query: SELECT clause: %w", err)
	}
	d := &DisjunctiveQuery{Select: sel}

	aliasIdx := map[string]int{}
	for _, item := range splitTopLevel(fromPart, ',') {
		fields := strings.Fields(strings.TrimSpace(item))
		var rel, alias string
		switch len(fields) {
		case 2:
			rel, alias = fields[0], fields[1]
		case 3:
			if !strings.EqualFold(fields[1], "as") {
				return nil, fmt.Errorf("query: bad FROM item %q", item)
			}
			rel, alias = fields[0], fields[2]
		default:
			return nil, fmt.Errorf("query: bad FROM item %q", item)
		}
		if _, dup := aliasIdx[alias]; dup {
			return nil, fmt.Errorf("query: duplicate alias %q", alias)
		}
		aliasIdx[alias] = len(d.Alternatives)
		d.Alternatives = append(d.Alternatives, AliasAlternatives{
			Alias:    alias,
			Relation: strings.Trim(rel, `"`),
		})
	}

	if wherePart != "" {
		for _, group := range splitInsensitive(wherePart, " and ") {
			group = strings.TrimSpace(group)
			// Strip one optional level of parentheses around OR groups.
			if strings.HasPrefix(group, "(") && strings.HasSuffix(group, ")") {
				group = strings.TrimSpace(group[1 : len(group)-1])
			}
			var groupAlias string
			for _, pred := range splitInsensitive(group, " or ") {
				alias, key, err := parseKeyPredicate(strings.TrimSpace(pred))
				if err != nil {
					return nil, err
				}
				if groupAlias == "" {
					groupAlias = alias
				} else if alias != groupAlias {
					return nil, fmt.Errorf("query: OR group mixes aliases %q and %q", groupAlias, alias)
				}
				i, ok := aliasIdx[alias]
				if !ok {
					return nil, fmt.Errorf("query: predicate references unknown alias %q", alias)
				}
				d.Alternatives[i].Keys = append(d.Alternatives[i].Keys, key)
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
