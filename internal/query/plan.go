package query

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/table"
)

// A Plan is the compiled execution form of a SELECT expression against one
// interned corpus snapshot: the expression is lowered once to a flat
// expr.Program, and all name resolution (aliases → relations, attribute
// labels → columns) happens at bind time, outside the evaluation loop.
//
// Plan vs Execute: Query.Execute is the convenience path — it validates,
// compiles and binds internally (caching both on the Query), and is the
// right call for one-off or repeated execution of a single fixed query.
// Build a Plan directly when one expression is executed under many
// different variable assignments — tentative execution in the query
// generator — so compilation happens once and each candidate assignment
// costs only integer cell resolution plus a stack evaluation.
type Plan struct {
	// Prog is the compiled SELECT program.
	Prog *expr.Program
	// Idx is the interned corpus snapshot the plan binds against.
	Idx *table.Index
}

// NewPlan compiles sel against the interned corpus snapshot.
func NewPlan(sel expr.Node, idx *table.Index) (*Plan, error) {
	if idx == nil {
		return nil, fmt.Errorf("query: nil index")
	}
	prog, err := expr.Compile(sel)
	if err != nil {
		return nil, err
	}
	return &Plan{Prog: prog, Idx: idx}, nil
}

// Scratch is the caller-owned evaluation scratch of a plan: one per
// goroutine, reused across executions. Get one from NewScratch (or the
// package pool via GetScratch/PutScratch) — all three slices must be at
// least as long as the plan's program needs.
type Scratch struct {
	CellVals []float64
	AttrNums []float64
	Stack    []float64
	// Coords is spare per-candidate coordinate space for enumeration
	// loops; Bind/ExecCoords do not touch it.
	Coords []table.CellCoord
}

// NewScratch sizes a scratch for the plan's program.
func (p *Plan) NewScratch() *Scratch {
	s := &Scratch{}
	s.grow(p.Prog)
	return s
}

func (s *Scratch) grow(prog *expr.Program) {
	if n := len(prog.Cells()); cap(s.CellVals) < n {
		s.CellVals = make([]float64, n)
	} else {
		s.CellVals = s.CellVals[:n]
	}
	if n := len(prog.NumVars()); cap(s.AttrNums) < n {
		s.AttrNums = make([]float64, n)
	} else {
		s.AttrNums = s.AttrNums[:n]
	}
	if n := prog.MaxStack(); cap(s.Stack) < n {
		s.Stack = make([]float64, n)
	} else {
		s.Stack = s.Stack[:n]
	}
	if cap(s.Coords) < len(prog.Cells()) {
		s.Coords = make([]table.CellCoord, len(prog.Cells()))
	} else {
		s.Coords = s.Coords[:len(prog.Cells())]
	}
}

// scratchPool recycles evaluation scratch across executions; Execute's
// steady state allocates nothing.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// getScratch borrows a pooled scratch sized for a program — the single
// pool adapter behind Plan.GetScratch and Query.Execute's fast path.
func getScratch(prog *expr.Program) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.grow(prog)
	return s
}

// GetScratch borrows a pooled scratch sized for the plan.
func (p *Plan) GetScratch() *Scratch { return getScratch(p.Prog) }

// PutScratch returns a scratch to the pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// Sentinel bind/execution errors. The compiled path never formats on
// failure; callers that need rich errors (Query.Execute) re-run the
// interpreter to reproduce them.
var (
	// ErrCellNotFound: a bound coordinate addresses a missing or NULL cell.
	ErrCellNotFound = errors.New("query: cell not found")
	errUnresolved   = errors.New("query: unresolvable binding")
)

// BoundQuery is a plan bound to one concrete variable assignment: every
// cell slot resolved to interned coordinates and every numeric attribute
// variable parsed. Binding is immutable; Run may be called concurrently
// with distinct scratches.
type BoundQuery struct {
	plan     *Plan
	coords   []table.CellCoord
	attrNums []float64
}

// Bind resolves the plan's slots against concrete bindings: each program
// alias must appear in bindings, and attribute variables resolve through
// attrs (cell attributes fall back to their literal label, mirroring the
// interpreter's Env.Attr rule). Missing relations, rows, columns or
// non-numeric attribute labels fail with errUnresolved-class errors.
func (p *Plan) Bind(bindings []Binding, attrs map[string]string) (*BoundQuery, error) {
	b := &BoundQuery{
		plan:     p,
		coords:   make([]table.CellCoord, len(p.Prog.Cells())),
		attrNums: make([]float64, len(p.Prog.NumVars())),
	}
	if !resolveSlots(p.Prog, p.Idx, bindings, attrs, b.coords, b.attrNums) {
		return nil, errUnresolved
	}
	return b, nil
}

// resolveSlots is the one name-resolution rule of the compiled engine,
// shared by Plan.Bind and Query.Execute's fast path: alias slots bind to
// interned (relation, row) pairs, cell attributes resolve through attrs
// with the literal label as fallback (the interpreter's Env.Attr rule) to
// interned columns, and numeric attribute variables parse their bound
// label. Results land in the caller-owned coords/attrNums (sized per the
// program); the return value is false when anything is unresolvable. It
// does not allocate for queries of up to 8 aliases.
func resolveSlots(prog *expr.Program, idx *table.Index, bindings []Binding, attrs map[string]string, coords []table.CellCoord, attrNums []float64) bool {
	aliases := prog.Aliases()
	type relRow struct{ rel, row int32 }
	var boundArr [8]relRow
	var bound []relRow
	if len(aliases) <= len(boundArr) {
		bound = boundArr[:len(aliases)]
	} else {
		bound = make([]relRow, len(aliases))
	}
	for i, alias := range aliases {
		found := false
		for _, bd := range bindings {
			if bd.Alias != alias {
				continue
			}
			rel, ok := idx.RelID(bd.Relation)
			if !ok {
				return false
			}
			row, ok := idx.RowID(rel, bd.Key)
			if !ok {
				return false
			}
			bound[i] = relRow{rel, row}
			found = true
			break
		}
		if !found {
			return false
		}
	}
	for i, cs := range prog.Cells() {
		label := cs.Attr
		if resolved, ok := attrs[label]; ok {
			label = resolved
		}
		rr := bound[cs.Alias]
		col, ok := idx.ColID(rr.rel, label)
		if !ok {
			return false
		}
		coords[i] = table.CellCoord{Rel: rr.rel, Row: rr.row, Col: col}
	}
	for i, name := range prog.NumVars() {
		label, ok := attrs[name]
		if !ok {
			return false
		}
		v, err := strconv.ParseFloat(label, 64)
		if err != nil {
			return false
		}
		attrNums[i] = v
	}
	return true
}

// Run evaluates the bound query with the given scratch. It allocates
// nothing on the success path.
func (b *BoundQuery) Run(sc *Scratch) (float64, error) {
	idx := b.plan.Idx
	for i, cc := range b.coords {
		v, ok := idx.Cell(cc.Rel, cc.Row, cc.Col)
		if !ok {
			return 0, ErrCellNotFound
		}
		sc.CellVals[i] = v
	}
	return b.plan.Prog.Eval(sc.CellVals, b.attrNums, sc.Stack)
}

// ExecCoords evaluates the plan for one fully resolved candidate
// assignment: coords[i] addresses the program's i-th cell slot and
// attrNums aligns with the program's NumVars. This is the tentative-
// execution hot path — the query generator enumerates integer slot tuples,
// resolves them to coordinates with precomputed tables, and calls this in
// a tight loop with a pooled scratch.
func (p *Plan) ExecCoords(coords []table.CellCoord, attrNums []float64, sc *Scratch) (float64, error) {
	idx := p.Idx
	for i, cc := range coords {
		v, ok := idx.Cell(cc.Rel, cc.Row, cc.Col)
		if !ok {
			return 0, ErrCellNotFound
		}
		sc.CellVals[i] = v
	}
	return p.Prog.Eval(sc.CellVals, attrNums, sc.Stack)
}
