package query

import "testing"

// FuzzParse checks that the statistical-check SQL parser never panics and
// that successfully parsed queries re-render to SQL that parses again.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a.2017 FROM GED a WHERE a.Index = 'PGElecDemand'",
		"SELECT POWER(a.2017/b.2016,1/(2017-2016)) - 1 FROM GED a, GED b WHERE a.Index = 'x' AND b.Index = 'x'",
		"select (a.2017 / b.2000) from GED a, GED as b where a.Index = 'w' and b.Index = 'w';",
		`SELECT a."2024Q4" FROM "My Table" a WHERE a.Index = 'it''s'`,
		"SELECT a.2017 > 100 FROM R a WHERE a.Index = 'k'",
		"", "SELECT", "SELECT FROM", "WHERE", "SELECT 1 FROM",
		"SELECT a.1 FROM R a WHERE a.Index = 'select from where'",
		"SELECT a.1 FROM R a WHERE a.Index = ''",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		q2, err := Parse(q.SQL())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", q.SQL(), sql, err)
		}
		if q2.SQL() != q.SQL() {
			t.Fatalf("SQL rendering not a fixed point: %q vs %q", q.SQL(), q2.SQL())
		}
	})
}

// FuzzParseDisjunctive does the same for the OR-group parser.
func FuzzParseDisjunctive(f *testing.F) {
	seeds := []string{
		"SELECT a.2017 + b.2017 FROM GED a, GED b WHERE a.Index = 'x' AND (b.Index = 'y' OR b.Index = 'z')",
		"SELECT a.1 FROM R a WHERE (a.Index = 'x' OR a.Index = 'y' OR a.Index = 'z')",
		"SELECT a.1 FROM R a WHERE a.Index = 'only'",
		"", "(", "OR", "SELECT a.1 FROM R a WHERE (a.Index = 'x' OR b.Index = 'y')",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		d, err := ParseDisjunctive(sql)
		if err != nil {
			return
		}
		d2, err := ParseDisjunctive(d.SQL())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", d.SQL(), sql, err)
		}
		if d2.SQL() != d.SQL() {
			t.Fatalf("SQL rendering not a fixed point: %q vs %q", d.SQL(), d2.SQL())
		}
	})
}
