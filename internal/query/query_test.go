package query

import (
	"math"
	"strings"
	"testing"

	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/table"
)

func corpusWithGED(t *testing.T) *table.Corpus {
	t.Helper()
	c := table.NewCorpus()
	r := table.MustNewRelation("GED", "Index", []string{"2000", "2016", "2017"})
	rows := map[string][]float64{
		"PGElecDemand":     {13000, 21546, 22209},
		"CapAddTotal_Wind": {60, 480, 540},
	}
	for k, v := range rows {
		if err := r.AddRow(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExecuteExample1CAGR(t *testing.T) {
	c := corpusWithGED(t)
	q := &Query{
		Select: expr.MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1"),
		Bindings: []Binding{
			{Alias: "a", Relation: "GED", Key: "PGElecDemand"},
			{Alias: "b", Relation: "GED", Key: "PGElecDemand"},
		},
		AttrBindings: map[string]string{"A1": "2017", "A2": "2016"},
	}
	v, err := q.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 22209.0/21546.0 - 1 // ~3.08% growth
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("Execute = %g, want %g", v, want)
	}
	if math.Abs(v-0.03) > 0.005 {
		t.Errorf("growth should be about 3%%, got %g", v)
	}
}

func TestExecuteExample3Ratio(t *testing.T) {
	c := corpusWithGED(t)
	q := &Query{
		Select: expr.MustParse("a.2017 / b.2000"),
		Bindings: []Binding{
			{Alias: "a", Relation: "GED", Key: "CapAddTotal_Wind"},
			{Alias: "b", Relation: "GED", Key: "CapAddTotal_Wind"},
		},
	}
	v, err := q.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-9) > 1e-9 {
		t.Errorf("wind nine-fold check = %g, want 9", v)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
	}{
		{"nil select", &Query{}},
		{"unbound alias", &Query{Select: expr.MustParse("a.2017")}},
		{"incomplete binding", &Query{
			Select:   expr.MustParse("a.2017"),
			Bindings: []Binding{{Alias: "a"}},
		}},
		{"duplicate alias", &Query{
			Select: expr.MustParse("a.2017"),
			Bindings: []Binding{
				{Alias: "a", Relation: "R", Key: "k"},
				{Alias: "a", Relation: "S", Key: "k"},
			},
		}},
		{"unbound attr var", &Query{
			Select:   expr.MustParse("a.A1"),
			Bindings: []Binding{{Alias: "a", Relation: "R", Key: "k"}},
		}},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", c.name)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	c := corpusWithGED(t)
	q := &Query{
		Select:   expr.MustParse("a.2017"),
		Bindings: []Binding{{Alias: "a", Relation: "NoSuchRel", Key: "k"}},
	}
	if _, err := q.Execute(c); err == nil {
		t.Error("missing relation should fail")
	}
	q = &Query{
		Select:   expr.MustParse("a.2017"),
		Bindings: []Binding{{Alias: "a", Relation: "GED", Key: "NoSuchKey"}},
	}
	if _, err := q.Execute(c); err == nil {
		t.Error("missing key should fail")
	}
}

func TestSQLRendering(t *testing.T) {
	q := &Query{
		Select: expr.MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1"),
		Bindings: []Binding{
			{Alias: "a", Relation: "GED", Key: "PGElecDemand"},
			{Alias: "b", Relation: "GED", Key: "PGElecDemand"},
		},
		AttrBindings: map[string]string{"A1": "2017", "A2": "2016"},
	}
	sql := q.SQL()
	for _, want := range []string{
		"SELECT", "FROM GED a, GED b", "WHERE",
		"a.Index = 'PGElecDemand'", "AND b.Index = 'PGElecDemand'",
		"a.2017", "b.2016",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
	// Attribute variables in numeric positions become concrete numbers.
	if strings.Contains(sql, "A1") || strings.Contains(sql, "A2") {
		t.Errorf("SQL %q still contains attribute variables", sql)
	}
	if q.String() != sql {
		t.Error("String should equal SQL")
	}
}

func TestSQLQuotesFunnyIdentifiers(t *testing.T) {
	q := &Query{
		Select:   expr.MustParse("a.2017"),
		Bindings: []Binding{{Alias: "a", Relation: "World Balance", Key: "it's"}},
	}
	sql := q.SQL()
	if !strings.Contains(sql, `"World Balance" a`) {
		t.Errorf("relation not quoted: %q", sql)
	}
	if !strings.Contains(sql, "'it''s'") {
		t.Errorf("key not escaped: %q", sql)
	}
}

func TestParseRoundTrip(t *testing.T) {
	c := corpusWithGED(t)
	orig := &Query{
		Select: expr.MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1"),
		Bindings: []Binding{
			{Alias: "a", Relation: "GED", Key: "PGElecDemand"},
			{Alias: "b", Relation: "GED", Key: "PGElecDemand"},
		},
		AttrBindings: map[string]string{"A1": "2017", "A2": "2016"},
	}
	parsed, err := Parse(orig.SQL())
	if err != nil {
		t.Fatalf("Parse(%q): %v", orig.SQL(), err)
	}
	v1, err := orig.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := parsed.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-12 {
		t.Errorf("round trip changed value: %g vs %g", v1, v2)
	}
}

func TestParseHandWrittenSQL(t *testing.T) {
	c := corpusWithGED(t)
	sql := `select (a.2017 / b.2000)
	        from GED a, GED as b
	        where a.Index = 'CapAddTotal_Wind' and b.Index = 'CapAddTotal_Wind';`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-9) > 1e-9 {
		t.Errorf("parsed query = %g, want 9", v)
	}
	if len(q.Bindings) != 2 || q.Bindings[1].Relation != "GED" {
		t.Errorf("bindings = %+v", q.Bindings)
	}
}

func TestParseKeywordInsideStringLiteral(t *testing.T) {
	c := table.NewCorpus()
	r := table.MustNewRelation("R", "Index", []string{"2017"})
	if err := r.AddRow("select from where", []float64{42}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`SELECT a.2017 FROM R a WHERE a.Index = 'select from where'`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Execute(c)
	if err != nil || v != 42 {
		t.Errorf("Execute = %g, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE x SET y = 1",
		"SELECT 1",                              // no FROM
		"SELECT FROM GED a WHERE a.Index = 'x'", // empty select
		"SELECT a.2017 FROM GED a",              // no WHERE
		"SELECT a.2017 FROM GED a WHERE a.Index = 'x' AND a.Index = 'y'", // two predicates
		"SELECT a.2017 FROM GED a WHERE b.Index = 'x'",                   // unknown alias
		"SELECT a.2017 FROM GED a WHERE a.Index = x",                     // unquoted
		"SELECT a.2017 FROM GED a WHERE a.Index = ''",                    // empty key
		"SELECT a.2017 FROM GED a WHERE a.Index > 'x'",                   // non-equality... (= missing)
		"SELECT a.2017 FROM GED a, GED a WHERE a.Index = 'x'",            // dup alias
		"SELECT a.2017 FROM GED x y z WHERE x.Index = 'k'",               // bad from item
		"SELECT a.++ FROM GED a WHERE a.Index = 'x'",                     // bad expr
		"SELECT a.2017 WHERE a.Index = 'x' FROM GED a",                   // where before from
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestComplexity(t *testing.T) {
	q := &Query{
		Select: expr.MustParse("a.A1 / b.A2"),
		Bindings: []Binding{
			{Alias: "a", Relation: "GED", Key: "x"},
			{Alias: "b", Relation: "GED", Key: "y"},
		},
		AttrBindings: map[string]string{"A1": "2017", "A2": "2016"},
	}
	// expr complexity 3 + 2 bindings = 5
	if got := q.Complexity(); got != 5 {
		t.Errorf("Complexity = %d, want 5", got)
	}
}

func TestBooleanCheckQuery(t *testing.T) {
	// Example 9 style Boolean query: SELECT a.2017 > 100.
	c := corpusWithGED(t)
	q, err := Parse("SELECT a.2017 > 100 FROM GED a WHERE a.Index = 'CapAddTotal_Wind'")
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("Boolean check = %g, want 1", v)
	}
}
