package query

import (
	"fmt"
	"strings"

	"github.com/repro/scrutinizer/internal/expr"
)

// Parse parses a statistical-check SQL string of the Definition 3 fragment
// back into a Query. It accepts the output of Query.SQL as well as
// hand-written variants such as the paper's examples:
//
//	SELECT POWER(a.2017/b.2016, 1/(2017-2016)) - 1
//	FROM GED a, GED b
//	WHERE a.Index = 'PGElecDemand' AND b.Index = 'PGElecDemand'
//
// Parsing is case-insensitive for keywords. Each alias must have exactly one
// key predicate (disjunctive WHERE clauses are expanded into separate
// queries by the generator before they ever reach SQL form).
//
// Note one asymmetry with Query.SQL: in hand-written SQL, numeric terms in
// value position (e.g. the 2017 in 1/(2017-2016)) are plain numbers; SQL()
// renders resolved attribute variables the same way, so round trips are
// stable.
func Parse(sql string) (*Query, error) {
	selIdx, fromIdx, whereIdx, err := clauseOffsets(sql)
	if err != nil {
		return nil, err
	}

	selectPart := strings.TrimSpace(sql[selIdx+len("select") : fromIdx])
	fromEnd := len(sql)
	if whereIdx >= 0 {
		fromEnd = whereIdx
	}
	fromPart := strings.TrimSpace(sql[fromIdx+len("from") : fromEnd])
	wherePart := ""
	if whereIdx >= 0 {
		wherePart = strings.TrimSpace(sql[whereIdx+len("where"):])
	}
	wherePart = strings.TrimSuffix(wherePart, ";")

	if selectPart == "" {
		return nil, fmt.Errorf("query: empty SELECT clause in %q", sql)
	}
	if fromPart == "" {
		return nil, fmt.Errorf("query: empty FROM clause in %q", sql)
	}
	sel, err := expr.Parse(selectPart)
	if err != nil {
		return nil, fmt.Errorf("query: SELECT clause: %w", err)
	}

	q := &Query{Select: sel}

	aliasRel := make(map[string]string)
	if fromPart != "" {
		for _, item := range splitTopLevel(fromPart, ',') {
			fields := strings.Fields(strings.TrimSpace(item))
			var rel, alias string
			switch len(fields) {
			case 2:
				rel, alias = fields[0], fields[1]
			case 3:
				if !strings.EqualFold(fields[1], "as") {
					return nil, fmt.Errorf("query: bad FROM item %q", item)
				}
				rel, alias = fields[0], fields[2]
			default:
				return nil, fmt.Errorf("query: bad FROM item %q", item)
			}
			rel = strings.Trim(rel, `"`)
			if _, dup := aliasRel[alias]; dup {
				return nil, fmt.Errorf("query: duplicate alias %q", alias)
			}
			aliasRel[alias] = rel
			q.Bindings = append(q.Bindings, Binding{Alias: alias, Relation: rel})
		}
	}

	if wherePart != "" {
		preds := splitInsensitive(wherePart, " and ")
		for _, p := range preds {
			alias, key, err := parseKeyPredicate(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			found := false
			for i := range q.Bindings {
				if q.Bindings[i].Alias == alias {
					if q.Bindings[i].Key != "" {
						return nil, fmt.Errorf("query: alias %q has two key predicates", alias)
					}
					q.Bindings[i].Key = key
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("query: predicate references unknown alias %q", alias)
			}
		}
	}

	for _, b := range q.Bindings {
		if b.Key == "" {
			return nil, fmt.Errorf("query: alias %q has no key predicate", b.Alias)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// clauseOffsets finds SELECT ... FROM ... [WHERE ...] keyword offsets,
// case-insensitively, at word boundaries outside quotes.
func clauseOffsets(sql string) (selIdx, fromIdx, whereIdx int, err error) {
	lower := strings.ToLower(sql)
	selIdx = indexWordOutsideQuotes(lower, "select")
	if selIdx != strings.IndexFunc(lower, func(r rune) bool { return r != ' ' && r != '\t' && r != '\n' && r != '\r' }) {
		return 0, 0, 0, fmt.Errorf("query: statement must start with SELECT: %q", sql)
	}
	fromIdx = indexWordOutsideQuotes(lower, "from")
	if fromIdx < 0 {
		return 0, 0, 0, fmt.Errorf("query: missing FROM clause in %q", sql)
	}
	whereIdx = indexWordOutsideQuotes(lower, "where")
	if whereIdx >= 0 && whereIdx < fromIdx {
		return 0, 0, 0, fmt.Errorf("query: WHERE before FROM in %q", sql)
	}
	return selIdx, fromIdx, whereIdx, nil
}

// indexWordOutsideQuotes returns the byte offset of the first occurrence of
// word in s that is delimited by non-identifier characters and not inside a
// single- or double-quoted string. Returns -1 if absent.
func indexWordOutsideQuotes(s, word string) int {
	inSingle, inDouble := false, false
	for i := 0; i+len(word) <= len(s); i++ {
		c := s[i]
		if c == '\'' && !inDouble {
			inSingle = !inSingle
			continue
		}
		if c == '"' && !inSingle {
			inDouble = !inDouble
			continue
		}
		if inSingle || inDouble {
			continue
		}
		if s[i:i+len(word)] != word {
			continue
		}
		beforeOK := i == 0 || !isWordByte(s[i-1])
		afterOK := i+len(word) == len(s) || !isWordByte(s[i+len(word)])
		if beforeOK && afterOK {
			return i
		}
	}
	return -1
}

func isWordByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// splitTopLevel splits s on sep occurrences that are outside parentheses and
// quotes.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth := 0
	inSingle, inDouble := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case inSingle || inDouble:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == sep && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// splitInsensitive splits s on case-insensitive occurrences of sep outside
// quotes and parentheses.
func splitInsensitive(s, sep string) []string {
	var parts []string
	lower := strings.ToLower(s)
	lsep := strings.ToLower(sep)
	depth := 0
	inSingle, inDouble := false, false
	start := 0
	for i := 0; i+len(lsep) <= len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
			continue
		case c == '"' && !inSingle:
			inDouble = !inDouble
			continue
		}
		if inSingle || inDouble {
			continue
		}
		switch c {
		case '(':
			depth++
			continue
		case ')':
			depth--
			continue
		}
		if depth == 0 && lower[i:i+len(lsep)] == lsep {
			parts = append(parts, s[start:i])
			start = i + len(lsep)
			i += len(lsep) - 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// parseKeyPredicate parses "alias.Index = 'value'" (the key attribute name
// is accepted but ignored; the store knows its own key attribute).
func parseKeyPredicate(p string) (alias, key string, err error) {
	eq := strings.IndexByte(p, '=')
	if eq < 0 {
		return "", "", fmt.Errorf("query: predicate %q is not an equality", p)
	}
	lhs := strings.TrimSpace(p[:eq])
	rhs := strings.TrimSpace(p[eq+1:])
	dot := strings.IndexByte(lhs, '.')
	if dot < 0 {
		return "", "", fmt.Errorf("query: predicate lhs %q is not alias.key", lhs)
	}
	alias = strings.TrimSpace(lhs[:dot])
	if alias == "" {
		return "", "", fmt.Errorf("query: empty alias in predicate %q", p)
	}
	if len(rhs) < 2 || rhs[0] != '\'' || rhs[len(rhs)-1] != '\'' {
		return "", "", fmt.Errorf("query: predicate rhs %q must be a quoted string", rhs)
	}
	key = strings.ReplaceAll(rhs[1:len(rhs)-1], "''", "'")
	if key == "" {
		return "", "", fmt.Errorf("query: empty key in predicate %q", p)
	}
	return alias, key, nil
}
