// Package ilp implements a 0/1 integer linear programming solver used for
// claim-batch selection (paper Definition 9 / Theorem 8). It substitutes the
// Gurobi solver of the authors' implementation; see DESIGN.md.
//
// The model form is:
//
//	maximize    sum_j c_j x_j
//	subject to  sum_j a_ij x_j  (<=|>=|=)  b_i   for each constraint i
//	            x_j in {0, 1}
//
// The solver is branch-and-bound:
//
//   - the upper bound at each node is min over <=-constraints of a
//     fractional (LP) knapsack relaxation restricted to that constraint,
//     plus the sum of remaining positive objective coefficients for
//     unconstrained variables — a valid, cheap bound;
//   - a greedy rounding pass provides the initial incumbent (warm start);
//   - node and time budgets make the solver anytime: when exhausted it
//     returns the best incumbent with Optimal=false, matching how a
//     commercial solver is used with a time limit.
//
// Infeasibility of >=/= constraints is detected through propagation at each
// node; the solver is exact when budgets are not exhausted.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sense is a constraint direction.
type Sense int

const (
	LE Sense = iota // sum <= b
	GE              // sum >= b
	EQ              // sum == b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Term is one coefficient in a constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is one linear row.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   float64
}

// Model is a 0/1 ILP instance.
type Model struct {
	names       []string
	objective   []float64
	constraints []Constraint
}

// NewModel creates an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a binary variable with the given objective coefficient and
// returns its index.
func (m *Model) AddVar(name string, objCoeff float64) int {
	m.names = append(m.names, name)
	m.objective = append(m.objective, objCoeff)
	return len(m.names) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// VarName returns the name of variable j.
func (m *Model) VarName(j int) string { return m.names[j] }

// AddConstraint appends a linear row; it validates variable indexes.
func (m *Model) AddConstraint(c Constraint) error {
	for _, t := range c.Terms {
		if t.Var < 0 || t.Var >= len(m.names) {
			return fmt.Errorf("ilp: constraint %q references unknown variable %d", c.Name, t.Var)
		}
	}
	m.constraints = append(m.constraints, c)
	return nil
}

// Options bounds solver effort.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (default 200000).
	MaxNodes int
	// TimeLimit caps wall-clock solve time (default 5s).
	TimeLimit time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.TimeLimit <= 0 {
		o.TimeLimit = 5 * time.Second
	}
	return o
}

// Solution is the solver output.
type Solution struct {
	// X holds the chosen 0/1 assignment.
	X []bool
	// Objective is the achieved objective value.
	Objective float64
	// Optimal reports whether the solver proved optimality (budgets not
	// exhausted).
	Optimal bool
	// Feasible reports whether any feasible assignment was found.
	Feasible bool
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
}

// Solve runs branch and bound.
func (m *Model) Solve(opt Options) Solution {
	opt = opt.withDefaults()
	n := len(m.names)
	if n == 0 {
		return Solution{Optimal: true, Feasible: m.allConstraintsHoldEmpty(), X: nil}
	}

	s := &solver{
		m:        m,
		opt:      opt,
		deadline: time.Now().Add(opt.TimeLimit),
		best:     Solution{Objective: math.Inf(-1)},
	}

	// Warm start with greedy rounding.
	if x, obj, ok := m.greedy(); ok {
		s.best = Solution{X: x, Objective: obj, Feasible: true}
	}

	// Branch order: descending |objective| puts influential variables
	// first, improving pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := math.Abs(m.objective[order[a]]), math.Abs(m.objective[order[b]])
		if oa != ob {
			return oa > ob
		}
		return order[a] < order[b]
	})

	assign := make([]int8, n) // -1 = 0, +1 = 1, 0 = free
	s.branch(order, 0, assign, 0)

	out := s.best
	out.Nodes = s.nodes
	out.Optimal = !s.budgetExhausted && out.Feasible
	if !out.Feasible {
		// Even with budget left, exhaustive search may prove
		// infeasibility.
		out.Optimal = false
		out.Objective = 0
	}
	return out
}

func (m *Model) allConstraintsHoldEmpty() bool {
	for _, c := range m.constraints {
		if !senseHolds(0, c.Sense, c.RHS) {
			return false
		}
	}
	return true
}

func senseHolds(lhs float64, s Sense, rhs float64) bool {
	const eps = 1e-9
	switch s {
	case LE:
		return lhs <= rhs+eps
	case GE:
		return lhs >= rhs-eps
	case EQ:
		return math.Abs(lhs-rhs) <= eps
	}
	return false
}

// feasibleComplete checks a full assignment.
func (m *Model) feasibleComplete(x []bool) bool {
	for _, c := range m.constraints {
		var lhs float64
		for _, t := range c.Terms {
			if x[t.Var] {
				lhs += t.Coeff
			}
		}
		if !senseHolds(lhs, c.Sense, c.RHS) {
			return false
		}
	}
	return true
}

// objectiveOf computes the objective of a full assignment.
func (m *Model) objectiveOf(x []bool) float64 {
	var v float64
	for j, on := range x {
		if on {
			v += m.objective[j]
		}
	}
	return v
}

// greedy builds a warm-start incumbent: take variables in descending
// objective-coefficient order, keeping a partial assignment that can still
// satisfy every constraint (checking LE rows directly and GE/EQ rows
// optimistically), then verify the final assignment.
func (m *Model) greedy() ([]bool, float64, bool) {
	n := len(m.names)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if m.objective[order[a]] != m.objective[order[b]] {
			return m.objective[order[a]] > m.objective[order[b]]
		}
		return order[a] < order[b]
	})
	x := make([]bool, n)
	for _, j := range order {
		if m.objective[j] < 0 {
			break
		}
		x[j] = true
		if !m.partialCanSatisfy(x) {
			x[j] = false
		}
	}
	// Repair GE/EQ rows: turn on cheapest remaining variables that help.
	for pass := 0; pass < n; pass++ {
		deficit := m.firstDeficitRow(x)
		if deficit < 0 {
			break
		}
		c := m.constraints[deficit]
		bestJ, bestCost := -1, math.Inf(1)
		for _, t := range c.Terms {
			if !x[t.Var] && t.Coeff > 0 {
				cost := -m.objective[t.Var] / t.Coeff
				if cost < bestCost {
					bestJ, bestCost = t.Var, cost
				}
			}
		}
		if bestJ < 0 {
			break
		}
		x[bestJ] = true
		if !m.partialCanSatisfy(x) {
			x[bestJ] = false
			break
		}
	}
	if m.feasibleComplete(x) {
		return x, m.objectiveOf(x), true
	}
	// Try the empty assignment as a last resort.
	zero := make([]bool, n)
	if m.feasibleComplete(zero) {
		return zero, 0, true
	}
	return nil, 0, false
}

// partialCanSatisfy treats x as a complete candidate for LE rows (whatever
// is on counts) and optimistically for GE/EQ rows (everything not on could
// still be turned on).
func (m *Model) partialCanSatisfy(x []bool) bool {
	for _, c := range m.constraints {
		var on, potential float64
		for _, t := range c.Terms {
			if x[t.Var] {
				on += t.Coeff
			} else if t.Coeff > 0 {
				potential += t.Coeff
			}
		}
		switch c.Sense {
		case LE:
			if on > c.RHS+1e-9 {
				return false
			}
		case GE:
			if on+potential < c.RHS-1e-9 {
				return false
			}
		case EQ:
			if on > c.RHS+1e-9 || on+potential < c.RHS-1e-9 {
				return false
			}
		}
	}
	return true
}

func (m *Model) firstDeficitRow(x []bool) int {
	for i, c := range m.constraints {
		if c.Sense != GE && c.Sense != EQ {
			continue
		}
		var lhs float64
		for _, t := range c.Terms {
			if x[t.Var] {
				lhs += t.Coeff
			}
		}
		if lhs < c.RHS-1e-9 {
			return i
		}
	}
	return -1
}

type solver struct {
	m               *Model
	opt             Options
	deadline        time.Time
	best            Solution
	nodes           int
	budgetExhausted bool
}

// branch explores assignments over order[depth:]; assign holds fixed values.
func (s *solver) branch(order []int, depth int, assign []int8, fixedObj float64) {
	if s.budgetExhausted {
		return
	}
	s.nodes++
	if s.nodes > s.opt.MaxNodes || (s.nodes%1024 == 0 && time.Now().After(s.deadline)) {
		s.budgetExhausted = true
		return
	}

	// Propagation: partial assignment must still admit a feasible
	// completion.
	if !s.partialFeasible(assign) {
		return
	}

	// Bound: fixed objective + optimistic completion.
	if ub := fixedObj + s.upperBound(order, depth, assign); ub <= s.best.Objective+1e-9 && s.best.Feasible {
		return
	}

	if depth == len(order) {
		x := make([]bool, len(assign))
		for j, a := range assign {
			x[j] = a > 0
		}
		if s.m.feasibleComplete(x) {
			obj := s.m.objectiveOf(x)
			if !s.best.Feasible || obj > s.best.Objective {
				s.best = Solution{X: x, Objective: obj, Feasible: true}
			}
		}
		return
	}

	j := order[depth]
	// Try the more promising value first.
	first, second := int8(1), int8(-1)
	if s.m.objective[j] < 0 {
		first, second = -1, 1
	}
	for _, v := range [2]int8{first, second} {
		assign[j] = v
		add := 0.0
		if v > 0 {
			add = s.m.objective[j]
		}
		s.branch(order, depth+1, assign, fixedObj+add)
		if s.budgetExhausted {
			assign[j] = 0
			return
		}
	}
	assign[j] = 0
}

// partialFeasible checks whether the partial assignment can still satisfy
// every constraint, assuming free variables take whichever value helps.
func (s *solver) partialFeasible(assign []int8) bool {
	for _, c := range s.m.constraints {
		var lo, hi float64 // achievable range of lhs
		for _, t := range c.Terms {
			switch {
			case assign[t.Var] > 0:
				lo += t.Coeff
				hi += t.Coeff
			case assign[t.Var] == 0:
				if t.Coeff > 0 {
					hi += t.Coeff
				} else {
					lo += t.Coeff
				}
			}
		}
		switch c.Sense {
		case LE:
			if lo > c.RHS+1e-9 {
				return false
			}
		case GE:
			if hi < c.RHS-1e-9 {
				return false
			}
		case EQ:
			if lo > c.RHS+1e-9 || hi < c.RHS-1e-9 {
				return false
			}
		}
	}
	return true
}

// upperBound returns an optimistic objective contribution of the free
// variables: the minimum over LE constraints of a fractional knapsack bound,
// intersected with the trivially positive sum.
func (s *solver) upperBound(order []int, depth int, assign []int8) float64 {
	// Trivial bound: sum of positive coefficients of free variables.
	var trivial float64
	for _, j := range order[depth:] {
		if assign[j] == 0 && s.m.objective[j] > 0 {
			trivial += s.m.objective[j]
		}
	}
	bound := trivial
	// Fractional knapsack per LE constraint with all-positive
	// coefficients over the free, positive-objective variables.
	for _, c := range s.m.constraints {
		if c.Sense != LE {
			continue
		}
		budget := c.RHS
		covered := make(map[int]float64, len(c.Terms))
		valid := true
		for _, t := range c.Terms {
			if t.Coeff < 0 {
				valid = false
				break
			}
			if assign[t.Var] > 0 {
				budget -= t.Coeff
			} else if assign[t.Var] == 0 {
				covered[t.Var] = t.Coeff
			}
		}
		if !valid {
			continue
		}
		if budget < 0 {
			budget = 0
		}
		// Free positive-objective variables NOT in this constraint can
		// always be taken.
		var outside float64
		type item struct{ value, weight float64 }
		var items []item
		for _, j := range order[depth:] {
			if assign[j] != 0 || s.m.objective[j] <= 0 {
				continue
			}
			if w, ok := covered[j]; ok {
				if w == 0 {
					outside += s.m.objective[j]
				} else {
					items = append(items, item{s.m.objective[j], w})
				}
			} else {
				outside += s.m.objective[j]
			}
		}
		sort.Slice(items, func(a, b int) bool {
			return items[a].value*items[b].weight > items[b].value*items[a].weight
		})
		knap := 0.0
		rem := budget
		for _, it := range items {
			if it.weight <= rem {
				knap += it.value
				rem -= it.weight
			} else {
				knap += it.value * rem / it.weight
				break
			}
		}
		if b := outside + knap; b < bound {
			bound = b
		}
	}
	return bound
}
