package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings wrong")
	}
	if Sense(9).String() == "" {
		t.Error("unknown sense should still print")
	}
}

func TestEmptyModel(t *testing.T) {
	m := NewModel()
	sol := m.Solve(Options{})
	if !sol.Optimal || !sol.Feasible && m.allConstraintsHoldEmpty() {
		t.Errorf("empty model: %+v", sol)
	}
}

func TestUnconstrainedTakesPositives(t *testing.T) {
	m := NewModel()
	a := m.AddVar("a", 5)
	b := m.AddVar("b", -2)
	c := m.AddVar("c", 3)
	sol := m.Solve(Options{})
	if !sol.Optimal || !sol.Feasible {
		t.Fatalf("solve: %+v", sol)
	}
	if !sol.X[a] || sol.X[b] || !sol.X[c] {
		t.Errorf("X = %v", sol.X)
	}
	if sol.Objective != 8 {
		t.Errorf("objective = %g", sol.Objective)
	}
	if m.VarName(a) != "a" || m.NumVars() != 3 {
		t.Error("metadata wrong")
	}
}

func TestKnapsackExact(t *testing.T) {
	// Classic: values 60,100,120; weights 10,20,30; capacity 50 -> 220.
	m := NewModel()
	v1 := m.AddVar("x1", 60)
	v2 := m.AddVar("x2", 100)
	v3 := m.AddVar("x3", 120)
	if err := m.AddConstraint(Constraint{
		Name:  "cap",
		Terms: []Term{{v1, 10}, {v2, 20}, {v3, 30}},
		Sense: LE,
		RHS:   50,
	}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || sol.Objective != 220 {
		t.Errorf("knapsack: %+v", sol)
	}
	if sol.X[v1] || !sol.X[v2] || !sol.X[v3] {
		t.Errorf("knapsack X = %v", sol.X)
	}
}

func TestCardinalityBounds(t *testing.T) {
	// Pick exactly 2 of 4 maximizing utility.
	m := NewModel()
	utils := []float64{3, 9, 1, 7}
	vars := make([]int, 4)
	terms := make([]Term, 4)
	for i, u := range utils {
		vars[i] = m.AddVar("", u)
		terms[i] = Term{vars[i], 1}
	}
	if err := m.AddConstraint(Constraint{Terms: terms, Sense: EQ, RHS: 2}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || sol.Objective != 16 {
		t.Errorf("cardinality: %+v", sol)
	}
	count := 0
	for _, on := range sol.X {
		if on {
			count++
		}
	}
	if count != 2 {
		t.Errorf("selected %d, want 2", count)
	}
}

func TestGEConstraintForcesSelection(t *testing.T) {
	// All negative objective but GE forces at least one on: pick the
	// cheapest.
	m := NewModel()
	a := m.AddVar("a", -5)
	b := m.AddVar("b", -1)
	if err := m.AddConstraint(Constraint{
		Terms: []Term{{a, 1}, {b, 1}}, Sense: GE, RHS: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || !sol.Feasible {
		t.Fatalf("solve: %+v", sol)
	}
	if sol.X[a] || !sol.X[b] || sol.Objective != -1 {
		t.Errorf("GE: %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	a := m.AddVar("a", 1)
	if err := m.AddConstraint(Constraint{Terms: []Term{{a, 1}}, Sense: GE, RHS: 2}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Feasible {
		t.Errorf("infeasible model reported feasible: %+v", sol)
	}
}

func TestImplicationConstraint(t *testing.T) {
	// The scheduler's pattern: section var sr >= claim var cs, i.e.
	// cs - sr <= 0. Selecting the claim must force the section cost.
	m := NewModel()
	cs := m.AddVar("claim", 10)
	sr := m.AddVar("section", -4) // section read costs 4 (modelled in objective)
	if err := m.AddConstraint(Constraint{
		Name:  "link",
		Terms: []Term{{cs, 1}, {sr, -1}},
		Sense: LE,
		RHS:   0,
	}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || !sol.X[cs] || !sol.X[sr] {
		t.Errorf("implication: %+v", sol)
	}
	if sol.Objective != 6 {
		t.Errorf("objective = %g, want 6", sol.Objective)
	}
}

func TestAddConstraintValidates(t *testing.T) {
	m := NewModel()
	m.AddVar("a", 1)
	if err := m.AddConstraint(Constraint{Terms: []Term{{5, 1}}}); err == nil {
		t.Error("bad variable index accepted")
	}
	if err := m.AddConstraint(Constraint{Terms: []Term{{-1, 1}}}); err == nil {
		t.Error("negative variable index accepted")
	}
}

// bruteForce solves tiny instances exactly for cross-checks.
func bruteForce(m *Model) (float64, bool) {
	n := m.NumVars()
	best := math.Inf(-1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]bool, n)
		for j := 0; j < n; j++ {
			x[j] = mask&(1<<j) != 0
		}
		if m.feasibleComplete(x) {
			found = true
			if obj := m.objectiveOf(x); obj > best {
				best = obj
			}
		}
	}
	return best, found
}

// TestRandomInstancesMatchBruteForce cross-checks the solver against
// exhaustive enumeration on random small models with mixed senses.
func TestRandomInstancesMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel()
		n := 3 + rng.Intn(8)
		for j := 0; j < n; j++ {
			m.AddVar("", float64(rng.Intn(21)-8))
		}
		nCons := 1 + rng.Intn(4)
		for i := 0; i < nCons; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{j, float64(rng.Intn(9) - 2)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := Sense(rng.Intn(3))
			rhs := float64(rng.Intn(12) - 2)
			if err := m.AddConstraint(Constraint{Terms: terms, Sense: sense, RHS: rhs}); err != nil {
				t.Fatal(err)
			}
		}
		want, feasible := bruteForce(m)
		sol := m.Solve(Options{MaxNodes: 1 << 22, TimeLimit: 30 * time.Second})
		if sol.Feasible != feasible {
			t.Fatalf("seed %d: feasible=%v want %v", seed, sol.Feasible, feasible)
		}
		if feasible && math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("seed %d: objective=%g want %g", seed, sol.Objective, want)
		}
		if feasible && !sol.Optimal {
			t.Fatalf("seed %d: expected proof of optimality", seed)
		}
	}
}

func TestAnytimeBudget(t *testing.T) {
	// A large knapsack with a tiny node budget must still return a
	// feasible incumbent, flagged non-optimal... or optimal if greedy
	// already matched. Just require feasibility.
	rng := rand.New(rand.NewSource(42))
	m := NewModel()
	var terms []Term
	for j := 0; j < 60; j++ {
		m.AddVar("", 1+rng.Float64()*9)
		terms = append(terms, Term{j, 1 + rng.Float64()*4})
	}
	if err := m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 30}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{MaxNodes: 50, TimeLimit: time.Second})
	if !sol.Feasible {
		t.Fatalf("anytime solve found nothing: %+v", sol)
	}
	if sol.Nodes > 51 {
		t.Errorf("node budget exceeded: %d", sol.Nodes)
	}
}

func TestSolutionObjectiveMatchesAssignment(t *testing.T) {
	// Whatever the solver returns, the reported objective must equal the
	// recomputed objective of X and X must be feasible.
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel()
		n := 4 + rng.Intn(10)
		var terms []Term
		for j := 0; j < n; j++ {
			m.AddVar("", rng.Float64()*10-2)
			terms = append(terms, Term{j, 1})
		}
		if err := m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: float64(n / 2)}); err != nil {
			t.Fatal(err)
		}
		sol := m.Solve(Options{})
		if !sol.Feasible {
			t.Fatalf("seed %d infeasible", seed)
		}
		if !m.feasibleComplete(sol.X) {
			t.Fatalf("seed %d returned infeasible X", seed)
		}
		if math.Abs(m.objectiveOf(sol.X)-sol.Objective) > 1e-9 {
			t.Fatalf("seed %d objective mismatch", seed)
		}
	}
}

func TestEqualityConstraintExact(t *testing.T) {
	// x1 + 2*x2 + 3*x3 = 5 has solutions {x2,x3} and {x1,x2,... no:
	// 1+2+3=6, 2+3=5 ✓, 1+... 1+2=3, 1+3=4. Unique: {x2,x3}.
	m := NewModel()
	v1 := m.AddVar("x1", 1)
	v2 := m.AddVar("x2", 1)
	v3 := m.AddVar("x3", 1)
	if err := m.AddConstraint(Constraint{
		Terms: []Term{{v1, 1}, {v2, 2}, {v3, 3}}, Sense: EQ, RHS: 5,
	}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || !sol.Feasible {
		t.Fatalf("solve: %+v", sol)
	}
	if sol.X[v1] || !sol.X[v2] || !sol.X[v3] {
		t.Errorf("X = %v, want [false true true]", sol.X)
	}
}

func TestNegativeCoefficientsInLEConstraint(t *testing.T) {
	// x1 - x2 <= 0 with positive objectives forces x2 on whenever x1 is.
	m := NewModel()
	v1 := m.AddVar("x1", 10)
	v2 := m.AddVar("x2", 1)
	if err := m.AddConstraint(Constraint{
		Terms: []Term{{v1, 1}, {v2, -1}}, Sense: LE, RHS: 0,
	}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || !sol.X[v1] || !sol.X[v2] || sol.Objective != 11 {
		t.Errorf("solve: %+v", sol)
	}
}

func TestZeroObjectiveFeasibilityProblem(t *testing.T) {
	// All-zero objective: the solver just needs any feasible point of
	// x1 + x2 >= 1.
	m := NewModel()
	v1 := m.AddVar("x1", 0)
	v2 := m.AddVar("x2", 0)
	if err := m.AddConstraint(Constraint{
		Terms: []Term{{v1, 1}, {v2, 1}}, Sense: GE, RHS: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Feasible || (!sol.X[v1] && !sol.X[v2]) {
		t.Errorf("solve: %+v", sol)
	}
}

func TestConflictingEqualities(t *testing.T) {
	m := NewModel()
	v := m.AddVar("x", 1)
	if err := m.AddConstraint(Constraint{Terms: []Term{{v, 1}}, Sense: EQ, RHS: 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(Constraint{Terms: []Term{{v, 1}}, Sense: EQ, RHS: 1}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Feasible {
		t.Errorf("conflicting equalities reported feasible: %+v", sol)
	}
}

func TestFractionalRHS(t *testing.T) {
	// Budget 2.5 with unit weights admits at most two variables.
	m := NewModel()
	var terms []Term
	for j := 0; j < 4; j++ {
		m.AddVar("", float64(j+1))
		terms = append(terms, Term{j, 1})
	}
	if err := m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 2.5}); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if !sol.Optimal || sol.Objective != 7 { // picks values 3 and 4
		t.Errorf("solve: %+v", sol)
	}
}

func BenchmarkSolveKnapsack30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel()
	var terms []Term
	for j := 0; j < 30; j++ {
		m.AddVar("", 1+rng.Float64()*9)
		terms = append(terms, Term{j, 1 + rng.Float64()*4})
	}
	if err := m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 25}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Solve(Options{})
	}
}
