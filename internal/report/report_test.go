package report

import (
	"strings"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/query"
)

func sampleReport() *Report {
	doc := &claims.Document{
		Title:    "Test Outlook",
		Sections: 1,
		Claims: []*claims.Claim{
			{ID: 1, Text: "demand grew by 3%", Correct: true, Truth: &claims.GroundTruth{Value: 0.03}},
			{ID: 2, Text: "coal fell by 9%", Correct: false, Truth: &claims.GroundTruth{Value: -0.02}},
			{ID: 3, Text: "unparseable claim", Correct: true, Truth: &claims.GroundTruth{Value: 1}},
		},
	}
	q := &query.Query{
		Select:   expr.MustParse("a.2017"),
		Bindings: []query.Binding{{Alias: "a", Relation: "GED", Key: "X"}},
	}
	return &Report{
		Document: doc,
		Seconds:  120,
		Outcomes: []*core.Outcome{
			{ClaimID: 1, Verdict: core.VerdictCorrect, Query: q, Value: 0.03},
			{ClaimID: 2, Verdict: core.VerdictIncorrect, Query: q, Value: -0.02, Suggestion: -0.02, HasSuggestion: true},
			{ClaimID: 3, Verdict: core.VerdictSkipped},
		},
	}
}

func TestSummarise(t *testing.T) {
	s := sampleReport().Summarise()
	if s.Total != 3 || s.Correct != 1 || s.Incorrect != 1 || s.Skipped != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Suggestion != 1 {
		t.Errorf("suggestions = %d", s.Suggestion)
	}
	if s.PerClaim != 60 {
		t.Errorf("per-claim = %g", s.PerClaim)
	}
	// Both verdicts match the Correct flags -> accuracy 1.
	if s.Accuracy != 1 {
		t.Errorf("accuracy = %g", s.Accuracy)
	}
}

func TestWriteRendersEverything(t *testing.T) {
	out := sampleReport().String()
	for _, want := range []string{
		"Test Outlook",
		"claims=3 correct=1 incorrect=1 skipped=1",
		"demand grew by 3%",
		"verdict: correct",
		"verdict: incorrect",
		"suggested correction",
		"SELECT a.2017 FROM GED a",
		"verdict: skipped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteOrdersByClaimID(t *testing.T) {
	r := sampleReport()
	r.Outcomes[0], r.Outcomes[2] = r.Outcomes[2], r.Outcomes[0]
	out := r.String()
	i1 := strings.Index(out, "[1]")
	i2 := strings.Index(out, "[2]")
	i3 := strings.Index(out, "[3]")
	if !(i1 < i2 && i2 < i3) {
		t.Errorf("outcomes not ordered: %d %d %d", i1, i2, i3)
	}
}

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].System != "Scrutinizer" || rows[0].Claims != "general" || rows[0].User != "crowd" {
		t.Errorf("Scrutinizer row = %+v", rows[0])
	}
	var sb strings.Builder
	if err := WriteTable3(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scrutinizer", "AggChecker", "BriQ", "StatSearch", "corpus", "crowd"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"title": "Test Outlook"`,
		`"claims": 3`,
		`"verdict": "correct"`,
		`"verdict": "incorrect"`,
		`"suggestion"`,
		`"query": "SELECT a.2017 FROM GED a`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	// Skipped outcome carries no query/value fields.
	if strings.Count(out, `"value"`) != 2 {
		t.Errorf("value fields = %d, want 2", strings.Count(out, `"value"`))
	}
}

func TestEmptyReport(t *testing.T) {
	r := &Report{Document: &claims.Document{Title: "empty"}}
	s := r.Summarise()
	if s.Total != 0 || s.PerClaim != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if !strings.Contains(r.String(), "empty") {
		t.Error("empty report should still render title")
	}
}
