// Package report renders verification results into the human-readable
// verification report of the problem statement (Definition 4): each claim
// mapped to its verifying query, mistakes pointed out with suggested
// corrections (Example 4), and summary statistics. It also renders the
// qualitative system-comparison table of the paper (Table 3).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
)

// Report couples a document with its verification outcomes.
type Report struct {
	Document *claims.Document
	Outcomes []*core.Outcome
	// Seconds is the total crowd time spent.
	Seconds float64
}

// Summary aggregates headline numbers.
type Summary struct {
	Total      int
	Correct    int
	Incorrect  int
	Skipped    int
	Seconds    float64
	PerClaim   float64 // seconds per processed claim
	Accuracy   float64 // against the generator's Correct flags
	Suggestion int     // incorrect claims with a proposed correction
}

// Summarise computes the Summary.
func (r *Report) Summarise() Summary {
	s := Summary{Total: len(r.Outcomes), Seconds: r.Seconds}
	for _, o := range r.Outcomes {
		switch o.Verdict {
		case core.VerdictCorrect:
			s.Correct++
		case core.VerdictIncorrect:
			s.Incorrect++
			if o.HasSuggestion {
				s.Suggestion++
			}
		default:
			s.Skipped++
		}
	}
	if processed := s.Correct + s.Incorrect; processed > 0 {
		s.PerClaim = s.Seconds / float64(processed)
	}
	s.Accuracy = core.Accuracy(r.Document, r.Outcomes)
	return s
}

// Write renders the full report as text.
func (r *Report) Write(w io.Writer) error {
	s := r.Summarise()
	byID := make(map[int]*claims.Claim, len(r.Document.Claims))
	for _, c := range r.Document.Claims {
		byID[c.ID] = c
	}
	if _, err := fmt.Fprintf(w, "Verification report: %s\n", r.Document.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "claims=%d correct=%d incorrect=%d skipped=%d\n",
		s.Total, s.Correct, s.Incorrect, s.Skipped)
	fmt.Fprintf(w, "crowd time: %.0f person-seconds (%.1f s/claim), accuracy %.1f%%\n\n",
		s.Seconds, s.PerClaim, s.Accuracy*100)

	ordered := append([]*core.Outcome(nil), r.Outcomes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ClaimID < ordered[j].ClaimID })
	for _, o := range ordered {
		c := byID[o.ClaimID]
		if c == nil {
			continue
		}
		fmt.Fprintf(w, "[%d] %s\n", o.ClaimID, c.Text)
		fmt.Fprintf(w, "    verdict: %s", o.Verdict)
		if o.Query != nil {
			fmt.Fprintf(w, "  value: %.6g\n    query: %s\n", o.Value, o.Query.SQL())
		} else {
			fmt.Fprintln(w)
		}
		if o.HasSuggestion {
			fmt.Fprintf(w, "    suggested correction: %.6g\n", o.Suggestion)
		}
	}
	return nil
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	_ = r.Write(&sb)
	return sb.String()
}

// jsonOutcome is the machine-readable form of one claim's result.
type jsonOutcome struct {
	ClaimID    int      `json:"claim_id"`
	Text       string   `json:"text"`
	Verdict    string   `json:"verdict"`
	Query      string   `json:"query,omitempty"`
	Value      *float64 `json:"value,omitempty"`
	Suggestion *float64 `json:"suggestion,omitempty"`
	Seconds    float64  `json:"crowd_seconds"`
}

// jsonReport is the machine-readable report envelope.
type jsonReport struct {
	Title    string        `json:"title"`
	Claims   int           `json:"claims"`
	Correct  int           `json:"correct"`
	Wrong    int           `json:"incorrect"`
	Skipped  int           `json:"skipped"`
	Seconds  float64       `json:"crowd_seconds"`
	Accuracy float64       `json:"accuracy"`
	Outcomes []jsonOutcome `json:"outcomes"`
}

// WriteJSON renders the report as indented JSON, stable-ordered by claim ID.
func (r *Report) WriteJSON(w io.Writer) error {
	s := r.Summarise()
	byID := make(map[int]*claims.Claim, len(r.Document.Claims))
	for _, c := range r.Document.Claims {
		byID[c.ID] = c
	}
	out := jsonReport{
		Title: r.Document.Title, Claims: s.Total,
		Correct: s.Correct, Wrong: s.Incorrect, Skipped: s.Skipped,
		Seconds: s.Seconds, Accuracy: s.Accuracy,
	}
	ordered := append([]*core.Outcome(nil), r.Outcomes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ClaimID < ordered[j].ClaimID })
	for _, o := range ordered {
		jo := jsonOutcome{ClaimID: o.ClaimID, Verdict: o.Verdict.String(), Seconds: o.Seconds}
		if c := byID[o.ClaimID]; c != nil {
			jo.Text = c.Text
		}
		if o.Query != nil {
			jo.Query = o.Query.SQL()
			v := o.Value
			jo.Value = &v
		}
		if o.HasSuggestion {
			sv := o.Suggestion
			jo.Suggestion = &sv
		}
		out.Outcomes = append(out.Outcomes, jo)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SystemRow is one row of the Table 3 comparison.
type SystemRow struct {
	System  string
	Task    string
	Claims  string
	Query   string
	User    string
	Dataset string
}

// Table3 reproduces the paper's qualitative comparison of data-driven fact
// checking systems.
func Table3() []SystemRow {
	return []SystemRow{
		{"Scrutinizer", "check", "general", "SPA + 100s ops", "crowd", "corpus"},
		{"AggChecker", "check", "explicit", "SPA + 9 ops", "single", "single"},
		{"BriQ", "check", "explicit", "SPA + 6 ops", "single", "single"},
		{"StatSearch", "search", "explicit", "SP", "single", "corpus"},
	}
}

// WriteTable3 renders Table 3 as aligned text.
func WriteTable3(w io.Writer) error {
	rows := Table3()
	if _, err := fmt.Fprintf(w, "%-12s %-7s %-9s %-15s %-7s %s\n",
		"System", "Task", "Claims", "Query", "User", "Dataset"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %-7s %-9s %-15s %-7s %s\n",
			r.System, r.Task, r.Claims, r.Query, r.User, r.Dataset); err != nil {
			return err
		}
	}
	return nil
}
