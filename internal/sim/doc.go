// Package sim drives the two evaluations of the paper's §6 on the
// synthetic world: the user study replica (Figures 5 and 6) and the
// report-scale simulation (Table 2, Figures 7, 8, 9 and 10). The crowd is
// simulated with the §5.1 cost model; see DESIGN.md for the substitution
// rationale.
//
// RunUserStudy replays the 23-claim, 20-minute-per-checker study with
// StudyCostModel (calibrated so manual verification of a study claim costs
// about two minutes). RunSimulation replays the full-report comparison of
// Manual vs Sequential vs Scrutinizer under SimCostModel, sampling
// classifier accuracy per batch for the figure series; its
// SimulationConfig.Parallelism field fans per-batch claim verification out
// across goroutines (see core.VerifyConfig.Parallelism) without changing
// any simulated result — simulated crowd seconds are accounted per claim,
// so only wall-clock time moves.
//
// BuildEngine assembles a core.Engine from a generated world the same way
// the public facade does, and is reused by benchmarks and cmd/experiments.
package sim
