package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// System names the three compared approaches of §6.2.
type System int

const (
	SystemManual System = iota
	SystemSequential
	SystemScrutinizer
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case SystemManual:
		return "Manual"
	case SystemSequential:
		return "Sequential"
	case SystemScrutinizer:
		return "Scrutinizer"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// SimulationConfig parameterises the §6.2 report-scale simulation.
type SimulationConfig struct {
	// World generates corpus + document (defaults to PaperScale).
	World worldgen.Config
	// TeamSize is the number of fact checkers (paper: 3).
	TeamSize int
	// BatchSize is the retraining granularity (paper: 100).
	BatchSize int
	// SectionReadCost is r(s) in seconds per section skim.
	SectionReadCost float64
	// BaseRead is per-claim reading overhead in seconds per checker.
	BaseRead float64
	// WorkerAccuracy is per-option judgement accuracy.
	WorkerAccuracy float64
	// Seed drives worker jitter.
	Seed int64
	// EvalSampleEvery selects every n-th claim into the held-out
	// accuracy probe (Figures 8 and 9).
	EvalSampleEvery int
	// Systems restricts which systems run (empty = all three).
	Systems []System
	// Parallelism fans batch verification out across goroutines (see
	// core.VerifyConfig.Parallelism); simulated results are identical at
	// any setting, only wall-clock changes. <= 0 uses all CPUs, 1 forces
	// a sequential pass, matching the facade's VerifyOptions semantics.
	Parallelism int
}

// DefaultSimulationConfig mirrors §6.2 at paper scale. Tests use smaller
// worlds.
func DefaultSimulationConfig() SimulationConfig {
	return SimulationConfig{
		World:           worldgen.PaperScale(),
		TeamSize:        3,
		BatchSize:       100,
		SectionReadCost: 120,
		BaseRead:        20,
		WorkerAccuracy:  0.97,
		Seed:            99,
		EvalSampleEvery: 5,
	}
}

func (c SimulationConfig) withDefaults() SimulationConfig {
	d := DefaultSimulationConfig()
	if c.TeamSize <= 0 {
		c.TeamSize = d.TeamSize
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.SectionReadCost < 0 {
		c.SectionReadCost = d.SectionReadCost
	}
	if c.BaseRead < 0 {
		c.BaseRead = d.BaseRead
	}
	if c.WorkerAccuracy <= 0 || c.WorkerAccuracy > 1 {
		c.WorkerAccuracy = d.WorkerAccuracy
	}
	if c.EvalSampleEvery <= 0 {
		c.EvalSampleEvery = d.EvalSampleEvery
	}
	if c.Parallelism <= 0 {
		c.Parallelism = core.DefaultParallelism()
	}
	return c
}

// Sample is one point of the Figure 7/8 time series.
type Sample struct {
	VerifiedClaims int
	// Weeks is accumulated verification time in team-weeks.
	Weeks float64
	// AvgAccuracy is the mean top-1 accuracy of the four classifiers on
	// the held-out probe.
	AvgAccuracy float64
	// PerClassifier is top-1 accuracy per property (Figure 9), indexed
	// by core.PropertyKind.
	PerClassifier [4]float64
}

// SystemResult is one system's simulation outcome.
type SystemResult struct {
	System System
	// Weeks is the Table 2 total time.
	Weeks float64
	// Savings versus the Manual baseline (filled by RunSimulation).
	Savings float64
	// AvgAccuracy and MaxAccuracy summarise classifier accuracy over the
	// verification period (Table 2 rows 3-4); zero for Manual.
	AvgAccuracy, MaxAccuracy float64
	// ComputeMinutes is the wall-clock spent on planning, scheduling and
	// retraining (Table 2 row 5).
	ComputeMinutes float64
	// Series samples the run per batch (Figures 7 and 8).
	Series []Sample
	// ResultAccuracy is the verdict accuracy versus injected errors.
	ResultAccuracy float64
}

// TopKPoint is one point of Figure 10.
type TopKPoint struct {
	K       int
	Average float64
	PerKind [4]float64
}

// SimulationResult aggregates everything §6.2 reports.
type SimulationResult struct {
	Systems []SystemResult
	// TopK is the Figure 10 curve, measured on the Scrutinizer-trained
	// classifiers with a held-out split.
	TopK []TopKPoint
	// Claims is the document size.
	Claims int
}

// SecondsPerWeek converts person-seconds to team-weeks: the team works in
// parallel, eight hours a day, five days a week.
func SecondsPerWeek(teamSize int) float64 {
	return float64(teamSize) * 8 * 3600 * 5
}

// RunSimulation executes the §6.2 comparison. Systems run in a fixed order
// with fresh engines (cold start each).
func RunSimulation(cfg SimulationConfig) (*SimulationResult, error) {
	cfg = cfg.withDefaults()
	w, err := worldgen.Generate(cfg.World)
	if err != nil {
		return nil, err
	}
	systems := cfg.Systems
	if len(systems) == 0 {
		systems = []System{SystemManual, SystemSequential, SystemScrutinizer}
	}
	res := &SimulationResult{Claims: len(w.Document.Claims)}

	var manualWeeks float64
	for _, sys := range systems {
		var sr SystemResult
		var engine *core.Engine
		switch sys {
		case SystemManual:
			sr, err = runManual(w, cfg)
		default:
			sr, engine, err = runAssisted(w, cfg, sys)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: running %s: %w", sys, err)
		}
		if sys == SystemManual {
			manualWeeks = sr.Weeks
		}
		res.Systems = append(res.Systems, sr)

		// Figure 10 uses the fully trained Scrutinizer classifiers.
		if sys == SystemScrutinizer && engine != nil {
			res.TopK = topKCurve(engine, w, cfg)
		}
	}
	// Savings relative to Manual.
	for i := range res.Systems {
		if manualWeeks > 0 && res.Systems[i].System != SystemManual {
			res.Systems[i].Savings = 1 - res.Systems[i].Weeks/manualWeeks
		}
	}
	return res, nil
}

// runManual plays the Manual baseline: every claim is verified from scratch
// by every checker.
func runManual(w *worldgen.World, cfg SimulationConfig) (SystemResult, error) {
	team, err := crowd.NewTeam("M", cfg.TeamSize, cfg.WorkerAccuracy, cfg.Seed)
	if err != nil {
		return SystemResult{}, err
	}
	cost := SimCostModel()
	sr := SystemResult{System: SystemManual}
	var seconds float64
	var samples []Sample
	// The manual process also reads each section once per checker.
	seconds += float64(w.Document.Sections) * cfg.SectionReadCost * float64(cfg.TeamSize)
	for i, c := range w.Document.Claims {
		// Each claim is checked by all checkers (the IEA process).
		truthSQL := c.Truth.Formula // opaque token; manual cost is constant
		for _, worker := range team.Workers {
			ans := worker.ManualVerify(truthSQL, cost)
			seconds += ans.Seconds + cfg.BaseRead*worker.Speed
		}
		if (i+1)%cfg.BatchSize == 0 || i == len(w.Document.Claims)-1 {
			samples = append(samples, Sample{
				VerifiedClaims: i + 1,
				Weeks:          seconds / SecondsPerWeek(cfg.TeamSize),
			})
		}
	}
	sr.Weeks = seconds / SecondsPerWeek(cfg.TeamSize)
	sr.Series = samples
	sr.ResultAccuracy = 1 // accurate manual checkers conclude correctly
	return sr, nil
}

// runAssisted plays Sequential or Scrutinizer through core.Verify.
func runAssisted(w *worldgen.World, cfg SimulationConfig, sys System) (SystemResult, *core.Engine, error) {
	engine, err := BuildEngine(w, SimCostModel(), cfg.Seed)
	if err != nil {
		return SystemResult{}, nil, err
	}
	team, err := crowd.NewTeam("S", cfg.TeamSize, cfg.WorkerAccuracy, cfg.Seed+int64(sys))
	if err != nil {
		return SystemResult{}, nil, err
	}

	probe := evalProbe(w, cfg.EvalSampleEvery)
	ordering := core.OrderILP
	if sys == SystemSequential {
		ordering = core.OrderSequential
	}

	sr := SystemResult{System: sys}
	var series []Sample
	var crowdSeconds float64
	start := time.Now() // wall clock ≈ computation (crowd time is simulated)

	// The Definition 9 variant objective (w_u·u(c) − t(B)) reproduces the
	// paper's dynamic: while classifiers are uncertain every claim is
	// expensive and utility differentiates; once they are confident the
	// cost term dominates and cheap claims are preferred, postponing
	// difficult ones to the end (§6.2's discussion of Figure 8). The
	// weight was calibrated by a sweep; see EXPERIMENTS.md.
	utilityWeight := 5.0
	if sys == SystemSequential {
		utilityWeight = 0
	}
	res, err := engine.Verify(context.Background(), w.Document, team, core.VerifyConfig{
		BatchSize:       cfg.BatchSize,
		SectionReadCost: cfg.SectionReadCost,
		Ordering:        ordering,
		UtilityWeight:   utilityWeight,
		Parallelism:     cfg.Parallelism,
		AfterBatch: func(batch, verified int, outs []*core.Outcome) {
			var batchSecs float64
			for _, o := range outs {
				batchSecs += o.Seconds + cfg.BaseRead*float64(cfg.TeamSize)
			}
			crowdSeconds += batchSecs
			s := Sample{
				VerifiedClaims: verified,
				Weeks:          0, // filled below from the running total
			}
			s.Weeks = (crowdSeconds + sectionSecondsSoFar(batch, w, cfg)) / SecondsPerWeek(cfg.TeamSize)
			s.AvgAccuracy, s.PerClassifier = probeAccuracy(engine, probe)
			series = append(series, s)
		},
	})
	if err != nil {
		return SystemResult{}, nil, err
	}
	wall := time.Since(start)

	// Total crowd time: outcome seconds + per-claim reading + section
	// skims accounted by core (res.Seconds includes screens and skims).
	total := res.Seconds + cfg.BaseRead*float64(cfg.TeamSize)*float64(len(res.Outcomes))
	sr.Weeks = total / SecondsPerWeek(cfg.TeamSize)
	sr.Series = series
	sr.ComputeMinutes = wall.Minutes()
	sr.ResultAccuracy = core.Accuracy(w.Document, res.Outcomes)

	// Accuracy summary over the period.
	var sum, maxA float64
	for _, s := range series {
		sum += s.AvgAccuracy
		if s.AvgAccuracy > maxA {
			maxA = s.AvgAccuracy
		}
	}
	if len(series) > 0 {
		sr.AvgAccuracy = sum / float64(len(series))
	}
	sr.MaxAccuracy = maxA
	return sr, engine, nil
}

// sectionSecondsSoFar approximates accumulated skim time for the series; the
// exact total is in res.Seconds, this keeps the per-batch curve monotone.
func sectionSecondsSoFar(batches int, w *worldgen.World, cfg SimulationConfig) float64 {
	perBatch := float64(w.Document.Sections) / maxF(1, float64(len(w.Document.Claims))/float64(cfg.BatchSize))
	return float64(batches) * perBatch * cfg.SectionReadCost * float64(cfg.TeamSize)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// evalProbe selects the held-out accuracy sample.
func evalProbe(w *worldgen.World, every int) []*claims.Claim {
	var probe []*claims.Claim
	for i, c := range w.Document.Claims {
		if i%every == 0 {
			probe = append(probe, c)
		}
	}
	return probe
}

// probeAccuracy measures top-1 accuracy of the four classifiers on the
// probe using ground-truth labels.
func probeAccuracy(engine *core.Engine, probe []*claims.Claim) (avg float64, per [4]float64) {
	for ki, kind := range core.PropertyKinds() {
		var ex []classifier.Example
		for _, c := range probe {
			label := core.TruthLabel(c.Truth, kind)
			if label == "" {
				continue
			}
			ex = append(ex, classifier.Example{Features: engine.Featurize(c), Label: label})
		}
		per[ki] = engine.Model(kind).Accuracy(ex)
		avg += per[ki]
	}
	avg /= 4
	return avg, per
}

// topKCurve computes Figure 10 on a held-out split: the engine is retrained
// on 80% of the document and evaluated on the remaining 20%.
func topKCurve(engine *core.Engine, w *worldgen.World, cfg SimulationConfig) []TopKPoint {
	var train, test []*claims.Claim
	for i, c := range w.Document.Claims {
		if i%5 == 4 {
			test = append(test, c)
		} else {
			train = append(train, c)
		}
	}
	if err := engine.Train(train); err != nil {
		return nil
	}
	var points []TopKPoint
	for _, k := range []int{1, 3, 5, 10, 15} {
		p := TopKPoint{K: k}
		for ki, kind := range core.PropertyKinds() {
			var ex []classifier.Example
			for _, c := range test {
				label := core.TruthLabel(c.Truth, kind)
				if label == "" {
					continue
				}
				ex = append(ex, classifier.Example{Features: engine.Featurize(c), Label: label})
			}
			p.PerKind[ki] = engine.Model(kind).TopKAccuracy(ex, k)
			p.Average += p.PerKind[ki]
		}
		p.Average /= 4
		points = append(points, p)
	}
	return points
}
