package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// StudyCostModel calibrates the §5.1 constants to the user study: manual
// verification of the (deliberately simple) study claims took on the order
// of two minutes, so s_f = 120s; the remaining constants keep the paper's
// orderings v_p << v_f and s_p << s_f.
func StudyCostModel() planner.CostModel {
	return planner.CostModel{
		VerifyProperty:  2.5,
		VerifyFull:      20,
		SuggestProperty: 13,
		SuggestFull:     120,
	}
}

// SimCostModel calibrates to the report-scale simulation, where claims are
// harder on average: the Manual baseline of Table 2 (4.1 weeks for 1539
// claims and three checkers) implies roughly 380s per claim per checker.
func SimCostModel() planner.CostModel {
	return planner.CostModel{
		VerifyProperty:  4,
		VerifyFull:      39, // nop = sf/vf ≈ 10 options per property, as in §6.2
		SuggestProperty: 35, // nsc = sf/(vp+sp) = 10
		SuggestFull:     390,
	}
}

// BuildEngine fits the feature pipeline on a world and assembles an engine.
func BuildEngine(w *worldgen.World, cost planner.CostModel, seed int64) (*core.Engine, error) {
	var sentences, texts []string
	for _, c := range w.Document.Claims {
		sentences = append(sentences, c.Sentence)
		texts = append(texts, c.Text)
	}
	pipe, err := feature.Fit(sentences, texts, feature.Config{
		Embedding: embed.Config{Dim: 32, Seed: seed},
		MinDF:     2,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Cost = cost
	cfg.Classifier.Seed = seed
	cfg.Classifier.Epochs = 5
	return core.NewEngine(w.Corpus, pipe, cfg)
}

// --- User study (Figures 5 and 6) -----------------------------------------

// StudyConfig parameterises the user-study replica.
type StudyConfig struct {
	// World generates the underlying corpus/document (defaults to
	// worldgen.SmallScale scaled up enough to pick study claims).
	World worldgen.Config
	// NumClaims is the study size (paper: 43, of which 3 are training).
	NumClaims int
	// TopFormulas restricts study claims to the most frequent formulas
	// (paper: 10).
	TopFormulas int
	// Minutes is each checker's time budget (paper: 20).
	Minutes float64
	// ManualCheckers and SystemCheckers are the group sizes (paper: 3
	// and 4).
	ManualCheckers, SystemCheckers int
	// SkipProb is the chance a checker skips a claim.
	SkipProb float64
	// BaseRead is the per-claim reading overhead in seconds, paid in
	// both processes.
	BaseRead float64
	// WorkerAccuracy is the per-option judgement accuracy.
	WorkerAccuracy float64
	// Seed drives worker jitter and skipping.
	Seed int64
}

// DefaultStudyConfig mirrors §6.1.
func DefaultStudyConfig() StudyConfig {
	w := worldgen.SmallScale()
	w.NumClaims = 400
	w.NumFormulas = 40
	w.ErrorRate = 0.25
	return StudyConfig{
		World:          w,
		NumClaims:      43,
		TopFormulas:    10,
		Minutes:        20,
		ManualCheckers: 3,
		SystemCheckers: 4,
		SkipProb:       0.06,
		BaseRead:       15,
		WorkerAccuracy: 0.97,
		Seed:           61,
	}
}

// CheckerResult is one bar of Figure 5.
type CheckerResult struct {
	Name      string
	Manual    bool
	Correct   int
	Incorrect int
	Skipped   int
	Seconds   float64
}

// Processed returns correct+incorrect (the Figure 5 stack height minus
// skips).
func (c CheckerResult) Processed() int { return c.Correct + c.Incorrect }

// ComplexityPoint is one x-position of Figure 6.
type ComplexityPoint struct {
	Complexity  int
	ManualMean  float64
	ManualStd   float64
	SystemMean  float64
	SystemStd   float64
	ManualCount int
	SystemCount int
}

// StudyResult aggregates the user-study replica.
type StudyResult struct {
	Checkers   []CheckerResult
	Complexity []ComplexityPoint
	// ManualAvg and SystemAvg are mean processed claims per checker.
	ManualAvg, SystemAvg float64
	// MajorityAccuracy is the accuracy of 3-checker majority voting in
	// the system group (the paper reports 100%).
	MajorityAccuracy float64
}

// RunUserStudy executes the §6.1 replica.
func RunUserStudy(cfg StudyConfig) (*StudyResult, error) {
	if cfg.NumClaims <= 3 {
		return nil, fmt.Errorf("sim: study needs more than 3 claims")
	}
	w, err := worldgen.Generate(cfg.World)
	if err != nil {
		return nil, err
	}
	engine, err := BuildEngine(w, StudyCostModel(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	// "We trained Scrutinizer with all the annotated statistical claims."
	if err := engine.Train(w.Document.Claims); err != nil {
		return nil, err
	}

	study := selectStudyClaims(w, engine, cfg)
	if len(study) < cfg.NumClaims {
		return nil, fmt.Errorf("sim: only %d claims available for the study, need %d", len(study), cfg.NumClaims)
	}
	study = study[:cfg.NumClaims]
	study = study[3:] // first three are process-training claims

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &StudyResult{}
	budget := cfg.Minutes * 60

	var timings []timing

	// Manual group M1..Mn.
	for i := 0; i < cfg.ManualCheckers; i++ {
		worker, err := crowd.NewWorker(fmt.Sprintf("M%d", i+1), 0.8+rng.Float64()*0.5, cfg.WorkerAccuracy, rng.Int63())
		if err != nil {
			return nil, err
		}
		cr := CheckerResult{Name: worker.Name, Manual: true}
		for _, c := range study {
			if cr.Seconds >= budget {
				break
			}
			if rng.Float64() < cfg.SkipProb {
				cr.Skipped++
				continue
			}
			truthQ, err := engine.TruthQuery(c)
			if err != nil {
				return nil, err
			}
			ans := worker.ManualVerify(truthQ.SQL(), StudyCostModel())
			secs := ans.Seconds + cfg.BaseRead*worker.Speed
			cr.Seconds += secs
			timings = append(timings, timing{c.Complexity(), secs, true})
			if judgeManual(c, ans) {
				cr.Correct++
			} else {
				cr.Incorrect++
			}
		}
		res.Checkers = append(res.Checkers, cr)
	}

	// System group S1..Sn: each checker is a singleton team.
	type sysJudgement struct {
		checker, claim int
		right          bool
	}
	var judgements []sysJudgement
	for i := 0; i < cfg.SystemCheckers; i++ {
		worker, err := crowd.NewWorker(fmt.Sprintf("S%d", i+1), 0.8+rng.Float64()*0.5, cfg.WorkerAccuracy, rng.Int63())
		if err != nil {
			return nil, err
		}
		team := &crowd.Team{Workers: []*crowd.Worker{worker}}
		cr := CheckerResult{Name: worker.Name}
		for ci, c := range study {
			if cr.Seconds >= budget {
				break
			}
			if rng.Float64() < cfg.SkipProb {
				cr.Skipped++
				continue
			}
			out, err := engine.VerifyClaim(context.Background(), c, team)
			if err != nil {
				return nil, err
			}
			secs := out.Seconds + cfg.BaseRead*worker.Speed
			cr.Seconds += secs
			timings = append(timings, timing{c.Complexity(), secs, false})
			right := out.Verdict != core.VerdictSkipped && (out.Verdict == core.VerdictCorrect) == c.Correct
			judgements = append(judgements, sysJudgement{i, ci, right})
			if right {
				cr.Correct++
			} else {
				cr.Incorrect++
			}
		}
		res.Checkers = append(res.Checkers, cr)
	}

	// Majority voting across the first three system checkers.
	votes := map[int][]bool{}
	for _, j := range judgements {
		if j.checker < 3 {
			votes[j.claim] = append(votes[j.claim], j.right)
		}
	}
	maj, majTotal := 0, 0
	for _, vs := range votes {
		if len(vs) < 3 {
			continue
		}
		majTotal++
		right := 0
		for _, v := range vs {
			if v {
				right++
			}
		}
		if right >= 2 {
			maj++
		}
	}
	if majTotal > 0 {
		res.MajorityAccuracy = float64(maj) / float64(majTotal)
	}

	// Averages.
	var mSum, sSum, mN, sN float64
	for _, cr := range res.Checkers {
		if cr.Manual {
			mSum += float64(cr.Processed())
			mN++
		} else {
			sSum += float64(cr.Processed())
			sN++
		}
	}
	if mN > 0 {
		res.ManualAvg = mSum / mN
	}
	if sN > 0 {
		res.SystemAvg = sSum / sN
	}

	// Figure 6: complexity buckets.
	res.Complexity = bucketTimings(timings)
	return res, nil
}

// selectStudyClaims picks claims whose formula is among the TopFormulas most
// frequent ones (the paper's selection rule).
func selectStudyClaims(w *worldgen.World, engine *core.Engine, cfg StudyConfig) []*claims.Claim {
	top := map[string]bool{}
	for _, key := range engine.Library().TopK(cfg.TopFormulas) {
		top[key] = true
	}
	var out []*claims.Claim
	for _, c := range w.Document.Claims {
		if c.Truth == nil {
			continue
		}
		// Match on the canonicalised formula string.
		if key := canonicalFormula(c.Truth.Formula); top[key] {
			out = append(out, c)
		}
	}
	return out
}

func canonicalFormula(src string) string {
	f, err := formula.ParseFormula(src)
	if err != nil {
		return src
	}
	return f.String()
}

// judgeManual scores a manual check: the worker judged right when their
// written query equals the truth (accurate manual checks always conclude
// correctly about the claim).
func judgeManual(c *claims.Claim, ans crowd.Answer) bool {
	// An accurate answer reproduces the truth SQL; then the checker's
	// conclusion matches the claim's actual correctness.
	return ans.Value != "" && ans.Value[len(ans.Value)-1] != '?'
}

// timing is one measured claim verification for Figure 6.
type timing struct {
	complexity int
	seconds    float64
	manual     bool
}

func bucketTimings(timings []timing) []ComplexityPoint {
	type agg struct {
		n    int
		sum  float64
		sum2 float64
	}
	man := map[int]*agg{}
	sys := map[int]*agg{}
	maxC := 0
	for _, t := range timings {
		m := sys
		if t.manual {
			m = man
		}
		a := m[t.complexity]
		if a == nil {
			a = &agg{}
			m[t.complexity] = a
		}
		a.n++
		a.sum += t.seconds
		a.sum2 += t.seconds * t.seconds
		if t.complexity > maxC {
			maxC = t.complexity
		}
	}
	var out []ComplexityPoint
	for c := 0; c <= maxC; c++ {
		ma, sa := man[c], sys[c]
		if ma == nil && sa == nil {
			continue
		}
		p := ComplexityPoint{Complexity: c}
		if ma != nil && ma.n > 0 {
			p.ManualCount = ma.n
			p.ManualMean = ma.sum / float64(ma.n)
			p.ManualStd = stddev(ma.sum, ma.sum2, ma.n)
		}
		if sa != nil && sa.n > 0 {
			p.SystemCount = sa.n
			p.SystemMean = sa.sum / float64(sa.n)
			p.SystemStd = stddev(sa.sum, sa.sum2, sa.n)
		}
		out = append(out, p)
	}
	return out
}

func stddev(sum, sum2 float64, n int) float64 {
	if n < 2 {
		return 0
	}
	mean := sum / float64(n)
	v := sum2/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
