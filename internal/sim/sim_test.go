package sim

import (
	"testing"

	"github.com/repro/scrutinizer/internal/worldgen"
)

func testStudyConfig() StudyConfig {
	cfg := DefaultStudyConfig()
	cfg.World.NumClaims = 150
	cfg.World.NumFormulas = 16
	cfg.NumClaims = 23 // 3 training + 20 study
	return cfg
}

func testSimConfig() SimulationConfig {
	w := worldgen.SmallScale()
	w.NumClaims = 80
	w.NumSections = 8
	return SimulationConfig{
		World:           w,
		TeamSize:        3,
		BatchSize:       20,
		SectionReadCost: 60,
		BaseRead:        10,
		WorkerAccuracy:  1.0,
		Seed:            5,
		EvalSampleEvery: 4,
	}
}

func TestCostModelsValid(t *testing.T) {
	if err := StudyCostModel().Validate(); err != nil {
		t.Error(err)
	}
	if err := SimCostModel().Validate(); err != nil {
		t.Error(err)
	}
	// Simulation shows ~10 options per property, as §6.2 states.
	if n := SimCostModel().NumOptions(); n != 10 {
		t.Errorf("sim nop = %d, want 10", n)
	}
	if n := SimCostModel().NumScreens(); n != 10 {
		t.Errorf("sim nsc = %d, want 10", n)
	}
}

func TestRunUserStudyShape(t *testing.T) {
	res, err := RunUserStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkers) != 7 {
		t.Fatalf("checkers = %d, want 7 (3 manual + 4 system)", len(res.Checkers))
	}
	manual, system := 0, 0
	for _, c := range res.Checkers {
		if c.Manual {
			manual++
		} else {
			system++
		}
		if c.Processed()+c.Skipped == 0 {
			t.Errorf("checker %s did nothing", c.Name)
		}
	}
	if manual != 3 || system != 4 {
		t.Errorf("groups = %d manual, %d system", manual, system)
	}
}

func TestUserStudySystemFasterThanManual(t *testing.T) {
	res, err := RunUserStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: system checkers verify 2-3x more claims in
	// the same 20 minutes (7 vs 23 on average). Require at least 1.5x.
	if res.SystemAvg < res.ManualAvg*1.5 {
		t.Errorf("system avg %.1f should be >= 1.5x manual avg %.1f",
			res.SystemAvg, res.ManualAvg)
	}
}

func TestUserStudyMajorityAccuracy(t *testing.T) {
	cfg := testStudyConfig()
	cfg.WorkerAccuracy = 1.0
	cfg.SkipProb = 0
	res, err := RunUserStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With perfect workers, majority voting yields 100% accuracy as in
	// the paper.
	if res.MajorityAccuracy < 0.99 {
		t.Errorf("majority accuracy = %g, want 1.0", res.MajorityAccuracy)
	}
}

func TestUserStudyComplexityCurve(t *testing.T) {
	res, err := RunUserStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Complexity) == 0 {
		t.Fatal("no complexity buckets")
	}
	// System should be faster than manual at comparable complexity for
	// the majority of buckets where both have data.
	faster, both := 0, 0
	for _, p := range res.Complexity {
		if p.ManualCount > 0 && p.SystemCount > 0 {
			both++
			if p.SystemMean < p.ManualMean {
				faster++
			}
		}
	}
	if both > 0 && faster*2 < both {
		t.Errorf("system faster in only %d of %d buckets", faster, both)
	}
}

func TestUserStudyValidation(t *testing.T) {
	cfg := testStudyConfig()
	cfg.NumClaims = 2
	if _, err := RunUserStudy(cfg); err == nil {
		t.Error("study with 2 claims accepted")
	}
	cfg = testStudyConfig()
	cfg.NumClaims = 100000
	if _, err := RunUserStudy(cfg); err == nil {
		t.Error("study larger than the eligible claim pool accepted")
	}
}

func TestRunSimulationComparesSystems(t *testing.T) {
	res, err := RunSimulation(testSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 3 {
		t.Fatalf("systems = %d", len(res.Systems))
	}
	byName := map[System]SystemResult{}
	for _, s := range res.Systems {
		byName[s.System] = s
		if s.Weeks <= 0 {
			t.Errorf("%s weeks = %g", s.System, s.Weeks)
		}
	}
	man := byName[SystemManual]
	seq := byName[SystemSequential]
	scr := byName[SystemScrutinizer]
	// Headline shape of Table 2: both assisted systems beat Manual.
	if seq.Weeks >= man.Weeks {
		t.Errorf("Sequential %.2f weeks should beat Manual %.2f", seq.Weeks, man.Weeks)
	}
	if scr.Weeks >= man.Weeks {
		t.Errorf("Scrutinizer %.2f weeks should beat Manual %.2f", scr.Weeks, man.Weeks)
	}
	if scr.Savings <= 0 || seq.Savings <= 0 {
		t.Error("savings should be positive for assisted systems")
	}
	// Result accuracy with perfect workers.
	if scr.ResultAccuracy < 0.95 {
		t.Errorf("Scrutinizer result accuracy = %g", scr.ResultAccuracy)
	}
	// Series are monotone in verified claims and weeks.
	for _, s := range res.Systems {
		for i := 1; i < len(s.Series); i++ {
			if s.Series[i].VerifiedClaims < s.Series[i-1].VerifiedClaims {
				t.Errorf("%s series not monotone in claims", s.System)
			}
			if s.Series[i].Weeks < s.Series[i-1].Weeks {
				t.Errorf("%s series not monotone in weeks", s.System)
			}
		}
	}
	// Figure 10 curve present and non-decreasing in k.
	if len(res.TopK) == 0 {
		t.Fatal("no top-k curve")
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Average < res.TopK[i-1].Average-1e-9 {
			t.Errorf("top-k curve decreasing at k=%d", res.TopK[i].K)
		}
	}
}

func TestSimulationSubsetOfSystems(t *testing.T) {
	cfg := testSimConfig()
	cfg.Systems = []System{SystemManual}
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 1 || res.Systems[0].System != SystemManual {
		t.Errorf("systems = %+v", res.Systems)
	}
	if res.Systems[0].ResultAccuracy != 1 {
		t.Error("manual baseline accuracy should be 1")
	}
}

func TestSystemString(t *testing.T) {
	if SystemManual.String() != "Manual" || SystemSequential.String() != "Sequential" ||
		SystemScrutinizer.String() != "Scrutinizer" {
		t.Error("system names wrong")
	}
	if System(9).String() == "" {
		t.Error("unknown system should print")
	}
}

func TestSecondsPerWeek(t *testing.T) {
	if got := SecondsPerWeek(3); got != 3*8*3600*5 {
		t.Errorf("SecondsPerWeek(3) = %g", got)
	}
}

func TestClassifierAccuracyImprovesOverRun(t *testing.T) {
	cfg := testSimConfig()
	cfg.Systems = []System{SystemScrutinizer}
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := res.Systems[0].Series
	if len(series) < 2 {
		t.Fatalf("series too short: %d", len(series))
	}
	first, last := series[0].AvgAccuracy, series[len(series)-2].AvgAccuracy
	if last <= first {
		t.Errorf("accuracy should improve over the run: first=%g later=%g", first, last)
	}
}
