package store

import (
	"time"

	"github.com/repro/scrutinizer/internal/obs"
)

// Monitored wraps a Store with metrics: append counts, errors and fsync
// latency are timed at the call boundary, recovery (Replay) duration is
// recorded, and the inner store's own Stats() snapshot is mirrored into
// gauges at scrape time. The wrapper adds one time.Now pair per append —
// noise next to the fsync it measures — and changes no behavior, so the
// daemon can keep a handle to the inner store for Close.
type Monitored struct {
	inner Store

	appends   *obs.Counter
	appendErr *obs.Counter
	appendSec *obs.Histogram
	recovery  *obs.Gauge
}

// Monitor wraps st and registers its metrics on reg. The scrape hook added
// here reads st.Stats() (cheap: in-memory counters guarded by the store's
// own lock) so journal size, record count and snapshot bytes are current
// on every scrape without polling.
func Monitor(st Store, reg *obs.Registry) *Monitored {
	m := &Monitored{
		inner:     st,
		appends:   reg.NewCounter("scrutinizer_store_appends_total", "Journal records appended (successfully) since process start."),
		appendErr: reg.NewCounter("scrutinizer_store_append_errors_total", "Journal appends that returned an error."),
		appendSec: reg.NewHistogram("scrutinizer_store_append_seconds", "Journal append latency including fsync.", obs.ExpBuckets(0.0001, 4, 10)),
		recovery:  reg.NewGauge("scrutinizer_store_recovery_seconds", "Wall-clock duration of the last journal replay (crash recovery)."),
	}
	records := reg.NewGauge("scrutinizer_store_journal_records", "Intact journal records in the store.")
	journalBytes := reg.NewGauge("scrutinizer_store_journal_bytes", "Journal size in bytes.")
	snapshots := reg.NewGauge("scrutinizer_store_snapshots", "Stored model snapshots.")
	snapshotBytes := reg.NewGauge("scrutinizer_store_snapshot_bytes", "Total size of stored snapshots in bytes.")
	tornTail := reg.NewGauge("scrutinizer_store_torn_tail_recovered", "1 when opening the journal truncated a torn tail, else 0.")
	reg.OnScrape(func() {
		st := m.inner.Stats()
		records.Set(float64(st.Records))
		journalBytes.Set(float64(st.JournalBytes))
		snapshots.Set(float64(st.Snapshots))
		snapshotBytes.Set(float64(st.SnapshotBytes))
		if st.TornTailRecovered {
			tornTail.Set(1)
		} else {
			tornTail.Set(0)
		}
	})
	return m
}

// Inner returns the wrapped store.
func (m *Monitored) Inner() Store { return m.inner }

// Append implements Store.
func (m *Monitored) Append(rec *Record) error {
	start := time.Now()
	err := m.inner.Append(rec)
	m.appendSec.Observe(time.Since(start).Seconds())
	if err != nil {
		m.appendErr.Inc()
		return err
	}
	m.appends.Inc()
	return nil
}

// Replay implements Store, recording the replay's wall-clock duration as
// the recovery-time metric.
func (m *Monitored) Replay(fn func(*Record) error) error {
	start := time.Now()
	err := m.inner.Replay(fn)
	m.recovery.Set(time.Since(start).Seconds())
	return err
}

// SaveSnapshot implements Store.
func (m *Monitored) SaveSnapshot(kind, id string, data []byte) error {
	return m.inner.SaveSnapshot(kind, id, data)
}

// LoadSnapshot implements Store.
func (m *Monitored) LoadSnapshot(kind, id string) ([]byte, error) {
	return m.inner.LoadSnapshot(kind, id)
}

// DeleteSnapshot implements Store.
func (m *Monitored) DeleteSnapshot(kind, id string) error {
	return m.inner.DeleteSnapshot(kind, id)
}

// Stats implements Store.
func (m *Monitored) Stats() Stats { return m.inner.Stats() }

// Close implements Store.
func (m *Monitored) Close() error { return m.inner.Close() }
