package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(op Op, corpus string, payload string) *Record {
	rec := &Record{Op: op, Corpus: corpus}
	if payload != "" {
		rec.Payload = []byte(payload)
	}
	return rec
}

func appendAll(t *testing.T, s Store, recs ...*Record) {
	t.Helper()
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Op, err)
		}
	}
}

func replayAll(t *testing.T, s Store) []*Record {
	t.Helper()
	var got []*Record
	if err := s.Replay(func(rec *Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func checkRecords(t *testing.T, got []*Record, want ...*Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Seq != uint64(i)+1 {
			t.Errorf("record %d: Seq = %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Op != want[i].Op || rec.Corpus != want[i].Corpus {
			t.Errorf("record %d: (%s, %q), want (%s, %q)", i, rec.Op, rec.Corpus, want[i].Op, want[i].Corpus)
		}
		if !bytes.Equal(rec.Payload, want[i].Payload) {
			t.Errorf("record %d: payload %q, want %q", i, rec.Payload, want[i].Payload)
		}
	}
}

// storeContract runs the behavior every Store implementation must share.
func storeContract(t *testing.T, open func(t *testing.T) Store) {
	t.Run("AppendReplay", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		recs := []*Record{
			testRecord(OpCorpusCreate, "c1", `{"relations":[]}`),
			testRecord(OpRelationPut, "c1", `{"name":"r","csv":"k\nA\n"}`),
			testRecord(OpCorpusDelete, "c1", ""),
		}
		appendAll(t, s, recs...)
		checkRecords(t, replayAll(t, s), recs...)
		if st := s.Stats(); st.Records != 3 || st.JournalBytes <= 0 {
			t.Errorf("Stats = %+v, want 3 records and positive bytes", st)
		}
	})

	t.Run("SeqAssigned", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		rec := testRecord(OpCorpusCreate, "c1", "")
		appendAll(t, s, rec)
		if rec.Seq != 1 {
			t.Errorf("Append assigned Seq %d, want 1", rec.Seq)
		}
	})

	t.Run("Snapshots", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if _, err := s.LoadSnapshot("verifier", "v1"); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("LoadSnapshot on empty store: %v, want ErrNoSnapshot", err)
		}
		if err := s.SaveSnapshot("verifier", "v1", []byte("blob-1")); err != nil {
			t.Fatalf("SaveSnapshot: %v", err)
		}
		if err := s.SaveSnapshot("verifier", "v1", []byte("blob-2")); err != nil {
			t.Fatalf("SaveSnapshot replace: %v", err)
		}
		data, err := s.LoadSnapshot("verifier", "v1")
		if err != nil || string(data) != "blob-2" {
			t.Fatalf("LoadSnapshot = %q, %v; want blob-2", data, err)
		}
		if st := s.Stats(); st.Snapshots != 1 || st.SnapshotBytes != int64(len("blob-2")) {
			t.Errorf("Stats = %+v, want 1 snapshot of %d bytes", st, len("blob-2"))
		}
		if err := s.DeleteSnapshot("verifier", "v1"); err != nil {
			t.Fatalf("DeleteSnapshot: %v", err)
		}
		if err := s.DeleteSnapshot("verifier", "v1"); err != nil {
			t.Fatalf("DeleteSnapshot absent: %v, want nil", err)
		}
		if _, err := s.LoadSnapshot("verifier", "v1"); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("LoadSnapshot after delete: %v, want ErrNoSnapshot", err)
		}
	})

	t.Run("ClosedRejectsWrites", func(t *testing.T) {
		s := open(t)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := s.Append(testRecord(OpCorpusCreate, "c1", "")); !errors.Is(err, ErrClosed) {
			t.Errorf("Append after Close: %v, want ErrClosed", err)
		}
		if err := s.SaveSnapshot("verifier", "v1", nil); !errors.Is(err, ErrClosed) {
			t.Errorf("SaveSnapshot after Close: %v, want ErrClosed", err)
		}
	})
}

func TestMemoryStore(t *testing.T) {
	storeContract(t, func(t *testing.T) Store { return NewMemoryStore() })
}

func TestFileStore(t *testing.T) {
	storeContract(t, func(t *testing.T) Store {
		s, err := OpenFileStore(t.TempDir())
		if err != nil {
			t.Fatalf("OpenFileStore: %v", err)
		}
		return s
	})
}

func TestMemoryStoreIsolatesCallerRecords(t *testing.T) {
	s := NewMemoryStore()
	rec := testRecord(OpRelationPut, "c1", `{"name":"r"}`)
	appendAll(t, s, rec)
	rec.Payload[2] = 'X' // mutate after append; the store must hold a copy
	got := replayAll(t, s)
	if string(got[0].Payload) != `{"name":"r"}` {
		t.Errorf("store aliased caller payload: %q", got[0].Payload)
	}
}

func TestFileStoreReopenPreservesJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	recs := []*Record{
		testRecord(OpCorpusCreate, "c1", ""),
		testRecord(OpRelationPut, "c1", `{"name":"r","csv":"k\n"}`),
	}
	appendAll(t, s, recs...)
	if err := s.SaveSnapshot("verifier", "v1", []byte("model")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	s.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	checkRecords(t, replayAll(t, s2), recs...)
	if st := s2.Stats(); st.TornTailRecovered {
		t.Error("clean reopen reported a torn tail")
	}
	data, err := s2.LoadSnapshot("verifier", "v1")
	if err != nil || string(data) != "model" {
		t.Fatalf("LoadSnapshot after reopen = %q, %v", data, err)
	}
	// Appends continue the sequence.
	next := testRecord(OpCorpusDelete, "c1", "")
	appendAll(t, s2, next)
	if next.Seq != 3 {
		t.Errorf("post-reopen Seq = %d, want 3", next.Seq)
	}
}

func TestFileStoreTruncatesTornTail(t *testing.T) {
	for _, cut := range []struct {
		name  string
		bytes int // bytes of the torn frame to keep
	}{
		{"MidHeader", 3},
		{"MidPayload", frameHeaderLen + 5},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenFileStore(dir)
			if err != nil {
				t.Fatalf("OpenFileStore: %v", err)
			}
			keep := testRecord(OpCorpusCreate, "c1", `{"relations":[]}`)
			appendAll(t, s, keep)
			s.Close()

			// Simulate a crash mid-append: write part of a valid frame.
			torn, err := AppendRecord(nil, testRecord(OpRelationPut, "c1", `{"name":"r","csv":"k\nA\n"}`))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, journalName)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(torn[:cut.bytes]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2, err := OpenFileStore(dir)
			if err != nil {
				t.Fatalf("reopen over torn tail: %v", err)
			}
			defer s2.Close()
			checkRecords(t, replayAll(t, s2), keep)
			if st := s2.Stats(); !st.TornTailRecovered {
				t.Error("Stats did not report the recovered torn tail")
			}
			// The journal file itself must have been truncated.
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() != s2.Stats().JournalBytes {
				t.Errorf("journal file is %d bytes, stats say %d", info.Size(), s2.Stats().JournalBytes)
			}
			// And new appends after recovery are readable.
			next := testRecord(OpCorpusDelete, "c1", "")
			appendAll(t, s2, next)
			checkRecords(t, replayAll(t, s2), keep, next)
		})
	}
}

func TestFileStoreTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	keep := testRecord(OpCorpusCreate, "c1", "")
	appendAll(t, s, keep)
	s.Close()

	// A complete frame whose checksum lies.
	frame, err := AppendRecord(nil, testRecord(OpRelationPut, "c1", `{"name":"r"}`))
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(frame[4:8], binary.LittleEndian.Uint32(frame[4:8])^0xdeadbeef)
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen over corrupt tail: %v", err)
	}
	defer s2.Close()
	checkRecords(t, replayAll(t, s2), keep)
	if !s2.Stats().TornTailRecovered {
		t.Error("Stats did not report the recovered corrupt tail")
	}
}

func TestFaultyStoreCutsAfterBudget(t *testing.T) {
	inner := NewMemoryStore()
	s := NewFaulty(inner, 2, false)
	appendAll(t, s, testRecord(OpCorpusCreate, "c1", ""), testRecord(OpRelationPut, "c1", `{"name":"r"}`))
	if s.Tripped() {
		t.Fatal("fault tripped before the budget was spent")
	}
	err := s.Append(testRecord(OpCorpusDelete, "c1", ""))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("third append: %v, want ErrInjected", err)
	}
	if !s.Tripped() {
		t.Fatal("fault did not report tripped")
	}
	if err := s.SaveSnapshot("verifier", "v1", nil); !errors.Is(err, ErrInjected) {
		t.Errorf("SaveSnapshot after trip: %v, want ErrInjected", err)
	}
	// Only the two acknowledged records survive.
	if got := replayAll(t, s); len(got) != 2 {
		t.Fatalf("replayed %d records after the cut, want 2", len(got))
	}
}

func TestFaultyStoreTornWrite(t *testing.T) {
	dir := t.TempDir()
	inner, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewFaulty(inner, 1, true)
	keep := testRecord(OpCorpusCreate, "c1", "")
	appendAll(t, s, keep)
	if err := s.Append(testRecord(OpRelationPut, "c1", `{"name":"r","csv":"k\nA\n"}`)); !errors.Is(err, ErrInjected) {
		t.Fatalf("cut append: %v, want ErrInjected", err)
	}
	inner.Close()

	// The journal now ends in torn bytes; reopening must truncate them.
	info, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen after torn cut: %v", err)
	}
	defer s2.Close()
	if !s2.Stats().TornTailRecovered {
		t.Error("reopen did not report a torn tail — the injection left no torn bytes")
	}
	if s2.Stats().JournalBytes >= info.Size() {
		t.Errorf("journal not truncated: %d bytes, was %d", s2.Stats().JournalBytes, info.Size())
	}
	checkRecords(t, replayAll(t, s2), keep)
}

func TestMemoryCloneWithPrefix(t *testing.T) {
	s := NewMemoryStore()
	recs := []*Record{
		testRecord(OpCorpusCreate, "c1", ""),
		testRecord(OpRelationPut, "c1", `{"name":"r"}`),
		testRecord(OpCorpusDelete, "c1", ""),
	}
	appendAll(t, s, recs...)
	for n := 0; n <= 4; n++ {
		cp := s.CloneWithPrefix(n)
		want := n
		if want > len(recs) {
			want = len(recs)
		}
		if got := replayAll(t, cp); len(got) != want {
			t.Errorf("CloneWithPrefix(%d) replayed %d records, want %d", n, len(got), want)
		}
	}
}

func TestScanJournalStopsAtReaderError(t *testing.T) {
	frame, err := AppendRecord(nil, testRecord(OpCorpusCreate, "c1", ""))
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	off, err := ScanJournal(bytes.NewReader(frame), func(*Record) error {
		calls++
		return io.ErrUnexpectedEOF
	})
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("ScanJournal fn error = %v, want it verbatim", err)
	}
	if calls != 1 || off != int64(len(frame)) {
		t.Errorf("calls=%d off=%d, want 1 and %d", calls, off, len(frame))
	}
}

func TestDecodeRecordRejectsOversizedLength(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordBytes+1)
	_, _, err := DecodeRecord(newBufReader(hdr[:]))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: %v, want ErrCorrupt", err)
	}
}

func TestDecodeRecordChecksumUsesCastagnoli(t *testing.T) {
	// Pin the table choice: a frame checksummed with IEEE must not decode.
	payload := []byte(`{"op":"corpus.create"}`)
	var frame []byte
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	frame = append(append(frame, hdr[:]...), payload...)
	if _, _, err := DecodeRecord(newBufReader(frame)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("IEEE-checksummed frame decoded: %v, want ErrCorrupt", err)
	}
}
