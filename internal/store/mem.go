package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed reports a write against a closed store.
var ErrClosed = errors.New("store: closed")

// Memory is a Store held entirely in memory. It honours the full journal
// contract (append order, deep-copied records, snapshot keys) without any
// durability — it exists for tests and for running the service "as before"
// when no data directory is configured.
type Memory struct {
	mu      sync.Mutex
	records []*Record
	bytes   int64
	snaps   map[string][]byte
	last    time.Time
	closed  bool
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *Memory {
	return &Memory{snaps: make(map[string][]byte)}
}

func (m *Memory) Append(rec *Record) error {
	// Encode outside the critical section only to size-check; the frame
	// bytes are discarded, memory keeps the decoded record.
	frame, err := AppendRecord(nil, rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	cp := rec.clone()
	cp.Seq = uint64(len(m.records)) + 1
	m.records = append(m.records, cp)
	m.bytes += int64(len(frame))
	m.last = time.Now()
	rec.Seq = cp.Seq
	return nil
}

func (m *Memory) Replay(fn func(*Record) error) error {
	m.mu.Lock()
	recs := make([]*Record, len(m.records))
	copy(recs, m.records)
	m.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec.clone()); err != nil {
			return err
		}
	}
	return nil
}

func (m *Memory) SaveSnapshot(kind, id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.snaps[snapKey(kind, id)] = append([]byte(nil), data...)
	return nil
}

func (m *Memory) LoadSnapshot(kind, id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snaps[snapKey(kind, id)]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSnapshot, kind, id)
	}
	return append([]byte(nil), data...), nil
}

func (m *Memory) DeleteSnapshot(kind, id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.snaps, snapKey(kind, id))
	return nil
}

func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Backend:      "memory",
		Records:      uint64(len(m.records)),
		JournalBytes: m.bytes,
		Snapshots:    len(m.snaps),
		LastAppend:   m.last,
	}
	for _, data := range m.snaps {
		st.SnapshotBytes += int64(len(data))
	}
	return st
}

func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// CloneWithPrefix returns a fresh Memory store holding the first n journal
// records (and no snapshots). Recovery property tests use it to assert that
// any journal prefix recovers to the same state as replaying that prefix
// against a fresh service.
func (m *Memory) CloneWithPrefix(n int) *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > len(m.records) {
		n = len(m.records)
	}
	cp := NewMemoryStore()
	for _, rec := range m.records[:n] {
		cp.records = append(cp.records, rec.clone())
	}
	return cp
}

func snapKey(kind, id string) string { return kind + "/" + id }
