package store

import (
	"errors"
	"time"
)

// ErrNoSnapshot reports a LoadSnapshot miss.
var ErrNoSnapshot = errors.New("store: no such snapshot")

// Stats is a point-in-time store summary, surfaced by /healthz.
type Stats struct {
	// Backend names the implementation ("file", "memory", "faulty").
	Backend string `json:"backend"`
	// Records is the number of intact journal records.
	Records uint64 `json:"journal_records"`
	// JournalBytes is the journal size in bytes.
	JournalBytes int64 `json:"journal_bytes"`
	// Snapshots counts stored model snapshots; SnapshotBytes their total
	// size.
	Snapshots     int   `json:"snapshots"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// LastAppend is when the journal last grew (zero before any append
	// this process).
	LastAppend time.Time `json:"last_append,omitempty"`
	// TornTailRecovered reports that opening the store found — and
	// truncated — a torn or corrupt journal tail (a crash mid-append).
	TornTailRecovered bool `json:"torn_tail_recovered,omitempty"`
}

// Store is the pluggable persistence backend: an append-only journal of
// accepted mutations plus keyed snapshot blobs. Append must be durable
// before it returns (for backends with a durability story); Replay streams
// the journal in append order. All methods are safe for concurrent use.
type Store interface {
	// Append durably journals one record, assigning Record.Seq.
	Append(rec *Record) error
	// Replay streams every intact journal record in order. An error from
	// fn aborts the replay and is returned.
	Replay(fn func(*Record) error) error
	// SaveSnapshot stores (or replaces) an opaque blob under (kind, id).
	SaveSnapshot(kind, id string, data []byte) error
	// LoadSnapshot returns the blob under (kind, id), or ErrNoSnapshot.
	LoadSnapshot(kind, id string) ([]byte, error)
	// DeleteSnapshot removes the blob under (kind, id); removing an
	// absent snapshot is a no-op.
	DeleteSnapshot(kind, id string) error
	// Stats summarises the store.
	Stats() Stats
	// Close releases the backend. A closed store rejects writes.
	Close() error
}
