// Package store is the pluggable persistence layer behind the durable
// multi-tenant service: a write-ahead journal of accepted mutations plus a
// side store of model snapshots, abstracted as the Store interface so the
// registry can run against an embedded single-node backend (File), an
// in-memory backend for tests (Memory), or a fault-injecting wrapper for
// crash-recovery tests (Faulty).
//
// # Journal
//
// The journal is an ordered log of Records. Each record names one accepted
// mutation of the service registry — a corpus created with its relation
// dump, a relation uploaded or dropped, a verifier trained from a journaled
// training document, a session created with its document, or one session
// answer — with an op-specific JSON payload. The service appends a record
// after the mutation is applied and before the request is acknowledged, so
// on restart, replaying the journal in order rebuilds exactly the
// acknowledged state: corpora are reconstructed from their relation CSV,
// verifiers are re-materialized from their latest model snapshot (or
// deterministically retrained from the journaled training document when no
// snapshot survives), and live sessions are re-parked by answer-log replay.
//
// # Record framing
//
// On disk each record is framed as a little-endian uint32 payload length,
// a CRC32-C checksum of the payload, and the JSON payload itself. The
// framing makes torn writes detectable: a crash mid-append leaves a tail
// that fails the length or checksum test, and opening the store truncates
// the journal back to the last intact record — the torn record was never
// acknowledged, so dropping it is exactly the write-ahead contract. The
// codec never half-applies: DecodeRecord either returns a fully decoded
// record or an error (io.EOF at a clean end, ErrTorn for a truncated tail,
// ErrCorrupt for checksum/format damage), and it never panics on arbitrary
// input (pinned by FuzzJournalDecode).
//
// # Snapshots
//
// SaveSnapshot/LoadSnapshot store opaque blobs keyed by (kind, id) — the
// service uses them for encoded verifier model snapshots so recovery can
// skip retraining. Snapshots are an optimization, not the source of truth:
// deleting them only makes the next recovery fall back to deterministic
// retraining from the journal.
package store
