package store

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the failure surfaced by a Faulty store once its write
// budget is exhausted. Crash-recovery tests match it to know the cut was
// the injected one and not a real bug.
var ErrInjected = errors.New("store: injected fault")

// Faulty wraps a Store and fails every write once a configured number of
// journal appends has succeeded, simulating a crash. With torn-write mode
// on, the cut append first writes a deliberately truncated frame to the
// underlying journal — the on-disk shape of a process dying mid-write — so
// recovery also has to exercise tail truncation.
type Faulty struct {
	inner Store

	mu        sync.Mutex
	remaining int
	torn      bool
	tripped   bool
}

// tornWriter is implemented by stores that can persist a torn journal tail
// on demand (File does; Memory has no disk to tear).
type tornWriter interface {
	appendTorn(rec *Record) error
}

// NewFaulty wraps inner so the first failAfter journal appends succeed and
// every write after that fails with ErrInjected. If torn is true, the
// failing append leaves a truncated frame in the underlying journal before
// reporting the fault.
func NewFaulty(inner Store, failAfter int, torn bool) *Faulty {
	return &Faulty{inner: inner, remaining: failAfter, torn: torn}
}

// Tripped reports whether the injected fault has fired.
func (s *Faulty) Tripped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

func (s *Faulty) Append(rec *Record) error {
	s.mu.Lock()
	if s.remaining > 0 {
		s.remaining--
		s.mu.Unlock()
		return s.inner.Append(rec)
	}
	first := !s.tripped
	s.tripped = true
	torn := s.torn && first
	s.mu.Unlock()
	if torn {
		if tw, ok := s.inner.(tornWriter); ok {
			if err := tw.appendTorn(rec); err != nil {
				return fmt.Errorf("%w (torn-write injection failed: %v)", ErrInjected, err)
			}
		}
	}
	return fmt.Errorf("%w: journal append", ErrInjected)
}

func (s *Faulty) Replay(fn func(*Record) error) error { return s.inner.Replay(fn) }

func (s *Faulty) SaveSnapshot(kind, id string, data []byte) error {
	s.mu.Lock()
	tripped := s.tripped || s.remaining <= 0
	s.mu.Unlock()
	if tripped {
		return fmt.Errorf("%w: snapshot save", ErrInjected)
	}
	return s.inner.SaveSnapshot(kind, id, data)
}

func (s *Faulty) LoadSnapshot(kind, id string) ([]byte, error) {
	return s.inner.LoadSnapshot(kind, id)
}

func (s *Faulty) DeleteSnapshot(kind, id string) error {
	s.mu.Lock()
	tripped := s.tripped || s.remaining <= 0
	s.mu.Unlock()
	if tripped {
		return fmt.Errorf("%w: snapshot delete", ErrInjected)
	}
	return s.inner.DeleteSnapshot(kind, id)
}

func (s *Faulty) Stats() Stats {
	st := s.inner.Stats()
	st.Backend = "faulty(" + st.Backend + ")"
	return st
}

func (s *Faulty) Close() error { return s.inner.Close() }
