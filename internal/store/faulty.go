package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the failure surfaced by a Faulty store once its write
// budget is exhausted. Crash-recovery tests match it to know the cut was
// the injected one and not a real bug.
var ErrInjected = errors.New("store: injected fault")

// Faulty wraps a Store and injects the failure modes the chaos harness
// needs: exhausting a write budget (simulating a crash), failing reads
// (simulating a corrupt or unreachable journal during recovery), and
// adding latency to every operation (simulating a slow disk, which is how
// tests hold a daemon in the "recovering" state long enough to probe it).
// With torn-write mode on, the cut append first writes a deliberately
// truncated frame to the underlying journal — the on-disk shape of a
// process dying mid-write — so recovery also has to exercise tail
// truncation.
type Faulty struct {
	inner Store

	failReads bool
	latency   time.Duration

	mu        sync.Mutex
	remaining int
	torn      bool
	tripped   bool
}

// FaultPlan configures a Faulty store. The zero value injects nothing
// except an immediately-exhausted write budget; set FailAppendsAfter to a
// large value for a write-healthy store with read or latency faults only.
type FaultPlan struct {
	// FailAppendsAfter lets this many journal appends succeed before every
	// write fails with ErrInjected.
	FailAppendsAfter int
	// Torn makes the first failing append leave a truncated frame in the
	// underlying journal before reporting the fault.
	Torn bool
	// FailReads makes Replay and LoadSnapshot fail with ErrInjected —
	// recovery-time faults rather than write-time ones.
	FailReads bool
	// Latency is added to every store operation, reads included. Recovery
	// replay pays it per record, which is what keeps a booting daemon
	// not-ready long enough for readiness-probe tests to observe it.
	Latency time.Duration
}

// tornWriter is implemented by stores that can persist a torn journal tail
// on demand (File does; Memory has no disk to tear).
type tornWriter interface {
	appendTorn(rec *Record) error
}

// NewFaulty wraps inner so the first failAfter journal appends succeed and
// every write after that fails with ErrInjected. If torn is true, the
// failing append leaves a truncated frame in the underlying journal before
// reporting the fault.
func NewFaulty(inner Store, failAfter int, torn bool) *Faulty {
	return NewFaultyPlan(inner, FaultPlan{FailAppendsAfter: failAfter, Torn: torn})
}

// NewFaultyPlan wraps inner with the full fault plan.
func NewFaultyPlan(inner Store, plan FaultPlan) *Faulty {
	return &Faulty{
		inner:     inner,
		remaining: plan.FailAppendsAfter,
		torn:      plan.Torn,
		failReads: plan.FailReads,
		latency:   plan.Latency,
	}
}

// delay sleeps the configured operation latency.
func (s *Faulty) delay() {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
}

// Tripped reports whether the injected fault has fired.
func (s *Faulty) Tripped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

func (s *Faulty) Append(rec *Record) error {
	s.delay()
	s.mu.Lock()
	if s.remaining > 0 {
		s.remaining--
		s.mu.Unlock()
		return s.inner.Append(rec)
	}
	first := !s.tripped
	s.tripped = true
	torn := s.torn && first
	s.mu.Unlock()
	if torn {
		if tw, ok := s.inner.(tornWriter); ok {
			if err := tw.appendTorn(rec); err != nil {
				return fmt.Errorf("%w (torn-write injection failed: %v)", ErrInjected, err)
			}
		}
	}
	return fmt.Errorf("%w: journal append", ErrInjected)
}

// Replay pays the configured latency once per record, not once per call:
// a slow disk is slow for every frame, and per-record delay is what lets
// tests hold a recovering daemon in the not-ready state deterministically.
func (s *Faulty) Replay(fn func(*Record) error) error {
	if s.failReads {
		return fmt.Errorf("%w: journal replay", ErrInjected)
	}
	return s.inner.Replay(func(rec *Record) error {
		s.delay()
		return fn(rec)
	})
}

func (s *Faulty) SaveSnapshot(kind, id string, data []byte) error {
	s.mu.Lock()
	tripped := s.tripped || s.remaining <= 0
	s.mu.Unlock()
	if tripped {
		return fmt.Errorf("%w: snapshot save", ErrInjected)
	}
	return s.inner.SaveSnapshot(kind, id, data)
}

func (s *Faulty) LoadSnapshot(kind, id string) ([]byte, error) {
	s.delay()
	if s.failReads {
		return nil, fmt.Errorf("%w: snapshot load", ErrInjected)
	}
	return s.inner.LoadSnapshot(kind, id)
}

func (s *Faulty) DeleteSnapshot(kind, id string) error {
	s.mu.Lock()
	tripped := s.tripped || s.remaining <= 0
	s.mu.Unlock()
	if tripped {
		return fmt.Errorf("%w: snapshot delete", ErrInjected)
	}
	return s.inner.DeleteSnapshot(kind, id)
}

func (s *Faulty) Stats() Stats {
	st := s.inner.Stats()
	st.Backend = "faulty(" + st.Backend + ")"
	return st
}

func (s *Faulty) Close() error { return s.inner.Close() }
