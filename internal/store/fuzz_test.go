package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func newBufReader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

// FuzzJournalDecode pins the codec's crash-safety contract on arbitrary
// bytes: decoding never panics, never allocates past the record cap, and
// classifies every journal as a clean prefix plus (optionally) one
// torn/corrupt tail — the offset it reports always points at a frame
// boundary that re-decodes cleanly.
func FuzzJournalDecode(f *testing.F) {
	// Seed corpus: an empty journal, intact journals of one and two
	// records, every truncation point of a valid frame, and targeted
	// header damage.
	frame, err := AppendRecord(nil, &Record{Seq: 1, Op: OpCorpusCreate, Corpus: "c1", Payload: []byte(`{"relations":[]}`)})
	if err != nil {
		f.Fatal(err)
	}
	second, err := AppendRecord(nil, &Record{Seq: 2, Op: OpRelationPut, Corpus: "c1", Relation: "r", Payload: []byte(`{"name":"r","csv":"k\nA\n"}`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(frame)
	f.Add(append(append([]byte{}, frame...), second...))
	for cut := 1; cut < len(frame); cut++ {
		f.Add(frame[:cut])
	}
	// Checksum flipped.
	bad := append([]byte{}, frame...)
	bad[4] ^= 0xff
	f.Add(bad)
	// Length field inflated past the cap.
	huge := append([]byte{}, frame...)
	binary.LittleEndian.PutUint32(huge[0:4], maxRecordBytes+1)
	f.Add(huge)
	// Valid frame whose payload is not JSON.
	notJSON := []byte("definitely not json")
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(notJSON)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(notJSON, crcTable))
	f.Add(append(append([]byte{}, hdr[:]...), notJSON...))
	// Intact record followed by garbage.
	f.Add(append(append([]byte{}, frame...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs int
		off, err := ScanJournal(bytes.NewReader(data), func(rec *Record) error {
			if rec == nil {
				t.Fatal("ScanJournal passed a nil record")
			}
			recs++
			return nil
		})
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d outside journal of %d bytes", off, len(data))
		}
		if err != nil && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan verdict %v, want nil, ErrTorn or ErrCorrupt", err)
		}
		if err == nil && off != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", off, len(data))
		}
		// The reported prefix must itself be a clean journal with the
		// same records — this is what file recovery truncates to.
		n2, err2 := ScanJournal(bytes.NewReader(data[:off]), nil)
		if err2 != nil || n2 != off {
			t.Fatalf("prefix [0:%d] does not rescan cleanly: off=%d err=%v", off, n2, err2)
		}
		// Decoding record-by-record agrees with the scan.
		br := newBufReader(data)
		var recs2 int
		for {
			_, _, derr := DecodeRecord(br)
			if derr != nil {
				if !errors.Is(derr, io.EOF) && !errors.Is(derr, ErrTorn) && !errors.Is(derr, ErrCorrupt) {
					t.Fatalf("DecodeRecord verdict %v", derr)
				}
				break
			}
			recs2++
		}
		if recs != recs2 {
			t.Fatalf("ScanJournal saw %d records, DecodeRecord loop saw %d", recs, recs2)
		}
	})
}
