package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

const (
	journalName  = "journal.wal"
	snapshotsDir = "snapshots"
	snapshotExt  = ".snap"
)

// File is the embedded single-node Store: one append-only journal file plus
// a snapshots directory, all under a data directory. Appends are fsynced
// before they return, so an acknowledged mutation survives a crash; torn
// tails from a crash mid-append are detected by the frame checksums and
// truncated away on the next open.
type File struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	buf     []byte
	records uint64
	bytes   int64
	last    time.Time
	torn    bool
	closed  bool
}

// OpenFileStore opens (creating as needed) a file store rooted at dir. If
// the journal has a torn or corrupt tail — a crash mid-append — it is
// truncated back to the last intact record before the store is returned;
// Stats().TornTailRecovered reports that this happened.
func OpenFileStore(dir string) (*File, error) {
	if err := os.MkdirAll(filepath.Join(dir, snapshotsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	st := &File{dir: dir, f: f}
	var count uint64
	off, err := ScanJournal(f, func(*Record) error { count++; return nil })
	if err != nil {
		if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			f.Close()
			return nil, fmt.Errorf("store: scanning journal: %w", err)
		}
		// A damaged tail past the last intact record: the record it
		// belonged to was never acknowledged, so drop it.
		if terr := f.Truncate(off); terr != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn journal tail: %w", terr)
		}
		if serr := f.Sync(); serr != nil {
			f.Close()
			return nil, fmt.Errorf("store: syncing truncated journal: %w", serr)
		}
		st.torn = true
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking journal end: %w", err)
	}
	st.records = count
	st.bytes = off
	return st, nil
}

// Dir returns the store's data directory.
func (s *File) Dir() string { return s.dir }

func (s *File) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	seq := s.records + 1
	cp := *rec
	cp.Seq = seq
	frame, err := AppendRecord(s.buf[:0], &cp)
	if err != nil {
		return err
	}
	s.buf = frame[:0]
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending journal record: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	s.records = seq
	s.bytes += int64(len(frame))
	s.last = time.Now()
	rec.Seq = seq
	return nil
}

func (s *File) Replay(fn func(*Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Replay from a separate handle so the append offset is undisturbed.
	f, err := os.Open(filepath.Join(s.dir, journalName))
	if err != nil {
		return fmt.Errorf("store: opening journal for replay: %w", err)
	}
	defer f.Close()
	_, err = ScanJournal(io.LimitReader(f, s.bytes), fn)
	return err
}

func (s *File) SaveSnapshot(kind, id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	path, err := s.snapshotPath(kind, id)
	if err != nil {
		return err
	}
	// Write-then-rename so a crash mid-save leaves the previous snapshot
	// (or none) rather than a half-written file.
	tmp, err := os.CreateTemp(filepath.Join(s.dir, snapshotsDir), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	return nil
}

func (s *File) LoadSnapshot(kind, id string) ([]byte, error) {
	s.mu.Lock()
	path, err := s.snapshotPath(kind, id)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSnapshot, kind, id)
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	return data, nil
}

func (s *File) DeleteSnapshot(kind, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	path, err := s.snapshotPath(kind, id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: deleting snapshot: %w", err)
	}
	return nil
}

func (s *File) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Backend:           "file",
		Records:           s.records,
		JournalBytes:      s.bytes,
		LastAppend:        s.last,
		TornTailRecovered: s.torn,
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, snapshotsDir))
	if err != nil {
		return st
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotExt) {
			continue
		}
		st.Snapshots++
		if info, err := e.Info(); err == nil {
			st.SnapshotBytes += info.Size()
		}
	}
	return st
}

func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// appendTorn writes a deliberately truncated frame for rec — the first half
// of what Append would have written — simulating a crash mid-append. The
// torn bytes are synced so a subsequent OpenFileStore really sees them.
// Fault-injection only; never called on the normal write path.
func (s *File) appendTorn(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := *rec
	cp.Seq = s.records + 1
	frame, err := AppendRecord(nil, &cp)
	if err != nil {
		return err
	}
	cut := len(frame)/2 + 1
	if cut > len(frame) {
		cut = len(frame)
	}
	if _, err := s.f.Write(frame[:cut]); err != nil {
		return fmt.Errorf("store: writing torn frame: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing torn frame: %w", err)
	}
	// Deliberately leave records/bytes unchanged: the record was not
	// acknowledged and Replay must not see it.
	return nil
}

// snapshotPath maps (kind, id) to a file under snapshots/. Kind and id come
// from validated service identifiers, but the path check keeps a store user
// from escaping the data directory regardless.
func (s *File) snapshotPath(kind, id string) (string, error) {
	name := kind + "-" + id + snapshotExt
	if kind == "" || id == "" || name != filepath.Base(name) || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("store: invalid snapshot key %q/%q", kind, id)
	}
	return filepath.Join(s.dir, snapshotsDir, name), nil
}
