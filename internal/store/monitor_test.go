package store

import (
	"errors"
	"strings"
	"testing"

	"github.com/repro/scrutinizer/internal/obs"
)

func TestMonitoredCounts(t *testing.T) {
	reg := obs.NewRegistry()
	st := Monitor(NewMemoryStore(), reg)

	for i := 0; i < 3; i++ {
		if err := st.Append(&Record{Op: OpRelationPut, Corpus: "c"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SaveSnapshot("model", "m1", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := st.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"scrutinizer_store_appends_total 3",
		"scrutinizer_store_append_errors_total 0",
		"scrutinizer_store_append_seconds_count 3",
		"scrutinizer_store_journal_records 3",
		"scrutinizer_store_snapshots 1",
		"scrutinizer_store_snapshot_bytes 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Replay must have recorded a recovery duration (>= 0 is all we can
	// assert; presence of the series is the contract).
	if !strings.Contains(out, "scrutinizer_store_recovery_seconds") {
		t.Errorf("missing recovery gauge in:\n%s", out)
	}
}

func TestMonitoredAppendErrors(t *testing.T) {
	reg := obs.NewRegistry()
	inner := NewMemoryStore()
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}
	st := Monitor(inner, reg)
	if err := st.Append(&Record{Op: OpRelationPut}); err == nil {
		t.Fatal("append on closed store should fail")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "scrutinizer_store_append_errors_total 1") {
		t.Errorf("error not counted:\n%s", out)
	}
	if !strings.Contains(out, "scrutinizer_store_appends_total 0") {
		t.Errorf("failed append counted as success:\n%s", out)
	}
}

func TestMonitoredPassthrough(t *testing.T) {
	reg := obs.NewRegistry()
	st := Monitor(NewMemoryStore(), reg)
	if st.Inner() == nil {
		t.Fatal("Inner() lost the wrapped store")
	}
	if err := st.SaveSnapshot("k", "id", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadSnapshot("k", "id")
	if err != nil || string(got) != "v" {
		t.Fatalf("LoadSnapshot = %q, %v", got, err)
	}
	if err := st.DeleteSnapshot("k", "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadSnapshot("k", "id"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("expected ErrNoSnapshot, got %v", err)
	}
	if st.Stats().Backend != "memory" {
		t.Fatalf("Stats passthrough broken: %+v", st.Stats())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
