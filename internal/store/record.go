package store

import "encoding/json"

// Op names one journaled mutation kind.
type Op string

// The journaled operations. Every accepted mutation of the service
// registry maps to exactly one op; replaying them in journal order
// rebuilds the acknowledged state.
const (
	// OpCorpusCreate registers a corpus; the payload is a CorpusPayload
	// dump of its relations at creation time (empty for corpora created
	// bare and populated by later OpRelationPut records).
	OpCorpusCreate Op = "corpus.create"
	// OpCorpusDelete drops a corpus and cascades over its verifiers.
	OpCorpusDelete Op = "corpus.delete"
	// OpRelationPut uploads (or replaces) one relation; the payload is a
	// RelationPayload.
	OpRelationPut Op = "relation.put"
	// OpRelationDelete drops one relation from a corpus.
	OpRelationDelete Op = "relation.delete"
	// OpVerifierCreate trains a verifier; the payload (defined by the
	// service layer) carries the training document and model options.
	OpVerifierCreate Op = "verifier.create"
	// OpVerifierDelete drops a verifier.
	OpVerifierDelete Op = "verifier.delete"
	// OpSessionCreate parks an interactive session; the payload (defined
	// by the service layer) carries the document and run options.
	OpSessionCreate Op = "session.create"
	// OpSessionAnswer records one accepted session answer; the payload is
	// the answer JSON. Answers are journaled in apply order (the session
	// lock serializes them), which is what makes replay deterministic.
	OpSessionAnswer Op = "session.answer"
	// OpSessionDelete removes a session (explicit delete or TTL
	// eviction), so replay never resurrects it.
	OpSessionDelete Op = "session.delete"
)

// Record is one journal entry. The resource-ID fields identify what the op
// touches; Payload carries the op-specific body.
type Record struct {
	// Seq is the record's 1-based position in the journal, assigned by
	// the store on Append and restored on Replay.
	Seq uint64 `json:"seq,omitempty"`
	// Op is the mutation kind.
	Op Op `json:"op"`
	// Corpus, Verifier, Session and Relation identify the touched
	// resources (empty when not applicable).
	Corpus   string `json:"corpus,omitempty"`
	Verifier string `json:"verifier,omitempty"`
	Session  string `json:"session,omitempty"`
	Relation string `json:"relation,omitempty"`
	// Payload is the op-specific body (see the payload types).
	Payload json.RawMessage `json:"payload,omitempty"`
}

// clone deep-copies a record so stores never alias caller memory.
func (r *Record) clone() *Record {
	cp := *r
	if r.Payload != nil {
		cp.Payload = append(json.RawMessage(nil), r.Payload...)
	}
	return &cp
}

// RelationPayload is the OpRelationPut body: one relation serialised as
// CSV (first column is the key attribute) plus its free-form metadata.
type RelationPayload struct {
	Name string            `json:"name"`
	CSV  string            `json:"csv"`
	Meta map[string]string `json:"meta,omitempty"`
}

// CorpusPayload is the OpCorpusCreate body: the corpus's relations at
// registration time.
type CorpusPayload struct {
	Relations []RelationPayload `json:"relations,omitempty"`
}
