package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Journal record framing: uint32 little-endian payload length, uint32
// little-endian CRC32-C of the payload, payload JSON. The frame makes torn
// writes (a crash mid-append) detectable so recovery can truncate back to
// the last intact record.

var (
	// ErrTorn marks a journal tail cut mid-record: the frame announces
	// more bytes than the journal holds. Recovery treats it as a crashed
	// append — the record was never acknowledged — and truncates it away.
	ErrTorn = errors.New("store: torn journal record")
	// ErrCorrupt marks a record that is structurally complete but wrong:
	// checksum mismatch, oversized length or malformed JSON. Nothing
	// after a corrupt record can be trusted; recovery truncates from it.
	ErrCorrupt = errors.New("store: corrupt journal record")
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64 and
// arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes caps one record's payload. The largest legitimate record
// wraps a 64 MB document upload; 128 MB leaves headroom while keeping a
// corrupt length field from driving a giant allocation.
const maxRecordBytes = 128 << 20

// frameHeaderLen is the per-record framing overhead in bytes.
const frameHeaderLen = 8

// AppendRecord encodes one record and appends its frame to buf, returning
// the extended slice.
func AppendRecord(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("store: record payload %d bytes exceeds the %d byte cap", len(payload), maxRecordBytes)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// DecodeRecord reads one framed record. It returns io.EOF at a clean end
// (the reader is exactly at a frame boundary), ErrTorn when the journal
// ends mid-frame, and ErrCorrupt for checksum or format damage. It never
// returns a partially decoded record. The int is the number of journal
// bytes the record occupied (0 on any error).
func DecodeRecord(r *bufio.Reader) (*Record, int, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF // clean end at a frame boundary
		}
		return nil, 0, fmt.Errorf("%w: reading frame header: %v", ErrTorn, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, 0, fmt.Errorf("%w: journal ends inside a frame header", ErrTorn)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecordBytes {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds the %d byte cap", ErrCorrupt, n, maxRecordBytes)
	}
	payload := make([]byte, n)
	if rd, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: journal ends %d bytes into a %d byte record", ErrTorn, rd, n)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, 0, fmt.Errorf("%w: checksum %08x, frame says %08x", ErrCorrupt, got, sum)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, 0, fmt.Errorf("%w: payload is not a record: %v", ErrCorrupt, err)
	}
	return &rec, frameHeaderLen + int(n), nil
}

// ScanJournal decodes records from r in order, calling fn for each. It
// returns the byte offset just past the last intact record plus the scan
// verdict: nil on a clean end, ErrTorn/ErrCorrupt (wrapped) when the
// journal's tail is damaged — the caller decides whether to truncate (file
// recovery does) or fail. An error from fn aborts the scan and is returned
// verbatim.
func ScanJournal(r io.Reader, fn func(*Record) error) (int64, error) {
	br := bufio.NewReader(r)
	var off int64
	for {
		rec, n, err := DecodeRecord(br)
		if errors.Is(err, io.EOF) {
			return off, nil
		}
		if err != nil {
			return off, err
		}
		off += int64(n)
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
	}
}
