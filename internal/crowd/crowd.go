// Package crowd simulates the team of human domain experts that Scrutinizer
// coordinates. Workers answer the planner's question screens; their time
// consumption follows the §5.1 cost model (vp, vf, sp, sf), scaled by a
// per-worker speed factor, and their reliability by a per-worker accuracy.
// Majority voting over three workers reproduces the aggregation the paper
// uses in the user study ("with a simple majority voting across any subset
// of three checkers, our system obtains 100% accuracy").
//
// This package substitutes the professional IEA fact checkers of the
// original deployment; see DESIGN.md.
package crowd

import (
	"fmt"
	"math/rand"

	"github.com/repro/scrutinizer/internal/planner"
)

// Answer is a worker's response to one question screen.
type Answer struct {
	// Value is the chosen (or suggested) property value.
	Value string
	// Suggested reports whether the worker had to type the answer
	// because no displayed option was correct.
	Suggested bool
	// Seconds is the time the worker spent on the screen.
	Seconds float64
	// OptionsRead is how many displayed options the worker scanned.
	OptionsRead int
}

// Worker is one simulated domain expert.
type Worker struct {
	// Name identifies the worker in reports (M1, S3, ...).
	Name string
	// Speed scales all time costs (1.0 = the cost model's reference
	// expert; < 1 is faster).
	Speed float64
	// Accuracy is the probability of judging one option correctly
	// (both recognising the true answer and rejecting wrong ones).
	Accuracy float64

	seed int64
	rng  *rand.Rand
}

// NewWorker creates a worker with its own deterministic random stream.
func NewWorker(name string, speed, accuracy float64, seed int64) (*Worker, error) {
	if speed <= 0 {
		return nil, fmt.Errorf("crowd: worker %q speed must be positive, got %g", name, speed)
	}
	if accuracy < 0 || accuracy > 1 {
		return nil, fmt.Errorf("crowd: worker %q accuracy must be in [0,1], got %g", name, accuracy)
	}
	return &Worker{
		Name:     name,
		Speed:    speed,
		Accuracy: accuracy,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// mixSeed folds a claim ID into a worker seed with a splitmix64-style
// finaliser, so per-claim streams are decorrelated from each other and from
// the worker's base stream.
func mixSeed(seed int64, claimID int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(claimID+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ForClaim returns a copy of the worker whose random stream depends only on
// the worker's base seed and the claim ID — not on how many questions the
// worker answered before. Per-claim streams make a worker's answers for one
// claim independent of claim ordering, which is what lets the engine verify
// the claims of a batch concurrently and still produce results identical to
// a sequential pass.
func (w *Worker) ForClaim(claimID int) *Worker {
	return &Worker{
		Name:     w.Name,
		Speed:    w.Speed,
		Accuracy: w.Accuracy,
		seed:     w.seed,
		rng:      rand.New(rand.NewSource(mixSeed(w.seed, claimID))),
	}
}

// AnswerScreen simulates the worker reading a property screen top-to-bottom
// (the reading model behind Theorem 2): each displayed option is judged at
// cost vp; if the true answer is displayed and recognised, it is selected;
// otherwise the worker suggests an answer at cost sp. A worker who misjudges
// may select a wrong option or suggest a spurious value.
func (w *Worker) AnswerScreen(options []planner.Option, truth string, cm planner.CostModel) Answer {
	var ans Answer
	for i, opt := range options {
		ans.OptionsRead = i + 1
		ans.Seconds += cm.VerifyProperty * w.Speed
		correctJudgement := w.rng.Float64() < w.Accuracy
		if opt.Value == truth {
			if correctJudgement {
				ans.Value = opt.Value
				return ans
			}
			// Missed the true answer; keep reading.
			continue
		}
		if !correctJudgement {
			// Wrongly accepted an incorrect option.
			ans.Value = opt.Value
			return ans
		}
	}
	// Nothing accepted: suggest. An accurate worker suggests the truth.
	ans.Seconds += cm.SuggestProperty * w.Speed
	ans.Suggested = true
	if w.rng.Float64() < w.Accuracy {
		ans.Value = truth
	} else {
		ans.Value = truth + "?" // a plausible but wrong suggestion
	}
	return ans
}

// AnswerFinal simulates the final screen showing full query candidates:
// each is judged at cost vf; if the correct query is displayed and
// recognised it is confirmed, otherwise the worker writes the query at cost
// sf.
func (w *Worker) AnswerFinal(candidates []string, truth string, cm planner.CostModel) Answer {
	var ans Answer
	for i, cand := range candidates {
		ans.OptionsRead = i + 1
		ans.Seconds += cm.VerifyFull * w.Speed
		correctJudgement := w.rng.Float64() < w.Accuracy
		if cand == truth {
			if correctJudgement {
				ans.Value = cand
				return ans
			}
			continue
		}
		if !correctJudgement {
			ans.Value = cand
			return ans
		}
	}
	ans.Seconds += cm.SuggestFull * w.Speed
	ans.Suggested = true
	if w.rng.Float64() < w.Accuracy {
		ans.Value = truth
	} else {
		ans.Value = truth + "?"
	}
	return ans
}

// ManualVerify simulates the Manual baseline: the worker writes the
// verifying query from scratch (cost sf) and judges the claim.
func (w *Worker) ManualVerify(truth string, cm planner.CostModel) Answer {
	ans := Answer{Seconds: cm.SuggestFull * w.Speed, Suggested: true}
	if w.rng.Float64() < w.Accuracy {
		ans.Value = truth
	} else {
		ans.Value = truth + "?"
	}
	return ans
}

// Team is an ordered set of workers answering in parallel.
type Team struct {
	Workers []*Worker
}

// NewTeam builds n workers named with the given prefix, with per-worker
// speed/accuracy jitter drawn deterministically from seed. Speeds spread
// ±25% around 1.0 and accuracies sit in [base-0.03, base+0.02] clamped to
// [0,1], mimicking the spread between the user study's checkers.
func NewTeam(prefix string, n int, baseAccuracy float64, seed int64) (*Team, error) {
	if n <= 0 {
		return nil, fmt.Errorf("crowd: team size must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Team{}
	for i := 0; i < n; i++ {
		speed := 0.75 + rng.Float64()*0.5
		acc := baseAccuracy - 0.03 + rng.Float64()*0.05
		if acc < 0 {
			acc = 0
		}
		if acc > 1 {
			acc = 1
		}
		w, err := NewWorker(fmt.Sprintf("%s%d", prefix, i+1), speed, acc, rng.Int63())
		if err != nil {
			return nil, err
		}
		t.Workers = append(t.Workers, w)
	}
	return t, nil
}

// Size returns the number of workers.
func (t *Team) Size() int { return len(t.Workers) }

// ForClaim derives the team view for one claim: the same workers (names,
// speeds, accuracies), each with a fresh random stream seeded from the
// worker's base seed and the claim ID. Two calls with the same claim ID
// return teams that answer identically, regardless of what either team was
// asked in between — the determinism contract behind parallel batch
// verification.
func (t *Team) ForClaim(claimID int) *Team {
	out := &Team{Workers: make([]*Worker, len(t.Workers))}
	for i, w := range t.Workers {
		out.Workers[i] = w.ForClaim(claimID)
	}
	return out
}

// Vote aggregates worker answers by majority (ties broken by the earliest
// worker's answer, mirroring "any subset of three checkers"). It returns the
// winning value and the total person-seconds spent.
func Vote(answers []Answer) (value string, totalSeconds float64) {
	counts := make(map[string]int, len(answers))
	for _, a := range answers {
		counts[a.Value]++
		totalSeconds += a.Seconds
	}
	bestCount := -1
	for _, a := range answers { // iterate in worker order for determinism
		if c := counts[a.Value]; c > bestCount {
			bestCount = c
			value = a.Value
		}
	}
	return value, totalSeconds
}

// AskScreen has every worker answer the screen and majority-votes the
// result.
func (t *Team) AskScreen(options []planner.Option, truth string, cm planner.CostModel) (string, float64) {
	answers := make([]Answer, len(t.Workers))
	for i, w := range t.Workers {
		answers[i] = w.AnswerScreen(options, truth, cm)
	}
	return Vote(answers)
}

// AskFinal has every worker answer the final query screen and majority-votes
// the result.
func (t *Team) AskFinal(candidates []string, truth string, cm planner.CostModel) (string, float64) {
	answers := make([]Answer, len(t.Workers))
	for i, w := range t.Workers {
		answers[i] = w.AnswerFinal(candidates, truth, cm)
	}
	return Vote(answers)
}
