package crowd

import (
	"testing"

	"github.com/repro/scrutinizer/internal/planner"
)

var cm = planner.DefaultCostModel()

func perfectWorker(t *testing.T, seed int64) *Worker {
	t.Helper()
	w, err := NewWorker("W", 1.0, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker("W", 0, 1, 1); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := NewWorker("W", -1, 1, 1); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewWorker("W", 1, 1.5, 1); err == nil {
		t.Error("accuracy > 1 accepted")
	}
	if _, err := NewWorker("W", 1, -0.1, 1); err == nil {
		t.Error("negative accuracy accepted")
	}
}

func TestPerfectWorkerPicksTruthFirst(t *testing.T) {
	w := perfectWorker(t, 1)
	options := []planner.Option{{Value: "truth", Prob: 0.9}, {Value: "other", Prob: 0.1}}
	ans := w.AnswerScreen(options, "truth", cm)
	if ans.Value != "truth" || ans.Suggested {
		t.Errorf("answer = %+v", ans)
	}
	if ans.OptionsRead != 1 {
		t.Errorf("read %d options, want 1", ans.OptionsRead)
	}
	if ans.Seconds != cm.VerifyProperty {
		t.Errorf("seconds = %g, want %g", ans.Seconds, cm.VerifyProperty)
	}
}

func TestPerfectWorkerReadsPastWrongOptions(t *testing.T) {
	w := perfectWorker(t, 2)
	options := []planner.Option{{Value: "wrong1", Prob: 0.5}, {Value: "wrong2", Prob: 0.3}, {Value: "truth", Prob: 0.2}}
	ans := w.AnswerScreen(options, "truth", cm)
	if ans.Value != "truth" {
		t.Errorf("answer = %+v", ans)
	}
	if ans.OptionsRead != 3 {
		t.Errorf("read %d options, want 3", ans.OptionsRead)
	}
	if ans.Seconds != 3*cm.VerifyProperty {
		t.Errorf("seconds = %g", ans.Seconds)
	}
}

func TestPerfectWorkerSuggestsWhenTruthAbsent(t *testing.T) {
	w := perfectWorker(t, 3)
	options := []planner.Option{{Value: "wrong", Prob: 1}}
	ans := w.AnswerScreen(options, "truth", cm)
	if !ans.Suggested || ans.Value != "truth" {
		t.Errorf("answer = %+v", ans)
	}
	want := cm.VerifyProperty + cm.SuggestProperty
	if ans.Seconds != want {
		t.Errorf("seconds = %g, want %g", ans.Seconds, want)
	}
}

func TestAnswerFinal(t *testing.T) {
	w := perfectWorker(t, 4)
	ans := w.AnswerFinal([]string{"q1", "q2"}, "q2", cm)
	if ans.Value != "q2" || ans.Suggested {
		t.Errorf("final = %+v", ans)
	}
	if ans.Seconds != 2*cm.VerifyFull {
		t.Errorf("seconds = %g", ans.Seconds)
	}
	// Truth absent -> write query at cost sf.
	ans = w.AnswerFinal([]string{"q1"}, "q9", cm)
	if !ans.Suggested || ans.Value != "q9" {
		t.Errorf("final suggest = %+v", ans)
	}
	if ans.Seconds != cm.VerifyFull+cm.SuggestFull {
		t.Errorf("seconds = %g", ans.Seconds)
	}
}

func TestManualVerify(t *testing.T) {
	w := perfectWorker(t, 5)
	ans := w.ManualVerify("q", cm)
	if ans.Value != "q" || !ans.Suggested || ans.Seconds != cm.SuggestFull {
		t.Errorf("manual = %+v", ans)
	}
}

func TestSpeedScalesTime(t *testing.T) {
	slow, err := NewWorker("S", 2.0, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	ans := slow.ManualVerify("q", cm)
	if ans.Seconds != 2*cm.SuggestFull {
		t.Errorf("slow manual seconds = %g", ans.Seconds)
	}
}

func TestInaccurateWorkerErrsSometimes(t *testing.T) {
	w, err := NewWorker("Bad", 1.0, 0.0, 7) // always misjudges
	if err != nil {
		t.Fatal(err)
	}
	options := []planner.Option{{Value: "wrong", Prob: 0.5}, {Value: "truth", Prob: 0.5}}
	ans := w.AnswerScreen(options, "truth", cm)
	if ans.Value == "truth" {
		t.Errorf("zero-accuracy worker found truth: %+v", ans)
	}
}

func TestVoteMajority(t *testing.T) {
	answers := []Answer{
		{Value: "x", Seconds: 10},
		{Value: "y", Seconds: 20},
		{Value: "x", Seconds: 30},
	}
	v, secs := Vote(answers)
	if v != "x" {
		t.Errorf("vote = %q", v)
	}
	if secs != 60 {
		t.Errorf("total seconds = %g", secs)
	}
}

func TestVoteTieBreaksToEarliestWorker(t *testing.T) {
	answers := []Answer{{Value: "b"}, {Value: "a"}}
	v, _ := Vote(answers)
	if v != "b" {
		t.Errorf("tie should go to first worker's answer, got %q", v)
	}
}

func TestTeamMajorityCorrectsOneBadWorker(t *testing.T) {
	good1 := perfectWorker(t, 8)
	good2 := perfectWorker(t, 9)
	bad, err := NewWorker("Bad", 1.0, 0.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	team := &Team{Workers: []*Worker{bad, good1, good2}}
	options := []planner.Option{{Value: "truth", Prob: 0.6}, {Value: "other", Prob: 0.4}}
	v, secs := team.AskScreen(options, "truth", cm)
	if v != "truth" {
		t.Errorf("majority vote = %q, want truth", v)
	}
	if secs <= 0 {
		t.Error("no time recorded")
	}
	v, _ = team.AskFinal([]string{"truth", "other"}, "truth", cm)
	if v != "truth" {
		t.Errorf("final vote = %q", v)
	}
}

func TestNewTeam(t *testing.T) {
	team, err := NewTeam("S", 4, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	if team.Size() != 4 {
		t.Fatalf("size = %d", team.Size())
	}
	names := map[string]bool{}
	for _, w := range team.Workers {
		names[w.Name] = true
		if w.Speed < 0.75 || w.Speed > 1.25 {
			t.Errorf("worker %s speed %g out of range", w.Name, w.Speed)
		}
		if w.Accuracy < 0.9 || w.Accuracy > 1 {
			t.Errorf("worker %s accuracy %g out of range", w.Name, w.Accuracy)
		}
	}
	if !names["S1"] || !names["S4"] {
		t.Errorf("names = %v", names)
	}
	if _, err := NewTeam("X", 0, 0.9, 1); err == nil {
		t.Error("empty team accepted")
	}
}

func TestTeamDeterministic(t *testing.T) {
	t1, err := NewTeam("T", 3, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTeam("T", 3, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Workers {
		if t1.Workers[i].Speed != t2.Workers[i].Speed || t1.Workers[i].Accuracy != t2.Workers[i].Accuracy {
			t.Fatal("team construction not deterministic")
		}
	}
}
