// Package stats provides the small set of descriptive statistics used
// throughout Scrutinizer: percentiles of frequency distributions (Table 1),
// means, standard deviations, entropy, and online accumulators for the
// simulation harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using the
// nearest-rank method, matching the way the paper reports Table 1. It
// returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Percentiles evaluates several percentile levels in one pass over a single
// sorted copy of xs.
func Percentiles(xs []float64, levels []float64) []float64 {
	out := make([]float64, len(levels))
	for i, p := range levels {
		out[i] = Percentile(xs, p)
	}
	return out
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Entropy returns the Shannon entropy (nats) of a probability distribution.
// Probabilities that are zero or negative contribute nothing. The
// distribution does not need to be normalised; it is normalised internally
// so that classifier scores can be passed directly.
func Entropy(probs []float64) float64 {
	// Scale by the maximum first so that very large inputs cannot overflow
	// the normalising sum; entropy is invariant under positive scaling.
	var maxP float64
	for _, p := range probs {
		if p > maxP && !math.IsInf(p, 1) && !math.IsNaN(p) {
			maxP = p
		}
	}
	if maxP <= 0 {
		return 0
	}
	var total float64
	for _, p := range probs {
		if p > 0 && !math.IsInf(p, 1) && !math.IsNaN(p) {
			total += p / maxP
		}
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, p := range probs {
		if p <= 0 || math.IsInf(p, 1) || math.IsNaN(p) {
			continue
		}
		q := p / maxP / total
		h -= q * math.Log(q)
	}
	return h
}

// Accumulator incrementally tracks count, mean, min, max and variance using
// Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Count returns the number of observations recorded.
func (a *Accumulator) Count() int { return a.n }

// Mean returns the running mean, or 0 before any observation.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 before any observation.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 before any observation.
func (a *Accumulator) Max() float64 { return a.max }

// StdDev returns the running population standard deviation.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// String summarises the accumulator for logging.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f",
		a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Histogram buckets observations into fixed-width bins; the simulation uses
// it for complexity/time plots (Fig. 6).
type Histogram struct {
	Lo, Hi float64
	Bins   []Accumulator
}

// NewHistogram creates a histogram over [lo, hi) with n bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]Accumulator, n)}
}

// Observe records value y for key x; x selects the bin, y is accumulated.
// Out-of-range x is clamped to the closest bin.
func (h *Histogram) Observe(x, y float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	i := int((x - h.Lo) / w)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i].Add(y)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}
