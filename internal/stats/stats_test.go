package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {10, 15}, {20, 15}, {25, 20}, {30, 20},
		{50, 35}, {75, 40}, {95, 50}, {99, 50}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile([7], 99) = %g, want 7", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileClampsOutOfRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("Percentile(p<0) = %g, want min", got)
	}
	if got := Percentile(xs, 150); got != 3 {
		t.Errorf("Percentile(p>100) = %g, want max", got)
	}
}

func TestPercentilesMultiLevel(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Percentiles(xs, []float64{10, 50, 99})
	want := []float64{1, 5, 10}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("Percentiles[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		q := Percentile(xs, float64(p%101))
		return q >= lo && q <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			q := Percentile(xs, p)
			if q < prev {
				t.Fatalf("percentile not monotone at p=%g: %g < %g", p, q, prev)
			}
			prev = q
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton cases should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Max(xs) != 5 || Min(xs) != -1 {
		t.Errorf("Max/Min = %g/%g", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty Max/Min should be 0")
	}
}

func TestEntropyUniformIsLogN(t *testing.T) {
	for n := 1; n <= 16; n *= 2 {
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = 1.0 / float64(n)
		}
		if got, want := Entropy(probs), math.Log(float64(n)); !almost(got, want) {
			t.Errorf("Entropy(uniform %d) = %g, want %g", n, got, want)
		}
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); !almost(got, 0) {
		t.Errorf("Entropy(point mass) = %g, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %g, want 0", got)
	}
	if got := Entropy([]float64{0, 0}); got != 0 {
		t.Errorf("Entropy(zeros) = %g, want 0", got)
	}
}

func TestEntropyNormalises(t *testing.T) {
	a := Entropy([]float64{1, 1, 2})
	b := Entropy([]float64{0.25, 0.25, 0.5})
	if !almost(a, b) {
		t.Errorf("unnormalised %g != normalised %g", a, b)
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		probs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			probs[i] = math.Abs(v)
		}
		return Entropy(probs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		acc.Add(xs[i])
	}
	if acc.Count() != 500 {
		t.Fatalf("Count = %d", acc.Count())
	}
	if !almost(acc.Mean(), Mean(xs)) {
		t.Errorf("Mean: acc %g vs batch %g", acc.Mean(), Mean(xs))
	}
	if math.Abs(acc.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("StdDev: acc %g vs batch %g", acc.StdDev(), StdDev(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Errorf("Min/Max mismatch")
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.StdDev() != 0 || acc.Count() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
	acc.Add(5)
	if acc.Min() != 5 || acc.Max() != 5 || acc.Mean() != 5 {
		t.Error("single observation mishandled")
	}
	if acc.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(1, 100)   // bin 0
	h.Observe(9.9, 200) // bin 4
	h.Observe(-5, 1)    // clamped to bin 0
	h.Observe(42, 2)    // clamped to bin 4
	if h.Bins[0].Count() != 2 || h.Bins[4].Count() != 2 {
		t.Errorf("bin counts: %d, %d", h.Bins[0].Count(), h.Bins[4].Count())
	}
	if !almost(h.BinCenter(0), 1) || !almost(h.BinCenter(4), 9) {
		t.Errorf("bin centers: %g, %g", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid hi and n
	h.Observe(5, 1)
	if h.Bins[0].Count() != 1 {
		t.Error("degenerate histogram should still accept observations")
	}
}
