// Package aggcheck implements a simplified AggChecker-style baseline (Jo et
// al., SIGMOD 2019) — the closest prior system in the paper's Table 3. It
// differs from Scrutinizer exactly along the Table 3 axes:
//
//   - it handles only explicit claims (the parameter must be stated);
//   - its operation library is a fixed, small set (nine templates), with no
//     learning of new formulas from past checks;
//   - it is single-user: keyword matching replaces crowd validation, and
//     there is no question planning, batching or active learning.
//
// The package exists to make the Table 3 comparison quantitative: the
// bench/experiments code measures what fraction of a document the baseline
// can even attempt, and its accuracy on that fraction, against Scrutinizer.
package aggcheck

import (
	"fmt"
	"sort"
	"strings"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/query"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/textproc"
)

// opLibrary is the fixed template set ("SPA + 9 ops" in Table 3). Each
// template uses at most two cells of a single relation.
var opLibrary = []string{
	"a.A1",
	"a.A1 / b.A2",
	"(a.A1 / b.A2) - 1",
	"a.A1 - b.A2",
	"a.A1 + b.A1",
	"(a.A1 / b.A1) * 100",
	"AVG(a.A1, b.A2)",
	"MAX(a.A1, b.A2)",
	"MIN(a.A1, b.A2)",
}

// Ops returns the baseline's operation library (for reporting).
func Ops() []string { return append([]string(nil), opLibrary...) }

// Verdict is the baseline's per-claim outcome.
type Verdict int

const (
	// Unsupported: the claim is general, or no parameter can be parsed.
	Unsupported Verdict = iota
	// NoMatch: no template instantiation reproduced the parameter.
	NoMatch
	// Match: a query matched the stated parameter.
	Match
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Unsupported:
		return "unsupported"
	case NoMatch:
		return "no-match"
	case Match:
		return "match"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Result is one checked claim.
type Result struct {
	Verdict Verdict
	// Query is the matching query (Verdict == Match).
	Query *query.Query
	// Value is Query's result.
	Value float64
	// Tried is how many instantiations were executed.
	Tried int
}

// Config bounds the keyword matcher.
type Config struct {
	// TopRelations and TopKeys bound the keyword-matched candidates.
	TopRelations, TopKeys int
	// Tolerance is the admissible error rate for the equality test.
	Tolerance float64
	// MaxTried caps instantiations per claim.
	MaxTried int
}

// DefaultConfig mirrors the original system's small candidate sets.
func DefaultConfig() Config {
	return Config{TopRelations: 3, TopKeys: 5, Tolerance: 0.05, MaxTried: 4000}
}

// Checker is the assembled baseline bound to a corpus.
type Checker struct {
	cfg    Config
	corpus *table.Corpus
	// relTokens / keyTokens are the keyword index.
	relTokens map[string][]string
	keyTokens map[string][]string // key code -> tokens
	keyRels   map[string][]string // key code -> relations containing it
}

// New builds the keyword index over the corpus.
func New(corpus *table.Corpus, cfg Config) (*Checker, error) {
	if corpus == nil || corpus.Len() == 0 {
		return nil, fmt.Errorf("aggcheck: empty corpus")
	}
	if cfg.TopRelations <= 0 {
		cfg.TopRelations = 3
	}
	if cfg.TopKeys <= 0 {
		cfg.TopKeys = 5
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	if cfg.MaxTried <= 0 {
		cfg.MaxTried = 4000
	}
	c := &Checker{
		cfg:       cfg,
		corpus:    corpus,
		relTokens: make(map[string][]string),
		keyTokens: make(map[string][]string),
		keyRels:   make(map[string][]string),
	}
	for _, name := range corpus.Names() {
		rel, err := corpus.Relation(name)
		if err != nil {
			return nil, err
		}
		toks := splitIdent(name)
		for _, meta := range []string{"family", "region", "scenario"} {
			toks = append(toks, textproc.Tokenize(rel.Meta(meta))...)
		}
		c.relTokens[name] = toks
		for _, key := range rel.Keys() {
			if _, seen := c.keyTokens[key]; !seen {
				c.keyTokens[key] = splitIdent(key)
			}
			c.keyRels[key] = append(c.keyRels[key], name)
		}
	}
	return c, nil
}

// splitIdent tokenises CamelCase/underscore identifiers: "PerCapiElecCons"
// -> [per capi elec cons].
func splitIdent(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '_' || r == '-' || r == ' ':
			flush()
		case r >= 'A' && r <= 'Z':
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

// tokenMatch: prefix match of at least three characters in either direction
// ("capi" matches "capita", "elec" matches "electricity").
func tokenMatch(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) < 3 {
		return a == b
	}
	return strings.HasPrefix(b, a)
}

// overlap scores how many of the index tokens appear in the claim tokens.
func overlap(indexToks, claimToks []string) int {
	score := 0
	for _, it := range indexToks {
		for _, ct := range claimToks {
			if tokenMatch(it, ct) {
				score++
				break
			}
		}
	}
	return score
}

// Check attempts to verify a single claim.
func (c *Checker) Check(cl *claims.Claim) Result {
	// Explicit claims only; the parameter must come from the text.
	if cl == nil || cl.Kind != claims.Explicit {
		return Result{Verdict: Unsupported}
	}
	param, ok := claims.ExtractParameter(cl.Text)
	if !ok {
		return Result{Verdict: Unsupported}
	}

	claimToks := textproc.Tokenize(cl.Sentence + " " + cl.Text)

	// Keyword-match keys, then relations containing them.
	type scored struct {
		val   string
		score int
	}
	var keyScores []scored
	for key, toks := range c.keyTokens {
		if s := overlap(toks, claimToks); s > 0 {
			keyScores = append(keyScores, scored{key, s})
		}
	}
	sort.Slice(keyScores, func(i, j int) bool {
		if keyScores[i].score != keyScores[j].score {
			return keyScores[i].score > keyScores[j].score
		}
		return keyScores[i].val < keyScores[j].val
	})
	if len(keyScores) > c.cfg.TopKeys {
		keyScores = keyScores[:c.cfg.TopKeys]
	}
	if len(keyScores) == 0 {
		return Result{Verdict: NoMatch}
	}

	relSet := map[string]int{}
	for _, ks := range keyScores {
		for _, rel := range c.keyRels[ks.val] {
			relSet[rel] += overlap(c.relTokens[rel], claimToks)
		}
	}
	var relScores []scored
	for rel, s := range relSet {
		relScores = append(relScores, scored{rel, s})
	}
	sort.Slice(relScores, func(i, j int) bool {
		if relScores[i].score != relScores[j].score {
			return relScores[i].score > relScores[j].score
		}
		return relScores[i].val < relScores[j].val
	})
	if len(relScores) > c.cfg.TopRelations {
		relScores = relScores[:c.cfg.TopRelations]
	}

	// Candidate attributes: numeric tokens in the text that are existing
	// attribute labels (years).
	var attrs []string
	seenAttr := map[string]bool{}
	for _, tok := range claimToks {
		if len(tok) == 4 && tok >= "1900" && tok <= "2099" && !seenAttr[tok] {
			seenAttr[tok] = true
			attrs = append(attrs, tok)
		}
	}
	if len(attrs) == 0 {
		return Result{Verdict: NoMatch}
	}
	// Also consider the preceding year for single-year growth phrasing.
	if len(attrs) == 1 {
		if y := attrs[0]; y > "1900" {
			prev := fmt.Sprintf("%04d", atoiOr(y)-1)
			attrs = append(attrs, prev)
		}
	}

	res := Result{Verdict: NoMatch}
	for _, op := range opLibrary {
		node, err := expr.Parse(op)
		if err != nil {
			continue
		}
		aliases := expr.Aliases(node)
		attrVars := expr.AttrVars(node)
		for _, rs := range relScores {
			rel, err := c.corpus.Relation(rs.val)
			if err != nil {
				continue
			}
			// Enumerate key assignments per alias and attribute
			// assignments per variable.
			keyChoices := make([]string, 0, len(keyScores))
			for _, ks := range keyScores {
				if rel.HasKey(ks.val) {
					keyChoices = append(keyChoices, ks.val)
				}
			}
			if len(keyChoices) == 0 {
				continue
			}
			attrChoices := make([]string, 0, len(attrs))
			for _, a := range attrs {
				if rel.HasAttr(a) {
					attrChoices = append(attrChoices, a)
				}
			}
			if len(attrChoices) < len(attrVars) {
				continue
			}
			c.tryAssignments(cl, param, node, aliases, attrVars, rs.val, keyChoices, attrChoices, &res)
			if res.Verdict == Match {
				return res
			}
		}
	}
	return res
}

func atoiOr(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// tryAssignments enumerates (key, attribute) assignments for one template
// on one relation, stopping on the first match or budget exhaustion.
func (c *Checker) tryAssignments(cl *claims.Claim, param float64, node expr.Node,
	aliases, attrVars []string, relName string, keyChoices, attrChoices []string, res *Result) {

	keyIdx := make([]int, len(aliases))
	for {
		attrIdx := make([]int, len(attrVars))
		for {
			if res.Tried >= c.cfg.MaxTried {
				return
			}
			// Distinct attributes per variable.
			okAttrs := true
			seen := map[int]bool{}
			for _, ai := range attrIdx {
				if seen[ai] {
					okAttrs = false
					break
				}
				seen[ai] = true
			}
			if okAttrs {
				res.Tried++
				q := &query.Query{Select: node, AttrBindings: map[string]string{}}
				for vi, v := range attrVars {
					q.AttrBindings[v] = attrChoices[attrIdx[vi]]
				}
				for ai, alias := range aliases {
					q.Bindings = append(q.Bindings, query.Binding{
						Alias: alias, Relation: relName, Key: keyChoices[keyIdx[ai]],
					})
				}
				if v, err := q.Execute(c.corpus); err == nil {
					if claims.RelClose(v, param, c.cfg.Tolerance) {
						res.Verdict = Match
						res.Query = q
						res.Value = v
						return
					}
				}
			}
			if !advance(attrIdx, len(attrChoices)) {
				break
			}
		}
		if !advance(keyIdx, len(keyChoices)) {
			return
		}
	}
}

// advance increments a mixed-radix odometer; false when it wraps.
func advance(idx []int, base int) bool {
	if len(idx) == 0 {
		return false
	}
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < base {
			return true
		}
		idx[i] = 0
	}
	return false
}

// Coverage summarises a document-level run.
type Coverage struct {
	Total       int
	Unsupported int
	NoMatch     int
	Matched     int
	// Correct counts claims where the baseline's conclusion (Match =>
	// claim correct, NoMatch => claim incorrect) agrees with the ground
	// truth; unsupported claims are excluded.
	Correct int
}

// Attempted returns the number of claims the baseline could engage with.
func (c Coverage) Attempted() int { return c.Total - c.Unsupported }

// Accuracy is Correct / Attempted (0 when nothing was attempted).
func (c Coverage) Accuracy() float64 {
	if c.Attempted() == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.Attempted())
}

// CheckDocument runs the baseline over a whole document.
func (c *Checker) CheckDocument(doc *claims.Document) Coverage {
	var cov Coverage
	for _, cl := range doc.Claims {
		cov.Total++
		r := c.Check(cl)
		switch r.Verdict {
		case Unsupported:
			cov.Unsupported++
		case NoMatch:
			cov.NoMatch++
			if !cl.Correct {
				cov.Correct++
			}
		case Match:
			cov.Matched++
			if cl.Correct {
				cov.Correct++
			}
		}
	}
	return cov
}
