package aggcheck

import (
	"reflect"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/worldgen"
)

func fixtureCorpus(t *testing.T) *table.Corpus {
	t.Helper()
	c := table.NewCorpus()
	rel := table.MustNewRelation("EnerDema_Glob_StatPoli", "Index", []string{"2016", "2017"})
	rel.SetMeta("family", "energy demand")
	rel.SetMeta("region", "global")
	rel.SetMeta("scenario", "stated policies")
	rows := map[string][]float64{
		"TotaElecDema": {21546, 22209},
		"TotaCoalDema": {2390, 2412},
	}
	for k, v := range rows {
		if err := rel.AddRow(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(rel); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVerdictString(t *testing.T) {
	if Unsupported.String() != "unsupported" || NoMatch.String() != "no-match" || Match.String() != "match" {
		t.Error("verdict strings wrong")
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict should print")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := New(table.NewCorpus(), DefaultConfig()); err == nil {
		t.Error("empty corpus accepted")
	}
	// Zero config fields get defaults.
	c, err := New(fixtureCorpus(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.TopKeys == 0 || c.cfg.Tolerance == 0 {
		t.Error("defaults not applied")
	}
}

func TestSplitIdent(t *testing.T) {
	got := splitIdent("PerCapiElecCons")
	want := []string{"per", "capi", "elec", "cons"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitIdent = %v", got)
	}
	got = splitIdent("EnerDema_Glob_StatPoli")
	want = []string{"ener", "dema", "glob", "stat", "poli"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitIdent underscore = %v", got)
	}
}

func TestTokenMatch(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"elec", "electricity", true},
		{"electricity", "elec", true},
		{"capi", "capita", true},
		{"coal", "coal", true},
		{"oil", "oil", true},
		{"oil", "oils", true},    // 3+ char prefix matches
		{"no", "nothing", false}, // sub-3-char tokens must match exactly
		{"gas", "coal", false},
	}
	for _, c := range cases {
		if got := tokenMatch(c.a, c.b); got != c.want {
			t.Errorf("tokenMatch(%q, %q) = %v", c.a, c.b, got)
		}
	}
}

func TestCheckExplicitLookupMatch(t *testing.T) {
	checker, err := New(fixtureCorpus(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := &claims.Claim{
		ID:   1,
		Kind: claims.Explicit,
		Text: "total electricity demand reached 22 209 units in 2017",
		Sentence: "In the stated policies scenario global energy demand: " +
			"total electricity demand reached 22 209 units in 2017.",
		Correct: true,
	}
	res := checker.Check(cl)
	if res.Verdict != Match {
		t.Fatalf("verdict = %s (tried %d)", res.Verdict, res.Tried)
	}
	if res.Value != 22209 {
		t.Errorf("value = %g", res.Value)
	}
	if res.Query == nil {
		t.Error("matching query missing")
	}
}

func TestCheckGrowthClaim(t *testing.T) {
	checker, err := New(fixtureCorpus(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 22209/21546 - 1 = 3.08%; the (a/b - 1) template should find it
	// given both years in text... only 2017 appears; the checker expands
	// to the preceding year.
	cl := &claims.Claim{
		ID:       2,
		Kind:     claims.Explicit,
		Text:     "total electricity demand grew by 3.1% in 2017",
		Sentence: "Global energy demand: total electricity demand grew by 3.1% in 2017.",
		Correct:  true,
	}
	res := checker.Check(cl)
	if res.Verdict != Match {
		t.Fatalf("growth verdict = %s (tried %d)", res.Verdict, res.Tried)
	}
}

func TestCheckRejectsGeneralClaims(t *testing.T) {
	checker, err := New(fixtureCorpus(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := &claims.Claim{
		ID:   3,
		Kind: claims.General,
		Text: "electricity demand expanded aggressively",
	}
	if res := checker.Check(cl); res.Verdict != Unsupported {
		t.Errorf("general claim verdict = %s", res.Verdict)
	}
	if res := checker.Check(nil); res.Verdict != Unsupported {
		t.Error("nil claim should be unsupported")
	}
	// Explicit claim with no parsable parameter.
	cl = &claims.Claim{ID: 4, Kind: claims.Explicit, Text: "demand moved somewhat"}
	if res := checker.Check(cl); res.Verdict != Unsupported {
		t.Errorf("parameterless claim verdict = %s", res.Verdict)
	}
}

func TestCheckNoMatchOnWrongParameter(t *testing.T) {
	checker, err := New(fixtureCorpus(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := &claims.Claim{
		ID:       5,
		Kind:     claims.Explicit,
		Text:     "total electricity demand reached 99 999 units in 2017",
		Sentence: "total electricity demand reached 99 999 units in 2017",
		Correct:  false,
	}
	res := checker.Check(cl)
	if res.Verdict != NoMatch {
		t.Errorf("wrong parameter verdict = %s", res.Verdict)
	}
}

func TestCheckDocumentCoverage(t *testing.T) {
	w, err := worldgen.Generate(worldgen.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	checker, err := New(w.Corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cov := checker.CheckDocument(w.Document)
	if cov.Total != len(w.Document.Claims) {
		t.Fatalf("total = %d", cov.Total)
	}
	// The baseline must refuse general claims — Table 3's key limit.
	general := 0
	for _, c := range w.Document.Claims {
		if c.Kind == claims.General {
			general++
		}
	}
	if cov.Unsupported < general {
		t.Errorf("unsupported %d < general claims %d", cov.Unsupported, general)
	}
	if cov.Attempted() != cov.Total-cov.Unsupported {
		t.Error("Attempted arithmetic wrong")
	}
	if cov.Matched+cov.NoMatch != cov.Attempted() {
		t.Error("attempted split wrong")
	}
	// Sanity for Accuracy bounds.
	if a := cov.Accuracy(); a < 0 || a > 1 {
		t.Errorf("accuracy = %g", a)
	}
	if (Coverage{}).Accuracy() != 0 {
		t.Error("empty coverage accuracy should be 0")
	}
}

func TestOpsExposed(t *testing.T) {
	ops := Ops()
	if len(ops) != 9 {
		t.Errorf("op library = %d entries, want 9 (Table 3)", len(ops))
	}
	ops[0] = "mutated"
	if Ops()[0] == "mutated" {
		t.Error("Ops must return a copy")
	}
}

func TestAdvanceOdometer(t *testing.T) {
	idx := []int{0, 0}
	count := 1
	for advance(idx, 3) {
		count++
	}
	if count != 9 {
		t.Errorf("odometer enumerated %d states, want 9", count)
	}
	if advance(nil, 3) {
		t.Error("empty odometer should not advance")
	}
}
