package claims

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonClaim is the storage form of a Claim.
type jsonClaim struct {
	ID       int          `json:"id"`
	Text     string       `json:"text"`
	Sentence string       `json:"sentence,omitempty"`
	Section  int          `json:"section"`
	Kind     string       `json:"kind"`
	Param    *float64     `json:"param,omitempty"`
	Cmp      string       `json:"cmp,omitempty"`
	Correct  bool         `json:"correct"`
	Truth    *GroundTruth `json:"truth,omitempty"`
}

// jsonDocument is the storage form of a Document.
type jsonDocument struct {
	Title    string      `json:"title"`
	Sections int         `json:"sections"`
	Claims   []jsonClaim `json:"claims"`
}

// WriteJSON serialises the document (including annotations) as indented
// JSON, suitable for archiving past checks and bootstrapping future runs.
func (d *Document) WriteJSON(w io.Writer) error {
	out := jsonDocument{Title: d.Title, Sections: d.Sections}
	for _, c := range d.Claims {
		if c == nil {
			return fmt.Errorf("claims: nil claim in document %q", d.Title)
		}
		jc := jsonClaim{
			ID: c.ID, Text: c.Text, Sentence: c.Sentence,
			Section: c.Section, Kind: c.Kind.String(),
			Correct: c.Correct, Truth: c.Truth,
		}
		if c.HasParam {
			p := c.Param
			jc.Param = &p
			jc.Cmp = c.Cmp.String()
		}
		out.Claims = append(out.Claims, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a document previously written by WriteJSON and validates
// it.
func ReadJSON(r io.Reader) (*Document, error) {
	var in jsonDocument
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("claims: decoding document: %w", err)
	}
	d := &Document{Title: in.Title, Sections: in.Sections}
	for _, jc := range in.Claims {
		c := &Claim{
			ID: jc.ID, Text: jc.Text, Sentence: jc.Sentence,
			Section: jc.Section, Correct: jc.Correct, Truth: jc.Truth,
		}
		switch jc.Kind {
		case "explicit", "":
			c.Kind = Explicit
		case "general":
			c.Kind = General
		default:
			return nil, fmt.Errorf("claims: claim %d has unknown kind %q", jc.ID, jc.Kind)
		}
		if jc.Param != nil {
			c.Param = *jc.Param
			c.HasParam = true
			switch jc.Cmp {
			case "=", "":
				c.Cmp = OpEq
			case "!=":
				c.Cmp = OpNeq
			case "<":
				c.Cmp = OpLt
			case ">":
				c.Cmp = OpGt
			default:
				return nil, fmt.Errorf("claims: claim %d has unknown comparison %q", jc.ID, jc.Cmp)
			}
		}
		d.Claims = append(d.Claims, c)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
