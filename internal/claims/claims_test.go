package claims

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindOpStrings(t *testing.T) {
	if Explicit.String() != "explicit" || General.String() != "general" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should still print")
	}
	ops := map[Op]string{OpEq: "=", OpNeq: "!=", OpLt: "<", OpGt: ">"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d = %q, want %q", op, op.String(), want)
		}
	}
	if Op(9).String() == "" {
		t.Error("unknown Op should still print")
	}
}

func TestRelClose(t *testing.T) {
	cases := []struct {
		v, p, e float64
		want    bool
	}{
		{100, 100, 0, true},
		{103, 100, 0.05, true},
		{106, 100, 0.05, false},
		{0.03, 0.03, 0.01, true},
		{0, 0, 0.01, true},
		{0.005, 0, 0.01, true}, // absolute fallback near zero
		{0.02, 0, 0.01, false},
		{-103, -100, 0.05, true},
		{math.NaN(), 1, 0.5, false},
		{1, math.NaN(), 0.5, false},
	}
	for _, c := range cases {
		if got := RelClose(c.v, c.p, c.e); got != c.want {
			t.Errorf("RelClose(%g, %g, %g) = %v, want %v", c.v, c.p, c.e, got, c.want)
		}
	}
}

func TestOpCompare(t *testing.T) {
	if !OpEq.Compare(102, 100, 0.05) {
		t.Error("OpEq within tolerance should hold")
	}
	if OpEq.Compare(110, 100, 0.05) {
		t.Error("OpEq outside tolerance should fail")
	}
	if !OpNeq.Compare(110, 100, 0.05) || OpNeq.Compare(102, 100, 0.05) {
		t.Error("OpNeq wrong")
	}
	if !OpLt.Compare(1, 2, 0) || OpLt.Compare(2, 1, 0) {
		t.Error("OpLt wrong")
	}
	if !OpGt.Compare(2, 1, 0) || OpGt.Compare(1, 2, 0) {
		t.Error("OpGt wrong")
	}
	if Op(9).Compare(1, 1, 1) {
		t.Error("unknown op should be false")
	}
}

func TestRelCloseSymmetryProperty(t *testing.T) {
	// RelClose(v, p, 0) iff v == p exactly.
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return RelClose(v, v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtractParameterPercent(t *testing.T) {
	cases := []struct {
		text string
		want float64
	}{
		{"In 2017, global electricity demand grew by 3%", 0.03},
		{"demand grew by 2.5%", 0.025},
		{"rose 12 percent year on year", 0.12},
	}
	for _, c := range cases {
		got, ok := ExtractParameter(c.text)
		if !ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExtractParameter(%q) = %g, %v; want %g", c.text, got, ok, c.want)
		}
	}
}

func TestExtractParameterMultipliers(t *testing.T) {
	cases := []struct {
		text string
		want float64
	}{
		{"increased nine-fold from 2000 to 2017", 9},
		{"grew twofold over the decade", 2},
		{"output doubled since 2010", 2},
		{"capacity tripled", 3},
		{"demand halved", 0.5},
		{"a five fold rise", 5},
	}
	for _, c := range cases {
		got, ok := ExtractParameter(c.text)
		if !ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExtractParameter(%q) = %g, %v; want %g", c.text, got, ok, c.want)
		}
	}
}

func TestExtractParameterPlainNumbers(t *testing.T) {
	cases := []struct {
		text string
		want float64
	}{
		{"reaching 22 200 TWh", 22200},
		{"reached 1 234 567 units", 1234567},
		{"output was 450 TWh in 2017", 450}, // prefers non-year number
		{"amounted to 3.6 Gt", 3.6},
	}
	for _, c := range cases {
		got, ok := ExtractParameter(c.text)
		if !ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExtractParameter(%q) = %g, %v; want %g", c.text, got, ok, c.want)
		}
	}
}

func TestExtractParameterYearFallbackAndNone(t *testing.T) {
	// Only a year present: falls back to it.
	got, ok := ExtractParameter("as projected for 2030")
	if !ok || got != 2030 {
		t.Errorf("year fallback = %g, %v", got, ok)
	}
	// Nothing numeric at all.
	if _, ok := ExtractParameter("the solar PV market expanded aggressively"); ok {
		t.Error("no parameter expected")
	}
	if _, ok := ExtractParameter(""); ok {
		t.Error("empty text should have no parameter")
	}
}

func TestExtractParameterPercentBeatsYear(t *testing.T) {
	got, ok := ExtractParameter("In 2017, global electricity demand grew by 3%, reaching 22 200 TWh")
	if !ok || math.Abs(got-0.03) > 1e-12 {
		t.Errorf("want percent 0.03, got %g %v", got, ok)
	}
}

func TestLexiconResolve(t *testing.T) {
	var lex Lexicon
	op, p, ok := lex.Resolve("the solar PV market expanded aggressively.")
	if !ok || op != OpGt || p != 1.0 {
		t.Errorf("aggressively = %v %g %v", op, p, ok)
	}
	op, p, ok = lex.Resolve("grew scarcely in 2018")
	if !ok || op != OpLt {
		t.Errorf("scarcely = %v %g %v", op, p, ok)
	}
	if _, _, ok := lex.Resolve("grew by 3%"); ok {
		t.Error("no vague quantifier expected")
	}
}

func TestLexiconOverride(t *testing.T) {
	var lex Lexicon
	lex.Override("aggressively", OpGt, 0.30)
	op, p, ok := lex.Resolve("expanded Aggressively")
	if !ok || op != OpGt || p != 0.30 {
		t.Errorf("override = %v %g %v", op, p, ok)
	}
	words := lex.Words()
	if len(words) < 10 {
		t.Errorf("Words too small: %v", words)
	}
}

func TestClaimComplexity(t *testing.T) {
	c := &Claim{Truth: &GroundTruth{
		Keys:    []string{"PGElecDemand", "PGElecDemand"},
		Attrs:   []string{"2016", "2017"},
		Formula: "a.A1 / b.A2",
	}}
	// 2 keys + 2 attrs + formula elements(a.A1, /, b.A2 = 3) = 7;
	// a cell reference is a single variable element.
	if got := c.Complexity(); got != 7 {
		t.Errorf("Complexity = %d, want 7", got)
	}
	if (&Claim{}).Complexity() != 0 {
		t.Error("no truth -> complexity 0")
	}
}

func TestDocumentValidateAndSections(t *testing.T) {
	d := &Document{
		Title:    "T",
		Sections: 2,
		Claims: []*Claim{
			{ID: 1, Section: 0},
			{ID: 2, Section: 1},
			{ID: 3, Section: 1},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.ClaimsInSection(1); len(got) != 2 {
		t.Errorf("ClaimsInSection(1) = %d claims", len(got))
	}
	d.Claims = append(d.Claims, &Claim{ID: 1, Section: 0})
	if err := d.Validate(); err == nil {
		t.Error("duplicate ID accepted")
	}
	d.Claims = []*Claim{{ID: 9, Section: 5}}
	if err := d.Validate(); err == nil {
		t.Error("out-of-range section accepted")
	}
	d.Claims = []*Claim{nil}
	if err := d.Validate(); err == nil {
		t.Error("nil claim accepted")
	}
}
