// Package claims defines the claim model of the paper's Section 2: general
// claims (a comparison op between a query value and a parameter) and
// explicit claims (the parameter is a value stated in the claim text itself,
// checked for equality up to an admissible error rate). It also implements
// the syntactic parameter extraction of Section 4.1 — pulling numeric
// parameters like "3%", "nine-fold" or "22 200 TWh" out of claim text.
package claims

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind distinguishes explicit from general claims (Definitions 1 and 2).
type Kind int

const (
	// Explicit claims state their parameter in the text and imply the
	// equality comparison with a tolerance.
	Explicit Kind = iota
	// General claims compare the query value against a parameter that
	// may be implicit (e.g. "expanded aggressively").
	General
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Explicit:
		return "explicit"
	case General:
		return "general"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is the comparison operator of Definition 1.
type Op int

const (
	OpEq Op = iota
	OpNeq
	OpLt
	OpGt
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Compare applies the operator with the given tolerance for equality. The
// tolerance is a relative admissible error rate (Definition 2): |v-p| <=
// e*max(|p|, eps). For inequality operators the tolerance is ignored.
func (o Op) Compare(v, p, e float64) bool {
	switch o {
	case OpEq:
		return RelClose(v, p, e)
	case OpNeq:
		return !RelClose(v, p, e)
	case OpLt:
		return v < p
	case OpGt:
		return v > p
	}
	return false
}

// RelClose reports whether v is within relative error e of p.
func RelClose(v, p, e float64) bool {
	if math.IsNaN(v) || math.IsNaN(p) {
		return false
	}
	scale := math.Abs(p)
	if scale < 1e-12 {
		// For parameters at or near zero, fall back to absolute error.
		return math.Abs(v-p) <= e
	}
	return math.Abs(v-p) <= e*scale
}

// GroundTruth is the annotation a past check (or the synthetic generator)
// attaches to a claim: the query elements that verify it. Scrutinizer uses
// these as training labels and the simulated crowd answers questions from
// them.
type GroundTruth struct {
	Relations []string // relation names used by the correct query
	Keys      []string // row key values
	Attrs     []string // attribute labels
	Formula   string   // canonical formula string (package formula)
	// Value is the correct query result; for incorrect claims it differs
	// from the parameter stated in the text.
	Value float64
}

// Claim is one verifiable statement inside a document.
type Claim struct {
	// ID is unique within a document.
	ID int
	// Text is the claim phrase itself.
	Text string
	// Sentence is the sentence containing the claim (context for the
	// classifiers, Figure 4).
	Sentence string
	// Section indexes the document section containing the claim; the
	// batch cost model (Definition 8) charges one skim per section.
	Section int
	// Kind distinguishes explicit from general claims.
	Kind Kind
	// Param is the stated parameter for explicit claims, or the
	// domain-specific implicit parameter for general ones.
	Param float64
	// HasParam reports whether Param is meaningful (general claims may
	// lack a predictable parameter and require user input, Example 7).
	HasParam bool
	// Cmp is the comparison operator (equality for explicit claims).
	Cmp Op
	// Truth carries the annotation from previous checks; nil when the
	// claim has never been checked (cold start).
	Truth *GroundTruth
	// Correct records whether the claim text agrees with the data; set
	// by the generator (it knows where it injected errors) and used to
	// score verification outcomes.
	Correct bool
}

// Complexity is the user-study complexity measure (Figure 6): the number of
// elements in the verifying query — key values, attributes, operations,
// constants and variables. It derives from the ground-truth annotation.
func (c *Claim) Complexity() int {
	if c.Truth == nil {
		return 0
	}
	n := len(c.Truth.Keys) + len(c.Truth.Attrs)
	n += formulaElements(c.Truth.Formula)
	return n
}

// formulaElements estimates the number of operations/constants/variables in
// a formula string without importing the expr package (avoiding a cycle for
// callers that only need claims). It counts operator characters, function
// names and numeric/variable tokens.
func formulaElements(f string) int {
	if f == "" {
		return 0
	}
	n := 0
	inNum := false
	inIdent := false
	for _, r := range f {
		switch {
		case r >= '0' && r <= '9' || r == '.':
			if !inNum && !inIdent {
				n++ // start of a numeric token
				inNum = true
			}
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			if !inIdent {
				n++ // start of an identifier token
				inIdent = true
			}
			inNum = false
		case r == '+' || r == '-' || r == '*' || r == '/' || r == '^' || r == '>' || r == '<' || r == '=':
			n++
			inNum, inIdent = false, false
		default:
			inNum, inIdent = false, false
		}
	}
	return n
}

// Document is a text to verify: an ordered list of claims partitioned into
// sections.
type Document struct {
	Title    string
	Claims   []*Claim
	Sections int
}

// ClaimsInSection returns the claims located in section s, in order.
func (d *Document) ClaimsInSection(s int) []*Claim {
	var out []*Claim
	for _, c := range d.Claims {
		if c.Section == s {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks document invariants: unique IDs, sections in range.
func (d *Document) Validate() error {
	seen := make(map[int]bool, len(d.Claims))
	for _, c := range d.Claims {
		if c == nil {
			return fmt.Errorf("claims: nil claim in document %q", d.Title)
		}
		if seen[c.ID] {
			return fmt.Errorf("claims: duplicate claim ID %d in document %q", c.ID, d.Title)
		}
		seen[c.ID] = true
		if c.Section < 0 || c.Section >= d.Sections {
			return fmt.Errorf("claims: claim %d in section %d, document has %d sections", c.ID, c.Section, d.Sections)
		}
	}
	return nil
}

// multiplierWords maps textual multipliers to parameter values ("nine-fold"
// -> 9), per Example 2.
var multiplierWords = map[string]float64{
	"two": 2, "three": 3, "four": 4, "five": 5, "six": 6, "seven": 7,
	"eight": 8, "nine": 9, "ten": 10, "eleven": 11, "twelve": 12,
	"double": 2, "triple": 3, "quadruple": 4, "half": 0.5, "twice": 2, "thrice": 3,
}

// ExtractParameter performs the syntactic parse of Section 4.1 on explicit
// claim text. It recognises, in priority order:
//
//  1. percentages: "grew by 3%" -> 0.03
//  2. multiplier words: "nine-fold", "doubled" -> 9, 2
//  3. plain numbers with digit-group spaces: "22 200 TWh" -> 22200
//
// It returns the parameter and true, or 0 and false when no parameter is
// found (the claim is then treated as general).
func ExtractParameter(text string) (float64, bool) {
	lower := strings.ToLower(text)

	// 1. Percentage.
	if i := strings.IndexByte(lower, '%'); i >= 0 {
		if v, ok := numberEndingAt(lower, i); ok {
			return v / 100, true
		}
	}
	if i := strings.Index(lower, " percent"); i >= 0 {
		if v, ok := numberEndingAt(lower, i); ok {
			return v / 100, true
		}
	}

	// 2. Multiplier words: "nine-fold", "ninefold", "nine fold",
	// "doubled"/"doubling", "tripled", "halved".
	for word, mult := range multiplierWords {
		for _, pat := range []string{word + "-fold", word + "fold", word + " fold"} {
			if strings.Contains(lower, pat) {
				return mult, true
			}
		}
	}
	for _, w := range []struct {
		pat  string
		mult float64
	}{
		{"doubl", 2}, {"tripl", 3}, {"quadrupl", 4}, {"halv", 0.5},
	} {
		if strings.Contains(lower, w.pat) {
			return w.mult, true
		}
	}

	// 3. Plain number (with optional digit-group spaces). Scan for digit
	// runs; merge groups of exactly three digits separated by single
	// spaces ("22 200"). Skip 4-digit years (1900-2099) unless nothing
	// else is found.
	var yearFallback float64
	var haveYear bool
	i := 0
	for i < len(lower) {
		if lower[i] < '0' || lower[i] > '9' {
			i++
			continue
		}
		// Don't treat the decimals of an already-consumed token or
		// ordinal suffixes ("2nd") specially; grab the full number.
		start := i
		j := i
		for j < len(lower) && (lower[j] >= '0' && lower[j] <= '9' || lower[j] == '.') {
			j++
		}
		numStr := lower[start:j]
		// Merge " NNN" digit triplets (thousands separators as spaces).
		for j+4 <= len(lower) && lower[j] == ' ' &&
			isDigit(lower[j+1]) && isDigit(lower[j+2]) && isDigit(lower[j+3]) &&
			(j+4 == len(lower) || !isDigit(lower[j+4]) && lower[j+4] != '.') {
			numStr += lower[j+1 : j+4]
			j += 4
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(numStr, "."), 64)
		if err == nil {
			if isLikelyYear(v, numStr) {
				if !haveYear {
					yearFallback, haveYear = v, true
				}
			} else {
				return v, true
			}
		}
		i = j
	}
	if haveYear {
		return yearFallback, true
	}
	return 0, false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isLikelyYear(v float64, s string) bool {
	return len(s) == 4 && v == math.Trunc(v) && v >= 1900 && v <= 2099
}

// numberEndingAt parses the number whose last character is just before
// position end in s (e.g. the "3" in "3%" with end at the '%').
func numberEndingAt(s string, end int) (float64, bool) {
	j := end
	for j > 0 && (isDigit(s[j-1]) || s[j-1] == '.') {
		j--
	}
	if j == end {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[j:end], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// vagueParameters maps vague quantifier words in general claims to
// domain-default parameters; the paper notes these are domain-specific
// (an "aggressive" energy-market growth differs from finance). The defaults
// here correspond to the energy domain of the use case and can be
// overridden through Lexicon.
var vagueParameters = map[string]struct {
	op    Op
	param float64
}{
	"aggressively":  {OpGt, 1.0},  // more than doubled
	"strongly":      {OpGt, 0.10}, // >10% growth
	"sharply":       {OpGt, 0.15},
	"rapidly":       {OpGt, 0.12},
	"significantly": {OpGt, 0.05},
	"moderately":    {OpGt, 0.02},
	"slightly":      {OpGt, 0.0},
	"scarcely":      {OpLt, 0.02},
	"marginally":    {OpLt, 0.03},
	"barely":        {OpLt, 0.02},
	"flat":          {OpEq, 0.0},
	"stable":        {OpEq, 0.0},
}

// Lexicon resolves vague quantifiers to (op, parameter) pairs for general
// claims. The zero value uses the built-in energy-domain defaults.
type Lexicon struct {
	overrides map[string]struct {
		op    Op
		param float64
	}
}

// Override installs a domain-specific meaning for a quantifier word.
func (l *Lexicon) Override(word string, op Op, param float64) {
	if l.overrides == nil {
		l.overrides = make(map[string]struct {
			op    Op
			param float64
		})
	}
	l.overrides[strings.ToLower(word)] = struct {
		op    Op
		param float64
	}{op, param}
}

// Resolve scans text for a known vague quantifier and returns its meaning.
func (l *Lexicon) Resolve(text string) (op Op, param float64, ok bool) {
	lower := strings.ToLower(text)
	for _, tok := range strings.FieldsFunc(lower, func(r rune) bool {
		return !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	}) {
		if l.overrides != nil {
			if m, found := l.overrides[tok]; found {
				return m.op, m.param, true
			}
		}
		if m, found := vagueParameters[tok]; found {
			return m.op, m.param, true
		}
	}
	return OpEq, 0, false
}

// Words returns the vague-quantifier vocabulary known to the lexicon
// (built-ins plus overrides), for use by text generators.
func (l *Lexicon) Words() []string {
	seen := map[string]bool{}
	var out []string
	for w := range vagueParameters {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for w := range l.overrides {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
