package claims

import (
	"bytes"
	"strings"
	"testing"
)

func sampleDocument() *Document {
	return &Document{
		Title:    "Round trip",
		Sections: 2,
		Claims: []*Claim{
			{
				ID: 1, Text: "demand grew by 3%", Sentence: "context: demand grew by 3%",
				Section: 0, Kind: Explicit, Param: 0.03, HasParam: true, Cmp: OpEq,
				Correct: true,
				Truth: &GroundTruth{
					Relations: []string{"GED"}, Keys: []string{"K"},
					Attrs: []string{"2017", "2016"}, Formula: "a.A1 / b.A2 - 1",
					Value: 0.031,
				},
			},
			{
				ID: 2, Text: "expanded aggressively", Section: 1,
				Kind: General, Param: 1.0, HasParam: true, Cmp: OpGt,
			},
			{ID: 3, Text: "no parameter claim", Section: 1, Kind: General},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDocument()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != d.Title || got.Sections != d.Sections || len(got.Claims) != len(d.Claims) {
		t.Fatalf("document shape changed: %+v", got)
	}
	for i, c := range d.Claims {
		g := got.Claims[i]
		if g.ID != c.ID || g.Text != c.Text || g.Sentence != c.Sentence ||
			g.Section != c.Section || g.Kind != c.Kind || g.Correct != c.Correct ||
			g.HasParam != c.HasParam || g.Param != c.Param || (c.HasParam && g.Cmp != c.Cmp) {
			t.Errorf("claim %d changed: %+v vs %+v", c.ID, g, c)
		}
		if (g.Truth == nil) != (c.Truth == nil) {
			t.Fatalf("claim %d truth presence changed", c.ID)
		}
		if c.Truth != nil {
			if g.Truth.Formula != c.Truth.Formula || g.Truth.Value != c.Truth.Value ||
				len(g.Truth.Relations) != len(c.Truth.Relations) {
				t.Errorf("claim %d truth changed", c.ID)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"",
		"{not json",
		`{"title":"x","sections":1,"claims":[{"id":1,"kind":"weird"}]}`,
		`{"title":"x","sections":1,"claims":[{"id":1,"param":1,"cmp":"~"}]}`,
		`{"title":"x","sections":1,"claims":[{"id":1},{"id":1}]}`, // dup IDs
		`{"title":"x","sections":1,"claims":[{"id":1,"section":7}]}`,
		`{"unknown_field":true}`,
	}
	for _, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded", src)
		}
	}
}

func TestWriteJSONRejectsNilClaims(t *testing.T) {
	d := &Document{Title: "bad", Sections: 1, Claims: []*Claim{nil}}
	if err := d.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil claim accepted")
	}
}

func TestJSONOmitsAbsentParam(t *testing.T) {
	d := &Document{Title: "t", Sections: 1, Claims: []*Claim{{ID: 1, Text: "x", Kind: General}}}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"param"`) || strings.Contains(buf.String(), `"cmp"`) {
		t.Errorf("param fields should be omitted:\n%s", buf.String())
	}
}
