package guard

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable time source the limiter tests advance by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestQuotaRateLimiterBurstAndRefill(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	l := NewRateLimiter(2, 3, clk.Now) // 2/s, burst 3

	// The full burst is available immediately.
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	// The bucket is now empty; the next request is rejected with a
	// Retry-After covering one token at 2/s = 500ms.
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("4th request within burst window allowed")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	// After the advertised wait the request goes through.
	clk.Advance(retry)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("request after advertised Retry-After still rejected")
	}
}

func TestQuotaRateLimiterKeysAreIndependent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	l := NewRateLimiter(1, 1, clk.Now)
	if ok, _ := l.Allow("hostile"); !ok {
		t.Fatal("first request rejected")
	}
	if ok, _ := l.Allow("hostile"); ok {
		t.Fatal("hostile tenant's second request allowed")
	}
	// The other tenant's bucket is untouched by the hostile one.
	if ok, _ := l.Allow("polite"); !ok {
		t.Fatal("other tenant rejected because of hostile tenant's bucket")
	}
}

func TestQuotaRateLimiterBurstFloor(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	// burst < 1 would build a bucket that can never hold a whole token;
	// the constructor raises it to 1.
	l := NewRateLimiter(1, 0.25, clk.Now)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("burst floor not applied: first request rejected")
	}
}

func TestQuotaRateLimiterNilAllowsEverything(t *testing.T) {
	l := NewRateLimiter(0, 10, nil) // rate <= 0 => nil
	if l != nil {
		t.Fatal("rate <= 0 should return the nil limiter")
	}
	for i := 0; i < 100; i++ {
		if ok, retry := l.Allow("k"); !ok || retry != 0 {
			t.Fatal("nil limiter rejected a request")
		}
	}
}

func TestQuotaAcquireReleasePerKey(t *testing.T) {
	q := NewQuota(2)
	rel1, ok := q.Acquire("a")
	if !ok {
		t.Fatal("first acquire rejected")
	}
	rel2, ok := q.Acquire("a")
	if !ok {
		t.Fatal("second acquire rejected under max=2")
	}
	if _, ok := q.Acquire("a"); ok {
		t.Fatal("third acquire allowed over max=2")
	}
	// Another key has its own budget.
	relB, ok := q.Acquire("b")
	if !ok {
		t.Fatal("other key rejected at a's limit")
	}
	relB()
	if got := q.InFlight("a"); got != 2 {
		t.Fatalf("InFlight(a) = %d, want 2", got)
	}
	rel1()
	if got := q.InFlight("a"); got != 1 {
		t.Fatalf("InFlight(a) after release = %d, want 1", got)
	}
	// Release is idempotent: double-releasing must not free a slot twice.
	rel1()
	if got := q.InFlight("a"); got != 1 {
		t.Fatalf("InFlight(a) after double release = %d, want 1", got)
	}
	rel2()
	if got := q.InFlight("a"); got != 0 {
		t.Fatalf("InFlight(a) after all releases = %d, want 0", got)
	}
	// Fully released keys are dropped from the map (no per-tenant residue).
	if _, ok := q.Acquire("a"); !ok {
		t.Fatal("acquire after full release rejected")
	}
}

func TestQuotaNilAdmitsEverything(t *testing.T) {
	q := NewQuota(0)
	if q != nil {
		t.Fatal("max <= 0 should return the nil quota")
	}
	for i := 0; i < 10; i++ {
		rel, ok := q.Acquire("k")
		if !ok {
			t.Fatal("nil quota rejected an acquire")
		}
		rel() // must not panic
	}
	if q.InFlight("k") != 0 {
		t.Fatal("nil quota reports in-flight slots")
	}
}

func TestQuotaGateShedsAtBound(t *testing.T) {
	g := NewGate(2)
	leave1, ok := g.Enter()
	if !ok {
		t.Fatal("first enter rejected")
	}
	leave2, ok := g.Enter()
	if !ok {
		t.Fatal("second enter rejected under max=2")
	}
	if _, ok := g.Enter(); ok {
		t.Fatal("third enter admitted over max=2")
	}
	st := g.Stats()
	if st.InFlight != 2 || st.Shed != 1 || !st.Shedding {
		t.Fatalf("stats at bound = %+v, want in_flight=2 shed=1 shedding=true", st)
	}
	leave1()
	leave1() // idempotent
	if st := g.Stats(); st.InFlight != 1 || st.Shedding {
		t.Fatalf("stats after leave = %+v, want in_flight=1 shedding=false", st)
	}
	leave2()
}

func TestQuotaGateUnboundedCountsButNeverSheds(t *testing.T) {
	g := NewGate(0)
	if g == nil {
		t.Fatal("unbounded gate must not be nil: Drain depends on counting")
	}
	var leaves []func()
	for i := 0; i < 50; i++ {
		leave, ok := g.Enter()
		if !ok {
			t.Fatalf("unbounded gate shed request %d", i)
		}
		leaves = append(leaves, leave)
	}
	st := g.Stats()
	if st.InFlight != 50 || st.Shed != 0 || st.Shedding {
		t.Fatalf("unbounded stats = %+v, want in_flight=50 shed=0 shedding=false", st)
	}
	for _, leave := range leaves {
		leave()
	}
}

func TestQuotaGateDrain(t *testing.T) {
	g := NewGate(4)
	leave, _ := g.Enter()
	done := make(chan bool, 1)
	go func() { done <- g.Drain(2 * time.Second) }()
	time.Sleep(20 * time.Millisecond)
	leave()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Drain reported not-empty after the slot was released")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after the gate emptied")
	}
	// An occupied gate times out and reports false.
	leave2, _ := g.Enter()
	if g.Drain(30 * time.Millisecond) {
		t.Fatal("Drain reported empty while a request was in flight")
	}
	leave2()
}

func TestQuotaGateNilIsSafe(t *testing.T) {
	var g *Gate
	leave, ok := g.Enter()
	if !ok {
		t.Fatal("nil gate rejected")
	}
	leave()
	if !g.Drain(time.Millisecond) {
		t.Fatal("nil gate not drained")
	}
	if st := g.Stats(); st != (GateStats{}) {
		t.Fatalf("nil gate stats = %+v, want zero", st)
	}
}

// TestQuotaGuardUnderConcurrency hammers all three controls from many
// goroutines; run under -race this is the data-race check, and the final
// counts prove no slot is leaked or double-freed.
func TestQuotaGuardUnderConcurrency(t *testing.T) {
	l := NewRateLimiter(1000, 50, nil)
	q := NewQuota(8)
	g := NewGate(8)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b", "c"}[w%3]
			for i := 0; i < 200; i++ {
				l.Allow(key)
				if rel, ok := q.Acquire(key); ok {
					if leave, ok := g.Enter(); ok {
						leave()
					}
					rel()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, key := range []string{"a", "b", "c"} {
		if n := q.InFlight(key); n != 0 {
			t.Errorf("quota leaked %d slots for %s", n, key)
		}
	}
	if st := g.Stats(); st.InFlight != 0 {
		t.Errorf("gate leaked %d in-flight slots", st.InFlight)
	}
}
