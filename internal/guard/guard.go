// Package guard is the tenant-protection layer of the daemon: per-tenant
// token-bucket rate limits, per-tenant concurrent-run quotas, and a global
// admission gate that sheds load instead of queueing it.
//
// The three controls compose, cheapest first, on the expensive request
// paths (verification runs, session creation, answer posts):
//
//  1. RateLimiter.Allow — is this tenant sending too fast? (429,
//     Retry-After tells the client when the bucket refills)
//  2. Quota.Acquire — does this tenant already hold its share of
//     concurrent runs? (429; capacity frees when a run finishes)
//  3. Gate.Enter — is the process as a whole at its in-flight bound?
//     (503; the daemon is degraded for everyone, not just this tenant)
//
// Every rejection is O(1) and happens before any engine, session or store
// work: a hostile tenant exceeding its quota burns a map lookup per
// request, not a worker pool. Nothing in this package queues — a request
// is admitted now or rejected now, so overload can never grow an unbounded
// backlog of waiting goroutines.
package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// RateLimiter is a per-key token bucket: each key accrues rate tokens per
// second up to burst, and each Allow spends one. The zero value is not
// usable; nil (or rate <= 0) from NewRateLimiter means "unlimited" and
// every Allow succeeds — callers can keep a single code path.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	clock func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter granting rate requests/second with the
// given burst per key. rate <= 0 returns nil — an unlimited limiter.
// burst < 1 is raised to 1 (a bucket that can never hold a whole token
// would reject everything). clock overrides the time source for tests;
// nil means time.Now.
func NewRateLimiter(rate, burst float64, clock func() time.Time) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if clock == nil {
		clock = time.Now
	}
	return &RateLimiter{rate: rate, burst: burst, clock: clock, buckets: make(map[string]*bucket)}
}

// Allow spends one token from key's bucket. When the bucket is empty it
// reports ok=false and how long until the next token accrues — the
// Retry-After the HTTP layer should send. A nil limiter always allows.
func (l *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// Quota caps concurrent runs per key. Acquire either admits immediately
// (returning a release closure) or rejects — it never blocks. A nil Quota
// (max <= 0 from NewQuota) admits everything.
type Quota struct {
	max int

	mu       sync.Mutex
	inflight map[string]int
}

// NewQuota builds a quota admitting max concurrent acquisitions per key;
// max <= 0 returns nil, the unlimited quota.
func NewQuota(max int) *Quota {
	if max <= 0 {
		return nil
	}
	return &Quota{max: max, inflight: make(map[string]int)}
}

// Acquire claims one slot under key. On success release returns the slot
// (idempotent: extra calls are no-ops). On rejection release is nil.
func (q *Quota) Acquire(key string) (release func(), ok bool) {
	if q == nil {
		return func() {}, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inflight[key] >= q.max {
		return nil, false
	}
	q.inflight[key]++
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			defer q.mu.Unlock()
			if q.inflight[key] <= 1 {
				delete(q.inflight, key)
			} else {
				q.inflight[key]--
			}
		})
	}, true
}

// InFlight reports key's current slot count.
func (q *Quota) InFlight(key string) int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight[key]
}

// GateStats is a point-in-time admission summary for health reporting.
type GateStats struct {
	// InFlight is the number of admitted requests currently executing.
	InFlight int64 `json:"in_flight"`
	// Max is the admission bound (0 = unlimited).
	Max int64 `json:"max"`
	// Shed counts rejections over the gate's lifetime.
	Shed uint64 `json:"shed_total"`
	// Shedding reports whether the gate is at its bound right now.
	Shedding bool `json:"shedding"`
}

// Gate is the global admission bound: at most max requests execute at
// once, and everything beyond that is rejected immediately (the HTTP
// layer maps it to 503) — never queued, so overload cannot accumulate
// goroutines. The hot path is two atomics.
//
// Unlike the limiter and quota, an unbounded gate (max <= 0) is NOT nil:
// it still counts admissions without ever shedding, because Drain — the
// shutdown primitive — must work whether or not admission is bounded.
// A nil Gate is still safe and admits everything.
type Gate struct {
	max  int64 // 0 = unbounded (count, never shed)
	n    atomic.Int64
	shed atomic.Uint64
}

// NewGate builds an admission gate with the given in-flight bound;
// max <= 0 builds an unbounded gate that counts but never sheds.
func NewGate(max int) *Gate {
	if max < 0 {
		max = 0
	}
	return &Gate{max: int64(max)}
}

// Enter attempts admission. On success leave returns the slot (idempotent).
// On rejection leave is nil and the shed counter advances.
func (g *Gate) Enter() (leave func(), ok bool) {
	if g == nil {
		return func() {}, true
	}
	if n := g.n.Add(1); g.max > 0 && n > g.max {
		g.n.Add(-1)
		g.shed.Add(1)
		return nil, false
	}
	var once sync.Once
	return func() { once.Do(func() { g.n.Add(-1) }) }, true
}

// Drain waits until no admitted request is executing, polling the
// in-flight count, or until timeout. It reports whether the gate emptied.
// Shutdown uses it between cancelling in-flight run contexts and closing
// the store: once the gate is empty no handler can be mid-journal-append.
// A nil Gate is always drained.
func (g *Gate) Drain(timeout time.Duration) bool {
	if g == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		if g.n.Load() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return g.n.Load() == 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Stats reports the gate's current state; zero-valued for a nil gate.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	n := g.n.Load()
	return GateStats{InFlight: n, Max: g.max, Shed: g.shed.Load(), Shedding: g.max > 0 && n >= g.max}
}
