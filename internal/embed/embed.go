// Package embed trains word embeddings from the document corpus itself,
// substituting for the pre-trained GloVe vectors used in the paper (not
// shippable here). The method is classical and stdlib-only:
//
//  1. build a word–word co-occurrence matrix over a sliding window,
//  2. weight it by positive pointwise mutual information (PPMI),
//  3. project the sparse PPMI rows to a low dimension with a seeded random
//     projection (a Johnson–Lindenstrauss map).
//
// The resulting vectors place distributionally similar words near each
// other, which is the only property the downstream feature pipeline
// (averaged sentence embedding, Figure 4) relies on.
package embed

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"github.com/repro/scrutinizer/internal/textproc"
)

// Config controls embedding training.
type Config struct {
	// Dim is the embedding dimension (paper-scale GloVe uses 50–300; the
	// default here is 64).
	Dim int
	// Window is the co-occurrence window radius in tokens (default 4).
	Window int
	// MinCount drops words seen fewer times (default 2).
	MinCount int
	// Seed drives the random projection; fixed seed -> reproducible
	// embeddings.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	return c
}

// cooc is one co-occurrence event — or, after compaction, the accumulated
// weight of one distinct (word, context) pair.
type cooc struct {
	w, c int32
	wgt  float64
}

// compactCooc sorts triplets by (word, context) and merges duplicate pairs
// in place, returning the shortened slice. Train calls it periodically so
// the accumulation buffer stays proportional to distinct pairs, not total
// co-occurrence events.
func compactCooc(trips []cooc) []cooc {
	slices.SortFunc(trips, func(a, b cooc) int {
		if a.w != b.w {
			return int(a.w) - int(b.w)
		}
		return int(a.c) - int(b.c)
	})
	out := trips[:0]
	for k := 0; k < len(trips); {
		cur := trips[k]
		k++
		for k < len(trips) && trips[k].w == cur.w && trips[k].c == cur.c {
			cur.wgt += trips[k].wgt
			k++
		}
		out = append(out, cur)
	}
	return out
}

// Model holds trained word vectors.
type Model struct {
	dim   int
	vocab map[string]int
	vecs  [][]float64
}

// Train builds embeddings from sentences (raw text; tokenisation uses
// textproc.Tokenize).
func Train(sentences []string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(sentences) == 0 {
		return nil, fmt.Errorf("embed: no sentences to train on")
	}

	// Pass 1: vocabulary with counts.
	counts := make(map[string]int)
	tokenised := make([][]string, len(sentences))
	for i, s := range sentences {
		toks := textproc.Tokenize(s)
		tokenised[i] = toks
		for _, t := range toks {
			counts[t]++
		}
	}
	words := make([]string, 0, len(counts))
	for w, c := range counts {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("embed: vocabulary empty after MinCount=%d filter", cfg.MinCount)
	}
	sort.Strings(words)
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}

	// Pass 2: co-occurrence counts within the window, distance-weighted
	// 1/d as in GloVe. Pairs are accumulated as flat (word, context,
	// weight) triplets in one growing slice instead of a hash map — the
	// hot loop is a pure append, and sorting both merges duplicates and
	// fixes the deterministic iteration order the projection pass needs
	// (the map version had to extract and sort its keys anyway). So that
	// peak memory tracks the number of distinct pairs rather than total
	// co-occurrence events (corpus-length-bound at FEVER scale), the
	// slice is compacted in place — sort + merge — whenever it doubles
	// past the last compacted size.
	var trips []cooc
	compactAt := 1 << 16
	rowSum := make([]float64, len(words))
	var total float64
	for _, toks := range tokenised {
		for i, w := range toks {
			wi, ok := vocab[w]
			if !ok {
				continue
			}
			for j := i + 1; j < len(toks) && j <= i+cfg.Window; j++ {
				cj, ok := vocab[toks[j]]
				if !ok {
					continue
				}
				wgt := 1.0 / float64(j-i)
				trips = append(trips,
					cooc{int32(wi), int32(cj), wgt},
					cooc{int32(cj), int32(wi), wgt})
				rowSum[wi] += wgt
				rowSum[cj] += wgt
				total += 2 * wgt
			}
		}
		if len(trips) >= compactAt {
			trips = compactCooc(trips)
			if next := 2 * len(trips); next > compactAt {
				compactAt = next
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("embed: no co-occurrences (sentences too short?)")
	}
	trips = compactCooc(trips)

	// Pass 3: PPMI rows projected through a seeded sparse random
	// projection. Each vocabulary word's context dimension gets a random
	// ±1/sqrt(dim) direction; a word vector is the PPMI-weighted sum of
	// its context words' directions.
	rng := rand.New(rand.NewSource(cfg.Seed))
	proj := make([][]float64, len(words))
	for i := range proj {
		row := make([]float64, cfg.Dim)
		for d := range row {
			if rng.Intn(2) == 0 {
				row[d] = 1 / math.Sqrt(float64(cfg.Dim))
			} else {
				row[d] = -1 / math.Sqrt(float64(cfg.Dim))
			}
		}
		proj[i] = row
	}
	vecs := make([][]float64, len(words))
	for i := range vecs {
		vecs[i] = make([]float64, cfg.Dim)
	}
	// trips is compacted: one entry per distinct (word, context) pair, in
	// sorted order, which keeps floating-point accumulation deterministic
	// across runs.
	for _, t := range trips {
		pmi := math.Log(t.wgt * total / (rowSum[t.w] * rowSum[t.c]))
		if pmi <= 0 {
			continue
		}
		pr := proj[t.c]
		vw := vecs[t.w]
		for d := range vw {
			vw[d] += pmi * pr[d]
		}
	}
	// L2-normalise non-zero vectors.
	for i := range vecs {
		var n float64
		for _, x := range vecs[i] {
			n += x * x
		}
		if n > 0 {
			n = math.Sqrt(n)
			for d := range vecs[i] {
				vecs[i][d] /= n
			}
		}
	}
	return &Model{dim: cfg.Dim, vocab: vocab, vecs: vecs}, nil
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of embedded words.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Has reports whether the model has a vector for word.
func (m *Model) Has(word string) bool {
	_, ok := m.vocab[word]
	return ok
}

// Vector returns the embedding of word, or nil if unknown. The caller must
// not mutate the returned slice.
func (m *Model) Vector(word string) []float64 {
	i, ok := m.vocab[word]
	if !ok {
		return nil
	}
	return m.vecs[i]
}

// SentenceVector returns the mean of the word vectors of the sentence's
// tokens (the paper: "to get the embedding of a sentence, we average the
// embedding of each word"). Unknown words are skipped; an all-unknown
// sentence yields the zero vector.
func (m *Model) SentenceVector(sentence string) []float64 {
	out := make([]float64, m.dim)
	n := 0
	for _, tok := range textproc.Tokenize(sentence) {
		if v := m.Vector(tok); v != nil {
			for d := range out {
				out[d] += v[d]
			}
			n++
		}
	}
	if n > 0 {
		for d := range out {
			out[d] /= float64(n)
		}
	}
	return out
}

// Similarity returns the cosine similarity between two words' vectors, or 0
// when either is unknown.
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	var dot, na, nb float64
	for d := range va {
		dot += va[d] * vb[d]
		na += va[d] * va[d]
		nb += vb[d] * vb[d]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Nearest returns the k words most similar to word (excluding itself),
// sorted by descending similarity with lexicographic tie-break.
func (m *Model) Nearest(word string, k int) []string {
	v := m.Vector(word)
	if v == nil || k <= 0 {
		return nil
	}
	type scored struct {
		w string
		s float64
	}
	var all []scored
	for w := range m.vocab {
		if w == word {
			continue
		}
		all = append(all, scored{w, m.Similarity(word, w)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].w < all[j].w
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].w
	}
	return out
}
