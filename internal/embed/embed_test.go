package embed

import (
	"fmt"
	"math"
	"testing"
)

// trainingCorpus builds sentences where "coal"/"gas"/"oil" share contexts
// and "solar"/"wind" share different contexts, so distributional similarity
// should cluster them.
func trainingCorpus() []string {
	var out []string
	fossil := []string{"coal", "gas", "oil"}
	renewable := []string{"solar", "wind"}
	for i := 0; i < 30; i++ {
		for _, f := range fossil {
			out = append(out,
				fmt.Sprintf("global %s demand grew strongly in power generation sector %d", f, i%3),
				fmt.Sprintf("%s fired plants increased emissions output", f))
		}
		for _, r := range renewable {
			out = append(out,
				fmt.Sprintf("new %s capacity additions expanded in renewable markets %d", r, i%3),
				fmt.Sprintf("%s farms installed record renewable capacity", r))
		}
	}
	return out
}

func TestTrainBasicProperties(t *testing.T) {
	m, err := Train(trainingCorpus(), Config{Dim: 32, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 32 {
		t.Errorf("Dim = %d", m.Dim())
	}
	if m.VocabSize() == 0 {
		t.Fatal("empty vocabulary")
	}
	if !m.Has("coal") || !m.Has("solar") {
		t.Fatal("expected words missing")
	}
	if m.Has("neverseen") {
		t.Error("unknown word reported present")
	}
	if m.Vector("neverseen") != nil {
		t.Error("unknown vector should be nil")
	}
	// Vectors are unit-norm (or zero).
	v := m.Vector("coal")
	var n float64
	for _, x := range v {
		n += x * x
	}
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("coal vector norm^2 = %g, want 1", n)
	}
}

func TestTrainDistributionalSimilarity(t *testing.T) {
	m, err := Train(trainingCorpus(), Config{Dim: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	within := m.Similarity("coal", "gas")
	across := m.Similarity("coal", "solar")
	if within <= across {
		t.Errorf("similarity(coal,gas)=%g should exceed similarity(coal,solar)=%g", within, across)
	}
}

func TestTrainDeterministic(t *testing.T) {
	sents := trainingCorpus()
	m1, err := Train(sents, Config{Dim: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(sents, Config{Dim: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := m1.Vector("coal"), m2.Vector("coal")
	for d := range v1 {
		if v1[d] != v2[d] {
			t.Fatalf("not deterministic at dim %d: %g vs %g", d, v1[d], v2[d])
		}
	}
}

func TestSentenceVector(t *testing.T) {
	m, err := Train(trainingCorpus(), Config{Dim: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sv := m.SentenceVector("coal demand grew")
	if len(sv) != 16 {
		t.Fatalf("SentenceVector len = %d", len(sv))
	}
	var nonzero bool
	for _, x := range sv {
		if x != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("known-word sentence should have nonzero embedding")
	}
	// All-unknown sentence -> zero vector, not NaN.
	sv = m.SentenceVector("xqzt blorp")
	for _, x := range sv {
		if x != 0 || math.IsNaN(x) {
			t.Errorf("unknown sentence vector should be zeros, got %v", sv)
			break
		}
	}
}

func TestSimilarityEdgeCases(t *testing.T) {
	m, err := Train(trainingCorpus(), Config{Dim: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Similarity("coal", "neverseen"); got != 0 {
		t.Errorf("unknown word similarity = %g", got)
	}
	if got := m.Similarity("coal", "coal"); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %g", got)
	}
}

func TestNearest(t *testing.T) {
	m, err := Train(trainingCorpus(), Config{Dim: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	near := m.Nearest("coal", 5)
	if len(near) != 5 {
		t.Fatalf("Nearest = %v", near)
	}
	found := false
	for _, w := range near {
		if w == "gas" || w == "oil" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a fossil sibling among nearest of coal, got %v", near)
	}
	if m.Nearest("neverseen", 3) != nil {
		t.Error("nearest of unknown should be nil")
	}
	if m.Nearest("coal", 0) != nil {
		t.Error("k=0 should be nil")
	}
	if got := m.Nearest("coal", 100000); len(got) != m.VocabSize()-1 {
		t.Errorf("k beyond vocab: %d, want %d", len(got), m.VocabSize()-1)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("no sentences accepted")
	}
	if _, err := Train([]string{"one two"}, Config{MinCount: 50}); err == nil {
		t.Error("empty vocabulary accepted")
	}
	// Single-token sentences: vocabulary exists but no co-occurrence.
	if _, err := Train([]string{"a", "a", "a"}, Config{MinCount: 1}); err == nil {
		t.Error("no co-occurrences accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Dim != 64 || c.Window != 4 || c.MinCount != 2 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestCompactCoocMergesAndSorts(t *testing.T) {
	trips := []cooc{
		{2, 1, 0.5},
		{0, 3, 1.0},
		{2, 1, 0.25},
		{0, 3, 0.5},
		{1, 1, 2.0},
	}
	got := compactCooc(trips)
	want := []cooc{{0, 3, 1.5}, {1, 1, 2.0}, {2, 1, 0.75}}
	if len(got) != len(want) {
		t.Fatalf("compactCooc len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i].w != want[i].w || got[i].c != want[i].c || math.Abs(got[i].wgt-want[i].wgt) > 1e-12 {
			t.Errorf("compactCooc[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Compacting twice is a no-op.
	again := compactCooc(got)
	for i := range want {
		if again[i] != got[i] {
			t.Errorf("double compaction changed entry %d", i)
		}
	}
	if len(compactCooc(nil)) != 0 {
		t.Error("empty input should stay empty")
	}
}
