// Compilation of expression trees into flat postfix programs.
//
// The tree interpreter (Eval) resolves every cell reference through an Env
// interface and every function through a map, and allocates an argument
// slice per Call — fine for one-off evaluation, far too slow for tentative
// execution, which evaluates the same formula for thousands of candidate
// variable assignments. Compile lowers a tree once into a Program: opcode +
// operand slices with constants, cell slots, numeric attribute-variable
// slots and function pointers all resolved at compile time. Evaluation is
// then a single pass over the opcode slice on a caller-owned stack — no
// interface dispatch, no map look-ups, no allocations.
//
// A Program stays symbolic about *what* its inputs are: cell slots carry
// (alias slot, attribute label) and numeric slots carry attribute-variable
// names. Binding those slots to concrete corpus cells is the caller's job
// (package query binds them against a table.Index); Eval just reads the
// bound values from the cellVals / attrNums slices. The split is what lets
// the query generator re-bind one compiled program to thousands of integer
// slot tuples.
package expr

import (
	"errors"
	"fmt"
	"math"
)

type opcode uint8

const (
	opConst opcode = iota // push consts[a]
	opCell                // push cellVals[a]
	opAttr                // push attrNums[a]
	opAdd
	opSub
	opMul
	opDiv
	opPow
	opGT
	opLT
	opGE
	opLE
	opEQ
	opNE
	opNeg
	opCall // call fns[a] with b args popped off the stack
)

// instr is one postfix instruction.
type instr struct {
	op   opcode
	a, b int32
}

// CellSlot identifies one distinct cell reference of a compiled program:
// the interned alias slot plus the attribute exactly as written — either a
// concrete label ("2017") or an attribute-variable name ("A1"). Binding the
// slot to a corpus cell (including resolving the attribute variable) is the
// caller's job.
type CellSlot struct {
	Alias int32
	Attr  string
}

// Program is a compiled expression: flat postfix code over pre-resolved
// operand tables. Programs are immutable and safe for concurrent Eval with
// distinct stacks.
type Program struct {
	code     []instr
	consts   []float64
	cells    []CellSlot
	aliases  []string
	numVars  []string
	fns      []function
	fnNames  []string
	maxStack int
}

// ErrDivisionByZero is the compiled counterpart of the interpreter's
// division-by-zero error; a sentinel so the hot path never formats.
var ErrDivisionByZero = errors.New("expr: division by zero")

// Compile lowers an expression tree into a Program. It fails on the inputs
// the interpreter would always reject at evaluation time: unknown
// operators, unknown functions and arity mismatches.
func Compile(n Node) (*Program, error) {
	if n == nil {
		return nil, fmt.Errorf("expr: compiling nil expression")
	}
	p := &Program{}
	aliasSlot := map[string]int32{}
	cellSlot := map[CellSlot]int32{}
	numSlot := map[string]int32{}
	depth, maxDepth := 0, 0
	push := func(in instr, delta int) {
		p.code = append(p.code, in)
		depth += delta
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	var emit func(Node) error
	emit = func(n Node) error {
		switch t := n.(type) {
		case Num:
			idx := int32(-1)
			for i, c := range p.consts {
				if math.Float64bits(c) == math.Float64bits(t.Value) {
					idx = int32(i)
					break
				}
			}
			if idx < 0 {
				idx = int32(len(p.consts))
				p.consts = append(p.consts, t.Value)
			}
			push(instr{op: opConst, a: idx}, 1)
		case CellRef:
			as, ok := aliasSlot[t.Alias]
			if !ok {
				as = int32(len(p.aliases))
				aliasSlot[t.Alias] = as
				p.aliases = append(p.aliases, t.Alias)
			}
			slot := CellSlot{Alias: as, Attr: t.Attr}
			cs, ok := cellSlot[slot]
			if !ok {
				cs = int32(len(p.cells))
				cellSlot[slot] = cs
				p.cells = append(p.cells, slot)
			}
			push(instr{op: opCell, a: cs}, 1)
		case AttrVar:
			ns, ok := numSlot[t.Name]
			if !ok {
				ns = int32(len(p.numVars))
				numSlot[t.Name] = ns
				p.numVars = append(p.numVars, t.Name)
			}
			push(instr{op: opAttr, a: ns}, 1)
		case BinOp:
			var op opcode
			switch t.Op {
			case "+":
				op = opAdd
			case "-":
				op = opSub
			case "*":
				op = opMul
			case "/":
				op = opDiv
			case "^":
				op = opPow
			case ">":
				op = opGT
			case "<":
				op = opLT
			case ">=":
				op = opGE
			case "<=":
				op = opLE
			case "=":
				op = opEQ
			case "!=":
				op = opNE
			default:
				return fmt.Errorf("expr: unknown operator %q", t.Op)
			}
			if err := emit(t.Left); err != nil {
				return err
			}
			if err := emit(t.Right); err != nil {
				return err
			}
			push(instr{op: op}, -1)
		case Neg:
			if err := emit(t.Operand); err != nil {
				return err
			}
			push(instr{op: opNeg}, 0)
		case Call:
			fn, ok := functions[t.Fn]
			if !ok {
				return fmt.Errorf("expr: unknown function %q", t.Fn)
			}
			if err := CheckArity(t.Fn, len(t.Args)); err != nil {
				return err
			}
			for _, a := range t.Args {
				if err := emit(a); err != nil {
					return err
				}
			}
			fi := int32(len(p.fns))
			p.fns = append(p.fns, fn)
			p.fnNames = append(p.fnNames, t.Fn)
			push(instr{op: opCall, a: fi, b: int32(len(t.Args))}, -(len(t.Args) - 1))
		default:
			return fmt.Errorf("expr: cannot compile node %T", n)
		}
		return nil
	}
	if err := emit(n); err != nil {
		return nil, err
	}
	p.maxStack = maxDepth
	return p, nil
}

// Aliases returns the binding aliases referenced by the program, in
// first-appearance order (same order as the tree's Aliases). The caller
// must not mutate the returned slice.
func (p *Program) Aliases() []string { return p.aliases }

// Cells returns the distinct cell slots of the program, in first-appearance
// order; cellVals passed to Eval align with this slice. The caller must not
// mutate it.
func (p *Program) Cells() []CellSlot { return p.cells }

// NumVars returns the attribute-variable names used as numbers, in
// first-appearance order; attrNums passed to Eval align with this slice.
// The caller must not mutate it.
func (p *Program) NumVars() []string { return p.numVars }

// MaxStack is the stack size Eval needs.
func (p *Program) MaxStack() int { return p.maxStack }

// Eval runs the program. cellVals holds the bound value of every cell slot
// (aligned with Cells), attrNums the numeric value of every attribute
// variable used as a number (aligned with NumVars), and stack is the
// caller-owned evaluation stack of at least MaxStack length. Eval performs
// no allocations on the success path; error paths mirror the tree
// interpreter's failure cases (division by zero, function domain errors).
func (p *Program) Eval(cellVals, attrNums, stack []float64) (float64, error) {
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opConst:
			stack[sp] = p.consts[in.a]
			sp++
		case opCell:
			stack[sp] = cellVals[in.a]
			sp++
		case opAttr:
			stack[sp] = attrNums[in.a]
			sp++
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			if stack[sp] == 0 {
				return 0, ErrDivisionByZero
			}
			stack[sp-1] /= stack[sp]
		case opPow:
			sp--
			stack[sp-1] = math.Pow(stack[sp-1], stack[sp])
		case opGT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] > stack[sp])
		case opLT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] < stack[sp])
		case opGE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] >= stack[sp])
		case opLE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] <= stack[sp])
		case opEQ:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] == stack[sp])
		case opNE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] != stack[sp])
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opCall:
			n := int(in.b)
			sp -= n - 1
			v, err := p.fns[in.a].impl(stack[sp-1 : sp-1+n])
			if err != nil {
				return 0, err
			}
			stack[sp-1] = v
		}
	}
	return stack[0], nil
}
