package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func evalOrFatal(t *testing.T, src string, env Env) float64 {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := Eval(n, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

var emptyEnv = MapEnv{}

func TestParseEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"2 ^ 3 ^ 2", 512}, // right-assoc
		{"-3 + 5", 2},
		{"--4", 4},
		{"1 - 2 - 3", -4}, // left-assoc
		{"2e2 + 0.5", 200.5},
		{"ABS(-3.5)", 3.5},
		{"POWER(2, 10)", 1024},
		{"SQRT(16)", 4},
		{"MIN(3, 1, 2)", 1},
		{"MAX(3, 1, 2)", 3},
		{"SUM(1, 2, 3, 4)", 10},
		{"AVG(2, 4)", 3},
		{"ROUND(2.6)", 3},
		{"SIGN(-9)", -1},
		{"SIGN(0)", 0},
		{"EXP(0)", 1},
		{"LN(1)", 0},
		{"LOG(100)", 2},
		{"CAGR(121, 100, 2)", 0.1},
		{"3 > 2", 1},
		{"3 < 2", 0},
		{"2 >= 2", 1},
		{"1 <= 0", 0},
		{"5 = 5", 1},
		{"5 != 5", 0},
	}
	for _, c := range cases {
		if got := evalOrFatal(t, c.src, emptyEnv); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%q = %g, want %g", c.src, got, c.want)
		}
	}
}

func TestParseCellRefsAndAttrVars(t *testing.T) {
	env := MapEnv{
		Cells: map[string]float64{"a.2017": 22209, "b.2016": 21546},
		Attrs: map[string]string{"A1": "2017", "A2": "2016"},
	}
	// The paper's Example 1 CAGR check.
	got := evalOrFatal(t, "POWER(a.A1/b.A2, 1/(A1-A2)) - 1", env)
	want := 22209.0/21546.0 - 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CAGR formula = %g, want %g", got, want)
	}
	// Concrete attributes bypass variable resolution.
	got = evalOrFatal(t, "a.2017 / b.2016", env)
	if math.Abs(got-22209.0/21546.0) > 1e-9 {
		t.Errorf("concrete refs = %g", got)
	}
}

func TestParseQuotedAttribute(t *testing.T) {
	env := MapEnv{Cells: map[string]float64{"a.Total Final": 10}}
	got := evalOrFatal(t, `a."Total Final" * 2`, env)
	if got != 20 {
		t.Errorf("quoted attr = %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "POWER(1", "1 ) 2", "foo", "foo + 1",
		"a.", "1..2", `a."unterminated`, "!", "!3", "1 ! 2",
		"POWER(1,2,3)", "NOSUCHFN(1)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUnknownIdentSuggestsShape(t *testing.T) {
	_, err := Parse("banana")
	if err == nil || !strings.Contains(err.Error(), "unknown identifier") {
		t.Errorf("got %v", err)
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{Attrs: map[string]string{"A1": "NotANumber"}}
	cases := []string{
		"1/0",
		"SQRT(-1)",
		"LOG(0)",
		"LN(-1)",
		"CAGR(1, 0, 5)",
		"CAGR(1, 1, 0)",
		"POWER(-1, 0.5)",
		"a.2017", // no cell
		"A1 + 1", // attr not numeric
		"A9 + 1", // unbound attr var
	}
	for _, src := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Eval(n, env); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
	if _, err := Eval(nil, emptyEnv); err == nil {
		t.Error("Eval(nil) should error")
	}
	if _, err := Eval(BinOp{Op: "?", Left: Num{1}, Right: Num{1}}, emptyEnv); err == nil {
		t.Error("unknown operator should error")
	}
	if _, err := Eval(Call{Fn: "POWER", Args: []Node{Num{1}}}, emptyEnv); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := Eval(Call{Fn: "SUM"}, emptyEnv); err == nil {
		t.Error("variadic with zero args should error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"POWER(a.A1/b.A2, 1/(A1-A2)) - 1",
		"(a.2017 / b.2000)",
		"a.A1 - b.A2 + 3.5",
		"SUM(a.A1, b.A2, 1) / AVG(a.A1, 2)",
		"a.A1 > 100",
		"-(a.A1 + 1)",
		"CAGR(a.A1, b.A2, A1 - A2)",
	}
	env := MapEnv{
		Cells: map[string]float64{"a.2017": 5, "b.2016": 4, "a.2016": 3, "b.2017": 6},
		Attrs: map[string]string{"A1": "2017", "A2": "2016"},
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, n1.String(), err)
		}
		v1, err1 := Eval(n1, env)
		v2, err2 := Eval(n2, env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round trip errors differ for %q: %v vs %v", src, err1, err2)
		}
		if err1 == nil && math.Abs(v1-v2) > 1e-12 {
			t.Errorf("round trip of %q: %g vs %g", src, v1, v2)
		}
		if !Equal(n1, n2) {
			t.Errorf("round trip of %q not structurally equal: %q vs %q", src, n1, n2)
		}
	}
}

func TestAliasesAndAttrVars(t *testing.T) {
	n := MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1 + c.2017")
	al := Aliases(n)
	if len(al) != 3 || al[0] != "a" || al[1] != "b" || al[2] != "c" {
		t.Errorf("Aliases = %v", al)
	}
	av := AttrVars(n)
	if len(av) != 2 || av[0] != "A1" || av[1] != "A2" {
		t.Errorf("AttrVars = %v", av)
	}
}

func TestIsAttrVarName(t *testing.T) {
	yes := []string{"A1", "A2", "A10", "A999"}
	no := []string{"", "A", "B1", "a1", "A1b", "AA1", "2017"}
	for _, s := range yes {
		if !IsAttrVarName(s) {
			t.Errorf("IsAttrVarName(%q) = false", s)
		}
	}
	for _, s := range no {
		if IsAttrVarName(s) {
			t.Errorf("IsAttrVarName(%q) = true", s)
		}
	}
}

func TestComplexity(t *testing.T) {
	// a.A1 / b.A2 has 2 cell refs + 1 op = 3
	if got := Complexity(MustParse("a.A1 / b.A2")); got != 3 {
		t.Errorf("Complexity = %d, want 3", got)
	}
	// POWER(a.A1/b.A2, 1/(A1-A2)) - 1:
	// Call, 2 BinOp(/), BinOp(-) outer, BinOp(-) inner, 2 CellRef, 2 AttrVar, 2 Num = 11
	if got := Complexity(MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1")); got != 11 {
		t.Errorf("Complexity = %d, want 11", got)
	}
	if got := Complexity(nil); got != 0 {
		t.Errorf("Complexity(nil) = %d", got)
	}
}

func TestFunctionsListSortedAndComplete(t *testing.T) {
	fns := Functions()
	if len(fns) < 10 {
		t.Fatalf("library too small: %v", fns)
	}
	for i := 1; i < len(fns); i++ {
		if fns[i-1] >= fns[i] {
			t.Fatalf("Functions not sorted: %v", fns)
		}
	}
	for _, f := range []string{"POWER", "CAGR", "ABS", "SUM"} {
		if !IsFunction(f) {
			t.Errorf("IsFunction(%q) = false", f)
		}
	}
	if !IsFunction("power") {
		t.Error("IsFunction should be case-insensitive")
	}
	if IsFunction("NOPE") {
		t.Error("IsFunction(NOPE) = true")
	}
}

func TestQuotedAttrRendering(t *testing.T) {
	// Attributes that are neither plain numbers nor identifiers render
	// quoted and round-trip.
	cases := []CellRef{
		{Alias: "a", Attr: "2024Q4"},
		{Alias: "a", Attr: "Total Final"},
		{Alias: "a", Attr: "H1"},
		{Alias: "a", Attr: "2017"},
	}
	env := MapEnv{Cells: map[string]float64{
		"a.2024Q4": 1, "a.Total Final": 2, "a.H1": 3, "a.2017": 4,
	}}
	for _, c := range cases {
		n, err := Parse(c.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", c.String(), err)
		}
		v1, err1 := Eval(c, env)
		v2, err2 := Eval(n, env)
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Errorf("round trip of %q: %g/%v vs %g/%v", c.String(), v1, err1, v2, err2)
		}
	}
	// Quoting shape checks.
	if got := (CellRef{Alias: "a", Attr: "2024Q4"}).String(); got != `a."2024Q4"` {
		t.Errorf("mixed attr = %q", got)
	}
	if got := (CellRef{Alias: "a", Attr: "2017"}).String(); got != "a.2017" {
		t.Errorf("numeric attr = %q", got)
	}
	if got := (CellRef{Alias: "a", Attr: "Total"}).String(); got != "a.Total" {
		t.Errorf("ident attr = %q", got)
	}
	if got := (CellRef{Alias: "a", Attr: ""}).String(); got != `a.""` {
		t.Errorf("empty attr = %q", got)
	}
}

func TestComparisonOperatorsOnCellValues(t *testing.T) {
	env := MapEnv{Cells: map[string]float64{"d.2017": 150}}
	// Example 9's Boolean check shape.
	if got := evalOrFatal(t, "d.2017 > 100", env); got != 1 {
		t.Errorf("boolean check = %g", got)
	}
	if got := evalOrFatal(t, "d.2017 <= 100", env); got != 0 {
		t.Errorf("boolean check = %g", got)
	}
}

func TestDeepNesting(t *testing.T) {
	// Nested combinations of functions (Definition 3 allows nesting).
	env := MapEnv{Cells: map[string]float64{"a.2017": 16}}
	got := evalOrFatal(t, "SQRT(SQRT(ABS(-a.2017)))", env)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("nested = %g, want 2", got)
	}
	// Deep parenthesisation parses fine.
	got = evalOrFatal(t, "((((((1))))))", emptyEnv)
	if got != 1 {
		t.Errorf("parens = %g", got)
	}
}

// Property: any generated expression over safe operations parses back from
// its String() and evaluates to the same value.
func TestRandomExprRoundTripProperty(t *testing.T) {
	env := MapEnv{
		Cells: map[string]float64{"a.2017": 3, "b.2016": 7},
		Attrs: map[string]string{"A1": "2017", "A2": "2016"},
	}
	var gen func(rng *rand.Rand, depth int) Node
	gen = func(rng *rand.Rand, depth int) Node {
		if depth <= 0 || rng.Float64() < 0.3 {
			switch rng.Intn(4) {
			case 0:
				return Num{Value: float64(rng.Intn(20) + 1)}
			case 1:
				return CellRef{Alias: "a", Attr: "A1"}
			case 2:
				return CellRef{Alias: "b", Attr: "A2"}
			default:
				return AttrVar{Name: "A1"}
			}
		}
		switch rng.Intn(6) {
		case 0, 1:
			return BinOp{Op: []string{"+", "-", "*"}[rng.Intn(3)], Left: gen(rng, depth-1), Right: gen(rng, depth-1)}
		case 2:
			return Neg{Operand: gen(rng, depth-1)}
		case 3:
			return Call{Fn: "SUM", Args: []Node{gen(rng, depth-1), gen(rng, depth-1)}}
		case 4:
			return Call{Fn: "ABS", Args: []Node{gen(rng, depth-1)}}
		default:
			return Call{Fn: "MAX", Args: []Node{gen(rng, depth-1), gen(rng, depth-1)}}
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := gen(rng, 4)
		parsed, err := Parse(n.String())
		if err != nil {
			return false
		}
		v1, err1 := Eval(n, env)
		v2, err2 := Eval(parsed, env)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return math.Abs(v1-v2) < 1e-9 || (math.IsNaN(v1) && math.IsNaN(v2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Complexity is positive for any non-nil expression and additive
// under BinOp composition.
func TestComplexityAdditiveProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		a := Num{Value: float64(x)}
		b := Num{Value: float64(y)}
		return Complexity(BinOp{Op: "+", Left: a, Right: b}) == Complexity(a)+Complexity(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
