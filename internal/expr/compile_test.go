package expr

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// evalCompiled compiles n and evaluates it under env with the same binding
// rules the interpreter applies: cell attributes resolve through Env.Attr
// when bound, numeric attribute variables must resolve and parse. It is the
// test harness's counterpart of the binding done by package query.
func evalCompiled(n Node, env Env) (float64, error) {
	p, err := Compile(n)
	if err != nil {
		return 0, err
	}
	cellVals := make([]float64, len(p.Cells()))
	for i, cs := range p.Cells() {
		attr := cs.Attr
		if resolved, ok := env.Attr(attr); ok {
			attr = resolved
		}
		v, err := env.Cell(p.Aliases()[cs.Alias], attr)
		if err != nil {
			return 0, err
		}
		cellVals[i] = v
	}
	nums := make([]float64, len(p.NumVars()))
	for i, name := range p.NumVars() {
		label, ok := env.Attr(name)
		if !ok {
			return 0, fmt.Errorf("unbound attribute variable %s", name)
		}
		v, err := strconv.ParseFloat(label, 64)
		if err != nil {
			return 0, fmt.Errorf("attribute %q not numeric", label)
		}
		nums[i] = v
	}
	stack := make([]float64, p.MaxStack())
	return p.Eval(cellVals, nums, stack)
}

// assertEquivalent checks that the interpreter and the compiled program
// agree on n under env: same error-ness, and bit-identical values on
// success.
func assertEquivalent(t *testing.T, n Node, env Env) {
	t.Helper()
	iv, ierr := Eval(n, env)
	cv, cerr := evalCompiled(n, env)
	if (ierr != nil) != (cerr != nil) {
		t.Fatalf("%s: interpreter err=%v, compiled err=%v", n, ierr, cerr)
	}
	if ierr != nil {
		return
	}
	if math.IsNaN(iv) && math.IsNaN(cv) {
		return
	}
	if math.Float64bits(iv) != math.Float64bits(cv) {
		t.Fatalf("%s: interpreter=%v compiled=%v", n, iv, cv)
	}
}

// testEnv builds a MapEnv over aliases a,b,c and attributes 2016/2017/Total
// with a deterministic presence pattern: bit i of missing drops the i-th
// (alias, attr) combination, so ErrNotFound-style paths get exercised.
func testEnv(rng *rand.Rand, missing uint64) MapEnv {
	env := MapEnv{Cells: map[string]float64{}, Attrs: map[string]string{
		"A1": "2017", "A2": "2016", "A3": "Total",
	}}
	i := 0
	for _, alias := range []string{"a", "b", "c"} {
		for _, attr := range []string{"2016", "2017", "Total"} {
			if missing&(1<<uint(i)) == 0 {
				v := math.Trunc(rng.Float64()*2000-500) / 4
				env.Cells[alias+"."+attr] = v
			}
			i++
		}
	}
	return env
}

// randomExpr generates a depth-bounded random expression over the test
// env's vocabulary, including all operators, functions, negation and
// attribute variables used as numbers.
func randomExpr(rng *rand.Rand, depth int) Node {
	aliases := []string{"a", "b", "c"}
	attrs := []string{"A1", "A2", "A3", "2016", "2017", "Total"}
	ops := []string{"+", "-", "*", "/", "^", ">", "<", ">=", "<=", "=", "!="}
	fns := Functions()
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return Num{Value: math.Trunc(rng.Float64()*40-10) / 2}
		case 1:
			return AttrVar{Name: []string{"A1", "A2"}[rng.Intn(2)]}
		default:
			return CellRef{
				Alias: aliases[rng.Intn(len(aliases))],
				Attr:  attrs[rng.Intn(len(attrs))],
			}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return Neg{Operand: randomExpr(rng, depth-1)}
	case 1, 2:
		fn := fns[rng.Intn(len(fns))]
		arity := functions[fn].arity
		if arity < 0 {
			arity = 1 + rng.Intn(3)
		}
		args := make([]Node, arity)
		for i := range args {
			args[i] = randomExpr(rng, depth-1)
		}
		return Call{Fn: fn, Args: args}
	default:
		return BinOp{
			Op:    ops[rng.Intn(len(ops))],
			Left:  randomExpr(rng, depth-1),
			Right: randomExpr(rng, depth-1),
		}
	}
}

// TestCompileEquivalenceProperty drives thousands of random expressions
// against random environments (with random missing cells) and requires the
// compiled program to match the interpreter exactly: same values, same
// error cases — including ErrNotFound-style missing cells, division by
// zero, and function domain errors.
func TestCompileEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := randomExpr(rng, 1+rng.Intn(4))
		env := testEnv(rng, rng.Uint64()&0x1ff)
		assertEquivalent(t, n, env)
	}
}

func TestCompileEquivalenceCorners(t *testing.T) {
	env := MapEnv{
		Cells: map[string]float64{"a.2017": 10, "a.2016": 0, "b.2016": -4},
		Attrs: map[string]string{"A1": "2017", "A2": "2016", "AX": "NotANumber"},
	}
	for _, src := range []string{
		"a.A1 / a.A2",                    // division by zero
		"SQRT(b.2016)",                   // domain error
		"LOG(a.2016)",                    // domain error
		"CAGR(a.A1, a.A2, A1 - A2)",      // zero start value
		"CAGR(a.A1, b.2016, A1 - A1)",    // zero years
		"POWER(b.2016, 0.5)",             // non-finite result
		"a.A1 + A9",                      // unbound attribute variable
		"a.Missing",                      // missing cell
		"c.2017",                         // unbound alias cell
		"1/0",                            // constant division by zero
		"2^0.5 + a.A1 > 3",               // comparisons
		"-(-(-a.A1))",                    // nested negation
		"MIN(a.A1, a.A2, b.2016, -1e99)", // variadic
	} {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		assertEquivalent(t, n, env)
	}
	// A non-numeric attribute variable label (AX -> "NotANumber") cannot be
	// written in surface syntax; construct the node directly.
	assertEquivalent(t, BinOp{
		Op:    "+",
		Left:  CellRef{Alias: "a", Attr: "A1"},
		Right: AttrVar{Name: "AX"},
	}, env)
}

// TestCompileRejectsWhatEvalRejects: expressions the compiler refuses must
// be exactly those the interpreter can never evaluate.
func TestCompileRejectsWhatEvalRejects(t *testing.T) {
	env := MapEnv{Cells: map[string]float64{"a.2017": 1}}
	bad := []Node{
		nil,
		BinOp{Op: "%", Left: Num{Value: 1}, Right: Num{Value: 2}},
		Call{Fn: "NOSUCH", Args: []Node{Num{Value: 1}}},
		Call{Fn: "POWER", Args: []Node{Num{Value: 1}}}, // arity
		Call{Fn: "SUM"},                                // variadic needs >= 1
	}
	for _, n := range bad {
		if _, err := Compile(n); err == nil {
			t.Errorf("Compile(%v) succeeded", n)
		}
		if _, err := Eval(n, env); err == nil {
			t.Errorf("Eval(%v) succeeded but Compile rejects it", n)
		}
	}
}

func TestCompileProgramReuse(t *testing.T) {
	n := MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1")
	p, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Aliases()) != 2 || len(p.Cells()) != 2 || len(p.NumVars()) != 2 {
		t.Fatalf("aliases=%v cells=%v numvars=%v", p.Aliases(), p.Cells(), p.NumVars())
	}
	stack := make([]float64, p.MaxStack())
	// CAGR of 110 over 100 in 1 year = 0.1.
	v, err := p.Eval([]float64{110, 100}, []float64{2017, 2016}, stack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1) > 1e-12 {
		t.Errorf("Eval = %v, want 0.1", v)
	}
	// Re-evaluation with different bindings reuses the same program/stack.
	v, err = p.Eval([]float64{121, 100}, []float64{2018, 2016}, stack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1) > 1e-12 {
		t.Errorf("second Eval = %v, want 0.1", v)
	}
}

func BenchmarkEvalInterpreted(b *testing.B) {
	n := MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1")
	env := MapEnv{
		Cells: map[string]float64{"a.2017": 22209, "b.2016": 21546},
		Attrs: map[string]string{"A1": "2017", "A2": "2016"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(n, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCompiled(b *testing.B) {
	n := MustParse("POWER(a.A1/b.A2, 1/(A1-A2)) - 1")
	p, err := Compile(n)
	if err != nil {
		b.Fatal(err)
	}
	cellVals := []float64{22209, 21546}
	nums := []float64{2017, 2016}
	stack := make([]float64, p.MaxStack())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(cellVals, nums, stack); err != nil {
			b.Fatal(err)
		}
	}
}
