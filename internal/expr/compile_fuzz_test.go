package expr

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCompileVsInterpret cross-checks the compiled evaluator against the
// tree interpreter on arbitrary parsed expressions under a fuzzed
// environment: missing selects which (alias, attribute) cells exist (the
// ErrNotFound path) and seed drives the cell values — division by zero and
// function domain errors fall out of the values naturally. The committed
// seed corpus (testdata/fuzz) covers every operator, the variadic and
// fixed-arity functions, attribute variables used as numbers, and the
// error paths; run `go test -fuzz FuzzCompileVsInterpret ./internal/expr`
// to explore further.
func FuzzCompileVsInterpret(f *testing.F) {
	seeds := []struct {
		src     string
		missing uint64
		seed    uint64
	}{
		{"POWER(a.A1/b.A2, 1/(A1-A2)) - 1", 0, 1},
		{"CAGR(a.A1, b.A2, A1 - A2)", 0, 2},
		{"a.2017 / b.2016", 2, 3},
		{"SQRT(a.A1 - b.A2) + LOG(a.Total)", 0, 4},
		{"MIN(a.A1, b.A2, 0) >= MAX(a.A1, -1)", 0x1f, 5},
		{"SUM(a.2016, a.2017, b.Total) / AVG(a.2016, 3)", 0, 6},
		{"-(a.A1 != b.A2) ^ 2", 0, 7},
		{"ABS(a.A1) * SIGN(b.A2) + ROUND(a.A2) - EXP(0) + LN(a.Total)", 1, 8},
		{"A1 - A2 + a.A3", 0, 9},
		{"1/0", 0, 10},
	}
	for _, s := range seeds {
		f.Add(s.src, s.missing, s.seed)
	}
	f.Fuzz(func(t *testing.T, src string, missing uint64, seed uint64) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		env := testEnv(rng, missing&0x1ff)
		iv, ierr := Eval(n, env)
		cv, cerr := evalCompiled(n, env)
		if (ierr != nil) != (cerr != nil) {
			t.Fatalf("%q: interpreter err=%v, compiled err=%v", src, ierr, cerr)
		}
		if ierr != nil {
			return
		}
		if math.IsNaN(iv) && math.IsNaN(cv) {
			return
		}
		if math.Float64bits(iv) != math.Float64bits(cv) {
			t.Fatalf("%q: interpreter=%v compiled=%v", src, iv, cv)
		}
	})
}
