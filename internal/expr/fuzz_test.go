package expr

import (
	"testing"
)

// FuzzParse checks that the parser never panics and that every successfully
// parsed expression round-trips through String() to a structurally equal
// tree. Run the seeds as part of `go test`; extend with `go test -fuzz
// FuzzParse ./internal/expr`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"POWER(a.A1/b.A2, 1/(A1-A2)) - 1",
		"(a.2017 / b.2000)",
		"a.A1 > 100",
		"SUM(a.A1, b.A2, 1) / AVG(a.A1, 2)",
		`a."Total Final" * 2`,
		"CAGR(a.A1, b.A2, A1 - A2)",
		"-(-(-1))",
		"1e3 ^ 0.5",
		"", "(", ")", "a.", "..", "1..", "!=", "POWER(", "\"", "'",
		"a.A1 >= b.A2 <= 1", // double comparison is a parse error
		"𝛼 + 1",             // non-ASCII letters
		"a.𝛼",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		// A successful parse must round-trip.
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", n.String(), src, err)
		}
		if !Equal(n, n2) {
			t.Fatalf("round trip of %q changed structure: %q vs %q", src, n, n2)
		}
	})
}
