package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the expression surface syntax into a Node. The grammar, in
// precedence order (low to high):
//
//	expr    := cmp
//	cmp     := add (( ">" | "<" | ">=" | "<=" | "=" | "!=" ) add)?
//	add     := mul (("+" | "-") mul)*
//	mul     := pow (("*" | "/") pow)*
//	pow     := unary ("^" pow)?            // right-associative
//	unary   := "-" unary | primary
//	primary := NUMBER | ident "(" args ")" | ident "." field | ident | "(" expr ")"
//
// idents that match the function library become Calls; "alias.field" becomes
// a CellRef; A<digits> idents become AttrVars; anything else is an error.
// Field names may be attribute variables, concrete labels like 2017, or
// quoted labels like "Total Final Consumption".
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	n, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("expr: unexpected %q at position %d in %q", p.peek().text, p.peek().pos, src)
	}
	return n, nil
}

// MustParse is Parse for statically known-good expressions; panics on error.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type tokKind int

const (
	tokNum tokKind = iota
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokString
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i
			seenDot, seenExp := false, false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					// A dot is part of the number only if followed by a
					// digit; "a.2017" style references never start with a
					// digit, so here the left side is numeric.
					if j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9' {
						seenDot = true
						j++
						continue
					}
					break
				}
				if (d == 'e' || d == 'E') && !seenExp && j+1 < len(src) {
					next := src[j+1]
					if next >= '0' && next <= '9' || ((next == '+' || next == '-') && j+2 < len(src) && src[j+2] >= '0' && src[j+2] <= '9') {
						seenExp = true
						j += 2
						continue
					}
					break
				}
				break
			}
			toks = append(toks, token{tokNum, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("expr: unterminated string at position %d in %q", i, src)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '>' || c == '<' || c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("expr: unexpected '!' at position %d in %q", i, src)
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '^' || c == '=':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("expr: unexpected character %q at position %d in %q", c, i, src)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEnd() {
		return token{tokOp, "<eof>", len(p.src)}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, fmt.Errorf("expr: expected %s at position %d in %q, got %q", what, t.pos, p.src, t.text)
	}
	return p.next(), nil
}

func (p *parser) parseCmp() (Node, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case ">", "<", ">=", "<=", "=", "!=":
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinOp{Op: t.text, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Node, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseMul() (Node, error) {
	left, err := p.parsePow()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.next()
		right, err := p.parsePow()
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parsePow() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp && t.text == "^" {
		p.next()
		right, err := p.parsePow() // right-associative
		if err != nil {
			return nil, err
		}
		return BinOp{Op: "^", Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -NUMBER into a literal so String() round-trips cleanly.
		if n, ok := operand.(Num); ok {
			return Num{Value: -n.Value}, nil
		}
		return Neg{Operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNum:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at position %d: %w", t.text, t.pos, err)
		}
		return Num{Value: v}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		p.next()
		// Function call?
		if p.peek().kind == tokLParen && IsFunction(t.text) {
			p.next()
			var args []Node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseCmp()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			fn := strings.ToUpper(t.text)
			if err := CheckArity(fn, len(args)); err != nil {
				return nil, fmt.Errorf("%w at position %d in %q", err, t.pos, p.src)
			}
			return Call{Fn: fn, Args: args}, nil
		}
		// Cell reference alias.attr?
		if p.peek().kind == tokDot {
			p.next()
			ft := p.peek()
			switch ft.kind {
			case tokIdent, tokNum, tokString:
				p.next()
				return CellRef{Alias: t.text, Attr: ft.text}, nil
			default:
				return nil, fmt.Errorf("expr: expected attribute after %q. at position %d in %q", t.text, ft.pos, p.src)
			}
		}
		if IsAttrVarName(t.text) {
			return AttrVar{Name: t.text}, nil
		}
		return nil, fmt.Errorf("expr: unknown identifier %q at position %d in %q (expected function, alias.attr, or A<n>)", t.text, t.pos, p.src)
	default:
		return nil, fmt.Errorf("expr: unexpected %q at position %d in %q", t.text, t.pos, p.src)
	}
}
