// Package expr implements the arithmetic expression language used in the
// SELECT clause of statistical-check queries (paper Definition 3) and in the
// generalised formulas of Section 4.2, e.g.
//
//	POWER(a.A1/b.A2, 1/(A1-A2)) - 1
//
// Terms of the language:
//
//   - numeric constants: 9, 0.025, 1e3
//   - cell references: a.A1 — binding alias "a", attribute variable "A1";
//     after instantiation the attribute may be concrete, e.g. a.2017
//   - attribute variables used as numbers: A1 - A2 (year arithmetic)
//   - binary operators: + - * / ^ and comparisons > < >= <= = != yielding
//     0 or 1 (used by Boolean checks, Example 9)
//   - unary minus
//   - function calls over a library F: POWER, ABS, SQRT, LOG, LN, EXP,
//     MIN, MAX, SUM, AVG, ROUND, SIGN, CAGR
//
// Expressions evaluate against an Env that resolves cell references and
// attribute variables.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Node is an expression tree node. Implementations are immutable.
type Node interface {
	// String renders the node in the surface syntax accepted by Parse.
	String() string
	// eval computes the node's value under env.
	eval(env Env) (float64, error)
}

// Env resolves the free names of an expression during evaluation.
type Env interface {
	// Cell resolves a reference alias.attr, where attr is either an
	// attribute variable (A1, A2, ...) resolved through Attr, or a
	// concrete attribute label.
	Cell(alias, attr string) (float64, error)
	// Attr resolves an attribute variable to its concrete label
	// (e.g. A1 -> "2017"). Returns "" and false if unbound.
	Attr(v string) (string, bool)
}

// Num is a numeric literal.
type Num struct{ Value float64 }

func (n Num) String() string {
	return strconv.FormatFloat(n.Value, 'g', -1, 64)
}

func (n Num) eval(Env) (float64, error) { return n.Value, nil }

// CellRef references a cell through a binding alias and an attribute, e.g.
// a.A1 (attribute variable) or a.2017 (concrete attribute).
type CellRef struct {
	Alias string
	Attr  string
}

func (c CellRef) String() string {
	if plainAttr(c.Attr) {
		return c.Alias + "." + c.Attr
	}
	// Attributes that are neither numbers nor identifiers (e.g. 2024Q4,
	// "Total Final") render quoted so the output re-parses.
	return c.Alias + `."` + c.Attr + `"`
}

// plainAttr reports whether an attribute label can render unquoted: either
// a pure number or an identifier.
func plainAttr(s string) bool {
	if s == "" {
		return false
	}
	digits := true
	for _, r := range s {
		if r < '0' || r > '9' {
			digits = false
			break
		}
	}
	if digits {
		return true
	}
	if !isIdentStart(rune(s[0])) {
		return false
	}
	for _, r := range s {
		if !isIdentPart(r) {
			return false
		}
	}
	return true
}

func (c CellRef) eval(env Env) (float64, error) {
	attr := c.Attr
	if resolved, ok := env.Attr(c.Attr); ok {
		attr = resolved
	}
	v, err := env.Cell(c.Alias, attr)
	if err != nil {
		return 0, fmt.Errorf("expr: resolving %s.%s: %w", c.Alias, attr, err)
	}
	return v, nil
}

// AttrVar is an attribute variable used as a number, e.g. the A1-A2 term in
// the CAGR exponent. During evaluation the variable resolves to its concrete
// attribute label, which must parse as a number (years do).
type AttrVar struct{ Name string }

func (a AttrVar) String() string { return a.Name }

func (a AttrVar) eval(env Env) (float64, error) {
	label, ok := env.Attr(a.Name)
	if !ok {
		return 0, fmt.Errorf("expr: unbound attribute variable %s", a.Name)
	}
	v, err := strconv.ParseFloat(label, 64)
	if err != nil {
		return 0, fmt.Errorf("expr: attribute %q of variable %s is not numeric", label, a.Name)
	}
	return v, nil
}

// BinOp applies a binary operator.
type BinOp struct {
	Op          string // + - * / ^ > < >= <= = !=
	Left, Right Node
}

func (b BinOp) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

func (b BinOp) eval(env Env) (float64, error) {
	l, err := b.Left.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.Right.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("expr: division by zero in %s", b)
		}
		return l / r, nil
	case "^":
		return math.Pow(l, r), nil
	case ">":
		return boolVal(l > r), nil
	case "<":
		return boolVal(l < r), nil
	case ">=":
		return boolVal(l >= r), nil
	case "<=":
		return boolVal(l <= r), nil
	case "=":
		return boolVal(l == r), nil
	case "!=":
		return boolVal(l != r), nil
	}
	return 0, fmt.Errorf("expr: unknown operator %q", b.Op)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Neg is unary minus.
type Neg struct{ Operand Node }

func (n Neg) String() string { return "-" + n.Operand.String() }

func (n Neg) eval(env Env) (float64, error) {
	v, err := n.Operand.eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

// Call invokes a function from the library F.
type Call struct {
	Fn   string
	Args []Node
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

func (c Call) eval(env Env) (float64, error) {
	fn, ok := functions[c.Fn]
	if !ok {
		return 0, fmt.Errorf("expr: unknown function %q", c.Fn)
	}
	if fn.arity >= 0 && len(c.Args) != fn.arity {
		return 0, fmt.Errorf("expr: %s expects %d arguments, got %d", c.Fn, fn.arity, len(c.Args))
	}
	if fn.arity < 0 && len(c.Args) < 1 {
		return 0, fmt.Errorf("expr: %s expects at least one argument", c.Fn)
	}
	args := make([]float64, len(c.Args))
	for i, a := range c.Args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return fn.impl(args)
}

type function struct {
	arity int // -1 means variadic (>=1)
	impl  func([]float64) (float64, error)
}

// functions is the library F of Definition 3. CAGR is the compound annual
// growth rate the paper singles out: CAGR(end, start, years).
var functions = map[string]function{
	"POWER": {2, func(a []float64) (float64, error) {
		v := math.Pow(a[0], a[1])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("expr: POWER(%g, %g) is not finite", a[0], a[1])
		}
		return v, nil
	}},
	"ABS": {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"SQRT": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("expr: SQRT of negative value %g", a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"LOG": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("expr: LOG of non-positive value %g", a[0])
		}
		return math.Log10(a[0]), nil
	}},
	"LN": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("expr: LN of non-positive value %g", a[0])
		}
		return math.Log(a[0]), nil
	}},
	"EXP":   {1, func(a []float64) (float64, error) { return math.Exp(a[0]), nil }},
	"ROUND": {1, func(a []float64) (float64, error) { return math.Round(a[0]), nil }},
	"SIGN": {1, func(a []float64) (float64, error) {
		switch {
		case a[0] > 0:
			return 1, nil
		case a[0] < 0:
			return -1, nil
		}
		return 0, nil
	}},
	"MIN": {-1, func(a []float64) (float64, error) {
		m := a[0]
		for _, v := range a[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	}},
	"MAX": {-1, func(a []float64) (float64, error) {
		m := a[0]
		for _, v := range a[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	}},
	"SUM": {-1, func(a []float64) (float64, error) {
		var s float64
		for _, v := range a {
			s += v
		}
		return s, nil
	}},
	"AVG": {-1, func(a []float64) (float64, error) {
		var s float64
		for _, v := range a {
			s += v
		}
		return s / float64(len(a)), nil
	}},
	// CAGR(end, start, years) = (end/start)^(1/years) - 1
	"CAGR": {3, func(a []float64) (float64, error) {
		if a[1] == 0 {
			return 0, fmt.Errorf("expr: CAGR with zero start value")
		}
		if a[2] == 0 {
			return 0, fmt.Errorf("expr: CAGR over zero years")
		}
		v := math.Pow(a[0]/a[1], 1/a[2]) - 1
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("expr: CAGR(%g, %g, %g) is not finite", a[0], a[1], a[2])
		}
		return v, nil
	}},
}

// CheckArity validates that calling fn with n arguments is well-formed.
func CheckArity(fn string, n int) error {
	f, ok := functions[fn]
	if !ok {
		return fmt.Errorf("expr: unknown function %q", fn)
	}
	if f.arity >= 0 && n != f.arity {
		return fmt.Errorf("expr: %s expects %d arguments, got %d", fn, f.arity, n)
	}
	if f.arity < 0 && n < 1 {
		return fmt.Errorf("expr: %s expects at least one argument", fn)
	}
	return nil
}

// Functions returns the names of the function library F, sorted.
func Functions() []string {
	out := make([]string, 0, len(functions))
	for f := range functions {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// IsFunction reports whether name is in the library F.
func IsFunction(name string) bool {
	_, ok := functions[strings.ToUpper(name)]
	return ok
}

// Eval evaluates the expression under env. Errors carry enough context to be
// surfaced to fact checkers in the verification report.
func Eval(n Node, env Env) (float64, error) {
	if n == nil {
		return 0, fmt.Errorf("expr: nil expression")
	}
	return n.eval(env)
}

// MapEnv is a simple Env backed by maps; used by tests and by formula
// instantiation when cell values have already been collected.
type MapEnv struct {
	Cells map[string]float64 // key "alias.attr"
	Attrs map[string]string  // attribute variable -> concrete label
}

// Cell implements Env.
func (m MapEnv) Cell(alias, attr string) (float64, error) {
	v, ok := m.Cells[alias+"."+attr]
	if !ok {
		return 0, fmt.Errorf("no cell %s.%s", alias, attr)
	}
	return v, nil
}

// Attr implements Env.
func (m MapEnv) Attr(v string) (string, bool) {
	s, ok := m.Attrs[v]
	return s, ok
}

// Walk visits every node of the tree in depth-first order, calling fn for
// each; analysis helpers (variable collection, complexity) build on it.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	switch t := n.(type) {
	case BinOp:
		Walk(t.Left, fn)
		Walk(t.Right, fn)
	case Neg:
		Walk(t.Operand, fn)
	case Call:
		for _, a := range t.Args {
			Walk(a, fn)
		}
	}
}

// Aliases returns the distinct binding aliases referenced by the expression,
// in first-appearance order (a, b, c, ... for canonical formulas).
func Aliases(n Node) []string {
	var out []string
	seen := map[string]bool{}
	Walk(n, func(m Node) {
		if c, ok := m.(CellRef); ok && !seen[c.Alias] {
			seen[c.Alias] = true
			out = append(out, c.Alias)
		}
	})
	return out
}

// AttrVars returns the distinct attribute variables referenced by the
// expression (both in cell references and as numeric AttrVar terms), in
// first-appearance order.
func AttrVars(n Node) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if IsAttrVarName(name) && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	Walk(n, func(m Node) {
		switch t := m.(type) {
		case CellRef:
			add(t.Attr)
		case AttrVar:
			add(t.Name)
		}
	})
	return out
}

// IsAttrVarName reports whether s has the shape of an attribute variable:
// "A" followed by digits (A1, A2, ...).
func IsAttrVarName(s string) bool {
	if len(s) < 2 || s[0] != 'A' {
		return false
	}
	for _, r := range s[1:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Complexity counts the elements of the expression the way the user study
// does for Figure 6: operations, functions, constants and variables each
// count one.
func Complexity(n Node) int {
	c := 0
	Walk(n, func(m Node) {
		switch m.(type) {
		case Num, CellRef, AttrVar, BinOp, Neg, Call:
			c++
		}
	})
	return c
}

// Equal reports structural equality of two expressions.
func Equal(a, b Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}
