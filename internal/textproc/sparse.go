package textproc

import (
	"math"
	"slices"
	"sort"
)

// Sparse is the slice-backed sparse feature vector of the numeric hot path:
// a strictly increasing index slice paired with the nonzero values at those
// indexes. Compared with the map-backed Vector it replaces, every operation
// is a linear scan (or two-pointer merge) over contiguous memory — no
// hashing, no per-entry allocation, deterministic iteration order for free.
//
// The zero value is the empty vector. Sparse values are immutable by
// convention once built (Scale is the one in-place mutator and is reserved
// for owners that have not shared the vector yet); the engine shares them
// freely across goroutines.
type Sparse struct {
	ix  []int32
	val []float64
}

// NNZ returns the number of stored (nonzero) entries.
func (s Sparse) NNZ() int { return len(s.ix) }

// Index returns the feature index of the i-th stored entry.
func (s Sparse) Index(i int) int { return int(s.ix[i]) }

// Value returns the value of the i-th stored entry.
func (s Sparse) Value(i int) float64 { return s.val[i] }

// Raw exposes the underlying index and value slices for zero-overhead scans
// (the classifier's scoring loop). Callers must treat both as read-only.
func (s Sparse) Raw() ([]int32, []float64) { return s.ix, s.val }

// Get returns the value at feature index idx, or 0 when absent.
func (s Sparse) Get(idx int) float64 {
	i := sort.Search(len(s.ix), func(k int) bool { return int(s.ix[k]) >= idx })
	if i < len(s.ix) && int(s.ix[i]) == idx {
		return s.val[i]
	}
	return 0
}

// MaxIndex returns the largest stored feature index, or -1 when empty.
func (s Sparse) MaxIndex() int {
	if len(s.ix) == 0 {
		return -1
	}
	return int(s.ix[len(s.ix)-1])
}

// Dot returns the inner product, computed as a two-pointer merge over the
// sorted index slices.
func (s Sparse) Dot(o Sparse) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(s.ix) && j < len(o.ix) {
		switch {
		case s.ix[i] < o.ix[j]:
			i++
		case s.ix[i] > o.ix[j]:
			j++
		default:
			sum += s.val[i] * o.val[j]
			i++
			j++
		}
	}
	return sum
}

// Norm returns the L2 norm.
func (s Sparse) Norm() float64 {
	var sum float64
	for _, x := range s.val {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Scale multiplies every value in place and returns the receiver. Unlike a
// map rebuild this touches only the value slice; callers that discard the
// result pay nothing.
func (s Sparse) Scale(k float64) Sparse {
	for i := range s.val {
		s.val[i] *= k
	}
	return s
}

// AddInto returns the sum of s and o with o's indexes shifted by offset,
// as a freshly backed vector (merge of two sorted runs). When the shifted o
// lies entirely above s — the feature pipeline's dense-prefix + TF-IDF
// concatenation — the merge degenerates to an append and does one
// allocation of exactly the right size.
func (s Sparse) AddInto(o Sparse, offset int) Sparse {
	if o.NNZ() == 0 {
		return Sparse{ix: slices.Clone(s.ix), val: slices.Clone(s.val)}
	}
	lo := int(o.ix[0]) + offset
	if s.NNZ() == 0 || s.MaxIndex() < lo {
		// Disjoint, ordered: concatenate.
		ix := make([]int32, 0, len(s.ix)+len(o.ix))
		val := make([]float64, 0, len(s.val)+len(o.val))
		ix = append(ix, s.ix...)
		val = append(val, s.val...)
		for k, i := range o.ix {
			ix = append(ix, i+int32(offset))
			val = append(val, o.val[k])
		}
		return Sparse{ix: ix, val: val}
	}
	ix := make([]int32, 0, len(s.ix)+len(o.ix))
	val := make([]float64, 0, len(s.val)+len(o.val))
	i, j := 0, 0
	for i < len(s.ix) || j < len(o.ix) {
		var oi int32
		if j < len(o.ix) {
			oi = o.ix[j] + int32(offset)
		}
		switch {
		case j >= len(o.ix) || (i < len(s.ix) && s.ix[i] < oi):
			ix = append(ix, s.ix[i])
			val = append(val, s.val[i])
			i++
		case i >= len(s.ix) || s.ix[i] > oi:
			ix = append(ix, oi)
			val = append(val, o.val[j])
			j++
		default:
			ix = append(ix, s.ix[i])
			val = append(val, s.val[i]+o.val[j])
			i++
			j++
		}
	}
	return Sparse{ix: ix, val: val}
}

// Map converts to the map-backed reference representation (tests,
// diagnostics).
func (s Sparse) Map() Vector {
	m := make(Vector, len(s.ix))
	for k, i := range s.ix {
		m[int(i)] = s.val[k]
	}
	return m
}

// Cosine returns the cosine similarity of two sparse vectors, or 0 when
// either is zero.
func Cosine(a, b Sparse) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// SparseFromDense builds a Sparse view of a dense slice, skipping zeros.
// Indexes are the slice positions; the input is copied, not aliased.
func SparseFromDense(dense []float64) Sparse {
	nnz := 0
	for _, x := range dense {
		if x != 0 {
			nnz++
		}
	}
	ix := make([]int32, 0, nnz)
	val := make([]float64, 0, nnz)
	for i, x := range dense {
		if x != 0 {
			ix = append(ix, int32(i))
			val = append(val, x)
		}
	}
	return Sparse{ix: ix, val: val}
}

// Sparse converts the map-backed reference Vector into its slice-backed
// equivalent (sorted, zeros dropped).
func (v Vector) Sparse() Sparse {
	var b SparseBuilder
	for i, x := range v {
		b.Add(i, x)
	}
	return b.Build()
}

// SparseBuilder accumulates (index, value) pairs in any order, with
// duplicate indexes summing, and emits a sorted Sparse. It is the unsorted-
// accumulation entry point the vectorizer and tests use; Reset lets one
// builder serve many documents without reallocating.
type SparseBuilder struct {
	ix  []int32
	val []float64
}

// Add records value at index (accumulated if the index repeats).
func (b *SparseBuilder) Add(index int, value float64) {
	b.ix = append(b.ix, int32(index))
	b.val = append(b.val, value)
}

// Len returns the number of recorded pairs (before duplicate merging).
func (b *SparseBuilder) Len() int { return len(b.ix) }

// Reset clears the builder, keeping capacity.
func (b *SparseBuilder) Reset() {
	b.ix = b.ix[:0]
	b.val = b.val[:0]
}

// Build sorts the accumulated pairs, merges duplicate indexes and drops
// exact zeros, returning the finished vector. The builder is reset.
func (b *SparseBuilder) Build() Sparse {
	n := len(b.ix)
	if n == 0 {
		return Sparse{}
	}
	if !b.sorted() {
		// Indirect sort via a permutation keeps the parallel slices in
		// lockstep without packing into pair structs.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		slices.SortStableFunc(perm, func(a, c int) int {
			return int(b.ix[a]) - int(b.ix[c])
		})
		ix := make([]int32, n)
		val := make([]float64, n)
		for k, p := range perm {
			ix[k] = b.ix[p]
			val[k] = b.val[p]
		}
		b.ix, b.val = ix, val
	}
	// Merge duplicates and drop zeros in one compaction pass.
	ix := make([]int32, 0, n)
	val := make([]float64, 0, n)
	for k := 0; k < n; {
		i := b.ix[k]
		sum := b.val[k]
		k++
		for k < n && b.ix[k] == i {
			sum += b.val[k]
			k++
		}
		if sum != 0 {
			ix = append(ix, i)
			val = append(val, sum)
		}
	}
	b.Reset()
	return Sparse{ix: ix, val: val}
}

func (b *SparseBuilder) sorted() bool {
	for i := 1; i < len(b.ix); i++ {
		if b.ix[i] < b.ix[i-1] {
			return false
		}
	}
	return true
}
