package textproc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randVector draws a random map-backed vector from quick-generated raw
// material: indexes in [0, 32), values in [-8, 8), so collisions and
// cancellations actually happen.
func randVector(rng *rand.Rand, maxNNZ int) Vector {
	v := Vector{}
	for n := rng.Intn(maxNNZ + 1); n > 0; n-- {
		v[rng.Intn(32)] = float64(rng.Intn(160)-80) / 10
	}
	// Maps never store explicit zeros in the production pipeline; drop any.
	for i, x := range v {
		if x == 0 {
			delete(v, i)
		}
	}
	return v
}

// TestSparseMatchesMapSemantics is the equivalence property suite: every
// Sparse operation must agree with the map-backed reference implementation
// on random inputs.
func TestSparseMatchesMapSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a, b := randVector(rng, 12), randVector(rng, 12)
		sa, sb := a.Sparse(), b.Sparse()

		if got, want := sa.Dot(sb), a.Dot(b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Dot = %g, map reference %g (a=%v b=%v)", trial, got, want, a, b)
		}
		if got, want := sa.Norm(), a.Norm(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Norm = %g, map reference %g", trial, got, want)
		}
		if got, want := Cosine(sa, sb), CosineSimilarity(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Cosine = %g, map reference %g", trial, got, want)
		}

		// AddInto with a random offset: the map mutates in place, the
		// slice version returns the merged vector.
		offset := rng.Intn(5)
		ref := Vector{}
		for i, x := range a {
			ref[i] = x
		}
		ref.AddInto(b, offset)
		merged := sa.AddInto(sb, offset)
		for i, x := range ref {
			if got := merged.Get(i); math.Abs(got-x) > 1e-9 {
				t.Fatalf("trial %d: AddInto at %d = %g, map reference %g", trial, i, got, x)
			}
		}
		// No phantom entries beyond cancellations-to-zero.
		for k := 0; k < merged.NNZ(); k++ {
			if _, ok := ref[merged.Index(k)]; !ok {
				t.Fatalf("trial %d: AddInto invented index %d", trial, merged.Index(k))
			}
		}

		// Scale agrees and is in place for Sparse.
		k := float64(rng.Intn(7)) - 3
		sc := a.Sparse().Scale(k)
		for i, x := range a {
			if got := sc.Get(i); math.Abs(got-x*k) > 1e-9 {
				t.Fatalf("trial %d: Scale(%g) at %d = %g, want %g", trial, k, i, got, x*k)
			}
		}

		// Round trip: map -> sparse -> map.
		if back := sa.Map(); !reflect.DeepEqual(back, a) && !(len(back) == 0 && len(a) == 0) {
			t.Fatalf("trial %d: round trip %v != %v", trial, back, a)
		}
	}
}

// Property: Dot is symmetric and bilinear under scaling for Sparse, matching
// the map-vector property test.
func TestSparseDotScaleProperty(t *testing.T) {
	f := func(x, y, k int8) bool {
		a := Vector{0: float64(x), 1: 1}.Sparse()
		b := Vector{0: float64(y), 1: 2}.Sparse()
		if math.Abs(a.Dot(b)-b.Dot(a)) > 1e-9 {
			return false
		}
		lhs := a.Dot(b) * float64(k)
		rhs := Vector{0: float64(x), 1: 1}.Sparse().Scale(float64(k)).Dot(b)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseInvariants(t *testing.T) {
	s := Vector{9: 1, 3: 2, 7: -1}.Sparse()
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	for k := 1; k < s.NNZ(); k++ {
		if s.Index(k-1) >= s.Index(k) {
			t.Fatal("indexes not strictly increasing")
		}
	}
	if s.MaxIndex() != 9 {
		t.Errorf("MaxIndex = %d", s.MaxIndex())
	}
	if s.Get(3) != 2 || s.Get(4) != 0 {
		t.Errorf("Get = %g, %g", s.Get(3), s.Get(4))
	}
	if (Sparse{}).MaxIndex() != -1 {
		t.Error("empty MaxIndex should be -1")
	}
	if (Sparse{}).Norm() != 0 {
		t.Error("empty Norm should be 0")
	}
}

func TestSparseBuilder(t *testing.T) {
	var b SparseBuilder
	b.Add(5, 1)
	b.Add(2, 3)
	b.Add(5, 2) // duplicate sums
	b.Add(8, 4)
	b.Add(8, -4) // cancels to zero -> dropped
	s := b.Build()
	if want := (Vector{2: 3, 5: 3}); !reflect.DeepEqual(s.Map(), want) {
		t.Errorf("Build = %v, want %v", s.Map(), want)
	}
	if b.Len() != 0 {
		t.Error("Build should reset the builder")
	}
	// Already-sorted input takes the no-sort path.
	b.Add(1, 1)
	b.Add(2, 2)
	if got := b.Build(); got.Get(1) != 1 || got.Get(2) != 2 {
		t.Errorf("sorted Build = %v", got.Map())
	}
	if (&SparseBuilder{}).Build().NNZ() != 0 {
		t.Error("empty Build should be empty")
	}
}

func TestSparseFromDense(t *testing.T) {
	s := SparseFromDense([]float64{0, 1.5, 0, -2, 0})
	if want := (Vector{1: 1.5, 3: -2}); !reflect.DeepEqual(s.Map(), want) {
		t.Errorf("SparseFromDense = %v, want %v", s.Map(), want)
	}
}

func TestSparseAddIntoDisjointFastPath(t *testing.T) {
	// The feature pipeline's layout: dense prefix plus shifted TF-IDF block.
	prefix := SparseFromDense([]float64{0.5, 0, 0.25})
	tf := Vector{0: 1, 4: 2}.Sparse()
	got := prefix.AddInto(tf, 10)
	want := Vector{0: 0.5, 2: 0.25, 10: 1, 14: 2}
	if !reflect.DeepEqual(got.Map(), want) {
		t.Errorf("AddInto = %v, want %v", got.Map(), want)
	}
	// Empty receiver and empty argument.
	if got := (Sparse{}).AddInto(tf, 1); got.NNZ() != 2 {
		t.Errorf("empty receiver AddInto = %v", got.Map())
	}
	if got := tf.AddInto(Sparse{}, 1); !reflect.DeepEqual(got.Map(), tf.Map()) {
		t.Errorf("empty argument AddInto = %v", got.Map())
	}
}

func BenchmarkSparseDot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var ba, bb SparseBuilder
	for i := 0; i < 120; i++ {
		ba.Add(rng.Intn(4000), rng.Float64())
		bb.Add(rng.Intn(4000), rng.Float64())
	}
	x, y := ba.Build(), bb.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Dot(y)
	}
}

func BenchmarkTransform(b *testing.B) {
	docs := make([][]string, 64)
	for i := range docs {
		docs[i] = ClaimTokens("global electricity demand grew by 3% between 2015 and 2017")
	}
	vz := NewVectorizer(1)
	vz.Fit(docs)
	doc := docs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vz.Transform(doc)
	}
}
