package textproc

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"In 2017, global electricity demand grew by 3%",
			[]string{"in", "2017", "global", "electricity", "demand", "grew", "by", "3", "%"}},
		{"nine-fold increase", []string{"nine-fold", "increase"}},
		{"it's fine", []string{"it's", "fine"}},
		{"trailing- hyphen", []string{"trailing", "hyphen"}},
		{"", nil},
		{"  ,,  ", nil},
		{"22 200 TWh", []string{"22", "200", "twh"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"a_b", "b_c"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 3); !reflect.DeepEqual(got, []string{"a_b_c"}) {
		t.Errorf("trigrams = %v", got)
	}
	if NGrams(toks, 4) != nil || NGrams(toks, 0) != nil {
		t.Error("out-of-range n should yield nil")
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("ab  cd", 3)
	want := []string{"ab ", "b c", " cd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams = %v, want %v", got, want)
	}
	if CharNGrams("ab", 3) != nil {
		t.Error("short input should yield nil")
	}
}

func TestVectorOps(t *testing.T) {
	a := Vector{0: 1, 1: 2}
	b := Vector{1: 3, 2: 4}
	if got := a.Dot(b); got != 6 {
		t.Errorf("Dot = %g, want 6", got)
	}
	if got := b.Dot(a); got != 6 {
		t.Errorf("Dot not symmetric: %g", got)
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Norm = %g", got)
	}
	a.Scale(2)
	if a[0] != 2 || a[1] != 4 {
		t.Errorf("Scale = %v", a)
	}
	v := Vector{}
	v.AddInto(Vector{0: 1}, 10)
	if v[10] != 1 {
		t.Errorf("AddInto = %v", v)
	}
	idx := Vector{5: 1, 1: 1, 3: 1}.Indices()
	if !reflect.DeepEqual(idx, []int{1, 3, 5}) {
		t.Errorf("Indices = %v", idx)
	}
}

func TestVectorizerFitTransform(t *testing.T) {
	docs := [][]string{
		{"electricity", "demand", "grew"},
		{"coal", "demand", "fell"},
		{"solar", "capacity", "grew"},
	}
	vz := NewVectorizer(1)
	vecs := vz.FitTransform(docs)
	if vz.Dim() == 0 {
		t.Fatal("empty vocabulary")
	}
	// "demand" appears in 2 docs, "coal" in 1: idf(coal) > idf(demand).
	iCoal, iDemand := vz.VocabIndex("coal"), vz.VocabIndex("demand")
	if iCoal < 0 || iDemand < 0 {
		t.Fatal("terms missing from vocabulary")
	}
	if vz.idf[iCoal] <= vz.idf[iDemand] {
		t.Errorf("idf(coal)=%g should exceed idf(demand)=%g", vz.idf[iCoal], vz.idf[iDemand])
	}
	// Vectors are L2-normalised.
	for i, v := range vecs {
		if math.Abs(v.Norm()-1) > 1e-9 {
			t.Errorf("doc %d norm = %g, want 1", i, v.Norm())
		}
	}
	// Unknown tokens ignored at transform time.
	v := vz.Transform([]string{"unseen", "tokens"})
	if v.NNZ() != 0 {
		t.Errorf("unknown-only doc should be empty, got %v", v.Map())
	}
	if vz.VocabIndex("unseen") != -1 {
		t.Error("VocabIndex of unknown should be -1")
	}
}

func TestVectorizerMinDF(t *testing.T) {
	docs := [][]string{
		{"common", "rare1"},
		{"common", "rare2"},
	}
	vz := NewVectorizer(2)
	vz.Fit(docs)
	if vz.VocabIndex("common") < 0 {
		t.Error("common term should survive minDF")
	}
	if vz.VocabIndex("rare1") >= 0 || vz.VocabIndex("rare2") >= 0 {
		t.Error("rare terms should be dropped by minDF=2")
	}
	// minDF < 1 is clamped.
	vz2 := NewVectorizer(0)
	vz2.Fit(docs)
	if vz2.VocabIndex("rare1") < 0 {
		t.Error("minDF=0 should behave like 1")
	}
}

func TestVectorizerDeterministicVocab(t *testing.T) {
	docs := [][]string{{"b", "a", "c"}, {"c", "a"}}
	v1 := NewVectorizer(1)
	v1.Fit(docs)
	v2 := NewVectorizer(1)
	v2.Fit(docs)
	for _, term := range []string{"a", "b", "c"} {
		if v1.VocabIndex(term) != v2.VocabIndex(term) {
			t.Errorf("vocab not deterministic for %q", term)
		}
	}
	// Sorted order.
	if !(v1.VocabIndex("a") < v1.VocabIndex("b") && v1.VocabIndex("b") < v1.VocabIndex("c")) {
		t.Error("vocabulary should be sorted")
	}
}

func TestClaimTokensNamespacing(t *testing.T) {
	toks := ClaimTokens("demand grew")
	var hasWord, hasBigram, hasChar bool
	for _, tok := range toks {
		switch tok[:2] {
		case "w:":
			hasWord = true
		case "b:":
			hasBigram = true
		case "c:":
			hasChar = true
		}
	}
	if !hasWord || !hasBigram || !hasChar {
		t.Errorf("ClaimTokens missing a family: %v", toks)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := Vector{0: 1}
	b := Vector{0: 2}
	c := Vector{1: 1}
	if got := CosineSimilarity(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel = %g", got)
	}
	if got := CosineSimilarity(a, c); got != 0 {
		t.Errorf("orthogonal = %g", got)
	}
	if got := CosineSimilarity(a, Vector{}); got != 0 {
		t.Errorf("zero vector = %g", got)
	}
}

// Property: Dot is bilinear under scaling.
func TestDotScaleProperty(t *testing.T) {
	f := func(x, y int8, k int8) bool {
		a := Vector{0: float64(x), 1: 1}
		b := Vector{0: float64(y), 1: 2}
		lhs := a.Dot(b) * float64(k)
		ac := Vector{0: float64(x), 1: 1}.Scale(float64(k))
		rhs := ac.Dot(b)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transform norm is 0 or 1.
func TestTransformNormProperty(t *testing.T) {
	vz := NewVectorizer(1)
	vz.Fit([][]string{{"a", "b"}, {"b", "c"}})
	f := func(pick []bool) bool {
		words := []string{"a", "b", "c", "zzz"}
		var doc []string
		for i, p := range pick {
			if p {
				doc = append(doc, words[i%len(words)])
			}
		}
		n := vz.Transform(doc).Norm()
		return n == 0 || math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
