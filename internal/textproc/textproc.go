// Package textproc implements the claim-preprocessing text pipeline of the
// paper's Section 4.1 (Figure 4): tokenisation, word unigrams/bigrams,
// character trigrams, and TF-IDF vectorisation. Feature vectors are sparse
// and slice-backed (type Sparse: sorted parallel index/value slices built
// through SparseBuilder); the classifiers consume them directly. The older
// map-backed Vector type survives only as the reference implementation the
// equivalence tests compare Sparse against.
package textproc

import (
	"math"
	"sort"
	"strings"
)

// Tokenize lowercases the text and splits it into word tokens. Digits stay
// inside tokens ("2017" is a token; "22 200" is two tokens merged later by
// claim parsing). Punctuation separates tokens except '-' and '_' inside a
// word ("nine-fold" is one token).
func Tokenize(text string) []string {
	lower := strings.ToLower(text)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i, r := range lower {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_':
			cur.WriteRune(r)
		case r == '-' || r == '\'':
			// Keep intra-word hyphens/apostrophes: "nine-fold".
			if cur.Len() > 0 && i+1 < len(lower) && isWordRune(rune(lower[i+1])) {
				cur.WriteRune(r)
			} else {
				flush()
			}
		case r == '%':
			flush()
			toks = append(toks, "%")
		default:
			flush()
		}
	}
	flush()
	return toks
}

func isWordRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_'
}

// NGrams returns the word n-grams of tokens joined by '_'.
func NGrams(tokens []string, n int) []string {
	if n < 1 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], "_"))
	}
	return out
}

// CharNGrams returns the character n-grams of the lowercased text, spaces
// normalised. The paper uses every 3 characters of the claim.
func CharNGrams(text string, n int) []string {
	s := strings.Join(strings.Fields(strings.ToLower(text)), " ")
	if n < 1 || len(s) < n {
		return nil
	}
	out := make([]string, 0, len(s)-n+1)
	for i := 0; i+n <= len(s); i++ {
		out = append(out, s[i:i+n])
	}
	return out
}

// Vector is the original map-backed sparse vector: index -> weight. The
// production pipeline now runs entirely on the slice-backed Sparse type
// (see sparse.go); Vector is retained as the executable specification of
// the sparse-vector semantics — the property-based equivalence tests in
// sparse_test.go check every Sparse operation against it — and as a
// convenient literal syntax (Vector{...}.Sparse()) in tests.
type Vector map[int]float64

// Dot returns the inner product of two sparse vectors.
func (v Vector) Dot(o Vector) float64 {
	a, b := v, o
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for i, x := range a {
		if y, ok := b[i]; ok {
			s += x * y
		}
	}
	return s
}

// Norm returns the L2 norm.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Scale multiplies every weight in place and returns v.
func (v Vector) Scale(k float64) Vector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// AddInto adds o (shifted by offset) into v.
func (v Vector) AddInto(o Vector, offset int) {
	for i, x := range o {
		v[i+offset] += x
	}
}

// Indices returns the nonzero indexes sorted ascending (deterministic
// iteration for tests and serialisation).
func (v Vector) Indices() []int {
	out := make([]int, 0, len(v))
	for i := range v {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Vectorizer maps token multisets to TF-IDF weighted sparse vectors over a
// vocabulary learned from a corpus. Unknown tokens at transform time are
// ignored.
type Vectorizer struct {
	vocab map[string]int
	idf   []float64
	nDocs int
	// config
	minDF int
}

// NewVectorizer creates a vectorizer that keeps terms appearing in at least
// minDF documents (minDF < 1 is treated as 1).
func NewVectorizer(minDF int) *Vectorizer {
	if minDF < 1 {
		minDF = 1
	}
	return &Vectorizer{vocab: make(map[string]int), minDF: minDF}
}

// Fit learns vocabulary and IDF weights from documents, each given as a
// token slice (the caller chooses the tokenisation: words, n-grams, char
// n-grams or a concatenation).
func (vz *Vectorizer) Fit(docs [][]string) {
	df := make(map[string]int)
	for _, doc := range docs {
		seen := make(map[string]bool, len(doc))
		for _, tok := range doc {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	vz.nDocs = len(docs)
	// Deterministic vocabulary order: sorted terms above the DF cutoff.
	terms := make([]string, 0, len(df))
	for t, d := range df {
		if d >= vz.minDF {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	vz.vocab = make(map[string]int, len(terms))
	vz.idf = make([]float64, len(terms))
	for i, t := range terms {
		vz.vocab[t] = i
		// Smoothed IDF, as in standard TF-IDF implementations.
		vz.idf[i] = math.Log((1+float64(vz.nDocs))/(1+float64(df[t]))) + 1
	}
}

// Dim returns the vocabulary size.
func (vz *Vectorizer) Dim() int { return len(vz.vocab) }

// VocabIndex returns the feature index of a term, or -1.
func (vz *Vectorizer) VocabIndex(term string) int {
	if i, ok := vz.vocab[term]; ok {
		return i
	}
	return -1
}

// Transform converts a token slice to an L2-normalised TF-IDF vector. The
// term-frequency accumulation runs through a SparseBuilder instead of the
// two throwaway maps the map-vector version allocated per call.
func (vz *Vectorizer) Transform(doc []string) Sparse {
	var b SparseBuilder
	for _, tok := range doc {
		if i, ok := vz.vocab[tok]; ok {
			b.Add(i, 1)
		}
	}
	v := b.Build() // sorted unique term counts
	_, vals := v.Raw()
	for k := range vals {
		vals[k] *= vz.idf[v.Index(k)]
	}
	if n := v.Norm(); n > 0 {
		v.Scale(1 / n)
	}
	return v
}

// FitTransform fits on docs and returns their vectors.
func (vz *Vectorizer) FitTransform(docs [][]string) []Sparse {
	vz.Fit(docs)
	out := make([]Sparse, len(docs))
	for i, d := range docs {
		out[i] = vz.Transform(d)
	}
	return out
}

// ClaimTokens produces the token multiset the paper feeds into TF-IDF for a
// claim: word unigrams, word bigrams and character trigrams, namespaced so
// they cannot collide across feature families.
func ClaimTokens(claim string) []string {
	words := Tokenize(claim)
	var out []string
	for _, w := range words {
		out = append(out, "w:"+w)
	}
	for _, b := range NGrams(words, 2) {
		out = append(out, "b:"+b)
	}
	for _, c := range CharNGrams(claim, 3) {
		out = append(out, "c:"+c)
	}
	return out
}

// CosineSimilarity returns the cosine of the angle between two map-backed
// reference vectors, or 0 if either is zero. Production code uses Cosine on
// Sparse vectors.
func CosineSimilarity(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}
