package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. Records below the logger's level are
// dropped before any formatting work happens.
type Level int8

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int8(l))
}

// ParseLevel maps a flag string to a Level; unknown strings get LevelInfo.
func ParseLevel(s string) Level {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	}
	return LevelInfo
}

// Logger is a leveled structured logger emitting one logfmt line per
// record:
//
//	ts=2026-08-08T12:00:00.000Z level=info msg="corpus ready" relations=9 rows=1200
//
// Keys and values come in pairs; values are quoted only when they need it.
// The writer and clock are injectable so tests assert exact lines; With
// derives a child logger that prefixes every record with bound key/value
// context. A nil *Logger drops everything, so instrumented code never
// nil-checks.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	clock func() time.Time
	ctx   string // pre-rendered bound context, "" or " key=val ..."
}

// NewLogger builds a logger writing records at or above level to w. A nil
// w means os.Stderr.
func NewLogger(w io.Writer, level Level) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, clock: time.Now}
}

// WithClock returns a copy of the logger reading timestamps from fn — the
// test seam. The copy shares the parent's writer lock.
func (l *Logger) WithClock(fn func() time.Time) *Logger {
	if l == nil || fn == nil {
		return l
	}
	cp := *l
	cp.clock = fn
	return &cp
}

// With returns a child logger whose records all carry the given key/value
// pairs (rendered once, here).
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil || len(kvs) == 0 {
		return l
	}
	var b strings.Builder
	appendKVs(&b, kvs)
	cp := *l
	cp.ctx = l.ctx + b.String()
	return &cp
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LevelInfo, msg, kvs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LevelWarn, msg, kvs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

func (l *Logger) log(level Level, msg string, kvs []any) {
	if l == nil || level < l.level {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(l.ctx) + 16*len(kvs))
	b.WriteString("ts=")
	b.WriteString(l.clock().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(formatLogValue(msg))
	b.WriteString(l.ctx)
	appendKVs(&b, kvs)
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKVs renders " key=value" for each pair. A trailing odd value gets
// the key "arg" rather than being dropped — losing data beats losing data
// silently, and panicking in a log call is out of the question.
func appendKVs(b *strings.Builder, kvs []any) {
	for i := 0; i < len(kvs); i += 2 {
		b.WriteByte(' ')
		if i+1 >= len(kvs) {
			b.WriteString("arg=")
			b.WriteString(formatLogValue(kvs[i]))
			return
		}
		key, ok := kvs[i].(string)
		if !ok || key == "" {
			key = fmt.Sprint(kvs[i])
		}
		b.WriteString(sanitizeKey(key))
		b.WriteByte('=')
		b.WriteString(formatLogValue(kvs[i+1]))
	}
}

// sanitizeKey keeps keys single-token: anything that would break the
// key=value grammar is replaced with '_'.
func sanitizeKey(key string) string {
	clean := true
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case ' ', '=', '"', '\n', '\t':
			clean = false
		}
	}
	if clean {
		return key
	}
	var b strings.Builder
	b.Grow(len(key))
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case ' ', '=', '"', '\n', '\t':
			b.WriteByte('_')
		default:
			b.WriteByte(key[i])
		}
	}
	return b.String()
}

// formatLogValue renders one value, quoting only when the bare form would
// be ambiguous (spaces, quotes, '=', control characters, or empty).
func formatLogValue(v any) string {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case error:
		s = x.Error()
	case fmt.Stringer:
		s = x.String()
	case time.Duration:
		s = x.String()
	case float64:
		s = strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		s = strconv.FormatFloat(float64(x), 'g', -1, 32)
	default:
		s = fmt.Sprint(v)
	}
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] == '=' || s[i] == '"' {
			return strconv.Quote(s)
		}
	}
	return s
}
