package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format 0.0.4: one `# HELP` and `# TYPE` line per family, then
// its series (histograms expand to cumulative `_bucket` series plus `_sum`
// and `_count`). Scrape hooks run first so mirrored gauges are current.
func (r *Registry) WritePrometheus(w io.Writer) error {
	families, hooks := r.snapshotFamilies()
	for _, fn := range hooks {
		fn()
	}
	bw := bufio.NewWriter(w)
	for _, f := range families {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f *family) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.typ))
	w.WriteByte('\n')

	if f.fn != nil {
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(formatValue(f.fn()))
		w.WriteByte('\n')
		return
	}
	for _, s := range f.sortedSeries() {
		switch f.typ {
		case typeCounter:
			writeSample(w, f.name, "", f.labelNames, s.labelValues, "", "", s.counter.Value())
		case typeGauge:
			writeSample(w, f.name, "", f.labelNames, s.labelValues, "", "", s.gauge.Value())
		case typeHistogram:
			writeHistogram(w, f, s)
		}
	}
}

func writeHistogram(w *bufio.Writer, f *family, s *series) {
	h := s.hist
	var cum uint64
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		writeSample(w, f.name, "_bucket", f.labelNames, s.labelValues, "le", formatValue(upper), float64(cum))
	}
	cum += h.counts[len(h.uppers)].Load()
	writeSample(w, f.name, "_bucket", f.labelNames, s.labelValues, "le", "+Inf", float64(cum))
	writeSample(w, f.name, "_sum", f.labelNames, s.labelValues, "", "", h.Sum())
	writeSample(w, f.name, "_count", f.labelNames, s.labelValues, "", "", float64(h.count.Load()))
}

// writeSample emits one series line. extraName/extraValue append one more
// label pair (the histogram `le`).
func writeSample(w *bufio.Writer, name, suffix string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labelNames) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(ln)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(labelValues[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders a float the way Prometheus parsers expect: shortest
// round-trip representation, NaN/Inf spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler serves the registry in the text exposition format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
