package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 123e6, time.UTC)
}

func TestLoggerOutput(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo).WithClock(fixedClock)

	l.Info("corpus ready", "relations", 9, "rows", 1200)
	l.Warn("slow append", "latency", 1500*time.Millisecond)
	l.Error("replay failed", "err", errors.New("journal: bad record"))
	l.Info("quoted", "path", "/tmp/a b", "empty", "", "ratio", 0.25)

	want := strings.Join([]string{
		`ts=2026-08-08T12:00:00.123Z level=info msg="corpus ready" relations=9 rows=1200`,
		`ts=2026-08-08T12:00:00.123Z level=warn msg="slow append" latency=1.5s`,
		`ts=2026-08-08T12:00:00.123Z level=error msg="replay failed" err="journal: bad record"`,
		`ts=2026-08-08T12:00:00.123Z level=info msg=quoted path="/tmp/a b" empty="" ratio=0.25`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("log output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn).WithClock(fixedClock)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	out := b.String()
	if strings.Contains(out, "nope") {
		t.Errorf("filtered levels leaked:\n%s", out)
	}
	if !strings.Contains(out, "level=warn msg=yes") || !strings.Contains(out, "level=error msg=also") {
		t.Errorf("missing records:\n%s", out)
	}
}

func TestLoggerWith(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo).WithClock(fixedClock).With("component", "store")
	l.Info("append", "bytes", 128)
	want := `ts=2026-08-08T12:00:00.123Z level=info msg=append component=store bytes=128` + "\n"
	if got := b.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestLoggerOddArgsAndBadKeys(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo).WithClock(fixedClock)
	l.Info("odd", "key-only")
	l.Info("bad", "has space", 1)
	out := b.String()
	if !strings.Contains(out, "arg=key-only") {
		t.Errorf("odd trailing value dropped:\n%s", out)
	}
	if !strings.Contains(out, "has_space=1") {
		t.Errorf("key not sanitized:\n%s", out)
	}
}

func TestNilLoggerNoop(t *testing.T) {
	var l *Logger
	// Must not panic; With/WithClock on nil stay nil-safe too.
	l.With("a", 1).WithClock(fixedClock).Info("ignored")
	l.Error("ignored")
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "ERROR": LevelError,
		"bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestLoggerConcurrent checks lines never interleave: every record written
// from 16 goroutines arrives whole.
func TestLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	l := NewLogger(lockedWriter, LevelInfo).WithClock(fixedClock)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("tick", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	out := b.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d lines, want 1600", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=2026-08-08T12:00:00.123Z level=info msg=tick worker=") {
			t.Fatalf("mangled line %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
