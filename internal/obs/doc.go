// Package obs is the daemon's observability layer: an allocation-lean,
// dependency-free metrics registry rendered in the Prometheus text
// exposition format 0.0.4, plus a small leveled logfmt logger. Every
// serving layer of scrutinizerd — HTTP handlers, the admission guards, the
// session registry, the verification core's caches and the durable store —
// reports through one Registry mounted at /metrics.
//
// # Metrics
//
// Three instrument kinds, all safe for concurrent use and allocation-free
// on their hot paths:
//
//   - Counter: a monotonic float64 (Inc/Add). Set exists only for
//     scrape-time mirrors of totals a component already maintains in its
//     own atomics (cache hits, lifetime evictions) — the *_monitor.go
//     idiom of surfacing existing stats rather than re-instrumenting the
//     component.
//   - Gauge: a float64 that moves both ways (Set/Add/Inc/Dec).
//   - Histogram: observations bucketed into a fixed, strictly increasing
//     ladder (ExpBuckets builds the exponential ones; DefLatencyBuckets is
//     the 1ms–65s request-latency default), rendered cumulatively with
//     _sum and _count per the exposition format.
//
// Each has a label-vector variant (CounterVec, GaugeVec, HistogramVec)
// with bounded cardinality: past a vector's series cap (DefaultMaxSeries,
// overridable per metric with Registry.SetMaxSeries) new label
// combinations fold into one overflow series whose label values are all
// OverflowLabel — an unbounded tenant-ID label can therefore never leak
// memory or bloat a scrape.
//
// Values that only exist inside another component's Stats() snapshot are
// registered as NewCounterFunc/NewGaugeFunc (read at scrape time) or
// refreshed by an OnScrape hook; nothing in this package polls in the
// background.
//
// # Logging
//
// Logger emits one logfmt line per record:
//
//	ts=2026-08-08T12:00:00.000Z level=info msg="corpus ready" relations=9
//
// Levels are debug/info/warn/error; records below the logger's level cost
// a single comparison. The writer and clock are injectable so tests can
// assert exact output, and With binds key=value context once rather than
// per call. A nil *Logger is a valid no-op sink.
package obs
