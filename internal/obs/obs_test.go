package obs

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full exposition output for one registry
// exercising every instrument kind — the byte-for-byte contract /metrics
// serves to Prometheus.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_requests_total", "Requests handled.")
	c.Add(3)
	g := reg.NewGauge("test_inflight", "In-flight requests.")
	g.Set(2)
	g.Dec()
	cv := reg.NewCounterVec("test_errors_total", "Errors by route and code.", "route", "code")
	cv.With("verify", "500").Inc()
	cv.With("sessions", "400").Add(2)
	h := reg.NewHistogram("test_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	reg.NewGaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 1
# HELP test_errors_total Errors by route and code.
# TYPE test_errors_total counter
test_errors_total{route="sessions",code="400"} 2
test_errors_total{route="verify",code="500"} 1
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="10"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 55.55
test_latency_seconds_count 4
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 12
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionValid parses the rendered output the way a scraper would:
// every series line must belong to a typed family, histogram suffixes
// included, and no series may appear twice.
func TestExpositionValid(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("a_total", "A.").Inc()
	reg.NewGaugeVec("b", "B.", "x").With("1").Set(4)
	reg.NewHistogramVec("c_seconds", "C.", ExpBuckets(0.001, 2, 4), "x").With("y").Observe(0.1)
	reg.NewCounterFunc("d_total", "D.", func() float64 { return 7 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	types := map[string]string{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && types[cut] == "histogram" {
				base = cut
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("series %q has no TYPE line", name)
		}
		series := line[:strings.LastIndex(line, " ")]
		if seen[series] {
			t.Errorf("duplicate series %q", series)
		}
		seen[series] = true
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket contract: a
// sample exactly on an upper bound counts in that bucket, one ulp above
// lands in the next, and everything past the last bound is +Inf-only.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	cases := []struct {
		v    float64
		want int // index into counts
	}{
		{0, 0},
		{1, 0},                            // on the first bound: le includes it
		{math.Nextafter(1, math.Inf(1)), 1}, // one ulp past
		{2, 1},
		{4, 2},
		{4.0000001, 3}, // +Inf bucket
		{math.Inf(1), 3},
		{-5, 0}, // below every bound: first bucket
	}
	for _, tc := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(tc.v)
		for i := range h.counts {
			want := before[i]
			if i == tc.want {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%v): counts[%d] = %d, want %d", tc.v, i, got, want)
			}
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", got, len(cases))
	}
}

// TestConcurrentExactCounts hammers every instrument kind from 16
// goroutines and asserts exact totals — the CAS loops and atomic adds must
// lose nothing under the race detector.
func TestConcurrentExactCounts(t *testing.T) {
	const workers = 16
	const perWorker = 2000
	reg := NewRegistry()
	c := reg.NewCounter("hammer_total", "H.")
	g := reg.NewGauge("hammer_gauge", "H.")
	h := reg.NewHistogram("hammer_seconds", "H.", []float64{0.5})
	cv := reg.NewCounterVec("hammer_vec_total", "H.", "worker")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := cv.With(fmt.Sprintf("w%d", w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(0.25)
				mine.Inc()
				// Interleave scrapes with writes: rendering must never
				// block or corrupt the instruments.
				if i%500 == 0 {
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := c.Value(), float64(workers*perWorker); got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got, want := g.Value(), float64(workers*perWorker)*0.5; got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Errorf("histogram count = %v, want %v", got, want)
	}
	if got, want := h.Sum(), float64(workers*perWorker)*0.25; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	for w := 0; w < workers; w++ {
		if got := cv.With(fmt.Sprintf("w%d", w)).Value(); got != perWorker {
			t.Errorf("vec series w%d = %v, want %d", w, got, perWorker)
		}
	}
}

// TestCardinalityBound pins the overflow behavior: past the per-vector
// series cap, every new label combination shares one "other" series and
// the series count stops growing.
func TestCardinalityBound(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("bounded_total", "B.", "tenant")
	reg.SetMaxSeries("bounded_total", 4)

	for i := 0; i < 20; i++ {
		cv.With(fmt.Sprintf("tenant-%d", i)).Inc()
	}
	// The first 4 tenants got their own series; tenants 4..19 folded.
	for i := 0; i < 4; i++ {
		if got := cv.With(fmt.Sprintf("tenant-%d", i)).Value(); got != 1 {
			t.Errorf("tenant-%d = %v, want 1", i, got)
		}
	}
	if got := cv.With("tenant-999").Value(); got != 16 {
		t.Errorf("overflow series = %v, want 16 (tenants 4..19)", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "bounded_total{") {
			lines++
		}
	}
	if lines != 5 {
		t.Errorf("rendered %d series, want 5 (4 named + 1 %q):\n%s", lines, OverflowLabel, b.String())
	}
	if !strings.Contains(b.String(), `bounded_total{tenant="`+OverflowLabel+`"} 16`) {
		t.Errorf("missing overflow series:\n%s", b.String())
	}
}

// TestRegistryPanics pins the registration contract: duplicates and
// malformed names fail loudly at startup, not silently at scrape time.
func TestRegistryPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("ok_total", "ok")
	for name, fn := range map[string]func(){
		"duplicate name":    func() { reg.NewGauge("ok_total", "dup") },
		"invalid name":      func() { reg.NewCounter("bad name", "x") },
		"invalid label":     func() { reg.NewCounterVec("v_total", "x", "bad label") },
		"label count":       func() { reg.NewCounterVec("w_total", "x", "a").With("1", "2") },
		"unsorted buckets":  func() { reg.NewHistogram("h_seconds", "x", []float64{2, 1}) },
		"labelless vector":  func() { reg.NewCounterVec("x_total", "x") },
		"unknown SetMaxSeries": func() { reg.SetMaxSeries("nope", 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestExpBuckets pins the ladder construction.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestLabelEscaping pins exposition escaping of hostile label values.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterVec("esc_total", "E.", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}
