package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType is the TYPE line of a family in the exposition output.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefaultMaxSeries bounds the series count of a label vector: past it, new
// label combinations fold into a single overflow series (every label value
// "other") instead of growing the map without bound. A misbehaving caller
// — or a tenant ID used as a label — can therefore never turn the metrics
// endpoint into a memory leak or a scrape the server chokes on.
const DefaultMaxSeries = 64

// OverflowLabel is the label value carried by a vector's overflow series.
const OverflowLabel = "other"

// Counter is a monotonically increasing float64, safe for concurrent use.
// The zero value is unusable; obtain counters from a Registry.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are dropped (a counter only goes up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Set overwrites the counter's value. It exists for scrape-time mirrors of
// externally maintained monotonic totals (a component's own atomic counters
// surfaced through its Stats()); event-driven counters should only ever
// Inc/Add. Setting a lower value is allowed — the source decides
// monotonicity, not the mirror.
func (c *Counter) Set(v float64) { c.bits.Store(math.Float64bits(v)) }

// Value reports the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (cumulative at render
// time, per the exposition format) and tracks their sum and count. All
// methods are safe for concurrent use; Observe performs no allocation.
type Histogram struct {
	// uppers are the inclusive upper bounds, strictly increasing; the
	// implicit +Inf bucket is counts[len(uppers)].
	uppers  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d: %v", i, uppers))
		}
	}
	return &Histogram{
		uppers: append([]float64(nil), uppers...),
		counts: make([]atomic.Uint64, len(uppers)+1),
	}
}

// Observe records one sample. An observation equal to a bucket's upper
// bound lands in that bucket (le = "less than or equal"), matching the
// Prometheus bucket contract.
func (h *Histogram) Observe(v float64) {
	// Linear scan: latency vectors have a dozen-odd buckets and the scan
	// is branch-predictable, so this beats a binary search in practice
	// and keeps the hot path trivially allocation-free.
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n strictly increasing bucket bounds starting at start
// and multiplying by factor: the fixed exponential ladder latency
// histograms want (e.g. ExpBuckets(0.001, 2, 16) spans 1ms to ~32s).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets is the default request-latency ladder: 1ms doubling to
// ~65s, which brackets everything from a cache-hit health poll to a
// paper-scale batch verification.
var DefLatencyBuckets = ExpBuckets(0.001, 2, 17)

// series is one labelled sample set within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric: HELP, TYPE and its series (a single unlabelled
// one for scalar metrics, a keyed set for vectors).
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64      // histograms only
	fn         func() float64 // Func metrics only

	mu        sync.Mutex
	ordered   []*series
	byKey     map[string]*series
	maxSeries int
	overflow  *series // lazily created fold-in series past maxSeries
}

func (f *family) lookup(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := join(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	if len(f.byKey) >= f.maxSeries {
		if f.overflow == nil {
			ov := make([]string, len(f.labelNames))
			for i := range ov {
				ov[i] = OverflowLabel
			}
			f.overflow = f.newSeries(ov)
			f.ordered = append(f.ordered, f.overflow)
		}
		return f.overflow
	}
	s := f.newSeries(append([]string(nil), values...))
	f.byKey[key] = s
	f.ordered = append(f.ordered, s)
	return s
}

func (f *family) newSeries(values []string) *series {
	s := &series{labelValues: values}
	switch f.typ {
	case typeCounter:
		s.counter = &Counter{}
	case typeGauge:
		s.gauge = &Gauge{}
	case typeHistogram:
		s.hist = newHistogram(f.buckets)
	}
	return s
}

// join builds a map key from label values; 0x00 never appears in sane label
// values and a collision would only merge two series' samples, not corrupt
// memory.
func join(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x00)
		}
		b = append(b, v...)
	}
	return string(b)
}

// CounterVec is a Counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns (creating as needed) the counter for the given label values.
// Past the vector's series bound every new combination folds into one
// overflow series with all labels set to OverflowLabel.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.lookup(labelValues).counter
}

// GaugeVec is a Gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns (creating as needed) the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.lookup(labelValues).gauge
}

// HistogramVec is a Histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns (creating as needed) the histogram for the given label
// values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.lookup(labelValues).hist
}

// Registry holds a process's metric families and renders them in the
// Prometheus text exposition format. All registration methods panic on a
// duplicate or invalid name — metric registration is programmer-controlled
// startup code, and a silently dropped metric is worse than a crash in the
// first minute of a deploy.
type Registry struct {
	mu       sync.Mutex
	ordered  []*family
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, typ metricType, labelNames []string, buckets []float64, fn func() float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, ln := range labelNames {
		if !labelRe.MatchString(ln) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, ln))
		}
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: labelNames,
		buckets:    buckets,
		fn:         fn,
		byKey:      make(map[string]*series),
		maxSeries:  DefaultMaxSeries,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.byName[name] = f
	r.ordered = append(r.ordered, f)
	return f
}

// NewCounter registers and returns a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil, nil)
	return f.lookup(nil).counter
}

// NewGauge registers and returns a scalar gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil, nil)
	return f.lookup(nil).gauge
}

// NewHistogram registers and returns a scalar histogram over the given
// strictly increasing bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil, buckets, nil)
	return f.lookup(nil).hist
}

// NewCounterVec registers a counter family partitioned by labelNames.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: vector metric %s needs at least one label", name))
	}
	return &CounterVec{r.register(name, help, typeCounter, labelNames, nil, nil)}
}

// NewGaugeVec registers a gauge family partitioned by labelNames.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: vector metric %s needs at least one label", name))
	}
	return &GaugeVec{r.register(name, help, typeGauge, labelNames, nil, nil)}
}

// NewHistogramVec registers a histogram family partitioned by labelNames.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: vector metric %s needs at least one label", name))
	}
	return &HistogramVec{r.register(name, help, typeHistogram, labelNames, buckets, nil)}
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — the idiom for monotonic totals a component already maintains
// itself (cache hit counts, lifetime eviction counts).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, nil, nil, fn)
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil, fn)
}

// SetMaxSeries overrides the per-vector series bound for the named metric.
// It must be called right after registration, before traffic.
func (r *Registry) SetMaxSeries(name string, max int) {
	if max < 1 {
		panic(fmt.Sprintf("obs: SetMaxSeries(%q, %d): bound must be positive", name, max))
	}
	r.mu.Lock()
	f := r.byName[name]
	r.mu.Unlock()
	if f == nil {
		panic(fmt.Sprintf("obs: SetMaxSeries: no metric %q", name))
	}
	f.mu.Lock()
	f.maxSeries = max
	f.mu.Unlock()
}

// OnScrape registers a hook run before every render — the seam through
// which scrape-time mirrors (gauges fed from component Stats() calls) stay
// current without a background poller.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// snapshotFamilies copies the family list so rendering never holds the
// registry lock while formatting.
func (r *Registry) snapshotFamilies() ([]*family, []func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.ordered...), append([]func(){}, r.onScrape...)
}

// sortedSeries returns a family's series sorted by label values for stable,
// diffable output.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := append([]*series(nil), f.ordered...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
