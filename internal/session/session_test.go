package session

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/sim"
	"github.com/repro/scrutinizer/internal/worldgen"
)

const testSeed = 17

func testWorld(t testing.TB, numClaims int) *worldgen.World {
	t.Helper()
	cfg := worldgen.SmallScale()
	cfg.NumClaims = numClaims
	cfg.NumSections = 4
	w, err := worldgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testEngine(t testing.TB, w *worldgen.World) *core.Engine {
	t.Helper()
	e, err := sim.BuildEngine(w, sim.StudyCostModel(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testTeam(t testing.TB) *crowd.Team {
	t.Helper()
	team, err := crowd.NewTeam("W", 3, 0.97, testSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	return team
}

// crowdAnswer computes the simulated crowd's answer to one session
// question, using the same per-claim team views and ground-truth
// annotations as the synchronous core.Verify driver.
func crowdAnswer(t testing.TB, e *core.Engine, w *worldgen.World, oracles map[int]core.Oracle, team *crowd.Team, q Question) Answer {
	t.Helper()
	oracle := oracles[q.ClaimID]
	if oracle == nil {
		var err error
		oracle, err = e.NewTeamOracle(team.ForClaim(q.ClaimID))
		if err != nil {
			t.Fatal(err)
		}
		oracles[q.ClaimID] = oracle
	}
	var c *claims.Claim
	for _, cl := range w.Document.Claims {
		if cl.ID == q.ClaimID {
			c = cl
			break
		}
	}
	if c == nil {
		t.Fatalf("question for unknown claim %d", q.ClaimID)
	}
	var value string
	var secs float64
	if q.Screen == "final" {
		value, secs = oracle.AnswerFinal(c, q.Candidates)
	} else {
		var kind core.PropertyKind
		switch q.Screen {
		case "relation":
			kind = core.PropRelation
		case "key":
			kind = core.PropKey
		case "attribute":
			kind = core.PropAttr
		case "formula":
			kind = core.PropFormula
		default:
			t.Fatalf("unknown screen %q", q.Screen)
		}
		opts := make([]planner.Option, len(q.Options))
		for i, o := range q.Options {
			opts[i] = planner.Option{Value: o.Value, Prob: o.Prob}
		}
		value, secs = oracle.AnswerProperty(c, kind, opts)
	}
	return Answer{QuestionID: q.ID, ClaimID: q.ClaimID, Value: value, Seconds: secs}
}

// pumpSession answers every pending question until the session is done,
// using the simulated crowd. Questions of one polling round are answered
// across goroutines to exercise the concurrent answer path.
func pumpSession(t testing.TB, s *Session, e *core.Engine, w *worldgen.World, team *crowd.Team, concurrent bool) {
	t.Helper()
	oracles := map[int]core.Oracle{}
	var mu sync.Mutex // guards oracles under concurrent pumping
	for !s.Done() {
		qs := s.Questions()
		if len(qs) == 0 {
			t.Fatal("session not done but no pending questions")
		}
		if !concurrent {
			for _, q := range qs {
				// Follow each claim's question chain via the answer's
				// next-question return, like an attentive checker.
				for next := &q; next != nil; {
					a := crowdAnswer(t, e, w, oracles, team, *next)
					var err error
					next, err = s.Answer(context.Background(), a)
					if err != nil {
						t.Fatalf("answer %v: %v", a.QuestionID, err)
					}
				}
			}
			continue
		}
		var wg sync.WaitGroup
		for _, q := range qs {
			wg.Add(1)
			go func(q Question) {
				defer wg.Done()
				for next := &q; next != nil; {
					mu.Lock()
					a := crowdAnswer(t, e, w, oracles, team, *next)
					mu.Unlock()
					var err error
					next, err = s.Answer(context.Background(), a)
					if err != nil {
						t.Errorf("answer %v: %v", a.QuestionID, err)
						return
					}
				}
			}(q)
		}
		wg.Wait()
	}
}

// TestSessionEquivalentToVerify is the pinned equivalence of the control
// inversion: a simulated crowd pumping the session API — concurrently,
// under -race — yields verdicts, crowd seconds and accuracy bit-identical
// to the synchronous core.Verify loop for the same seed.
func TestSessionEquivalentToVerify(t *testing.T) {
	w := testWorld(t, 40)
	vc := core.VerifyConfig{BatchSize: 9, SectionReadCost: 20}

	refEngine := testEngine(t, w)
	refTeam := testTeam(t)
	vcRef := vc
	ref, err := refEngine.Verify(context.Background(), w.Document, refTeam, vcRef)
	if err != nil {
		t.Fatal(err)
	}

	for _, concurrent := range []bool{false, true} {
		e := testEngine(t, w)
		team := testTeam(t)
		m := NewManager(Config{})
		opts := Options{Verify: vc}
		opts.Verify.Checkers = team.Size()
		s, err := m.Create(context.Background(), e, w.Document, opts)
		if err != nil {
			t.Fatal(err)
		}
		pumpSession(t, s, e, w, team, concurrent)

		rep := s.Report()
		if !rep.Done {
			t.Fatal("session pumped dry but not done")
		}
		if rep.Seconds != ref.Seconds {
			t.Fatalf("concurrent=%v: seconds = %v, want %v", concurrent, rep.Seconds, ref.Seconds)
		}
		if rep.Batches != ref.Batches {
			t.Fatalf("concurrent=%v: batches = %d, want %d", concurrent, rep.Batches, ref.Batches)
		}
		if len(rep.Outcomes) != len(ref.Outcomes) {
			t.Fatalf("concurrent=%v: outcomes = %d, want %d", concurrent, len(rep.Outcomes), len(ref.Outcomes))
		}
		for i, o := range rep.Outcomes {
			r := ref.Outcomes[i]
			if o.ClaimID != r.ClaimID || o.Verdict != r.Verdict || o.Seconds != r.Seconds ||
				o.Value != r.Value || o.Screens != r.Screens {
				t.Fatalf("concurrent=%v: outcome %d = %+v, want %+v", concurrent, i, o, r)
			}
		}
		if want := core.Accuracy(w.Document, ref.Outcomes); rep.Accuracy != want {
			t.Fatalf("concurrent=%v: accuracy = %v, want %v", concurrent, rep.Accuracy, want)
		}
	}
}

// TestParkedSessionHoldsNoGoroutines asserts the zero-goroutine parking
// contract: creating a session and answering part of its questions leaves
// no goroutine behind while the session waits for the next answer.
func TestParkedSessionHoldsNoGoroutines(t *testing.T) {
	w := testWorld(t, 25)
	e := testEngine(t, w)
	team := testTeam(t)

	before := runtime.NumGoroutine()
	m := NewManager(Config{TTL: time.Hour})
	s, err := m.Create(context.Background(), e, w.Document, Options{Verify: core.VerifyConfig{BatchSize: 8, Checkers: team.Size()}})
	if err != nil {
		t.Fatal(err)
	}
	// Answer a handful of questions, then park.
	oracles := map[int]core.Oracle{}
	qs := s.Questions()
	for _, q := range qs[:min(3, len(qs))] {
		if _, err := s.Answer(context.Background(), crowdAnswer(t, e, w, oracles, team, q)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Done() {
		t.Fatal("session unexpectedly finished")
	}

	// Transient goroutines from batch assessment pools exit on their
	// own; give the scheduler a moment before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before || time.Now().After(deadline) {
			if n > before {
				t.Fatalf("parked session holds goroutines: %d before, %d after", before, n)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSnapshotRestore parks a half-answered session, snapshots it,
// replays the snapshot on a freshly built engine and finishes both; the
// restored session must be bit-identical to the original.
func TestSnapshotRestore(t *testing.T) {
	w := testWorld(t, 30)
	vc := core.VerifyConfig{BatchSize: 7, SectionReadCost: 10, Checkers: 3}

	e1 := testEngine(t, w)
	team1 := testTeam(t)
	m1 := NewManager(Config{})
	s1, err := m1.Create(context.Background(), e1, w.Document, Options{Verify: vc})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the first two claims of the batch end-to-end, then snapshot
	// the parked session. Snapshotting at claim boundaries keeps the
	// simulated crowd replayable: per-claim random streams restart from
	// the claim ID, so only whole-claim histories are reproducible by a
	// fresh crowd (real humans have no such constraint).
	oracles1 := map[int]core.Oracle{}
	qs := s1.Questions()
	if len(qs) < 3 {
		t.Fatalf("first batch too small: %d questions", len(qs))
	}
	for _, q := range qs[:2] {
		for next := &q; next != nil; {
			a := crowdAnswer(t, e1, w, oracles1, team1, *next)
			var err error
			next, err = s1.Answer(context.Background(), a)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := s1.Snapshot()
	if len(snap.Answers) == 0 {
		t.Fatal("snapshot recorded no answers")
	}

	e2 := testEngine(t, w)
	m2 := NewManager(Config{})
	s2, err := m2.Restore(context.Background(), e2, w.Document, Options{Verify: vc}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID() != s1.ID() {
		t.Errorf("restored ID = %q, want %q", s2.ID(), s1.ID())
	}
	p1, p2 := s1.Progress(), s2.Progress()
	if p1.Answered != p2.Answered || p1.CrowdSeconds != p2.CrowdSeconds || p1.PendingQuestions != p2.PendingQuestions {
		t.Fatalf("restored progress %+v, want %+v", p2, p1)
	}

	// Finish both sessions with identical crowds; the completed claims
	// need no further answers, and untouched claims get fresh per-claim
	// views on both sides, so the runs must stay in lockstep.
	team2 := testTeam(t)
	pumpSessionFrom(t, s1, e1, w, team1, oracles1)
	pumpSessionFrom(t, s2, e2, w, team2, map[int]core.Oracle{})

	r1, r2 := s1.Report(), s2.Report()
	if !r1.Done || !r2.Done {
		t.Fatal("sessions not done")
	}
	if r1.Seconds != r2.Seconds || r1.Accuracy != r2.Accuracy || len(r1.Outcomes) != len(r2.Outcomes) {
		t.Fatalf("restored run diverged: %+v vs %+v", r2, r1)
	}
	for i := range r1.Outcomes {
		if r1.Outcomes[i].Verdict != r2.Outcomes[i].Verdict || r1.Outcomes[i].Seconds != r2.Outcomes[i].Seconds {
			t.Fatalf("outcome %d diverged", i)
		}
	}
}

// pumpSessionFrom finishes a session reusing an existing per-claim oracle
// map (claims already mid-flight keep their advanced random streams).
func pumpSessionFrom(t testing.TB, s *Session, e *core.Engine, w *worldgen.World, team *crowd.Team, oracles map[int]core.Oracle) {
	t.Helper()
	for !s.Done() {
		qs := s.Questions()
		if len(qs) == 0 {
			t.Fatal("session not done but no pending questions")
		}
		for _, q := range qs {
			for next := &q; next != nil; {
				a := crowdAnswer(t, e, w, oracles, team, *next)
				var err error
				next, err = s.Answer(context.Background(), a)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestTTLEviction verifies idle sessions are swept on manager operations
// and counted in Stats.
func TestTTLEviction(t *testing.T) {
	w := testWorld(t, 12)
	now := time.Unix(1000, 0)
	clock := &fakeClock{now: now}
	m := NewManager(Config{TTL: time.Minute, Clock: clock.Now})
	s, err := m.Create(context.Background(), testEngine(t, w), w.Document, Options{Verify: core.VerifyConfig{BatchSize: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(s.ID()); !ok {
		t.Fatal("fresh session not found")
	}
	clock.Advance(30 * time.Second)
	s.Questions() // activity refreshes the deadline
	clock.Advance(45 * time.Second)
	if _, ok := m.Get(s.ID()); !ok {
		t.Fatal("active session evicted")
	}
	clock.Advance(2 * time.Minute)
	if _, ok := m.Get(s.ID()); ok {
		t.Fatal("idle session survived TTL")
	}
	st := m.Stats()
	if st.Active != 0 || st.EvictedTotal != 1 || st.CreatedTotal != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestManagerLimitsAndAnswerValidation covers MaxSessions, unknown IDs,
// stale question IDs and Remove.
func TestManagerLimitsAndAnswerValidation(t *testing.T) {
	w := testWorld(t, 12)
	m := NewManager(Config{MaxSessions: 1})
	s, err := m.Create(context.Background(), testEngine(t, w), w.Document, Options{Verify: core.VerifyConfig{BatchSize: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), testEngine(t, w), w.Document, Options{}); err == nil {
		t.Error("registry over capacity accepted a session")
	}
	if _, ok := m.Get("nope"); ok {
		t.Error("unknown id found")
	}

	qs := s.Questions()
	if len(qs) == 0 {
		t.Fatal("no questions")
	}
	q := qs[0]
	if _, err := s.Answer(context.Background(), Answer{QuestionID: "c999.0", ClaimID: 999, Value: "x"}); err == nil {
		t.Error("answer for unknown claim accepted")
	}
	if _, err := s.Answer(context.Background(), Answer{QuestionID: questionID(q.ClaimID, q.Seq+5), ClaimID: q.ClaimID, Value: "x"}); err == nil {
		t.Error("stale question id accepted")
	}
	if _, err := s.Answer(context.Background(), Answer{QuestionID: q.ID, ClaimID: q.ClaimID, Value: "x", Seconds: 1}); err != nil {
		t.Errorf("valid answer rejected: %v", err)
	}
	// Stats sees the session and its queue.
	st := m.Stats()
	if st.Active != 1 || st.PendingQuestions == 0 {
		t.Errorf("stats = %+v", st)
	}
	if !m.Remove(s.ID()) {
		t.Error("remove failed")
	}
	if m.Remove(s.ID()) {
		t.Error("double remove succeeded")
	}
}

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// TestOwnerTagging: sessions carry their Options.Owner tag and Stats
// breaks live sessions down per owner.
func TestOwnerTagging(t *testing.T) {
	w := testWorld(t, 8)
	m := NewManager(Config{})

	mk := func(owner string) *Session {
		s, err := m.Create(context.Background(), testEngine(t, w), w.Document, Options{
			Verify: core.VerifyConfig{BatchSize: 4},
			Owner:  owner,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk("verifier-1")
	mk("verifier-1")
	mk("verifier-2")
	untagged := mk("")

	if a.Owner() != "verifier-1" || untagged.Owner() != "" {
		t.Fatalf("Owner() = %q / %q", a.Owner(), untagged.Owner())
	}
	st := m.Stats()
	if st.Active != 4 {
		t.Fatalf("Active = %d, want 4", st.Active)
	}
	if st.ByOwner["verifier-1"] != 2 || st.ByOwner["verifier-2"] != 1 || len(st.ByOwner) != 2 {
		t.Fatalf("ByOwner = %v", st.ByOwner)
	}

	// Removing sessions updates the breakdown; an all-untagged registry
	// reports a nil map.
	m.Remove(a.ID())
	if st := m.Stats(); st.ByOwner["verifier-1"] != 1 {
		t.Fatalf("ByOwner after remove = %v", st.ByOwner)
	}
}

// TestManagerConcurrentChurn exercises the registry under multi-tenant
// churn, under -race: N workers concurrently create sessions (tagged with
// per-tenant owners), answer a few questions through the simulated crowd,
// and remove their sessions, while the fake clock advances so TTL eviction
// fires mid-traffic and pollers hammer Get/Stats. Asserts (1) lifecycle
// accounting stays consistent — every session ends exactly once, via
// Remove or eviction, under its creation owner; (2) no cross-session
// answer leakage — each session's final answer log is exactly what its own
// worker posted, even though all sessions share claim IDs.
func TestManagerConcurrentChurn(t *testing.T) {
	w := testWorld(t, 8)
	clock := &fakeClock{now: time.Unix(5000, 0)}
	m := NewManager(Config{TTL: time.Minute, Clock: clock.Now})

	type ending struct {
		owner   string
		evicted bool
	}
	var endMu sync.Mutex
	ended := map[string][]ending{}
	m.SetHooks(Hooks{OnEnd: func(id, owner string, evicted bool) {
		endMu.Lock()
		ended[id] = append(ended[id], ending{owner, evicted})
		endMu.Unlock()
	}})

	owners := []string{"tenant-a", "tenant-b", "tenant-c"}
	const workers = 4
	const rounds = 3

	var createdMu sync.Mutex
	createdOwner := map[string]string{} // session id -> owner at creation

	stop := make(chan struct{})
	var aux sync.WaitGroup
	// Stats/Get pollers and a clock ticker run alongside the churn.
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := m.Stats()
			if st.Active < 0 || st.CreatedTotal < uint64(st.Active) {
				t.Errorf("inconsistent stats: %+v", st)
				return
			}
			tagged := 0
			for _, n := range st.ByOwner {
				tagged += n
			}
			if tagged > st.Active {
				t.Errorf("ByOwner sums to %d > Active %d", tagged, st.Active)
				return
			}
			m.Get("nope")
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clock.Advance(time.Second)
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			engine := testEngine(t, w)
			team, err := crowd.NewTeam("W", 3, 0.97, int64(testSeed+wk))
			if err != nil {
				t.Error(err)
				return
			}
			oracles := map[int]core.Oracle{}
			owner := owners[wk%len(owners)]
			for r := 0; r < rounds; r++ {
				s, err := m.Create(context.Background(), engine, w.Document, Options{
					Verify: core.VerifyConfig{BatchSize: 4},
					Owner:  owner,
				})
				if err != nil {
					t.Errorf("worker %d round %d create: %v", wk, r, err)
					return
				}
				createdMu.Lock()
				createdOwner[s.ID()] = owner
				createdMu.Unlock()

				var posted []Answer
				qs := s.Questions()
				if len(qs) == 0 {
					t.Errorf("worker %d round %d: no questions", wk, r)
					return
				}
				for _, q := range qs[:min(3, len(qs))] {
					a := crowdAnswer(t, engine, w, oracles, team, q)
					if _, err := s.Answer(context.Background(), a); err != nil {
						t.Errorf("worker %d answer: %v", wk, err)
						return
					}
					posted = append(posted, a)
				}

				// Leakage check: the log holds exactly this worker's answers.
				got := s.Snapshot().Answers
				if len(got) != len(posted) {
					t.Errorf("worker %d round %d: log has %d answers, posted %d", wk, r, len(got), len(posted))
					return
				}
				for i := range got {
					if got[i] != posted[i] {
						t.Errorf("worker %d round %d: log[%d] = %+v, posted %+v", wk, r, i, got[i], posted[i])
						return
					}
				}
				// Remove races against TTL eviction (the clock ticks
				// concurrently); either ending is legal, but it must be
				// exactly one — checked against the hook log below.
				m.Remove(s.ID())
			}
		}(wk)
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	// Flush the stragglers, then audit the lifecycle accounting.
	clock.Advance(time.Hour)
	st := m.Stats()
	if st.Active != 0 {
		t.Fatalf("Active = %d after final sweep, want 0", st.Active)
	}
	if want := uint64(workers * rounds); st.CreatedTotal != want {
		t.Fatalf("CreatedTotal = %d, want %d", st.CreatedTotal, want)
	}
	endMu.Lock()
	defer endMu.Unlock()
	if len(ended) != workers*rounds {
		t.Fatalf("%d sessions ended, want %d", len(ended), workers*rounds)
	}
	evictions := uint64(0)
	for id, ends := range ended {
		if len(ends) != 1 {
			t.Fatalf("session %s ended %d times: %+v", id, len(ends), ends)
		}
		if want := createdOwner[id]; ends[0].owner != want {
			t.Fatalf("session %s ended under owner %q, created under %q", id, ends[0].owner, want)
		}
		if ends[0].evicted {
			evictions++
		}
	}
	if st.EvictedTotal != evictions {
		t.Fatalf("Stats.EvictedTotal = %d, hook saw %d", st.EvictedTotal, evictions)
	}
}
