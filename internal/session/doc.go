// Package session turns the step-driven verification engine into
// long-lived, resumable verification sessions — the mixed-initiative
// deployment shape of the paper, where the system plans question screens
// (§5.1) and human fact checkers answer them at their own pace.
//
// A Session wraps one core.DocumentRun: the Algorithm 1 loop parked
// between questions. Checkers list pending questions with Questions,
// post answers with Answer, and watch Progress until the run is done;
// batch-boundary retraining fires inside the answer that completes a
// batch, exactly as in the synchronous loop. Because the underlying run
// is pure state — it emits questions and consumes answers — a parked
// session holds no goroutines at all, which is what makes thousands of
// concurrent sessions cheap between answers.
//
// The Manager is the concurrent session registry: it creates sessions,
// routes lookups by ID, evicts sessions idle past their TTL (swept
// inline on manager operations, never from a background goroutine), and
// aggregates Stats for health reporting. Multi-tenant serving tags each
// session with the resource that started it (Options.Owner — the facade
// uses the verifier ID), and Stats breaks live sessions down per owner.
//
// Sessions are resumable in two senses. In-process, a session is always
// parked and continues whenever the next answer arrives. Across
// processes, Snapshot captures the ordered answer log; Restore replays
// it against a freshly built engine — verification is deterministic in
// (engine seed, document, answers), so the replayed session reaches a
// state bit-identical to the original.
//
// The synchronous crowd path (core.Verify, core.VerifyClaimWith with an
// Oracle) and this package are two front ends over the same step
// machine: a simulated crowd pumping a session produces verdicts
// bit-identical to core.Verify with the same team, which the package
// tests pin.
package session
