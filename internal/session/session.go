package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
)

// Config parameterises a Manager.
type Config struct {
	// TTL evicts sessions idle (no answer, question poll or progress
	// read) for longer than this. 0 disables eviction.
	TTL time.Duration
	// MaxSessions caps concurrently active sessions; Create fails once
	// the registry is full (after sweeping expired sessions). 0 means
	// unlimited.
	MaxSessions int
	// Clock overrides the time source (tests); nil means time.Now.
	Clock func() time.Time
}

// Options parameterises one session.
type Options struct {
	// Verify is the Algorithm 1 configuration for the run (batch size,
	// ordering, checkers, section read cost, parallelism for batch
	// assessment and retraining).
	Verify core.VerifyConfig
	// Owner optionally tags the session with the resource it runs under
	// (the service layer uses the verifier ID), so registry statistics
	// can be broken down per tenant. Empty owners are untagged.
	Owner string
}

// Option is one candidate answer shown on a question screen.
type Option struct {
	Value string  `json:"value"`
	Prob  float64 `json:"prob"`
}

// Question is one pending question screen, enriched with the claim text a
// human checker needs to answer it.
type Question struct {
	// ID names the (claim, seq) pair this question occupies; an answer
	// carrying it is rejected if the session has moved on (duplicate or
	// out-of-order post).
	ID      string `json:"id"`
	ClaimID int    `json:"claim_id"`
	Seq     int    `json:"seq"`
	// Screen is "relation", "key", "attribute", "formula" or "final".
	Screen   string `json:"screen"`
	Claim    string `json:"claim"`
	Sentence string `json:"sentence"`
	// Options are candidate property values, best first (property and
	// formula screens).
	Options []Option `json:"options,omitempty"`
	// Candidates are full candidate queries as SQL (final screen).
	Candidates []string `json:"candidates,omitempty"`
}

// Answer is one checker response, routed to the claim's pending question.
type Answer struct {
	// QuestionID optionally pins the answer to one question; when set it
	// must match the claim's current question.
	QuestionID string `json:"question_id,omitempty"`
	ClaimID    int    `json:"claim_id"`
	// Value is the chosen or suggested value ("" when the checker cannot
	// answer; SQL on the final screen).
	Value string `json:"value"`
	// Seconds is the human effort the answer consumed.
	Seconds float64 `json:"seconds"`
}

// Progress is a point-in-time view of a session.
type Progress struct {
	ID               string    `json:"id"`
	Done             bool      `json:"done"`
	Verified         int       `json:"verified"`
	Total            int       `json:"total"`
	Batches          int       `json:"batches"`
	PendingQuestions int       `json:"pending_questions"`
	Answered         int       `json:"answered"`
	CrowdSeconds     float64   `json:"crowd_seconds"`
	ModelGeneration  uint64    `json:"model_generation"`
	Created          time.Time `json:"created"`
	LastActive       time.Time `json:"last_active"`
}

// Report aggregates a session's outcomes (partial while the run is live).
type Report struct {
	Done     bool
	Outcomes []*core.Outcome
	Seconds  float64
	Batches  int
	Accuracy float64
}

// Snapshot is the durable form of a session: the ordered answer log.
// Replaying it through Restore against a freshly built engine (same
// corpus, document and seed) reconstructs the session state exactly —
// verification is deterministic in (engine, document, answers).
type Snapshot struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Answers []Answer  `json:"answers"`
}

// Stats aggregates the registry for health reporting.
type Stats struct {
	// Active is the number of live sessions.
	Active int `json:"active"`
	// PendingQuestions sums the queued questions across live sessions.
	PendingQuestions int `json:"pending_questions"`
	// MaxGeneration is the highest classifier generation reached by any
	// live session's engine.
	MaxGeneration uint64 `json:"max_model_generation"`
	// CreatedTotal and EvictedTotal count over the manager's lifetime.
	CreatedTotal uint64 `json:"created_total"`
	EvictedTotal uint64 `json:"evicted_total"`
	// AnsweredTotal counts answers accepted by live sessions over the
	// manager's lifetime, excluding snapshot replay (those were counted
	// when first posted).
	AnsweredTotal uint64 `json:"answered_total"`
	// ByOwner counts live sessions per Options.Owner tag (untagged
	// sessions are omitted); nil when no live session carries a tag.
	ByOwner map[string]int `json:"by_owner,omitempty"`
}

// Hooks observe accepted registry mutations; the service layer installs
// them to journal session activity. Install with SetHooks before the
// manager is shared — the fields are read without synchronization.
type Hooks struct {
	// OnAnswer fires after a session accepts an answer, under the session
	// lock — so hook invocation order matches apply order even with
	// concurrent checkers, which is what makes answer-log replay exact. It
	// does not fire for answers replayed by Restore (they are already
	// journaled). The hook must not call back into the Manager or Session.
	OnAnswer func(s *Session, a Answer)
	// OnEnd fires when a session leaves the registry — an explicit Remove
	// or a TTL eviction — under the registry lock. It must not call back
	// into the Manager.
	OnEnd func(id, owner string, evicted bool)
}

// Manager is the concurrent session registry. All methods are safe for
// concurrent use. The manager never spawns goroutines: TTL eviction is
// swept inline on Create, Get, Remove and Stats.
//
// The registry lock is split from the per-session locks: lookups and stats
// take the registry read lock and touch only per-session atomics (last
// activity, pending count, model generation), so answer routing on one
// session — which can hold that session's lock through a batch-boundary
// retrain — never blocks another session's question poll, a lookup, or a
// health check. The write lock is taken only to mutate the registry map:
// insert, remove, and the TTL sweep (which a lock-free scan arms first).
type Manager struct {
	cfg   Config
	hooks Hooks

	mu       sync.RWMutex
	sessions map[string]*Session
	seq      uint64
	created  uint64
	evicted  uint64

	// answered counts accepted (non-replay) answers; an atomic rather
	// than an m.mu field because it is bumped under a session lock, not
	// the registry lock.
	answered atomic.Uint64
}

// NewManager builds an empty registry.
func NewManager(cfg Config) *Manager {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*Session)}
}

func (m *Manager) now() time.Time { return m.cfg.Clock() }

// SetHooks installs mutation observers. It must be called before the
// manager handles any traffic.
func (m *Manager) SetHooks(h Hooks) { m.hooks = h }

// sweep evicts idle sessions; caller holds m.mu for writing.
func (m *Manager) sweep(now time.Time) {
	if m.cfg.TTL <= 0 {
		return
	}
	for id, s := range m.sessions {
		if now.Sub(s.lastActive()) > m.cfg.TTL {
			delete(m.sessions, id)
			m.evicted++
			if m.hooks.OnEnd != nil {
				m.hooks.OnEnd(id, s.owner, true)
			}
		}
	}
}

// maybeSweep arms the TTL sweep: a read-locked scan over the sessions'
// atomic activity stamps decides whether anything expired, and only then
// is the write lock taken. The common case — nothing expired — costs
// read-path locking only, so eviction checks on Get/Stats never serialize
// concurrent lookups.
func (m *Manager) maybeSweep(now time.Time) {
	if m.cfg.TTL <= 0 {
		return
	}
	expired := false
	m.mu.RLock()
	for _, s := range m.sessions {
		if now.Sub(s.lastActive()) > m.cfg.TTL {
			expired = true
			break
		}
	}
	m.mu.RUnlock()
	if !expired {
		return
	}
	m.mu.Lock()
	m.sweep(now)
	m.mu.Unlock()
}

// Create starts a verification session for a document on a dedicated
// engine. The engine must be exclusive to the session: batch-boundary
// retraining mutates its classifiers. ctx bounds creation — first-batch
// selection scores every claim of the document — and cancellation leaves
// nothing registered.
func (m *Manager) Create(ctx context.Context, engine *core.Engine, doc *claims.Document, opts Options) (*Session, error) {
	return m.start(ctx, engine, doc, opts, nil)
}

// Restore rebuilds a session from a snapshot by replaying its answer log
// against a freshly built engine. The engine and document must be
// constructed exactly as the original session's were (same corpus,
// feature pipeline, configuration and seed, no training beyond what the
// original had at creation); replay then reaches a bit-identical state.
// The restored session keeps the snapshot's ID.
func (m *Manager) Restore(ctx context.Context, engine *core.Engine, doc *claims.Document, opts Options, snap *Snapshot) (*Session, error) {
	if snap == nil {
		return nil, fmt.Errorf("session: nil snapshot")
	}
	return m.start(ctx, engine, doc, opts, snap)
}

func (m *Manager) start(ctx context.Context, engine *core.Engine, doc *claims.Document, opts Options, snap *Snapshot) (*Session, error) {
	if engine == nil {
		return nil, fmt.Errorf("session: nil engine")
	}
	if doc == nil {
		return nil, fmt.Errorf("session: nil document")
	}
	now := m.now()
	m.mu.Lock()
	m.sweep(now)
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: registry full (%d active sessions)", m.cfg.MaxSessions)
	}
	m.seq++
	seq := m.seq
	m.mu.Unlock()

	// Start the run outside the registry lock: first-batch selection
	// scores every claim and is the expensive part of creation.
	run, err := engine.StartDocument(ctx, doc, opts.Verify)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:      newID(seq),
		owner:   opts.Owner,
		mgr:     m,
		engine:  engine,
		doc:     doc,
		byID:    make(map[int]*claims.Claim, len(doc.Claims)),
		run:     run,
		created: now,
	}
	s.last.Store(now.UnixNano())
	s.refreshStatsCache()
	for _, c := range doc.Claims {
		s.byID[c.ID] = c
	}
	if snap != nil {
		if snap.ID != "" {
			s.id = snap.ID
		}
		if !snap.Created.IsZero() {
			s.created = snap.Created
		}
		// Replayed answers are already journaled; suppress the hook so
		// recovery does not re-append them. Replay runs detached from ctx:
		// a half-replayed session is worse than a slow restore, and the
		// journaled answers were all accepted once already.
		s.replaying = true
		for i, a := range snap.Answers {
			if _, err := s.Answer(context.WithoutCancel(ctx), a); err != nil {
				return nil, fmt.Errorf("session: replaying answer %d (claim %d): %w", i, a.ClaimID, err)
			}
		}
		s.replaying = false
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.sessions[s.id]; exists {
		return nil, fmt.Errorf("session: id %q already registered", s.id)
	}
	// Re-check capacity: the registry lock was released while the run
	// started, so concurrent creations may have filled the registry in
	// the meantime.
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("session: registry full (%d active sessions)", m.cfg.MaxSessions)
	}
	m.sessions[s.id] = s
	m.created++
	return s, nil
}

// Get returns a live session by ID (expired sessions are swept first).
// The lookup itself runs under the registry read lock and touches no
// session lock, so it proceeds even while every live session is mid-answer.
func (m *Manager) Get(id string) (*Session, bool) {
	m.maybeSweep(m.now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Remove deletes a session from the registry, reporting whether it was
// present.
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweep(m.now())
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	if ok && m.hooks.OnEnd != nil {
		m.hooks.OnEnd(id, s.owner, false)
	}
	return ok
}

// Stats aggregates the live registry. Per-session figures come from each
// session's atomically maintained stats cache (pending questions, model
// generation, refreshed on every accepted answer), so a health poll reads
// a consistent registry snapshot without stalling on — or being stalled
// by — sessions that are mid-answer.
func (m *Manager) Stats() Stats {
	m.maybeSweep(m.now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := Stats{
		Active:        len(m.sessions),
		CreatedTotal:  m.created,
		EvictedTotal:  m.evicted,
		AnsweredTotal: m.answered.Load(),
	}
	for _, s := range m.sessions {
		pending, gen := s.statsView()
		st.PendingQuestions += pending
		if gen > st.MaxGeneration {
			st.MaxGeneration = gen
		}
		if s.owner != "" {
			if st.ByOwner == nil {
				st.ByOwner = make(map[string]int)
			}
			st.ByOwner[s.owner]++
		}
	}
	return st
}

// newID mints a session ID: a monotone sequence number plus random bytes
// so IDs are unguessable across restarts.
func newID(seq uint64) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// the sequence alone rather than aborting session creation.
		return fmt.Sprintf("s%d", seq)
	}
	return fmt.Sprintf("s%d-%s", seq, hex.EncodeToString(b[:]))
}

// Session is one parked verification run. All methods are safe for
// concurrent use; a single lock serializes answers, which keeps the
// underlying run's per-claim machines race-free however many checkers
// post concurrently. The activity stamp and the stats cache live outside
// that lock, as atomics, so the Manager's sweep and Stats never wait on a
// session that is mid-answer.
type Session struct {
	id     string
	owner  string // immutable after creation
	mgr    *Manager
	engine *core.Engine
	doc    *claims.Document
	byID   map[int]*claims.Claim

	// last is the idle-eviction stamp (UnixNano), written by every
	// checker-facing call and read lock-free by the registry sweep.
	last atomic.Int64
	// pendingN / genN cache Progress().Pending and the engine generation,
	// refreshed after every accepted answer; Manager.Stats reads them
	// without taking the session or run lock.
	pendingN atomic.Int64
	genN     atomic.Uint64

	mu      sync.Mutex
	run     *core.DocumentRun
	created time.Time
	log     []Answer
	// replaying is true while Restore replays a snapshot's answer log; the
	// session is not yet shared, so plain reads in Answer are safe.
	replaying bool
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Owner returns the Options.Owner tag the session was created with ("" for
// untagged sessions).
func (s *Session) Owner() string { return s.owner }

func (s *Session) lastActive() time.Time { return time.Unix(0, s.last.Load()) }

func (s *Session) touch() { s.last.Store(s.mgr.now().UnixNano()) }

// refreshStatsCache re-publishes the pending-question count and model
// generation for lock-free Stats aggregation. Called at creation and after
// every accepted answer (the only events that change either figure).
func (s *Session) refreshStatsCache() {
	s.pendingN.Store(int64(s.run.Progress().Pending))
	s.genN.Store(s.engine.Generation())
}

// questionID names the (claim, seq) slot of a pending question.
func questionID(claimID, seq int) string { return fmt.Sprintf("c%d.%d", claimID, seq) }

// toQuestion enriches a core question with the claim text.
func (s *Session) toQuestion(q *core.Question) Question {
	out := Question{
		ID:      questionID(q.ClaimID, q.Seq),
		ClaimID: q.ClaimID,
		Seq:     q.Seq,
	}
	if q.Step == core.StepFinal {
		out.Screen = "final"
		out.Candidates = append([]string(nil), q.Candidates...)
	} else {
		out.Screen = q.Property.String()
		for _, o := range q.Options {
			out.Options = append(out.Options, Option{Value: o.Value, Prob: o.Prob})
		}
	}
	if c := s.byID[q.ClaimID]; c != nil {
		out.Claim = c.Text
		out.Sentence = c.Sentence
	}
	return out
}

// Questions lists the pending questions of the current batch, in batch
// order. An empty list means the run is done (or mid-answer on another
// goroutine; poll again).
func (s *Session) Questions() []Question {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	qs := s.run.Questions()
	out := make([]Question, 0, len(qs))
	for _, q := range qs {
		out = append(out, s.toQuestion(q))
	}
	return out
}

// Answer posts one answer, advancing the claim's machine — and, when it
// completes the batch's last claim, running the retrain barrier and
// selecting the next batch before returning. It returns the claim's next
// question (nil when the claim — or the whole run — is finished).
//
// ctx bounds this answer's own work (Algorithm 2 query generation): a
// cancelled answer is rolled back, not journaled, and repostable. The
// retrain barrier a completing answer triggers is a commit point and does
// not observe ctx — see core.DocumentRun.
func (s *Session) Answer(ctx context.Context, a Answer) (*Question, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	if a.QuestionID != "" {
		q := s.run.QuestionFor(a.ClaimID)
		if q == nil {
			return nil, fmt.Errorf("session: claim %d has no pending question", a.ClaimID)
		}
		if want := questionID(q.ClaimID, q.Seq); a.QuestionID != want {
			return nil, fmt.Errorf("session: answer targets question %s but %s is pending", a.QuestionID, want)
		}
	}
	next, err := s.run.Answer(ctx, a.ClaimID, a.Value, a.Seconds)
	if err != nil {
		return nil, err
	}
	s.refreshStatsCache()
	s.log = append(s.log, a)
	if !s.replaying {
		s.mgr.answered.Add(1)
		if s.mgr.hooks.OnAnswer != nil {
			s.mgr.hooks.OnAnswer(s, a)
		}
	}
	if next == nil {
		return nil, nil
	}
	q := s.toQuestion(next)
	return &q, nil
}

// Done reports whether every claim has been verified.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run.Done()
}

// statsView reports the cached queue length and model generation without
// counting as checker activity (Manager.Stats would otherwise keep every
// session alive through health polling) and without locking (Manager.Stats
// would otherwise stall behind a batch-boundary retrain).
func (s *Session) statsView() (pending int, generation uint64) {
	return int(s.pendingN.Load()), s.genN.Load()
}

// Progress reports the session's position in the Algorithm 1 loop. Like
// every checker-facing call, it refreshes the idle-eviction deadline.
func (s *Session) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	p := s.run.Progress()
	return Progress{
		ID:               s.id,
		Done:             p.Done,
		Verified:         p.Verified,
		Total:            p.Total,
		Batches:          p.Batches,
		PendingQuestions: p.Pending,
		Answered:         p.Answered,
		CrowdSeconds:     p.Seconds,
		ModelGeneration:  s.engine.Generation(),
		Created:          s.created,
		LastActive:       s.lastActive(),
	}
}

// Report returns the outcomes accumulated so far (complete once Done),
// scored against the document where annotations exist.
func (s *Session) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	p := s.run.Progress()
	outs := s.run.Outcomes()
	return Report{
		Done:     p.Done,
		Outcomes: outs,
		Seconds:  p.Seconds,
		Batches:  p.Batches,
		Accuracy: core.Accuracy(s.doc, outs),
	}
}

// Snapshot captures the session's answer log for durable storage; see
// Manager.Restore.
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Snapshot{
		ID:      s.id,
		Created: s.created,
		Answers: append([]Answer(nil), s.log...),
	}
}
