package session

import (
	"context"
	"testing"
	"time"

	"github.com/repro/scrutinizer/internal/core"
)

// BenchmarkSessionCreate measures steady-state session creation: the
// first-batch assessment and plan of every claim (warm engine caches, as
// on a serving daemon that hosts many sessions over one corpus).
func BenchmarkSessionCreate(b *testing.B) {
	w := testWorld(b, 40)
	e := testEngine(b, w)
	m := NewManager(Config{})
	opts := Options{Verify: core.VerifyConfig{BatchSize: 10, Checkers: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := m.Create(context.Background(), e, w.Document, opts)
		if err != nil {
			b.Fatal(err)
		}
		m.Remove(s.ID())
	}
}

// BenchmarkSessionAnswerPump measures the interactive hot path: a
// simulated crowd answering every queued question of a session to
// completion, including the batch-boundary retraining the last answer of
// each batch triggers. Engine construction is excluded.
func BenchmarkSessionAnswerPump(b *testing.B) {
	w := testWorld(b, 30)
	opts := Options{Verify: core.VerifyConfig{BatchSize: 10, Checkers: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := testEngine(b, w) // retraining mutates the engine: one per run
		team := testTeam(b)
		m := NewManager(Config{})
		s, err := m.Create(context.Background(), e, w.Document, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		answers := 0
		oracles := map[int]core.Oracle{}
		for !s.Done() {
			for _, q := range s.Questions() {
				for next := &q; next != nil; {
					a := crowdAnswer(b, e, w, oracles, team, *next)
					var err error
					next, err = s.Answer(context.Background(), a)
					if err != nil {
						b.Fatal(err)
					}
					answers++
				}
			}
		}
		b.ReportMetric(float64(answers), "answers/op")
	}
}

// BenchmarkSessionEvict measures the inline TTL sweep over a populated
// registry — the cost every manager operation pays to keep parked
// sessions from accumulating.
func BenchmarkSessionEvict(b *testing.B) {
	w := testWorld(b, 20)
	e := testEngine(b, w)
	clock := &fakeClock{now: time.Unix(1000, 0)}
	m := NewManager(Config{TTL: time.Minute, Clock: clock.Now})
	opts := Options{Verify: core.VerifyConfig{BatchSize: 10, Checkers: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 16; j++ {
			if _, err := m.Create(context.Background(), e, w.Document, opts); err != nil {
				b.Fatal(err)
			}
		}
		clock.Advance(2 * time.Minute)
		b.StartTimer()
		if st := m.Stats(); st.Active != 0 {
			b.Fatalf("sweep left %d sessions", st.Active)
		}
	}
}
