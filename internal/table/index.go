package table

import (
	"sync"
	"sync/atomic"
)

// This file implements the interned, columnar view of a corpus that the
// compiled query engine executes against. The string-keyed Relation / Corpus
// API stays the compatibility façade for loading, mutation and ad-hoc
// look-ups; the Index is the read path the hot loops use.
//
// Interning model:
//
//   - every relation gets a dense ID in [0, NumRelations)
//   - within a relation, every row key gets a dense row ID and every value
//     attribute a dense column ID (both in declaration order, matching
//     Relation.Keys / Relation.Attrs)
//
// A resolved look-up (relID, rowID, colID) is then two slice indexes — one
// into the relation table, one into that relation's flat row-major cell
// array — plus a presence-bitmask probe for NULL tracking. Names are
// resolved to IDs exactly once, outside the loop that needs them; this is
// what lets query generation enumerate candidate assignments as integer
// tuples with no string handling at all.
//
// An Index is an immutable snapshot: it is safe for unsynchronised
// concurrent readers, and it records the corpus generation it was built
// from so Corpus.Index can rebuild lazily after mutations.

// CellCoord is a fully resolved cell address: interned relation, row and
// column IDs.
type CellCoord struct {
	Rel, Row, Col int32
}

// indexedRel is one relation's interned snapshot.
type indexedRel struct {
	rel   *Relation
	rowID map[string]int32
	colID map[string]int32
	nCols int32
	nRows int32
	cells []float64 // row-major: cells[row*nCols+col]
	mask  []uint64  // presence bitmask over the same flat space
}

// Index is the interned, columnar snapshot of a corpus.
type Index struct {
	gen   uint64
	relID map[string]int32
	rels  []indexedRel
}

// IndexStats summarises interner cardinalities for monitoring.
type IndexStats struct {
	// Generation is the corpus generation the index was built from.
	Generation uint64
	// Relations, Rows, Cols count interned IDs (rows and cols summed over
	// relations); Cells counts addressable cells.
	Relations int
	Rows      int
	Cols      int
	Cells     int
}

// BuildIndex makes an interned snapshot of the corpus at its current
// generation. Prefer Corpus.Index, which caches the snapshot and rebuilds
// only after mutations.
func BuildIndex(c *Corpus) *Index {
	ix := &Index{
		gen:   c.Generation(),
		relID: make(map[string]int32, len(c.names)),
	}
	for _, name := range c.names {
		r := c.byName[name]
		ir := indexedRel{
			rel:   r,
			rowID: make(map[string]int32, len(r.rowKeys)),
			colID: make(map[string]int32, len(r.attrs)),
			nCols: int32(len(r.attrs)),
			nRows: int32(len(r.rowKeys)),
		}
		for i, k := range r.rowKeys {
			ir.rowID[k] = int32(i)
		}
		for i, a := range r.attrs {
			ir.colID[a] = int32(i)
		}
		flat := len(r.rowKeys) * len(r.attrs)
		ir.cells = make([]float64, flat)
		ir.mask = make([]uint64, (flat+63)/64)
		for ri := range r.cells {
			base := ri * int(ir.nCols)
			copy(ir.cells[base:base+int(ir.nCols)], r.cells[ri])
			for ci, ok := range r.present[ri] {
				if ok {
					bit := base + ci
					ir.mask[bit>>6] |= 1 << (uint(bit) & 63)
				}
			}
		}
		ix.relID[name] = int32(len(ix.rels))
		ix.rels = append(ix.rels, ir)
	}
	return ix
}

// Generation returns the corpus generation the index snapshots.
func (ix *Index) Generation() uint64 { return ix.gen }

// NumRelations returns the number of interned relations.
func (ix *Index) NumRelations() int { return len(ix.rels) }

// RelID resolves a relation name to its interned ID.
func (ix *Index) RelID(name string) (int32, bool) {
	id, ok := ix.relID[name]
	return id, ok
}

// RowID resolves a row key within a relation to its interned row ID.
func (ix *Index) RowID(rel int32, key string) (int32, bool) {
	id, ok := ix.rels[rel].rowID[key]
	return id, ok
}

// ColID resolves a value-attribute label within a relation to its interned
// column ID.
func (ix *Index) ColID(rel int32, attr string) (int32, bool) {
	id, ok := ix.rels[rel].colID[attr]
	return id, ok
}

// Relation returns the underlying relation for an interned ID.
func (ix *Index) Relation(rel int32) *Relation { return ix.rels[rel].rel }

// NumRows returns the row count of an interned relation.
func (ix *Index) NumRows(rel int32) int { return int(ix.rels[rel].nRows) }

// NumCols returns the value-attribute count of an interned relation.
func (ix *Index) NumCols(rel int32) int { return int(ix.rels[rel].nCols) }

// Cell returns the value at a fully resolved coordinate. The second result
// is false for NULL cells. Callers must pass IDs previously resolved
// through RelID / RowID / ColID; the only per-call work is two slice
// indexes and a bitmask probe.
func (ix *Index) Cell(rel, row, col int32) (float64, bool) {
	ir := &ix.rels[rel]
	bit := int(row)*int(ir.nCols) + int(col)
	if ir.mask[bit>>6]&(1<<(uint(bit)&63)) == 0 {
		return 0, false
	}
	return ir.cells[bit], true
}

// CellAt is Cell for a CellCoord.
func (ix *Index) CellAt(cc CellCoord) (float64, bool) {
	return ix.Cell(cc.Rel, cc.Row, cc.Col)
}

// Stats reports interner cardinalities.
func (ix *Index) Stats() IndexStats {
	s := IndexStats{Generation: ix.gen, Relations: len(ix.rels)}
	for i := range ix.rels {
		s.Rows += int(ix.rels[i].nRows)
		s.Cols += int(ix.rels[i].nCols)
		s.Cells += int(ix.rels[i].nRows) * int(ix.rels[i].nCols)
	}
	return s
}

// indexCache is the lazily built Index attached to a Corpus. The current
// snapshot hangs off an atomic pointer so concurrent readers validate and
// fetch it without a lock; the mutex serializes rebuilds only (so a
// generation change triggers one BuildIndex, not a thundering herd).
type indexCache struct {
	mu   sync.Mutex
	snap atomic.Pointer[Index]
}

// Generation reports the corpus mutation generation: it advances whenever a
// relation is added or any relation's rows/cells change. Consumers that
// cache work derived from corpus contents (the Index itself, memoized
// tentative-execution results in the query generator) key their caches by
// this value.
func (c *Corpus) Generation() uint64 {
	g := c.adds + c.drops
	for _, name := range c.names {
		g += c.byName[name].version
	}
	return g
}

// Index returns the interned snapshot of the corpus, building it on first
// use and rebuilding after mutations (detected through Generation). The
// returned Index is immutable and safe for concurrent readers; Index itself
// must not race with corpus mutation, mirroring the existing contract that
// relations are loaded before verification starts.
//
// The steady-state path — every query-generation call from every
// concurrent run over the corpus — is a lock-free atomic load plus a
// generation compare; the rebuild mutex is touched only when the snapshot
// is missing or stale, so readers never serialize on it.
func (c *Corpus) Index() *Index {
	gen := c.Generation()
	if ix := c.idx.snap.Load(); ix != nil && ix.gen == gen {
		return ix
	}
	c.idx.mu.Lock()
	defer c.idx.mu.Unlock()
	if ix := c.idx.snap.Load(); ix != nil && ix.gen == gen {
		return ix
	}
	ix := BuildIndex(c)
	c.idx.snap.Store(ix)
	return ix
}
