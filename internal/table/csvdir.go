package table

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSVDir loads every *.csv file in dir as one relation (file name minus
// extension = relation name, first column = key attribute) and returns the
// assembled corpus. An error is returned when the directory holds no CSV
// files — an empty corpus is never what a caller wants to serve from.
func ReadCSVDir(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	corpus := NewCorpus()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		rel, err := ReadCSV(strings.TrimSuffix(e.Name(), ".csv"), f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := corpus.Add(rel); err != nil {
			return nil, err
		}
	}
	if len(corpus.Names()) == 0 {
		return nil, fmt.Errorf("table: no *.csv relations in %s", dir)
	}
	return corpus, nil
}
