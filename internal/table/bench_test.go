package table

import (
	"strconv"
	"testing"
)

func benchRelation(b *testing.B, rows, attrs int) *Relation {
	b.Helper()
	names := make([]string, attrs)
	for i := range names {
		names[i] = strconv.Itoa(1971 + i)
	}
	r := MustNewRelation("Bench", "Index", names)
	vals := make([]float64, attrs)
	for i := range vals {
		vals[i] = float64(i)
	}
	for i := 0; i < rows; i++ {
		if err := r.AddRow("key"+strconv.Itoa(i), vals); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkGet(b *testing.B) {
	r := benchRelation(b, 24, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Get("key7", "2017"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddRow(b *testing.B) {
	names := []string{"2016", "2017", "2018"}
	vals := []float64{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := MustNewRelation("Bench", "Index", names)
		for j := 0; j < 100; j++ {
			if err := r.AddRow("key"+strconv.Itoa(j), vals); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRelationsWithKey(b *testing.B) {
	c := NewCorpus()
	for i := 0; i < 100; i++ {
		r := benchRelation(b, 10, 5)
		// MustNewRelation name collision: rebuild with unique names.
		r2 := MustNewRelation("R"+strconv.Itoa(i), "Index", r.Attrs())
		for _, k := range r.Keys() {
			row, _, err := r.Row(k)
			if err != nil {
				b.Fatal(err)
			}
			if err := r2.AddRow(k, row); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Add(r2); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RelationsWithKey("key3")
	}
}
