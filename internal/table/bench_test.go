package table

import (
	"strconv"
	"testing"
)

func benchRelation(b *testing.B, rows, attrs int) *Relation {
	b.Helper()
	names := make([]string, attrs)
	for i := range names {
		names[i] = strconv.Itoa(1971 + i)
	}
	r := MustNewRelation("Bench", "Index", names)
	vals := make([]float64, attrs)
	for i := range vals {
		vals[i] = float64(i)
	}
	for i := 0; i < rows; i++ {
		if err := r.AddRow("key"+strconv.Itoa(i), vals); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkGet(b *testing.B) {
	r := benchRelation(b, 24, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Get("key7", "2017"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddRow(b *testing.B) {
	names := []string{"2016", "2017", "2018"}
	vals := []float64{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := MustNewRelation("Bench", "Index", names)
		for j := 0; j < 100; j++ {
			if err := r.AddRow("key"+strconv.Itoa(j), vals); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRelationsWithKey(b *testing.B) {
	c := NewCorpus()
	for i := 0; i < 100; i++ {
		r := benchRelation(b, 10, 5)
		// MustNewRelation name collision: rebuild with unique names.
		r2 := MustNewRelation("R"+strconv.Itoa(i), "Index", r.Attrs())
		for _, k := range r.Keys() {
			row, _, err := r.Row(k)
			if err != nil {
				b.Fatal(err)
			}
			if err := r2.AddRow(k, row); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Add(r2); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RelationsWithKey("key3")
	}
}

// benchIndexCorpus builds a mid-sized corpus (20 relations × 40 rows × 12
// attrs) so cell look-ups hit realistic map sizes.
func benchIndexCorpus(b *testing.B) *Corpus {
	b.Helper()
	c := NewCorpus()
	for r := 0; r < 20; r++ {
		attrs := make([]string, 12)
		for a := range attrs {
			attrs[a] = strconv.Itoa(2010 + a)
		}
		rel := MustNewRelation("Rel"+strconv.Itoa(r), "Index", attrs)
		vals := make([]float64, len(attrs))
		for row := 0; row < 40; row++ {
			for a := range vals {
				vals[a] = float64(r*1000 + row*10 + a)
			}
			if err := rel.AddRow("Key"+strconv.Itoa(row), vals); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Add(rel); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkCellLookup measures the interned hot path: a resolved
// (relID, rowID, colID) probe — two slice indexes plus a bitmask check.
func BenchmarkCellLookup(b *testing.B) {
	c := benchIndexCorpus(b)
	ix := c.Index()
	rel, _ := ix.RelID("Rel7")
	row, _ := ix.RowID(rel, "Key23")
	col, _ := ix.ColID(rel, "2017")
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, ok := ix.Cell(rel, row, col)
		if !ok {
			b.Fatal("missing cell")
		}
		sink += v
	}
	_ = sink
}

// BenchmarkCellLookupString measures the compatibility façade the hot
// loops avoid: three string-map look-ups per cell.
func BenchmarkCellLookupString(b *testing.B) {
	c := benchIndexCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, err := c.Get("Rel7", "Key23", "2017")
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

// BenchmarkBuildIndex tracks snapshot cost: it bounds how expensive a
// corpus-generation bump (load-time mutation) is for the first reader
// that rebuilds the interned view.
func BenchmarkBuildIndex(b *testing.B) {
	c := benchIndexCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildIndex(c)
	}
}
