package table

import (
	"testing"
)

func indexFixture(t testing.TB) *Corpus {
	t.Helper()
	c := NewCorpus()
	ged := MustNewRelation("GED", "Index", []string{"2016", "2017", "Total"})
	if err := ged.AddRow("PGElecDemand", []float64{21546, 22209, 43755}); err != nil {
		t.Fatal(err)
	}
	if err := ged.AddSparseRow("CapAddTotal_Wind", map[string]float64{"2017": 540}); err != nil {
		t.Fatal(err)
	}
	fin := MustNewRelation("Fin", "Index", []string{"2017"})
	if err := fin.AddRow("Revenue", []float64{1200}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Relation{ged, fin} {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestIndexLookupsMatchFacade(t *testing.T) {
	c := indexFixture(t)
	ix := c.Index()
	for _, rn := range c.Names() {
		rel, err := c.Relation(rn)
		if err != nil {
			t.Fatal(err)
		}
		rid, ok := ix.RelID(rn)
		if !ok {
			t.Fatalf("relation %q not interned", rn)
		}
		if ix.Relation(rid) != rel {
			t.Fatalf("Relation(%d) mismatch", rid)
		}
		if ix.NumRows(rid) != rel.NumRows() || ix.NumCols(rid) != rel.NumAttrs() {
			t.Fatalf("dims mismatch for %q", rn)
		}
		for _, key := range rel.Keys() {
			row, ok := ix.RowID(rid, key)
			if !ok {
				t.Fatalf("row %q not interned", key)
			}
			for _, attr := range rel.Attrs() {
				col, ok := ix.ColID(rid, attr)
				if !ok {
					t.Fatalf("col %q not interned", attr)
				}
				want, werr := rel.Get(key, attr)
				got, present := ix.Cell(rid, row, col)
				if present != (werr == nil) {
					t.Fatalf("presence mismatch at %s/%s/%s: %v vs err %v", rn, key, attr, present, werr)
				}
				if werr == nil && got != want {
					t.Fatalf("value mismatch at %s/%s/%s: %v vs %v", rn, key, attr, got, want)
				}
				if v2, p2 := ix.CellAt(CellCoord{Rel: rid, Row: row, Col: col}); v2 != got || p2 != present {
					t.Fatal("CellAt disagrees with Cell")
				}
			}
		}
	}
	if _, ok := ix.RelID("NoSuchRelation"); ok {
		t.Error("unknown relation interned")
	}
	s := ix.Stats()
	if s.Relations != 2 || s.Rows != 3 || s.Cols != 4 || s.Cells != 7 {
		t.Errorf("stats = %+v", s)
	}
}

func TestIndexCacheInvalidation(t *testing.T) {
	c := indexFixture(t)
	ix1 := c.Index()
	if c.Index() != ix1 {
		t.Fatal("unchanged corpus rebuilt its index")
	}
	gen := c.Generation()

	rel, err := c.Relation("GED")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Set("CapAddTotal_Wind", "2016", 500); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == gen {
		t.Fatal("Set did not advance the generation")
	}
	ix2 := c.Index()
	if ix2 == ix1 {
		t.Fatal("mutation did not rebuild the index")
	}
	rid, _ := ix2.RelID("GED")
	row, _ := ix2.RowID(rid, "CapAddTotal_Wind")
	col, _ := ix2.ColID(rid, "2016")
	if v, ok := ix2.Cell(rid, row, col); !ok || v != 500 {
		t.Fatalf("rebuilt index missing new cell: %v %v", v, ok)
	}
	// The old snapshot is unaffected (immutable).
	if _, ok := ix1.Cell(rid, row, col); ok {
		t.Error("old snapshot sees the new cell")
	}

	// Adding a relation and adding rows also advance the generation.
	gen = c.Generation()
	if err := rel.AddRow("NewRow", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == gen {
		t.Error("AddRow did not advance the generation")
	}
	gen = c.Generation()
	extra := MustNewRelation("Extra", "Index", []string{"2017"})
	if err := c.Add(extra); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == gen {
		t.Error("Add did not advance the generation")
	}
}
