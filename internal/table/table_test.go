package table

import (
	"bytes"
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func newGED(t *testing.T) *Relation {
	t.Helper()
	r := MustNewRelation("GED", "Index", []string{"2016", "2017", "2030"})
	if err := r.AddRow("PGElecDemand", []float64{21546, 22209, 29349}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRow("PGINCoal", []float64{2390, 2412, 2341}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("", "Index", nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRelation("R", "", nil); err == nil {
		t.Error("empty key attribute accepted")
	}
	if _, err := NewRelation("R", "Index", []string{"Index"}); err == nil {
		t.Error("attribute colliding with key accepted")
	}
	if _, err := NewRelation("R", "Index", []string{"2017", "2017"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestAddRowAndGet(t *testing.T) {
	r := newGED(t)
	v, err := r.Get("PGElecDemand", "2017")
	if err != nil {
		t.Fatal(err)
	}
	if v != 22209 {
		t.Errorf("Get = %g, want 22209", v)
	}
	if _, err := r.Get("NoSuchKey", "2017"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: got %v, want ErrNotFound", err)
	}
	if _, err := r.Get("PGINCoal", "1999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing attr: got %v, want ErrNotFound", err)
	}
}

func TestAddRowErrors(t *testing.T) {
	r := newGED(t)
	if err := r.AddRow("PGElecDemand", []float64{1, 2, 3}); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := r.AddRow("New", []float64{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.AddRow("", []float64{1, 2, 3}); err == nil {
		t.Error("empty key accepted")
	}
}

func TestSparseRowAndNulls(t *testing.T) {
	r := MustNewRelation("S", "Index", []string{"2016", "2017"})
	if err := r.AddSparseRow("X", map[string]float64{"2017": 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("X", "2016"); !errors.Is(err, ErrNotFound) {
		t.Errorf("NULL cell: got %v, want ErrNotFound", err)
	}
	if v, err := r.Get("X", "2017"); err != nil || v != 5 {
		t.Errorf("Get = %g, %v", v, err)
	}
	if err := r.AddSparseRow("Y", map[string]float64{"1999": 1}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := r.Set("X", "2016", 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("X", "2016"); v != 7 {
		t.Errorf("Set then Get = %g", v)
	}
}

func TestSetErrors(t *testing.T) {
	r := newGED(t)
	if err := r.Set("nope", "2017", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Set missing row: %v", err)
	}
	if err := r.Set("PGINCoal", "nope", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Set missing attr: %v", err)
	}
}

func TestRowAndColumn(t *testing.T) {
	r := newGED(t)
	vals, pres, err := r.Row("PGINCoal")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[1] != 2412 || !pres[1] {
		t.Errorf("Row = %v %v", vals, pres)
	}
	keys, col, err := r.Column("2016")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || col[0] != 21546 {
		t.Errorf("Column = %v %v", keys, col)
	}
	if _, _, err := r.Row("nope"); !errors.Is(err, ErrNotFound) {
		t.Error("Row missing key should be ErrNotFound")
	}
	if _, _, err := r.Column("nope"); !errors.Is(err, ErrNotFound) {
		t.Error("Column missing attr should be ErrNotFound")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := newGED(t)
	r.SetMeta("unit", "TWh")
	c := r.Clone()
	if err := c.Set("PGINCoal", "2016", -1); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("PGINCoal", "2016"); v != 2390 {
		t.Errorf("clone mutation leaked into original: %g", v)
	}
	if c.Meta("unit") != "TWh" {
		t.Error("metadata not cloned")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := MustNewRelation("R", "Index", []string{"2016", "2017"})
	if err := r.AddRow("a", []float64{1.5, -2}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSparseRow("b", map[string]float64{"2017": 3.25}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.NumAttrs() != 2 {
		t.Fatalf("round trip shape: %d rows, %d attrs", got.NumRows(), got.NumAttrs())
	}
	if v, _ := got.Get("a", "2016"); v != 1.5 {
		t.Errorf("cell a/2016 = %g", v)
	}
	if _, err := got.Get("b", "2016"); !errors.Is(err, ErrNotFound) {
		t.Error("NULL cell should survive round trip")
	}
	if v, _ := got.Get("b", "2017"); v != 3.25 {
		t.Errorf("cell b/2017 = %g", v)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV("R", strings.NewReader("Index,2017\nx,notanumber\n")); err == nil {
		t.Error("non-numeric cell accepted")
	}
	if _, err := ReadCSV("R", strings.NewReader("Index,2017\nx,1\nx,2\n")); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestCorpusBasics(t *testing.T) {
	c := NewCorpus()
	if err := c.Add(newGED(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(newGED(t)); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := c.Add(nil); err == nil {
		t.Error("nil relation accepted")
	}
	if !c.Has("GED") || c.Has("X") || c.Len() != 1 {
		t.Error("Has/Len wrong")
	}
	if _, err := c.Relation("X"); !errors.Is(err, ErrNotFound) {
		t.Error("missing relation should be ErrNotFound")
	}
	v, err := c.Get("GED", "PGElecDemand", "2017")
	if err != nil || v != 22209 {
		t.Errorf("corpus Get = %g, %v", v, err)
	}
}

func TestRelationsWithKey(t *testing.T) {
	c := NewCorpus()
	r1 := MustNewRelation("B", "Index", []string{"2017"})
	if err := r1.AddRow("shared", []float64{1}); err != nil {
		t.Fatal(err)
	}
	r2 := MustNewRelation("A", "Index", []string{"2017"})
	if err := r2.AddRow("shared", []float64{2}); err != nil {
		t.Fatal(err)
	}
	r3 := MustNewRelation("C", "Index", []string{"2017"})
	if err := r3.AddRow("other", []float64{3}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Relation{r1, r2, r3} {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	got := c.RelationsWithKey("shared")
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("RelationsWithKey = %v", got)
	}
	if got := c.RelationsWithKey("missing"); len(got) != 0 {
		t.Errorf("missing key should yield empty, got %v", got)
	}
}

func TestCorpusStats(t *testing.T) {
	c := NewCorpus()
	if err := c.Add(newGED(t)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Relations != 1 || s.Rows != 2 || s.Attrs != 3 || s.Cells != 6 {
		t.Errorf("Stats = %+v", s)
	}
}

// Property: after inserting any set of distinct keys with random values,
// every Get returns exactly the stored value and Keys preserves order.
func TestRelationStoreRetrieveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttr := 1 + rng.Intn(6)
		attrs := make([]string, nAttr)
		for i := range attrs {
			attrs[i] = strconv.Itoa(2000 + i)
		}
		r := MustNewRelation("R", "Index", attrs)
		n := 1 + rng.Intn(30)
		want := make(map[string][]float64, n)
		for i := 0; i < n; i++ {
			key := "k" + strconv.Itoa(i)
			vals := make([]float64, nAttr)
			for j := range vals {
				vals[j] = rng.NormFloat64() * 1000
			}
			if err := r.AddRow(key, vals); err != nil {
				return false
			}
			want[key] = vals
		}
		if r.NumRows() != n {
			return false
		}
		for i, key := range r.Keys() {
			if key != "k"+strconv.Itoa(i) {
				return false
			}
			for j, a := range attrs {
				v, err := r.Get(key, a)
				if err != nil || v != want[key][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip preserves every present cell.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		attrs := []string{"2016", "2017", "Total"}
		r := MustNewRelation("R", "Index", attrs)
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			vals := map[string]float64{}
			for _, a := range attrs {
				if rng.Float64() < 0.7 {
					vals[a] = float64(rng.Intn(10000)) / 4
				}
			}
			if err := r.AddSparseRow("row"+strconv.Itoa(i), vals); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV("R", &buf)
		if err != nil {
			return false
		}
		for _, key := range r.Keys() {
			for _, a := range attrs {
				v1, err1 := r.Get(key, a)
				v2, err2 := got.Get(key, a)
				if (err1 == nil) != (err2 == nil) {
					return false
				}
				if err1 == nil && v1 != v2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCorpusRemove: removal drops the relation, strictly advances the
// generation (so cached indexes rebuild), and reports absence honestly.
func TestCorpusRemove(t *testing.T) {
	c := NewCorpus()
	r1 := MustNewRelation("co2", "indicator", []string{"y2000", "y2001"})
	if err := r1.AddRow("transport", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	r2 := MustNewRelation("gdp", "indicator", []string{"y2000"})
	if err := c.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(r2); err != nil {
		t.Fatal(err)
	}

	ixBefore := c.Index()
	genBefore := c.Generation()
	if !c.Remove("co2") {
		t.Fatal("Remove reported co2 absent")
	}
	if c.Has("co2") || c.Len() != 1 || c.Names()[0] != "gdp" {
		t.Fatalf("post-remove corpus: has=%v len=%d names=%v", c.Has("co2"), c.Len(), c.Names())
	}
	if gen := c.Generation(); gen <= genBefore {
		t.Fatalf("generation %d did not advance past %d on removal", gen, genBefore)
	}
	if ix := c.Index(); ix == ixBefore || ix.Stats().Relations != 1 {
		t.Fatalf("index did not rebuild after removal: %+v", ix.Stats())
	}
	if c.Remove("co2") {
		t.Fatal("second Remove reported success")
	}
	// Re-adding the same name after removal is legal and advances the
	// generation again.
	if err := c.Add(MustNewRelation("co2", "indicator", []string{"y2000"})); err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
}
