// Package table implements the relational substrate of Scrutinizer: an
// in-memory store of small statistical tables like the Global Energy Demand
// fragment of the paper's Figure 1. Each relation has a single key attribute
// (e.g. "Index") whose values identify rows, plus a set of numeric value
// attributes (typically years like "2017" or aggregates like "Total").
//
// The statistical-check SQL fragment (paper Definition 3) only ever performs
// key-equality look-ups feeding arithmetic expressions, so the store is
// optimised for exactly that access path: O(1) row lookup by key and O(1)
// cell lookup by (key, attribute).
//
// Two access layers share the data. The string-keyed Relation/Corpus API is
// the compatibility façade: loading, mutation, and occasional look-ups go
// through it. Hot loops (compiled query plans, tentative execution in the
// query generator) instead resolve names once through the interned Index
// (see index.go) — relation/key/attribute → dense int IDs — and read cells
// as two slice indexes plus a presence-bitmask probe. Corpus.Index caches
// the interned snapshot and rebuilds it when Generation observes a
// mutation.
package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ErrNotFound is returned when a relation, row, attribute or cell does not
// exist. Callers use errors.Is to distinguish missing data from other
// failures.
var ErrNotFound = errors.New("table: not found")

// Relation is a single statistical table: a key column plus numeric value
// columns. Relations are immutable after construction except through AddRow
// and Set, which keep the internal indexes consistent.
type Relation struct {
	name     string
	keyAttr  string
	attrs    []string
	attrIdx  map[string]int
	rowKeys  []string
	rowIdx   map[string]int
	cells    [][]float64 // rows × attrs
	present  [][]bool    // whether a cell holds a value (NULL tracking)
	metadata map[string]string
	version  uint64 // bumped on every row/cell mutation (index invalidation)
}

// NewRelation creates an empty relation with the given name, key attribute
// name and value attribute names. Attribute names must be unique and must
// not collide with the key attribute.
func NewRelation(name, keyAttr string, attrs []string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("table: relation name must be non-empty")
	}
	if keyAttr == "" {
		return nil, fmt.Errorf("table: key attribute must be non-empty for relation %q", name)
	}
	r := &Relation{
		name:     name,
		keyAttr:  keyAttr,
		attrs:    append([]string(nil), attrs...),
		attrIdx:  make(map[string]int, len(attrs)),
		rowIdx:   make(map[string]int),
		metadata: make(map[string]string),
	}
	for i, a := range r.attrs {
		if a == keyAttr {
			return nil, fmt.Errorf("table: attribute %q collides with key attribute in relation %q", a, name)
		}
		if _, dup := r.attrIdx[a]; dup {
			return nil, fmt.Errorf("table: duplicate attribute %q in relation %q", a, name)
		}
		r.attrIdx[a] = i
	}
	return r, nil
}

// MustNewRelation is NewRelation for statically known-good inputs; it panics
// on error. Intended for tests and generators.
func MustNewRelation(name, keyAttr string, attrs []string) *Relation {
	r, err := NewRelation(name, keyAttr, attrs)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// KeyAttr returns the name of the key attribute.
func (r *Relation) KeyAttr() string { return r.keyAttr }

// Attrs returns the value attribute names in declaration order. The caller
// must not mutate the returned slice.
func (r *Relation) Attrs() []string { return r.attrs }

// HasAttr reports whether the relation has a value attribute named a.
func (r *Relation) HasAttr(a string) bool {
	_, ok := r.attrIdx[a]
	return ok
}

// Keys returns the row key values in insertion order. The caller must not
// mutate the returned slice.
func (r *Relation) Keys() []string { return r.rowKeys }

// HasKey reports whether a row with the given key exists.
func (r *Relation) HasKey(key string) bool {
	_, ok := r.rowIdx[key]
	return ok
}

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return len(r.rowKeys) }

// NumAttrs returns the number of value attributes.
func (r *Relation) NumAttrs() int { return len(r.attrs) }

// SetMeta attaches free-form metadata (e.g. unit, region) to the relation.
func (r *Relation) SetMeta(k, v string) { r.metadata[k] = v }

// Meta returns metadata value for k, or "".
func (r *Relation) Meta(k string) string { return r.metadata[k] }

// Metadata returns a copy of the relation's metadata map (nil when empty),
// in support of persisting relations losslessly — CSV carries the cells but
// not the metadata.
func (r *Relation) Metadata() map[string]string {
	if len(r.metadata) == 0 {
		return nil
	}
	cp := make(map[string]string, len(r.metadata))
	for k, v := range r.metadata {
		cp[k] = v
	}
	return cp
}

// AddRow appends a row with the given key and values (one per attribute, in
// attribute order). It fails on duplicate keys or arity mismatch.
func (r *Relation) AddRow(key string, values []float64) error {
	if key == "" {
		return fmt.Errorf("table: empty row key in relation %q", r.name)
	}
	if _, dup := r.rowIdx[key]; dup {
		return fmt.Errorf("table: duplicate row key %q in relation %q", key, r.name)
	}
	if len(values) != len(r.attrs) {
		return fmt.Errorf("table: row %q has %d values, relation %q has %d attributes",
			key, len(values), r.name, len(r.attrs))
	}
	r.rowIdx[key] = len(r.rowKeys)
	r.rowKeys = append(r.rowKeys, key)
	r.cells = append(r.cells, append([]float64(nil), values...))
	pres := make([]bool, len(values))
	for i := range pres {
		pres[i] = true
	}
	r.present = append(r.present, pres)
	r.version++
	return nil
}

// AddSparseRow appends a row where only some attributes have values.
func (r *Relation) AddSparseRow(key string, values map[string]float64) error {
	if key == "" {
		return fmt.Errorf("table: empty row key in relation %q", r.name)
	}
	if _, dup := r.rowIdx[key]; dup {
		return fmt.Errorf("table: duplicate row key %q in relation %q", key, r.name)
	}
	row := make([]float64, len(r.attrs))
	pres := make([]bool, len(r.attrs))
	for a, v := range values {
		i, ok := r.attrIdx[a]
		if !ok {
			return fmt.Errorf("table: unknown attribute %q in relation %q", a, r.name)
		}
		row[i] = v
		pres[i] = true
	}
	r.rowIdx[key] = len(r.rowKeys)
	r.rowKeys = append(r.rowKeys, key)
	r.cells = append(r.cells, row)
	r.present = append(r.present, pres)
	r.version++
	return nil
}

// Set overwrites a single cell. The row and attribute must already exist.
func (r *Relation) Set(key, attr string, v float64) error {
	ri, ok := r.rowIdx[key]
	if !ok {
		return fmt.Errorf("%w: row %q in relation %q", ErrNotFound, key, r.name)
	}
	ai, ok := r.attrIdx[attr]
	if !ok {
		return fmt.Errorf("%w: attribute %q in relation %q", ErrNotFound, attr, r.name)
	}
	r.cells[ri][ai] = v
	r.present[ri][ai] = true
	r.version++
	return nil
}

// Get returns the value of the cell identified by (key, attr).
func (r *Relation) Get(key, attr string) (float64, error) {
	ri, ok := r.rowIdx[key]
	if !ok {
		return 0, fmt.Errorf("%w: row %q in relation %q", ErrNotFound, key, r.name)
	}
	ai, ok := r.attrIdx[attr]
	if !ok {
		return 0, fmt.Errorf("%w: attribute %q in relation %q", ErrNotFound, attr, r.name)
	}
	if !r.present[ri][ai] {
		return 0, fmt.Errorf("%w: cell (%q, %q) in relation %q is NULL", ErrNotFound, key, attr, r.name)
	}
	return r.cells[ri][ai], nil
}

// Row returns a copy of the values of the row with the given key, aligned
// with Attrs(); missing cells are reported through the second return value.
func (r *Relation) Row(key string) ([]float64, []bool, error) {
	ri, ok := r.rowIdx[key]
	if !ok {
		return nil, nil, fmt.Errorf("%w: row %q in relation %q", ErrNotFound, key, r.name)
	}
	return append([]float64(nil), r.cells[ri]...), append([]bool(nil), r.present[ri]...), nil
}

// Column returns the values of attribute attr for all rows that have it, in
// row order, together with the corresponding keys.
func (r *Relation) Column(attr string) (keys []string, values []float64, err error) {
	ai, ok := r.attrIdx[attr]
	if !ok {
		return nil, nil, fmt.Errorf("%w: attribute %q in relation %q", ErrNotFound, attr, r.name)
	}
	for ri, key := range r.rowKeys {
		if r.present[ri][ai] {
			keys = append(keys, key)
			values = append(values, r.cells[ri][ai])
		}
	}
	return keys, values, nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		name:     r.name,
		keyAttr:  r.keyAttr,
		attrs:    append([]string(nil), r.attrs...),
		attrIdx:  make(map[string]int, len(r.attrIdx)),
		rowKeys:  append([]string(nil), r.rowKeys...),
		rowIdx:   make(map[string]int, len(r.rowIdx)),
		cells:    make([][]float64, len(r.cells)),
		present:  make([][]bool, len(r.present)),
		metadata: make(map[string]string, len(r.metadata)),
	}
	for k, v := range r.attrIdx {
		c.attrIdx[k] = v
	}
	for k, v := range r.rowIdx {
		c.rowIdx[k] = v
	}
	for i := range r.cells {
		c.cells[i] = append([]float64(nil), r.cells[i]...)
		c.present[i] = append([]bool(nil), r.present[i]...)
	}
	for k, v := range r.metadata {
		c.metadata[k] = v
	}
	return c
}

// WriteCSV serialises the relation as CSV with the key attribute first.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{r.keyAttr}, r.attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: writing header of %q: %w", r.name, err)
	}
	rec := make([]string, len(header))
	for ri, key := range r.rowKeys {
		rec[0] = key
		for ai := range r.attrs {
			if r.present[ri][ai] {
				rec[ai+1] = strconv.FormatFloat(r.cells[ri][ai], 'g', -1, 64)
			} else {
				rec[ai+1] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing row %q of %q: %w", key, r.name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation from CSV. The first column is the key attribute;
// empty cells become NULLs.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading header of %q: %w", name, err)
	}
	if len(header) < 1 {
		return nil, fmt.Errorf("table: relation %q has no columns", name)
	}
	rel, err := NewRelation(name, header[0], header[1:])
	if err != nil {
		return nil, err
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading %q line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table: %q line %d has %d fields, want %d", name, line, len(rec), len(header))
		}
		vals := make(map[string]float64, len(rec)-1)
		for i, cell := range rec[1:] {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("table: %q line %d column %q: %w", name, line, header[i+1], err)
			}
			vals[header[i+1]] = v
		}
		if err := rel.AddSparseRow(rec[0], vals); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// Corpus is a named collection of relations — the set D of the problem
// statement. Lookup is by relation name.
type Corpus struct {
	byName map[string]*Relation
	names  []string
	adds   uint64     // relations added; part of Generation
	drops  uint64     // removal weight (see Remove); part of Generation
	idx    indexCache // lazily built interned snapshot (index.go)
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byName: make(map[string]*Relation)}
}

// Add inserts a relation; duplicate names are rejected.
func (c *Corpus) Add(r *Relation) error {
	if r == nil {
		return fmt.Errorf("table: nil relation")
	}
	if _, dup := c.byName[r.Name()]; dup {
		return fmt.Errorf("table: duplicate relation %q in corpus", r.Name())
	}
	c.byName[r.Name()] = r
	c.names = append(c.names, r.Name())
	c.adds++
	return nil
}

// Remove deletes a relation by name, reporting whether it was present.
// Tenant corpora served long-term need this to retire stale tables;
// removal advances the corpus generation, so interned indexes and
// tentative-execution caches derived from the old contents rebuild on
// next use. Like Add, Remove must not race verification over the corpus.
func (c *Corpus) Remove(name string) bool {
	r, ok := c.byName[name]
	if !ok {
		return false
	}
	delete(c.byName, name)
	for i, n := range c.names {
		if n == name {
			c.names = append(c.names[:i], c.names[i+1:]...)
			break
		}
	}
	// Generation sums relation versions; fold the removed relation's
	// version (plus one for the removal itself) into drops so the
	// generation strictly advances and can never collide with a
	// pre-removal value.
	c.drops += r.version + 1
	return true
}

// Relation returns the relation with the given name.
func (c *Corpus) Relation(name string) (*Relation, error) {
	r, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	return r, nil
}

// Has reports whether the corpus contains a relation with the given name.
func (c *Corpus) Has(name string) bool {
	_, ok := c.byName[name]
	return ok
}

// Names returns relation names in insertion order. The caller must not
// mutate the returned slice.
func (c *Corpus) Names() []string { return c.names }

// Len returns the number of relations.
func (c *Corpus) Len() int { return len(c.names) }

// Get is a convenience for fetching a single cell across the corpus.
func (c *Corpus) Get(relation, key, attr string) (float64, error) {
	r, err := c.Relation(relation)
	if err != nil {
		return 0, err
	}
	return r.Get(key, attr)
}

// RelationsWithKey returns the names of all relations that contain the given
// row key, sorted. Query generation uses this to bind formula variables.
func (c *Corpus) RelationsWithKey(key string) []string {
	var out []string
	for _, n := range c.names {
		if c.byName[n].HasKey(key) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Stats summarises corpus-wide cardinalities for reporting.
type Stats struct {
	Relations int
	Rows      int
	Attrs     int
	Cells     int
}

// Stats computes corpus-wide cardinalities.
func (c *Corpus) Stats() Stats {
	var s Stats
	s.Relations = len(c.names)
	for _, n := range c.names {
		r := c.byName[n]
		s.Rows += r.NumRows()
		s.Attrs += r.NumAttrs()
		s.Cells += r.NumRows() * r.NumAttrs()
	}
	return s
}
