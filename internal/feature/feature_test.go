package feature

import (
	"fmt"
	"testing"

	"github.com/repro/scrutinizer/internal/embed"
)

func fitPipeline(t *testing.T) *Pipeline {
	t.Helper()
	var sentences, claimTexts []string
	for i := 0; i < 25; i++ {
		sentences = append(sentences,
			fmt.Sprintf("global coal demand grew by %d%% in 2017", i%7),
			fmt.Sprintf("solar capacity additions expanded strongly in %d", 2000+i))
		claimTexts = append(claimTexts,
			fmt.Sprintf("coal demand grew by %d%%", i%7),
			"solar capacity expanded strongly")
	}
	p, err := Fit(sentences, claimTexts, Config{Embedding: embed.Config{Dim: 16, Seed: 1}, MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFitDimensions(t *testing.T) {
	p := fitPipeline(t)
	if p.EmbeddingDim() != 16 {
		t.Errorf("EmbeddingDim = %d", p.EmbeddingDim())
	}
	if p.Dim() <= p.EmbeddingDim() {
		t.Errorf("Dim = %d should exceed embedding dim", p.Dim())
	}
	if p.Model() == nil {
		t.Error("Model should be exposed")
	}
}

func TestVectorLayout(t *testing.T) {
	p := fitPipeline(t)
	v := p.Vector("global coal demand grew by 3% in 2017", "coal demand grew by 3%")
	var hasDense, hasSparse bool
	for k := 0; k < v.NNZ(); k++ {
		i := v.Index(k)
		if i < p.EmbeddingDim() {
			hasDense = true
		} else {
			hasSparse = true
		}
		if i < 0 || i >= p.Dim() {
			t.Fatalf("feature index %d out of range [0, %d)", i, p.Dim())
		}
		if k > 0 && v.Index(k-1) >= i {
			t.Fatalf("indexes not strictly increasing at %d", k)
		}
	}
	if !hasDense || !hasSparse {
		t.Errorf("vector should span both families: dense=%v sparse=%v", hasDense, hasSparse)
	}
}

func TestVectorsDifferAcrossClaims(t *testing.T) {
	p := fitPipeline(t)
	v1 := p.Vector("global coal demand grew by 3% in 2017", "coal demand grew by 3%")
	v2 := p.Vector("solar capacity additions expanded strongly in 2017", "solar capacity expanded strongly")
	same := v1.NNZ() == v2.NNZ()
	if same {
		for k := 0; k < v1.NNZ(); k++ {
			if v1.Index(k) != v2.Index(k) || v1.Value(k) != v2.Value(k) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different claims should produce different vectors")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Error("no sentences accepted")
	}
	// Sentences exist but embedding training fails (no co-occurrence).
	if _, err := Fit([]string{"a", "b"}, []string{"a"}, Config{Embedding: embed.Config{MinCount: 1}}); err == nil {
		t.Error("untrainable embedding accepted")
	}
}

func TestUnknownClaimStillGetsSentenceEmbedding(t *testing.T) {
	p := fitPipeline(t)
	v := p.Vector("global coal demand grew by 3% in 2017", "entirely novel words qqq")
	if v.NNZ() == 0 || v.Index(0) >= p.EmbeddingDim() {
		t.Error("sentence embedding should be present even for unknown claim tokens")
	}
}
