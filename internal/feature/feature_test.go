package feature

import (
	"fmt"
	"sync"
	"testing"

	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/textproc"
)

func fitPipeline(t *testing.T) *Pipeline {
	t.Helper()
	var sentences, claimTexts []string
	for i := 0; i < 25; i++ {
		sentences = append(sentences,
			fmt.Sprintf("global coal demand grew by %d%% in 2017", i%7),
			fmt.Sprintf("solar capacity additions expanded strongly in %d", 2000+i))
		claimTexts = append(claimTexts,
			fmt.Sprintf("coal demand grew by %d%%", i%7),
			"solar capacity expanded strongly")
	}
	p, err := Fit(sentences, claimTexts, Config{Embedding: embed.Config{Dim: 16, Seed: 1}, MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFitDimensions(t *testing.T) {
	p := fitPipeline(t)
	if p.EmbeddingDim() != 16 {
		t.Errorf("EmbeddingDim = %d", p.EmbeddingDim())
	}
	if p.Dim() <= p.EmbeddingDim() {
		t.Errorf("Dim = %d should exceed embedding dim", p.Dim())
	}
	if p.Model() == nil {
		t.Error("Model should be exposed")
	}
}

func TestVectorLayout(t *testing.T) {
	p := fitPipeline(t)
	v := p.Vector("global coal demand grew by 3% in 2017", "coal demand grew by 3%")
	var hasDense, hasSparse bool
	for k := 0; k < v.NNZ(); k++ {
		i := v.Index(k)
		if i < p.EmbeddingDim() {
			hasDense = true
		} else {
			hasSparse = true
		}
		if i < 0 || i >= p.Dim() {
			t.Fatalf("feature index %d out of range [0, %d)", i, p.Dim())
		}
		if k > 0 && v.Index(k-1) >= i {
			t.Fatalf("indexes not strictly increasing at %d", k)
		}
	}
	if !hasDense || !hasSparse {
		t.Errorf("vector should span both families: dense=%v sparse=%v", hasDense, hasSparse)
	}
}

func TestVectorsDifferAcrossClaims(t *testing.T) {
	p := fitPipeline(t)
	v1 := p.Vector("global coal demand grew by 3% in 2017", "coal demand grew by 3%")
	v2 := p.Vector("solar capacity additions expanded strongly in 2017", "solar capacity expanded strongly")
	same := v1.NNZ() == v2.NNZ()
	if same {
		for k := 0; k < v1.NNZ(); k++ {
			if v1.Index(k) != v2.Index(k) || v1.Value(k) != v2.Value(k) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different claims should produce different vectors")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Error("no sentences accepted")
	}
	// Sentences exist but embedding training fails (no co-occurrence).
	if _, err := Fit([]string{"a", "b"}, []string{"a"}, Config{Embedding: embed.Config{MinCount: 1}}); err == nil {
		t.Error("untrainable embedding accepted")
	}
}

func TestUnknownClaimStillGetsSentenceEmbedding(t *testing.T) {
	p := fitPipeline(t)
	v := p.Vector("global coal demand grew by 3% in 2017", "entirely novel words qqq")
	if v.NNZ() == 0 || v.Index(0) >= p.EmbeddingDim() {
		t.Error("sentence embedding should be present even for unknown claim tokens")
	}
}

// TestApplyToUnseenDocument pins the out-of-vocabulary contract a trained
// Verifier relies on when serving new documents: unknown TF-IDF tokens
// are dropped, unknown embedding words are skipped from the average, all
// emitted indexes stay inside the fitted feature space, and featurization
// of unseen text is deterministic.
func TestApplyToUnseenDocument(t *testing.T) {
	p := fitPipeline(t)

	// Partially overlapping vocabulary: "coal demand" is trained,
	// "xylophone quotas" is not.
	v := p.Vector("coal demand and xylophone quotas shrank in 2031", "xylophone quotas shrank")
	for k := 0; k < v.NNZ(); k++ {
		if i := v.Index(k); i < 0 || i >= p.Dim() {
			t.Fatalf("unseen text emitted index %d outside feature space [0, %d)", i, p.Dim())
		}
	}
	v2 := p.Vector("coal demand and xylophone quotas shrank in 2031", "xylophone quotas shrank")
	if v.NNZ() != v2.NNZ() {
		t.Fatal("featurizing unseen text is not deterministic")
	}
	for k := 0; k < v.NNZ(); k++ {
		if v.Index(k) != v2.Index(k) || v.Value(k) != v2.Value(k) {
			t.Fatal("featurizing unseen text is not deterministic")
		}
	}

	// Fully out-of-vocabulary text: zero embedding prefix, empty TF-IDF
	// block — a legal (empty) vector, not a panic.
	oov := p.Vector("zzz qqq www", "zzz qqq")
	for k := 0; k < oov.NNZ(); k++ {
		if oov.Value(k) != 0 {
			t.Fatalf("fully-OOV text produced nonzero feature %d=%g", oov.Index(k), oov.Value(k))
		}
	}
}

func TestCoverage(t *testing.T) {
	p := fitPipeline(t)

	// Training text covers itself.
	full := p.Coverage("global coal demand grew by 3% in 2017", "coal demand grew by 3%")
	if full.EmbedRatio() != 1 || full.TFIDFRatio() != 1 {
		t.Errorf("training text coverage = %+v (ratios %g/%g), want full",
			full, full.EmbedRatio(), full.TFIDFRatio())
	}

	// Fully unseen text covers nothing.
	none := p.Coverage("zzz qqq www", "zzz qqq")
	if none.KnownEmbedTokens != 0 || none.KnownClaimTokens != 0 {
		t.Errorf("OOV text coverage = %+v, want zero known tokens", none)
	}
	if none.EmbedRatio() != 0 || none.TFIDFRatio() != 0 {
		t.Errorf("OOV ratios = %g/%g, want 0", none.EmbedRatio(), none.TFIDFRatio())
	}

	// Mixed text lands strictly between.
	mixed := p.Coverage("coal demand zzz", "coal zzz")
	if r := mixed.EmbedRatio(); r <= 0 || r >= 1 {
		t.Errorf("mixed embed ratio = %g, want in (0,1)", r)
	}

	// Empty input counts as fully covered (nothing to miss).
	empty := p.Coverage("", "")
	if empty.EmbedRatio() != 1 || empty.TFIDFRatio() != 1 {
		t.Errorf("empty coverage ratios = %g/%g, want 1", empty.EmbedRatio(), empty.TFIDFRatio())
	}

	// Add aggregates counts.
	sum := full.Add(none)
	if sum.EmbedTokens != full.EmbedTokens+none.EmbedTokens ||
		sum.KnownClaimTokens != full.KnownClaimTokens {
		t.Errorf("Add = %+v", sum)
	}
}

// TestVectorConcurrent hammers the memo from many goroutines over a small
// key set, under -race: concurrent first-computes of the same pair must
// converge on one shared vector (LoadOrStore), every goroutine must see a
// vector identical to the single-threaded result, and the memo bound must
// hold.
func TestVectorConcurrent(t *testing.T) {
	p := fitPipeline(t)
	type pair struct{ sentence, claim string }
	pairs := make([]pair, 16)
	for i := range pairs {
		pairs[i] = pair{
			sentence: fmt.Sprintf("global coal demand grew by %d%% in 2017", i%7),
			claim:    fmt.Sprintf("coal demand grew by %d%%", i%7),
		}
	}
	want := make([]textproc.Sparse, len(pairs))
	for i, pr := range pairs {
		want[i] = p.Vector(pr.sentence, pr.claim)
	}
	sameVec := func(a, b textproc.Sparse) bool {
		if a.NNZ() != b.NNZ() {
			return false
		}
		for k := 0; k < a.NNZ(); k++ {
			if a.Index(k) != b.Index(k) || a.Value(k) != b.Value(k) {
				return false
			}
		}
		return true
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w + i) % len(pairs)
				got := p.Vector(pairs[k].sentence, pairs[k].claim)
				if !sameVec(got, want[k]) {
					t.Errorf("pair %d: concurrent vector differs from single-threaded result", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	distinct := make(map[pair]bool)
	for _, pr := range pairs {
		distinct[pr] = true
	}
	if n := p.memoLen.Load(); n != int64(len(distinct)) {
		t.Fatalf("memoLen = %d, want %d (duplicate inserts counted?)", n, len(distinct))
	}
}
