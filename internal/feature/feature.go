// Package feature assembles the classifier input of the paper's Figure 4:
// for each claim inside a sentence, the averaged sentence embedding is
// concatenated with TF-IDF scores of the claim's word unigrams and bigrams,
// followed by TF-IDF scores of its character trigrams.
//
// The Pipeline owns the fitted vectoriser and the embedding model; it maps
// (sentence, claim) pairs to sparse vectors in a fixed feature space so the
// classifiers can be retrained repeatedly on a growing label set without
// re-fitting features (the paper retrains classifiers per batch, not the
// feature extractors).
//
// Vectors are emitted as textproc.Sparse — sorted, slice-backed (index,
// value) pairs rather than maps. The layout is [0, EmbeddingDim) for the
// averaged sentence embedding (a dense prefix) followed by the TF-IDF
// vocabulary block; both halves are built sorted, so assembling a claim
// vector is a single append with no hashing. Downstream consumers (the
// classifiers' dense weight matrices, cosine pruning) rely on the sorted
// order for merge-based products and deterministic float accumulation.
package feature

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/textproc"
)

// Config controls pipeline construction.
type Config struct {
	// Embedding configures the word-embedding model; Dim 0 means the
	// embed package default.
	Embedding embed.Config
	// MinDF is the document-frequency cutoff for TF-IDF terms.
	MinDF int
}

// Pipeline converts (sentence, claim) text pairs into feature vectors.
type Pipeline struct {
	emb   *embed.Model
	tfidf *textproc.Vectorizer
	dim   int

	// memo caches Vector results. A fitted pipeline is immutable, so the
	// vector is a pure function of the text pair — and the service re-reads
	// the same claims every run, batch after batch, making tokenisation one
	// of the heaviest allocation sites of the verification loop. A sync.Map
	// because the workload is the one it is built for: write-once keys read
	// by every concurrent run over the document, with no mutex for the
	// steady-state read path to contend on. memoLen bounds it (approximate
	// under concurrent insertion — duplicate computes race benignly, the
	// loser's identical vector wins).
	memo    sync.Map // vecKey -> textproc.Sparse
	memoLen atomic.Int64
}

// vecKey is the memo key: the exact (sentence, claim) input pair.
type vecKey struct {
	sentence, claim string
}

// vecMemoCap bounds the memo; past it new pairs are computed uncached. At
// ~1-2 KB per vector this caps worst-case memo memory in the tens of MB,
// far above any real document's distinct claim count.
const vecMemoCap = 8192

// memoHits and memoMisses count Vector memo outcomes process-wide.
// Package-global rather than per-pipeline because the metric consumer is
// process-scoped anyway and a bare atomic add keeps the memoized hot path
// free of any new indirection.
var memoHits, memoMisses atomic.Uint64

// MemoStats reports process-wide Vector memo hits and misses since start.
func MemoStats() (hits, misses uint64) {
	return memoHits.Load(), memoMisses.Load()
}

// Fit builds the pipeline from a training document's sentences and claims.
// Neither the embedding nor the TF-IDF vocabulary depends on verification
// labels, and a fitted pipeline is immutable: Vector may be applied to any
// later document, not just the one it was fitted on. Out-of-vocabulary
// input degrades gracefully — unknown TF-IDF tokens are dropped, unknown
// embedding words are skipped from the sentence average, and a fully
// unseen sentence yields a zero embedding prefix — so a pipeline trained
// once can serve new documents indefinitely (use Coverage to monitor how
// far a new document drifts from the training vocabulary).
func Fit(sentences, claimTexts []string, cfg Config) (*Pipeline, error) {
	if len(sentences) == 0 {
		return nil, fmt.Errorf("feature: no sentences")
	}
	m, err := embed.Train(sentences, cfg.Embedding)
	if err != nil {
		return nil, fmt.Errorf("feature: training embeddings: %w", err)
	}
	vz := textproc.NewVectorizer(cfg.MinDF)
	docs := make([][]string, len(claimTexts))
	for i, c := range claimTexts {
		docs[i] = textproc.ClaimTokens(c)
	}
	vz.Fit(docs)
	return &Pipeline{
		emb:   m,
		tfidf: vz,
		dim:   m.Dim() + vz.Dim(),
	}, nil
}

// Dim returns the total feature dimension: embedding dim + TF-IDF
// vocabulary size.
func (p *Pipeline) Dim() int { return p.dim }

// EmbeddingDim returns the dense prefix width.
func (p *Pipeline) EmbeddingDim() int { return p.emb.Dim() }

// Vector featurises one claim in its sentence context. Embedding components
// occupy indexes [0, EmbeddingDim); TF-IDF components follow. The result is
// a slice-backed sorted sparse vector: the dense embedding prefix and the
// offset TF-IDF block occupy disjoint index ranges, so the concatenation is
// a single right-sized append — no map, no merge.
//
// Results are memoized per (sentence, claim) pair: repeat featurisation of
// the same text (every run over a served document, every engine spawned
// from a trained verifier) costs a lookup instead of a tokenisation pass.
// The returned vector is shared — callers must treat it as read-only, which
// every consumer of textproc.Sparse already does.
func (p *Pipeline) Vector(sentence, claim string) textproc.Sparse {
	key := vecKey{sentence: sentence, claim: claim}
	if v, ok := p.memo.Load(key); ok {
		memoHits.Add(1)
		return v.(textproc.Sparse)
	}
	memoMisses.Add(1)
	emb := textproc.SparseFromDense(p.emb.SentenceVector(sentence))
	tf := p.tfidf.Transform(textproc.ClaimTokens(claim))
	v := emb.AddInto(tf, p.emb.Dim())
	if p.memoLen.Load() < vecMemoCap {
		if prev, loaded := p.memo.LoadOrStore(key, v); loaded {
			return prev.(textproc.Sparse)
		}
		p.memoLen.Add(1)
	}
	return v
}

// Model exposes the underlying embedding model (used by diagnostics and the
// examples).
func (p *Pipeline) Model() *embed.Model { return p.emb }

// Coverage quantifies how much of a new document's text the fitted
// vocabularies cover: the out-of-vocabulary signal for a pipeline fitted
// on a training document and applied to later ones. Ratios of 1 mean the
// new text is fully inside the training vocabulary; low ratios flag a
// document the classifiers will see mostly as zeros.
type Coverage struct {
	// EmbedTokens counts the sentence's word tokens; KnownEmbedTokens
	// those with a trained embedding vector.
	EmbedTokens, KnownEmbedTokens int
	// ClaimTokens counts the claim's TF-IDF tokens (word unigrams,
	// bigrams and character trigrams); KnownClaimTokens those in the
	// fitted vocabulary.
	ClaimTokens, KnownClaimTokens int
}

// EmbedRatio is the fraction of sentence tokens with embeddings (1 when
// the sentence has no tokens).
func (c Coverage) EmbedRatio() float64 {
	if c.EmbedTokens == 0 {
		return 1
	}
	return float64(c.KnownEmbedTokens) / float64(c.EmbedTokens)
}

// TFIDFRatio is the fraction of claim tokens inside the TF-IDF vocabulary
// (1 when the claim has no tokens).
func (c Coverage) TFIDFRatio() float64 {
	if c.ClaimTokens == 0 {
		return 1
	}
	return float64(c.KnownClaimTokens) / float64(c.ClaimTokens)
}

// Add accumulates another pair's counts (aggregating coverage over a whole
// document).
func (c Coverage) Add(o Coverage) Coverage {
	c.EmbedTokens += o.EmbedTokens
	c.KnownEmbedTokens += o.KnownEmbedTokens
	c.ClaimTokens += o.ClaimTokens
	c.KnownClaimTokens += o.KnownClaimTokens
	return c
}

// Coverage reports the fitted vocabularies' coverage of one (sentence,
// claim) pair without building its vector.
func (p *Pipeline) Coverage(sentence, claim string) Coverage {
	var c Coverage
	for _, tok := range textproc.Tokenize(sentence) {
		c.EmbedTokens++
		if p.emb.Has(tok) {
			c.KnownEmbedTokens++
		}
	}
	for _, tok := range textproc.ClaimTokens(claim) {
		c.ClaimTokens++
		if p.tfidf.VocabIndex(tok) >= 0 {
			c.KnownClaimTokens++
		}
	}
	return c
}
