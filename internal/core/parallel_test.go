package core

import (
	"context"
	"testing"

	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// buildParallelFixture assembles a world, engine and team the way the
// facade does, small enough for -race runs.
func buildParallelFixture(t *testing.T) (*worldgen.World, func() *Engine, *crowd.Team) {
	t.Helper()
	cfg := worldgen.SmallScale()
	cfg.NumClaims = 60
	cfg.NumSections = 6
	w, err := worldgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *Engine {
		var sentences, texts []string
		for _, c := range w.Document.Claims {
			sentences = append(sentences, c.Sentence)
			texts = append(texts, c.Text)
		}
		pipe, err := feature.Fit(sentences, texts, feature.Config{
			Embedding: embed.Config{Dim: 32, Seed: 9},
			MinDF:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(w.Corpus, pipe, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	team, err := crowd.NewTeam("P", 3, 0.97, 10)
	if err != nil {
		t.Fatal(err)
	}
	return w, newEngine, team
}

// TestVerifyParallelMatchesSequential is the determinism contract: a
// parallel run must produce outcome-for-outcome the same result as a
// sequential run, in the same order. Run under -race it also exercises the
// engine's shared-state safety.
func TestVerifyParallelMatchesSequential(t *testing.T) {
	w, newEngine, team := buildParallelFixture(t)
	vc := VerifyConfig{BatchSize: 15, SectionReadCost: 30}

	run := func(parallelism int) *Result {
		vc := vc
		vc.Parallelism = parallelism
		res, err := newEngine().Verify(context.Background(), w.Document, team, vc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)

	if len(seq.Outcomes) != len(par.Outcomes) {
		t.Fatalf("outcome counts differ: sequential %d, parallel %d", len(seq.Outcomes), len(par.Outcomes))
	}
	if seq.Batches != par.Batches {
		t.Errorf("batch counts differ: sequential %d, parallel %d", seq.Batches, par.Batches)
	}
	if seq.Seconds != par.Seconds {
		t.Errorf("crowd seconds differ: sequential %g, parallel %g", seq.Seconds, par.Seconds)
	}
	for i := range seq.Outcomes {
		s, p := seq.Outcomes[i], par.Outcomes[i]
		if s.ClaimID != p.ClaimID {
			t.Fatalf("outcome %d: claim order differs (sequential %d, parallel %d)", i, s.ClaimID, p.ClaimID)
		}
		if s.Verdict != p.Verdict {
			t.Errorf("claim %d: verdict differs (sequential %v, parallel %v)", s.ClaimID, s.Verdict, p.Verdict)
		}
		if s.Seconds != p.Seconds {
			t.Errorf("claim %d: seconds differ (sequential %g, parallel %g)", s.ClaimID, s.Seconds, p.Seconds)
		}
		if s.Screens != p.Screens {
			t.Errorf("claim %d: screens differ (sequential %d, parallel %d)", s.ClaimID, s.Screens, p.Screens)
		}
	}
}

// TestVerifyParallelRepeatable: two parallel runs at different fan-out
// agree with each other (scheduling must never leak into results).
func TestVerifyParallelRepeatable(t *testing.T) {
	w, newEngine, team := buildParallelFixture(t)
	var last *Result
	for _, parallelism := range []int{2, 3, 16} {
		res, err := newEngine().Verify(context.Background(), w.Document, team, VerifyConfig{
			BatchSize:   20,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		if last != nil {
			if res.Seconds != last.Seconds {
				t.Errorf("parallelism %d: seconds %g != %g", parallelism, res.Seconds, last.Seconds)
			}
			for i := range res.Outcomes {
				if res.Outcomes[i].ClaimID != last.Outcomes[i].ClaimID ||
					res.Outcomes[i].Verdict != last.Outcomes[i].Verdict {
					t.Fatalf("parallelism %d: outcome %d diverged", parallelism, i)
				}
			}
		}
		last = res
	}
}

// TestTeamForClaimIsStateless: the per-claim team view answers identically
// however often and in whatever order it is derived.
func TestTeamForClaimIsStateless(t *testing.T) {
	team, err := crowd.NewTeam("Q", 3, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := team.ForClaim(7)
	// Consume unrelated randomness from another claim's view in between.
	team.ForClaim(8).Workers[0].ManualVerify("x", DefaultConfig().Cost)
	b := team.ForClaim(7)
	for i := range a.Workers {
		ansA := a.Workers[i].ManualVerify("truth", DefaultConfig().Cost)
		ansB := b.Workers[i].ManualVerify("truth", DefaultConfig().Cost)
		if ansA.Value != ansB.Value || ansA.Seconds != ansB.Seconds {
			t.Fatalf("worker %d: per-claim stream is stateful: %+v vs %+v", i, ansA, ansB)
		}
	}
}
