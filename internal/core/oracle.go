package core

import (
	"fmt"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/planner"
)

// Oracle answers the planner's questions about a claim. It is the
// mixed-initiative boundary of the system: the simulated crowd implements
// it for experiments, and interactive implementations (e.g. a terminal or
// web UI) plug real fact checkers into the very same verification flow.
//
// Implementations report the seconds of human effort each answer consumed;
// the engine accumulates them into Outcome.Seconds.
type Oracle interface {
	// AnswerProperty shows one property screen (§5.1): candidate options
	// in display order, best first. It returns the confirmed or
	// suggested value ("" when the checker cannot answer).
	AnswerProperty(c *claims.Claim, kind PropertyKind, options []planner.Option) (value string, seconds float64)
	// AnswerFinal shows the final screen: candidate queries as SQL. It
	// returns the confirmed or hand-written SQL ("" when the checker
	// gives up).
	AnswerFinal(c *claims.Claim, candidates []string) (sql string, seconds float64)
}

// teamOracle adapts the simulated crowd to the Oracle interface, answering
// from ground-truth annotations (the experimental setting).
type teamOracle struct {
	engine *Engine
	team   *crowd.Team
}

// NewTeamOracle wraps a simulated crowd team as an Oracle. Claims passed to
// the oracle must carry ground-truth annotations.
func (e *Engine) NewTeamOracle(team *crowd.Team) (Oracle, error) {
	if team == nil || team.Size() == 0 {
		return nil, fmt.Errorf("core: empty crowd team")
	}
	return &teamOracle{engine: e, team: team}, nil
}

func (o *teamOracle) AnswerProperty(c *claims.Claim, kind PropertyKind, options []planner.Option) (string, float64) {
	// Formula truth labels canonicalise through the engine's formula
	// cache — the oracle asks once per screen, every batch.
	truth := o.engine.truthLabel(c.Truth, kind)
	return o.team.AskScreen(options, truth, o.engine.cfg.Cost)
}

func (o *teamOracle) AnswerFinal(c *claims.Claim, candidates []string) (string, float64) {
	truthQ, err := o.engine.TruthQuery(c)
	if err != nil {
		return "", 0
	}
	return o.team.AskFinal(candidates, truthQ.SQL(), o.engine.cfg.Cost)
}

// ScriptedOracle answers from pre-recorded values — deterministic fixtures
// for tests and demos of the mixed-initiative flow. Missing entries yield
// empty answers.
type ScriptedOracle struct {
	// Properties maps claim ID -> property kind -> answer.
	Properties map[int]map[PropertyKind]string
	// Finals maps claim ID -> accepted SQL.
	Finals map[int]string
	// SecondsPerAnswer is charged per answered screen.
	SecondsPerAnswer float64
}

// AnswerProperty implements Oracle.
func (s *ScriptedOracle) AnswerProperty(c *claims.Claim, kind PropertyKind, _ []planner.Option) (string, float64) {
	if m, ok := s.Properties[c.ID]; ok {
		if v, ok := m[kind]; ok {
			return v, s.SecondsPerAnswer
		}
	}
	return "", s.SecondsPerAnswer
}

// AnswerFinal implements Oracle.
func (s *ScriptedOracle) AnswerFinal(c *claims.Claim, candidates []string) (string, float64) {
	if v, ok := s.Finals[c.ID]; ok {
		return v, s.SecondsPerAnswer
	}
	// Default: accept the top candidate when one exists.
	if len(candidates) > 0 {
		return candidates[0], s.SecondsPerAnswer
	}
	return "", s.SecondsPerAnswer
}
