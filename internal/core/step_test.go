package core

import (
	"context"
	"testing"

	"github.com/repro/scrutinizer/internal/crowd"
)

// pumpDocument drives a DocumentRun the way an interactive session would:
// read pending questions, answer them one by one with per-claim crowd
// views, let the retrain barrier fire inside the last answer of each
// batch. No Oracle, no goroutines — pure emit/consume.
func pumpDocument(t *testing.T, e *Engine, dr *DocumentRun, team *crowd.Team) {
	t.Helper()
	oracles := map[int]Oracle{}
	for !dr.Done() {
		qs := dr.Questions()
		if len(qs) == 0 {
			t.Fatal("run not done but no pending questions")
		}
		for _, q := range qs {
			oracle := oracles[q.ClaimID]
			if oracle == nil {
				var err error
				oracle, err = e.NewTeamOracle(team.ForClaim(q.ClaimID))
				if err != nil {
					t.Fatal(err)
				}
				oracles[q.ClaimID] = oracle
			}
			c := dr.remaining[q.ClaimID]
			var value string
			var secs float64
			if q.Step == StepFinal {
				value, secs = oracle.AnswerFinal(c, q.Candidates)
			} else {
				value, secs = oracle.AnswerProperty(c, q.Property, q.Options)
			}
			if _, err := dr.Answer(context.Background(), q.ClaimID, value, secs); err != nil {
				t.Fatalf("answer claim %d: %v", q.ClaimID, err)
			}
		}
	}
}

// TestDocumentRunMatchesVerify pins the control-flow inversion: a
// DocumentRun pumped question-by-question (the session protocol) produces
// verdicts, crowd seconds, labels and batch counts bit-identical to the
// synchronous Verify driver on an identically-seeded engine.
func TestDocumentRunMatchesVerify(t *testing.T) {
	world := tinyWorld()
	e1, w1 := buildEngine(t, world)
	e2, _ := buildEngine(t, world)
	team1, err := crowd.NewTeam("S", 3, 0.97, 11)
	if err != nil {
		t.Fatal(err)
	}
	team2, err := crowd.NewTeam("S", 3, 0.97, 11)
	if err != nil {
		t.Fatal(err)
	}

	vc := VerifyConfig{BatchSize: 12, SectionReadCost: 30}
	ref, err := e1.Verify(context.Background(), w1.Document, team1, vc)
	if err != nil {
		t.Fatal(err)
	}

	vc2 := vc
	vc2.Checkers = team2.Size()
	dr, err := e2.StartDocument(context.Background(), w1.Document, vc2)
	if err != nil {
		t.Fatal(err)
	}
	pumpDocument(t, e2, dr, team2)
	got, err := dr.Result()
	if err != nil {
		t.Fatal(err)
	}

	if got.Batches != ref.Batches {
		t.Fatalf("batches = %d, want %d", got.Batches, ref.Batches)
	}
	if got.Seconds != ref.Seconds {
		t.Fatalf("seconds = %v, want %v", got.Seconds, ref.Seconds)
	}
	if len(got.Outcomes) != len(ref.Outcomes) {
		t.Fatalf("outcomes = %d, want %d", len(got.Outcomes), len(ref.Outcomes))
	}
	for i, o := range got.Outcomes {
		r := ref.Outcomes[i]
		if o.ClaimID != r.ClaimID || o.Verdict != r.Verdict || o.Seconds != r.Seconds ||
			o.Value != r.Value || o.Screens != r.Screens || o.HasSuggestion != r.HasSuggestion {
			t.Fatalf("outcome %d: %+v, want %+v", i, o, r)
		}
		if (o.Query == nil) != (r.Query == nil) {
			t.Fatalf("outcome %d query presence differs", i)
		}
		if o.Query != nil && o.Query.SQL() != r.Query.SQL() {
			t.Fatalf("outcome %d: query %q, want %q", i, o.Query.SQL(), r.Query.SQL())
		}
	}
	if a, b := Accuracy(w1.Document, got.Outcomes), Accuracy(w1.Document, ref.Outcomes); a != b {
		t.Fatalf("accuracy %v != %v", a, b)
	}
}

// TestClaimRunQuestionSequence pins the §5.1 screen order emitted by the
// machine: relation → key → attribute (always), then the final vote, with
// seq numbers and the accounting (Seconds, Screens) matching the answers
// consumed.
func TestClaimRunQuestionSequence(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	c := w.Document.Claims[0]
	run, err := e.StartClaim(c)
	if err != nil {
		t.Fatal(err)
	}
	wantProps := []PropertyKind{PropRelation, PropKey, PropAttr}
	seq := 0
	for i := 0; !run.Done(); i++ {
		q := run.Question()
		if q == nil {
			t.Fatal("not done but no question")
		}
		if q.ClaimID != c.ID || q.Seq != seq {
			t.Fatalf("question %d: claim %d seq %d", i, q.ClaimID, q.Seq)
		}
		switch {
		case i < len(wantProps):
			if q.Step != StepProperties || q.Property != wantProps[i] {
				t.Fatalf("question %d: step %v property %v, want property screen %v", i, q.Step, q.Property, wantProps[i])
			}
		case q.Step == StepFormula:
			if q.Property != PropFormula {
				t.Fatalf("formula screen asks %v", q.Property)
			}
		case q.Step != StepFinal:
			t.Fatalf("question %d: unexpected step %v", i, q.Step)
		}
		if err := run.Answer(context.Background(), TruthLabel(c.Truth, q.Property), 2); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	out := run.Outcome()
	if out == nil {
		t.Fatal("done without outcome")
	}
	if out.Seconds != float64(seq)*2 {
		t.Errorf("seconds = %v, want %v", out.Seconds, float64(seq)*2)
	}
	if out.Screens != seq-1 {
		t.Errorf("screens = %d, want %d (final vote is not a screen)", out.Screens, seq-1)
	}
	if err := run.Answer(context.Background(), "late", 1); err == nil {
		t.Error("answer on a finished run accepted")
	}
	if run.Step() != StepDone {
		t.Errorf("step = %v, want done", run.Step())
	}
}

// TestDocumentRunAnswerRouting covers the session-facing error surface:
// answers for unknown claims are rejected, Result refuses partial reads,
// and Progress tracks pending/answered counts.
func TestDocumentRunAnswerRouting(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	dr, err := e.StartDocument(context.Background(), w.Document, VerifyConfig{BatchSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dr.Answer(context.Background(), -42, "x", 0); err == nil {
		t.Error("answer for unknown claim accepted")
	}
	if _, err := dr.Result(); err == nil {
		t.Error("partial Result read accepted")
	}
	p := dr.Progress()
	if p.Done || p.Verified != 0 || p.Pending != 5 || p.Total != len(w.Document.Claims) {
		t.Errorf("initial progress = %+v", p)
	}
	ids := dr.BatchClaims()
	if len(ids) != 5 {
		t.Fatalf("batch = %v", ids)
	}
	q := dr.QuestionFor(ids[0])
	if q == nil || q.Step != StepProperties {
		t.Fatalf("first question = %+v", q)
	}
	next, err := dr.Answer(context.Background(), ids[0], "nope", 3)
	if err != nil {
		t.Fatal(err)
	}
	if next == nil || next.Seq != 1 {
		t.Fatalf("next question = %+v", next)
	}
	p = dr.Progress()
	if p.Answered != 1 || p.Seconds != 3 {
		t.Errorf("progress after one answer = %+v", p)
	}
}
