package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/formula"
)

// TestCancelVerifyPreCancelled pins the cheapest path: a context that is
// already dead must stop Verify before any batch is scored.
func TestCancelVerifyPreCancelled(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Verify(ctx, w.Document, team, VerifyConfig{BatchSize: 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled verify returned a result: %+v", res)
	}
}

// TestCancelVerifyBetweenRounds cancels from the AfterBatch hook — the
// round boundary — and requires Verify to stop instead of scoring the
// remaining batches.
func TestCancelVerifyBetweenRounds(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batches := 0
	_, err = e.Verify(ctx, w.Document, team, VerifyConfig{
		BatchSize: 10,
		AfterBatch: func(b, verified int, outs []*Outcome) {
			batches = b
			cancel()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batches != 1 {
		t.Errorf("cancellation after batch 1 ran %d batches", batches)
	}
}

// TestCancelVerifyDeadline drives the same checkpoints through a deadline
// instead of an explicit cancel, pinning the errors.Is mapping HTTP needs
// to distinguish 504 from 503.
func TestCancelVerifyDeadline(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = e.Verify(ctx, w.Document, team, VerifyConfig{BatchSize: 20})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelVerifyClaim covers the single-claim pump path.
func TestCancelVerifyClaim(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.VerifyClaim(ctx, w.Document.Claims[0], team); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelGenerateQueries pins Algorithm 2's enumeration checkpoint: a
// dead context stops query generation, the error wraps the cause, and the
// partial enumeration must NOT be cached — a later call with a live
// context has to produce the full solution set.
func TestCancelGenerateQueries(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	f, err := formula.ParseFormula(c.Truth.Formula)
	if err != nil {
		t.Fatal(err)
	}
	qc := Context{Relations: c.Truth.Relations, Keys: c.Truth.Keys, Attrs: c.Truth.Attrs}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.GenerateQueries(ctx, qc, []*formula.Formula{f}, c.Param, c.HasParam); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled generation err = %v, want context.Canceled", err)
	}
	sols, alts, err := e.GenerateQueries(context.Background(), qc, []*formula.Formula{f}, c.Param, c.HasParam)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols)+len(alts) == 0 {
		t.Fatal("live retry after cancelled generation produced nothing (partial enumeration was cached?)")
	}
}

// TestCancelAnswerRepostable is the session contract: an answer rejected
// by a dead context is rolled back completely — same pending question,
// same sequence — so the client can repost it and get the same outcome it
// would have gotten the first time.
func TestCancelAnswerRepostable(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	dr, err := e.StartDocument(context.Background(), w.Document, VerifyConfig{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs := dr.Questions()
	if len(qs) == 0 {
		t.Fatal("no pending questions after StartDocument")
	}
	q := qs[0]
	var truth *claims.GroundTruth
	for _, c := range w.Document.Claims {
		if c.ID == q.ClaimID {
			truth = c.Truth
		}
	}
	answer := TruthLabel(truth, q.Property)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dr.Answer(ctx, q.ClaimID, answer, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled answer err = %v, want context.Canceled", err)
	}
	// The question must still be pending, at the same screen and sequence.
	again := dr.QuestionFor(q.ClaimID)
	if again == nil {
		t.Fatal("question vanished after cancelled answer")
	}
	if again.Seq != q.Seq || again.Step != q.Step {
		t.Fatalf("question changed after rollback: seq %d->%d, step %v->%v", q.Seq, again.Seq, q.Step, again.Step)
	}
	// Reposting with a live context succeeds.
	if _, err := dr.Answer(context.Background(), q.ClaimID, answer, 1.0); err != nil {
		t.Fatalf("repost after rollback: %v", err)
	}
}

// TestCancelStartDocument: a dead context stops the first batch selection
// before any claim is scored.
func TestCancelStartDocument(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.StartDocument(ctx, w.Document, VerifyConfig{BatchSize: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelReleasesPooledEngine: a run cancelled mid-verification gives
// its spawned engine back to the snapshot pool on Release, and the pooled
// engine re-primes cleanly — a later spawn completes a full verification
// from pristine snapshot state.
func TestCancelReleasesPooledEngine(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	team, err := crowd.NewTeam("W", 3, 0.97, 8)
	if err != nil {
		t.Fatal(err)
	}

	spawned := snap.Spawn()
	ctx, cancel := context.WithCancel(context.Background())
	_, err = spawned.Verify(ctx, w.Document, team, VerifyConfig{
		BatchSize:  10,
		AfterBatch: func(b, verified int, outs []*Outcome) { cancel() },
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	spawned.Release()

	// The next spawn takes the pooled engine (same P, nothing between the
	// Release and the Spawn) and must behave exactly like a fresh one.
	reused := snap.Spawn()
	if reused != spawned {
		t.Log("pool returned a different engine (GC ran); exercising it anyway")
	}
	team2, err := crowd.NewTeam("W", 3, 0.97, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reused.Verify(context.Background(), w.Document, team2, VerifyConfig{BatchSize: 10})
	if err != nil {
		t.Fatalf("verify on reused engine after cancelled run: %v", err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("reused engine verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
	}
}

// settleGoroutines polls until the goroutine count returns to the
// baseline or the deadline passes, absorbing runtime bookkeeping noise.
func settleGoroutines(baseline int) int {
	var n int
	for i := 0; i < 100; i++ {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestCancelLeavesNoGoroutines is the hygiene invariant: a verification
// cancelled mid-run (with real scoring fan-out) must leave zero worker
// goroutines behind.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := e.Verify(ctx, w.Document, team, VerifyConfig{
			BatchSize:   10,
			Parallelism: 8,
			AfterBatch:  func(b, verified int, outs []*Outcome) { cancel() },
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Errorf("goroutines leaked: %d before, %d after cancelled runs", baseline, n)
	}
}
