package core

import (
	"bytes"
	"context"
	"testing"

	"github.com/repro/scrutinizer/internal/crowd"
)

// TestRestoreTrainedEquivalence: encoding a trained snapshot and restoring
// it into a freshly built engine yields bit-identical verification — the
// property recovery-from-snapshot rests on.
func TestRestoreTrainedEquivalence(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	data, err := snap.EncodeModels()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh, untrained engine over the same corpus and pipeline.
	restored, _ := buildEngine(t, tinyWorld())
	if err := restored.RestoreTrained(data); err != nil {
		t.Fatal(err)
	}
	if restored.Generation() != snap.Generation() {
		t.Fatalf("restored generation %d, snapshot %d", restored.Generation(), snap.Generation())
	}

	run := func(eng *Engine) *Result {
		team, err := crowd.NewTeam("W", 3, 0.97, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Verify(context.Background(), w.Document, team, VerifyConfig{BatchSize: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(snap.Spawn())
	got := run(restored.Clone())
	if want.Seconds != got.Seconds || want.Batches != got.Batches {
		t.Fatalf("restored run diverged: %v/%d vs %v/%d batches", got.Seconds, got.Batches, want.Seconds, want.Batches)
	}
	if len(want.Outcomes) != len(got.Outcomes) {
		t.Fatalf("outcome counts: %d vs %d", len(got.Outcomes), len(want.Outcomes))
	}
	for i := range want.Outcomes {
		a, b := want.Outcomes[i], got.Outcomes[i]
		if a.ClaimID != b.ClaimID || a.Verdict != b.Verdict || a.Seconds != b.Seconds || a.Value != b.Value {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, b, a)
		}
	}
}

// TestEncodeModelsDeterministic: encode → restore → encode reproduces the
// bytes, so snapshot blobs are stable across recovery cycles.
func TestEncodeModelsDeterministic(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	data, err := e.Snapshot().EncodeModels()
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := buildEngine(t, tinyWorld())
	if err := restored.RestoreTrained(data); err != nil {
		t.Fatal(err)
	}
	again, err := restored.Snapshot().EncodeModels()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoded snapshot differs: %d vs %d bytes", len(again), len(data))
	}
}

func TestRestoreTrainedRejectsBadBlobs(t *testing.T) {
	e, _ := buildEngine(t, tinyWorld())
	for name, blob := range map[string][]byte{
		"NotJSON":      []byte("not json"),
		"WrongVersion": []byte(`{"version":99}`),
		"BadKind":      []byte(`{"version":1,"models":{"nope":{"config":{},"dim":0,"trained":0,"rounds":0}}}`),
		"TornMatrix":   []byte(`{"version":1,"models":{"relation":{"config":{},"labels":["x"],"dim":3,"w":[1],"gsq":[1,2,3],"bias":[0],"gsq_b":[0],"trained":1,"rounds":1}}}`),
	} {
		t.Run(name, func(t *testing.T) {
			if err := e.RestoreTrained(blob); err == nil {
				t.Fatal("bad blob accepted")
			}
		})
	}
}
