package core

import (
	"context"
	"errors"
	"sync/atomic"
)

// Observer receives coarse run-lifecycle events from every engine in the
// process. It is the monitor-idiom seam for the metrics layer: hooks fire
// at round and batch granularity (never per claim or per question), each
// call site pays one atomic pointer load plus a nil check when no observer
// is installed, and the hot scoring loops are untouched — pinned by
// BenchmarkVerifyInstrumented.
//
// Any field may be nil. Hooks must be fast and must not call back into the
// engine.
type Observer struct {
	// RunStarted fires when StartDocument succeeds.
	RunStarted func()
	// RunCompleted fires when a run's last claim is resolved.
	RunCompleted func()
	// RunCancelled fires when a synchronous Verify run is stopped by its
	// context.
	RunCancelled func()
	// Round fires after each successful batch selection (OptBatch).
	Round func()
	// Retrain fires after each successful classifier retrain at the batch
	// barrier.
	Retrain func()
	// BatchScored reports how many stale claims a batch-scored scheduler
	// round featurized and scored.
	BatchScored func(n int)
}

// observer is process-global: runs are engine-scoped but the metrics they
// feed are process-scoped, and a package-level atomic keeps the disabled
// path to a single predictable load.
var observer atomic.Pointer[Observer]

// SetObserver installs o as the process-wide run observer (nil removes
// it). Call once at startup, before serving.
func SetObserver(o *Observer) { observer.Store(o) }

func obsRunStarted() {
	if o := observer.Load(); o != nil && o.RunStarted != nil {
		o.RunStarted()
	}
}

func obsRunCompleted() {
	if o := observer.Load(); o != nil && o.RunCompleted != nil {
		o.RunCompleted()
	}
}

func obsRound() {
	if o := observer.Load(); o != nil && o.Round != nil {
		o.Round()
	}
}

func obsRetrain() {
	if o := observer.Load(); o != nil && o.Retrain != nil {
		o.Retrain()
	}
}

func obsBatchScored(n int) {
	if o := observer.Load(); o != nil && o.BatchScored != nil {
		o.BatchScored(n)
	}
}

// obsMaybeCancelled classifies a terminal run error, firing RunCancelled
// for context-driven stops.
func obsMaybeCancelled(err error) {
	if err == nil || !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return
	}
	if o := observer.Load(); o != nil && o.RunCancelled != nil {
		o.RunCancelled()
	}
}
