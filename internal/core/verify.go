package core

import (
	"context"
	"fmt"
	"math"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/query"
)

// Verdict is the outcome of verifying one claim.
type Verdict int

const (
	// VerdictCorrect: a generated query matches the claim.
	VerdictCorrect Verdict = iota
	// VerdictIncorrect: no query matches; the data contradicts the claim
	// and a correction is suggested.
	VerdictIncorrect
	// VerdictSkipped: verification could not be completed (no context,
	// no executable query).
	VerdictSkipped
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictCorrect:
		return "correct"
	case VerdictIncorrect:
		return "incorrect"
	case VerdictSkipped:
		return "skipped"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Outcome records everything the system produced for one claim.
type Outcome struct {
	ClaimID int
	Verdict Verdict
	// Seconds is the crowd time spent (person-seconds across the team).
	Seconds float64
	// Query is the verifying query (correct claims) or the best
	// alternative query (incorrect claims); nil when skipped.
	Query *query.Query
	// Value is Query's result.
	Value float64
	// Suggestion is the corrected value proposed for incorrect claims
	// (Example 4: "we suggest the value as a possible update").
	Suggestion    float64
	HasSuggestion bool
	// Screens is the number of property screens shown.
	Screens int
	// Label is the validated annotation fed back into training.
	Label *claims.GroundTruth
}

// VerifyClaim verifies one claim with a simulated crowd team that answers
// from the claim's ground-truth annotation (the experimental setting). See
// VerifyClaimWith for the oracle-based flow it delegates to.
func (e *Engine) VerifyClaim(ctx context.Context, c *claims.Claim, team *crowd.Team) (*Outcome, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil claim")
	}
	if c.Truth == nil {
		return nil, fmt.Errorf("core: claim %d has no ground-truth annotation to answer from", c.ID)
	}
	oracle, err := e.NewTeamOracle(team)
	if err != nil {
		return nil, err
	}
	return e.VerifyClaimWith(ctx, c, oracle)
}

// VerifyClaimWith verifies one claim through a blocking Oracle (§5.1
// flow): it starts the claim's step machine (see ClaimRun) and pumps it —
// every emitted Question is put to the oracle, every answer advances the
// machine — until the outcome is ready:
//
//  1. plan question screens from classifier candidates,
//  2. the oracle validates relation / key / attribute properties,
//     suggesting answers when no shown option is right,
//  3. formulas come from a planned formula screen (when the greedy
//     selection finds one worthwhile) plus the classifier's predictions,
//     filtered by instantiation (§4.3),
//  4. Algorithm 2 generates queries from the validated context,
//  5. the oracle confirms the proposed query on the final screen (or
//     writes it if the system found nothing),
//  6. the claim is judged by comparing the query value with the parameter.
//
// The flow works whether or not the classifiers are trained; a cold start
// simply costs the oracle more time. Interactive front ends that cannot
// block (an HTTP question/answer API, a UI event loop) drive the same
// machine directly through StartClaim / Question / Answer.
func (e *Engine) VerifyClaimWith(ctx context.Context, c *claims.Claim, oracle Oracle) (*Outcome, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil claim")
	}
	if oracle == nil {
		return nil, fmt.Errorf("core: nil oracle")
	}
	run, err := e.StartClaim(c)
	if err != nil {
		return nil, err
	}
	return PumpClaim(ctx, run, oracle)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Ordering selects the claim-ordering strategy of the §6.2 comparison.
type Ordering int

const (
	// OrderILP is full Scrutinizer: batches selected by the Definition 9
	// ILP.
	OrderILP Ordering = iota
	// OrderSequential is the Sequential baseline: document order.
	OrderSequential
	// OrderGreedy is the greedy ablation of the ILP.
	OrderGreedy
	// OrderRandom is a seeded random-order ablation baseline.
	OrderRandom
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case OrderILP:
		return "ilp"
	case OrderSequential:
		return "sequential"
	case OrderGreedy:
		return "greedy"
	case OrderRandom:
		return "random"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// VerifyConfig parameterises the Algorithm 1 loop.
type VerifyConfig struct {
	// BatchSize is bu (and bl, capped by remaining claims); the paper
	// uses 100.
	BatchSize int
	// Parallelism is the number of goroutines that verify the claims of
	// one batch concurrently (claim translation, query generation and the
	// simulated question screens are all per-claim work). Batch selection
	// and classifier retraining remain the single synchronization point
	// between rounds, and per-claim crowd random streams make the results
	// bit-identical to a sequential run. <= 1 means sequential.
	Parallelism int
	// Checkers is the number of human checkers skimming each section —
	// the multiplier on SectionReadCost and the manual-cost budget
	// (Definition 8). Verify overrides it with the crowd team size; the
	// session layer sets it explicitly. <= 0 means 1.
	Checkers int
	// SectionReadCost is r(s) in seconds.
	SectionReadCost float64
	// BatchBudget is tm in seconds; 0 derives it from the batch size and
	// the manual cost (generous enough to always fit a batch).
	BatchBudget float64
	// Ordering selects ILP / sequential / greedy claim ordering.
	Ordering Ordering
	// UtilityWeight enables the Definition 9 objective variant.
	UtilityWeight float64
	// Seed drives the OrderRandom baseline.
	Seed int64
	// AfterBatch, when non-nil, observes progress after each batch
	// (used by the simulation to sample accuracy curves). It is invoked
	// synchronously at the retrain barrier and must not call back into
	// the run that triggered it.
	AfterBatch func(batch int, verified int, outcomes []*Outcome)
}

func (vc VerifyConfig) withDefaults() VerifyConfig {
	if vc.BatchSize <= 0 {
		vc.BatchSize = 100
	}
	if vc.Checkers <= 0 {
		vc.Checkers = 1
	}
	if vc.SectionReadCost < 0 {
		vc.SectionReadCost = 0
	}
	return vc
}

// Result aggregates a full document verification.
type Result struct {
	Outcomes []*Outcome
	// Seconds is total crowd person-seconds including section skimming.
	Seconds float64
	// Batches is the number of executed batches.
	Batches int
}

// Verify runs Algorithm 1: repeatedly select a batch (OptBatch), verify its
// claims with the crowd (OptQuestions + GetAnswers + Validate), retrain the
// classifiers on accumulated labels, and continue until no claims remain.
//
// It is the synchronous front end over the step-driven DocumentRun: each
// batch's claims are pumped across vc.Parallelism goroutines, every claim
// answered by its own crowd view (team.ForClaim), whose random streams
// depend only on the claim ID — so verdicts are bit-identical whatever the
// fan-out, and identical to an interactive session answering the same
// questions through the step API.
//
// Verify owns the run it starts, so ctx cancels everything: round
// boundaries, per-answer pumping, Algorithm 2 enumeration, and the retrain
// barrier itself (the run is discarded on error, so — unlike a shared
// session — there is nothing to strand by aborting mid-barrier). The
// returned error wraps ctx.Err() when cancellation stopped the run.
func (e *Engine) Verify(ctx context.Context, doc *claims.Document, team *crowd.Team, vc VerifyConfig) (*Result, error) {
	res, err := e.verifyDoc(ctx, doc, team, vc)
	obsMaybeCancelled(err)
	return res, err
}

func (e *Engine) verifyDoc(ctx context.Context, doc *claims.Document, team *crowd.Team, vc VerifyConfig) (*Result, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	if team == nil || team.Size() == 0 {
		return nil, fmt.Errorf("core: empty crowd team")
	}
	vc.Checkers = team.Size()
	dr, err := e.StartDocument(ctx, doc, vc)
	if err != nil {
		return nil, err
	}
	// Driver-owned run: let the retrain barrier observe cancellation too.
	dr.runCtx = ctx
	byID := make(map[int]*claims.Claim, len(doc.Claims))
	for _, c := range doc.Claims {
		byID[c.ID] = c
	}
	for !dr.Done() {
		if err := checkCancel(ctx); err != nil {
			return nil, err
		}
		ids := dr.BatchClaims()
		errs := make([]error, len(ids))
		runPool(len(ids), vc.Parallelism, func(i int) {
			id := ids[i]
			c := byID[id]
			if c == nil || c.Truth == nil {
				errs[i] = fmt.Errorf("core: claim %d has no ground-truth annotation to answer from", id)
				return
			}
			errs[i] = dr.Pump(ctx, id, &teamOracle{engine: e, team: team.ForClaim(id)})
		})
		// A retrain-barrier failure stops the whole run; report it
		// unwrapped, like the blocking loop did.
		if err := dr.Err(); err != nil {
			return nil, err
		}
		// Report the first per-claim error in batch order so failures
		// are deterministic too.
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("core: verifying claim %d: %w", ids[i], err)
			}
		}
	}
	return dr.Result()
}

// Accuracy scores outcomes against the generator's error injection: an
// outcome is right when the verdict matches the claim's Correct flag.
func Accuracy(doc *claims.Document, outcomes []*Outcome) float64 {
	byID := make(map[int]*claims.Claim, len(doc.Claims))
	for _, c := range doc.Claims {
		byID[c.ID] = c
	}
	total, right := 0, 0
	for _, o := range outcomes {
		c, ok := byID[o.ClaimID]
		if !ok || o.Verdict == VerdictSkipped {
			continue
		}
		total++
		if (o.Verdict == VerdictCorrect) == c.Correct {
			right++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(right) / float64(total)
}

// MeanAbsError reports the average relative error of suggestions on
// incorrect claims versus the annotated correct value; diagnostics for the
// Example 4 correction feature.
func MeanAbsError(doc *claims.Document, outcomes []*Outcome) float64 {
	byID := make(map[int]*claims.Claim, len(doc.Claims))
	for _, c := range doc.Claims {
		byID[c.ID] = c
	}
	var sum float64
	n := 0
	for _, o := range outcomes {
		c, ok := byID[o.ClaimID]
		if !ok || !o.HasSuggestion || c.Truth == nil {
			continue
		}
		scale := math.Abs(c.Truth.Value)
		if scale < 1e-12 {
			scale = 1
		}
		sum += math.Abs(o.Suggestion-c.Truth.Value) / scale
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
