package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/query"
	"github.com/repro/scrutinizer/internal/scheduler"
)

// Verdict is the outcome of verifying one claim.
type Verdict int

const (
	// VerdictCorrect: a generated query matches the claim.
	VerdictCorrect Verdict = iota
	// VerdictIncorrect: no query matches; the data contradicts the claim
	// and a correction is suggested.
	VerdictIncorrect
	// VerdictSkipped: verification could not be completed (no context,
	// no executable query).
	VerdictSkipped
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictCorrect:
		return "correct"
	case VerdictIncorrect:
		return "incorrect"
	case VerdictSkipped:
		return "skipped"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Outcome records everything the system produced for one claim.
type Outcome struct {
	ClaimID int
	Verdict Verdict
	// Seconds is the crowd time spent (person-seconds across the team).
	Seconds float64
	// Query is the verifying query (correct claims) or the best
	// alternative query (incorrect claims); nil when skipped.
	Query *query.Query
	// Value is Query's result.
	Value float64
	// Suggestion is the corrected value proposed for incorrect claims
	// (Example 4: "we suggest the value as a possible update").
	Suggestion    float64
	HasSuggestion bool
	// Screens is the number of property screens shown.
	Screens int
	// Label is the validated annotation fed back into training.
	Label *claims.GroundTruth
}

// VerifyClaim verifies one claim with a simulated crowd team that answers
// from the claim's ground-truth annotation (the experimental setting). See
// VerifyClaimWith for the oracle-based flow it delegates to.
func (e *Engine) VerifyClaim(c *claims.Claim, team *crowd.Team) (*Outcome, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil claim")
	}
	if c.Truth == nil {
		return nil, fmt.Errorf("core: claim %d has no ground-truth annotation to answer from", c.ID)
	}
	oracle, err := e.NewTeamOracle(team)
	if err != nil {
		return nil, err
	}
	return e.VerifyClaimWith(c, oracle)
}

// VerifyClaimWith verifies one claim through an Oracle (§5.1 flow):
//
//  1. plan question screens from classifier candidates,
//  2. the oracle validates relation / key / attribute properties,
//     suggesting answers when no shown option is right,
//  3. formulas come from a planned formula screen (when the greedy
//     selection finds one worthwhile) plus the classifier's predictions,
//     filtered by instantiation (§4.3),
//  4. Algorithm 2 generates queries from the validated context,
//  5. the oracle confirms the proposed query on the final screen (or
//     writes it if the system found nothing),
//  6. the claim is judged by comparing the query value with the parameter.
//
// The flow works whether or not the classifiers are trained; a cold start
// simply costs the oracle more time.
func (e *Engine) VerifyClaimWith(c *claims.Claim, oracle Oracle) (*Outcome, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil claim")
	}
	if oracle == nil {
		return nil, fmt.Errorf("core: nil oracle")
	}
	out := &Outcome{ClaimID: c.ID}

	// 1-2. Property screens. The planner decides which properties earn a
	// screen; every context property still needs an answer, so unplanned
	// properties fall back to a suggestion-only screen (no options).
	plan, _, err := e.PlanQuestions(c)
	if err != nil {
		return nil, err
	}
	planned := make(map[string][]planner.Option, len(plan.Screens))
	for _, s := range plan.Screens {
		planned[s.Property] = s.Options
	}
	validated := make(map[PropertyKind]string, 3)
	for _, kind := range []PropertyKind{PropRelation, PropKey, PropAttr} {
		options := planned[kind.String()]
		value, secs := oracle.AnswerProperty(c, kind, options)
		out.Seconds += secs
		out.Screens++
		validated[kind] = value
	}

	ctx := Context{
		Relations: SplitLabel(validated[PropRelation]),
		Keys:      SplitLabel(validated[PropKey]),
		Attrs:     SplitLabel(validated[PropAttr]),
	}

	// 3. Ranked formulas. If the planner decided a formula screen was
	// worth asking, the crowd's (validated) answer leads the list;
	// classifier predictions follow; on cold start fall back to the
	// formula library.
	var formulas []*formula.Formula
	if options, ok := planned[PropFormula.String()]; ok {
		value, secs := oracle.AnswerProperty(c, PropFormula, options)
		out.Seconds += secs
		out.Screens++
		if f, err := formula.ParseFormula(value); err == nil {
			formulas = append(formulas, f)
		}
	}
	// Classifier formula predictions come from the cached assessment — the
	// same scoring pass that already fed the scheduler and the planner this
	// round, so no extra softmax here.
	for _, prop := range e.assess(c).props {
		if prop.Name != PropFormula.String() {
			continue
		}
		for _, opt := range prop.Options {
			if f, err := formula.ParseFormula(opt.Value); err == nil {
				formulas = append(formulas, f)
			}
		}
	}
	if len(formulas) == 0 {
		for _, key := range e.lib.TopK(e.cfg.TopK) {
			if f, ok := e.lib.Get(key); ok {
				formulas = append(formulas, f)
			}
		}
	}

	// 4. Query generation (Algorithm 2).
	solutions, alternates := e.GenerateQueries(ctx, formulas, c.Param, c.HasParam && c.Kind == claims.Explicit)

	// 5. Final screen: surviving query candidates, best first.
	shown := make([]string, 0, plan.FinalOptions)
	bySQL := make(map[string]GeneratedQuery)
	for _, g := range append(append([]GeneratedQuery(nil), solutions...), alternates...) {
		if len(shown) >= max(plan.FinalOptions, 1) {
			break
		}
		sql := g.Query.SQL()
		shown = append(shown, sql)
		bySQL[sql] = g
	}
	votedSQL, secs := oracle.AnswerFinal(c, shown)
	out.Seconds += secs

	// Resolve the accepted query: a shown candidate, or the written/
	// suggested query (parse it; checkers may produce a corrupt string, in
	// which case the claim is skipped).
	var accepted *query.Query
	var acceptedValue float64
	if g, ok := bySQL[votedSQL]; ok {
		accepted = g.Query
		acceptedValue = g.Value
	} else {
		parsed, err := query.Parse(votedSQL)
		if err == nil {
			if v, err := parsed.Execute(e.corpus); err == nil {
				accepted = parsed
				acceptedValue = v
			}
		}
	}
	if accepted == nil {
		out.Verdict = VerdictSkipped
		return out, nil
	}

	// 6. Judge the claim against the accepted query's value.
	out.Query = accepted
	out.Value = acceptedValue
	op := c.Cmp
	switch {
	case c.Kind == claims.Explicit && c.HasParam:
		if claims.RelClose(acceptedValue, c.Param, e.cfg.Tolerance) {
			out.Verdict = VerdictCorrect
		} else {
			out.Verdict = VerdictIncorrect
			out.Suggestion = acceptedValue
			out.HasSuggestion = true
		}
	case c.HasParam:
		if op.Compare(acceptedValue, c.Param, e.cfg.Tolerance) {
			out.Verdict = VerdictCorrect
		} else {
			out.Verdict = VerdictIncorrect
			out.Suggestion = acceptedValue
			out.HasSuggestion = true
		}
	default:
		// General claim without a predictable parameter: the human
		// assesses the displayed value directly (Example 7); simulated
		// workers judge from the annotation's correct value. Without an
		// annotation nothing can be judged.
		if c.Truth == nil {
			out.Verdict = VerdictSkipped
			out.Query = nil
			return out, nil
		}
		if claims.RelClose(acceptedValue, c.Truth.Value, e.cfg.Tolerance) {
			out.Verdict = VerdictCorrect
		} else {
			out.Verdict = VerdictIncorrect
			out.Suggestion = acceptedValue
			out.HasSuggestion = true
		}
	}

	// The validated context plus the accepted query become a training
	// label (Algorithm 1 line 16: A <- W ∪ R).
	genF, _, err := formula.Generalize(accepted.Select)
	label := &claims.GroundTruth{
		Relations: ctx.Relations,
		Keys:      ctx.Keys,
		Attrs:     ctx.Attrs,
		Value:     acceptedValue,
	}
	if err == nil {
		label.Formula = genF.String()
	}
	out.Label = label
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Ordering selects the claim-ordering strategy of the §6.2 comparison.
type Ordering int

const (
	// OrderILP is full Scrutinizer: batches selected by the Definition 9
	// ILP.
	OrderILP Ordering = iota
	// OrderSequential is the Sequential baseline: document order.
	OrderSequential
	// OrderGreedy is the greedy ablation of the ILP.
	OrderGreedy
	// OrderRandom is a seeded random-order ablation baseline.
	OrderRandom
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case OrderILP:
		return "ilp"
	case OrderSequential:
		return "sequential"
	case OrderGreedy:
		return "greedy"
	case OrderRandom:
		return "random"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// VerifyConfig parameterises the Algorithm 1 loop.
type VerifyConfig struct {
	// BatchSize is bu (and bl, capped by remaining claims); the paper
	// uses 100.
	BatchSize int
	// Parallelism is the number of goroutines that verify the claims of
	// one batch concurrently (claim translation, query generation and the
	// simulated question screens are all per-claim work). Batch selection
	// and classifier retraining remain the single synchronization point
	// between rounds, and per-claim crowd random streams make the results
	// bit-identical to a sequential run. <= 1 means sequential.
	Parallelism int
	// SectionReadCost is r(s) in seconds.
	SectionReadCost float64
	// BatchBudget is tm in seconds; 0 derives it from the batch size and
	// the manual cost (generous enough to always fit a batch).
	BatchBudget float64
	// Ordering selects ILP / sequential / greedy claim ordering.
	Ordering Ordering
	// UtilityWeight enables the Definition 9 objective variant.
	UtilityWeight float64
	// Seed drives the OrderRandom baseline.
	Seed int64
	// AfterBatch, when non-nil, observes progress after each batch
	// (used by the simulation to sample accuracy curves).
	AfterBatch func(batch int, verified int, outcomes []*Outcome)
}

func (vc VerifyConfig) withDefaults() VerifyConfig {
	if vc.BatchSize <= 0 {
		vc.BatchSize = 100
	}
	if vc.SectionReadCost < 0 {
		vc.SectionReadCost = 0
	}
	return vc
}

// Result aggregates a full document verification.
type Result struct {
	Outcomes []*Outcome
	// Seconds is total crowd person-seconds including section skimming.
	Seconds float64
	// Batches is the number of executed batches.
	Batches int
}

// Verify runs Algorithm 1: repeatedly select a batch (OptBatch), verify its
// claims with the crowd (OptQuestions + GetAnswers + Validate), retrain the
// classifiers on accumulated labels, and continue until no claims remain.
func (e *Engine) Verify(doc *claims.Document, team *crowd.Team, vc VerifyConfig) (*Result, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	vc = vc.withDefaults()

	remaining := make(map[int]*claims.Claim, len(doc.Claims))
	for _, c := range doc.Claims {
		remaining[c.ID] = c
	}
	var labelled []*claims.Claim
	res := &Result{}

	for len(remaining) > 0 {
		// OptBatch: build scheduler items from current model state.
		items := make([]scheduler.Item, 0, len(remaining))
		ids := make([]int, 0, len(remaining))
		for id := range remaining {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		costs, utilities := e.assessAll(ids, remaining, vc.Parallelism)
		for i, id := range ids {
			items = append(items, scheduler.Item{
				ClaimID:    id,
				Section:    remaining[id].Section,
				VerifyCost: costs[i],
				Utility:    utilities[i],
			})
		}
		batchSize := vc.BatchSize
		if batchSize > len(items) {
			batchSize = len(items)
		}
		budget := vc.BatchBudget
		if budget <= 0 {
			// Generous default: worst case all-manual batch plus all
			// section skims.
			budget = float64(batchSize)*e.cfg.Cost.ManualCost()*float64(team.Size())*2 +
				float64(doc.Sections)*vc.SectionReadCost
		}
		cfg := scheduler.Config{
			MaxCost:         budget,
			MinSize:         batchSize,
			MaxSize:         batchSize,
			SectionReadCost: vc.SectionReadCost,
			UtilityWeight:   vc.UtilityWeight,
			SolverOptions:   scheduler.DefaultSolverOptions(),
		}
		var batch *scheduler.Batch
		var err error
		switch vc.Ordering {
		case OrderSequential:
			batch, err = scheduler.SequentialBatch(items, cfg)
		case OrderGreedy:
			batch, err = scheduler.GreedyBatch(items, cfg)
		case OrderRandom:
			batch, err = scheduler.RandomBatch(items, cfg, vc.Seed+int64(res.Batches))
		default:
			batch, err = scheduler.SelectBatch(items, cfg)
		}
		if err != nil {
			return nil, err
		}
		if len(batch.ClaimIDs) == 0 {
			// Infeasible under the budget: fall back to document order
			// so progress is always made.
			fallback := ids
			if len(fallback) > batchSize {
				fallback = fallback[:batchSize]
			}
			batch = &scheduler.Batch{ClaimIDs: append([]int(nil), fallback...)}
			secs := map[int]bool{}
			for _, id := range batch.ClaimIDs {
				secs[remaining[id].Section] = true
			}
			for s := range secs {
				batch.Sections = append(batch.Sections, s)
			}
		}

		// Section skimming cost (Definition 8), paid once per section per
		// batch by each worker.
		res.Seconds += float64(len(batch.Sections)) * vc.SectionReadCost * float64(team.Size())

		// Verify the batch, fanning claims out across vc.Parallelism
		// goroutines. Outcomes come back in batch order whatever the
		// goroutine interleaving, so everything below is deterministic.
		outcomes, err := e.verifyBatch(batch.ClaimIDs, remaining, team, vc.Parallelism)
		if err != nil {
			return nil, err
		}
		for i, id := range batch.ClaimIDs {
			c := remaining[id]
			out := outcomes[i]
			res.Seconds += out.Seconds
			res.Outcomes = append(res.Outcomes, out)
			// Unanimous removal (Algorithm 1 line 18): annotated ground
			// truth always resolves, so even skipped claims leave the
			// pool, guaranteeing termination.
			delete(remaining, id)
			if out.Label != nil {
				labelled = append(labelled, &claims.Claim{
					ID: c.ID, Text: c.Text, Sentence: c.Sentence,
					Section: c.Section, Kind: c.Kind,
					Param: c.Param, HasParam: c.HasParam,
					Truth: out.Label,
				})
			}
		}

		// Retrain (Algorithm 1 line 20), fanning the four independent
		// models out under the same parallelism knob as the batch.
		if len(labelled) > 0 {
			if err := e.train(labelled, vc.Parallelism); err != nil {
				return nil, err
			}
		}
		res.Batches++
		if vc.AfterBatch != nil {
			vc.AfterBatch(res.Batches, len(res.Outcomes), outcomes)
		}
	}
	return res, nil
}

// Accuracy scores outcomes against the generator's error injection: an
// outcome is right when the verdict matches the claim's Correct flag.
func Accuracy(doc *claims.Document, outcomes []*Outcome) float64 {
	byID := make(map[int]*claims.Claim, len(doc.Claims))
	for _, c := range doc.Claims {
		byID[c.ID] = c
	}
	total, right := 0, 0
	for _, o := range outcomes {
		c, ok := byID[o.ClaimID]
		if !ok || o.Verdict == VerdictSkipped {
			continue
		}
		total++
		if (o.Verdict == VerdictCorrect) == c.Correct {
			right++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(right) / float64(total)
}

// MeanAbsError reports the average relative error of suggestions on
// incorrect claims versus the annotated correct value; diagnostics for the
// Example 4 correction feature.
func MeanAbsError(doc *claims.Document, outcomes []*Outcome) float64 {
	byID := make(map[int]*claims.Claim, len(doc.Claims))
	for _, c := range doc.Claims {
		byID[c.ID] = c
	}
	var sum float64
	n := 0
	for _, o := range outcomes {
		c, ok := byID[o.ClaimID]
		if !ok || !o.HasSuggestion || c.Truth == nil {
			continue
		}
		scale := math.Abs(c.Truth.Value)
		if scale < 1e-12 {
			scale = 1
		}
		sum += math.Abs(o.Suggestion-c.Truth.Value) / scale
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
