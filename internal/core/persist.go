package core

import (
	"encoding/json"
	"fmt"

	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/formula"
)

// This file serializes the trained half of a ModelSnapshot — the four
// classifiers, the formula library and the generation counter — so the
// service layer can park verifier models in a store and re-materialize them
// on boot without retraining. Corpus, feature pipeline and caches are NOT
// part of the encoding: they are rebuilt from the journaled corpus relations
// and the verifier's recorded options, and RestoreTrained grafts the decoded
// model state onto such a freshly built engine.

// modelStateVersion guards the encoding format; bump on incompatible change.
const modelStateVersion = 1

type encodedModels struct {
	Version  int                         `json:"version"`
	Gen      uint64                      `json:"gen"`
	Models   map[string]classifier.State `json:"models,omitempty"`
	Formulas []string                    `json:"formulas,omitempty"`
	Counts   []int                       `json:"formula_counts,omitempty"`
}

// EncodeModels serializes the snapshot's trained state. The encoding is
// deterministic for a given snapshot (JSON object keys are emitted sorted)
// and exact: float64 weights survive the round trip bit-for-bit.
func (s *ModelSnapshot) EncodeModels() ([]byte, error) {
	enc := encodedModels{
		Version: modelStateVersion,
		Gen:     s.gen,
		Models:  make(map[string]classifier.State, len(s.models)),
	}
	for kind, m := range s.models {
		enc.Models[kind.String()] = m.State()
	}
	if s.lib != nil {
		enc.Formulas, enc.Counts = s.lib.Export()
	}
	data, err := json.Marshal(enc)
	if err != nil {
		return nil, fmt.Errorf("core: encoding model snapshot: %w", err)
	}
	return data, nil
}

// RestoreTrained replaces the engine's trained state (classifiers, formula
// library, generation) with a decoded EncodeModels blob. The engine keeps
// its corpus, feature pipeline and caches — the caller builds it fresh over
// the recovered corpus first. RestoreTrained must not race Train or any
// scoring on the same engine; recovery calls it before the engine is shared.
func (e *Engine) RestoreTrained(data []byte) error {
	var enc encodedModels
	if err := json.Unmarshal(data, &enc); err != nil {
		return fmt.Errorf("core: decoding model snapshot: %w", err)
	}
	if enc.Version != modelStateVersion {
		return fmt.Errorf("core: model snapshot version %d, this build reads %d", enc.Version, modelStateVersion)
	}
	byName := make(map[string]PropertyKind, len(PropertyKinds()))
	for _, kind := range PropertyKinds() {
		byName[kind.String()] = kind
	}
	models := make(map[PropertyKind]*classifier.Classifier, len(enc.Models))
	for name, st := range enc.Models {
		kind, ok := byName[name]
		if !ok {
			return fmt.Errorf("core: model snapshot has unknown property kind %q", name)
		}
		m, err := classifier.FromState(st)
		if err != nil {
			return fmt.Errorf("core: restoring %s model: %w", name, err)
		}
		models[kind] = m
	}
	lib, err := formula.RestoreLibrary(enc.Formulas, enc.Counts)
	if err != nil {
		return err
	}
	// Install atomically with respect to the generation counter. The
	// assessment cache is untouched: recovery restores into engines that
	// have not assessed anything yet.
	e.assessMu.Lock()
	e.models = models
	e.lib = lib
	e.gen = enc.Gen
	e.assessMu.Unlock()
	return nil
}
