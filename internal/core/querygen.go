package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/query"
	"github.com/repro/scrutinizer/internal/table"
)

// Context is the crowd-validated query context (Algorithm 2 input): the
// relations, key values and attribute labels that the correct query draws
// from. "The algorithm assumes that the input information for relations,
// key values and attributes are correct as these come from the crowd
// validation."
type Context struct {
	Relations []string
	Keys      []string
	Attrs     []string
}

// GeneratedQuery is one output of query generation: an executable query and
// its tentative-execution value.
type GeneratedQuery struct {
	Query   *query.Query
	Value   float64
	Formula string
}

// GenerateQueries implements Algorithm 2. Given the validated context, a
// ranked formula list, and the claim parameter p (explicit claims), it
// enumerates variable assignments per formula, executes them tentatively,
// and splits the results into solutions S (value ≈ p within tolerance) and
// alternates SA (everything else, kept as correction suggestions and as the
// candidate set for general claims).
//
// The implementation is the compiled hot path of the engine: each formula
// is lowered once to a flat expr program, assignments are enumerated as
// integer slot tuples — (relation, row) pair indexes per binding alias,
// context-attribute indexes per attribute variable — over the corpus's
// interned table.Index, and tentative execution runs query plans on pooled
// scratch with no string handling at all. Results are deduplicated by
// canonical (formula, slot-tuple) key rather than rendered SQL, and Query
// values (whose SQL renders lazily) are materialised only for the
// candidates that survive dedupe, ranking and truncation. Successful
// enumerations are memoized per corpus generation in the engine's
// QueryCache, so repeated screens and concurrent sessions over one corpus
// never recompute the same cell math.
//
// ctx bounds the enumeration: assignment loops poll it every
// enumCheckEvery candidates and abort with a wrapped ctx.Err(). A
// cancelled (partial) enumeration is never written to the QueryCache — a
// later caller must not be served an incomplete entry as complete. The
// only error GenerateQueries returns is cancellation.
func (e *Engine) GenerateQueries(ctx context.Context, qc Context, formulas []*formula.Formula, p float64, hasParam bool) (solutions, alternates []GeneratedQuery, err error) {
	// Entry checkpoint: small enumerations can finish in fewer than
	// enumCheckEvery steps without ever polling, but a dead context must
	// still stop them before any cell math runs.
	if err := checkCancel(ctx); err != nil {
		return nil, nil, err
	}
	if e.genOverride != nil {
		solutions, alternates = e.genOverride(qc, formulas, p, hasParam)
		return solutions, alternates, nil
	}
	gs := getGenScratch()
	defer putGenScratch(gs)

	gen := e.corpus.Generation()
	env := newGenEnv(e.corpus.Index(), qc)
	if e.cfg.FormulaParallelism > 1 {
		if err := e.prefetchFormulas(ctx, env, gen, formulas); err != nil {
			return nil, nil, err
		}
	}
	budget := e.cfg.MaxAssignments
	for _, f := range formulas {
		if f == nil || f.Expr == nil {
			continue
		}
		fkey := e.formulaKey(f)
		fid := gs.fid(fkey, f)
		if gs.formAliases[fid] == nil {
			gs.formAliases[fid] = e.formulaAliases(f)
		}
		used, err := e.generateForFormula(ctx, gs, env, gen, f, fid, fkey, p, hasParam, budget)
		if err != nil {
			return nil, nil, err
		}
		budget -= used
		if budget <= 0 {
			break
		}
	}
	// Deduplicate by canonical (formula, slots) key and rank: solutions by
	// |value - p|, alternates by closeness to the parameter (most plausible
	// corrections first). Slot-key dedupe removes the mass of duplicates
	// without rendering anything; materialization then applies the exact
	// legacy rendered-SQL dedupe over the few survivors it walks (distinct
	// formulas can still collide on SQL), so truncation never wastes an
	// alternate slot on a duplicate. Stable sort keeps equal-value
	// duplicates in enumeration order, which makes the late SQL dedupe
	// pick the same winners the pre-rewrite dedupe-then-sort did.
	sols := gs.dedupe(gs.sols)
	alts := gs.dedupe(gs.alts)
	if hasParam {
		sort.SliceStable(sols, func(i, j int) bool {
			return math.Abs(sols[i].value-p) < math.Abs(sols[j].value-p)
		})
		sort.SliceStable(alts, func(i, j int) bool {
			return math.Abs(alts[i].value-p) < math.Abs(alts[j].value-p)
		})
	}
	return gs.materialize(env, sols, len(sols)), gs.materialize(env, alts, e.cfg.MaxAlternates), nil
}

// prefetchFormulas enumerates one claim's cache-missing formulas
// concurrently, each at the full assignment budget, before the sequential
// serve pass of GenerateQueries. An entry enumerated at the full budget
// serves any smaller remaining budget with exact legacy accounting
// (tentEntry.served), so the serve pass produces bit-identical output —
// the fan-out only changes when (and on which goroutine) the enumeration
// work happens. Pinned by the FormulaParallelism equivalence test.
func (e *Engine) prefetchFormulas(ctx context.Context, env *genEnv, gen uint64, formulas []*formula.Formula) error {
	if len(env.ctx.Relations) == 0 || len(env.ctx.Keys) == 0 || len(env.pairs) == 0 {
		return nil
	}
	budget := e.cfg.MaxAssignments
	var miss []*formula.Formula
	var missKeys []string
	seen := make(map[string]bool, len(formulas))
	for _, f := range formulas {
		if f == nil || f.Expr == nil {
			continue
		}
		if len(f.AttrVars) > 0 && len(env.ctx.Attrs) == 0 {
			continue
		}
		key := tentKey(e.formulaKey(f), env.ctx)
		if seen[key] {
			continue
		}
		seen[key] = true
		if e.qcache.peek(e.corpus, gen, key, budget) {
			continue
		}
		miss = append(miss, f)
		missKeys = append(missKeys, key)
	}
	if len(miss) < 2 {
		return nil // a lone miss gains nothing from a worker hand-off
	}
	// env's execution tables build lazily and are not goroutine-safe;
	// resolve them once here so the workers only read env.
	env.ensureExec()
	cancelled := make([]bool, len(miss))
	runPool(len(miss), e.cfg.FormulaParallelism, func(i int) {
		wgs := getGenScratch()
		entry := e.enumerate(ctx, wgs, env, miss[i], e.formulaKey(miss[i]), budget)
		putGenScratch(wgs)
		if entry == nil {
			cancelled[i] = true // partial enumeration: never cache it
			return
		}
		e.qcache.put(e.corpus, gen, missKeys[i], entry)
	})
	for _, c := range cancelled {
		if c {
			return checkCancel(ctx)
		}
	}
	return nil
}

// generateForFormula runs (or serves from cache) the tentative execution of
// one formula under an assignment budget, appending candidate records to
// the scratch; it returns the assignments tried, with the same accounting
// as the pre-compilation enumeration loop. A cancelled enumeration returns
// an error without caching the partial entry.
func (e *Engine) generateForFormula(ctx context.Context, gs *genScratch, env *genEnv, gen uint64, f *formula.Formula, fid int32, fkey string, p float64, hasParam bool, budget int) (used int, err error) {
	if len(env.ctx.Relations) == 0 || len(env.ctx.Keys) == 0 {
		return 0, nil
	}
	if len(f.AttrVars) > 0 && len(env.ctx.Attrs) == 0 {
		return 0, nil
	}
	if len(env.pairs) == 0 {
		return 0, nil
	}
	key := tentKey(fkey, env.ctx)
	entry, ok := e.qcache.get(e.corpus, gen, key, budget)
	if !ok {
		entry = e.enumerate(ctx, gs, env, f, fkey, budget)
		if entry == nil {
			return 0, checkCancel(ctx)
		}
		e.qcache.put(e.corpus, gen, key, entry)
	}
	var n int
	n, used = entry.served(budget)
	tol := e.cfg.Tolerance
	for i := 0; i < n; i++ {
		rec := candRec{
			fid:   fid,
			value: entry.values[i],
			off:   int32(len(gs.slots)),
			n:     int32(entry.stride),
		}
		gs.slots = append(gs.slots, entry.slots[i*entry.stride:(i+1)*entry.stride]...)
		if hasParam && claims.RelClose(rec.value, p, tol) {
			gs.sols = append(gs.sols, rec)
		} else {
			gs.alts = append(gs.alts, rec)
		}
	}
	return used, nil
}

// enumerate visits the assignment space of one formula in the canonical
// order — an odometer over (relation, key) pairs per alias, last alias
// fastest, with every attribute assignment tried per pair tuple — and
// records the successful executions as canonical slot tuples. Execution is
// compiled (plan over the interned index) whenever the formula compiles;
// expressions the compiler rejects fall back to per-candidate interpreted
// execution with identical pruning semantics.
//
// ctx is polled every enumCheckEvery assignments; on cancellation the
// partial entry is discarded and enumerate returns nil (callers must not
// cache or serve it). The poll is gated on ctx.Done() != nil, so
// Background-context callers pay nothing in the odometer loop.
func (e *Engine) enumerate(ctx context.Context, gs *genScratch, env *genEnv, f *formula.Formula, fkey string, budget int) *tentEntry {
	attrVars := f.AttrVars
	aliases := e.formulaAliases(f)
	attrAssigns := injectiveIdx(len(env.ctx.Attrs), len(attrVars))
	if len(attrAssigns) == 0 && len(attrVars) > 0 {
		attrAssigns = repeatedIdx(len(env.ctx.Attrs), len(attrVars))
	}
	if len(attrVars) == 0 {
		attrAssigns = [][]int32{nil}
	}

	t := &tentEntry{stride: len(aliases) + len(attrVars)}
	exec, release := e.compiledExecutor(env, f, fkey, aliases)
	if exec == nil {
		exec = e.interpretedExecutor(env, f, aliases)
	}
	if release != nil {
		defer release()
	}

	if cap(gs.pairTuple) < len(aliases) {
		gs.pairTuple = make([]int32, len(aliases))
	}
	pt := gs.pairTuple[:len(aliases)]
	for i := range pt {
		pt[i] = 0
	}
	done := ctx.Done()
	used := 0
	for {
		for _, aa := range attrAssigns {
			used++
			if used > budget {
				t.explored = used - 1
				return t
			}
			if done != nil && used%enumCheckEvery == 0 {
				select {
				case <-done:
					return nil
				default:
				}
			}
			if v, ok := exec(pt, aa); ok {
				t.attempts = append(t.attempts, int32(used))
				for _, pi := range pt {
					t.slots = append(t.slots, env.pairCanon[pi])
				}
				for _, ai := range aa {
					t.slots = append(t.slots, env.attrCanon[ai])
				}
				t.values = append(t.values, v)
			}
		}
		carry := len(pt) - 1
		for carry >= 0 {
			pt[carry]++
			if int(pt[carry]) < len(env.pairs) {
				break
			}
			pt[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}
	t.explored = used
	t.complete = true
	return t
}

// compiledExecutor builds the integer-slot executor for a formula: all
// names (columns, numeric attribute labels) are resolved to IDs or parsed
// before the loop, so each candidate costs coordinate assembly plus one
// program evaluation. Returns a nil executor when the expression does not
// compile; the release function (when non-nil) returns the pooled scratch.
func (e *Engine) compiledExecutor(env *genEnv, f *formula.Formula, fkey string, aliases []string) (exec func(pt, aa []int32) (float64, bool), release func()) {
	prog := e.compiledProgram(fkey, f.Expr)
	if prog == nil || len(prog.Aliases()) != len(aliases) {
		return nil, nil
	}
	env.ensureExec()
	varPos := func(name string) int32 {
		for i, v := range f.AttrVars {
			if v == name {
				return int32(i)
			}
		}
		return -1
	}
	cells := prog.Cells()
	cellAlias := make([]int32, len(cells))
	cellVar := make([]int32, len(cells))  // attr-variable position or -1
	cellConc := make([]int32, len(cells)) // concrete-label index or -1
	var concLabels []string
	for ci, cs := range cells {
		cellAlias[ci] = cs.Alias
		cellVar[ci] = varPos(cs.Attr)
		cellConc[ci] = -1
		if cellVar[ci] < 0 {
			idx := int32(-1)
			for i, l := range concLabels {
				if l == cs.Attr {
					idx = int32(i)
					break
				}
			}
			if idx < 0 {
				idx = int32(len(concLabels))
				concLabels = append(concLabels, cs.Attr)
			}
			cellConc[ci] = idx
		}
	}
	// Column IDs of concrete labels per (pair, label); -1 when absent.
	colConc := make([]int32, len(env.pairs)*len(concLabels))
	for pi := range env.pairs {
		for li, label := range concLabels {
			colConc[pi*len(concLabels)+li] = -1
			if col, ok := env.idx.ColID(env.pairs[pi].rel, label); ok {
				colConc[pi*len(concLabels)+li] = col
			}
		}
	}
	// Numeric attribute-variable slots; a variable outside the formula's
	// assignment (malformed input) can never evaluate, as under the
	// interpreter's unbound-variable error.
	numPos := make([]int32, len(prog.NumVars()))
	alwaysFail := false
	for i, name := range prog.NumVars() {
		numPos[i] = varPos(name)
		if numPos[i] < 0 {
			alwaysFail = true
		}
	}

	plan := &query.Plan{Prog: prog, Idx: env.idx}
	sc := plan.GetScratch()
	nAttrs := len(env.ctx.Attrs)
	return func(pt, aa []int32) (float64, bool) {
		if alwaysFail {
			return 0, false
		}
		coords := sc.Coords
		for ci := range cellAlias {
			pi := pt[cellAlias[ci]]
			pr := &env.pairs[pi]
			var col int32
			if vp := cellVar[ci]; vp >= 0 {
				col = env.colCtx[int(pi)*nAttrs+int(aa[vp])]
			} else {
				col = colConc[int(pi)*len(concLabels)+int(cellConc[ci])]
			}
			if col < 0 {
				return 0, false
			}
			coords[ci] = table.CellCoord{Rel: pr.rel, Row: pr.row, Col: col}
		}
		for i, vp := range numPos {
			ai := aa[vp]
			if !env.attrNumOK[ai] {
				return 0, false
			}
			sc.AttrNums[i] = env.attrNum[ai]
		}
		v, err := plan.ExecCoords(coords, sc.AttrNums, sc)
		return v, err == nil
	}, func() { query.PutScratch(sc) }
}

// interpretedExecutor is the fallback for uncompilable expressions: each
// candidate builds a Query and runs the tree interpreter, pruning on any
// error exactly like the pre-compilation loop.
func (e *Engine) interpretedExecutor(env *genEnv, f *formula.Formula, aliases []string) func(pt, aa []int32) (float64, bool) {
	return func(pt, aa []int32) (float64, bool) {
		q := &query.Query{Select: f.Expr, AttrBindings: make(map[string]string, len(f.AttrVars))}
		for vi, v := range f.AttrVars {
			q.AttrBindings[v] = env.ctx.Attrs[aa[vi]]
		}
		for ai, alias := range aliases {
			pr := &env.pairs[pt[ai]]
			q.Bindings = append(q.Bindings, query.Binding{Alias: alias, Relation: pr.relName, Key: pr.key})
		}
		v, err := q.ExecuteInterpreted(e.corpus)
		return v, err == nil
	}
}

// genPair is one (relation, key) candidate for an alias binding, with both
// the interned coordinates used by execution and the names used when a
// surviving candidate materialises.
type genPair struct {
	rel, row     int32
	relName, key string
}

// genEnv is the per-call resolution of a validated context against the
// interned corpus: the alias candidate pairs in enumeration order, the
// per-(pair, context-attribute) column table, parsed numeric attribute
// labels, and the canonicalisation maps that make slot tuples comparable
// across duplicate context entries.
type genEnv struct {
	idx   *table.Index
	ctx   Context
	pairs []genPair
	// pairCanon / attrCanon map enumeration indexes to the first index
	// carrying the same value, so the dedupe key of two assignments that
	// differ only through duplicated context entries coincides (matching
	// the old rendered-SQL dedupe).
	pairCanon []int32
	attrCanon []int32
	// colCtx[pair*len(ctx.Attrs)+attr] is the column ID of the attribute
	// label in the pair's relation, -1 when absent. Built lazily by
	// ensureExec: fully cached calls never need it.
	colCtx []int32
	// attrNum / attrNumOK hold each context attribute parsed as a number
	// (for attribute variables used numerically, e.g. year arithmetic).
	// Lazy alongside colCtx.
	attrNum   []float64
	attrNumOK []bool
	execReady bool
}

// ensureExec builds the execution-only tables (column IDs, parsed numeric
// labels) on the first cache miss; serve/materialize paths skip the cost.
func (env *genEnv) ensureExec() {
	if env.execReady {
		return
	}
	env.execReady = true
	env.attrNum = make([]float64, len(env.ctx.Attrs))
	env.attrNumOK = make([]bool, len(env.ctx.Attrs))
	for i, a := range env.ctx.Attrs {
		if v, err := strconv.ParseFloat(a, 64); err == nil {
			env.attrNum[i] = v
			env.attrNumOK[i] = true
		}
	}
	env.colCtx = make([]int32, len(env.pairs)*len(env.ctx.Attrs))
	for pi := range env.pairs {
		for ai, a := range env.ctx.Attrs {
			env.colCtx[pi*len(env.ctx.Attrs)+ai] = -1
			if col, ok := env.idx.ColID(env.pairs[pi].rel, a); ok {
				env.colCtx[pi*len(env.ctx.Attrs)+ai] = col
			}
		}
	}
}

func newGenEnv(idx *table.Index, ctx Context) *genEnv {
	env := &genEnv{idx: idx, ctx: ctx}
	for _, r := range ctx.Relations {
		rel, ok := idx.RelID(r)
		if !ok {
			continue
		}
		for _, k := range ctx.Keys {
			row, ok := idx.RowID(rel, k)
			if !ok {
				continue
			}
			env.pairs = append(env.pairs, genPair{rel: rel, row: row, relName: r, key: k})
		}
	}
	env.pairCanon = make([]int32, len(env.pairs))
	for i := range env.pairs {
		env.pairCanon[i] = int32(i)
		for j := 0; j < i; j++ {
			if env.pairs[j].rel == env.pairs[i].rel && env.pairs[j].row == env.pairs[i].row {
				env.pairCanon[i] = int32(j)
				break
			}
		}
	}
	env.attrCanon = make([]int32, len(ctx.Attrs))
	for i, a := range ctx.Attrs {
		env.attrCanon[i] = int32(i)
		for j := 0; j < i; j++ {
			if ctx.Attrs[j] == a {
				env.attrCanon[i] = int32(j)
				break
			}
		}
	}
	return env
}

// candRec is one tentative-execution success before materialisation: the
// formula slot, the value, and the canonical slot tuple (offsets into the
// scratch slot arena).
type candRec struct {
	fid   int32
	off   int32
	n     int32
	value float64
}

// genScratch pools the per-claim enumeration state: candidate record
// slices, the slot arena, dedupe map and key buffer, the pair-tuple
// odometer, and formula interning. Query generation runs per claim on the
// session answer path, so recycling these keeps the hot path allocation-
// lean; the returned GeneratedQuery slices themselves are freshly
// materialised for the few surviving candidates and owned by the caller.
type genScratch struct {
	sols, alts  []candRec
	slots       []int32
	forms       []*formula.Formula
	fkeys       []string   // per fid, the canonical rendering (dedupe key)
	formAliases [][]string // per fid, pre-filled from the formula cache
	fidOf       map[string]int32
	seen        map[string]struct{}
	key         []byte
	pairTuple   []int32
}

var genScratchPool = sync.Pool{New: func() any {
	return &genScratch{
		fidOf: make(map[string]int32),
		seen:  make(map[string]struct{}),
	}
}}

func getGenScratch() *genScratch {
	return genScratchPool.Get().(*genScratch)
}

func putGenScratch(gs *genScratch) {
	gs.sols = gs.sols[:0]
	gs.alts = gs.alts[:0]
	gs.slots = gs.slots[:0]
	for i := range gs.forms {
		gs.forms[i] = nil // drop formula references while pooled
	}
	gs.forms = gs.forms[:0]
	for i := range gs.fkeys {
		gs.fkeys[i] = ""
	}
	gs.fkeys = gs.fkeys[:0]
	for i := range gs.formAliases {
		gs.formAliases[i] = nil
	}
	gs.formAliases = gs.formAliases[:0]
	clear(gs.fidOf)
	clear(gs.seen)
	genScratchPool.Put(gs)
}

// fid interns a formula by canonical string for this call; equal formulas
// share a slot, which is what makes the dedupe key catch duplicates.
func (gs *genScratch) fid(fkey string, f *formula.Formula) int32 {
	if id, ok := gs.fidOf[fkey]; ok {
		return id
	}
	id := int32(len(gs.forms))
	gs.fidOf[fkey] = id
	gs.forms = append(gs.forms, f)
	gs.fkeys = append(gs.fkeys, fkey)
	gs.formAliases = append(gs.formAliases, nil)
	return id
}

// aliasesOf returns (and caches) the alias list of an interned formula, so
// materialisation walks each formula's tree once, not once per candidate.
func (gs *genScratch) aliasesOf(fid int32) []string {
	if gs.formAliases[fid] == nil {
		gs.formAliases[fid] = expr.Aliases(gs.forms[fid].Expr)
	}
	return gs.formAliases[fid]
}

// dedupe drops records whose canonical (formula, slots) key was already
// seen, in place, preserving order (first wins — the enumeration-order
// candidate keeps its rank).
func (gs *genScratch) dedupe(recs []candRec) []candRec {
	out := recs[:0]
	for _, r := range recs {
		gs.key = binary.AppendVarint(gs.key[:0], int64(r.fid))
		for _, s := range gs.slots[r.off : r.off+r.n] {
			gs.key = binary.AppendVarint(gs.key, int64(s))
		}
		// string(gs.key) in the index expression is a no-alloc lookup; the
		// conversion only materialises when inserting a fresh key.
		if _, dup := gs.seen[string(gs.key)]; dup {
			continue
		}
		gs.seen[string(gs.key)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// materialize builds the executable Query values for surviving candidates —
// the only place query generation touches strings or renders anything. It
// walks records in rank order, skips any whose rendered SQL was already
// emitted (distinct formulas colliding on SQL), and stops once limit
// distinct queries exist, so rendering stays proportional to the output,
// not the candidate set.
func (gs *genScratch) materialize(env *genEnv, recs []candRec, limit int) []GeneratedQuery {
	if len(recs) == 0 || limit <= 0 {
		return nil
	}
	if limit > len(recs) {
		limit = len(recs)
	}
	out := make([]GeneratedQuery, 0, limit)
	var seenSQL map[string]bool
	for _, r := range recs {
		if len(out) >= limit {
			break
		}
		f := gs.forms[r.fid]
		aliases := gs.aliasesOf(r.fid)
		q := &query.Query{Select: f.Expr, AttrBindings: make(map[string]string, len(f.AttrVars))}
		slots := gs.slots[r.off : r.off+r.n]
		for i, alias := range aliases {
			pr := &env.pairs[slots[i]]
			q.Bindings = append(q.Bindings, query.Binding{Alias: alias, Relation: pr.relName, Key: pr.key})
		}
		for j, v := range f.AttrVars {
			q.AttrBindings[v] = env.ctx.Attrs[slots[len(aliases)+j]]
		}
		if seenSQL == nil {
			seenSQL = make(map[string]bool, limit)
		}
		sql := q.SQL()
		if seenSQL[sql] {
			continue
		}
		seenSQL[sql] = true
		out = append(out, GeneratedQuery{Query: q, Value: r.value, Formula: gs.fkeys[r.fid]})
	}
	return out
}

// injectiveIdx enumerates ordered selections of k distinct indexes out of
// [0, n) — the index form of injectiveAssignments, in the same order.
func injectiveIdx(n, k int) [][]int32 {
	if k == 0 {
		return [][]int32{nil}
	}
	if n < k {
		return nil
	}
	var out [][]int32
	cur := make([]int32, 0, k)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int32(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, int32(i))
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// repeatedIdx enumerates ordered selections with repetition over [0, n).
func repeatedIdx(n, k int) [][]int32 {
	if k == 0 {
		return [][]int32{nil}
	}
	if n == 0 {
		return nil
	}
	var out [][]int32
	cur := make([]int32, 0, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int32(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			cur = append(cur, int32(i))
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return out
}

// injectiveAssignments enumerates ordered selections of n distinct values.
func injectiveAssignments(values []string, n int) [][]string {
	if n == 0 {
		return [][]string{nil}
	}
	if len(values) < n {
		return nil
	}
	var out [][]string
	for _, idxs := range injectiveIdx(len(values), n) {
		sel := make([]string, n)
		for i, ix := range idxs {
			sel[i] = values[ix]
		}
		out = append(out, sel)
	}
	return out
}

// repeatedAssignments enumerates ordered selections with repetition.
func repeatedAssignments(values []string, n int) [][]string {
	if n == 0 {
		return [][]string{nil}
	}
	if len(values) == 0 {
		return nil
	}
	var out [][]string
	for _, idxs := range repeatedIdx(len(values), n) {
		sel := make([]string, n)
		for i, ix := range idxs {
			sel[i] = values[ix]
		}
		out = append(out, sel)
	}
	return out
}

// TruthQuery builds the canonical ground-truth query of an annotated claim:
// formula aliases bind, in order, to (Relations[i mod], Keys[i mod]); the
// i-th attribute variable binds to Attrs[i]. The synthetic world generator
// produces annotations consistent with this convention, so the truth query
// always executes.
func (e *Engine) TruthQuery(c *claims.Claim) (*query.Query, error) {
	if c == nil || c.Truth == nil {
		return nil, fmt.Errorf("core: claim has no ground-truth annotation")
	}
	f, err := e.parseFormula(c.Truth.Formula)
	if err != nil {
		return nil, fmt.Errorf("core: claim %d: %w", c.ID, err)
	}
	aliases := e.formulaAliases(f)
	if len(c.Truth.Relations) == 0 || len(c.Truth.Keys) == 0 {
		return nil, fmt.Errorf("core: claim %d annotation lacks relations or keys", c.ID)
	}
	if len(f.AttrVars) > len(c.Truth.Attrs) {
		return nil, fmt.Errorf("core: claim %d annotation has %d attrs, formula needs %d",
			c.ID, len(c.Truth.Attrs), len(f.AttrVars))
	}
	q := &query.Query{Select: f.Expr, AttrBindings: map[string]string{}}
	for i, v := range f.AttrVars {
		q.AttrBindings[v] = c.Truth.Attrs[i]
	}
	for i, alias := range aliases {
		q.Bindings = append(q.Bindings, query.Binding{
			Alias:    alias,
			Relation: c.Truth.Relations[i%len(c.Truth.Relations)],
			Key:      c.Truth.Keys[i%len(c.Truth.Keys)],
		})
	}
	return q, nil
}
