package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/query"
)

// Context is the crowd-validated query context (Algorithm 2 input): the
// relations, key values and attribute labels that the correct query draws
// from. "The algorithm assumes that the input information for relations,
// key values and attributes are correct as these come from the crowd
// validation."
type Context struct {
	Relations []string
	Keys      []string
	Attrs     []string
}

// GeneratedQuery is one output of query generation: an executable query and
// its tentative-execution value.
type GeneratedQuery struct {
	Query   *query.Query
	Value   float64
	Formula string
}

// GenerateQueries implements Algorithm 2. Given the validated context, a
// ranked formula list, and the claim parameter p (explicit claims), it
// enumerates variable assignments per formula, executes them tentatively,
// and splits the results into solutions S (value ≈ p within tolerance) and
// alternates SA (everything else, kept as correction suggestions and as the
// candidate set for general claims).
func (e *Engine) GenerateQueries(ctx Context, formulas []*formula.Formula, p float64, hasParam bool) (solutions, alternates []GeneratedQuery) {
	budget := e.cfg.MaxAssignments
	for _, f := range formulas {
		if f == nil || f.Expr == nil {
			continue
		}
		sols, alts, used := e.generateForFormula(ctx, f, p, hasParam, budget)
		budget -= used
		solutions = append(solutions, sols...)
		alternates = append(alternates, alts...)
		if budget <= 0 {
			break
		}
	}
	// Deduplicate by SQL and rank: solutions by |value - p|, alternates by
	// closeness to the parameter (most plausible corrections first).
	solutions = dedupeQueries(solutions)
	alternates = dedupeQueries(alternates)
	if hasParam {
		sort.SliceStable(solutions, func(i, j int) bool {
			return math.Abs(solutions[i].Value-p) < math.Abs(solutions[j].Value-p)
		})
		sort.SliceStable(alternates, func(i, j int) bool {
			return math.Abs(alternates[i].Value-p) < math.Abs(alternates[j].Value-p)
		})
	}
	if len(alternates) > e.cfg.MaxAlternates {
		alternates = alternates[:e.cfg.MaxAlternates]
	}
	return solutions, alternates
}

// generateForFormula enumerates assignments for one formula under an
// assignment budget; it returns the assignments tried.
func (e *Engine) generateForFormula(ctx Context, f *formula.Formula, p float64, hasParam bool, budget int) (sols, alts []GeneratedQuery, used int) {
	aliases := expr.Aliases(f.Expr)
	attrVars := f.AttrVars

	if len(ctx.Relations) == 0 || len(ctx.Keys) == 0 {
		return nil, nil, 0
	}
	if len(attrVars) > 0 && len(ctx.Attrs) == 0 {
		return nil, nil, 0
	}

	// Enumerate attribute-variable assignments: injective mappings of
	// context attributes onto attribute variables (years in a CAGR are
	// distinct), falling back to allowing repeats when the context has
	// fewer attributes than the formula needs.
	attrAssigns := injectiveAssignments(ctx.Attrs, len(attrVars))
	if len(attrAssigns) == 0 && len(attrVars) > 0 {
		attrAssigns = repeatedAssignments(ctx.Attrs, len(attrVars))
	}
	if len(attrVars) == 0 {
		attrAssigns = [][]string{nil}
	}

	// Enumerate (relation, key) pairs per alias.
	type cell struct{ rel, key string }
	var pairs []cell
	for _, r := range ctx.Relations {
		rel, err := e.corpus.Relation(r)
		if err != nil {
			continue
		}
		for _, k := range ctx.Keys {
			if rel.HasKey(k) {
				pairs = append(pairs, cell{r, k})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, nil, 0
	}

	// Odometer over pairs^|aliases| × attrAssigns.
	idx := make([]int, len(aliases))
	for {
		for _, aa := range attrAssigns {
			used++
			if used > budget {
				return sols, alts, used
			}
			q := &query.Query{Select: f.Expr, AttrBindings: map[string]string{}}
			for vi, v := range attrVars {
				q.AttrBindings[v] = aa[vi]
			}
			for ai, alias := range aliases {
				pr := pairs[idx[ai]]
				q.Bindings = append(q.Bindings, query.Binding{Alias: alias, Relation: pr.rel, Key: pr.key})
			}
			val, err := q.Execute(e.corpus)
			if err != nil {
				continue // missing cell, domain error, ... prune silently
			}
			g := GeneratedQuery{Query: q, Value: val, Formula: f.String()}
			if hasParam && claims.RelClose(val, p, e.cfg.Tolerance) {
				sols = append(sols, g)
			} else {
				alts = append(alts, g)
			}
		}
		// Advance odometer.
		carry := len(aliases) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(pairs) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}
	return sols, alts, used
}

// injectiveAssignments enumerates ordered selections of n distinct values.
func injectiveAssignments(values []string, n int) [][]string {
	if n == 0 {
		return [][]string{nil}
	}
	if len(values) < n {
		return nil
	}
	var out [][]string
	cur := make([]string, 0, n)
	usedIdx := make([]bool, len(values))
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i, v := range values {
			if usedIdx[i] {
				continue
			}
			usedIdx[i] = true
			cur = append(cur, v)
			rec()
			cur = cur[:len(cur)-1]
			usedIdx[i] = false
		}
	}
	rec()
	return out
}

// repeatedAssignments enumerates ordered selections with repetition.
func repeatedAssignments(values []string, n int) [][]string {
	if n == 0 {
		return [][]string{nil}
	}
	if len(values) == 0 {
		return nil
	}
	var out [][]string
	cur := make([]string, 0, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for _, v := range values {
			cur = append(cur, v)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return out
}

func dedupeQueries(qs []GeneratedQuery) []GeneratedQuery {
	seen := make(map[string]bool, len(qs))
	out := qs[:0]
	for _, g := range qs {
		sql := g.Query.SQL()
		if seen[sql] {
			continue
		}
		seen[sql] = true
		out = append(out, g)
	}
	return out
}

// TruthQuery builds the canonical ground-truth query of an annotated claim:
// formula aliases bind, in order, to (Relations[i mod], Keys[i mod]); the
// i-th attribute variable binds to Attrs[i]. The synthetic world generator
// produces annotations consistent with this convention, so the truth query
// always executes.
func (e *Engine) TruthQuery(c *claims.Claim) (*query.Query, error) {
	if c == nil || c.Truth == nil {
		return nil, fmt.Errorf("core: claim has no ground-truth annotation")
	}
	f, err := formula.ParseFormula(c.Truth.Formula)
	if err != nil {
		return nil, fmt.Errorf("core: claim %d: %w", c.ID, err)
	}
	aliases := expr.Aliases(f.Expr)
	if len(c.Truth.Relations) == 0 || len(c.Truth.Keys) == 0 {
		return nil, fmt.Errorf("core: claim %d annotation lacks relations or keys", c.ID)
	}
	if len(f.AttrVars) > len(c.Truth.Attrs) {
		return nil, fmt.Errorf("core: claim %d annotation has %d attrs, formula needs %d",
			c.ID, len(c.Truth.Attrs), len(f.AttrVars))
	}
	q := &query.Query{Select: f.Expr, AttrBindings: map[string]string{}}
	for i, v := range f.AttrVars {
		q.AttrBindings[v] = c.Truth.Attrs[i]
	}
	for i, alias := range aliases {
		q.Bindings = append(q.Bindings, query.Binding{
			Alias:    alias,
			Relation: c.Truth.Relations[i%len(c.Truth.Relations)],
			Key:      c.Truth.Keys[i%len(c.Truth.Keys)],
		})
	}
	return q, nil
}
