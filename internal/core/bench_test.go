package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/formula"
)

// benchGenSetup builds an engine plus a realistic Algorithm 2 input: a
// validated context naming two relations, several keys and attribute
// labels, and a ranked formula list mixing arities — a few thousand
// candidate assignments per claim, like a mid-document screen.
func benchGenSetup(b *testing.B) (*Engine, Context, []*formula.Formula, float64) {
	e, w := buildEngine(b, tinyWorld())
	rels := w.Corpus.Names()
	if len(rels) > 2 {
		rels = rels[:2]
	}
	var keys []string
	r0, err := w.Corpus.Relation(rels[0])
	if err != nil {
		b.Fatal(err)
	}
	keys = append(keys, r0.Keys()...)
	if len(keys) > 4 {
		keys = keys[:4]
	}
	attrs := r0.Attrs()
	if len(attrs) > 4 {
		attrs = attrs[:4]
	}
	ctx := Context{Relations: rels, Keys: keys, Attrs: attrs}
	formulas := []*formula.Formula{
		formula.MustParseFormula("POWER(a.A1/b.A2, 1/(A1-A2)) - 1"),
		formula.MustParseFormula("(a.A1 - b.A2) / b.A2"),
		formula.MustParseFormula("a.A1 / b.A2"),
		formula.MustParseFormula("a.A1"),
	}
	c := w.Document.Claims[0]
	return e, ctx, formulas, c.Param
}

// BenchmarkGenerateQueries is the compiled+memoized steady state: what a
// session answer pays for Algorithm 2 when the corpus generation is warm —
// cache hits replay the slot tuples and only survivors materialise.
func BenchmarkGenerateQueries(b *testing.B) {
	e, ctx, formulas, p := benchGenSetup(b)
	e.GenerateQueries(context.Background(), ctx, formulas, p, true) // warm cache + compiled programs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, a, _ := e.GenerateQueries(context.Background(), ctx, formulas, p, true)
		if len(s)+len(a) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkGenerateQueriesCold forces a full compiled enumeration every
// iteration (fresh tentative-execution cache): the first-screen cost per
// (formula, context) pair.
func BenchmarkGenerateQueriesCold(b *testing.B) {
	e, ctx, formulas, p := benchGenSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.qcache = NewQueryCache()
		s, a, _ := e.GenerateQueries(context.Background(), ctx, formulas, p, true)
		if len(s)+len(a) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkGenerateQueriesInterpreted is the pre-compilation reference
// (tree-walking execution, per-candidate Query construction, rendered-SQL
// dedupe) — the before side of the compiled engine's acceptance ratio.
func BenchmarkGenerateQueriesInterpreted(b *testing.B) {
	e, ctx, formulas, p := benchGenSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, a := e.generateQueriesInterpreted(ctx, formulas, p, true)
		if len(s)+len(a) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// benchVerifyE2E runs the full Algorithm 1 document loop with a batch size
// that forces repeated retraining, so trained formula candidates flow into
// Algorithm 2 for most claims — the workload where query generation is the
// dominant per-claim cost. interpreted routes generation through the
// pre-compilation reference engine via the override hook.
func benchVerifyE2E(b *testing.B, interpreted, deadline bool) {
	e, w := buildEngine(b, tinyWorld())
	pipe := e.pipe
	cfg := e.cfg
	team, err := crowd.NewTeam("B", 3, 0.98, 17)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if deadline {
		// A deadline that never fires: every cancellation checkpoint does
		// its full check (deadline contexts take the slow ctx.Err path),
		// and the run still completes.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Now().Add(time.Hour))
		defer cancel()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh engine per run: Verify's retrain barrier mutates models.
		e, err := NewEngine(w.Corpus, pipe, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if interpreted {
			e.genOverride = e.generateQueriesInterpreted
		}
		b.StartTimer()
		res, err := e.Verify(ctx, w.Document, team, VerifyConfig{BatchSize: 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != len(w.Document.Claims) {
			b.Fatalf("verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
		}
	}
}

// BenchmarkVerifyEndToEnd / BenchmarkVerifyEndToEndInterpreted record the
// end-to-end document-verification win of the compiled query engine in the
// tracked BENCH_*.json set. BenchmarkVerifyWithDeadline is the same run
// under a live (never-firing) deadline — its gap to VerifyEndToEnd is the
// total cost of the cancellation checkpoints, budgeted at <2%.
func BenchmarkVerifyEndToEnd(b *testing.B)            { benchVerifyE2E(b, false, false) }
func BenchmarkVerifyEndToEndInterpreted(b *testing.B) { benchVerifyE2E(b, true, false) }
func BenchmarkVerifyWithDeadline(b *testing.B)        { benchVerifyE2E(b, false, true) }

// BenchmarkVerifyInstrumented is BenchmarkVerifyEndToEnd with a live
// metrics observer installed — the exact hooks scrutinizerd wires in.
// Its gap to VerifyEndToEnd is the total cost of run-lifecycle
// instrumentation, budgeted at <2% ns/op and zero extra allocations:
// the hooks fire per round and per batch (never per claim) and each is
// one atomic-pointer load plus an atomic add.
func BenchmarkVerifyInstrumented(b *testing.B) {
	var runs, rounds, retrains, scored atomic.Uint64
	SetObserver(&Observer{
		RunStarted:   func() { runs.Add(1) },
		RunCompleted: func() { runs.Add(1) },
		RunCancelled: func() { runs.Add(1) },
		Round:        func() { rounds.Add(1) },
		Retrain:      func() { retrains.Add(1) },
		BatchScored:  func(n int) { scored.Add(uint64(n)) },
	})
	defer SetObserver(nil)
	benchVerifyE2E(b, false, false)
	if rounds.Load() == 0 || scored.Load() == 0 {
		b.Fatal("observer hooks never fired")
	}
}
