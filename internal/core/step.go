package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/query"
	"github.com/repro/scrutinizer/internal/scheduler"
)

// This file inverts the control flow of §5.1/Algorithm 1. The blocking
// Oracle loop of VerifyClaimWith is re-expressed as an explicit state
// machine (ClaimRun) that *emits* pending Question values and *consumes*
// posted answers, and the Algorithm 1 batch loop as a DocumentRun that
// owns batch selection and the retrain barrier between batches. A
// verification run parked between an emitted question and its answer is
// plain data — it holds no goroutines — which is what lets a session layer
// serve thousands of concurrent human checkers over HTTP while the
// synchronous Oracle path (Verify, VerifyClaimWith) survives as a thin
// driver that pumps the very same machine.

// ClaimStep enumerates the states of the per-claim verification machine.
type ClaimStep int

const (
	// StepProperties: validating the query context (relation, key,
	// attribute screens, in that order).
	StepProperties ClaimStep = iota
	// StepFormula: the planned formula screen (only when the greedy
	// §5.1 selection found one worth its cost).
	StepFormula
	// StepFinal: the final vote on candidate verifying queries.
	StepFinal
	// StepDone: the outcome is ready.
	StepDone
)

// String implements fmt.Stringer.
func (s ClaimStep) String() string {
	switch s {
	case StepProperties:
		return "properties"
	case StepFormula:
		return "formula"
	case StepFinal:
		return "final"
	case StepDone:
		return "done"
	}
	return fmt.Sprintf("ClaimStep(%d)", int(s))
}

// Question is one pending question screen emitted by a ClaimRun. It is
// everything a front end (simulated crowd, terminal, HTTP API) needs to
// render the screen and post an answer back.
type Question struct {
	// ClaimID identifies the claim the question belongs to.
	ClaimID int
	// Seq is the zero-based index of the question within its claim; an
	// answer targets exactly one (claim, seq) pair, which makes replays
	// and duplicate posts detectable.
	Seq int
	// Step is StepProperties, StepFormula or StepFinal.
	Step ClaimStep
	// Property is the property being asked (valid unless Step is
	// StepFinal; the formula screen carries PropFormula).
	Property PropertyKind
	// Options are the candidate property values, best first (property
	// and formula screens; empty on a suggestion-only screen).
	Options []planner.Option
	// Candidates are full candidate queries as SQL (final screen only).
	Candidates []string
}

// contextKinds is the fixed §5.1 screen order for the query context.
var contextKinds = [...]PropertyKind{PropRelation, PropKey, PropAttr}

// ClaimRun is the resumable verification of one claim: the state machine
// behind VerifyClaimWith. Callers alternate Question (what to ask) and
// Answer (what the checker said) until Done reports true, then read the
// Outcome. A ClaimRun is not safe for concurrent use; distinct ClaimRuns
// are independent and may be driven from different goroutines (they only
// read engine state, which is immutable between training rounds).
type ClaimRun struct {
	e *Engine
	c *claims.Claim

	out       *Outcome
	plan      *planner.Plan
	planned   map[string][]planner.Option
	validated map[PropertyKind]string
	formulas  []*formula.Formula
	bySQL     map[string]GeneratedQuery

	step    ClaimStep
	propIdx int // index into contextKinds while step == StepProperties
	seq     int // questions answered so far
	pending *Question
}

// StartClaim plans the claim's question screens under the current
// classifier state and returns the run parked on its first question. It
// fails when question planning fails (same condition as VerifyClaimWith).
func (e *Engine) StartClaim(c *claims.Claim) (*ClaimRun, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil claim")
	}
	plan, _, err := e.PlanQuestions(c)
	if err != nil {
		return nil, err
	}
	r := &ClaimRun{
		e:         e,
		c:         c,
		out:       &Outcome{ClaimID: c.ID},
		plan:      plan,
		planned:   make(map[string][]planner.Option, len(plan.Screens)),
		validated: make(map[PropertyKind]string, len(contextKinds)),
		step:      StepProperties,
	}
	for _, s := range plan.Screens {
		r.planned[s.Property] = s.Options
	}
	r.pending = r.propertyQuestion(contextKinds[0])
	return r, nil
}

// Claim returns the claim under verification.
func (r *ClaimRun) Claim() *claims.Claim { return r.c }

// Step reports the machine's current state.
func (r *ClaimRun) Step() ClaimStep { return r.step }

// Done reports whether the outcome is ready.
func (r *ClaimRun) Done() bool { return r.step == StepDone }

// Question returns the pending question, or nil when the run is done.
func (r *ClaimRun) Question() *Question { return r.pending }

// Outcome returns the verification outcome; nil until Done.
func (r *ClaimRun) Outcome() *Outcome {
	if r.step != StepDone {
		return nil
	}
	return r.out
}

// propertyQuestion builds the screen for one context property (or the
// formula screen). Unplanned context properties yield a suggestion-only
// screen with no options, exactly as the blocking flow fell back to.
func (r *ClaimRun) propertyQuestion(kind PropertyKind) *Question {
	step := StepProperties
	if kind == PropFormula {
		step = StepFormula
	}
	return &Question{
		ClaimID:  r.c.ID,
		Seq:      r.seq,
		Step:     step,
		Property: kind,
		Options:  r.planned[kind.String()],
	}
}

// Answer consumes the checker's answer to the pending question and
// advances the machine: to the next property screen, the formula screen,
// the final vote, or the finished outcome. seconds is the human effort
// the answer consumed; it accumulates into Outcome.Seconds.
//
// ctx bounds the expensive transition (buildFinal runs Algorithm 2). A
// cancelled Answer rolls every mutation back before returning, so the
// machine is left exactly as if the answer never arrived: the same answer
// can be reposted once the caller has a live context again.
func (r *ClaimRun) Answer(ctx context.Context, value string, seconds float64) error {
	// Entry checkpoint: a dead context refuses the answer before any
	// machine state mutates, so the caller can repost it verbatim. Only
	// buildFinal does expensive work, but cheap screens must give the
	// same all-or-nothing contract.
	if err := checkCancel(ctx); err != nil {
		return err
	}
	if r.pending == nil {
		return fmt.Errorf("core: claim %d: no pending question (run is done)", r.c.ID)
	}
	r.out.Seconds += seconds
	r.seq++
	switch r.step {
	case StepProperties:
		r.out.Screens++
		r.validated[contextKinds[r.propIdx]] = value
		r.propIdx++
		if r.propIdx < len(contextKinds) {
			r.pending = r.propertyQuestion(contextKinds[r.propIdx])
			return nil
		}
		// Context validated. A formula screen is asked only when the
		// planner selected one.
		if _, ok := r.planned[PropFormula.String()]; ok {
			r.step = StepFormula
			r.pending = r.propertyQuestion(PropFormula)
			return nil
		}
		if err := r.buildFinal(ctx); err != nil {
			r.propIdx--
			delete(r.validated, contextKinds[r.propIdx])
			r.out.Screens--
			r.out.Seconds -= seconds
			r.seq--
			return err
		}
	case StepFormula:
		r.out.Screens++
		nf := len(r.formulas)
		if f, err := r.e.parseFormula(value); err == nil {
			r.formulas = append(r.formulas, f)
		}
		if err := r.buildFinal(ctx); err != nil {
			r.formulas = r.formulas[:nf]
			r.out.Screens--
			r.out.Seconds -= seconds
			r.seq--
			return err
		}
	case StepFinal:
		r.finish(value)
	}
	return nil
}

// buildFinal runs steps 3-5 of the §5.1 flow: rank formulas (crowd answer
// first, classifier predictions next, library fallback on cold start),
// generate queries from the validated context (Algorithm 2), and emit the
// final screen with the surviving candidates, best first.
//
// On cancellation it restores r.formulas to its entry state and leaves
// step/pending untouched, so Answer can roll the whole transition back.
func (r *ClaimRun) buildFinal(ctx context.Context) error {
	entryFormulas := len(r.formulas)
	// Classifier formula predictions come from the cached assessment —
	// the same scoring pass that already fed the scheduler and planner
	// this round, so no extra softmax here.
	for _, prop := range r.e.assess(r.c).props {
		if prop.Name != PropFormula.String() {
			continue
		}
		for _, opt := range prop.Options {
			// Cached parse: the same canonical labels recur across every
			// claim of a generation.
			if f, err := r.e.parseFormula(opt.Value); err == nil {
				r.formulas = append(r.formulas, f)
			}
		}
	}
	if len(r.formulas) == 0 {
		for _, key := range r.e.lib.TopK(r.e.cfg.TopK) {
			if f, ok := r.e.lib.Get(key); ok {
				r.formulas = append(r.formulas, f)
			}
		}
	}

	qc := Context{
		Relations: SplitLabel(r.validated[PropRelation]),
		Keys:      SplitLabel(r.validated[PropKey]),
		Attrs:     SplitLabel(r.validated[PropAttr]),
	}
	solutions, alternates, err := r.e.GenerateQueries(ctx, qc, r.formulas, r.c.Param,
		r.c.HasParam && r.c.Kind == claims.Explicit)
	if err != nil {
		r.formulas = r.formulas[:entryFormulas]
		return err
	}

	shown := make([]string, 0, r.plan.FinalOptions)
	r.bySQL = make(map[string]GeneratedQuery)
	for _, g := range append(append([]GeneratedQuery(nil), solutions...), alternates...) {
		if len(shown) >= max(r.plan.FinalOptions, 1) {
			break
		}
		sql := g.Query.SQL()
		// Generation dedupes by (formula, slots); distinct formulas can
		// still render identical SQL (e.g. repeated attribute assignments
		// collapsing two variable patterns), so guard the screen itself —
		// a duplicate must not burn one of the checker's option slots.
		if _, dup := r.bySQL[sql]; dup {
			continue
		}
		shown = append(shown, sql)
		r.bySQL[sql] = g
	}
	r.step = StepFinal
	r.pending = &Question{
		ClaimID:    r.c.ID,
		Seq:        r.seq,
		Step:       StepFinal,
		Candidates: shown,
	}
	return nil
}

// finish resolves the voted query and judges the claim (step 6 of §5.1),
// producing the outcome and the training label fed back into Algorithm 1.
func (r *ClaimRun) finish(votedSQL string) {
	r.step = StepDone
	r.pending = nil
	out := r.out

	// Resolve the accepted query: a shown candidate, or the written/
	// suggested query (parse it; checkers may produce a corrupt string,
	// in which case the claim is skipped).
	var accepted *query.Query
	var acceptedValue float64
	if g, ok := r.bySQL[votedSQL]; ok {
		accepted = g.Query
		acceptedValue = g.Value
	} else {
		parsed, err := query.Parse(votedSQL)
		if err == nil {
			if v, err := parsed.Execute(r.e.corpus); err == nil {
				accepted = parsed
				acceptedValue = v
			}
		}
	}
	if accepted == nil {
		out.Verdict = VerdictSkipped
		return
	}

	c := r.c
	out.Query = accepted
	out.Value = acceptedValue
	op := c.Cmp
	switch {
	case c.Kind == claims.Explicit && c.HasParam:
		if claims.RelClose(acceptedValue, c.Param, r.e.cfg.Tolerance) {
			out.Verdict = VerdictCorrect
		} else {
			out.Verdict = VerdictIncorrect
			out.Suggestion = acceptedValue
			out.HasSuggestion = true
		}
	case c.HasParam:
		if op.Compare(acceptedValue, c.Param, r.e.cfg.Tolerance) {
			out.Verdict = VerdictCorrect
		} else {
			out.Verdict = VerdictIncorrect
			out.Suggestion = acceptedValue
			out.HasSuggestion = true
		}
	default:
		// General claim without a predictable parameter: the human
		// assesses the displayed value directly (Example 7); simulated
		// workers judge from the annotation's correct value. Without an
		// annotation nothing can be judged.
		if c.Truth == nil {
			out.Verdict = VerdictSkipped
			out.Query = nil
			return
		}
		if claims.RelClose(acceptedValue, c.Truth.Value, r.e.cfg.Tolerance) {
			out.Verdict = VerdictCorrect
		} else {
			out.Verdict = VerdictIncorrect
			out.Suggestion = acceptedValue
			out.HasSuggestion = true
		}
	}

	// The validated context plus the accepted query become a training
	// label (Algorithm 1 line 16: A <- W ∪ R).
	genF, _, err := formula.Generalize(accepted.Select)
	label := &claims.GroundTruth{
		Relations: SplitLabel(r.validated[PropRelation]),
		Keys:      SplitLabel(r.validated[PropKey]),
		Attrs:     SplitLabel(r.validated[PropAttr]),
		Value:     acceptedValue,
	}
	if err == nil {
		label.Formula = genF.String()
	}
	out.Label = label
}

// PumpClaim drives a ClaimRun to completion with a blocking Oracle: the
// canonical synchronous front end over the step machine. VerifyClaimWith
// is StartClaim + PumpClaim. ctx is checked before every oracle round, so
// a cancelled pump stops between answers.
func PumpClaim(ctx context.Context, r *ClaimRun, oracle Oracle) (*Outcome, error) {
	if r == nil {
		return nil, fmt.Errorf("core: nil claim run")
	}
	if oracle == nil {
		return nil, fmt.Errorf("core: nil oracle")
	}
	for !r.Done() {
		if err := checkCancel(ctx); err != nil {
			return nil, err
		}
		q := r.Question()
		var value string
		var secs float64
		if q.Step == StepFinal {
			value, secs = oracle.AnswerFinal(r.c, q.Candidates)
		} else {
			value, secs = oracle.AnswerProperty(r.c, q.Property, q.Options)
		}
		if err := r.Answer(ctx, value, secs); err != nil {
			return nil, err
		}
	}
	return r.Outcome(), nil
}

// DocumentRun is the resumable Algorithm 1 loop: batch selection, the
// per-claim question machines of the current batch, and the retrain
// barrier between batches. Answers for distinct claims may arrive from
// distinct goroutines; answers for one claim must be serialized by the
// caller (the session layer holds a per-session lock, the synchronous
// driver pumps each claim from a single goroutine). Batch bookkeeping is
// internally locked; when the last claim of a batch completes, the
// posting goroutine runs the retrain barrier and selects the next batch
// inline — a parked run therefore holds no goroutines at all.
type DocumentRun struct {
	e   *Engine
	doc *claims.Document
	vc  VerifyConfig

	mu        sync.Mutex
	remaining map[int]*claims.Claim
	labelled  []*claims.Claim
	res       *Result
	batchIDs  []int
	runs      map[int]*ClaimRun
	finished  int
	done      bool
	err       error

	// runCtx bounds the retrain barrier (completeBatch). It is
	// context.Background() by default: for session-owned runs the barrier
	// is a commit point — once the last answer of a batch is accepted it
	// runs to completion, because aborting halfway would strand a session
	// shared by many checkers (and warm-start retraining makes a re-run
	// barrier non-deterministic under answer-log replay). The synchronous
	// Verify driver overrides it with its own context: it owns the run and
	// discards it on error, so there is nothing to strand. Storing a
	// context in a struct is deliberate here — the run, not a call, is the
	// unit of cancellation for barrier work.
	runCtx context.Context
}

// StartDocument validates the document, selects the first batch and
// returns the run parked on its questions. vc.Checkers prices the
// per-section skim (Definition 8); the synchronous Verify driver sets it
// to the crowd team size. ctx bounds the initial batch selection only
// (the per-claim scoring scan is the expensive part of starting a run);
// a cancelled start returns an error with nothing registered anywhere.
func (e *Engine) StartDocument(ctx context.Context, doc *claims.Document, vc VerifyConfig) (*DocumentRun, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	vc = vc.withDefaults()
	dr := &DocumentRun{
		e:         e,
		doc:       doc,
		vc:        vc,
		remaining: make(map[int]*claims.Claim, len(doc.Claims)),
		res:       &Result{},
		runCtx:    context.Background(),
	}
	for _, c := range doc.Claims {
		dr.remaining[c.ID] = c
	}
	if len(dr.remaining) == 0 {
		dr.done = true
		obsRunStarted()
		obsRunCompleted()
		return dr, nil
	}
	if err := dr.selectBatch(ctx); err != nil {
		return nil, err
	}
	obsRunStarted()
	return dr, nil
}

// selectBatch is OptBatch (Algorithm 1): score every remaining claim
// under the current models, pick the next batch by the configured
// ordering, charge the section-skim cost and start the batch's claim
// machines. Caller holds dr.mu (or exclusive access during construction).
// The per-claim scoring scan dominates round latency on large documents,
// so ctx is checked on entry and again after the scan.
func (dr *DocumentRun) selectBatch(ctx context.Context) error {
	if err := checkCancel(ctx); err != nil {
		return err
	}
	e, vc := dr.e, dr.vc
	items := make([]scheduler.Item, 0, len(dr.remaining))
	ids := make([]int, 0, len(dr.remaining))
	for id := range dr.remaining {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	costs, utilities := e.assessAll(ctx, ids, dr.remaining, vc.Parallelism)
	if err := checkCancel(ctx); err != nil {
		return err
	}
	for i, id := range ids {
		items = append(items, scheduler.Item{
			ClaimID:    id,
			Section:    dr.remaining[id].Section,
			VerifyCost: costs[i],
			Utility:    utilities[i],
		})
	}
	batchSize := vc.BatchSize
	if batchSize > len(items) {
		batchSize = len(items)
	}
	budget := vc.BatchBudget
	if budget <= 0 {
		// Generous default: worst case all-manual batch plus all
		// section skims.
		budget = float64(batchSize)*e.cfg.Cost.ManualCost()*float64(vc.Checkers)*2 +
			float64(dr.doc.Sections)*vc.SectionReadCost
	}
	cfg := scheduler.Config{
		MaxCost:         budget,
		MinSize:         batchSize,
		MaxSize:         batchSize,
		SectionReadCost: vc.SectionReadCost,
		UtilityWeight:   vc.UtilityWeight,
		SolverOptions:   scheduler.DefaultSolverOptions(),
	}
	var batch *scheduler.Batch
	var err error
	switch vc.Ordering {
	case OrderSequential:
		batch, err = scheduler.SequentialBatch(items, cfg)
	case OrderGreedy:
		batch, err = scheduler.GreedyBatch(items, cfg)
	case OrderRandom:
		batch, err = scheduler.RandomBatch(items, cfg, vc.Seed+int64(dr.res.Batches))
	default:
		batch, err = scheduler.SelectBatch(items, cfg)
	}
	if err != nil {
		return err
	}
	if len(batch.ClaimIDs) == 0 {
		// Infeasible under the budget: fall back to document order so
		// progress is always made.
		fallback := ids
		if len(fallback) > batchSize {
			fallback = fallback[:batchSize]
		}
		batch = &scheduler.Batch{ClaimIDs: append([]int(nil), fallback...)}
		secs := map[int]bool{}
		for _, id := range batch.ClaimIDs {
			secs[dr.remaining[id].Section] = true
		}
		for s := range secs {
			batch.Sections = append(batch.Sections, s)
		}
	}

	// Section skimming cost (Definition 8), paid once per section per
	// batch by each checker.
	dr.res.Seconds += float64(len(batch.Sections)) * vc.SectionReadCost * float64(vc.Checkers)

	dr.batchIDs = append([]int(nil), batch.ClaimIDs...)
	dr.runs = make(map[int]*ClaimRun, len(dr.batchIDs))
	dr.finished = 0
	for _, id := range dr.batchIDs {
		r, err := e.StartClaim(dr.remaining[id])
		if err != nil {
			return fmt.Errorf("core: verifying claim %d: %w", id, err)
		}
		dr.runs[id] = r
	}
	obsRound()
	return nil
}

// completeBatch is the retrain barrier: collect the batch's outcomes in
// batch order, fold validated labels back into the training pool, retrain
// the four classifiers, and select the next batch (or finish). Caller
// holds dr.mu. Cancellation is governed by dr.runCtx, not the answer's
// context: for session-owned runs the barrier is a commit point (runCtx is
// Background), while the synchronous driver lets its own cancellation
// reach the retrain and next batch selection.
func (dr *DocumentRun) completeBatch() error {
	if err := checkCancel(dr.runCtx); err != nil {
		return err
	}
	outcomes := make([]*Outcome, len(dr.batchIDs))
	for i, id := range dr.batchIDs {
		c := dr.remaining[id]
		out := dr.runs[id].Outcome()
		outcomes[i] = out
		dr.res.Seconds += out.Seconds
		dr.res.Outcomes = append(dr.res.Outcomes, out)
		// Unanimous removal (Algorithm 1 line 18): every answered claim
		// leaves the pool, guaranteeing termination.
		delete(dr.remaining, id)
		if out.Label != nil {
			dr.labelled = append(dr.labelled, &claims.Claim{
				ID: c.ID, Text: c.Text, Sentence: c.Sentence,
				Section: c.Section, Kind: c.Kind,
				Param: c.Param, HasParam: c.HasParam,
				Truth: out.Label,
			})
		}
	}
	// Retrain (Algorithm 1 line 20), fanning the four independent models
	// out under the same parallelism knob as batch assessment.
	if len(dr.labelled) > 0 {
		if err := dr.e.train(dr.labelled, dr.vc.Parallelism); err != nil {
			return err
		}
		obsRetrain()
	}
	dr.res.Batches++
	if dr.vc.AfterBatch != nil {
		dr.vc.AfterBatch(dr.res.Batches, len(dr.res.Outcomes), outcomes)
	}
	dr.runs = nil
	dr.batchIDs = nil
	if len(dr.remaining) == 0 {
		dr.done = true
		obsRunCompleted()
		return nil
	}
	return dr.selectBatch(dr.runCtx)
}

// Done reports whether every claim has been verified (or the run failed;
// see Err).
func (dr *DocumentRun) Done() bool {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return dr.done || dr.err != nil
}

// Err returns the fatal error that stopped the run (retraining or batch
// selection failure), or nil.
func (dr *DocumentRun) Err() error {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return dr.err
}

// BatchClaims returns the claim IDs of the current batch in batch order.
func (dr *DocumentRun) BatchClaims() []int {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return append([]int(nil), dr.batchIDs...)
}

// Questions lists the pending question of every unfinished claim in the
// current batch, in batch order. Callers must not interleave it with
// concurrent Answer posts for the same run (the session layer serializes
// access; the synchronous driver reads only its own claim's question).
func (dr *DocumentRun) Questions() []*Question {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	out := make([]*Question, 0, len(dr.batchIDs))
	for _, id := range dr.batchIDs {
		if r := dr.runs[id]; r != nil && r.Question() != nil {
			out = append(out, r.Question())
		}
	}
	return out
}

// QuestionFor returns the pending question of one claim in the current
// batch, or nil when the claim is done or not part of the batch.
func (dr *DocumentRun) QuestionFor(claimID int) *Question {
	dr.mu.Lock()
	r := dr.runs[claimID]
	dr.mu.Unlock()
	if r == nil {
		return nil
	}
	return r.Question()
}

// Answer routes one answer to its claim's machine and returns the claim's
// next question (nil when the claim is finished). When the answer
// completes the batch's last claim, the same call runs the retrain
// barrier and selects the next batch before returning — Algorithm 1
// advances entirely inside answer posts, with no goroutine of its own.
//
// ctx bounds this answer's claim-machine transition only (Algorithm 2
// query generation); a cancelled answer is rolled back and repostable. The
// retrain barrier runs under dr.runCtx — see completeBatch.
func (dr *DocumentRun) Answer(ctx context.Context, claimID int, value string, seconds float64) (*Question, error) {
	dr.mu.Lock()
	if dr.err != nil {
		err := dr.err
		dr.mu.Unlock()
		return nil, err
	}
	r := dr.runs[claimID]
	dr.mu.Unlock()
	if r == nil {
		return nil, fmt.Errorf("core: claim %d has no pending question in the current batch", claimID)
	}
	// The claim machine advances outside the run lock so answers for
	// distinct claims execute concurrently (query generation is the
	// expensive part); per-claim serialization is the caller's contract.
	if err := r.Answer(ctx, value, seconds); err != nil {
		return nil, err
	}
	if !r.Done() {
		return r.Question(), nil
	}
	dr.mu.Lock()
	defer dr.mu.Unlock()
	dr.finished++
	if dr.finished == len(dr.batchIDs) {
		if err := dr.completeBatch(); err != nil {
			dr.err = err
			return nil, err
		}
	}
	return nil, nil
}

// Pump drives one claim of the current batch to completion with a
// blocking Oracle — the per-claim synchronous front end the parallel
// Verify driver fans out across goroutines. ctx is checked before every
// oracle round, so a cancelled pump stops between answers.
func (dr *DocumentRun) Pump(ctx context.Context, claimID int, oracle Oracle) error {
	dr.mu.Lock()
	r := dr.runs[claimID]
	c := dr.remaining[claimID]
	dr.mu.Unlock()
	if r == nil {
		return fmt.Errorf("core: claim %d is not part of the current batch", claimID)
	}
	for {
		if err := checkCancel(ctx); err != nil {
			return err
		}
		q := r.Question()
		if q == nil {
			return nil
		}
		var value string
		var secs float64
		if q.Step == StepFinal {
			value, secs = oracle.AnswerFinal(c, q.Candidates)
		} else {
			value, secs = oracle.AnswerProperty(c, q.Property, q.Options)
		}
		if _, err := dr.Answer(ctx, claimID, value, secs); err != nil {
			return err
		}
	}
}

// Progress is a point-in-time view of a document run.
type Progress struct {
	// Verified is the number of completed claims, Total the document's
	// claim count.
	Verified, Total int
	// Batches is the number of completed batches.
	Batches int
	// Pending is the number of questions currently awaiting answers.
	Pending int
	// Answered counts answers consumed so far.
	Answered int
	// Seconds is the crowd time accumulated so far (completed claims
	// plus section skims).
	Seconds float64
	// Done reports whether the run has finished.
	Done bool
}

// Progress reports the run's current position in Algorithm 1.
func (dr *DocumentRun) Progress() Progress {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	p := Progress{
		Verified: len(dr.res.Outcomes),
		Total:    len(dr.doc.Claims),
		Batches:  dr.res.Batches,
		Done:     dr.done,
	}
	for _, id := range dr.batchIDs {
		if r := dr.runs[id]; r != nil {
			p.Answered += r.seq
			if r.Question() != nil {
				p.Pending++
			}
		}
	}
	p.Answered += dr.answeredFinished()
	p.Seconds = dr.res.Seconds + dr.pendingSeconds()
	return p
}

// answeredFinished counts the screens consumed by already-finished
// claims (their machines are gone; outcomes remember the screen count
// plus the final vote).
func (dr *DocumentRun) answeredFinished() int {
	n := 0
	for _, out := range dr.res.Outcomes {
		n += out.Screens + 1 // +1: the final vote is not a Screens entry
	}
	return n
}

// pendingSeconds sums the crowd time already charged to claims of the
// current batch; their outcomes are folded into res only at the batch
// barrier.
func (dr *DocumentRun) pendingSeconds() float64 {
	var s float64
	for _, id := range dr.batchIDs {
		if r := dr.runs[id]; r != nil {
			s += r.out.Seconds
		}
	}
	return s
}

// Outcomes returns a copy of the outcomes accumulated so far, in batch
// order (partial while the run is live, complete once Done).
func (dr *DocumentRun) Outcomes() []*Outcome {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return append([]*Outcome(nil), dr.res.Outcomes...)
}

// Result returns the aggregated result once the run is done; it errors
// while claims are still pending so partial reads stay explicit (use
// Outcomes/Progress for those).
func (dr *DocumentRun) Result() (*Result, error) {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	if dr.err != nil {
		return nil, dr.err
	}
	if !dr.done {
		return nil, fmt.Errorf("core: document run has %d claims pending", len(dr.remaining))
	}
	return dr.res, nil
}
