package core

import (
	"context"
	"fmt"
)

// Cancellation design: verification is CPU-bound work driven entirely by
// caller goroutines (the engine spawns none of its own beyond bounded
// runPool fan-outs that always drain), so cancellation is cooperative —
// cheap checkpoints at the natural joints of Algorithm 1 and Algorithm 2
// rather than preemption. The checkpoints are:
//
//   - round boundaries: Engine.Verify checks before pumping each batch and
//     before every oracle round (Pump/PumpClaim), so a cancelled batch run
//     stops between answers without ever entering the retrain barrier.
//   - batch-selection scans: selectBatch checks on entry and around the
//     assessAll scoring pass, and assessAll itself skips per-claim scoring
//     once the context is dead — on a large corpus this scan is the long
//     pole of a round, so it must not run to completion for a caller that
//     has hung up.
//   - Algorithm 2 enumeration: enumerate polls the context every
//     enumCheckEvery assignments. A cancelled enumeration is aborted
//     without caching (a partial entry must never be served as complete)
//     and the claim machine rolls the in-flight answer back, so the same
//     answer can be reposted — cancellation mid-answer is retryable, not
//     fatal.
//   - retrain barriers: completeBatch checks the run-owning context
//     (DocumentRun.runCtx) before retraining and before selecting the next
//     batch. Only the synchronous driver (Engine.Verify) installs a
//     cancellable runCtx — it owns the run and discards it on error.
//     Session-owned runs keep runCtx = Background: once the last answer of
//     a batch is accepted, the barrier is a commit point that runs to
//     completion, because aborting it halfway would strand a session
//     shared by many checkers over the disconnect of one.
//
// ErrCancelled wraps the context error, so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) both work
// through it.

// checkCancel is the cancellation checkpoint: it returns nil while ctx is
// live and a wrapped ctx.Err() once it is done. For context.Background()
// (Done() == nil) the select always takes the default arm, so uncancellable
// callers pay one nil-channel poll per checkpoint.
func checkCancel(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("core: verification cancelled: %w", ctx.Err())
	default:
		return nil
	}
}

// enumCheckEvery is how many Algorithm 2 assignments enumerate tries
// between context polls. Assignments cost ~a microsecond each, so the
// response latency to cancellation stays well under a millisecond while
// the poll itself (a nil-channel select for undeadlined contexts) stays
// out of the per-assignment hot path.
const enumCheckEvery = 256
