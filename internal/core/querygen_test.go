package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/formula"
)

func TestInjectiveAssignments(t *testing.T) {
	got := injectiveAssignments([]string{"x", "y"}, 2)
	want := [][]string{{"x", "y"}, {"y", "x"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("injective = %v", got)
	}
	if got := injectiveAssignments([]string{"x"}, 2); got != nil {
		t.Errorf("too few values should be nil, got %v", got)
	}
	if got := injectiveAssignments([]string{"x"}, 0); len(got) != 1 || got[0] != nil {
		t.Errorf("n=0 should be a single empty assignment, got %v", got)
	}
	// 3 choose 2 ordered = 6.
	if got := injectiveAssignments([]string{"a", "b", "c"}, 2); len(got) != 6 {
		t.Errorf("P(3,2) = %d, want 6", len(got))
	}
}

func TestRepeatedAssignments(t *testing.T) {
	got := repeatedAssignments([]string{"x", "y"}, 2)
	if len(got) != 4 {
		t.Errorf("2^2 = %d, want 4", len(got))
	}
	if got := repeatedAssignments(nil, 2); got != nil {
		t.Errorf("no values should be nil, got %v", got)
	}
	if got := repeatedAssignments([]string{"x"}, 0); len(got) != 1 {
		t.Errorf("n=0 = %v", got)
	}
}

func TestDedupeQueries(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	f, err := formula.ParseFormula(c.Truth.Formula)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Relations: c.Truth.Relations, Keys: c.Truth.Keys, Attrs: c.Truth.Attrs}
	// Passing the same formula twice must not duplicate outputs.
	s1, a1, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f}, c.Param, c.HasParam)
	s2, a2, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f, f}, c.Param, c.HasParam)
	if len(s2) != len(s1) || len(a2) != len(a1) {
		t.Errorf("duplicate formula changed outputs: (%d,%d) vs (%d,%d)",
			len(s1), len(a1), len(s2), len(a2))
	}
}

func TestGenerateQueriesBudget(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	e.cfg.MaxAssignments = 1 // starve the enumeration
	c := w.Document.Claims[0]
	f, err := formula.ParseFormula(c.Truth.Formula)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Relations: c.Truth.Relations, Keys: c.Truth.Keys, Attrs: c.Truth.Attrs}
	sols, alts, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f}, c.Param, c.HasParam)
	if len(sols)+len(alts) > 1 {
		t.Errorf("budget 1 produced %d queries", len(sols)+len(alts))
	}
}

func TestTruthQueryErrors(t *testing.T) {
	e, _ := buildEngine(t, tinyWorld())
	if _, err := e.TruthQuery(nil); err == nil {
		t.Error("nil claim accepted")
	}
	mk := func(f string, rels, keys, attrs []string) *claims.Claim {
		return &claims.Claim{ID: 1, Truth: &claims.GroundTruth{
			Relations: rels, Keys: keys, Attrs: attrs, Formula: f,
		}}
	}
	if _, err := e.TruthQuery(mk("((((", []string{"R"}, []string{"K"}, []string{"2017"})); err == nil {
		t.Error("malformed formula accepted")
	}
	if _, err := e.TruthQuery(mk("a.A1", nil, []string{"K"}, []string{"2017"})); err == nil {
		t.Error("missing relations accepted")
	}
	if _, err := e.TruthQuery(mk("a.A1 / b.A2", []string{"R"}, []string{"K"}, []string{"2017"})); err == nil {
		t.Error("too few attrs accepted")
	}
}
