package core

import (
	"testing"

	"github.com/repro/scrutinizer/internal/table"
)

func testCorpusPair(t *testing.T) (*table.Corpus, *table.Corpus) {
	t.Helper()
	mk := func() *table.Corpus {
		c := table.NewCorpus()
		r := table.MustNewRelation("R", "Index", []string{"2017"})
		if err := r.AddRow("k", []float64{1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
		return c
	}
	return mk(), mk()
}

// TestQueryCacheGenerationFlushResetsBytes pins the byte accounting across
// generation flushes: a get() at a new generation must drop the retained
// bytes along with the entries, or eviction eventually degrades the cache
// to a single entry for the life of the process.
func TestQueryCacheGenerationFlushResetsBytes(t *testing.T) {
	c, _ := testCorpusPair(t)
	qc := NewQueryCache()
	big := &tentEntry{
		stride:   1,
		explored: 4,
		complete: true,
		attempts: make([]int32, 4),
		slots:    make([]int32, 4),
		values:   make([]float64, 4),
	}
	qc.put(c, 1, "k1", big)
	if qc.bytes != big.size() {
		t.Fatalf("bytes = %d, want %d", qc.bytes, big.size())
	}
	// get() at a newer generation flushes entries AND bytes.
	if _, ok := qc.get(c, 2, "k1", 10); ok {
		t.Fatal("stale-generation entry served")
	}
	if qc.bytes != 0 {
		t.Fatalf("bytes after generation flush = %d, want 0", qc.bytes)
	}
	qc.put(c, 2, "k2", big)
	if qc.bytes != big.size() {
		t.Fatalf("bytes accumulated stale residue: %d, want %d", qc.bytes, big.size())
	}
	if len(qc.entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(qc.entries))
	}
}

// TestQueryCacheCorpusOwnershipGuard: slot tuples are only meaningful
// against the corpus they were enumerated from; a differently owned corpus
// with a colliding generation must flush, never serve.
func TestQueryCacheCorpusOwnershipGuard(t *testing.T) {
	a, b := testCorpusPair(t)
	if a.Generation() != b.Generation() {
		t.Fatal("fixture corpora should share a generation for the collision")
	}
	qc := NewQueryCache()
	entry := &tentEntry{stride: 1, explored: 1, complete: true}
	gen := a.Generation()
	qc.put(a, gen, "k", entry)
	if _, ok := qc.get(a, gen, "k", 10); !ok {
		t.Fatal("owner corpus missed its own entry")
	}
	if _, ok := qc.get(b, gen, "k", 10); ok {
		t.Fatal("entry computed for corpus A served for corpus B")
	}
}
