package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/repro/scrutinizer/internal/table"
)

func testCorpusPair(t *testing.T) (*table.Corpus, *table.Corpus) {
	t.Helper()
	mk := func() *table.Corpus {
		c := table.NewCorpus()
		r := table.MustNewRelation("R", "Index", []string{"2017"})
		if err := r.AddRow("k", []float64{1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
		return c
	}
	return mk(), mk()
}

// TestQueryCacheGenerationFlushResetsBytes pins the byte accounting across
// generation flushes: a get() at a new generation must drop the retained
// bytes along with the entries, or eviction eventually degrades the cache
// to a single entry for the life of the process.
func TestQueryCacheGenerationFlushResetsBytes(t *testing.T) {
	c, _ := testCorpusPair(t)
	qc := NewQueryCache()
	big := &tentEntry{
		stride:   1,
		explored: 4,
		complete: true,
		attempts: make([]int32, 4),
		slots:    make([]int32, 4),
		values:   make([]float64, 4),
	}
	qc.put(c, 1, "k1", big)
	if got := qc.totalBytes(); got != big.size() {
		t.Fatalf("bytes = %d, want %d", got, big.size())
	}
	// get() at a newer generation flushes entries AND bytes.
	if _, ok := qc.get(c, 2, "k1", 10); ok {
		t.Fatal("stale-generation entry served")
	}
	if got := qc.totalBytes(); got != 0 {
		t.Fatalf("bytes after generation flush = %d, want 0", got)
	}
	qc.put(c, 2, "k2", big)
	if got := qc.totalBytes(); got != big.size() {
		t.Fatalf("bytes accumulated stale residue: %d, want %d", got, big.size())
	}
	if got := qc.totalEntries(); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
}

// TestQueryCacheConcurrentStats hammers get/put/peek from many goroutines
// while others poll Stats(), under -race: the hit/miss counters are atomics
// and Stats aggregates per-shard state, so no interleaving may race or
// lose counts. The final hit+miss total must equal the exact number of
// get() calls issued (peek counts nothing).
func TestQueryCacheConcurrentStats(t *testing.T) {
	c, _ := testCorpusPair(t)
	qc := NewQueryCache()
	gen := c.Generation()

	const workers = 8
	const opsPerWorker = 2000
	var hammer, pollers sync.WaitGroup
	stop := make(chan struct{})
	// Stats pollers run for the whole hammer window.
	for p := 0; p < 2; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := qc.Stats()
				if s.Hits+s.Misses > workers*opsPerWorker {
					t.Errorf("counters overran: hits=%d misses=%d", s.Hits, s.Misses)
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		hammer.Add(1)
		go func(w int) {
			defer hammer.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := fmt.Sprintf("k%d", (w*opsPerWorker+i)%64)
				if _, ok := qc.get(c, gen, key, 1); !ok {
					qc.put(c, gen, key, &tentEntry{stride: 1, explored: 1, complete: true})
				}
				qc.peek(c, gen, key, 1)
			}
		}(w)
	}
	hammer.Wait()
	close(stop)
	pollers.Wait()

	s := qc.Stats()
	if got := s.Hits + s.Misses; got != workers*opsPerWorker {
		t.Fatalf("hits+misses = %d, want %d (lost updates)", got, workers*opsPerWorker)
	}
	if s.Shards != QueryCacheShards {
		t.Fatalf("Stats.Shards = %d, want %d", s.Shards, QueryCacheShards)
	}
	if s.Entries == 0 || s.Entries > 64 {
		t.Fatalf("Entries = %d, want in (0, 64]", s.Entries)
	}
}

// TestQueryCacheShardedEviction pins that the per-shard caps still bound
// the cache globally: pushing far more keys than queryCacheCap leaves at
// most queryCacheCap entries, and byte accounting stays consistent with
// the surviving entries.
func TestQueryCacheShardedEviction(t *testing.T) {
	c, _ := testCorpusPair(t)
	qc := NewQueryCache()
	gen := c.Generation()
	entry := func() *tentEntry {
		return &tentEntry{
			stride: 1, explored: 1, complete: true,
			attempts: make([]int32, 2), slots: make([]int32, 2), values: make([]float64, 2),
		}
	}
	const keys = 4 * queryCacheCap
	for i := 0; i < keys; i++ {
		qc.put(c, gen, fmt.Sprintf("k%06d", i), entry())
	}
	n := qc.totalEntries()
	if n > queryCacheCap {
		t.Fatalf("entries = %d, want <= %d", n, queryCacheCap)
	}
	if n == 0 {
		t.Fatal("eviction emptied the cache")
	}
	if got, want := qc.totalBytes(), n*entry().size(); got != want {
		t.Fatalf("bytes = %d, want %d (%d entries x %d)", got, want, n, entry().size())
	}
}

// TestQueryCacheCorpusOwnershipGuard: slot tuples are only meaningful
// against the corpus they were enumerated from; a differently owned corpus
// with a colliding generation must flush, never serve.
func TestQueryCacheCorpusOwnershipGuard(t *testing.T) {
	a, b := testCorpusPair(t)
	if a.Generation() != b.Generation() {
		t.Fatal("fixture corpora should share a generation for the collision")
	}
	qc := NewQueryCache()
	entry := &tentEntry{stride: 1, explored: 1, complete: true}
	gen := a.Generation()
	qc.put(a, gen, "k", entry)
	if _, ok := qc.get(a, gen, "k", 10); !ok {
		t.Fatal("owner corpus missed its own entry")
	}
	if _, ok := qc.get(b, gen, "k", 10); ok {
		t.Fatal("entry computed for corpus A served for corpus B")
	}
}
