package core

import (
	"bytes"
	"context"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// batchFixture builds one world and feature pipeline that several engines
// (batch-scored, sequential-scored, different formula fan-outs) share, so
// every equivalence test below compares engines over identical inputs.
func batchFixture(t testing.TB) (*worldgen.World, *feature.Pipeline) {
	t.Helper()
	w, err := worldgen.Generate(tinyWorld())
	if err != nil {
		t.Fatal(err)
	}
	var sentences, texts []string
	for _, c := range w.Document.Claims {
		sentences = append(sentences, c.Sentence)
		texts = append(texts, c.Text)
	}
	pipe, err := feature.Fit(sentences, texts, feature.Config{
		Embedding: embed.Config{Dim: 24, Seed: 5},
		MinDF:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, pipe
}

// engineOver builds an engine over the fixture with an optional config hook.
func engineOver(t testing.TB, w *worldgen.World, pipe *feature.Pipeline, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Classifier.Epochs = 4
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(w.Corpus, pipe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mustEqualRuns asserts two full verification results are bit-identical.
func mustEqualRuns(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Seconds != b.Seconds || a.Batches != b.Batches {
		t.Fatalf("%s: seconds/batches %v/%d vs %v/%d", label, a.Seconds, a.Batches, b.Seconds, b.Batches)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("%s: outcome counts %d vs %d", label, len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.ClaimID != y.ClaimID || x.Verdict != y.Verdict || x.Seconds != y.Seconds ||
			x.Value != y.Value || x.Suggestion != y.Suggestion ||
			x.HasSuggestion != y.HasSuggestion || x.Screens != y.Screens {
			t.Fatalf("%s: outcome %d diverged:\n  %+v\n  %+v", label, i, x, y)
		}
		xq, yq := "", ""
		if x.Query != nil {
			xq = x.Query.SQL()
		}
		if y.Query != nil {
			yq = y.Query.SQL()
		}
		if xq != yq {
			t.Fatalf("%s: outcome %d query differs:\n  %q\n  %q", label, i, xq, yq)
		}
	}
}

// TestAssessBatchMatchesSequential: the batch assessment fill (assessMany,
// one dense scoring pass per property kind) must produce scheduler inputs
// bit-identical to the legacy per-claim path, untrained, trained, after a
// partial warm-up (only never-seen claims get batch-scored), and across a
// retrain that bumps the model generation.
func TestAssessBatchMatchesSequential(t *testing.T) {
	w, pipe := batchFixture(t)
	batch := engineOver(t, w, pipe, nil)
	seq := engineOver(t, w, pipe, nil)
	seq.seqAssess = true

	ids := make([]int, 0, len(w.Document.Claims))
	pool := make(map[int]*claims.Claim, len(w.Document.Claims))
	for _, c := range w.Document.Claims {
		ids = append(ids, c.ID)
		pool[c.ID] = c
	}

	check := func(stage string, sub []int) {
		t.Helper()
		cb, ub := batch.assessAll(context.Background(), sub, pool, 4)
		cs, us := seq.assessAll(context.Background(), sub, pool, 1)
		for i := range sub {
			if cb[i] != cs[i] || ub[i] != us[i] {
				t.Fatalf("%s: claim %d batch (%v, %v) != sequential (%v, %v)",
					stage, sub[i], cb[i], ub[i], cs[i], us[i])
			}
		}
	}

	check("untrained", ids)
	train := func(cs []*claims.Claim) {
		t.Helper()
		if err := batch.Train(cs); err != nil {
			t.Fatal(err)
		}
		if err := seq.Train(cs); err != nil {
			t.Fatal(err)
		}
	}
	train(w.Document.Claims)
	// Warm a prefix first: the following full pass must batch-score only
	// the claims the cache has never seen at this generation.
	check("trained prefix", ids[:len(ids)/3])
	check("trained full", ids)
	// Same generation again: pure cache reads on both paths.
	check("trained cached", ids)
	// Retrain bumps the generation; every claim is stale again.
	train(w.Document.Claims[:len(w.Document.Claims)/2])
	check("retrained", ids)
}

// TestVerifyBatchScoredMatchesSequential is the DocumentRun acceptance
// criterion: a full Algorithm 1 run on the batch-scored scheduler produces
// verdicts, crowd seconds, screens and queries bit-identical to the legacy
// per-claim scoring path. Run under -race this also exercises the batch
// fill's concurrency.
func TestVerifyBatchScoredMatchesSequential(t *testing.T) {
	w, pipe := batchFixture(t)
	vc := VerifyConfig{BatchSize: 15, SectionReadCost: 30, Parallelism: 4}

	run := func(e *Engine) *Result {
		t.Helper()
		team, err := crowd.NewTeam("W", 3, 0.97, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Verify(context.Background(), w.Document, team, vc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seq := engineOver(t, w, pipe, nil)
	seq.seqAssess = true
	want := run(seq)
	got := run(engineOver(t, w, pipe, nil))
	mustEqualRuns(t, "batch-scored vs per-claim", want, got)
}

// TestVerifyFormulaParallelismEquivalence: parallel Algorithm 2 enumeration
// across a claim's candidate formulas must not change any result. The
// fan-out is forced explicitly — on a single-core runner the default
// degrades to sequential, which would make this test vacuous.
func TestVerifyFormulaParallelismEquivalence(t *testing.T) {
	w, pipe := batchFixture(t)
	vc := VerifyConfig{BatchSize: 15, SectionReadCost: 30, Parallelism: 2}

	run := func(formulaPar int) *Result {
		t.Helper()
		e := engineOver(t, w, pipe, func(c *Config) { c.FormulaParallelism = formulaPar })
		team, err := crowd.NewTeam("W", 3, 0.97, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Verify(context.Background(), w.Document, team, vc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(1)
	got := run(4)
	mustEqualRuns(t, "formula fan-out 4 vs sequential", want, got)
}

// goid extracts the current goroutine's ID from the runtime stack header —
// test-only plumbing to observe which goroutine ran a runPool job.
func goid() uint64 {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	// "goroutine 123 [...":
	buf = bytes.TrimPrefix(buf, []byte("goroutine "))
	if i := bytes.IndexByte(buf, ' '); i >= 0 {
		buf = buf[:i]
	}
	id, _ := strconv.ParseUint(string(buf), 10, 64)
	return id
}

// TestRunPoolInlineAndOrdered pins the runPool fast paths: a single job
// runs inline on the caller's goroutine regardless of requested fan-out,
// and parallelism <= 1 runs all jobs inline in index order.
func TestRunPoolInlineAndOrdered(t *testing.T) {
	caller := goid()

	var oneOn uint64
	runPool(1, 64, func(i int) { oneOn = goid() })
	if oneOn != caller {
		t.Fatalf("runPool(1, 64) ran job on goroutine %d, want caller %d", oneOn, caller)
	}

	var order []int
	runPool(5, 1, func(i int) {
		if g := goid(); g != caller {
			t.Errorf("sequential runPool ran job %d on goroutine %d, want caller %d", i, g, caller)
		}
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential runPool order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("sequential runPool ran %d jobs, want 5", len(order))
	}

	// n == 0 must be a no-op, not a hang.
	runPool(0, 4, func(i int) { t.Error("runPool(0, ...) invoked fn") })
}

// TestRunPoolCapsWorkersAtJobs: asking for a huge fan-out over two jobs
// must spawn (at most) two workers, never the requested 64. Both jobs
// block until both have started, forcing both workers live, and the second
// arrival samples the goroutine count.
func TestRunPoolCapsWorkersAtJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	var mu sync.Mutex
	started := 0
	during := 0
	barrier := make(chan struct{})
	runPool(2, 64, func(i int) {
		mu.Lock()
		started++
		last := started == 2
		mu.Unlock()
		if last {
			during = runtime.NumGoroutine()
			close(barrier)
		} else {
			<-barrier
		}
	})
	if extra := during - before; extra > 8 {
		t.Fatalf("runPool(2, 64) grew goroutines by %d, want ~2 (workers capped at job count)", extra)
	}
	if started != 2 {
		t.Fatalf("ran %d jobs, want 2", started)
	}
}

// TestSpawnReleaseReuse: an engine released after a full run (which
// retrained it at every batch barrier) and re-spawned from the snapshot
// must behave bit-identically to a pristine spawn, and re-priming clears
// the per-run caches.
func TestSpawnReleaseReuse(t *testing.T) {
	w, pipe := batchFixture(t)
	e := engineOver(t, w, pipe, nil)
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()

	run := func(eng *Engine) *Result {
		t.Helper()
		team, err := crowd.NewTeam("W", 3, 0.97, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Verify(context.Background(), w.Document, team, VerifyConfig{BatchSize: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(snap.Spawn()) // pristine reference, never released

	// Deterministic re-prime check (sync.Pool reuse is best-effort, so the
	// dirty->pristine transition is exercised directly too).
	dirty := snap.Spawn()
	run(dirty)
	if dirty.Generation() == snap.Generation() {
		t.Fatal("run should have retrained the spawned engine past the snapshot generation")
	}
	dirty.reprime(snap)
	mustEqualRuns(t, "re-primed dirty engine vs pristine spawn", want, run(dirty))

	// Release / Spawn round trip through the pool.
	used := snap.Spawn()
	run(used)
	used.Release()
	if len(used.featCache) != 0 || len(used.assessed) != 0 {
		t.Fatal("Release must clear the per-run caches")
	}
	re := snap.Spawn()
	if re == used {
		t.Log("pool recycled the released engine")
	}
	mustEqualRuns(t, "respawn after release vs pristine spawn", want, run(re))

	// Release is a no-op on double release, non-spawned and nil engines.
	re.Release()
	re.Release()
	e.Release()
	var nilEngine *Engine
	nilEngine.Release()
}
