package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/repro/scrutinizer/internal/claims"
)

// DefaultParallelism is the fan-out Verify uses when callers ask for
// "as parallel as the hardware allows". It follows GOMAXPROCS rather than
// the physical CPU count so runtime-limited environments (container
// quotas, `go test -cpu N`) get the fan-out they actually scheduled.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// defaultFormulaParallelism bounds the per-claim Algorithm 2 formula
// fan-out: formula lists are short (top-k predictions), so a small cap
// avoids spawning workers that would idle immediately.
func defaultFormulaParallelism() int {
	if p := runtime.GOMAXPROCS(0); p < 4 {
		return p
	}
	return 4
}

// runPool invokes fn(0..n-1) across at most parallelism goroutines and
// waits for completion. Workers are capped at the job count — idle
// goroutines are never spawned — and a single job (or parallelism <= 1)
// runs as a plain call on the caller's goroutine with no channel
// round-trip. fn must write results into its own index of a pre-sized
// slice, which keeps output ordering independent of goroutine
// interleaving.
func runPool(n, parallelism int, fn func(i int)) {
	if parallelism > n {
		parallelism = n
	}
	if n == 1 {
		fn(0)
		return
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// assessAll scores cost and utility for every claim (the scheduler inputs).
// The batch path (assessMany) fills the assessment cache for the whole
// round first — one dense scoring pass per property kind over every stale
// claim — so the per-claim reads below are cache hits; the seqAssess test
// hook skips the batch fill, leaving the legacy per-claim scoring as the
// reference implementation. Results come back indexed like ids.
//
// Once ctx is cancelled the per-claim pass skips the remaining claims
// (their scores are left zero); the caller (selectBatch) re-checks the
// context right after and discards the partial scan, so a dead request
// never pays for a full document scoring sweep.
func (e *Engine) assessAll(ctx context.Context, ids []int, pool map[int]*claims.Claim, parallelism int) ([]float64, []float64) {
	if !e.seqAssess {
		cs := make([]*claims.Claim, len(ids))
		for i, id := range ids {
			cs[i] = pool[id]
		}
		e.assessMany(cs, parallelism)
	}
	costs := make([]float64, len(ids))
	utilities := make([]float64, len(ids))
	done := ctx.Done()
	runPool(len(ids), parallelism, func(i int) {
		if done != nil {
			select {
			case <-done:
				return
			default:
			}
		}
		costs[i], utilities[i] = e.Assess(pool[ids[i]])
	})
	return costs, utilities
}
