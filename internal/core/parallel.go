package core

import (
	"runtime"
	"sync"

	"github.com/repro/scrutinizer/internal/claims"
)

// DefaultParallelism is the fan-out Verify uses when callers ask for
// "as parallel as the hardware allows".
func DefaultParallelism() int { return runtime.NumCPU() }

// runPool invokes fn(0..n-1) across at most parallelism goroutines and
// waits for completion. With parallelism <= 1 it degenerates to a plain
// loop on the caller's goroutine. fn must write results into its own index
// of a pre-sized slice, which keeps output ordering independent of
// goroutine interleaving.
func runPool(n, parallelism int, fn func(i int)) {
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// assessAll scores cost and utility for every claim (the scheduler inputs),
// fanning the per-claim scoring passes out across goroutines. Assess only
// reads model state, so the fan-out is ordering-free; results come back
// indexed like ids.
func (e *Engine) assessAll(ids []int, pool map[int]*claims.Claim, parallelism int) ([]float64, []float64) {
	costs := make([]float64, len(ids))
	utilities := make([]float64, len(ids))
	runPool(len(ids), parallelism, func(i int) {
		costs[i], utilities[i] = e.Assess(pool[ids[i]])
	})
	return costs, utilities
}

