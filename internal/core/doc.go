// Package core implements the Scrutinizer engine itself: the four property
// classifiers glued to the feature pipeline (§3.1), query generation from
// classifier candidates (Algorithm 2), single-claim verification through
// planned question screens answered by a crowd (§5.1), and the main
// batch-verification loop with claim ordering (Algorithm 1, §5.2).
//
// # Generation-scoped batch assessment
//
// Algorithm 1's scheduler needs the expected cost v(c) and training utility
// u(c) of every remaining claim before every batch. Assessments are cached
// per claim and stamped with the engine's model generation — a counter
// bumped by every retrain — so a round that did not retrain re-reads them
// for free, and a retrain invalidates all of them at once without touching
// the cache.
//
// Stale claims are not re-scored one at a time. Before the per-claim reads,
// assessMany collects every claim whose cached assessment is missing or
// from an older generation, featurises them across the verify worker pool,
// and scores all of them per property kind through a single
// classifier.AnalyzeBatch call — one dense matrix pass per kind per round
// instead of four scoring passes per claim. Candidate options and property
// lists for the whole round are carved from shared arenas, and question
// plans are built across the same pool. The filled cache entries are
// indistinguishable from the legacy per-claim path (pinned by equivalence
// tests; the seqAssess hook preserves that path as the reference
// implementation).
//
// # Formula cache
//
// Formula strings recur relentlessly: every claim's ground truth is
// consulted each batch, every generated query renders its formula, every
// enumeration compiles it. The engine routes all of that through one
// internal cache keyed by both source string and parsed node, memoizing the
// parse, the canonical rendering, the alias list and the compiled program.
// Snapshots and spawned engines share the cache across a verifier's whole
// lineage — it holds derived, immutable data only.
//
// # Pooled run engines
//
// A ModelSnapshot freezes an engine's trained state; Spawn turns it back
// into a private engine that a verification run may retrain freely. Released
// engines (Engine.Release) return to the snapshot's pool, and the next
// Spawn re-primes one in place — classifier weights copy into the existing
// buffers, per-run caches keep their capacity — so a service handling many
// short runs allocates the engine machinery once, not per request.
//
// # Parallelism
//
// One claim batch is verified across VerifyConfig.Parallelism goroutines,
// and within a claim, Algorithm 2 enumeration fans out across candidate
// formulas under Config.FormulaParallelism (misses are pre-enumerated into
// the query cache at full budget, which serves any smaller budget
// identically). Per-claim crowd random streams and deterministic merge
// order make every result bit-identical to a sequential run, whatever the
// fan-out — the repository's standing determinism contract, pinned by the
// equivalence tests in this package.
//
// # Lock domains
//
// Concurrent runs (many engines spawned from one verifier, many verifiers
// over one corpus) share exactly three mutable structures, each with its
// own isolated lock domain so the serving hot path never funnels through
// a single mutex:
//
//   - QueryCache: striped QueryCacheShards ways by key hash. Each shard
//     owns a mutex, an entry map and a FIFO eviction budget; hit/miss
//     counters are atomics. A top-level RWMutex guards only the
//     (corpus, generation) epoch — lookups share it read-side and then
//     touch one shard, while an epoch transition (corpus mutation) takes
//     it write-side to flush every shard atomically.
//   - feature.Pipeline memo: a sync.Map of write-once (sentence, claim)
//     vectors — steady-state reads are lock-free, and concurrent first
//     computes of the same key converge on one shared vector.
//   - table.Corpus index: an atomic.Pointer snapshot validated by a
//     generation compare; readers never block, and a mutex serialises
//     rebuilds only.
//
// Everything else an engine touches is either private to its run (claim
// state, assessment cache, scratch buffers) or immutable after
// construction (ModelSnapshot weights, the fitted pipeline, corpus
// relations under the service's freeze-on-first-verifier rule), which is
// what makes the sharing above sufficient. The same discipline continues
// one layer up: session.Manager splits its registry RWMutex from the
// per-session locks and serves activity stamps and stats from per-session
// atomics, and Verifier counts runs atomically so StartRun never contends
// with Retrain.
//
// # Cancellation
//
// Every entry point that can do unbounded work takes a context.Context,
// and cancellation is cooperative: cheap checkpoints at the natural joints
// of Algorithm 1 (round boundaries, batch-selection scans, retrain
// barriers) and Algorithm 2 (every enumCheckEvery enumerated assignments)
// rather than preemption. Cancellation is all-or-nothing at answer
// granularity — a cancelled answer is rolled back and repostable, a
// partial enumeration is never cached, and a session-owned retrain barrier
// runs to completion as a commit point. The full checkpoint inventory and
// the reasoning live in cancel.go; the overhead of a live deadline on an
// end-to-end verify is pinned by BenchmarkVerifyWithDeadline at <2%.
package core
