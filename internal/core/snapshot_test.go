package core

import (
	"context"
	"sync"
	"testing"

	"github.com/repro/scrutinizer/internal/crowd"
)

// TestSnapshotSpawnEquivalence: spawning twice from one snapshot yields
// engines whose full verification runs are bit-identical — and running one
// spawn (which retrains it at batch barriers) must not perturb the
// snapshot or later spawns.
func TestSnapshotSpawnEquivalence(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()

	run := func(spawned *Engine) *Result {
		team, err := crowd.NewTeam("W", 3, 0.97, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := spawned.Verify(context.Background(), w.Document, team, VerifyConfig{BatchSize: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(snap.Spawn())
	// The first run retrained its spawned engine several times; a fresh
	// spawn must still start from the pristine snapshot state.
	second := run(snap.Spawn())

	if first.Seconds != second.Seconds || first.Batches != second.Batches {
		t.Fatalf("spawned runs diverged: %v/%d vs %v/%d batches",
			first.Seconds, first.Batches, second.Seconds, second.Batches)
	}
	if len(first.Outcomes) != len(second.Outcomes) {
		t.Fatalf("outcome counts: %d vs %d", len(first.Outcomes), len(second.Outcomes))
	}
	for i := range first.Outcomes {
		a, b := first.Outcomes[i], second.Outcomes[i]
		if a.ClaimID != b.ClaimID || a.Verdict != b.Verdict || a.Seconds != b.Seconds || a.Value != b.Value {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, a, b)
		}
	}

	// The snapshot's source engine is untouched too: a clone of it equals
	// a spawn of the snapshot.
	third := run(e.Clone())
	if third.Seconds != first.Seconds {
		t.Fatalf("source engine drifted: clone run %v vs spawn run %v", third.Seconds, first.Seconds)
	}
}

// TestSnapshotConcurrentSpawns: many spawns of one snapshot verifying
// concurrently (each retraining its own engine at batch barriers) agree
// with each other — the -race run is the actual assertion that no state
// is shared mutably.
func TestSnapshotConcurrentSpawns(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()

	const n = 4
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			team, err := crowd.NewTeam("W", 3, 0.97, 8)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = snap.Spawn().Verify(context.Background(), w.Document, team, VerifyConfig{
				BatchSize: 20, Parallelism: 2,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i].Seconds != results[0].Seconds || results[i].Batches != results[0].Batches {
			t.Fatalf("concurrent run %d diverged: %v vs %v", i, results[i].Seconds, results[0].Seconds)
		}
		for j := range results[0].Outcomes {
			if results[i].Outcomes[j].Verdict != results[0].Outcomes[j].Verdict {
				t.Fatalf("run %d outcome %d verdict diverged", i, j)
			}
		}
	}
}

// TestSnapshotGeneration: the snapshot records the generation it was taken
// at and spawns inherit it.
func TestSnapshotGeneration(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if e.Snapshot().Generation() != 0 {
		t.Fatal("cold snapshot generation != 0")
	}
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Generation() != e.Generation() || snap.Generation() == 0 {
		t.Fatalf("snapshot generation %d, engine %d", snap.Generation(), e.Generation())
	}
	if got := snap.Spawn().Generation(); got != snap.Generation() {
		t.Fatalf("spawn generation %d, want %d", got, snap.Generation())
	}
}
