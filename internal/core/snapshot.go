package core

import (
	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/textproc"
)

// This file implements the trained-state / per-run split behind the
// multi-tenant service API. An Engine is mutable: Algorithm 1 retrains its
// classifiers at every batch barrier, which is why a verification run must
// own its engine exclusively. A ModelSnapshot is the immutable complement:
// a deep copy of everything training mutates (the four classifiers, the
// formula library pointer, the generation counter) plus shared references
// to everything training does not touch (corpus, feature pipeline, query
// and program caches). Spawning turns a snapshot back into a private
// engine, so any number of concurrent runs can start from one trained
// state without racing each other's batch-boundary retraining.

// ModelSnapshot is an immutable copy of an engine's trained model state.
// It is safe for concurrent use: every Spawn derives an independent engine
// and nothing ever trains the snapshot's own model copies. Snapshots share
// the source engine's corpus, feature pipeline, tentative-execution cache
// and compiled-formula cache — all of them either immutable or internally
// synchronized.
type ModelSnapshot struct {
	corpus *table.Corpus
	pipe   *feature.Pipeline
	cfg    Config

	models map[PropertyKind]*classifier.Classifier
	lib    *formula.Library
	gen    uint64

	qcache      *QueryCache
	progs       *progCache
	genOverride func(Context, []*formula.Formula, float64, bool) ([]GeneratedQuery, []GeneratedQuery)
}

// Snapshot deep-copies the engine's trained state into an immutable
// ModelSnapshot. It must not run concurrently with Train on the same
// engine (the service layer serializes retraining against snapshotting);
// it is safe against concurrent scoring.
func (e *Engine) Snapshot() *ModelSnapshot {
	s := &ModelSnapshot{
		corpus:      e.corpus,
		pipe:        e.pipe,
		cfg:         e.cfg,
		models:      make(map[PropertyKind]*classifier.Classifier, len(e.models)),
		lib:         e.lib,
		qcache:      e.qcache,
		progs:       e.progs,
		genOverride: e.genOverride,
	}
	for k, m := range e.models {
		s.models[k] = m.Clone()
	}
	e.assessMu.RLock()
	s.gen = e.gen
	e.assessMu.RUnlock()
	return s
}

// Generation returns the model generation the snapshot was taken at.
func (s *ModelSnapshot) Generation() uint64 { return s.gen }

// Spawn builds a private engine from the snapshot: classifiers are deep
// copies of the snapshot's (so the run's retraining mutates only the
// spawned engine), the formula library is shared read-only until the first
// retrain replaces it, and the feature / assessment caches start empty —
// they are per-run state, keyed by claim ID, and distinct runs may verify
// distinct documents whose claim IDs collide.
func (s *ModelSnapshot) Spawn() *Engine {
	e := &Engine{
		corpus:      s.corpus,
		pipe:        s.pipe,
		cfg:         s.cfg,
		models:      make(map[PropertyKind]*classifier.Classifier, len(s.models)),
		lib:         s.lib,
		qcache:      s.qcache,
		progs:       s.progs,
		genOverride: s.genOverride,
		featCache:   make(map[int]textproc.Sparse),
		assessed:    make(map[int]*assessment),
		gen:         s.gen,
	}
	for k, m := range s.models {
		e.models[k] = m.Clone()
	}
	return e
}

// Clone returns an independent engine with the same trained state:
// shorthand for Snapshot().Spawn(). Like Snapshot it must not race Train
// on the receiver.
func (e *Engine) Clone() *Engine { return e.Snapshot().Spawn() }
