package core

import (
	"sync"

	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/textproc"
)

// This file implements the trained-state / per-run split behind the
// multi-tenant service API. An Engine is mutable: Algorithm 1 retrains its
// classifiers at every batch barrier, which is why a verification run must
// own its engine exclusively. A ModelSnapshot is the immutable complement:
// a deep copy of everything training mutates (the four classifiers, the
// formula library pointer, the generation counter) plus shared references
// to everything training does not touch (corpus, feature pipeline, query
// and formula caches). Spawning turns a snapshot back into a private
// engine, so any number of concurrent runs can start from one trained
// state without racing each other's batch-boundary retraining.
//
// Spawned engines are pooled: Release returns a finished run's engine to
// its snapshot, and the next Spawn re-primes it from the snapshot's model
// state in place (classifier.CloneInto reuses the weight buffers, the
// feature/assessment maps keep their capacity), so a service handling many
// short runs against one trained verifier allocates the engine machinery
// once instead of per request.

// ModelSnapshot is an immutable copy of an engine's trained model state.
// It is safe for concurrent use: every Spawn derives an independent engine
// and nothing ever trains the snapshot's own model copies. Snapshots share
// the source engine's corpus, feature pipeline, tentative-execution cache
// and formula cache — all of them either immutable or internally
// synchronized.
type ModelSnapshot struct {
	corpus *table.Corpus
	pipe   *feature.Pipeline
	cfg    Config

	models map[PropertyKind]*classifier.Classifier
	lib    *formula.Library
	gen    uint64

	qcache      *QueryCache
	fc          *formulaCache
	genOverride func(Context, []*formula.Formula, float64, bool) ([]GeneratedQuery, []GeneratedQuery)

	// spares pools engines returned by Release for reuse by Spawn.
	spares sync.Pool
}

// Snapshot deep-copies the engine's trained state into an immutable
// ModelSnapshot. It must not run concurrently with Train on the same
// engine (the service layer serializes retraining against snapshotting);
// it is safe against concurrent scoring.
func (e *Engine) Snapshot() *ModelSnapshot {
	s := &ModelSnapshot{
		corpus:      e.corpus,
		pipe:        e.pipe,
		cfg:         e.cfg,
		models:      make(map[PropertyKind]*classifier.Classifier, len(e.models)),
		lib:         e.lib,
		qcache:      e.qcache,
		fc:          e.fc,
		genOverride: e.genOverride,
	}
	for k, m := range e.models {
		s.models[k] = m.Clone()
	}
	e.assessMu.RLock()
	s.gen = e.gen
	e.assessMu.RUnlock()
	return s
}

// Generation returns the model generation the snapshot was taken at.
func (s *ModelSnapshot) Generation() uint64 { return s.gen }

// Spawn builds a private engine from the snapshot: classifiers are deep
// copies of the snapshot's (so the run's retraining mutates only the
// spawned engine), the formula library is shared read-only until the first
// retrain replaces it, and the feature / assessment caches start empty —
// they are per-run state, keyed by claim ID, and distinct runs may verify
// distinct documents whose claim IDs collide.
//
// Spawn prefers recycling an engine a previous run returned via Release,
// re-priming it from the snapshot in place; the result is indistinguishable
// from a fresh spawn (pinned by test), even when the released run had
// retrained its models.
func (s *ModelSnapshot) Spawn() *Engine {
	if v := s.spares.Get(); v != nil {
		e := v.(*Engine)
		e.reprime(s)
		return e
	}
	e := &Engine{
		corpus:      s.corpus,
		pipe:        s.pipe,
		cfg:         s.cfg,
		models:      make(map[PropertyKind]*classifier.Classifier, len(s.models)),
		lib:         s.lib,
		qcache:      s.qcache,
		fc:          s.fc,
		genOverride: s.genOverride,
		featCache:   make(map[int]textproc.Sparse),
		assessed:    make(map[int]*assessment),
		gen:         s.gen,
		origin:      s,
	}
	for k, m := range s.models {
		e.models[k] = m.Clone()
	}
	return e
}

// reprime restores a pooled engine to the snapshot's trained state in
// place: classifier weights copy into the engine's existing buffers, the
// shared references (corpus, pipeline, caches, library) reset to the
// snapshot's, and the per-run caches — cleared at Release time — keep
// their map capacity for the next document.
func (e *Engine) reprime(s *ModelSnapshot) {
	e.corpus = s.corpus
	e.pipe = s.pipe
	e.cfg = s.cfg
	e.lib = s.lib
	e.qcache = s.qcache
	e.fc = s.fc
	e.genOverride = s.genOverride
	for k, m := range s.models {
		if dst, ok := e.models[k]; ok {
			m.CloneInto(dst)
		} else {
			e.models[k] = m.Clone()
		}
	}
	e.gen = s.gen
	e.seqAssess = false
	e.origin = s
}

// Release returns an engine obtained from Spawn to its snapshot's spare
// pool for reuse by a later Spawn. The caller must be completely done with
// the engine: no goroutine may touch it (or anything read through it, such
// as cached assessments) after Release. Engines not created by Spawn, and
// engines already released, are left alone — Release is then a no-op, so
// callers may release unconditionally on their shutdown path.
func (e *Engine) Release() {
	if e == nil || e.origin == nil {
		return
	}
	s := e.origin
	e.origin = nil // double-release guard: second call no-ops
	// Drop per-run state now (claim IDs collide across documents, and the
	// features/assessments of a finished run are dead weight while pooled);
	// the maps keep their buckets for the next run.
	clear(e.featCache)
	clear(e.assessed)
	s.spares.Put(e)
}

// Clone returns an independent engine with the same trained state:
// shorthand for Snapshot().Spawn(). Like Snapshot it must not race Train
// on the receiver.
func (e *Engine) Clone() *Engine { return e.Snapshot().Spawn() }
