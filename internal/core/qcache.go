package core

import (
	"encoding/binary"
	"strings"
	"sync"

	"github.com/repro/scrutinizer/internal/table"
)

// QueryCache memoizes tentative execution (Algorithm 2's inner loop): for a
// (formula, validated context) pair over one corpus generation, the set of
// successful candidate assignments — integer slot tuples plus their values —
// is the same no matter which claim, session or goroutine asks. Screens
// repeated within a session, restores replaying an answer log, and
// concurrent sessions over one shared corpus all hit the same entries
// instead of recomputing the cell math.
//
// Entries are keyed by the canonical formula string and the exact context
// (relation/key/attribute lists, order-sensitive, since enumeration order
// is part of the contract). A cache is safe for concurrent use and may be
// shared across engines serving one corpus (scrutinizerd does); an engine
// constructed without a shared cache gets a private one.
//
// Consistency: every entry records the corpus generation it was computed
// under; the first access at a newer generation flushes the cache. Budget
// semantics are preserved exactly — an entry remembers how many attempts
// its enumeration explored, and a request whose assignment budget exceeds
// an incomplete entry re-enumerates rather than serving a truncated view.
type QueryCache struct {
	mu      sync.Mutex
	owner   *table.Corpus // corpus the entries were computed from
	gen     uint64
	entries map[string]*tentEntry
	order   []string // FIFO eviction order
	cap     int
	bytes   int // approximate retained entry bytes
	hits    uint64
	misses  uint64
}

// queryCacheCap bounds distinct (formula, context) entries and
// queryCacheMaxBytes bounds their retained memory (entries can reach a few
// hundred kilobytes at the default assignment budget, and context keys are
// ultimately user-driven through HTTP sessions) — FIFO eviction enforces
// both, so a daemon's shared cache cannot be grown past ~32 MB by varied
// checker answers.
const (
	queryCacheCap      = 1024
	queryCacheMaxBytes = 32 << 20
)

// NewQueryCache builds an empty cache. Share one per corpus across engines
// to deduplicate tentative execution between concurrent sessions.
func NewQueryCache() *QueryCache {
	return &QueryCache{entries: make(map[string]*tentEntry), cap: queryCacheCap}
}

// QueryCacheStats is a point-in-time cache summary for monitoring.
type QueryCacheStats struct {
	// Entries is the current number of memoized (formula, context) pairs.
	Entries int `json:"entries"`
	// Hits / Misses count lookups since process start.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// HitRate is Hits / (Hits + Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
	// Generation is the corpus generation the entries were computed under.
	Generation uint64 `json:"generation"`
}

// Stats reports cache statistics.
func (qc *QueryCache) Stats() QueryCacheStats {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	s := QueryCacheStats{
		Entries:    len(qc.entries),
		Hits:       qc.hits,
		Misses:     qc.misses,
		Generation: qc.gen,
	}
	if total := qc.hits + qc.misses; total > 0 {
		s.HitRate = float64(qc.hits) / float64(total)
	}
	return s
}

// tentEntry is the memoized enumeration of one (formula, context) pair:
// the successful attempts in enumeration order, as canonical integer slot
// tuples plus values, and enough bookkeeping to reproduce the legacy
// budget accounting exactly.
type tentEntry struct {
	// stride is the slot-tuple width: len(aliases) + len(attrVars).
	stride int
	// explored is how many attempts the enumeration visited; complete
	// reports whether that was the whole assignment space (when false,
	// enumeration stopped at a budget and attempts beyond explored exist).
	explored int
	complete bool
	// attempts[i] is the 1-based attempt index of success i; slots holds
	// the tuples back to back (stride each); values the executed results.
	attempts []int32
	slots    []int32
	values   []float64
}

// usable reports whether the entry can serve a request with the given
// assignment budget without under-reporting attempts.
func (t *tentEntry) usable(budget int) bool {
	return t.complete || t.explored >= budget
}

// served reproduces generateForFormula's return accounting for a budget:
// how many successes fall inside it and what "used" to report.
func (t *tentEntry) served(budget int) (succ int, used int) {
	if t.complete && t.explored <= budget {
		return len(t.attempts), t.explored
	}
	// More attempts existed than the budget allows: the legacy loop
	// counted one over before bailing out.
	n := 0
	for n < len(t.attempts) && int(t.attempts[n]) <= budget {
		n++
	}
	return n, budget + 1
}

// tentKey builds the cache key for a formula string + context. Every
// component is length-prefixed, so no context string — which ultimately
// derives from user-supplied documents and crowd answers — can collide two
// distinct contexts onto one key.
func tentKey(fkey string, ctx Context) string {
	var sb strings.Builder
	sb.Grow(len(fkey) + 32)
	writeStr := func(s string) {
		var lenBuf [binary.MaxVarintLen64]byte
		sb.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(s)))])
		sb.WriteString(s)
	}
	writeStr(fkey)
	for _, part := range [][]string{ctx.Relations, ctx.Keys, ctx.Attrs} {
		var lenBuf [binary.MaxVarintLen64]byte
		sb.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(part)))])
		for _, s := range part {
			writeStr(s)
		}
	}
	return sb.String()
}

// flushLocked empties the cache for a new (corpus, generation) epoch.
// Callers hold qc.mu.
func (qc *QueryCache) flushLocked(c *table.Corpus, gen uint64) {
	qc.owner = c
	qc.gen = gen
	qc.entries = make(map[string]*tentEntry)
	qc.order = qc.order[:0]
	qc.bytes = 0
}

// get returns a usable entry for the key at the corpus generation, flushing
// on generation changes and — as a misuse guard — when a differently owned
// corpus shows up (slot tuples are only meaningful against the corpus they
// were enumerated from, and generations of unrelated corpora can collide).
// The budget decides usability (see tentEntry.usable).
func (qc *QueryCache) get(c *table.Corpus, gen uint64, key string, budget int) (*tentEntry, bool) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.owner != c || qc.gen != gen {
		qc.flushLocked(c, gen)
	}
	t, ok := qc.entries[key]
	if ok && t.usable(budget) {
		qc.hits++
		return t, true
	}
	qc.misses++
	return nil, false
}

// peek reports whether a usable entry exists without counting a hit or a
// miss — the probe the parallel enumeration prefetch uses to find work
// (the serve pass afterwards does the stats-counting get).
func (qc *QueryCache) peek(c *table.Corpus, gen uint64, key string, budget int) bool {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.owner != c || qc.gen != gen {
		qc.flushLocked(c, gen)
	}
	t, ok := qc.entries[key]
	return ok && t.usable(budget)
}

// size approximates an entry's retained bytes (slices only; struct and map
// overhead are noise at these sizes).
func (t *tentEntry) size() int {
	return len(t.attempts)*4 + len(t.slots)*4 + len(t.values)*8
}

// put stores (or replaces) an entry computed at the corpus generation,
// evicting FIFO until both the entry-count and byte caps hold.
func (qc *QueryCache) put(c *table.Corpus, gen uint64, key string, t *tentEntry) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.owner != c || qc.gen != gen {
		qc.flushLocked(c, gen)
	}
	if prev, exists := qc.entries[key]; exists {
		qc.bytes -= prev.size()
	} else {
		qc.order = append(qc.order, key)
	}
	qc.entries[key] = t
	qc.bytes += t.size()
	for (len(qc.entries) > qc.cap || qc.bytes > queryCacheMaxBytes) && len(qc.order) > 1 {
		oldest := qc.order[0]
		qc.order = qc.order[1:]
		if victim, ok := qc.entries[oldest]; ok {
			qc.bytes -= victim.size()
			delete(qc.entries, oldest)
		}
	}
}
