package core

import (
	"encoding/binary"
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/repro/scrutinizer/internal/table"
)

// QueryCache memoizes tentative execution (Algorithm 2's inner loop): for a
// (formula, validated context) pair over one corpus generation, the set of
// successful candidate assignments — integer slot tuples plus their values —
// is the same no matter which claim, session or goroutine asks. Screens
// repeated within a session, restores replaying an answer log, and
// concurrent sessions over one shared corpus all hit the same entries
// instead of recomputing the cell math.
//
// Entries are keyed by the canonical formula string and the exact context
// (relation/key/attribute lists, order-sensitive, since enumeration order
// is part of the contract). A cache is safe for concurrent use and may be
// shared across engines serving one corpus (scrutinizerd does); an engine
// constructed without a shared cache gets a private one.
//
// Concurrency: the cache is the hottest shared structure under multi-tenant
// load (mutex profiles of 8 concurrent runs over one corpus put ~90% of all
// lock delay here when it was a single mutex), so entries are sharded by
// key hash into QueryCacheShards stripes with one mutex each — concurrent
// engines only collide when they touch the same stripe at the same instant.
// Hit/miss counters are atomics, off every lock entirely. The (owner,
// generation) epoch is guarded by an RWMutex taken shared on the hot path:
// lookups hold the read side (epoch checks never serialize each other) and
// only an actual epoch change — a corpus mutation, which the service layer
// already restricts to corpora with no verifiers — takes the write side to
// flush all shards atomically.
//
// Consistency: every entry records the corpus generation it was computed
// under; the first access at a newer generation flushes the cache. Budget
// semantics are preserved exactly — an entry remembers how many attempts
// its enumeration explored, and a request whose assignment budget exceeds
// an incomplete entry re-enumerates rather than serving a truncated view.
type QueryCache struct {
	// epochMu guards owner/gen. Shard operations run under the read lock,
	// so an epoch flush (write lock) is atomic with respect to every
	// concurrent get/put.
	epochMu sync.RWMutex
	owner   *table.Corpus // corpus the entries were computed from
	gen     uint64

	hits   atomic.Uint64
	misses atomic.Uint64

	shards [QueryCacheShards]qcShard
	seed   maphash.Seed
}

// qcShard is one lock stripe: a slice of the key space with its own FIFO
// eviction order and byte accounting.
type qcShard struct {
	mu      sync.Mutex
	entries map[string]*tentEntry
	order   []string // FIFO eviction order
	bytes   int      // approximate retained entry bytes
}

// QueryCacheShards is the number of lock stripes entries spread over. 16
// stripes make same-instant collisions between concurrent engines rare at
// realistic tenant counts while keeping the flush walk and per-shard map
// overhead negligible. Exported so benchmark metadata can record the
// sharding the numbers were measured under.
const QueryCacheShards = 16

// queryCacheCap bounds distinct (formula, context) entries and
// queryCacheMaxBytes bounds their retained memory (entries can reach a few
// hundred kilobytes at the default assignment budget, and context keys are
// ultimately user-driven through HTTP sessions) — FIFO eviction enforces
// both per shard, so a daemon's shared cache cannot be grown past ~32 MB by
// varied checker answers.
const (
	queryCacheCap      = 1024
	queryCacheMaxBytes = 32 << 20

	// Per-shard slices of the global caps.
	qcShardCap      = queryCacheCap / QueryCacheShards
	qcShardMaxBytes = queryCacheMaxBytes / QueryCacheShards
)

// NewQueryCache builds an empty cache. Share one per corpus across engines
// to deduplicate tentative execution between concurrent sessions.
func NewQueryCache() *QueryCache {
	qc := &QueryCache{seed: maphash.MakeSeed()}
	for i := range qc.shards {
		qc.shards[i].entries = make(map[string]*tentEntry)
	}
	return qc
}

// shard maps a key to its lock stripe.
func (qc *QueryCache) shard(key string) *qcShard {
	return &qc.shards[maphash.String(qc.seed, key)%QueryCacheShards]
}

// QueryCacheStats is a point-in-time cache summary for monitoring.
type QueryCacheStats struct {
	// Entries is the current number of memoized (formula, context) pairs,
	// summed over the shards.
	Entries int `json:"entries"`
	// Hits / Misses count lookups since process start.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// HitRate is Hits / (Hits + Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
	// Generation is the corpus generation the entries were computed under.
	Generation uint64 `json:"generation"`
	// Shards is the number of lock stripes the entries spread over.
	Shards int `json:"shards"`
}

// Stats reports cache statistics, aggregating the per-shard state on read.
// Counters are atomics and each shard is locked only long enough to read
// its entry count, so Stats never stalls the lookup hot path — monitoring
// polls (healthz) are safe to hammer under load.
func (qc *QueryCache) Stats() QueryCacheStats {
	qc.epochMu.RLock()
	s := QueryCacheStats{
		Hits:       qc.hits.Load(),
		Misses:     qc.misses.Load(),
		Generation: qc.gen,
		Shards:     QueryCacheShards,
	}
	for i := range qc.shards {
		sh := &qc.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	qc.epochMu.RUnlock()
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// totalEntries and totalBytes aggregate the shards (tests, accounting
// assertions).
func (qc *QueryCache) totalEntries() int {
	n := 0
	for i := range qc.shards {
		sh := &qc.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

func (qc *QueryCache) totalBytes() int {
	n := 0
	for i := range qc.shards {
		sh := &qc.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// tentEntry is the memoized enumeration of one (formula, context) pair:
// the successful attempts in enumeration order, as canonical integer slot
// tuples plus values, and enough bookkeeping to reproduce the legacy
// budget accounting exactly.
type tentEntry struct {
	// stride is the slot-tuple width: len(aliases) + len(attrVars).
	stride int
	// explored is how many attempts the enumeration visited; complete
	// reports whether that was the whole assignment space (when false,
	// enumeration stopped at a budget and attempts beyond explored exist).
	explored int
	complete bool
	// attempts[i] is the 1-based attempt index of success i; slots holds
	// the tuples back to back (stride each); values the executed results.
	attempts []int32
	slots    []int32
	values   []float64
}

// usable reports whether the entry can serve a request with the given
// assignment budget without under-reporting attempts.
func (t *tentEntry) usable(budget int) bool {
	return t.complete || t.explored >= budget
}

// served reproduces generateForFormula's return accounting for a budget:
// how many successes fall inside it and what "used" to report.
func (t *tentEntry) served(budget int) (succ int, used int) {
	if t.complete && t.explored <= budget {
		return len(t.attempts), t.explored
	}
	// More attempts existed than the budget allows: the legacy loop
	// counted one over before bailing out.
	n := 0
	for n < len(t.attempts) && int(t.attempts[n]) <= budget {
		n++
	}
	return n, budget + 1
}

// tentKey builds the cache key for a formula string + context. Every
// component is length-prefixed, so no context string — which ultimately
// derives from user-supplied documents and crowd answers — can collide two
// distinct contexts onto one key.
func tentKey(fkey string, ctx Context) string {
	var sb strings.Builder
	sb.Grow(len(fkey) + 32)
	writeStr := func(s string) {
		var lenBuf [binary.MaxVarintLen64]byte
		sb.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(s)))])
		sb.WriteString(s)
	}
	writeStr(fkey)
	for _, part := range [][]string{ctx.Relations, ctx.Keys, ctx.Attrs} {
		var lenBuf [binary.MaxVarintLen64]byte
		sb.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(part)))])
		for _, s := range part {
			writeStr(s)
		}
	}
	return sb.String()
}

// enter validates the (corpus, generation) epoch and returns with the
// epoch read lock held — the caller MUST call qc.epochMu.RUnlock when its
// shard operation completes. The first access of a new epoch — a newer
// corpus generation, or (as a misuse guard) a differently owned corpus
// whose generation collides — takes the write lock and flushes every
// shard; slot tuples are only meaningful against the corpus and generation
// they were enumerated from.
func (qc *QueryCache) enter(c *table.Corpus, gen uint64) {
	for {
		qc.epochMu.RLock()
		if qc.owner == c && qc.gen == gen {
			return
		}
		qc.epochMu.RUnlock()
		qc.epochMu.Lock()
		if qc.owner != c || qc.gen != gen {
			qc.owner = c
			qc.gen = gen
			for i := range qc.shards {
				sh := &qc.shards[i]
				sh.mu.Lock()
				sh.entries = make(map[string]*tentEntry)
				sh.order = sh.order[:0]
				sh.bytes = 0
				sh.mu.Unlock()
			}
		}
		qc.epochMu.Unlock()
	}
}

// get returns a usable entry for the key at the corpus generation; the
// budget decides usability (see tentEntry.usable).
func (qc *QueryCache) get(c *table.Corpus, gen uint64, key string, budget int) (*tentEntry, bool) {
	qc.enter(c, gen)
	defer qc.epochMu.RUnlock()
	sh := qc.shard(key)
	sh.mu.Lock()
	t, ok := sh.entries[key]
	sh.mu.Unlock()
	if ok && t.usable(budget) {
		qc.hits.Add(1)
		return t, true
	}
	qc.misses.Add(1)
	return nil, false
}

// peek reports whether a usable entry exists without counting a hit or a
// miss — the probe the parallel enumeration prefetch uses to find work
// (the serve pass afterwards does the stats-counting get).
func (qc *QueryCache) peek(c *table.Corpus, gen uint64, key string, budget int) bool {
	qc.enter(c, gen)
	defer qc.epochMu.RUnlock()
	sh := qc.shard(key)
	sh.mu.Lock()
	t, ok := sh.entries[key]
	sh.mu.Unlock()
	return ok && t.usable(budget)
}

// size approximates an entry's retained bytes (slices only; struct and map
// overhead are noise at these sizes).
func (t *tentEntry) size() int {
	return len(t.attempts)*4 + len(t.slots)*4 + len(t.values)*8
}

// put stores (or replaces) an entry computed at the corpus generation,
// evicting FIFO within the key's shard until both the entry-count and byte
// caps hold.
func (qc *QueryCache) put(c *table.Corpus, gen uint64, key string, t *tentEntry) {
	qc.enter(c, gen)
	defer qc.epochMu.RUnlock()
	sh := qc.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, exists := sh.entries[key]; exists {
		sh.bytes -= prev.size()
	} else {
		sh.order = append(sh.order, key)
	}
	sh.entries[key] = t
	sh.bytes += t.size()
	for (len(sh.entries) > qcShardCap || sh.bytes > qcShardMaxBytes) && len(sh.order) > 1 {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		if victim, ok := sh.entries[oldest]; ok {
			sh.bytes -= victim.size()
			delete(sh.entries, oldest)
		}
	}
}
